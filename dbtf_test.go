package dbtf_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"dbtf"
)

func TestFactorizeQuickstart(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, planted := dbtf.TensorFromRandomFactors(rng, 24, 24, 24, 3, 0.2)
	res, err := dbtf.Factorize(context.Background(), x, dbtf.Options{Rank: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelativeError >= 1 {
		t.Fatalf("relative error %v not better than trivial", res.RelativeError)
	}
	if res.Error != res.ReconstructError(x) {
		t.Fatal("Result.Error inconsistent with Factors.ReconstructError")
	}
	_ = planted
}

func TestFactorizeRespectsContext(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := dbtf.RandomTensor(rng, 64, 64, 64, 0.05)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	if _, err := dbtf.Factorize(ctx, x, dbtf.Options{Rank: 8, MaxIter: 50}); err == nil {
		t.Fatal("expired context not honored")
	}
}

func TestFactorizeValidatesRank(t *testing.T) {
	x := dbtf.NewTensor(4, 4, 4)
	if _, err := dbtf.Factorize(context.Background(), x, dbtf.Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := dbtf.Factorize(context.Background(), x, dbtf.Options{Rank: dbtf.MaxRank + 1}); err == nil {
		t.Fatal("rank > MaxRank accepted")
	}
}

func TestAllThreeMethodsAgreeOnBlockTensor(t *testing.T) {
	// A single dense block is exactly rank 1; every method must fit it
	// perfectly.
	var coords []dbtf.Coord
	for i := 2; i < 10; i++ {
		for j := 1; j < 8; j++ {
			for k := 3; k < 9; k++ {
				coords = append(coords, dbtf.Coord{I: i, J: j, K: k})
			}
		}
	}
	x, err := dbtf.TensorFromCoords(12, 12, 12, coords)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	d, err := dbtf.Factorize(ctx, x, dbtf.Options{Rank: 1, InitialSets: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Error != 0 {
		t.Errorf("DBTF error %d", d.Error)
	}

	b, err := dbtf.FactorizeBCPALS(ctx, x, dbtf.BCPALSOptions{Rank: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Error != 0 {
		t.Errorf("BCP_ALS error %d", b.Error)
	}

	w, err := dbtf.FactorizeWalkNMerge(ctx, x, dbtf.WalkNMergeOptions{Seed: 1, MergeThreshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if w.Error != 0 {
		t.Errorf("Walk'n'Merge error %d", w.Error)
	}
}

func TestFactorsReconstructRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, f := dbtf.TensorFromRandomFactors(rng, 10, 10, 10, 2, 0.3)
	if !f.Reconstruct().Equal(x) {
		t.Fatal("Factors.Reconstruct differs from generator output")
	}
	if dbtf.RelativeError(x, f) != 0 {
		t.Fatal("planted factors have nonzero relative error")
	}
	p, r := dbtf.PrecisionRecall(x, f)
	if p != 1 || r != 1 {
		t.Fatalf("precision %v recall %v for exact factors", p, r)
	}
	if dbtf.FactorSimilarity(f, f) != 1 {
		t.Fatal("self similarity != 1")
	}
}

func TestStandinDatasets(t *testing.T) {
	ds := dbtf.StandinDatasets(rand.New(rand.NewSource(4)), 0.25)
	if len(ds) != 6 {
		t.Fatalf("%d datasets", len(ds))
	}
}

func TestNoiseHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, _ := dbtf.TensorFromRandomFactors(rng, 12, 12, 12, 2, 0.3)
	if x.NNZ() == 0 {
		t.Skip("degenerate")
	}
	noisy := dbtf.AddNoise(rng, x, 0.1, 0.05)
	if noisy.Equal(x) {
		t.Fatal("noise had no effect")
	}
}

func TestFactorizeStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := dbtf.RandomTensor(rng, 16, 16, 16, 0.05)
	res, err := dbtf.Factorize(context.Background(), x, dbtf.Options{Rank: 2, Seed: 1, Machines: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ShuffledBytes == 0 || res.Stats.BroadcastBytes == 0 || res.Stats.CollectedBytes == 0 {
		t.Fatalf("traffic stats not populated: %+v", res.Stats)
	}
	if res.SimTime <= 0 || res.WallTime <= 0 {
		t.Fatalf("timings not populated: sim=%v wall=%v", res.SimTime, res.WallTime)
	}
}
