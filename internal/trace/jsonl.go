package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// JSONL is the durable analysis sink: one JSON object per line, in
// emission order. The format is append-only and grep-friendly; validate a
// written stream with ValidateJSONL (or cmd/dbtf-tracecheck).
type JSONL struct {
	bw  *bufio.Writer
	enc *json.Encoder
	w   io.Writer
}

// NewJSONL returns a sink writing one event per line to w. If w is an
// io.Closer, Close closes it after flushing.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw), w: w}
}

// Write encodes one event as a JSON line.
func (s *JSONL) Write(ev *Event) error { return s.enc.Encode(ev) }

// Close flushes buffered lines and closes the underlying writer when it
// is closeable.
func (s *JSONL) Close() error {
	err := s.bw.Flush()
	if c, ok := s.w.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// DecodeJSONL parses a JSONL event stream. Unknown fields and unknown
// event types are errors: the schema is closed so analysis tools can rely
// on it.
func DecodeJSONL(r io.Reader) ([]*Event, error) {
	var events []*Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		ev := &Event{}
		if err := dec.Decode(ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if !knownTypes[ev.Type] {
			return nil, fmt.Errorf("trace: line %d: unknown event type %q", line, ev.Type)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return events, nil
}

var knownTypes = map[Type]bool{
	RunBegin: true, RunEnd: true,
	IterationBegin: true, IterationEnd: true,
	StageBegin: true, StageEnd: true,
	DriverBegin: true, DriverEnd: true,
	Shuffle: true, Broadcast: true, Collect: true, Checkpoint: true,
	Retry: true, SpeculativeLaunch: true, SpeculativeWin: true,
	MachineLoss: true, MachineRejoin: true,
	Wire: true,
}

// Summary reports what a validated stream contained.
type Summary struct {
	// Events is the total event count.
	Events int
	// Runs is the number of completed run spans.
	Runs int
	// Stages is the number of completed stage spans.
	Stages int
	// ByType counts events per type.
	ByType map[Type]int
}

// Validate checks the structural invariants of an event stream:
//
//   - sequence numbers strictly increase;
//   - the simulated clock is monotone non-decreasing within a run (a
//     RunBegin may reset it — the engine resets its clock per run);
//   - begin/end spans match: stages and driver sections pair up by index
//     and never nest or overlap each other, iteration spans nest properly
//     around stages, run spans enclose everything else;
//   - machine losses and rejoins occur only at stage boundaries (never
//     inside an open stage or driver span);
//   - StageEnd events carry a Stats delta;
//   - at every RunEnd, folding the run's events with StatsDelta.Observe
//     reproduces the RunEnd's cumulative snapshot exactly.
//
// The first violation is returned as an error naming the offending
// sequence number.
func Validate(events []*Event) (*Summary, error) {
	sum := &Summary{ByType: map[Type]int{}}
	var (
		haveSeq    bool
		lastSeq    int64
		lastSim    int64
		openStage  *Event
		openDriver *Event
		openIters  []*Event
		inRun      bool
		acc        StatsDelta
	)
	for _, ev := range events {
		sum.Events++
		sum.ByType[ev.Type]++
		if !knownTypes[ev.Type] {
			return nil, fmt.Errorf("trace: seq %d: unknown event type %q", ev.Seq, ev.Type)
		}
		if haveSeq && ev.Seq <= lastSeq {
			return nil, fmt.Errorf("trace: seq %d after seq %d: sequence numbers must strictly increase", ev.Seq, lastSeq)
		}
		lastSeq, haveSeq = ev.Seq, true
		if ev.Type == RunBegin {
			lastSim = ev.SimNanos // the engine resets its clock per run
		}
		if ev.SimNanos < lastSim {
			return nil, fmt.Errorf("trace: seq %d (%s): simulated clock went backwards (%d < %d)", ev.Seq, ev.Type, ev.SimNanos, lastSim)
		}
		lastSim = ev.SimNanos

		switch ev.Type {
		case RunBegin:
			if inRun {
				return nil, fmt.Errorf("trace: seq %d: run_begin inside an open run", ev.Seq)
			}
			inRun = true
			acc = StatsDelta{}
		case RunEnd:
			if !inRun {
				return nil, fmt.Errorf("trace: seq %d: run_end without run_begin", ev.Seq)
			}
			if openStage != nil || openDriver != nil || len(openIters) > 0 {
				return nil, fmt.Errorf("trace: seq %d: run_end with open spans", ev.Seq)
			}
			if ev.Delta == nil {
				return nil, fmt.Errorf("trace: seq %d: run_end without a stats snapshot", ev.Seq)
			}
			if acc != *ev.Delta {
				return nil, fmt.Errorf("trace: seq %d: folded event deltas %+v do not reproduce the run's stats snapshot %+v", ev.Seq, acc, *ev.Delta)
			}
			inRun = false
			sum.Runs++
		case IterationBegin:
			if openStage != nil || openDriver != nil {
				return nil, fmt.Errorf("trace: seq %d: iteration_begin inside an open stage or driver span", ev.Seq)
			}
			openIters = append(openIters, ev)
		case IterationEnd:
			if len(openIters) == 0 {
				return nil, fmt.Errorf("trace: seq %d: iteration_end without iteration_begin", ev.Seq)
			}
			top := openIters[len(openIters)-1]
			if top.Iteration != ev.Iteration {
				return nil, fmt.Errorf("trace: seq %d: iteration_end %d does not match open iteration %d", ev.Seq, ev.Iteration, top.Iteration)
			}
			if openStage != nil || openDriver != nil {
				return nil, fmt.Errorf("trace: seq %d: iteration_end inside an open stage or driver span", ev.Seq)
			}
			openIters = openIters[:len(openIters)-1]
		case StageBegin:
			if openStage != nil {
				return nil, fmt.Errorf("trace: seq %d: stage_begin while stage %d is open (stages never nest)", ev.Seq, openStage.Stage)
			}
			if openDriver != nil {
				return nil, fmt.Errorf("trace: seq %d: stage_begin inside an open driver span", ev.Seq)
			}
			openStage = ev
		case StageEnd:
			if openStage == nil {
				return nil, fmt.Errorf("trace: seq %d: stage_end without stage_begin", ev.Seq)
			}
			if openStage.Stage != ev.Stage {
				return nil, fmt.Errorf("trace: seq %d: stage_end %d does not match open stage %d", ev.Seq, ev.Stage, openStage.Stage)
			}
			if ev.Delta == nil {
				return nil, fmt.Errorf("trace: seq %d: stage_end without a stats delta", ev.Seq)
			}
			openStage = nil
			sum.Stages++
		case DriverBegin:
			if openDriver != nil {
				return nil, fmt.Errorf("trace: seq %d: driver_begin inside an open driver span", ev.Seq)
			}
			if openStage != nil {
				return nil, fmt.Errorf("trace: seq %d: driver_begin inside an open stage", ev.Seq)
			}
			openDriver = ev
		case DriverEnd:
			if openDriver == nil {
				return nil, fmt.Errorf("trace: seq %d: driver_end without driver_begin", ev.Seq)
			}
			openDriver = nil
		case Retry, SpeculativeLaunch, SpeculativeWin:
			if openStage == nil {
				return nil, fmt.Errorf("trace: seq %d: %s outside an open stage", ev.Seq, ev.Type)
			}
		case MachineLoss, MachineRejoin:
			if openStage != nil || openDriver != nil {
				return nil, fmt.Errorf("trace: seq %d: %s inside an open span (losses happen at stage boundaries)", ev.Seq, ev.Type)
			}
			if ev.Machine < 0 {
				return nil, fmt.Errorf("trace: seq %d: %s without a machine", ev.Seq, ev.Type)
			}
		}
		acc.Observe(ev)
	}
	if openStage != nil || openDriver != nil || len(openIters) > 0 || inRun {
		return nil, fmt.Errorf("trace: stream ends with open spans (stage=%v driver=%v iterations=%d run=%v)",
			openStage != nil, openDriver != nil, len(openIters), inRun)
	}
	return sum, nil
}

// ValidateJSONL decodes and validates a JSONL stream in one step.
func ValidateJSONL(r io.Reader) (*Summary, error) {
	events, err := DecodeJSONL(r)
	if err != nil {
		return nil, err
	}
	return Validate(events)
}
