package trace

// tee fans every event out to several sinks in order. It relies on the
// Tracer's single-goroutine Sink contract, so it needs no locking of its
// own; each wrapped sink still sees the same contract.
type tee struct {
	sinks []Sink
}

// NewTee returns a Sink writing every event to each of sinks in order.
// The first Write error is returned (later sinks still receive the
// event); Close closes every sink and returns the first close error.
// The job server tees each job's stream to its durable JSONL file and
// the in-memory tail served by the progress endpoint.
func NewTee(sinks ...Sink) Sink {
	return &tee{sinks: sinks}
}

func (t *tee) Write(e *Event) error {
	var first error
	for _, s := range t.sinks {
		if err := s.Write(e); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (t *tee) Close() error {
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
