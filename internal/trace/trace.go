// Package trace is the structured tracing layer of the simulated cluster:
// the equivalent of Spark's stage/task event log for the engine in
// internal/cluster. Every stage, driver section, traffic charge, retry,
// speculation, machine loss/recovery, checkpoint, and algorithm iteration
// emits one Event carrying both clocks — the wall clock (real elapsed
// time, for profiling the host) and the simulated clock (modeled elapsed
// time on M machines, for the paper's makespan claims) — so a run can be
// replayed as a per-machine timeline after the fact.
//
// Events are written through a Sink. Two sinks ship with the package:
// JSONL (one JSON object per line, the durable analysis format validated
// by cmd/dbtf-tracecheck) and Chrome (the trace_event format loadable in
// chrome://tracing or Perfetto, with one lane per simulated machine).
//
// The accounting contract that makes the stream checkable: every mutation
// of cluster.Stats is attributed to exactly one event, so folding a run's
// events with StatsDelta.Observe reproduces the final Stats snapshot
// exactly. See Observe for the per-type attribution rules.
//
// A nil *Tracer is the disabled tracer: Enabled reports false and Emit is
// never reached, so instrumented code pays a nil check and nothing else.
package trace

import (
	"sync"
	"time"
)

// Type identifies an event kind. The set is closed: validators reject
// unknown types.
type Type string

// Event types. Begin/end pairs delimit spans; the rest are point events.
const (
	// RunBegin and RunEnd delimit one decomposition run. RunEnd carries
	// the run's final cumulative Stats snapshot in Delta, which must
	// equal the fold of every event since the matching RunBegin.
	RunBegin Type = "run_begin"
	RunEnd   Type = "run_end"
	// IterationBegin and IterationEnd delimit one alternating iteration;
	// IterationEnd carries the reconstruction error and its improvement
	// over the previous iteration.
	IterationBegin Type = "iteration_begin"
	IterationEnd   Type = "iteration_end"
	// StageBegin and StageEnd delimit one parallel ForEach stage.
	// StageEnd carries the per-stage Stats delta and the per-machine
	// simulated compute nanos (the stage's lane lengths).
	StageBegin Type = "stage_begin"
	StageEnd   Type = "stage_end"
	// DriverBegin and DriverEnd delimit one sequential driver section.
	DriverBegin Type = "driver_begin"
	DriverEnd   Type = "driver_end"
	// Shuffle, Broadcast, Collect and Checkpoint record one traffic
	// charge each; Bytes is the exact amount added to the corresponding
	// Stats counter (for Broadcast: already multiplied by the machine
	// count, as the counter records it).
	Shuffle    Type = "shuffle"
	Broadcast  Type = "broadcast"
	Collect    Type = "collect"
	Checkpoint Type = "checkpoint"
	// Retry marks one task re-execution after a transient failure.
	Retry Type = "retry"
	// SpeculativeLaunch and SpeculativeWin mark a straggler's backup copy
	// launching and winning its simulated race.
	SpeculativeLaunch Type = "speculative_launch"
	SpeculativeWin    Type = "speculative_win"
	// MachineLoss and MachineRejoin mark machine liveness transitions at
	// stage boundaries; Bytes is the recovery re-fetch traffic charged to
	// BroadcastBytes (a single-link transfer, not multiplied by M).
	MachineLoss   Type = "machine_loss"
	MachineRejoin Type = "machine_rejoin"
	// Wire records real socket traffic of a remote transport: Bytes is
	// the sent-plus-received wire volume of one stage (Stage, Name set)
	// or state push (Stage -1). Wire bytes are measurements of the
	// physical backend, not part of the modeled traffic accounting, so
	// Observe does not fold them and validators place no structural
	// constraints on them.
	Wire Type = "wire"
)

// Event is one entry of the run trace. Field applicability depends on
// Type; inapplicable index fields hold -1 (Stage, Machine, Task) or 0
// (Iteration — iterations are 1-based) and inapplicable value fields are
// omitted from the JSON encoding.
type Event struct {
	Type Type `json:"type"`
	// Seq is the tracer-assigned sequence number: strictly increasing
	// across the stream, making the total emission order explicit even
	// when events share timestamps.
	Seq int64 `json:"seq"`
	// WallNanos is the wall-clock timestamp (UnixNano of the tracer's
	// clock), assigned at emission. Wall timestamps are reporting only:
	// they are not deterministic across runs.
	WallNanos int64 `json:"wall_ns"`
	// SimNanos is the simulated clock at the event. In-stage events
	// (Retry, SpeculativeLaunch, SpeculativeWin) carry the stage's begin
	// time: the simulated clock advances only at stage boundaries.
	// Deterministic per seed when the engine's clock is injected.
	SimNanos int64 `json:"sim_ns"`
	// Stage is the cluster-wide stage index for stage-scoped events;
	// -1 otherwise.
	Stage int64 `json:"stage"`
	// Machine is the logical machine for machine-scoped events
	// (loss/rejoin, retry, speculation); -1 otherwise.
	Machine int `json:"machine"`
	// Task is the task index for task-scoped events; -1 otherwise.
	Task int `json:"task"`
	// Iteration is the 1-based algorithm iteration for iteration spans;
	// 0 otherwise.
	Iteration int `json:"iteration,omitempty"`
	// Name labels spans: the stage or driver-section label, or the run
	// description.
	Name string `json:"name,omitempty"`
	// Tasks is the task count of a StageBegin.
	Tasks int `json:"tasks,omitempty"`
	// Machines is the cluster size, carried by RunBegin.
	Machines int `json:"machines,omitempty"`
	// Attempt is the 1-based attempt that failed, on a Retry.
	Attempt int `json:"attempt,omitempty"`
	// Bytes is the traffic amount of Shuffle/Broadcast/Collect/Checkpoint
	// charges and the recovery re-fetch of MachineLoss/MachineRejoin.
	Bytes int64 `json:"bytes,omitempty"`
	// DurNanos is the span's simulated duration, on end events: for
	// StageEnd the makespan plus network charge, for DriverEnd the
	// section's measured duration.
	DurNanos int64 `json:"dur_ns,omitempty"`
	// Error is the reconstruction error after an IterationEnd.
	Error *int64 `json:"error,omitempty"`
	// ErrorDelta is the error improvement over the previous iteration on
	// an IterationEnd (0 on the first iteration).
	ErrorDelta *int64 `json:"error_delta,omitempty"`
	// Delta is the per-stage Stats delta on StageEnd, and the final
	// cumulative Stats snapshot on RunEnd.
	Delta *StatsDelta `json:"delta,omitempty"`
	// PerMachineNanos is the per-machine simulated compute time of a
	// StageEnd: index m is the summed task nanos charged to machine m
	// (the stage's makespan is the maximum entry).
	PerMachineNanos []int64 `json:"per_machine_ns,omitempty"`
}

// NewEvent returns an event of the given type with the index fields set
// to their inapplicable defaults.
func NewEvent(typ Type) *Event {
	return &Event{Type: typ, Stage: -1, Machine: -1, Task: -1}
}

// StatsDelta mirrors cluster.Stats field by field (the trace package
// cannot import cluster — cluster imports trace). It serves two roles:
// the per-stage delta attached to StageEnd events, and the accumulator
// that folds an event stream back into a Stats snapshot (Observe).
type StatsDelta struct {
	ShuffledBytes       int64 `json:"shuffled_bytes,omitempty"`
	BroadcastBytes      int64 `json:"broadcast_bytes,omitempty"`
	CollectedBytes      int64 `json:"collected_bytes,omitempty"`
	CheckpointBytes     int64 `json:"checkpoint_bytes,omitempty"`
	Stages              int64 `json:"stages,omitempty"`
	Tasks               int64 `json:"tasks,omitempty"`
	ComputeNanos        int64 `json:"compute_ns,omitempty"`
	NetworkNanos        int64 `json:"network_ns,omitempty"`
	DriverNanos         int64 `json:"driver_ns,omitempty"`
	TaskNanos           int64 `json:"task_ns,omitempty"`
	Retries             int64 `json:"retries,omitempty"`
	InjectedFaults      int64 `json:"injected_faults,omitempty"`
	SpeculativeLaunches int64 `json:"speculative_launches,omitempty"`
	SpeculativeWins     int64 `json:"speculative_wins,omitempty"`
	MachineLosses       int64 `json:"machine_losses,omitempty"`
	Recoveries          int64 `json:"recoveries,omitempty"`
}

// Observe folds one event into the accumulator under the attribution
// contract: every cluster.Stats mutation belongs to exactly one event, so
// folding a complete run reproduces the final snapshot exactly.
//
//   - StageBegin carries the stage and task counts.
//   - StageEnd's Delta carries the stage's time and fault counters. Its
//     byte fields are NOT folded: they record which traffic this stage's
//     network charge priced (recorded since the previous stage boundary),
//     and that traffic is already attributed to its own charge events.
//   - DriverEnd carries the section's driver nanos.
//   - Traffic events carry their exact counter increments, including the
//     single-link recovery re-fetches on MachineLoss/MachineRejoin.
//   - Retry/speculation point events are markers only; their counts fold
//     from the owning StageEnd delta, which publishes them at the stage
//     boundary exactly as the engine publishes the counters themselves.
func (d *StatsDelta) Observe(ev *Event) {
	switch ev.Type {
	case StageBegin:
		d.Stages++
		d.Tasks += int64(ev.Tasks)
	case StageEnd:
		if ev.Delta != nil {
			d.ComputeNanos += ev.Delta.ComputeNanos
			d.NetworkNanos += ev.Delta.NetworkNanos
			d.TaskNanos += ev.Delta.TaskNanos
			d.Retries += ev.Delta.Retries
			d.InjectedFaults += ev.Delta.InjectedFaults
			d.SpeculativeLaunches += ev.Delta.SpeculativeLaunches
			d.SpeculativeWins += ev.Delta.SpeculativeWins
			d.Recoveries += ev.Delta.Recoveries
		}
	case DriverEnd:
		d.DriverNanos += ev.DurNanos
	case Shuffle:
		d.ShuffledBytes += ev.Bytes
	case Broadcast:
		d.BroadcastBytes += ev.Bytes
	case Collect:
		d.CollectedBytes += ev.Bytes
	case Checkpoint:
		d.CheckpointBytes += ev.Bytes
	case MachineLoss:
		d.MachineLosses++
		d.BroadcastBytes += ev.Bytes
	case MachineRejoin:
		d.Recoveries++
		d.BroadcastBytes += ev.Bytes
	}
}

// Buffer is an in-memory sink retaining events in emission order, for
// programmatic inspection of a run's stream (tests, adaptive tooling).
type Buffer struct {
	Events []*Event
}

// Write retains the event.
func (b *Buffer) Write(ev *Event) error {
	b.Events = append(b.Events, ev)
	return nil
}

// Close is a no-op; the events stay available.
func (b *Buffer) Close() error { return nil }

// Sub returns the field-wise difference d − o: the counters accumulated
// between two snapshots.
func (d StatsDelta) Sub(o StatsDelta) StatsDelta {
	return StatsDelta{
		ShuffledBytes:       d.ShuffledBytes - o.ShuffledBytes,
		BroadcastBytes:      d.BroadcastBytes - o.BroadcastBytes,
		CollectedBytes:      d.CollectedBytes - o.CollectedBytes,
		CheckpointBytes:     d.CheckpointBytes - o.CheckpointBytes,
		Stages:              d.Stages - o.Stages,
		Tasks:               d.Tasks - o.Tasks,
		ComputeNanos:        d.ComputeNanos - o.ComputeNanos,
		NetworkNanos:        d.NetworkNanos - o.NetworkNanos,
		DriverNanos:         d.DriverNanos - o.DriverNanos,
		TaskNanos:           d.TaskNanos - o.TaskNanos,
		Retries:             d.Retries - o.Retries,
		InjectedFaults:      d.InjectedFaults - o.InjectedFaults,
		SpeculativeLaunches: d.SpeculativeLaunches - o.SpeculativeLaunches,
		SpeculativeWins:     d.SpeculativeWins - o.SpeculativeWins,
		MachineLosses:       d.MachineLosses - o.MachineLosses,
		Recoveries:          d.Recoveries - o.Recoveries,
	}
}

// Sink receives the event stream. Sinks are always called from one
// goroutine at a time (the tracer serializes emission under its lock), so
// implementations need no internal locking.
type Sink interface {
	Write(ev *Event) error
	// Close flushes and releases the sink. The tracer calls it from
	// Tracer.Close exactly once.
	Close() error
}

// Tracer serializes events from concurrent emitters into a Sink,
// assigning sequence numbers and wall timestamps. The zero-cost disabled
// form is a nil *Tracer: all methods are nil-safe, and instrumented code
// guards event construction behind Enabled.
type Tracer struct {
	mu sync.Mutex
	//dbtf:guardedby mu
	sink Sink
	//dbtf:guardedby mu
	seq int64
	//dbtf:guardedby mu
	err error
	//dbtf:guardedby mu
	closed bool
	// now supplies wall timestamps; injectable for deterministic golden
	// tests. Immutable after New.
	now func() time.Time
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithClock replaces the wall clock used to timestamp events. Tests
// inject a deterministic clock to make full event streams reproducible.
func WithClock(now func() time.Time) Option {
	return func(t *Tracer) { t.now = now }
}

// New returns a tracer writing to sink. A nil sink yields a nil (i.e.
// disabled) tracer.
func New(sink Sink, opts ...Option) *Tracer {
	if sink == nil {
		return nil
	}
	t := &Tracer{sink: sink, now: time.Now}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Enabled reports whether events should be constructed and emitted. It is
// the fast path of the disabled tracer: nil receivers return false.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit assigns the event's sequence number and wall timestamp and writes
// it to the sink. Emission is serialized: concurrent emitters never
// interleave inside the sink, and the stream's Seq order is the emission
// order. Emit on a nil or closed tracer is a no-op. The first sink error
// is retained (see Err); later writes are dropped.
func (t *Tracer) Emit(ev *Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil {
		return
	}
	ev.Seq = t.seq
	t.seq++
	if ev.WallNanos == 0 {
		ev.WallNanos = t.now().UnixNano()
	}
	if err := t.sink.Write(ev); err != nil {
		t.err = err
	}
}

// Err returns the first sink error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close closes the sink and returns the first error seen on the stream
// (a retained write error takes precedence over the close error). Close
// on a nil tracer is a no-op; further Emits after Close are dropped.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if err := t.sink.Close(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}
