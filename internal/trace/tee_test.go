package trace

import (
	"errors"
	"testing"
)

// failSink errors on demand to exercise tee error propagation.
type failSink struct {
	writeErr error
	closeErr error
	writes   int
	closed   int
}

func (s *failSink) Write(*Event) error { s.writes++; return s.writeErr }
func (s *failSink) Close() error       { s.closed++; return s.closeErr }

func TestTeeFansOutToAllSinks(t *testing.T) {
	a, b := &Buffer{}, &Buffer{}
	tr := New(NewTee(a, b))
	tr.Emit(&Event{Type: RunBegin})
	tr.Emit(&Event{Type: RunEnd})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != 2 || len(b.Events) != 2 {
		t.Fatalf("sinks saw %d/%d events, want 2/2", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverged between tee branches", i)
		}
	}
}

func TestTeeFirstErrorWinsButAllSinksWritten(t *testing.T) {
	errA := errors.New("sink a failed")
	a := &failSink{writeErr: errA}
	b := &failSink{writeErr: errors.New("sink b failed")}
	c := &failSink{}
	tee := NewTee(a, b, c)
	if err := tee.Write(&Event{}); !errors.Is(err, errA) {
		t.Fatalf("Write error = %v, want the first sink's", err)
	}
	if a.writes != 1 || b.writes != 1 || c.writes != 1 {
		t.Fatalf("writes %d/%d/%d, want every sink reached", a.writes, b.writes, c.writes)
	}

	errClose := errors.New("close failed")
	a.closeErr = errClose
	if err := tee.Close(); !errors.Is(err, errClose) {
		t.Fatalf("Close error = %v, want the first sink's", err)
	}
	if a.closed != 1 || b.closed != 1 || c.closed != 1 {
		t.Fatalf("closes %d/%d/%d, want every sink closed", a.closed, b.closed, c.closed)
	}
}
