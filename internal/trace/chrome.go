package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome converts the event stream into Chrome's trace_event JSON array
// (loadable in chrome://tracing and Perfetto). The simulated clock is the
// timeline: slices show where the modeled M-machine makespan goes, which
// is the view the paper's scalability figures argue about.
//
// Lane layout (all under one process):
//
//	tid 0      "driver"     — run and iteration spans, driver sections,
//	                          per-stage network charges, traffic instants
//	tid m+1    "machine m"  — one compute slice per stage per machine
//	                          (the stage's straggle is visible as ragged
//	                          right edges), plus retry/speculation/loss
//	                          instants on the machine they hit
//
// Timestamps are the simulated clock in microseconds (trace_event's unit);
// wall-clock timestamps ride along in each slice's args.
type Chrome struct {
	bw *bufio.Writer
	w  io.Writer
	n  int // events written, for comma placement

	namedTids map[int]bool
	// open span begin events, keyed as the validator keys them: stages
	// and driver sections never overlap themselves, so one slot each.
	stageBegin  *Event
	driverBegin *Event
	iterBegin   map[int]*Event
	runBegin    *Event
	werr        error
}

// NewChrome returns a sink writing the trace_event array to w. If w is an
// io.Closer, Close closes it after completing the array.
func NewChrome(w io.Writer) *Chrome {
	return &Chrome{
		bw:        bufio.NewWriter(w),
		w:         w,
		namedTids: map[int]bool{},
		iterBegin: map[int]*Event{},
	}
}

const driverTid = 0

func machineTid(machine int) int { return machine + 1 }

// chromeEvent is one trace_event entry. Args maps are encoded with sorted
// keys by encoding/json, keeping the output byte-deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func micros(nanos int64) float64 { return float64(nanos) / 1e3 }

func (s *Chrome) put(ce chromeEvent) {
	if s.werr != nil {
		return
	}
	raw, err := json.Marshal(ce)
	if err != nil {
		s.werr = err
		return
	}
	if s.n == 0 {
		_, s.werr = s.bw.WriteString("[\n")
	} else {
		_, s.werr = s.bw.WriteString(",\n")
	}
	if s.werr == nil {
		_, s.werr = s.bw.Write(raw)
	}
	s.n++
}

// nameTid emits the thread metadata for a lane the first time it is used,
// so Perfetto labels and orders the lanes.
func (s *Chrome) nameTid(tid int) {
	if s.namedTids[tid] {
		return
	}
	s.namedTids[tid] = true
	name := "driver"
	if tid != driverTid {
		name = fmt.Sprintf("machine %d", tid-1)
	}
	s.put(chromeEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: tid, Args: map[string]any{"name": name}})
	s.put(chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: tid, Args: map[string]any{"sort_index": tid}})
}

func (s *Chrome) slice(name, cat string, tid int, beginSim, durNanos int64, args map[string]any) {
	s.nameTid(tid)
	s.put(chromeEvent{Name: name, Ph: "X", Cat: cat, Pid: 0, Tid: tid, Ts: micros(beginSim), Dur: micros(durNanos), Args: args})
}

func (s *Chrome) instant(name, cat string, tid int, sim int64, args map[string]any) {
	s.nameTid(tid)
	s.put(chromeEvent{Name: name, Ph: "i", Cat: cat, Pid: 0, Tid: tid, Ts: micros(sim), S: "t", Args: args})
}

// Write converts one trace event into its timeline form. Spans buffer
// their begin event and emit a complete ("X") slice at the matching end,
// which keeps the exporter streaming with O(open spans) memory.
func (s *Chrome) Write(ev *Event) error {
	switch ev.Type {
	case RunBegin:
		s.runBegin = ev
	case RunEnd:
		if s.runBegin != nil {
			s.slice(s.runBegin.Name, "run", driverTid, s.runBegin.SimNanos, ev.SimNanos-s.runBegin.SimNanos,
				map[string]any{"machines": s.runBegin.Machines, "wall_ns": ev.WallNanos - s.runBegin.WallNanos})
			s.runBegin = nil
		}
	case IterationBegin:
		s.iterBegin[ev.Iteration] = ev
	case IterationEnd:
		if b := s.iterBegin[ev.Iteration]; b != nil {
			args := map[string]any{"iteration": ev.Iteration}
			if ev.Error != nil {
				args["error"] = *ev.Error
			}
			if ev.ErrorDelta != nil {
				args["error_delta"] = *ev.ErrorDelta
			}
			s.slice(fmt.Sprintf("iteration %d", ev.Iteration), "iteration", driverTid, b.SimNanos, ev.SimNanos-b.SimNanos, args)
			delete(s.iterBegin, ev.Iteration)
		}
	case StageBegin:
		s.stageBegin = ev
	case StageEnd:
		b := s.stageBegin
		s.stageBegin = nil
		if b == nil {
			return nil
		}
		name := ev.Name
		if name == "" {
			name = fmt.Sprintf("stage %d", ev.Stage)
		}
		for m, nanos := range ev.PerMachineNanos {
			if nanos <= 0 {
				continue
			}
			s.slice(name, "stage", machineTid(m), b.SimNanos, nanos,
				map[string]any{"stage": ev.Stage, "tasks": b.Tasks})
		}
		if ev.Delta != nil && ev.Delta.NetworkNanos > 0 {
			// The network charge lands after the compute makespan: the
			// boundary where the stage's traffic is priced.
			s.slice("net:"+name, "network", driverTid, ev.SimNanos-ev.Delta.NetworkNanos, ev.Delta.NetworkNanos,
				map[string]any{
					"stage":           ev.Stage,
					"shuffled_bytes":  ev.Delta.ShuffledBytes,
					"broadcast_bytes": ev.Delta.BroadcastBytes,
					"collected_bytes": ev.Delta.CollectedBytes,
				})
		}
	case DriverBegin:
		s.driverBegin = ev
	case DriverEnd:
		if b := s.driverBegin; b != nil {
			name := ev.Name
			if name == "" {
				name = "driver"
			}
			s.slice(name, "driver", driverTid, b.SimNanos, ev.DurNanos, nil)
			s.driverBegin = nil
		}
	case Shuffle, Broadcast, Collect, Checkpoint:
		s.instant(string(ev.Type), "traffic", driverTid, ev.SimNanos, map[string]any{"bytes": ev.Bytes})
	case Retry:
		s.instant(fmt.Sprintf("retry task %d", ev.Task), "fault", machineTid(ev.Machine), ev.SimNanos,
			map[string]any{"attempt": ev.Attempt, "stage": ev.Stage})
	case SpeculativeLaunch, SpeculativeWin:
		s.instant(string(ev.Type), "speculation", machineTid(ev.Machine), ev.SimNanos,
			map[string]any{"task": ev.Task, "stage": ev.Stage})
	case MachineLoss, MachineRejoin:
		s.instant(string(ev.Type), "liveness", machineTid(ev.Machine), ev.SimNanos,
			map[string]any{"recovery_bytes": ev.Bytes, "stage": ev.Stage})
	case Wire:
		s.instant("wire:"+ev.Name, "wire", driverTid, ev.SimNanos,
			map[string]any{"bytes": ev.Bytes, "stage": ev.Stage})
	}
	return s.werr
}

// Close completes the JSON array and closes the underlying writer when it
// is closeable.
func (s *Chrome) Close() error {
	if s.werr == nil {
		if s.n == 0 {
			_, s.werr = s.bw.WriteString("[")
		}
		if s.werr == nil {
			_, s.werr = s.bw.WriteString("\n]\n")
		}
	}
	err := s.werr
	if ferr := s.bw.Flush(); err == nil {
		err = ferr
	}
	if c, ok := s.w.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
