package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a deterministic wall clock stepping 1µs per call.
func fakeClock() func() time.Time {
	var n int64
	return func() time.Time {
		n++
		return time.Unix(0, n*1000)
	}
}

func TestNilTracerFastPath(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(NewEvent(StageBegin)) // must not panic
	if err := tr.Err(); err != nil {
		t.Fatalf("nil tracer Err: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("nil tracer Close: %v", err)
	}
	if New(nil) != nil {
		t.Fatal("New(nil) should yield the nil (disabled) tracer")
	}
	// The disabled path must not allocate: the nil check is the entire
	// cost at every emission site.
	allocs := testing.AllocsPerRun(100, func() {
		if tr.Enabled() {
			tr.Emit(NewEvent(StageBegin))
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %v per emission site", allocs)
	}
}

func TestEmitAssignsSeqAndWall(t *testing.T) {
	buf := &Buffer{}
	tr := New(buf, WithClock(fakeClock()))
	for i := 0; i < 3; i++ {
		tr.Emit(NewEvent(Shuffle))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr.Emit(NewEvent(Shuffle)) // dropped after Close
	if len(buf.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(buf.Events))
	}
	for i, ev := range buf.Events {
		if ev.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.WallNanos != int64(i+1)*1000 {
			t.Fatalf("event %d has wall %d, want %d", i, ev.WallNanos, (i+1)*1000)
		}
	}
}

// TestObserveFoldReproducesSnapshot drives the attribution contract on a
// hand-built stream: every counter mutation appears in exactly one event
// and the fold equals the RunEnd snapshot.
func TestObserveFoldReproducesSnapshot(t *testing.T) {
	events := validStream()
	sum, err := Validate(events)
	if err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	if sum.Runs != 1 || sum.Stages != 2 {
		t.Fatalf("summary %+v, want 1 run / 2 stages", sum)
	}
}

// validStream builds a minimal self-consistent run: two stages inside one
// iteration, a driver section, traffic, a retry, and a machine loss at a
// stage boundary. The RunEnd snapshot is the exact fold.
func validStream() []*Event {
	var seq int64
	mk := func(typ Type, f func(*Event)) *Event {
		ev := NewEvent(typ)
		ev.Seq = seq
		seq++
		ev.WallNanos = seq
		if f != nil {
			f(ev)
		}
		return ev
	}
	return []*Event{
		mk(RunBegin, func(e *Event) { e.Machines = 2; e.Name = "test" }),
		mk(IterationBegin, func(e *Event) { e.Iteration = 1 }),
		mk(Shuffle, func(e *Event) { e.Bytes = 100 }),
		mk(StageBegin, func(e *Event) { e.Stage = 0; e.Tasks = 4; e.Name = "build" }),
		mk(Retry, func(e *Event) { e.Stage = 0; e.Machine = 1; e.Task = 2; e.Attempt = 1 }),
		mk(StageEnd, func(e *Event) {
			e.Stage = 0
			e.SimNanos = 50
			e.Delta = &StatsDelta{ShuffledBytes: 100, ComputeNanos: 30, NetworkNanos: 20, TaskNanos: 40, Retries: 1, InjectedFaults: 1}
			e.PerMachineNanos = []int64{30, 10}
		}),
		mk(MachineLoss, func(e *Event) { e.Stage = 1; e.Machine = 1; e.Bytes = 8; e.SimNanos = 50 }),
		mk(Broadcast, func(e *Event) { e.Bytes = 64; e.SimNanos = 50 }),
		mk(StageBegin, func(e *Event) { e.Stage = 1; e.Tasks = 4; e.SimNanos = 50 }),
		mk(StageEnd, func(e *Event) {
			e.Stage = 1
			e.SimNanos = 120
			e.Delta = &StatsDelta{BroadcastBytes: 72, ComputeNanos: 40, NetworkNanos: 30, TaskNanos: 40, Recoveries: 1}
		}),
		mk(DriverBegin, func(e *Event) { e.SimNanos = 120; e.Name = "commit" }),
		mk(DriverEnd, func(e *Event) { e.SimNanos = 125; e.DurNanos = 5 }),
		mk(Collect, func(e *Event) { e.Bytes = 32; e.SimNanos = 125 }),
		mk(IterationEnd, func(e *Event) { e.Iteration = 1; e.SimNanos = 125 }),
		mk(RunEnd, func(e *Event) {
			e.SimNanos = 125
			e.Delta = &StatsDelta{
				ShuffledBytes: 100, BroadcastBytes: 72, CollectedBytes: 32,
				Stages: 2, Tasks: 8,
				ComputeNanos: 70, NetworkNanos: 50, DriverNanos: 5, TaskNanos: 80,
				Retries: 1, InjectedFaults: 1, MachineLosses: 1, Recoveries: 1,
			}
		}),
	}
}

func TestValidateRejections(t *testing.T) {
	type mut func([]*Event) []*Event
	cases := []struct {
		name string
		mut  mut
		want string
	}{
		{"seq regression", func(evs []*Event) []*Event {
			evs[5].Seq = evs[4].Seq
			return evs
		}, "strictly increase"},
		{"clock backwards", func(evs []*Event) []*Event {
			evs[9].SimNanos = 10 // StageEnd earlier than its begin's 50
			return evs
		}, "backwards"},
		{"loss inside stage", func(evs []*Event) []*Event {
			// Move the machine loss after the second StageBegin.
			evs[6], evs[8] = evs[8], evs[6]
			evs[6].Seq, evs[8].Seq = evs[8].Seq, evs[6].Seq
			return evs
		}, "stage boundaries"},
		{"stage end mismatch", func(evs []*Event) []*Event {
			evs[5].Stage = 7
			return evs
		}, "does not match"},
		{"missing stage delta", func(evs []*Event) []*Event {
			evs[5].Delta = nil
			return evs
		}, "without a stats delta"},
		{"fold mismatch", func(evs []*Event) []*Event {
			evs[len(evs)-1].Delta.ShuffledBytes += 1
			return evs
		}, "do not reproduce"},
		{"open spans at EOF", func(evs []*Event) []*Event {
			return evs[:len(evs)-1]
		}, "open spans"},
		{"retry outside stage", func(evs []*Event) []*Event {
			evs[4], evs[3] = evs[3], evs[4]
			evs[4].Seq, evs[3].Seq = evs[3].Seq, evs[4].Seq
			return evs
		}, "outside an open stage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Validate(tc.mut(validStream()))
			if err == nil {
				t.Fatalf("mutated stream accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONL(&buf), WithClock(fakeClock()))
	for _, ev := range validStream() {
		ev.Seq = 0 // re-assigned by the tracer
		tr.Emit(ev)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round-tripped stream invalid: %v", err)
	}
	if sum.Runs != 1 || sum.Stages != 2 {
		t.Fatalf("summary %+v after round trip", sum)
	}
}

func TestDecodeJSONLRejectsUnknown(t *testing.T) {
	if _, err := DecodeJSONL(strings.NewReader(`{"type":"warp_drive","seq":0,"wall_ns":1,"sim_ns":0,"stage":-1,"machine":-1,"task":-1}`)); err == nil {
		t.Fatal("unknown event type accepted")
	}
	if _, err := DecodeJSONL(strings.NewReader(`{"type":"shuffle","seq":0,"wall_ns":1,"sim_ns":0,"stage":-1,"machine":-1,"task":-1,"surprise":3}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestChromeSinkProducesValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewChrome(&buf), WithClock(fakeClock()))
	for _, ev := range validStream() {
		ev.Seq = 0
		tr.Emit(ev)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) == 0 {
		t.Fatal("chrome output empty")
	}
	var sawMachineSlice, sawDriverLane bool
	for _, e := range events {
		switch {
		case e["ph"] == "X" && e["tid"].(float64) > 0:
			sawMachineSlice = true
		case e["ph"] == "M" && e["tid"].(float64) == 0:
			sawDriverLane = true
		}
	}
	if !sawMachineSlice {
		t.Fatal("no per-machine stage slice in chrome output")
	}
	if !sawDriverLane {
		t.Fatal("driver lane metadata missing")
	}
}

func TestChromeSinkEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	s := NewChrome(&buf)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty chrome trace invalid: %v (%q)", err, buf.String())
	}
	if len(events) != 0 {
		t.Fatalf("empty stream produced %d events", len(events))
	}
}
