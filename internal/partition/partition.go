// Package partition implements DBTF's cache-friendly vertical partitioning
// of unfolded tensors (paper Section III-D, Algorithm 3).
//
// An unfolded tensor X₍ₙ₎ ∈ B^{P×Q} is split column-wise into N contiguous
// partitions of near-equal width (partition sizes differ by at most one
// column, satisfying Algorithm 3's ⌊Q/N⌋ ≤ H ≤ ⌈Q/N⌉). Each partition is
// further divided into blocks at the boundaries of the underlying pointwise
// vector-matrix (PVM) products, so that every block lies within a single
// PVM product and can fetch its Boolean row summations from one cache
// table. Blocks are classified into the four types of Figure 5; Lemma 3
// (at most three types per partition) is asserted by tests.
//
// Each block stores its nonzeros in compressed sparse row form with column
// indices relative to the block start, the exact layout the error
// evaluation of Algorithm 4 consumes.
package partition

import (
	"fmt"

	"dbtf/internal/bitvec"
	"dbtf/internal/sumcache"
	"dbtf/internal/tensor"
)

// DenseRowThreshold is the block density at or above which packed row bit
// vectors are built alongside the CSR form. The word-parallel dense
// kernels cost ⌈width/64⌉ word operations per row while the sparse offset
// walk costs one (gathered) operation per nonzero, so the break-even
// density is 1/64; storage stays within 64 bits per nonzero, the same
// order as the CSR offsets.
const DenseRowThreshold = 1.0 / 64

// BlockType classifies a block by how it meets the boundaries of its PVM
// product (the numbered kinds of the paper's Figure 5).
type BlockType int

// Block types (1)-(4) of Figure 5.
const (
	// Interior blocks touch neither boundary of their PVM product: the
	// partition lies strictly inside a single product.
	Interior BlockType = 1
	// Suffix blocks end exactly at their product's right boundary but
	// start inside it.
	Suffix BlockType = 2
	// Full blocks cover an entire PVM product.
	Full BlockType = 3
	// Prefix blocks start exactly at their product's left boundary but end
	// inside it.
	Prefix BlockType = 4
)

// String returns the paper's numeral for the block type.
func (t BlockType) String() string {
	switch t {
	case Interior:
		return "(1)"
	case Suffix:
		return "(2)"
	case Full:
		return "(3)"
	case Prefix:
		return "(4)"
	default:
		return fmt.Sprintf("BlockType(%d)", int(t))
	}
}

// Block is a maximal column range of a partition lying within a single PVM
// product.
type Block struct {
	// PVM is the index of the covering PVM product: for mode-1 updates of
	// A against X₍₁₎ ≈ A ∘ (C ⊙ B)ᵀ this is the row index k of C.
	PVM int
	// Lo and Hi delimit the block's global column range [Lo, Hi).
	Lo, Hi int
	// InnerLo is Lo − PVM·BlockSize: the block's starting offset inside
	// its PVM product. A sliced cache over [InnerLo, InnerLo+width) serves
	// this block.
	InnerLo int
	// Type is the Figure 5 classification.
	Type BlockType

	// CSR of the block's nonzeros: for row r, bits[rowPtr[r]:rowPtr[r+1]]
	// are column indices relative to Lo, sorted ascending.
	rowPtr []int32
	bits   []int32

	// denseWords packs every row as a width-bit vector (stride words per
	// row) when the block's density reaches DenseRowThreshold; nil for
	// sparse blocks. The error kernels pick the representation per block.
	denseWords []uint64
	stride     int
}

// Width returns the number of columns the block covers.
func (b *Block) Width() int { return b.Hi - b.Lo }

// RowBits returns row r's nonzero column offsets relative to the block
// start. The slice is shared; callers must not modify it.
func (b *Block) RowBits(r int) []int32 {
	return b.bits[b.rowPtr[r]:b.rowPtr[r+1]]
}

// NNZ returns the number of nonzeros in the block.
func (b *Block) NNZ() int { return len(b.bits) }

// Dense reports whether the block carries packed row bit vectors and the
// word-parallel kernels apply to it.
func (b *Block) Dense() bool { return b.denseWords != nil }

// RowWords returns row r's packed words (⌈width/64⌉ of them); nil for
// sparse blocks. The slice is shared; callers must not modify it.
func (b *Block) RowWords(r int) []uint64 {
	if b.denseWords == nil {
		return nil
	}
	return b.denseWords[r*b.stride : (r+1)*b.stride]
}

// Density returns the fraction of set cells in the block.
func (b *Block) Density(rows int) float64 {
	cells := rows * b.Width()
	if cells == 0 {
		return 0
	}
	return float64(len(b.bits)) / float64(cells)
}

// DeltaError returns e1 − e0 for row r: the difference between the row's
// reconstruction error with the candidate entry set to 1 versus 0, given
// the delta region d of the candidate summations (Algorithm 4's decision
// reduced to the flipped cells only):
//
//	e1 − e0 = |D| − 2·|x_row ∧ D|
//
// Dense blocks intersect the packed row with the delta word-at-a-time;
// sparse blocks walk the row's nonzero offsets.
//
//dbtf:noalloc
func (b *Block) DeltaError(r int, d *sumcache.Delta) int64 {
	if len(d.Occ) == 0 {
		// Single-group delta: D is exactly the gain vector W1 &^ W0 and
		// |D| is its cached popcount.
		var overlap int
		if b.denseWords != nil {
			//dbtf:samewidth block stride and delta words both equal ceil(width/64) for the block's cache slice
			overlap = bitvec.AndAndNotCountWords(b.RowWords(r), d.W1, d.W0)
		} else {
			overlap = sparseGainOverlap(b.RowBits(r), d.W1, d.W0, nil)
		}
		return int64(d.Pop - 2*overlap)
	}
	if b.denseWords != nil {
		//dbtf:samewidth block stride and delta words both equal ceil(width/64) for the block's cache slice
		gain, overlap := bitvec.GainCountsWords(b.RowWords(r), d.W1, d.W0, d.Occ)
		return int64(gain - 2*overlap)
	}
	//dbtf:samewidth nil row is allowed by the kernel; delta words share one cache slice width
	gain, _ := bitvec.GainCountsWords(nil, d.W1, d.W0, d.Occ)
	return int64(gain - 2*sparseGainOverlap(b.RowBits(r), d.W1, d.W0, d.Occ))
}

// sparseGainOverlap counts the offsets lying inside the occluded gain
// region (w1 &^ w0) &^ occ..., gathering one word per nonzero.
//
//dbtf:noalloc
func sparseGainOverlap(offs []int32, w1, w0 []uint64, occ [][]uint64) int {
	n := 0
	for _, o := range offs {
		wi := int(o) >> 6
		d := w1[wi] &^ w0[wi] & (uint64(1) << (uint32(o) & 63))
		if d == 0 {
			continue
		}
		for _, ow := range occ {
			d &^= ow[wi]
		}
		if d != 0 {
			n++
		}
	}
	return n
}

// RowError returns |x_row ⊕ sum| for row r against a materialized
// candidate summation with popcount pop. Dense blocks use the
// word-parallel Hamming distance; sparse blocks walk the nonzeros
// (nnz + |sum| − 2·overlap, Lemma 4's note on step iii).
//
//dbtf:noalloc
func (b *Block) RowError(r int, sum *bitvec.BitVec, pop int) int64 {
	if b.denseWords != nil {
		//dbtf:samewidth the summation comes from the block's own cache slice, so its word count equals the stride
		return int64(bitvec.XorCountWords(b.RowWords(r), sum.Words()))
	}
	rowBits := b.RowBits(r)
	overlap := 0
	for _, off := range rowBits {
		if sum.Get(int(off)) {
			overlap++
		}
	}
	return int64(len(rowBits) + pop - 2*overlap)
}

// Partition is one contiguous vertical slice of an unfolded tensor.
type Partition struct {
	// Index is the partition's position 0..N-1.
	Index int
	// Lo and Hi delimit the partition's global column range [Lo, Hi).
	Lo, Hi int
	// Blocks are the partition's PVM-aligned blocks, in column order.
	Blocks []*Block
}

// Width returns the number of columns the partition covers.
func (p *Partition) Width() int { return p.Hi - p.Lo }

// NNZ returns the number of nonzeros in the partition.
func (p *Partition) NNZ() int {
	n := 0
	for _, b := range p.Blocks {
		n += b.NNZ()
	}
	return n
}

// Partitioned is a vertically partitioned unfolded tensor: the cached,
// distributed form px of Algorithm 3.
type Partitioned struct {
	// NumRows is the row count P of the unfolded tensor.
	NumRows int
	// NumCols is the column count Q.
	NumCols int
	// BlockSize is the PVM product width (rows of the second Khatri–Rao
	// operand).
	BlockSize int
	// Parts holds the N partitions in column order.
	Parts []*Partition
	// ShuffleBytes estimates the data volume moved when distributing the
	// partitions across machines (Lemma 6: O(|X|)).
	ShuffleBytes int64
}

// ReshipBytes estimates the data volume of re-shipping partition pi to a
// surviving machine after its home machine is lost: the partition's share
// of ShuffleBytes — 12 bytes per nonzero plus the partition's own
// row-pointer overhead.
func (p *Partitioned) ReshipBytes(pi int) int64 {
	return int64(p.Parts[pi].NNZ())*12 + int64(p.NumRows)*4
}

// Build vertically partitions an unfolded tensor into n partitions and
// splits each partition into PVM-aligned blocks (Algorithm 3). n is capped
// at the column count so every partition is nonempty; at least one
// partition is always produced.
func Build(u *tensor.Unfolded, n int) *Partitioned {
	if n < 1 {
		panic(fmt.Sprintf("partition: n must be >= 1, got %d", n))
	}
	if u.NumCols > 0 && n > u.NumCols {
		n = u.NumCols
	}
	px := &Partitioned{
		NumRows:   u.NumRows,
		NumCols:   u.NumCols,
		BlockSize: u.BlockSize,
		// 12 bytes per nonzero (row, column) plus row-pointer overhead
		// approximates the shuffled representation.
		ShuffleBytes: int64(u.NNZ())*12 + int64(u.NumRows)*4,
	}
	// Lay out every partition's blocks first; together their column ranges
	// tile [0, NumCols) in ascending order, so all CSR forms can be filled
	// by merged sweeps per row instead of per-block binary searches. Two
	// passes: the first counts nonzeros per block, the second writes the
	// exact-size layout — CSR offsets, row pointers, and (for blocks at or
	// above DenseRowThreshold) the packed row words — each carved out of
	// one shared backing array.
	var all []*Block
	for i := 0; i < n; i++ {
		lo := i * u.NumCols / n
		hi := (i + 1) * u.NumCols / n
		p := &Partition{Index: i, Lo: lo, Hi: hi}
		for _, s := range blockSpans(lo, hi, u.BlockSize) {
			b := &Block{
				PVM:     s.pvm,
				Lo:      s.lo,
				Hi:      s.hi,
				InnerLo: s.lo - s.pvm*u.BlockSize,
				Type:    classify(s, u.BlockSize),
			}
			p.Blocks = append(p.Blocks, b)
			all = append(all, b)
		}
		px.Parts = append(px.Parts, p)
	}

	counts := make([]int, len(all))
	for r := 0; r < u.NumRows; r++ {
		bi := 0
		for _, c := range u.Row(r) {
			for c >= all[bi].Hi {
				bi++
			}
			counts[bi]++
		}
	}
	bitsArena := make([]int32, u.NNZ())
	ptrArena := make([]int32, len(all)*(u.NumRows+1))
	denseTotal := 0
	off := 0
	for bi, b := range all {
		b.bits = bitsArena[off : off : off+counts[bi]]
		off += counts[bi]
		b.rowPtr = ptrArena[bi*(u.NumRows+1) : (bi+1)*(u.NumRows+1)]
		if cells := u.NumRows * b.Width(); cells > 0 &&
			float64(counts[bi])/float64(cells) >= DenseRowThreshold {
			b.stride = (b.Width() + bitvec.WordBits - 1) / bitvec.WordBits
			denseTotal += u.NumRows * b.stride
		}
	}
	denseArena := make([]uint64, denseTotal)
	for _, b := range all {
		if b.stride > 0 {
			b.denseWords = denseArena[:u.NumRows*b.stride]
			denseArena = denseArena[u.NumRows*b.stride:]
		}
	}
	for r := 0; r < u.NumRows; r++ {
		bi := 0
		for _, c := range u.Row(r) {
			for c >= all[bi].Hi {
				bi++
			}
			b := all[bi]
			o := int32(c - b.Lo)
			b.bits = append(b.bits, o)
			if b.stride > 0 {
				b.denseWords[r*b.stride+int(o)>>6] |= uint64(1) << (uint32(o) & 63)
			}
		}
		for _, b := range all {
			b.rowPtr[r+1] = int32(len(b.bits))
		}
	}
	return px
}

type span struct {
	pvm    int
	lo, hi int
}

// blockSpans cuts [lo, hi) at multiples of blockSize.
func blockSpans(lo, hi, blockSize int) []span {
	var out []span
	for cur := lo; cur < hi; {
		pvm := cur / blockSize
		end := (pvm + 1) * blockSize
		if end > hi {
			end = hi
		}
		out = append(out, span{pvm: pvm, lo: cur, hi: end})
		cur = end
	}
	return out
}

func classify(s span, blockSize int) BlockType {
	left := s.lo == s.pvm*blockSize
	right := s.hi == (s.pvm+1)*blockSize
	switch {
	case left && right:
		return Full
	case left:
		return Prefix
	case right:
		return Suffix
	default:
		return Interior
	}
}

// TypeSet returns the distinct block types present in the partition, in
// ascending order. Lemma 3 guarantees at most three.
func (p *Partition) TypeSet() []BlockType {
	seen := map[BlockType]bool{}
	var out []BlockType
	for _, t := range []BlockType{Interior, Suffix, Full, Prefix} {
		for _, b := range p.Blocks {
			if b.Type == t && !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}
