// Package partition implements DBTF's cache-friendly vertical partitioning
// of unfolded tensors (paper Section III-D, Algorithm 3).
//
// An unfolded tensor X₍ₙ₎ ∈ B^{P×Q} is split column-wise into N contiguous
// partitions of near-equal width (partition sizes differ by at most one
// column, satisfying Algorithm 3's ⌊Q/N⌋ ≤ H ≤ ⌈Q/N⌉). Each partition is
// further divided into blocks at the boundaries of the underlying pointwise
// vector-matrix (PVM) products, so that every block lies within a single
// PVM product and can fetch its Boolean row summations from one cache
// table. Blocks are classified into the four types of Figure 5; Lemma 3
// (at most three types per partition) is asserted by tests.
//
// Each block stores its nonzeros in compressed sparse row form with column
// indices relative to the block start, the exact layout the error
// evaluation of Algorithm 4 consumes.
package partition

import (
	"fmt"

	"dbtf/internal/tensor"
)

// BlockType classifies a block by how it meets the boundaries of its PVM
// product (the numbered kinds of the paper's Figure 5).
type BlockType int

// Block types (1)-(4) of Figure 5.
const (
	// Interior blocks touch neither boundary of their PVM product: the
	// partition lies strictly inside a single product.
	Interior BlockType = 1
	// Suffix blocks end exactly at their product's right boundary but
	// start inside it.
	Suffix BlockType = 2
	// Full blocks cover an entire PVM product.
	Full BlockType = 3
	// Prefix blocks start exactly at their product's left boundary but end
	// inside it.
	Prefix BlockType = 4
)

// String returns the paper's numeral for the block type.
func (t BlockType) String() string {
	switch t {
	case Interior:
		return "(1)"
	case Suffix:
		return "(2)"
	case Full:
		return "(3)"
	case Prefix:
		return "(4)"
	default:
		return fmt.Sprintf("BlockType(%d)", int(t))
	}
}

// Block is a maximal column range of a partition lying within a single PVM
// product.
type Block struct {
	// PVM is the index of the covering PVM product: for mode-1 updates of
	// A against X₍₁₎ ≈ A ∘ (C ⊙ B)ᵀ this is the row index k of C.
	PVM int
	// Lo and Hi delimit the block's global column range [Lo, Hi).
	Lo, Hi int
	// InnerLo is Lo − PVM·BlockSize: the block's starting offset inside
	// its PVM product. A sliced cache over [InnerLo, InnerLo+width) serves
	// this block.
	InnerLo int
	// Type is the Figure 5 classification.
	Type BlockType

	// CSR of the block's nonzeros: for row r, bits[rowPtr[r]:rowPtr[r+1]]
	// are column indices relative to Lo, sorted ascending.
	rowPtr []int32
	bits   []int32
}

// Width returns the number of columns the block covers.
func (b *Block) Width() int { return b.Hi - b.Lo }

// RowBits returns row r's nonzero column offsets relative to the block
// start. The slice is shared; callers must not modify it.
func (b *Block) RowBits(r int) []int32 {
	return b.bits[b.rowPtr[r]:b.rowPtr[r+1]]
}

// NNZ returns the number of nonzeros in the block.
func (b *Block) NNZ() int { return len(b.bits) }

// Partition is one contiguous vertical slice of an unfolded tensor.
type Partition struct {
	// Index is the partition's position 0..N-1.
	Index int
	// Lo and Hi delimit the partition's global column range [Lo, Hi).
	Lo, Hi int
	// Blocks are the partition's PVM-aligned blocks, in column order.
	Blocks []*Block
}

// Width returns the number of columns the partition covers.
func (p *Partition) Width() int { return p.Hi - p.Lo }

// NNZ returns the number of nonzeros in the partition.
func (p *Partition) NNZ() int {
	n := 0
	for _, b := range p.Blocks {
		n += b.NNZ()
	}
	return n
}

// Partitioned is a vertically partitioned unfolded tensor: the cached,
// distributed form px of Algorithm 3.
type Partitioned struct {
	// NumRows is the row count P of the unfolded tensor.
	NumRows int
	// NumCols is the column count Q.
	NumCols int
	// BlockSize is the PVM product width (rows of the second Khatri–Rao
	// operand).
	BlockSize int
	// Parts holds the N partitions in column order.
	Parts []*Partition
	// ShuffleBytes estimates the data volume moved when distributing the
	// partitions across machines (Lemma 6: O(|X|)).
	ShuffleBytes int64
}

// Build vertically partitions an unfolded tensor into n partitions and
// splits each partition into PVM-aligned blocks (Algorithm 3). n is capped
// at the column count so every partition is nonempty; at least one
// partition is always produced.
func Build(u *tensor.Unfolded, n int) *Partitioned {
	if n < 1 {
		panic(fmt.Sprintf("partition: n must be >= 1, got %d", n))
	}
	if u.NumCols > 0 && n > u.NumCols {
		n = u.NumCols
	}
	px := &Partitioned{
		NumRows:   u.NumRows,
		NumCols:   u.NumCols,
		BlockSize: u.BlockSize,
		// 12 bytes per nonzero (row, column) plus row-pointer overhead
		// approximates the shuffled representation.
		ShuffleBytes: int64(u.NNZ())*12 + int64(u.NumRows)*4,
	}
	for i := 0; i < n; i++ {
		lo := i * u.NumCols / n
		hi := (i + 1) * u.NumCols / n
		p := &Partition{Index: i, Lo: lo, Hi: hi}
		for _, span := range blockSpans(lo, hi, u.BlockSize) {
			p.Blocks = append(p.Blocks, buildBlock(u, span))
		}
		px.Parts = append(px.Parts, p)
	}
	return px
}

type span struct {
	pvm    int
	lo, hi int
}

// blockSpans cuts [lo, hi) at multiples of blockSize.
func blockSpans(lo, hi, blockSize int) []span {
	var out []span
	for cur := lo; cur < hi; {
		pvm := cur / blockSize
		end := (pvm + 1) * blockSize
		if end > hi {
			end = hi
		}
		out = append(out, span{pvm: pvm, lo: cur, hi: end})
		cur = end
	}
	return out
}

func buildBlock(u *tensor.Unfolded, s span) *Block {
	b := &Block{
		PVM:     s.pvm,
		Lo:      s.lo,
		Hi:      s.hi,
		InnerLo: s.lo - s.pvm*u.BlockSize,
		Type:    classify(s, u.BlockSize),
		rowPtr:  make([]int32, u.NumRows+1),
	}
	for r := 0; r < u.NumRows; r++ {
		cols := u.RowInRange(r, s.lo, s.hi)
		for _, c := range cols {
			b.bits = append(b.bits, int32(c-s.lo))
		}
		b.rowPtr[r+1] = int32(len(b.bits))
	}
	return b
}

func classify(s span, blockSize int) BlockType {
	left := s.lo == s.pvm*blockSize
	right := s.hi == (s.pvm+1)*blockSize
	switch {
	case left && right:
		return Full
	case left:
		return Prefix
	case right:
		return Suffix
	default:
		return Interior
	}
}

// TypeSet returns the distinct block types present in the partition, in
// ascending order. Lemma 3 guarantees at most three.
func (p *Partition) TypeSet() []BlockType {
	seen := map[BlockType]bool{}
	var out []BlockType
	for _, t := range []BlockType{Interior, Suffix, Full, Prefix} {
		for _, b := range p.Blocks {
			if b.Type == t && !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}
