// Package partition implements DBTF's cache-friendly vertical partitioning
// of unfolded tensors (paper Section III-D, Algorithm 3).
//
// An unfolded tensor X₍ₙ₎ ∈ B^{P×Q} is split column-wise into N contiguous
// partitions of near-equal width (partition sizes differ by at most one
// column, satisfying Algorithm 3's ⌊Q/N⌋ ≤ H ≤ ⌈Q/N⌉). Each partition is
// further divided into blocks at the boundaries of the underlying pointwise
// vector-matrix (PVM) products, so that every block lies within a single
// PVM product and can fetch its Boolean row summations from one cache
// table. Blocks are classified into the four types of Figure 5; Lemma 3
// (at most three types per partition) is asserted by tests.
//
// Each block stores its nonzeros in compressed sparse row form with column
// indices relative to the block start, the exact layout the error
// evaluation of Algorithm 4 consumes.
package partition

import (
	"fmt"

	"dbtf/internal/bitvec"
	"dbtf/internal/slab"
	"dbtf/internal/sumcache"
	"dbtf/internal/tensor"
)

// DenseRowThreshold is the block density at or above which packed row bit
// vectors are built alongside the CSR form. The word-parallel dense
// kernels cost ⌈width/64⌉ word operations per row while the sparse offset
// walk costs one (gathered) operation per nonzero, so the break-even
// density is 1/64; storage stays within 64 bits per nonzero, the same
// order as the CSR offsets.
const DenseRowThreshold = 1.0 / 64

// BlockType classifies a block by how it meets the boundaries of its PVM
// product (the numbered kinds of the paper's Figure 5).
type BlockType int

// Block types (1)-(4) of Figure 5.
const (
	// Interior blocks touch neither boundary of their PVM product: the
	// partition lies strictly inside a single product.
	Interior BlockType = 1
	// Suffix blocks end exactly at their product's right boundary but
	// start inside it.
	Suffix BlockType = 2
	// Full blocks cover an entire PVM product.
	Full BlockType = 3
	// Prefix blocks start exactly at their product's left boundary but end
	// inside it.
	Prefix BlockType = 4
)

// String returns the paper's numeral for the block type.
func (t BlockType) String() string {
	switch t {
	case Interior:
		return "(1)"
	case Suffix:
		return "(2)"
	case Full:
		return "(3)"
	case Prefix:
		return "(4)"
	default:
		return fmt.Sprintf("BlockType(%d)", int(t))
	}
}

// Block is a maximal column range of a partition lying within a single PVM
// product.
type Block struct {
	// PVM is the index of the covering PVM product: for mode-1 updates of
	// A against X₍₁₎ ≈ A ∘ (C ⊙ B)ᵀ this is the row index k of C.
	PVM int
	// Lo and Hi delimit the block's global column range [Lo, Hi).
	Lo, Hi int
	// InnerLo is Lo − PVM·BlockSize: the block's starting offset inside
	// its PVM product. A sliced cache over [InnerLo, InnerLo+width) serves
	// this block.
	InnerLo int
	// Type is the Figure 5 classification.
	Type BlockType

	// CSR of the block's nonzeros: for row r, bits[rowPtr[r]:rowPtr[r+1]]
	// are column indices relative to Lo, sorted ascending.
	rowPtr []int32
	bits   []int32

	// denseWords packs every row as a width-bit vector (stride words per
	// row) when the block's density reaches DenseRowThreshold; nil for
	// sparse blocks. The error kernels pick the representation per block.
	denseWords []uint64
	stride     int
}

// Width returns the number of columns the block covers.
func (b *Block) Width() int { return b.Hi - b.Lo }

// RowBits returns row r's nonzero column offsets relative to the block
// start. The slice is shared; callers must not modify it.
func (b *Block) RowBits(r int) []int32 {
	return b.bits[b.rowPtr[r]:b.rowPtr[r+1]]
}

// NNZ returns the number of nonzeros in the block.
func (b *Block) NNZ() int { return len(b.bits) }

// Dense reports whether the block carries packed row bit vectors and the
// word-parallel kernels apply to it.
func (b *Block) Dense() bool { return b.denseWords != nil }

// RowWords returns row r's packed words (⌈width/64⌉ of them); nil for
// sparse blocks. The slice is shared; callers must not modify it.
func (b *Block) RowWords(r int) []uint64 {
	if b.denseWords == nil {
		return nil
	}
	return b.denseWords[r*b.stride : (r+1)*b.stride]
}

// Density returns the fraction of set cells in the block.
func (b *Block) Density(rows int) float64 {
	cells := rows * b.Width()
	if cells == 0 {
		return 0
	}
	return float64(len(b.bits)) / float64(cells)
}

// DeltaError returns e1 − e0 for row r: the difference between the row's
// reconstruction error with the candidate entry set to 1 versus 0, given
// the delta region d of the candidate summations (Algorithm 4's decision
// reduced to the flipped cells only):
//
//	e1 − e0 = |D| − 2·|x_row ∧ D|
//
// Dense blocks intersect the packed row with the delta word-at-a-time;
// sparse blocks walk the row's nonzero offsets.
//
//dbtf:noalloc
func (b *Block) DeltaError(r int, d *sumcache.Delta) int64 {
	if len(d.Occ) == 0 {
		// Single-group delta: D is exactly the gain vector W1 &^ W0 and
		// |D| is its cached popcount.
		var overlap int
		if b.denseWords != nil {
			//dbtf:samewidth block stride and delta words both equal ceil(width/64) for the block's cache slice
			overlap = bitvec.AndAndNotCountWords(b.RowWords(r), d.W1, d.W0)
		} else {
			overlap = sparseGainOverlap(b.RowBits(r), d.W1, d.W0, nil)
		}
		return int64(d.Pop - 2*overlap)
	}
	if b.denseWords != nil {
		//dbtf:samewidth block stride and delta words both equal ceil(width/64) for the block's cache slice
		gain, overlap := bitvec.GainCountsWords(b.RowWords(r), d.W1, d.W0, d.Occ)
		return int64(gain - 2*overlap)
	}
	//dbtf:samewidth nil row is allowed by the kernel; delta words share one cache slice width
	gain, _ := bitvec.GainCountsWords(nil, d.W1, d.W0, d.Occ)
	return int64(gain - 2*sparseGainOverlap(b.RowBits(r), d.W1, d.W0, d.Occ))
}

// sparseGainOverlap counts the offsets lying inside the occluded gain
// region (w1 &^ w0) &^ occ..., gathering one word per nonzero.
//
//dbtf:noalloc
func sparseGainOverlap(offs []int32, w1, w0 []uint64, occ [][]uint64) int {
	n := 0
	for _, o := range offs {
		wi := int(o) >> 6
		d := w1[wi] &^ w0[wi] & (uint64(1) << (uint32(o) & 63))
		if d == 0 {
			continue
		}
		for _, ow := range occ {
			d &^= ow[wi]
		}
		if d != 0 {
			n++
		}
	}
	return n
}

// RowError returns |x_row ⊕ sum| for row r against a materialized
// candidate summation with popcount pop. Dense blocks use the
// word-parallel Hamming distance; sparse blocks walk the nonzeros
// (nnz + |sum| − 2·overlap, Lemma 4's note on step iii).
//
//dbtf:noalloc
func (b *Block) RowError(r int, sum *bitvec.BitVec, pop int) int64 {
	if b.denseWords != nil {
		//dbtf:samewidth the summation comes from the block's own cache slice, so its word count equals the stride
		return int64(bitvec.XorCountWords(b.RowWords(r), sum.Words()))
	}
	rowBits := b.RowBits(r)
	overlap := 0
	for _, off := range rowBits {
		if sum.Get(int(off)) {
			overlap++
		}
	}
	return int64(len(rowBits) + pop - 2*overlap)
}

// Partition is one contiguous vertical slice of an unfolded tensor.
type Partition struct {
	// Index is the partition's position 0..N-1.
	Index int
	// Lo and Hi delimit the partition's global column range [Lo, Hi).
	Lo, Hi int
	// Blocks are the partition's PVM-aligned blocks, in column order.
	Blocks []*Block
}

// Width returns the number of columns the partition covers.
func (p *Partition) Width() int { return p.Hi - p.Lo }

// NNZ returns the number of nonzeros in the partition.
func (p *Partition) NNZ() int {
	n := 0
	for _, b := range p.Blocks {
		n += b.NNZ()
	}
	return n
}

// Partitioned is a vertically partitioned unfolded tensor: the cached,
// distributed form px of Algorithm 3.
type Partitioned struct {
	// NumRows is the row count P of the unfolded tensor.
	NumRows int
	// NumCols is the column count Q.
	NumCols int
	// BlockSize is the PVM product width (rows of the second Khatri–Rao
	// operand).
	BlockSize int
	// Parts holds the N partitions in column order.
	Parts []*Partition
	// ShuffleBytes estimates the data volume moved when distributing the
	// partitions across machines (Lemma 6: O(|X|)).
	ShuffleBytes int64

	// Backing arenas shared by every block's CSR offsets, row pointers and
	// packed rows; returned to the slab pool by Release.
	ptrArena, bitsArena []int32
	denseArena          []uint64
}

// Release returns the partitioning's backing arenas to the slab pool and
// poisons it against further use: afterwards no Partition or Block derived
// from it may be touched. Owners with a clear end of life (a decomposition
// returning, a worker replacing its setup) call it; everyone else lets the
// garbage collector take the arenas.
func (p *Partitioned) Release() {
	slab.PutInt32s(p.ptrArena)
	slab.PutInt32s(p.bitsArena)
	slab.PutUint64s(p.denseArena)
	p.ptrArena, p.bitsArena, p.denseArena = nil, nil, nil
	p.Parts = nil
}

// ReshipBytes estimates the data volume of re-shipping partition pi to a
// surviving machine after its home machine is lost: the partition's share
// of ShuffleBytes — 12 bytes per nonzero plus the partition's own
// row-pointer overhead.
func (p *Partitioned) ReshipBytes(pi int) int64 {
	return int64(p.Parts[pi].NNZ())*12 + int64(p.NumRows)*4
}

// Build vertically partitions an unfolded tensor into n partitions and
// splits each partition into PVM-aligned blocks (Algorithm 3). n is capped
// at the column count so every partition is nonempty; at least one
// partition is always produced.
func Build(u *tensor.Unfolded, n int) *Partitioned {
	if n < 1 {
		panic(fmt.Sprintf("partition: n must be >= 1, got %d", n))
	}
	if u.NumCols > 0 && n > u.NumCols {
		n = u.NumCols
	}
	px := &Partitioned{
		NumRows:   u.NumRows,
		NumCols:   u.NumCols,
		BlockSize: u.BlockSize,
		// 12 bytes per nonzero (row, column) plus row-pointer overhead
		// approximates the shuffled representation.
		ShuffleBytes: int64(u.NNZ())*12 + int64(u.NumRows)*4,
	}
	// Lay out every partition's blocks first; together their column ranges
	// tile [0, NumCols) in ascending order, so all CSR forms can be filled
	// by merged sweeps per row instead of per-block binary searches. Two
	// passes: the first counts nonzeros per block, the second writes the
	// exact-size layout — CSR offsets, row pointers, and (for blocks at or
	// above DenseRowThreshold) the packed row words — each carved out of
	// one shared backing array.
	var all []*Block
	for i := 0; i < n; i++ {
		lo := i * u.NumCols / n
		hi := (i + 1) * u.NumCols / n
		p := &Partition{Index: i, Lo: lo, Hi: hi}
		for _, s := range blockSpans(lo, hi, u.BlockSize) {
			b := &Block{
				PVM:     s.pvm,
				Lo:      s.lo,
				Hi:      s.hi,
				InnerLo: s.lo - s.pvm*u.BlockSize,
				Type:    classify(s, u.BlockSize),
			}
			p.Blocks = append(p.Blocks, b)
			all = append(all, b)
		}
		px.Parts = append(px.Parts, p)
	}

	// Every block is a column range inside a single PVM product, so its
	// row segments are sub-ranges of the unfolding's (row, PVM block)
	// buckets. The count pass below is therefore pure bucket arithmetic
	// for full blocks — no nonzero is touched — and a short end-trim of
	// the bucket segment for the at-most-two partial blocks a partition
	// boundary cuts into a product. The fill pass then writes each block's
	// CSR offsets (and packed rows, for blocks at or above
	// DenseRowThreshold) sequentially into arenas shared by all blocks.
	nb := len(all)
	rows := u.NumRows
	offs, nbPVM := u.BucketOffs(), u.NumBlocks
	ptrArena := slab.Int32s(nb * (rows + 1))
	denseTotal := 0
	bitsOff := make([]int32, nb+1)
	for bi, b := range all {
		rp := ptrArena[bi*(rows+1) : (bi+1)*(rows+1)]
		rp[0] = 0 // the arena is recycled, not zeroed
		switch {
		case b.Type == Full && offs != nil:
			// Bucket lengths by pure arithmetic — no nonzero is touched.
			for r := 0; r < rows; r++ {
				bk := r*nbPVM + b.PVM
				rp[r+1] = rp[r] + (offs[bk+1] - offs[bk])
			}
		case b.Type == Full:
			for r := 0; r < rows; r++ {
				rp[r+1] = rp[r] + int32(len(u.BlockRow(r, b.PVM)))
			}
		default:
			lo, hi := int32(b.Lo), int32(b.Hi)
			for r := 0; r < rows; r++ {
				rp[r+1] = rp[r] + int32(len(trimSegment(u.BlockRow(r, b.PVM), lo, hi)))
			}
		}
		total := int(rp[rows])
		b.rowPtr = rp
		bitsOff[bi+1] = bitsOff[bi] + int32(total)
		if cells := rows * b.Width(); cells > 0 &&
			float64(total)/float64(cells) >= DenseRowThreshold {
			b.stride = (b.Width() + bitvec.WordBits - 1) / bitvec.WordBits
			denseTotal += rows * b.stride
		}
	}
	bitsArena := slab.Int32s(u.NNZ())
	denseArena := slab.Uint64sZeroed(denseTotal)
	px.ptrArena, px.bitsArena, px.denseArena = ptrArena, bitsArena, denseArena
	denseOff := 0
	for bi, b := range all {
		b.bits = bitsArena[bitsOff[bi]:bitsOff[bi+1]:bitsOff[bi+1]]
		if b.stride > 0 {
			b.denseWords = denseArena[denseOff : denseOff+rows*b.stride]
			denseOff += rows * b.stride
		}
		lo, hi, pvm, full := int32(b.Lo), int32(b.Hi), b.PVM, b.Type == Full
		pos := 0
		for r := 0; r < rows; r++ {
			var seg []int32
			if offs != nil {
				bk := r*nbPVM + pvm
				seg = u.Bucket(offs[bk], offs[bk+1])
			} else {
				seg = u.BlockRow(r, pvm)
			}
			if !full {
				seg = trimSegment(seg, lo, hi)
			}
			if b.stride > 0 {
				base := r * b.stride
				for _, c := range seg {
					o := c - lo
					b.bits[pos] = o
					pos++
					b.denseWords[base+int(o)>>6] |= uint64(1) << (uint32(o) & 63)
				}
			} else {
				for _, c := range seg {
					b.bits[pos] = c - lo
					pos++
				}
			}
		}
	}
	return px
}

// trimSegment narrows a sorted bucket segment to columns [lo, hi). Partial
// blocks sit at partition boundaries, so the trimmed ends are short; a
// linear trim beats binary search at bucket sizes.
func trimSegment(seg []int32, lo, hi int32) []int32 {
	for len(seg) > 0 && seg[0] < lo {
		seg = seg[1:]
	}
	for len(seg) > 0 && seg[len(seg)-1] >= hi {
		seg = seg[:len(seg)-1]
	}
	return seg
}

type span struct {
	pvm    int
	lo, hi int
}

// blockSpans cuts [lo, hi) at multiples of blockSize.
func blockSpans(lo, hi, blockSize int) []span {
	var out []span
	for cur := lo; cur < hi; {
		pvm := cur / blockSize
		end := (pvm + 1) * blockSize
		if end > hi {
			end = hi
		}
		out = append(out, span{pvm: pvm, lo: cur, hi: end})
		cur = end
	}
	return out
}

func classify(s span, blockSize int) BlockType {
	left := s.lo == s.pvm*blockSize
	right := s.hi == (s.pvm+1)*blockSize
	switch {
	case left && right:
		return Full
	case left:
		return Prefix
	case right:
		return Suffix
	default:
		return Interior
	}
}

// TypeSet returns the distinct block types present in the partition, in
// ascending order. Lemma 3 guarantees at most three.
func (p *Partition) TypeSet() []BlockType {
	seen := map[BlockType]bool{}
	var out []BlockType
	for _, t := range []BlockType{Interior, Suffix, Full, Prefix} {
		for _, b := range p.Blocks {
			if b.Type == t && !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}
