package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dbtf/internal/tensor"
)

func randomTensor(rng *rand.Rand, i, j, k int, density float64) *tensor.Tensor {
	var coords []tensor.Coord
	for a := 0; a < i; a++ {
		for b := 0; b < j; b++ {
			for c := 0; c < k; c++ {
				if rng.Float64() < density {
					coords = append(coords, tensor.Coord{I: a, J: b, K: c})
				}
			}
		}
	}
	return tensor.MustFromCoords(i, j, k, coords)
}

func TestBuildCoversAllColumnsOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randomTensor(rng, 5, 7, 6, 0.2)
	u := x.Unfold(tensor.Mode1) // 5 × 42, block size 7
	px := Build(u, 4)
	if len(px.Parts) != 4 {
		t.Fatalf("parts = %d, want 4", len(px.Parts))
	}
	cur := 0
	for _, p := range px.Parts {
		if p.Lo != cur {
			t.Fatalf("partition %d starts at %d, want %d", p.Index, p.Lo, cur)
		}
		bcur := p.Lo
		for _, b := range p.Blocks {
			if b.Lo != bcur {
				t.Fatalf("block gap at %d", b.Lo)
			}
			bcur = b.Hi
		}
		if bcur != p.Hi {
			t.Fatalf("blocks end at %d, want %d", bcur, p.Hi)
		}
		cur = p.Hi
	}
	if cur != u.NumCols {
		t.Fatalf("partitions end at %d, want %d", cur, u.NumCols)
	}
}

func TestBalancedWidths(t *testing.T) {
	// Algorithm 3: ⌊Q/N⌋ ≤ H ≤ ⌈Q/N⌉.
	u := tensor.New(3, 10, 10).Unfold(tensor.Mode1) // Q = 100
	for _, n := range []int{1, 3, 7, 16, 100} {
		px := Build(u, n)
		lo, hi := 100/n, (100+n-1)/n
		for _, p := range px.Parts {
			if w := p.Width(); w < lo || w > hi {
				t.Fatalf("n=%d: partition width %d outside [%d,%d]", n, w, lo, hi)
			}
		}
	}
}

func TestNCappedAtColumns(t *testing.T) {
	u := tensor.New(2, 2, 2).Unfold(tensor.Mode1) // Q = 4
	px := Build(u, 10)
	if len(px.Parts) != 4 {
		t.Fatalf("parts = %d, want 4 (capped)", len(px.Parts))
	}
}

func TestBuildInvalidN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build with n=0 did not panic")
		}
	}()
	Build(tensor.New(1, 1, 1).Unfold(tensor.Mode1), 0)
}

func TestBlockTypes(t *testing.T) {
	// Block size 10, partition [3, 27) must split as Suffix[3,10) +
	// Full[10,20) + Prefix[20,27).
	u := tensor.New(1, 10, 5).Unfold(tensor.Mode1)
	spans := blockSpans(3, 27, 10)
	if len(spans) != 3 {
		t.Fatalf("spans = %v", spans)
	}
	types := []BlockType{classify(spans[0], 10), classify(spans[1], 10), classify(spans[2], 10)}
	want := []BlockType{Suffix, Full, Prefix}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("types = %v, want %v", types, want)
		}
	}
	// Interior: strictly inside one product.
	if got := classify(blockSpans(12, 17, 10)[0], 10); got != Interior {
		t.Fatalf("interior classified as %v", got)
	}
	_ = u
}

func TestBlockTypeString(t *testing.T) {
	for bt, want := range map[BlockType]string{Interior: "(1)", Suffix: "(2)", Full: "(3)", Prefix: "(4)"} {
		if bt.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(bt), bt.String(), want)
		}
	}
}

func TestLemma3AtMostThreeTypes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blockSize := rng.Intn(20) + 1
		numBlocks := rng.Intn(20) + 1
		n := rng.Intn(16) + 1
		u := tensor.New(2, blockSize, numBlocks).Unfold(tensor.Mode1)
		px := Build(u, n)
		for _, p := range px.Parts {
			if len(p.TypeSet()) > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBlockCSRMatchesUnfolded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randomTensor(rng, 6, 9, 8, 0.15)
	u := x.Unfold(tensor.Mode2)
	px := Build(u, 5)
	// Every nonzero of u must appear in exactly one block at the right
	// local offset.
	total := 0
	for _, p := range px.Parts {
		for _, b := range p.Blocks {
			for r := 0; r < u.NumRows; r++ {
				for _, bit := range b.RowBits(r) {
					col := b.Lo + int(bit)
					if col < b.Lo || col >= b.Hi {
						t.Fatalf("bit %d outside block [%d,%d)", col, b.Lo, b.Hi)
					}
					found := false
					for _, c := range u.Row(r) {
						if int(c) == col {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("block contains (%d,%d) absent from unfolded", r, col)
					}
					total++
				}
			}
		}
	}
	if total != u.NNZ() {
		t.Fatalf("blocks hold %d nonzeros, unfolded has %d", total, u.NNZ())
	}
}

func TestInnerLoConsistent(t *testing.T) {
	u := tensor.New(1, 7, 9).Unfold(tensor.Mode1)
	px := Build(u, 4)
	for _, p := range px.Parts {
		for _, b := range p.Blocks {
			if b.InnerLo != b.Lo-b.PVM*u.BlockSize {
				t.Fatalf("block at %d: InnerLo %d inconsistent", b.Lo, b.InnerLo)
			}
			if b.InnerLo < 0 || b.InnerLo+b.Width() > u.BlockSize {
				t.Fatalf("block at %d exceeds its PVM product", b.Lo)
			}
		}
	}
}

func TestShuffleBytesProportionalToNNZ(t *testing.T) {
	// Lemma 6: shuffle volume is O(|X|).
	rng := rand.New(rand.NewSource(3))
	small := randomTensor(rng, 8, 8, 8, 0.05)
	large := randomTensor(rng, 8, 8, 8, 0.4)
	ps := Build(small.Unfold(tensor.Mode1), 4)
	pl := Build(large.Unfold(tensor.Mode1), 4)
	if ps.ShuffleBytes >= pl.ShuffleBytes {
		t.Fatalf("shuffle bytes not increasing with nnz: %d vs %d", ps.ShuffleBytes, pl.ShuffleBytes)
	}
	overhead := int64(8 * 4) // rowPtr bytes, independent of nnz
	ratio := float64(pl.ShuffleBytes-overhead) / float64(ps.ShuffleBytes-overhead)
	nnzRatio := float64(large.NNZ()) / float64(small.NNZ())
	if ratio < nnzRatio*0.5 || ratio > nnzRatio*2 {
		t.Fatalf("shuffle bytes ratio %.2f far from nnz ratio %.2f", ratio, nnzRatio)
	}
}

func TestPartitionNNZ(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randomTensor(rng, 5, 6, 7, 0.2)
	u := x.Unfold(tensor.Mode3)
	px := Build(u, 3)
	total := 0
	for _, p := range px.Parts {
		total += p.NNZ()
	}
	if total != u.NNZ() {
		t.Fatalf("partition NNZ sum %d != %d", total, u.NNZ())
	}
}

func TestQuickBlocksAlwaysWithinOneProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blockSize := rng.Intn(15) + 1
		numBlocks := rng.Intn(15) + 1
		n := rng.Intn(10) + 1
		u := tensor.New(1, blockSize, numBlocks).Unfold(tensor.Mode1)
		px := Build(u, n)
		for _, p := range px.Parts {
			for _, b := range p.Blocks {
				if b.Lo/blockSize != (b.Hi-1)/blockSize {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
