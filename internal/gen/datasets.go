package gen

import (
	"math"
	"math/rand"

	"dbtf/internal/tensor"
)

// Dataset is a named tensor standing in for one of the paper's real-world
// datasets (Table III). The real datasets are not redistributable with
// this repository; each generator reproduces the corresponding family's
// shape statistics — mode sizes (scaled down), power-law occupancy, and
// block/temporal structure — so that the Figure 6 comparison exercises the
// same code paths.
type Dataset struct {
	// Name is the paper's dataset name.
	Name string
	// X is the generated stand-in tensor.
	X *tensor.Tensor
	// Modes describes the tensor's modes, e.g. "user × user × date".
	Modes string
}

// Datasets generates stand-ins for all six Table III datasets at the given
// scale factor (1.0 = the default bench scale, far below the paper's
// sizes; larger values grow every mode).
func Datasets(rng *rand.Rand, scale float64) []Dataset {
	return []Dataset{
		Facebook(rng, scale),
		DBLP(rng, scale),
		DDoS(rng, scale, false),
		DDoS(rng, scale, true),
		NELL(rng, scale, false),
		NELL(rng, scale, true),
	}
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 4 {
		n = 4
	}
	return n
}

// powerLawIndex samples an index in [0, n) with probability ∝ (i+1)^−α,
// the heavy-tailed occupancy real relationship data exhibits.
func powerLawIndex(rng *rand.Rand, n int, alpha float64) int {
	// Inverse-CDF sampling on the continuous approximation.
	u := rng.Float64()
	x := math.Pow(1-u*(1-math.Pow(float64(n), 1-alpha)), 1/(1-alpha))
	i := int(x) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Facebook generates a temporal friendship tensor (user × user × date):
// community blocks of users whose mutual links appear during contiguous
// activity windows, plus background links between power-law-popular users.
// Paper original: 64K × 64K × 870, 1.5M nonzeros.
func Facebook(rng *rand.Rand, scale float64) Dataset {
	users := scaled(512, scale)
	days := scaled(48, scale)
	var coords []tensor.Coord

	// Community blocks: groups of friends active in a shared window.
	numComms := users / 24
	for c := 0; c < numComms; c++ {
		size := 6 + rng.Intn(18)
		members := rng.Perm(users)[:size]
		start := rng.Intn(days)
		span := 1 + rng.Intn(days/4+1)
		for _, u1 := range members {
			for _, u2 := range members {
				if u1 == u2 || rng.Float64() > 0.4 {
					continue
				}
				for d := start; d < start+span && d < days; d++ {
					if rng.Float64() < 0.5 {
						coords = append(coords, tensor.Coord{I: u1, J: u2, K: d})
					}
				}
			}
		}
	}
	// Background links between popular users.
	background := users * days / 4
	for n := 0; n < background; n++ {
		coords = append(coords, tensor.Coord{
			I: powerLawIndex(rng, users, 1.5),
			J: powerLawIndex(rng, users, 1.5),
			K: rng.Intn(days),
		})
	}
	return Dataset{
		Name:  "Facebook",
		X:     tensor.MustFromCoords(users, users, days, coords),
		Modes: "user × user × date",
	}
}

// DBLP generates a bibliographic tensor (author × conference × year):
// authors publish repeatedly at a few venues over contiguous career
// spans; venue popularity is heavy-tailed.
// Paper original: 418K × 3.5K × 49, 1.3M nonzeros.
func DBLP(rng *rand.Rand, scale float64) Dataset {
	authors := scaled(1024, scale)
	venues := scaled(48, scale)
	years := scaled(24, scale)
	var coords []tensor.Coord
	for a := 0; a < authors; a++ {
		nv := 1 + rng.Intn(3)
		start := rng.Intn(years)
		span := 2 + rng.Intn(years/2+1)
		for v := 0; v < nv; v++ {
			venue := powerLawIndex(rng, venues, 1.3)
			for y := start; y < start+span && y < years; y++ {
				if rng.Float64() < 0.5 {
					coords = append(coords, tensor.Coord{I: a, J: venue, K: y})
				}
			}
		}
	}
	return Dataset{
		Name:  "DBLP",
		X:     tensor.MustFromCoords(authors, venues, years, coords),
		Modes: "author × conference × year",
	}
}

// DDoS generates a network attack-trace tensor (source IP × destination
// IP × time): a handful of victim destinations receive bursts from very
// many sources inside short windows (dense slabs), over sparse background
// traffic. Paper originals: CAIDA-DDoS-S 9K × 9K × 4K (22M nonzeros) and
// CAIDA-DDoS-L 9K × 9K × 393K (331M).
func DDoS(rng *rand.Rand, scale float64, large bool) Dataset {
	name := "CAIDA-DDoS-S"
	srcs, dsts, ticks := scaled(256, scale), scaled(256, scale), scaled(64, scale)
	victims, burst := 3, 6
	if large {
		name = "CAIDA-DDoS-L"
		srcs, dsts, ticks = scaled(320, scale), scaled(320, scale), scaled(256, scale)
		victims, burst = 5, 10
	}
	var coords []tensor.Coord
	for v := 0; v < victims; v++ {
		dst := rng.Intn(dsts)
		start := rng.Intn(ticks)
		attackers := rng.Perm(srcs)[:srcs/2]
		for _, src := range attackers {
			for t := start; t < start+burst && t < ticks; t++ {
				if rng.Float64() < 0.7 {
					coords = append(coords, tensor.Coord{I: src, J: dst, K: t})
				}
			}
		}
	}
	background := srcs * ticks / 8
	for n := 0; n < background; n++ {
		coords = append(coords, tensor.Coord{
			I: rng.Intn(srcs), J: rng.Intn(dsts), K: rng.Intn(ticks),
		})
	}
	return Dataset{
		Name:  name,
		X:     tensor.MustFromCoords(srcs, dsts, ticks, coords),
		Modes: "source IP × destination IP × time",
	}
}

// NELL generates a knowledge-base tensor (subject × relation × object):
// every relation slice links a cluster of subject entities to a cluster of
// object entities, with heavy-tailed entity participation and background
// triples. Paper originals: NELL-S 15K × 15K × 29K (77M nonzeros) and
// NELL-L 112K × 112K × 213K (18M).
func NELL(rng *rand.Rand, scale float64, large bool) Dataset {
	name := "NELL-S"
	entities, relations := scaled(320, scale), scaled(48, scale)
	if large {
		name = "NELL-L"
		entities, relations = scaled(512, scale), scaled(96, scale)
	}
	var coords []tensor.Coord
	for r := 0; r < relations; r++ {
		subjSize := 4 + rng.Intn(entities/8)
		objSize := 4 + rng.Intn(entities/8)
		subjs := rng.Perm(entities)[:subjSize]
		objs := rng.Perm(entities)[:objSize]
		density := 0.05 + rng.Float64()*0.15
		for _, s := range subjs {
			for _, o := range objs {
				if rng.Float64() < density {
					coords = append(coords, tensor.Coord{I: s, J: r, K: o})
				}
			}
		}
	}
	background := entities * relations / 8
	for n := 0; n < background; n++ {
		coords = append(coords, tensor.Coord{
			I: powerLawIndex(rng, entities, 1.4),
			J: rng.Intn(relations),
			K: powerLawIndex(rng, entities, 1.4),
		})
	}
	return Dataset{
		Name:  name,
		X:     tensor.MustFromCoords(entities, relations, entities, coords),
		Modes: "subject × relation × object",
	}
}
