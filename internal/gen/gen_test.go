package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dbtf/internal/tensor"
)

func TestRandomDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := Random(rng, 32, 32, 32, 0.05)
	if got := x.Density(); got < 0.045 || got > 0.055 {
		t.Fatalf("density %v far from 0.05", got)
	}
	i, j, k := x.Dims()
	if i != 32 || j != 32 || k != 32 {
		t.Fatalf("dims %dx%dx%d", i, j, k)
	}
}

func TestRandomZeroDensity(t *testing.T) {
	x := Random(rand.New(rand.NewSource(2)), 8, 8, 8, 0)
	if x.NNZ() != 0 {
		t.Fatalf("NNZ = %d", x.NNZ())
	}
}

func TestRandomInvalidDensityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Random(rand.New(rand.NewSource(3)), 4, 4, 4, 1.5)
}

func TestFromFactorsReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, a, b, c := FromFactors(rng, 12, 13, 14, 3, 0.2)
	if !x.Equal(tensor.Reconstruct(a, b, c)) {
		t.Fatal("tensor does not match its factors")
	}
	if tensor.ReconstructError(x, a, b, c) != 0 {
		t.Fatal("noise-free tensor has nonzero error against its factors")
	}
}

func TestAddNoiseAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, _, _, _ := FromFactors(rng, 16, 16, 16, 2, 0.25)
	noisy := AddNoise(rng, x, 0.10, 0)
	added := noisy.NNZ() - x.NNZ()
	want := int(0.10 * float64(x.NNZ()))
	if added != want {
		t.Fatalf("added %d ones, want %d", added, want)
	}
	// Additive noise only adds: every original one must survive.
	for _, c := range x.Coords() {
		if !noisy.Get(c.I, c.J, c.K) {
			t.Fatalf("additive noise removed (%d,%d,%d)", c.I, c.J, c.K)
		}
	}
}

func TestAddNoiseDestructive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, _, _, _ := FromFactors(rng, 16, 16, 16, 2, 0.25)
	noisy := AddNoise(rng, x, 0, 0.20)
	removed := x.NNZ() - noisy.NNZ()
	want := int(0.20 * float64(x.NNZ()))
	if removed != want {
		t.Fatalf("removed %d ones, want %d", removed, want)
	}
	// Destructive noise only removes: no new ones may appear.
	for _, c := range noisy.Coords() {
		if !x.Get(c.I, c.J, c.K) {
			t.Fatalf("destructive noise added (%d,%d,%d)", c.I, c.J, c.K)
		}
	}
}

func TestAddNoiseInvalidPanics(t *testing.T) {
	x := tensor.New(2, 2, 2)
	for _, tc := range [][2]float64{{-0.1, 0}, {0, -0.1}, {0, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %v", tc)
				}
			}()
			AddNoise(rand.New(rand.NewSource(1)), x, tc[0], tc[1])
		}()
	}
}

func TestQuickNoiseXorDistance(t *testing.T) {
	// |X_noisy ⊕ X| must equal exactly (added + removed).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, _, _, _ := FromFactors(rng, 10, 10, 10, 2, 0.3)
		if x.NNZ() < 10 {
			return true
		}
		add, del := 0.15, 0.10
		noisy := AddNoise(rng, x, add, del)
		wantAdd := int(add * float64(x.NNZ()))
		wantDel := int(del * float64(x.NNZ()))
		return x.XorCount(noisy) == wantAdd+wantDel
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPowerLawIndexInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 50)
	for n := 0; n < 10000; n++ {
		i := powerLawIndex(rng, 50, 1.5)
		if i < 0 || i >= 50 {
			t.Fatalf("index %d out of range", i)
		}
		counts[i]++
	}
	// Heavy tail: the first index must be sampled far more often than the
	// middle one.
	if counts[0] < 4*counts[25] {
		t.Fatalf("not heavy-tailed: counts[0]=%d counts[25]=%d", counts[0], counts[25])
	}
}

func TestDatasets(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := Datasets(rng, 0.25)
	if len(ds) != 6 {
		t.Fatalf("%d datasets, want 6", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		if d.X.NNZ() == 0 {
			t.Errorf("%s: empty tensor", d.Name)
		}
		if names[d.Name] {
			t.Errorf("duplicate dataset %s", d.Name)
		}
		names[d.Name] = true
		if d.Modes == "" {
			t.Errorf("%s: missing mode description", d.Name)
		}
	}
	for _, want := range []string{"Facebook", "DBLP", "CAIDA-DDoS-S", "CAIDA-DDoS-L", "NELL-S", "NELL-L"} {
		if !names[want] {
			t.Errorf("missing dataset %s", want)
		}
	}
}

func TestDatasetScaling(t *testing.T) {
	small := Facebook(rand.New(rand.NewSource(9)), 0.25)
	large := Facebook(rand.New(rand.NewSource(9)), 0.5)
	si, _, _ := small.X.Dims()
	li, _, _ := large.X.Dims()
	if li <= si {
		t.Fatalf("scale did not grow users: %d vs %d", si, li)
	}
}

func TestDDoSHasDenseSlabs(t *testing.T) {
	// The attack structure must concentrate traffic on few destinations:
	// the busiest destination column should hold a large share of nonzeros.
	d := DDoS(rand.New(rand.NewSource(10)), 0.5, false)
	_, dsts, _ := d.X.Dims()
	byDst := make([]int, dsts)
	for _, c := range d.X.Coords() {
		byDst[c.J]++
	}
	max := 0
	for _, n := range byDst {
		if n > max {
			max = n
		}
	}
	if float64(max) < 0.05*float64(d.X.NNZ()) {
		t.Fatalf("busiest destination holds only %d of %d nonzeros", max, d.X.NNZ())
	}
}
