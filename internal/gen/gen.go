// Package gen generates the tensors the paper's experiments consume:
// uniform random tensors for the scalability sweeps (Section IV-B),
// factor-built tensors with additive/destructive noise for the
// reconstruction-error experiments (Section IV-D), and synthetic stand-ins
// for the six real-world datasets of Table III (see datasets.go).
package gen

import (
	"fmt"
	"math/rand"

	"dbtf/internal/boolmat"
	"dbtf/internal/tensor"
)

// Random returns an i×j×k tensor whose expected density is the given
// value, sampled without materializing the dense cell grid: the target
// nonzero count is drawn cell-free, so generation is O(|X|), not O(I·J·K).
func Random(rng *rand.Rand, i, j, k int, density float64) *tensor.Tensor {
	if density < 0 || density > 1 {
		panic(fmt.Sprintf("gen: density %v outside [0,1]", density))
	}
	cells := float64(i) * float64(j) * float64(k)
	target := int(density * cells)
	seen := make(map[tensor.Coord]struct{}, target)
	coords := make([]tensor.Coord, 0, target)
	for len(coords) < target {
		c := tensor.Coord{I: rng.Intn(i), J: rng.Intn(j), K: rng.Intn(k)}
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		coords = append(coords, c)
	}
	return tensor.MustFromCoords(i, j, k, coords)
}

// FromFactors draws random factor matrices of the given density and
// returns the noise-free tensor they reconstruct, together with the
// factors — the generator of the paper's reconstruction-error experiments.
func FromFactors(rng *rand.Rand, i, j, k, r int, factorDensity float64) (*tensor.Tensor, *boolmat.FactorMatrix, *boolmat.FactorMatrix, *boolmat.FactorMatrix) {
	a := boolmat.RandomFactor(rng, i, r, factorDensity)
	b := boolmat.RandomFactor(rng, j, r, factorDensity)
	c := boolmat.RandomFactor(rng, k, r, factorDensity)
	return tensor.Reconstruct(a, b, c), a, b, c
}

// AddNoise applies the paper's noise model: additive noise adds
// additive·|X| new ones at uniformly random zero cells, and destructive
// noise removes destructive·|X| existing ones ("10% additive noise
// indicates that we add 10% more 1s"; "5% destructive noise means that we
// delete 5% of the 1s").
func AddNoise(rng *rand.Rand, x *tensor.Tensor, additive, destructive float64) *tensor.Tensor {
	if additive < 0 || destructive < 0 || destructive > 1 {
		panic(fmt.Sprintf("gen: invalid noise levels additive=%v destructive=%v", additive, destructive))
	}
	i, j, k := x.Dims()
	nnz := x.NNZ()

	// Destructive: drop a uniform sample of the ones.
	drop := int(destructive * float64(nnz))
	perm := rng.Perm(nnz)
	dropped := make(map[int]struct{}, drop)
	for _, p := range perm[:drop] {
		dropped[p] = struct{}{}
	}
	coords := make([]tensor.Coord, 0, nnz-drop)
	for idx, c := range x.Coords() {
		if _, gone := dropped[idx]; !gone {
			coords = append(coords, c)
		}
	}

	// Additive: flip zero cells until additive·|X| new ones are placed.
	add := int(additive * float64(nnz))
	seen := make(map[tensor.Coord]struct{}, len(coords)+add)
	for _, c := range coords {
		seen[c] = struct{}{}
	}
	for n := 0; n < add; {
		c := tensor.Coord{I: rng.Intn(i), J: rng.Intn(j), K: rng.Intn(k)}
		if _, dup := seen[c]; dup {
			continue
		}
		if x.Get(c.I, c.J, c.K) {
			continue // was a one in the original; not "new"
		}
		seen[c] = struct{}{}
		coords = append(coords, c)
		n++
	}
	return tensor.MustFromCoords(i, j, k, coords)
}
