package tucker

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"dbtf/internal/boolmat"
	"dbtf/internal/cluster"
	"dbtf/internal/core"
	"dbtf/internal/tensor"
)

func ctxb() context.Context { return context.Background() }

func testCluster() *cluster.Cluster { return cluster.New(cluster.Config{Machines: 2}) }

func randomTucker(rng *rand.Rand, i, j, k, p, q, s int, coreDensity, factorDensity float64) (*tensor.Tensor, *tensor.Tensor, *boolmat.FactorMatrix, *boolmat.FactorMatrix, *boolmat.FactorMatrix) {
	var coords []tensor.Coord
	for pp := 0; pp < p; pp++ {
		for qq := 0; qq < q; qq++ {
			for ss := 0; ss < s; ss++ {
				if rng.Float64() < coreDensity {
					coords = append(coords, tensor.Coord{I: pp, J: qq, K: ss})
				}
			}
		}
	}
	g := tensor.MustFromCoords(p, q, s, coords)
	a := boolmat.RandomFactor(rng, i, p, factorDensity)
	b := boolmat.RandomFactor(rng, j, q, factorDensity)
	c := boolmat.RandomFactor(rng, k, s, factorDensity)
	return Reconstruct(g, a, b, c), g, a, b, c
}

func TestValidation(t *testing.T) {
	x := tensor.MustFromCoords(2, 2, 2, []tensor.Coord{{I: 0, J: 0, K: 0}})
	cases := []Options{
		{CPRank: 0},
		{CPRank: 65},
		{CPRank: 2, MergeThreshold: 1.5},
		{CPRank: 2, MergeThreshold: -1},
		{CPRank: 2, MaxSweeps: -1},
	}
	for i, opt := range cases {
		if _, err := Decompose(ctxb(), x, testCluster(), opt); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestReconstructErrorMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		x, g, a, b, c := randomTucker(rng, rng.Intn(8)+2, rng.Intn(8)+2, rng.Intn(8)+2,
			rng.Intn(3)+1, rng.Intn(3)+1, rng.Intn(3)+1, 0.5, 0.3)
		// Score against a *different* random tensor to exercise nonzero
		// errors too.
		other, _, _, _, _ := randomTucker(rng, a.Rows(), b.Rows(), c.Rows(),
			2, 2, 2, 0.5, 0.3)
		if got, want := ReconstructError(x, g, a, b, c), int64(0); got != want {
			t.Fatalf("trial %d: self error %d", trial, got)
		}
		want := int64(other.XorCount(Reconstruct(g, a, b, c)))
		if got := ReconstructError(other, g, a, b, c); got != want {
			t.Fatalf("trial %d: error %d, want %d", trial, got, want)
		}
	}
}

func TestMergeColumnsIdentical(t *testing.T) {
	// Two identical columns must merge, shrinking the factor and folding
	// the core.
	m := boolmat.NewFactor(4, 3)
	for i := 0; i < 3; i++ {
		m.Set(i, 0, true)
		m.Set(i, 1, true) // column 1 duplicates column 0
	}
	m.Set(3, 2, true)
	g := tensor.MustFromCoords(3, 3, 3, []tensor.Coord{{I: 0, J: 0, K: 0}, {I: 1, J: 1, K: 1}, {I: 2, J: 2, K: 2}})
	out, g2 := mergeColumns(m, g, 1, 1.0)
	if out.Rank() != 2 {
		t.Fatalf("merged rank %d, want 2", out.Rank())
	}
	gi, gj, gk := g2.Dims()
	if gi != 2 || gj != 3 || gk != 3 {
		t.Fatalf("folded core dims %dx%dx%d", gi, gj, gk)
	}
	// Slices 0 and 1 of the core must have been ORed into slice 0.
	if !g2.Get(0, 0, 0) || !g2.Get(0, 1, 1) {
		t.Fatal("core slices not ORed on merge")
	}
}

func TestMergeColumnsBelowThresholdKept(t *testing.T) {
	m := boolmat.NewFactor(4, 2)
	m.Set(0, 0, true)
	m.Set(1, 1, true) // disjoint columns
	g := tensor.MustFromCoords(2, 2, 2, []tensor.Coord{{I: 0, J: 0, K: 0}, {I: 1, J: 1, K: 1}})
	out, _ := mergeColumns(m, g, 1, 0.9)
	if out.Rank() != 2 {
		t.Fatalf("disjoint columns merged: rank %d", out.Rank())
	}
}

func TestDecomposeNeverWorseThanCP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, _, _, _, _ := randomTucker(rng, 16, 16, 16, 3, 3, 3, 0.4, 0.25)
	if x.NNZ() == 0 {
		t.Skip("degenerate")
	}
	res, err := Decompose(ctxb(), x, testCluster(), Options{
		CPRank: 4,
		CP:     coreOptions(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error > res.CPError {
		t.Fatalf("Tucker error %d worse than CP error %d", res.Error, res.CPError)
	}
	// The reported error must match an independent computation.
	if want := ReconstructError(x, res.Core, res.A, res.B, res.C); res.Error != want {
		t.Fatalf("reported %d != recomputed %d", res.Error, want)
	}
}

func TestDecomposeMergesSharedStructure(t *testing.T) {
	// A tensor whose two CP components share the same A-column pattern:
	// Tucker should end with fewer mode-1 columns than the CP rank after
	// merging.
	a := boolmat.NewFactor(12, 2)
	b := boolmat.NewFactor(12, 2)
	c := boolmat.NewFactor(12, 2)
	for i := 0; i < 6; i++ {
		a.Set(i, 0, true)
		a.Set(i, 1, true) // same subjects
	}
	for j := 0; j < 5; j++ {
		b.Set(j, 0, true)
	}
	for j := 6; j < 11; j++ {
		b.Set(j, 1, true)
	}
	for k := 0; k < 5; k++ {
		c.Set(k, 0, true)
	}
	for k := 6; k < 11; k++ {
		c.Set(k, 1, true)
	}
	x := tensor.Reconstruct(a, b, c)
	res, err := Decompose(ctxb(), x, testCluster(), Options{
		CPRank:         2,
		MergeThreshold: 0.99,
		CP:             coreOptions(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _, _ := res.Core.Dims()
	if p > res.A.Rank() {
		t.Fatalf("core mode-1 dim %d exceeds factor rank %d", p, res.A.Rank())
	}
	if res.Error != 0 {
		t.Fatalf("shared-structure tensor not reconstructed exactly: error %d", res.Error)
	}
}

func TestRefineCoreMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, _, _, _, _ := randomTucker(rng, 10, 10, 10, 2, 2, 2, 0.5, 0.3)
	// Random wrong model to refine.
	_, g, a, b, c := randomTucker(rng, 10, 10, 10, 3, 3, 3, 0.5, 0.3)
	before := ReconstructError(x, g, a, b, c)
	g2, after, err := refineCore(ctxb(), x, g, a, b, c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Fatalf("refinement increased error: %d -> %d", before, after)
	}
	if got := ReconstructError(x, g2, a, b, c); got != after {
		t.Fatalf("refined core error %d != reported %d", got, after)
	}
}

func TestDecomposeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := tensor.MustFromCoords(6, 6, 6, []tensor.Coord{{I: 0, J: 0, K: 0}})
	if _, err := Decompose(ctx, x, testCluster(), Options{CPRank: 2, CP: coreOptions(2)}); err == nil {
		t.Fatal("cancelled context not honored")
	}
}

func TestQuickReconstructErrorAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		i, j, k := rng.Intn(6)+2, rng.Intn(6)+2, rng.Intn(6)+2
		_, g, a, b, c := randomTucker(rng, i, j, k, rng.Intn(3)+1, rng.Intn(3)+1, rng.Intn(3)+1, 0.4, 0.4)
		x, _, _, _, _ := randomTucker(rng, i, j, k, 2, 2, 2, 0.4, 0.4)
		return ReconstructError(x, g, a, b, c) == int64(x.XorCount(Reconstruct(g, a, b, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// coreOptions builds deterministic CP options for tests.
func coreOptions(rank int) (o core.Options) {
	o.Rank = rank
	o.Seed = 1
	o.InitialSets = 2
	return o
}
