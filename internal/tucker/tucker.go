// Package tucker implements Boolean Tucker decomposition, the extension
// the DBTF paper's related-work section discusses (Walk'n'Merge computes
// Boolean Tucker decompositions via MDL; Boolean CP is the special case
// of a superdiagonal core).
//
// A Boolean Tucker decomposition of X ∈ B^{I×J×K} is a binary core tensor
// G ∈ B^{P×Q×S} and binary factor matrices A ∈ B^{I×P}, B ∈ B^{J×Q},
// C ∈ B^{K×S} with
//
//	X ≈ ⋁_{p,q,s : g_pqs = 1}  a_:p ∘ b_:q ∘ c_:s.
//
// Decompose follows the CP-to-Tucker construction of Walk'n'Merge:
//
//  1. run DBTF's Boolean CP decomposition at rank R, giving a
//     superdiagonal R×R×R core;
//  2. merge near-duplicate factor columns per mode (Jaccard similarity ≥
//     a threshold), ORing the corresponding core slices — this shrinks
//     the core modes below R and is where Tucker beats CP on data whose
//     modes share structure;
//  3. greedily refine the core by single-bit flips while the
//     reconstruction error decreases.
package tucker

import (
	"context"
	"fmt"
	"math/bits"

	"dbtf/internal/bitvec"
	"dbtf/internal/boolmat"
	"dbtf/internal/cluster"
	"dbtf/internal/core"
	"dbtf/internal/tensor"
)

// Options configures a Boolean Tucker decomposition.
type Options struct {
	// CPRank is the rank of the initial Boolean CP decomposition (the
	// starting core is CPRank³ superdiagonal). Required; 1 ≤ CPRank ≤ 64.
	CPRank int
	// MergeThreshold is the Jaccard similarity at or above which two
	// factor columns of the same mode are merged. Default 0.8; 1.0 merges
	// only identical columns.
	MergeThreshold float64
	// MaxSweeps bounds the core-refinement sweeps. Default 2.
	MaxSweeps int
	// CP carries options forwarded to the underlying CP decomposition
	// (Rank is overwritten with CPRank).
	CP core.Options
}

func (o *Options) withDefaults() (Options, error) {
	opt := *o
	if opt.CPRank < 1 || opt.CPRank > boolmat.MaxRank {
		return opt, fmt.Errorf("tucker: CPRank %d outside [1,%d]", opt.CPRank, boolmat.MaxRank)
	}
	if opt.MergeThreshold == 0 {
		opt.MergeThreshold = 0.8
	}
	if opt.MergeThreshold <= 0 || opt.MergeThreshold > 1 {
		return opt, fmt.Errorf("tucker: MergeThreshold %v outside (0,1]", opt.MergeThreshold)
	}
	if opt.MaxSweeps == 0 {
		opt.MaxSweeps = 2
	}
	if opt.MaxSweeps < 0 {
		return opt, fmt.Errorf("tucker: MaxSweeps %d < 0", opt.MaxSweeps)
	}
	return opt, nil
}

// Result reports a Boolean Tucker decomposition.
type Result struct {
	// Core is the binary core tensor G ∈ B^{P×Q×S}.
	Core *tensor.Tensor
	// A, B, C are the binary factor matrices (I×P, J×Q, K×S).
	A, B, C *boolmat.FactorMatrix
	// Error is |X ⊕ X̂| for the Tucker reconstruction.
	Error int64
	// CPError is the error of the initial CP decomposition; Error never
	// exceeds it.
	CPError int64
	// CPRank is the starting CP rank; the core dims report the shrinkage
	// achieved by column merging.
	CPRank int
}

// Decompose computes a Boolean Tucker decomposition of x on the given
// cluster.
func Decompose(ctx context.Context, x *tensor.Tensor, cl *cluster.Cluster, opts Options) (*Result, error) {
	opt, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	cpOpt := opt.CP
	cpOpt.Rank = opt.CPRank
	cp, err := core.Decompose(ctx, x, cl, cpOpt)
	if err != nil {
		return nil, err
	}

	// Superdiagonal core: g_rrr = 1.
	r := opt.CPRank
	diag := make([]tensor.Coord, r)
	for q := 0; q < r; q++ {
		diag[q] = tensor.Coord{I: q, J: q, K: q}
	}
	g := tensor.MustFromCoords(r, r, r, diag)
	a, b, c := cp.A, cp.B, cp.C

	// Merge near-duplicate columns mode by mode, folding the core.
	a, g = mergeColumns(a, g, 1, opt.MergeThreshold)
	b, g = mergeColumns(b, g, 2, opt.MergeThreshold)
	c, g = mergeColumns(c, g, 3, opt.MergeThreshold)

	g, errNow, err := refineCore(ctx, x, g, a, b, c, opt.MaxSweeps)
	if err != nil {
		return nil, err
	}
	return &Result{
		Core: g, A: a, B: b, C: c,
		Error:   errNow,
		CPError: cp.Error,
		CPRank:  r,
	}, nil
}

// jaccard computes the Jaccard similarity of two equal-length bit vectors
// (1 for two empty vectors).
func jaccard(a, b *bitvec.BitVec) float64 {
	inter := a.AndCount(b)
	union := a.OnesCount() + b.OnesCount() - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// mergeColumns greedily unions columns of m whose Jaccard similarity
// reaches the threshold, and folds the core along the given mode (1 for
// A/P, 2 for B/Q, 3 for C/S) by ORing the merged slices.
func mergeColumns(m *boolmat.FactorMatrix, g *tensor.Tensor, mode int, threshold float64) (*boolmat.FactorMatrix, *tensor.Tensor) {
	r := m.Rank()
	cols := m.Columns()
	// target[c] is the representative column c merges into.
	target := make([]int, r)
	for c := range target {
		target[c] = -1
	}
	var reps []int // representative old-column indices, in order
	for c := 0; c < r; c++ {
		merged := false
		for _, rep := range reps {
			if jaccard(cols[c], cols[rep]) >= threshold {
				cols[rep].Or(cols[c]) // union grows the representative
				target[c] = rep
				merged = true
				break
			}
		}
		if !merged {
			target[c] = c
			reps = append(reps, c)
		}
	}
	// New factor matrix from representative columns.
	newIdx := make(map[int]int, len(reps))
	for i, rep := range reps {
		newIdx[rep] = i
	}
	out := boolmat.NewFactor(m.Rows(), len(reps))
	for i, rep := range reps {
		cols[rep].Range(func(row int) { out.Set(row, i, true) })
	}
	// Fold the core: remap the mode's index through target→newIdx.
	gi, gj, gk := g.Dims()
	var coords []tensor.Coord
	for _, co := range g.Coords() {
		switch mode {
		case 1:
			co.I = newIdx[target[co.I]]
		case 2:
			co.J = newIdx[target[co.J]]
		default:
			co.K = newIdx[target[co.K]]
		}
		coords = append(coords, co)
	}
	switch mode {
	case 1:
		gi = len(reps)
	case 2:
		gj = len(reps)
	default:
		gk = len(reps)
	}
	return out, tensor.MustFromCoords(gi, gj, gk, coords)
}

// evaluator computes Tucker reconstruction errors incrementally: it keeps
// the Kronecker rows of (C, B) and the per-core-slice ORs M_p, so a core
// bit flip only rebuilds one M row before rescoring.
type evaluator struct {
	x       *tensor.Tensor
	u       *tensor.Unfolded // mode-1 unfolding of x
	a       *boolmat.FactorMatrix
	p, q, s int
	width   int                // J·K bits
	kron    [][]*bitvec.BitVec // kron[q][s] = c_:s ⊗ b_:q
	m       []*bitvec.BitVec   // m[p] = OR over (q,s) with g_pqs=1
	g       *boolmat.Matrix    // core as a P × (Q·S) bit matrix for fast slice access
}

func newEvaluator(x *tensor.Tensor, g *tensor.Tensor, a, b, c *boolmat.FactorMatrix) *evaluator {
	_, j1, k1 := x.Dims()
	p, q, s := g.Dims()
	e := &evaluator{
		x: x, u: x.Unfold(tensor.Mode1), a: a,
		p: p, q: q, s: s,
		width: j1 * k1,
	}
	e.kron = make([][]*bitvec.BitVec, q)
	for qq := 0; qq < q; qq++ {
		e.kron[qq] = make([]*bitvec.BitVec, s)
		bIdx := b.Column(qq).Indices()
		for ss := 0; ss < s; ss++ {
			v := bitvec.New(e.width)
			c.Column(ss).Range(func(k int) {
				base := k * j1
				for _, j := range bIdx {
					v.Set(base + j)
				}
			})
			e.kron[qq][ss] = v
		}
	}
	e.g = boolmat.NewMatrix(p, q*s)
	for _, co := range g.Coords() {
		e.g.Set(co.I, co.J*s+co.K, true)
	}
	e.m = make([]*bitvec.BitVec, p)
	for pp := 0; pp < p; pp++ {
		e.m[pp] = bitvec.New(e.width)
		e.rebuildM(pp)
	}
	return e
}

func (e *evaluator) rebuildM(p int) {
	e.m[p].Zero()
	e.g.Row(p).Range(func(idx int) {
		e.m[p].Or(e.kron[idx/e.s][idx%e.s])
	})
}

// setCore assigns core bit (p, q, s) and rebuilds the affected M row.
func (e *evaluator) setCore(p, q, s int, v bool) {
	e.g.Set(p, q*e.s+s, v)
	e.rebuildM(p)
}

func (e *evaluator) getCore(p, q, s int) bool { return e.g.Get(p, q*e.s+s) }

// error computes |X ⊕ X̂| for the current core.
func (e *evaluator) error() int64 {
	rowBuf := bitvec.New(e.width)
	var total int64
	for i := 0; i < e.a.Rows(); i++ {
		rowBuf.Zero()
		for mask := e.a.RowMask(i); mask != 0; mask &= mask - 1 {
			rowBuf.Or(e.m[bits.TrailingZeros64(mask)])
		}
		overlap := 0
		for _, col := range e.u.Row(i) {
			if rowBuf.Get(int(col)) {
				overlap++
			}
		}
		total += int64(len(e.u.Row(i)) + rowBuf.OnesCount() - 2*overlap)
	}
	return total
}

// coreTensor exports the evaluator's core back to a tensor.
func (e *evaluator) coreTensor() *tensor.Tensor {
	var coords []tensor.Coord
	for pp := 0; pp < e.p; pp++ {
		e.g.Row(pp).Range(func(idx int) {
			coords = append(coords, tensor.Coord{I: pp, J: idx / e.s, K: idx % e.s})
		})
	}
	return tensor.MustFromCoords(e.p, e.q, e.s, coords)
}

// refineCore greedily flips single core bits while the reconstruction
// error strictly decreases, for at most maxSweeps passes over the core.
func refineCore(ctx context.Context, x, g *tensor.Tensor, a, b, c *boolmat.FactorMatrix, maxSweeps int) (*tensor.Tensor, int64, error) {
	e := newEvaluator(x, g, a, b, c)
	cur := e.error()
	for sweep := 0; sweep < maxSweeps; sweep++ {
		improved := false
		for pp := 0; pp < e.p; pp++ {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			for qq := 0; qq < e.q; qq++ {
				for ss := 0; ss < e.s; ss++ {
					old := e.getCore(pp, qq, ss)
					e.setCore(pp, qq, ss, !old)
					if cand := e.error(); cand < cur {
						cur = cand
						improved = true
					} else {
						e.setCore(pp, qq, ss, old)
					}
				}
			}
		}
		if !improved {
			break
		}
	}
	return e.coreTensor(), cur, nil
}

// Reconstruct materializes the Boolean Tucker reconstruction
// ⋁_{g_pqs=1} a_:p ∘ b_:q ∘ c_:s. Intended for small tensors and tests.
func Reconstruct(g *tensor.Tensor, a, b, c *boolmat.FactorMatrix) *tensor.Tensor {
	seen := make(map[tensor.Coord]struct{})
	for _, co := range g.Coords() {
		ai := a.Column(co.I).Indices()
		bi := b.Column(co.J).Indices()
		ci := c.Column(co.K).Indices()
		for _, i := range ai {
			for _, j := range bi {
				for _, k := range ci {
					seen[tensor.Coord{I: i, J: j, K: k}] = struct{}{}
				}
			}
		}
	}
	coords := make([]tensor.Coord, 0, len(seen))
	for co := range seen {
		coords = append(coords, co)
	}
	return tensor.MustFromCoords(a.Rows(), b.Rows(), c.Rows(), coords)
}

// ReconstructError returns |x ⊕ X̂| for a Tucker model without
// materializing the reconstruction's coordinate list.
func ReconstructError(x, g *tensor.Tensor, a, b, c *boolmat.FactorMatrix) int64 {
	return newEvaluator(x, g, a, b, c).error()
}

// Cluster is re-exported so callers of Decompose need not import the
// cluster package separately.
type Cluster = cluster.Cluster
