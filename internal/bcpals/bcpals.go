// Package bcpals implements BCP_ALS (Miettinen, "Boolean Tensor
// Factorizations", ICDM 2011), the single-machine alternating baseline the
// DBTF paper compares against.
//
// BCP_ALS follows the same alternating framework as DBTF (Algorithm 1)
// but differs in exactly the ways the paper calls out:
//
//   - it runs on a single machine and materializes the Khatri–Rao product
//     (C ⊙ B)ᵀ and the dense unfolded tensor rows in memory;
//   - every Boolean row summation is recomputed from the materialized
//     product rows — there is no caching;
//   - its initialization factorizes each mode's unfolding. Historically
//     that meant ASSO, whose column-association matrix is quadratic in the
//     number of columns of the unfolded tensor (I·J·K / dimension per
//     mode) — the space and time bottleneck the paper attributes to
//     BCP_ALS. The default here is the near-linear greedy top-fiber
//     factorization (topfiber package) instead, which makes the baseline
//     an honest competitor at the sizes where ASSO init runs out of
//     memory; InitASSO keeps the faithful quadratic path as an ablation.
package bcpals

import (
	"context"
	"fmt"
	"time"

	"dbtf/internal/asso"
	"dbtf/internal/bitvec"
	"dbtf/internal/boolmat"
	"dbtf/internal/tensor"
	"dbtf/internal/topfiber"
)

// Init selects how BCP_ALS initializes each mode's factor matrix.
type Init int

const (
	// InitTopFiber factorizes each mode's unfolding with the near-linear
	// greedy top-fiber scheme (topfiber package). The default: it removes
	// the quadratic blowup without touching the alternating updates.
	InitTopFiber Init = iota
	// InitASSO applies ASSO to each mode's unfolding, materializing the
	// quadratic column-association matrix — the faithful reproduction of
	// the baseline the paper benchmarks, kept for the init ablation. Runs
	// fail with asso.ErrCandidateMemory when the matrix exceeds
	// MaxCandidateBytes.
	InitASSO
)

// String returns the flag spelling of the init ("topfiber", "asso").
func (i Init) String() string {
	switch i {
	case InitTopFiber:
		return "topfiber"
	case InitASSO:
		return "asso"
	default:
		return fmt.Sprintf("Init(%d)", int(i))
	}
}

// ParseInit parses the flag spelling of a BCP_ALS init. The empty string
// selects the default (InitTopFiber).
func ParseInit(s string) (Init, error) {
	switch s {
	case "", "topfiber":
		return InitTopFiber, nil
	case "asso":
		return InitASSO, nil
	default:
		return 0, fmt.Errorf("bcpals: unknown init %q (want topfiber or asso)", s)
	}
}

// Options configures a BCP_ALS decomposition.
type Options struct {
	// Rank is the number of components R. Required.
	Rank int
	// MaxIter is the maximum number of iterations T. Default 10.
	MaxIter int
	// MinIter disables the convergence check before this many iterations.
	// Default 1.
	MinIter int
	// Init selects the per-mode initialization. Default InitTopFiber.
	Init Init
	// Tau is the ASSO initialization threshold under InitASSO. Default 0.7
	// (the paper's experimental setting).
	Tau float64
	// Tolerance stops the iteration when the error improves by at most
	// this much. Default 0.
	Tolerance int64
	// MaxCandidateBytes caps the ASSO candidate matrices under InitASSO;
	// exceeding it fails the run like the out-of-memory failures the paper
	// reports for BCP_ALS on real-world tensors. Default 1 GiB.
	MaxCandidateBytes int64
}

// Result reports the outcome of a BCP_ALS run.
type Result struct {
	// A, B, C are the binary factor matrices.
	A, B, C *boolmat.FactorMatrix
	// Error is the final Boolean reconstruction error |X ⊕ X̂|.
	Error int64
	// Iterations is the number of full iterations executed.
	Iterations int
	// Converged reports whether the tolerance criterion stopped the run.
	Converged bool
	// WallTime is the elapsed time of the run.
	WallTime time.Duration
}

// Decompose runs BCP_ALS on x. The context bounds the run, including the
// quadratic initialization.
func Decompose(ctx context.Context, x *tensor.Tensor, opts Options) (*Result, error) {
	if x == nil {
		return nil, fmt.Errorf("bcpals: nil tensor")
	}
	dimI, dimJ, dimK := x.Dims()
	if dimI == 0 || dimJ == 0 || dimK == 0 {
		return nil, fmt.Errorf("bcpals: empty tensor %dx%dx%d", dimI, dimJ, dimK)
	}
	opt := opts
	if opt.Rank < 1 || opt.Rank > boolmat.MaxRank {
		return nil, fmt.Errorf("bcpals: rank %d outside [1,%d]", opt.Rank, boolmat.MaxRank)
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 10
	}
	if opt.MaxIter < 1 {
		return nil, fmt.Errorf("bcpals: MaxIter %d < 1", opt.MaxIter)
	}
	if opt.MinIter == 0 {
		opt.MinIter = 1
	}
	if opt.MinIter < 1 || opt.MinIter > opt.MaxIter {
		return nil, fmt.Errorf("bcpals: MinIter %d outside [1,%d]", opt.MinIter, opt.MaxIter)
	}
	if opt.Tolerance < 0 {
		return nil, fmt.Errorf("bcpals: Tolerance %d < 0", opt.Tolerance)
	}
	if opt.Init != InitTopFiber && opt.Init != InitASSO {
		return nil, fmt.Errorf("bcpals: unknown init %d", int(opt.Init))
	}

	start := time.Now()
	u1 := x.Unfold(tensor.Mode1)
	u2 := x.Unfold(tensor.Mode2)
	u3 := x.Unfold(tensor.Mode3)

	// Per-mode initialization: the unfolding is factorized by the greedy
	// top-fiber scheme (near-linear, the default) or by ASSO (quadratic,
	// the faithful-ablation path).
	a, err := initFactor(ctx, u1, opt)
	if err != nil {
		return nil, fmt.Errorf("bcpals: mode-1 initialization: %w", err)
	}
	b, err := initFactor(ctx, u2, opt)
	if err != nil {
		return nil, fmt.Errorf("bcpals: mode-2 initialization: %w", err)
	}
	c, err := initFactor(ctx, u3, opt)
	if err != nil {
		return nil, fmt.Errorf("bcpals: mode-3 initialization: %w", err)
	}

	res := &Result{}
	rows1 := denseRows(u1)
	rows2 := denseRows(u2)
	rows3 := denseRows(u3)

	prevErr := int64(-1)
	for t := 1; t <= opt.MaxIter; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := updateFactor(ctx, rows1, a, c, b); err != nil {
			return nil, err
		}
		if err := updateFactor(ctx, rows2, b, c, a); err != nil {
			return nil, err
		}
		if err := updateFactor(ctx, rows3, c, b, a); err != nil {
			return nil, err
		}
		e := reconstructionError(rows1, a, c, b)
		res.Iterations = t
		if t >= opt.MinIter && prevErr >= 0 && prevErr-e <= opt.Tolerance {
			prevErr = e
			res.Converged = true
			break
		}
		prevErr = e
	}

	res.A, res.B, res.C = a, b, c
	res.Error = prevErr
	res.WallTime = time.Since(start)
	return res, nil
}

// initFactor initializes one factor matrix as the usage matrix of a
// Boolean factorization of the mode's unfolding.
func initFactor(ctx context.Context, u *tensor.Unfolded, opt Options) (*boolmat.FactorMatrix, error) {
	dense := boolmat.NewMatrix(u.NumRows, u.NumCols)
	for r := 0; r < u.NumRows; r++ {
		row := dense.Row(r)
		for _, c := range u.Row(r) {
			row.Set(int(c))
		}
	}
	if opt.Init == InitASSO {
		res, err := asso.Factorize(ctx, dense, asso.Options{
			Rank:              opt.Rank,
			Tau:               opt.Tau,
			MaxCandidateBytes: opt.MaxCandidateBytes,
		})
		if err != nil {
			return nil, err
		}
		return res.U, nil
	}
	res, err := topfiber.Factorize(ctx, dense, opt.Rank)
	if err != nil {
		return nil, err
	}
	return res.U, nil
}

// denseRows materializes every row of an unfolding as a bit vector — the
// single-machine memory footprint the paper contrasts with DBTF's
// partitioned sparse layout.
func denseRows(u *tensor.Unfolded) []*bitvec.BitVec {
	rows := make([]*bitvec.BitVec, u.NumRows)
	for r := 0; r < u.NumRows; r++ {
		rows[r] = bitvec.FromIndices32(u.NumCols, u.Row(r))
	}
	return rows
}

// updateFactor performs the greedy column-wise update of a against the
// materialized unfolding rows, recomputing every Boolean row summation
// from the materialized (mf ⊙ ms)ᵀ (no caching).
func updateFactor(ctx context.Context, xRows []*bitvec.BitVec, a, mf, ms *boolmat.FactorMatrix) error {
	krT := boolmat.KhatriRao(mf, ms).Matrix().Transpose() // R × Q
	q := krT.Cols()
	sum := bitvec.New(q)
	for c := 0; c < a.Rank(); c++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		bit := uint64(1) << uint(c)
		for r := 0; r < a.Rows(); r++ {
			var errs [2]int
			for cand := 0; cand < 2; cand++ {
				mask := a.RowMask(r) &^ bit
				if cand == 1 {
					mask |= bit
				}
				sum.Zero()
				boolmat.OrSelectedRows(sum, krT, mask)
				errs[cand] = xRows[r].XorCount(sum)
			}
			a.Set(r, c, errs[1] < errs[0])
		}
	}
	return nil
}

// reconstructionError computes |X₍₁₎ ⊕ A ∘ (C ⊙ B)ᵀ|.
func reconstructionError(xRows []*bitvec.BitVec, a, mf, ms *boolmat.FactorMatrix) int64 {
	krT := boolmat.KhatriRao(mf, ms).Matrix().Transpose()
	sum := bitvec.New(krT.Cols())
	var e int64
	for r := 0; r < a.Rows(); r++ {
		sum.Zero()
		boolmat.OrSelectedRows(sum, krT, a.RowMask(r))
		e += int64(xRows[r].XorCount(sum))
	}
	return e
}
