package bcpals

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"dbtf/internal/asso"
	"dbtf/internal/boolmat"
	"dbtf/internal/tensor"
)

func ctxb() context.Context { return context.Background() }

func randomTensor(rng *rand.Rand, i, j, k int, density float64) *tensor.Tensor {
	var coords []tensor.Coord
	for a := 0; a < i; a++ {
		for b := 0; b < j; b++ {
			for c := 0; c < k; c++ {
				if rng.Float64() < density {
					coords = append(coords, tensor.Coord{I: a, J: b, K: c})
				}
			}
		}
	}
	return tensor.MustFromCoords(i, j, k, coords)
}

func TestValidation(t *testing.T) {
	x := randomTensor(rand.New(rand.NewSource(1)), 4, 4, 4, 0.2)
	cases := []struct {
		name string
		x    *tensor.Tensor
		opt  Options
	}{
		{"nil", nil, Options{Rank: 2}},
		{"rank 0", x, Options{Rank: 0}},
		{"rank 65", x, Options{Rank: 65}},
		{"neg maxiter", x, Options{Rank: 2, MaxIter: -2}},
		{"neg tolerance", x, Options{Rank: 2, Tolerance: -1}},
		{"unknown init", x, Options{Rank: 2, Init: Init(7)}},
		{"empty", tensor.New(3, 0, 3), Options{Rank: 2}},
	}
	for _, tc := range cases {
		if _, err := Decompose(ctxb(), tc.x, tc.opt); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestRecoversSingleBlock(t *testing.T) {
	var coords []tensor.Coord
	for i := 1; i < 6; i++ {
		for j := 2; j < 8; j++ {
			for k := 0; k < 5; k++ {
				coords = append(coords, tensor.Coord{I: i, J: j, K: k})
			}
		}
	}
	x := tensor.MustFromCoords(10, 10, 10, coords)
	res, err := Decompose(ctxb(), x, Options{Rank: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 {
		t.Fatalf("rank-1 block not recovered: error %d", res.Error)
	}
}

func TestErrorMatchesReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randomTensor(rng, 9, 10, 8, 0.15)
	res, err := Decompose(ctxb(), x, Options{Rank: 3, MaxIter: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := tensor.ReconstructError(x, res.A, res.B, res.C); res.Error != want {
		t.Fatalf("reported error %d != recomputed %d", res.Error, want)
	}
}

func TestImprovesOverEmptyFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := boolmat.RandomFactor(rng, 12, 2, 0.3)
	b := boolmat.RandomFactor(rng, 12, 2, 0.3)
	c := boolmat.RandomFactor(rng, 12, 2, 0.3)
	x := tensor.Reconstruct(a, b, c)
	if x.NNZ() == 0 {
		t.Skip("degenerate planted tensor")
	}
	res, err := Decompose(ctxb(), x, Options{Rank: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error >= int64(x.NNZ()) {
		t.Fatalf("error %d no better than trivial %d", res.Error, x.NNZ())
	}
}

func TestFactorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randomTensor(rng, 6, 9, 12, 0.1)
	res, err := Decompose(ctxb(), x, Options{Rank: 2, MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.A.Rows() != 6 || res.B.Rows() != 9 || res.C.Rows() != 12 {
		t.Fatalf("shapes %d/%d/%d", res.A.Rows(), res.B.Rows(), res.C.Rows())
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(5))
	x := randomTensor(rng, 8, 8, 8, 0.1)
	if _, err := Decompose(ctx, x, Options{Rank: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMemoryCapSurfacesAsOOM(t *testing.T) {
	// The quadratic ASSO initialization must fail cleanly when the
	// candidate matrices exceed the cap — mirroring the paper's BCP_ALS
	// O.O.M. rows.
	rng := rand.New(rand.NewSource(6))
	x := randomTensor(rng, 8, 32, 32, 0.05) // unfolded columns: 1024² bits
	_, err := Decompose(ctxb(), x, Options{Rank: 2, Init: InitASSO, MaxCandidateBytes: 1 << 10})
	if !errors.Is(err, asso.ErrCandidateMemory) {
		t.Fatalf("err = %v, want ErrCandidateMemory", err)
	}
}

func TestTopFiberInitSurvivesMemoryCap(t *testing.T) {
	// The same tensor and cap that O.O.M. the ASSO init must sail through
	// under the default top-fiber init: it materializes nothing quadratic,
	// so the cap never applies — the quadratic-blowup fix of ISSUE 10.
	rng := rand.New(rand.NewSource(6))
	x := randomTensor(rng, 8, 32, 32, 0.05)
	res, err := Decompose(ctxb(), x, Options{Rank: 2, MaxCandidateBytes: 1 << 10})
	if err != nil {
		t.Fatalf("topfiber init failed under the memory cap: %v", err)
	}
	if want := tensor.ReconstructError(x, res.A, res.B, res.C); res.Error != want {
		t.Fatalf("reported error %d != recomputed %d", res.Error, want)
	}
}

func TestInitStringAndParseRoundtrip(t *testing.T) {
	for _, in := range []Init{InitTopFiber, InitASSO} {
		got, err := ParseInit(in.String())
		if err != nil || got != in {
			t.Fatalf("ParseInit(%q) = %v, %v; want %v", in.String(), got, err, in)
		}
	}
	if got, err := ParseInit(""); err != nil || got != InitTopFiber {
		t.Fatalf("ParseInit(\"\") = %v, %v; want the topfiber default", got, err)
	}
	if _, err := ParseInit("random"); err == nil {
		t.Fatal("unknown init name parsed without error")
	}
}

func TestASSOInitStillMatchesReference(t *testing.T) {
	// The legacy path must keep producing a valid factorization when the
	// candidate matrices fit: the ablation needs both inits runnable on
	// the same input.
	rng := rand.New(rand.NewSource(8))
	x := randomTensor(rng, 8, 8, 8, 0.15)
	res, err := Decompose(ctxb(), x, Options{Rank: 2, MaxIter: 3, Init: InitASSO})
	if err != nil {
		t.Fatal(err)
	}
	if want := tensor.ReconstructError(x, res.A, res.B, res.C); res.Error != want {
		t.Fatalf("reported error %d != recomputed %d", res.Error, want)
	}
}

func TestConvergesEarlyWithLargeTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randomTensor(rng, 8, 8, 8, 0.1)
	res, err := Decompose(ctxb(), x, Options{Rank: 2, MaxIter: 40, Tolerance: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations >= 40 {
		t.Fatalf("converged=%v iterations=%d", res.Converged, res.Iterations)
	}
}
