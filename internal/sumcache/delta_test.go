package sumcache

import (
	"math/rand"
	"sync"
	"testing"

	"dbtf/internal/bitvec"
)

// deltaBits materializes the delta region described by d as a bit vector:
// (W1 &^ W0) minus every occluder.
func deltaBits(d *Delta, width int) *bitvec.BitVec {
	out := bitvec.New(width)
	if d.Empty() {
		return out
	}
	for j := 0; j < width; j++ {
		wi, bm := j>>6, uint64(1)<<(uint(j)&63)
		set := d.W1[wi]&bm != 0 && d.W0[wi]&bm == 0
		for _, occ := range d.Occ {
			set = set && occ[wi]&bm == 0
		}
		if set {
			out.Set(j)
		}
	}
	return out
}

// TestSumDeltaMatchesSums checks, for eager and sliced caches at several
// group splits, that the delta region equals sum(mask|bit) &^ sum(mask)
// and that Pop is the unoccluded gain popcount, for every (mask, bit)
// pair with the bit not in the mask.
func TestSumDeltaMatchesSums(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const r, width = 9, 70
	cols := randomCols(rng, r, width)
	for _, groupBits := range []int{2, 4, DefaultGroupBits} {
		full := New(cols, groupBits)
		half := full.Slice(13, 49)
		for _, tc := range []struct {
			name  string
			c     *Cache
			width int
			lo    int
		}{
			{"eager", full, width, 0},
			{"sliced", half, 49 - 13, 13},
		} {
			scratch := bitvec.New(tc.width)
			var d Delta
			for mask := uint64(0); mask < 1<<r; mask++ {
				for b := 0; b < r; b++ {
					bit := uint64(1) << uint(b)
					if mask&bit != 0 {
						continue
					}
					sum0, _ := tc.c.Sum(mask, scratch)
					sum0 = sum0.Copy() // scratch may back both sums
					sum1, _ := tc.c.Sum(mask|bit, scratch)
					want := sum1.Copy()
					want.AndNot(sum0)
					tc.c.SumDelta(mask, bit, &d)
					if got := deltaBits(&d, tc.width); !got.Equal(want) {
						t.Fatalf("V=%d %s mask=%#x bit=%d: delta region mismatch",
							groupBits, tc.name, mask, b)
					}
					if !d.Empty() {
						// Pop is the within-group gain at this cache's
						// width: |entry1 &^ entry0|.
						wantPop := bitvec.AndNotCountWords(d.W1, d.W0)
						if d.Pop != wantPop {
							t.Fatalf("V=%d %s mask=%#x bit=%d: Pop=%d want %d",
								groupBits, tc.name, mask, b, d.Pop, wantPop)
						}
					}
				}
			}
		}
	}
}

// TestSumDeltaEmptySkipsWork checks the popcount short-circuit: when the
// added bit's column contributes nothing new within its group, SumDelta
// reports an empty delta, and on sliced caches it does so without
// materializing any entry.
func TestSumDeltaEmptySkipsWork(t *testing.T) {
	// Column 1 duplicates column 0, so adding bit 1 to any mask that
	// already has bit 0 gains nothing.
	width := 40
	c0 := bitvec.New(width)
	for _, j := range []int{3, 17, 39} {
		c0.Set(j)
	}
	cols := []*bitvec.BitVec{c0, c0.Copy()}
	full := New(cols, DefaultGroupBits)
	sl := full.Slice(10, 30)
	var d Delta
	sl.SumDelta(1, 2, &d) // mask has bit 0; adding bit 1 duplicates it
	if !d.Empty() {
		t.Fatal("delta of a duplicate column should be empty")
	}
	if got := sl.Materialized(); got != 0 {
		t.Fatalf("empty delta materialized %d sliced entries, want 0", got)
	}
}

func TestLazySliceMaterializesOnDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cols := randomCols(rng, 6, 64)
	full := New(cols, DefaultGroupBits)
	sl := full.Slice(5, 41)
	if got, want := sl.Entries(), full.Entries(); got != want {
		t.Fatalf("sliced capacity %d, want %d", got, want)
	}
	if got := sl.Materialized(); got != 0 {
		t.Fatalf("fresh slice has %d materialized entries, want 0", got)
	}
	scratch := bitvec.New(sl.Width())
	sum, pop := sl.Sum(0b101, scratch)
	want := naiveSum(cols, 64, 0b101).Slice(5, 41)
	if !sum.Equal(want) || pop != want.OnesCount() {
		t.Fatal("lazy sliced sum differs from naive slice")
	}
	if got := sl.Materialized(); got != 1 {
		t.Fatalf("after one query: %d materialized entries, want 1", got)
	}
	// Re-querying the same mask must not materialize anything new.
	sl.Sum(0b101, scratch)
	if got := sl.Materialized(); got != 1 {
		t.Fatalf("after repeat query: %d materialized entries, want 1", got)
	}
}

// TestSliceOfSliceStaysOneLevel checks that re-slicing a sliced cache
// derives from the eager root (entry lookups never chain through two lazy
// levels) and still yields correct sums.
func TestSliceOfSliceStaysOneLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cols := randomCols(rng, 5, 80)
	full := New(cols, DefaultGroupBits)
	inner := full.Slice(10, 60).Slice(5, 30) // bits [15, 40) of the root
	if inner.parent != full {
		t.Fatal("slice of slice should re-parent onto the eager root")
	}
	scratch := bitvec.New(inner.Width())
	for mask := uint64(0); mask < 1<<5; mask++ {
		sum, _ := inner.Sum(mask, scratch)
		want := naiveSum(cols, 80, mask).Slice(15, 40)
		if !sum.Equal(want) {
			t.Fatalf("mask %#x: nested slice sum mismatch", mask)
		}
	}
}

// TestLazySliceConcurrentReaders hammers one sliced cache from many
// goroutines (the sharing pattern of partitions co-located on a machine);
// run under -race this pins the CAS publication protocol.
func TestLazySliceConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	cols := randomCols(rng, 8, 96)
	full := New(cols, 3) // 3 groups → SumDelta exercises occluders too
	sl := full.Slice(7, 77)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			scratch := bitvec.New(sl.Width())
			var d Delta
			for i := 0; i < 500; i++ {
				mask := rng.Uint64() & 0xff
				sum, _ := sl.Sum(mask, scratch)
				want := naiveSum(cols, 96, mask).Slice(7, 77)
				if !sum.Equal(want) {
					t.Errorf("mask %#x: concurrent sliced sum mismatch", mask)
					return
				}
				bit := uint64(1) << uint(rng.Intn(8))
				if mask&bit == 0 {
					sl.SumDelta(mask, bit, &d)
				}
			}
		}(int64(g))
	}
	wg.Wait()
}
