// Package sumcache implements DBTF's cache of Boolean row summations
// (paper Section III-C, Algorithm 5).
//
// Updating a factor matrix repeatedly computes Boolean sums of selected
// rows of (C ⊙ B)ᵀ. Restricted to the columns of one pointwise
// vector-matrix product (c_k: ⊛ B)ᵀ, such a sum is the OR of the columns
// of B selected by the mask a_i: ∧ c_k: (Lemma 1 plus the Khatri–Rao
// structure). A Cache precomputes those ORs for every possible mask:
// entry m holds ⋁_{r ∈ m} b_:r as a Rows(B)-bit vector.
//
// Because the table has 2^R entries, ranks above a threshold V are split
// into ⌈R/V⌉ groups of (nearly) equal size, each with its own table of at
// most 2^⌈R/⌈R/V⌉⌉ entries (Lemma 2); a full summation then ORs one entry
// per group.
//
// Partition blocks narrower than a full PVM product (block types (1), (2)
// and (4) of Figure 5) use sliced caches derived from the full-size one in
// a single pass (Algorithm 5, lines 3–5).
package sumcache

import (
	"fmt"

	"dbtf/internal/bitvec"
	"dbtf/internal/boolmat"
)

// DefaultGroupBits is the paper's default for the threshold V: the maximum
// number of rank bits covered by a single cache table.
const DefaultGroupBits = 15

// Cache holds precomputed Boolean row summations for all 2^R masks over R
// rank bits, split into groups of at most V bits each.
type Cache struct {
	rank  int
	width int // bits per entry
	// groups[g] covers rank bits [shift, shift+bits).
	groups []group
}

type group struct {
	shift uint
	bits  int
	mask  uint64
	// rows[m] = OR of the cached columns selected by m (within this group).
	rows []*bitvec.BitVec
	pop  []int32 // OnesCount of rows[m]
}

// New builds a cache over the given columns (column r is selected by mask
// bit r); each column must have the same length, which becomes the entry
// width. groupBits is the threshold V; values < 1 mean DefaultGroupBits.
func New(cols []*bitvec.BitVec, groupBits int) *Cache {
	if groupBits < 1 {
		groupBits = DefaultGroupBits
	}
	r := len(cols)
	if r > boolmat.MaxRank {
		panic(fmt.Sprintf("sumcache: rank %d exceeds %d", r, boolmat.MaxRank))
	}
	width := 0
	if r > 0 {
		width = cols[0].Len()
		for i, c := range cols {
			if c.Len() != width {
				panic(fmt.Sprintf("sumcache: column %d has %d bits, want %d", i, c.Len(), width))
			}
		}
	}
	c := &Cache{rank: r, width: width}
	numGroups := 1
	if r > groupBits {
		numGroups = (r + groupBits - 1) / groupBits
	}
	base := 0
	rem := 0
	if numGroups > 0 && r > 0 {
		base = r / numGroups
		rem = r % numGroups
	}
	shift := uint(0)
	for g := 0; g < numGroups; g++ {
		bits := base
		if g < rem {
			bits++
		}
		if r == 0 {
			bits = 0
		}
		c.groups = append(c.groups, buildGroup(cols, shift, bits, width))
		shift += uint(bits)
	}
	return c
}

// NewFromFactor builds a cache over the columns of a factor matrix: the
// caching matrix M_c of Algorithm 5 (B when updating A against
// X₍₁₎ ≈ A ∘ (C ⊙ B)ᵀ).
func NewFromFactor(m *boolmat.FactorMatrix, groupBits int) *Cache {
	return New(m.Columns(), groupBits)
}

// buildGroup fills a 2^bits-entry table incrementally: each entry is one OR
// away from a previously computed entry (drop the lowest set bit), so the
// whole table costs O(2^bits) vector ORs — the paper's "incremental
// computations that use prior row summation results" (Lemma 4, step i).
func buildGroup(cols []*bitvec.BitVec, shift uint, bits, width int) group {
	g := group{
		shift: shift,
		bits:  bits,
		mask:  (uint64(1) << uint(bits)) - 1,
		rows:  make([]*bitvec.BitVec, 1<<uint(bits)),
		pop:   make([]int32, 1<<uint(bits)),
	}
	g.rows[0] = bitvec.New(width)
	for m := uint64(1); m < uint64(len(g.rows)); m++ {
		prev := m & (m - 1) // m without its lowest set bit
		low := m ^ prev     // the lowest set bit
		e := g.rows[prev].Copy()
		e.Or(cols[shift+uint(bitIndex(low))])
		g.rows[m] = e
		g.pop[m] = int32(e.OnesCount())
	}
	return g
}

func bitIndex(single uint64) int {
	n := 0
	for single > 1 {
		single >>= 1
		n++
	}
	return n
}

// Rank returns the number of rank bits R the cache covers.
func (c *Cache) Rank() int { return c.rank }

// Width returns the number of bits per cached entry.
func (c *Cache) Width() int { return c.width }

// NumGroups returns the number of cache tables ⌈R/V⌉ (Lemma 2).
func (c *Cache) NumGroups() int { return len(c.groups) }

// Entries returns the total number of cached row summations across all
// groups, for memory accounting (Lemma 5).
func (c *Cache) Entries() int {
	n := 0
	for _, g := range c.groups {
		n += len(g.rows)
	}
	return n
}

// Sum returns the Boolean row summation for the given mask along with its
// popcount. With a single group the returned vector is the cache entry
// itself — callers must treat it as read-only. With multiple groups the
// per-group entries are ORed into scratch (which must have Width() bits)
// and scratch is returned.
func (c *Cache) Sum(mask uint64, scratch *bitvec.BitVec) (sum *bitvec.BitVec, pop int) {
	if len(c.groups) == 1 {
		g := &c.groups[0]
		m := mask & g.mask
		return g.rows[m], int(g.pop[m])
	}
	scratch.Zero()
	for i := range c.groups {
		g := &c.groups[i]
		scratch.Or(g.rows[(mask>>g.shift)&g.mask])
	}
	return scratch, scratch.OnesCount()
}

// Slice derives a cache over bit range [lo, hi) of every entry, used for
// partition blocks that cover only part of a PVM product. Each sliced
// entry is produced with a single pass over the full-size table
// (Algorithm 5: "vertically slice m such that the sliced one corresponds
// to block b").
func (c *Cache) Slice(lo, hi int) *Cache {
	if lo < 0 || hi > c.width || lo > hi {
		panic(fmt.Sprintf("sumcache: Slice [%d,%d) out of range of %d bits", lo, hi, c.width))
	}
	out := &Cache{rank: c.rank, width: hi - lo, groups: make([]group, len(c.groups))}
	for i := range c.groups {
		g := &c.groups[i]
		ng := group{
			shift: g.shift,
			bits:  g.bits,
			mask:  g.mask,
			rows:  make([]*bitvec.BitVec, len(g.rows)),
			pop:   make([]int32, len(g.rows)),
		}
		for m := range g.rows {
			e := g.rows[m].Slice(lo, hi)
			ng.rows[m] = e
			ng.pop[m] = int32(e.OnesCount())
		}
		out.groups[i] = ng
	}
	return out
}
