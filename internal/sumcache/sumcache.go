// Package sumcache implements DBTF's cache of Boolean row summations
// (paper Section III-C, Algorithm 5).
//
// Updating a factor matrix repeatedly computes Boolean sums of selected
// rows of (C ⊙ B)ᵀ. Restricted to the columns of one pointwise
// vector-matrix product (c_k: ⊛ B)ᵀ, such a sum is the OR of the columns
// of B selected by the mask a_i: ∧ c_k: (Lemma 1 plus the Khatri–Rao
// structure). A Cache precomputes those ORs for every possible mask:
// entry m holds ⋁_{r ∈ m} b_:r as a Rows(B)-bit vector.
//
// Because the table has 2^R entries, ranks above a threshold V are split
// into ⌈R/V⌉ groups of (nearly) equal size, each with its own table of at
// most 2^⌈R/⌈R/V⌉⌉ entries (Lemma 2); a full summation then ORs one entry
// per group.
//
// Partition blocks narrower than a full PVM product (block types (1), (2)
// and (4) of Figure 5) use sliced caches derived from the full-size one.
// Sliced entries are materialized lazily and memoized: a partition that
// never queries a mask never pays for slicing it (the eager variant of
// Algorithm 5's lines 3–5 slices all 2^R entries up front, most of which
// sparse row masks never touch).
//
// Beyond full summations, the cache serves error *deltas*: SumDelta
// describes the region of cells that flip 0→1 when one rank bit is added
// to a mask, as the per-group gain vector entry(m|b) &^ entry(m) plus the
// other groups' entries that occlude it. Because cache entries are ORs of
// column subsets, entry(m) ⊆ entry(m|b), so the gain popcount is the
// difference of two cached popcounts — no vector work at all — and rows
// whose gain is empty are skipped outright.
package sumcache

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"dbtf/internal/bitvec"
	"dbtf/internal/boolmat"
	"dbtf/internal/slab"
)

// DefaultGroupBits is the paper's default for the threshold V: the maximum
// number of rank bits covered by a single cache table.
const DefaultGroupBits = 15

// Cache holds precomputed Boolean row summations for all 2^R masks over R
// rank bits, split into groups of at most V bits each. A Cache built by
// New is fully materialized; a Cache returned by Slice materializes its
// entries lazily on first query. Both are safe for concurrent readers.
type Cache struct {
	rank  int
	width int // bits per entry
	// groups[g] covers rank bits [shift, shift+bits).
	groups []group
	// bitGroup maps each rank bit to its group index.
	bitGroup [boolmat.MaxRank]uint8
	// parent and lo/hi are set on lazily sliced caches: entries are bit
	// range [lo, hi) of the parent's entries.
	parent *Cache
	lo, hi int
}

type group struct {
	shift uint
	bits  int
	mask  uint64
	// rows[m] = OR of the cached columns selected by m (within this
	// group); eager caches only.
	rows []*bitvec.BitVec
	pop  []int32 // OnesCount of rows[m]; eager caches only
	// lazy[m] memoizes sliced entries; sliced caches only.
	lazy []atomic.Pointer[sliceEntry]
	// words backs the rows of an eager group; recycled by Release.
	words []uint64
}

type sliceEntry struct {
	vec *bitvec.BitVec
	pop int32
}

// New builds a cache over the given columns (column r is selected by mask
// bit r); each column must have the same length, which becomes the entry
// width. groupBits is the threshold V; values < 1 mean DefaultGroupBits.
func New(cols []*bitvec.BitVec, groupBits int) *Cache {
	if groupBits < 1 {
		groupBits = DefaultGroupBits
	}
	r := len(cols)
	if r > boolmat.MaxRank {
		panic(fmt.Sprintf("sumcache: rank %d exceeds %d", r, boolmat.MaxRank))
	}
	width := 0
	if r > 0 {
		width = cols[0].Len()
		for i, c := range cols {
			if c.Len() != width {
				panic(fmt.Sprintf("sumcache: column %d has %d bits, want %d", i, c.Len(), width))
			}
		}
	}
	c := &Cache{rank: r, width: width}
	numGroups := 1
	if r > groupBits {
		numGroups = (r + groupBits - 1) / groupBits
	}
	base := 0
	rem := 0
	if numGroups > 0 && r > 0 {
		base = r / numGroups
		rem = r % numGroups
	}
	shift := uint(0)
	for g := 0; g < numGroups; g++ {
		bits := base
		if g < rem {
			bits++
		}
		if r == 0 {
			bits = 0
		}
		for b := 0; b < bits; b++ {
			c.bitGroup[int(shift)+b] = uint8(g)
		}
		c.groups = append(c.groups, buildGroup(cols, shift, bits, width))
		shift += uint(bits)
	}
	return c
}

// NewFromFactor builds a cache over the columns of a factor matrix: the
// caching matrix M_c of Algorithm 5 (B when updating A against
// X₍₁₎ ≈ A ∘ (C ⊙ B)ᵀ).
func NewFromFactor(m *boolmat.FactorMatrix, groupBits int) *Cache {
	return New(m.Columns(), groupBits)
}

// buildGroup fills a 2^bits-entry table incrementally: each entry is one OR
// away from a previously computed entry (drop the lowest set bit), so the
// whole table costs O(2^bits) vector ORs — the paper's "incremental
// computations that use prior row summation results" (Lemma 4, step i).
// The entries are carved out of one bitvec.Slab: tables are rebuilt once
// per machine per factor version, and per-entry allocation used to
// dominate the whole decomposition's allocation profile.
func buildGroup(cols []*bitvec.BitVec, shift uint, bits, width int) group {
	n := 1 << uint(bits)
	g := group{
		shift: shift,
		bits:  bits,
		mask:  (uint64(1) << uint(bits)) - 1,
		rows:  make([]*bitvec.BitVec, n),
		pop:   make([]int32, n),
	}
	stride := bitvec.SlabWords(1, width)
	g.words = slab.Uint64s(n * stride)
	// Entry 0 (the empty summation) must start zero; every other entry is
	// fully overwritten below, so recycled memory needs no further clearing.
	clear(g.words[:stride])
	vecs := bitvec.SlabOver(g.words, n, width)
	g.rows[0] = &vecs[0]
	for m := uint64(1); m < uint64(n); m++ {
		prev := m & (m - 1) // m without its lowest set bit
		low := m ^ prev     // the lowest set bit
		e := &vecs[m]
		e.CopyFrom(g.rows[prev])
		e.Or(cols[shift+uint(bitIndex(low))])
		g.rows[m] = e
		g.pop[m] = int32(e.OnesCount())
	}
	return g
}

// Release returns the eager tables' backing words to the slab pool and
// poisons the cache against further use. Only cache owners with exclusive
// access at a version boundary (the machine registries, on eviction of a
// stale factor version) call it; sliced caches own no slabs and their
// lazily materialized entries are independent copies, so only the eager
// root is released.
func (c *Cache) Release() {
	if c.parent != nil {
		return
	}
	for i := range c.groups {
		g := &c.groups[i]
		slab.PutUint64s(g.words)
		g.words, g.rows, g.pop = nil, nil, nil
	}
}

// bitIndex returns the index of the single set bit.
func bitIndex(single uint64) int {
	return bits.TrailingZeros64(single)
}

// Rank returns the number of rank bits R the cache covers.
func (c *Cache) Rank() int { return c.rank }

// Width returns the number of bits per cached entry.
func (c *Cache) Width() int { return c.width }

// NumGroups returns the number of cache tables ⌈R/V⌉ (Lemma 2).
func (c *Cache) NumGroups() int { return len(c.groups) }

// Entries returns the total number of cacheable row summations across all
// groups (the table capacity of Lemma 5's memory bound). For lazily
// sliced caches this counts slots, not materialized entries; see
// Materialized.
func (c *Cache) Entries() int {
	n := 0
	for i := range c.groups {
		g := &c.groups[i]
		if g.lazy != nil {
			n += len(g.lazy)
		} else {
			n += len(g.rows)
		}
	}
	return n
}

// Materialized returns the number of entries actually computed so far:
// equal to Entries for eager caches, and the memoized subset for lazily
// sliced caches.
func (c *Cache) Materialized() int {
	n := 0
	for i := range c.groups {
		g := &c.groups[i]
		if g.lazy == nil {
			n += len(g.rows)
			continue
		}
		for m := range g.lazy {
			if g.lazy[m].Load() != nil {
				n++
			}
		}
	}
	return n
}

// entry returns the cached summation and popcount for mask m of group gi,
// materializing and memoizing it on sliced caches. Concurrent callers
// converge on a single canonical entry via compare-and-swap.
func (c *Cache) entry(gi int, m uint64) (*bitvec.BitVec, int32) {
	g := &c.groups[gi]
	if g.lazy == nil {
		return g.rows[m], g.pop[m]
	}
	if e := g.lazy[m].Load(); e != nil {
		return e.vec, e.pop
	}
	pv, _ := c.parent.entry(gi, m)
	vec := pv.Slice(c.lo, c.hi)
	e := &sliceEntry{vec: vec, pop: int32(pv.OnesCountRange(c.lo, c.hi))}
	if !g.lazy[m].CompareAndSwap(nil, e) {
		e = g.lazy[m].Load() // another reader won the race; share its entry
	}
	return e.vec, e.pop
}

// Sum returns the Boolean row summation for the given mask along with its
// popcount. With a single group the returned vector is the cache entry
// itself — callers must treat it as read-only. With multiple groups the
// per-group entries are ORed into scratch (which must have Width() bits)
// and scratch is returned.
func (c *Cache) Sum(mask uint64, scratch *bitvec.BitVec) (sum *bitvec.BitVec, pop int) {
	if len(c.groups) == 1 {
		g := &c.groups[0]
		e, p := c.entry(0, mask&g.mask)
		return e, int(p)
	}
	scratch.Zero()
	for i := range c.groups {
		g := &c.groups[i]
		e, _ := c.entry(i, (mask>>g.shift)&g.mask)
		scratch.Or(e)
	}
	return scratch, scratch.OnesCount()
}

// Delta describes the cells that flip 0→1 when a single rank bit is added
// to a mask: the gain region D = (W1 &^ W0) minus the bits already covered
// by the other groups' entries (Occ). The per-row error difference of
// Algorithm 4 then follows from D alone:
//
//	e1 − e0 = |D| − 2·|x_row ∧ D|
//
// because candidate 1's summation is candidate 0's plus exactly D.
// A Delta is only a view into cache entries — word slices are read-only —
// and is refilled in place by SumDelta so hot loops allocate nothing.
type Delta struct {
	// Pop is the gain popcount |entry(m|b)| − |entry(m)| within the bit's
	// group, served from cached popcounts. Pop == 0 means the delta region
	// is empty regardless of occlusion: the row can be skipped.
	Pop int
	// W1, W0 are the words of entry(m|b) and entry(m); the gain vector is
	// W1 &^ W0 (entry(m) ⊆ entry(m|b), so its popcount is Pop).
	W1, W0 []uint64
	// Occ holds the words of the other groups' entries for the mask:
	// cells they cover are already 1 under both candidates and must be
	// excluded from the gain. Empty for single-group caches and for masks
	// that select no column in the other groups.
	Occ [][]uint64
}

// Empty reports whether the delta region is empty, in which case both
// candidate errors are equal and the row contributes no difference.
func (d *Delta) Empty() bool { return d.Pop == 0 }

// SumDelta fills d with the delta region for adding rank bit `bit` (a
// one-hot mask, not set in mask) to `mask`. On sliced caches a gain that
// is empty at full width short-circuits without materializing any sliced
// entry — the cached full-width popcounts decide emptiness for every
// slice at once.
func (c *Cache) SumDelta(mask, bit uint64, d *Delta) {
	gi := int(c.bitGroup[bits.TrailingZeros64(bit)])
	g := &c.groups[gi]
	m0 := (mask >> g.shift) & g.mask
	m1 := m0 | (bit >> g.shift)
	if p := c.parent; p != nil {
		pg := &p.groups[gi]
		if pg.pop[m1] == pg.pop[m0] {
			d.Pop = 0
			return
		}
	}
	e1, p1 := c.entry(gi, m1)
	e0, p0 := c.entry(gi, m0)
	d.Pop = int(p1 - p0)
	if d.Pop == 0 {
		return
	}
	d.W1, d.W0 = e1.Words(), e0.Words()
	d.Occ = d.Occ[:0]
	for oi := range c.groups {
		if oi == gi {
			continue
		}
		og := &c.groups[oi]
		om := (mask >> og.shift) & og.mask
		if om == 0 {
			continue // entry 0 is empty and occludes nothing
		}
		oe, _ := c.entry(oi, om)
		d.Occ = append(d.Occ, oe.Words())
	}
}

// Slice derives a cache over bit range [lo, hi) of every entry, used for
// partition blocks that cover only part of a PVM product. Entries are
// materialized lazily and memoized on first query (and shared by
// concurrent readers), so masks that are never summed cost nothing;
// Algorithm 5's eager "slice every entry" pass is the worst case, reached
// only if all 2^R masks are actually queried.
func (c *Cache) Slice(lo, hi int) *Cache {
	if lo < 0 || hi > c.width || lo > hi {
		panic(fmt.Sprintf("sumcache: Slice [%d,%d) out of range of %d bits", lo, hi, c.width))
	}
	if c.parent != nil {
		// Slice relative to the eager root so entry() recurses one level.
		return c.parent.Slice(c.lo+lo, c.lo+hi)
	}
	out := &Cache{
		rank:     c.rank,
		width:    hi - lo,
		groups:   make([]group, len(c.groups)),
		bitGroup: c.bitGroup,
		parent:   c,
		lo:       lo,
		hi:       hi,
	}
	for i := range c.groups {
		g := &c.groups[i]
		out.groups[i] = group{
			shift: g.shift,
			bits:  g.bits,
			mask:  g.mask,
			lazy:  make([]atomic.Pointer[sliceEntry], len(g.rows)),
		}
	}
	return out
}
