package sumcache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dbtf/internal/bitvec"
	"dbtf/internal/boolmat"
)

// naiveSum ORs the columns selected by mask — the uncached reference.
func naiveSum(cols []*bitvec.BitVec, width int, mask uint64) *bitvec.BitVec {
	out := bitvec.New(width)
	for r := 0; r < len(cols); r++ {
		if mask&(1<<uint(r)) != 0 {
			out.Or(cols[r])
		}
	}
	return out
}

func randomCols(rng *rand.Rand, r, width int) []*bitvec.BitVec {
	cols := make([]*bitvec.BitVec, r)
	for i := range cols {
		v := bitvec.New(width)
		for b := 0; b < width; b++ {
			if rng.Intn(3) == 0 {
				v.Set(b)
			}
		}
		cols[i] = v
	}
	return cols
}

func TestSingleGroupMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cols := randomCols(rng, 8, 50)
	c := New(cols, DefaultGroupBits)
	if c.NumGroups() != 1 {
		t.Fatalf("NumGroups = %d, want 1", c.NumGroups())
	}
	scratch := bitvec.New(50)
	for mask := uint64(0); mask < 256; mask++ {
		want := naiveSum(cols, 50, mask)
		got, pop := c.Sum(mask, scratch)
		if !got.Equal(want) {
			t.Fatalf("mask %#x: cached sum != naive", mask)
		}
		if pop != want.OnesCount() {
			t.Fatalf("mask %#x: pop = %d, want %d", mask, pop, want.OnesCount())
		}
	}
}

func TestMultiGroupMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cols := randomCols(rng, 11, 40)
	c := New(cols, 4) // V=4 → ⌈11/4⌉ = 3 groups
	if c.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3", c.NumGroups())
	}
	scratch := bitvec.New(40)
	for trial := 0; trial < 500; trial++ {
		mask := rng.Uint64() & ((1 << 11) - 1)
		want := naiveSum(cols, 40, mask)
		got, pop := c.Sum(mask, scratch)
		if !got.Equal(want) {
			t.Fatalf("mask %#x: cached sum != naive", mask)
		}
		if pop != want.OnesCount() {
			t.Fatalf("mask %#x: pop mismatch", mask)
		}
	}
}

func TestLemma2GroupCounts(t *testing.T) {
	// Lemma 2: ⌈R/V⌉ tables, each of size 2^⌈R/⌈R/V⌉⌉.
	cases := []struct {
		r, v              int
		groups, tableSize int
	}{
		{18, 10, 2, 1 << 9}, // the paper's example: two tables of 2^9
		{10, 15, 1, 1 << 10},
		{15, 15, 1, 1 << 15},
		{16, 15, 2, 1 << 8},
		{20, 15, 2, 1 << 10},
		{31, 10, 4, 1 << 8},
	}
	for _, tc := range cases {
		cols := make([]*bitvec.BitVec, tc.r)
		for i := range cols {
			cols[i] = bitvec.New(4)
		}
		c := New(cols, tc.v)
		if c.NumGroups() != tc.groups {
			t.Errorf("R=%d V=%d: groups = %d, want %d", tc.r, tc.v, c.NumGroups(), tc.groups)
		}
		maxTable := 0
		total := 0
		for _, g := range c.groups {
			if len(g.rows) > maxTable {
				maxTable = len(g.rows)
			}
			total += len(g.rows)
		}
		if maxTable != tc.tableSize {
			t.Errorf("R=%d V=%d: largest table = %d, want %d", tc.r, tc.v, maxTable, tc.tableSize)
		}
		if c.Entries() != total {
			t.Errorf("Entries() = %d, want %d", c.Entries(), total)
		}
	}
}

func TestGroupsCoverAllBitsDisjointly(t *testing.T) {
	cols := make([]*bitvec.BitVec, 23)
	for i := range cols {
		cols[i] = bitvec.New(4)
	}
	c := New(cols, 7)
	var covered uint64
	for _, g := range c.groups {
		gm := g.mask << g.shift
		if covered&gm != 0 {
			t.Fatal("groups overlap")
		}
		covered |= gm
	}
	if covered != (1<<23)-1 {
		t.Fatalf("groups cover %#x, want all 23 bits", covered)
	}
}

func TestZeroRank(t *testing.T) {
	c := New(nil, 15)
	scratch := bitvec.New(0)
	sum, pop := c.Sum(0, scratch)
	if sum.OnesCount() != 0 || pop != 0 {
		t.Fatal("zero-rank cache returned nonzero sum")
	}
}

func TestNewFromFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := boolmat.RandomFactor(rng, 30, 6, 0.3)
	c := NewFromFactor(b, DefaultGroupBits)
	if c.Width() != 30 || c.Rank() != 6 {
		t.Fatalf("cache shape width=%d rank=%d", c.Width(), c.Rank())
	}
	scratch := bitvec.New(30)
	for mask := uint64(0); mask < 64; mask++ {
		want := naiveSum(b.Columns(), 30, mask)
		if got, _ := c.Sum(mask, scratch); !got.Equal(want) {
			t.Fatalf("mask %#x mismatch", mask)
		}
	}
}

func TestMismatchedColumnLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched column lengths")
		}
	}()
	New([]*bitvec.BitVec{bitvec.New(3), bitvec.New(4)}, 15)
}

func TestSliceMatchesSlicedNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cols := randomCols(rng, 9, 64)
	full := New(cols, 4)
	for _, rng2 := range [][2]int{{0, 64}, {10, 30}, {0, 1}, {63, 64}, {20, 20}} {
		lo, hi := rng2[0], rng2[1]
		sliced := full.Slice(lo, hi)
		if sliced.Width() != hi-lo {
			t.Fatalf("sliced width = %d", sliced.Width())
		}
		scratch := bitvec.New(hi - lo)
		for trial := 0; trial < 200; trial++ {
			mask := rng.Uint64() & ((1 << 9) - 1)
			want := naiveSum(cols, 64, mask).Slice(lo, hi)
			got, pop := sliced.Sum(mask, scratch)
			if !got.Equal(want) {
				t.Fatalf("slice [%d,%d) mask %#x mismatch", lo, hi, mask)
			}
			if pop != want.OnesCount() {
				t.Fatalf("slice [%d,%d) mask %#x pop mismatch", lo, hi, mask)
			}
		}
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	c := New(randomCols(rand.New(rand.NewSource(5)), 3, 10), 15)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Slice(5, 11)
}

func TestQuickCacheEqualsNaiveAnyV(t *testing.T) {
	f := func(seed int64, rRaw, vRaw, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := int(rRaw%13) + 1
		v := int(vRaw%6) + 1
		width := int(wRaw%100) + 1
		cols := randomCols(rng, r, width)
		c := New(cols, v)
		scratch := bitvec.New(width)
		for trial := 0; trial < 20; trial++ {
			mask := rng.Uint64() & ((1 << uint(r)) - 1)
			got, pop := c.Sum(mask, scratch)
			want := naiveSum(cols, width, mask)
			if !got.Equal(want) || pop != want.OnesCount() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cols := randomCols(rng, 15, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = New(cols, 15)
	}
}

func BenchmarkSumSingleGroup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := New(randomCols(rng, 12, 256), 15)
	scratch := bitvec.New(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Sum(uint64(i)&0xfff, scratch)
	}
}

func BenchmarkSumMultiGroup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := New(randomCols(rng, 24, 256), 8)
	scratch := bitvec.New(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Sum(uint64(i)&0xffffff, scratch)
	}
}
