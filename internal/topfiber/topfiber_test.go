package topfiber

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"dbtf/internal/boolmat"
	"dbtf/internal/tensor"
)

func randomTensor(rng *rand.Rand, i, j, k int, density float64) *tensor.Tensor {
	var coords []tensor.Coord
	for a := 0; a < i; a++ {
		for b := 0; b < j; b++ {
			for c := 0; c < k; c++ {
				if rng.Float64() < density {
					coords = append(coords, tensor.Coord{I: a, J: b, K: c})
				}
			}
		}
	}
	return tensor.MustFromCoords(i, j, k, coords)
}

func TestSeedFactorsDeterministic(t *testing.T) {
	x := randomTensor(rand.New(rand.NewSource(1)), 14, 12, 10, 0.15)
	a1, b1, c1 := SeedFactors(x, 4)
	a2, b2, c2 := SeedFactors(x, 4)
	if !a1.Equal(a2) || !b1.Equal(b2) || !c1.Equal(c2) {
		t.Fatal("SeedFactors is not deterministic on identical input")
	}
}

func TestSeedFactorsRecoversSingleBlock(t *testing.T) {
	// A single dense block is a rank-1 tensor; the top fiber runs straight
	// through it and the majority vote recovers the full block, so the seed
	// alone already reconstructs x exactly.
	var coords []tensor.Coord
	for i := 3; i < 11; i++ {
		for j := 2; j < 9; j++ {
			for k := 5; k < 12; k++ {
				coords = append(coords, tensor.Coord{I: i, J: j, K: k})
			}
		}
	}
	x := tensor.MustFromCoords(16, 16, 16, coords)
	a, b, c := SeedFactors(x, 1)
	if err := tensor.ReconstructError(x, a, b, c); err != 0 {
		t.Fatalf("rank-1 block seed error %d, want 0", err)
	}
}

func TestSeedFactorsSpreadsAcrossBlocks(t *testing.T) {
	// Two disjoint blocks: the second component must not pile onto the
	// first (already covered) block but seed the other one.
	var coords []tensor.Coord
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			for k := 0; k < 5; k++ {
				coords = append(coords, tensor.Coord{I: i, J: j, K: k})
				coords = append(coords, tensor.Coord{I: i + 8, J: j + 8, K: k + 8})
			}
		}
	}
	x := tensor.MustFromCoords(16, 16, 16, coords)
	a, b, c := SeedFactors(x, 2)
	if err := tensor.ReconstructError(x, a, b, c); err != 0 {
		t.Fatalf("two disjoint blocks not both seeded: error %d, want 0", err)
	}
}

func TestSeedFactorsEmptyTensorAndExhaustedRank(t *testing.T) {
	a, b, c := SeedFactors(tensor.New(4, 4, 4), 3)
	if a.OnesCount() != 0 || b.OnesCount() != 0 || c.OnesCount() != 0 {
		t.Fatal("empty tensor must seed empty factors")
	}
	// More components than structures: the surplus components stay empty
	// instead of duplicating covered fibers.
	var coords []tensor.Coord
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				coords = append(coords, tensor.Coord{I: i, J: j, K: k})
			}
		}
	}
	x := tensor.MustFromCoords(8, 8, 8, coords)
	a, b, c = SeedFactors(x, 4)
	if err := tensor.ReconstructError(x, a, b, c); err != 0 {
		t.Fatalf("block not covered: error %d", err)
	}
	for r := 1; r < 4; r++ {
		if a.Column(r).Any() && b.Column(r).Any() && c.Column(r).Any() {
			t.Fatalf("component %d seeded although the block was already covered", r)
		}
	}
}

func TestFactorizeValidation(t *testing.T) {
	x := boolmat.NewMatrix(3, 3)
	if _, err := Factorize(context.Background(), x, 0); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, err := Factorize(context.Background(), x, 65); err == nil {
		t.Error("rank 65 accepted")
	}
	if _, err := Factorize(context.Background(), boolmat.NewMatrix(0, 3), 2); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestFactorizeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := boolmat.NewMatrix(4, 4)
	x.Set(1, 1, true)
	if _, err := Factorize(ctx, x, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFactorizeRecoversRowStructure(t *testing.T) {
	// Two distinct row patterns repeated across rows: rank 2 recovers the
	// matrix exactly, since both patterns are rows of x itself.
	x := boolmat.NewMatrix(8, 10)
	for i := 0; i < 8; i++ {
		for j := 0; j < 10; j++ {
			if (i%2 == 0 && j < 5) || (i%2 == 1 && j >= 5) {
				x.Set(i, j, true)
			}
		}
	}
	res, err := Factorize(context.Background(), x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 {
		t.Fatalf("two-pattern matrix not recovered: error %d", res.Error)
	}
}

func TestFactorizeErrorMatchesReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := boolmat.NewMatrix(12, 20)
	for i := 0; i < 12; i++ {
		for j := 0; j < 20; j++ {
			if rng.Float64() < 0.2 {
				x.Set(i, j, true)
			}
		}
	}
	res, err := Factorize(context.Background(), x, 4)
	if err != nil {
		t.Fatal(err)
	}
	rec := boolmat.MulFactor(res.U, res.S)
	if want := int64(x.XorCount(rec)); res.Error != want {
		t.Fatalf("reported error %d != recomputed %d", res.Error, want)
	}
	// The greedy only ever adds components with positive cover gain, so
	// the factorization cannot be worse than the trivial empty one.
	var ones int64
	for i := 0; i < 12; i++ {
		ones += int64(x.Row(i).OnesCount())
	}
	if res.Error > ones {
		t.Fatalf("error %d worse than trivial all-zero %d", res.Error, ones)
	}
}

func TestFactorizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := boolmat.NewMatrix(10, 16)
	for i := 0; i < 10; i++ {
		for j := 0; j < 16; j++ {
			if rng.Float64() < 0.25 {
				x.Set(i, j, true)
			}
		}
	}
	r1, err := Factorize(context.Background(), x, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Factorize(context.Background(), x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.U.Equal(r2.U) || r1.Error != r2.Error {
		t.Fatal("Factorize is not deterministic on identical input")
	}
}
