// Package topfiber implements the greedy top-fiber initialization scheme
// of topFiberM (Desouki et al., "topFiberM: Scalable and Efficient Boolean
// Matrix Factorization"), the near-linear replacement for the two quadratic
// initializers this repository started with:
//
//   - ASSO's m×m column-association matrix, which makes BCP_ALS drown in
//     O((JK)²) space and time on the unfolded tensors (DESIGN §2);
//   - DBTF's first iteration, which scores L random initial factor sets
//     that carry no information about the data.
//
// The idea is the same in both settings: the best rank-1 candidates are
// already sitting inside the data. Each round selects the fiber (a row of
// the matrix, or a mode-1 fiber of the tensor) covering the most
// still-uncovered ones, makes it the component's basis, and grows the
// component greedily by cover gain. Every round is one pass over the
// nonzeros plus one pass over the fiber index space — O(R·(nnz + fibers))
// total, against ASSO's O((JK)²) — and the scheme is fully deterministic:
// ties break toward the lowest index, so the same input always produces
// the same factors, independent of any seed, thread count, or transport.
//
// Coverage tests ride the repository's existing kernels: factor rows are
// uint64 masks (boolmat.FactorMatrix), so "is this cell inside an earlier
// component's block" is a single three-way AND of row masks, and the
// matrix path scores rows with bitvec popcount kernels.
package topfiber

import (
	"context"
	"fmt"

	"dbtf/internal/bitvec"
	"dbtf/internal/boolmat"
	"dbtf/internal/tensor"
)

// SeedFactors draws one data-aware set of initial factor matrices for a
// rank-R Boolean CP decomposition of x (DBTF's InitTopFiber scheme).
//
// Per component r it scores every mode-1 fiber (j, k) by the number of
// nonzeros x[:, j, k] not yet covered by components 0..r-1, selects the
// top fiber, sets a_:r to the fiber's indicator vector, and grows b_:r and
// c_:r by the same majority vote the fiber-sample scheme uses: an index
// joins the component when at least half of the a-members support it. When
// every remaining fiber is fully covered the remaining components stay
// empty — the alternating updates may still repopulate them.
//
// The result is deterministic in x and rank alone: ties break toward the
// lowest (j, k), no randomness is consumed, and one call allocates only
// the factor matrices plus three reusable score/vote arrays.
func SeedFactors(x *tensor.Tensor, rank int) (a, b, c *boolmat.FactorMatrix) {
	dimI, dimJ, dimK := x.Dims()
	a = boolmat.NewFactor(dimI, rank)
	b = boolmat.NewFactor(dimJ, rank)
	c = boolmat.NewFactor(dimK, rank)
	coords := x.Coords()
	if len(coords) == 0 {
		return a, b, c
	}
	// rowStart[i] indexes the first coordinate of mode-1 row i: the
	// coordinate list is sorted by (I, J, K), so each row is a contiguous
	// range and the vote pass walks only the member rows' slices.
	rowStart := make([]int, dimI+1)
	{
		r := 0
		for idx := range coords {
			for r <= coords[idx].I {
				rowStart[r] = idx
				r++
			}
		}
		for ; r <= dimI; r++ {
			rowStart[r] = len(coords)
		}
	}
	scores := make([]int32, dimJ*dimK)
	votesJ := make([]int32, dimJ)
	votesK := make([]int32, dimK)
	aIdx := make([]int, 0, dimI)
	for r := 0; r < rank; r++ {
		// Score pass: count, per mode-1 fiber, the nonzeros outside every
		// earlier component's block. Row masks hold only bits < r, so the
		// three-way AND tests all of them at once.
		for idx := range scores {
			scores[idx] = 0
		}
		for _, co := range coords {
			if a.RowMask(co.I)&b.RowMask(co.J)&c.RowMask(co.K) == 0 {
				scores[co.J*dimK+co.K]++
			}
		}
		best, bestScore := -1, int32(0)
		for f, s := range scores {
			if s > bestScore {
				best, bestScore = f, s
			}
		}
		if best < 0 {
			// Everything is covered: the greedy has nothing left to add.
			break
		}
		seedJ, seedK := best/dimK, best%dimK
		// a_:r is the winning fiber itself; b_:r and c_:r grow from it by
		// majority vote over the member rows' slices, turning the fiber
		// cross into a block estimate for the alternating updates to refine.
		aIdx = aIdx[:0]
		for ii := 0; ii < dimI; ii++ {
			if x.Get(ii, seedJ, seedK) {
				a.Set(ii, r, true)
				aIdx = append(aIdx, ii)
			}
		}
		quorum := int32(len(aIdx)+1) / 2
		if quorum < 1 {
			quorum = 1
		}
		for idx := range votesJ {
			votesJ[idx] = 0
		}
		for idx := range votesK {
			votesK[idx] = 0
		}
		for _, ii := range aIdx {
			for _, co := range coords[rowStart[ii]:rowStart[ii+1]] {
				if co.K == seedK {
					votesJ[co.J]++
				}
				if co.J == seedJ {
					votesK[co.K]++
				}
			}
		}
		for jj := 0; jj < dimJ; jj++ {
			if votesJ[jj] >= quorum {
				b.Set(jj, r, true)
			}
		}
		for kk := 0; kk < dimK; kk++ {
			if votesK[kk] >= quorum {
				c.Set(kk, r, true)
			}
		}
	}
	return a, b, c
}

// Result is a Boolean matrix factorization X ≈ U ∘ S.
type Result struct {
	// U is the n×R usage matrix.
	U *boolmat.FactorMatrix
	// S is the R×m basis matrix; row r is the selected top fiber.
	S *boolmat.Matrix
	// Error is |X ⊕ U ∘ S|.
	Error int64
}

// Factorize computes a rank-R Boolean factorization of x by greedy
// top-fiber selection — the drop-in replacement for asso.Factorize inside
// BCP_ALS's per-mode initialization.
//
// Each round selects the row of x with the most uncovered ones as the
// component's basis vector, then sets the usage bit of every row whose
// cover gain (newly covered ones minus newly covered zeros) is positive,
// exactly ASSO's greedy cover step — but the candidate pool is the n rows
// of x instead of a materialized m×m association matrix, so the whole
// factorization is O(R·n·m/64) bit-kernel work and never allocates
// anything quadratic. The context bounds the run; rounds check it.
func Factorize(ctx context.Context, x *boolmat.Matrix, rank int) (*Result, error) {
	if rank < 1 || rank > boolmat.MaxRank {
		return nil, fmt.Errorf("topfiber: rank %d outside [1,%d]", rank, boolmat.MaxRank)
	}
	n, m := x.Rows(), x.Cols()
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("topfiber: empty matrix %dx%d", n, m)
	}
	u := boolmat.NewFactor(n, rank)
	s := boolmat.NewMatrix(rank, m)
	covered := boolmat.NewMatrix(n, m)
	rowOnes := make([]int, n)
	for i := 0; i < n; i++ {
		rowOnes[i] = x.Row(i).OnesCount()
	}
	scratch := bitvec.New(m)
	for r := 0; r < rank; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Top fiber: the row with the most ones outside the cover so far.
		// |x_i ∧ ¬covered_i| = |x_i| − |x_i ∧ covered_i|, so the score is
		// one popcount kernel per row.
		best, bestScore := -1, 0
		for i := 0; i < n; i++ {
			if sc := rowOnes[i] - x.Row(i).AndCount(covered.Row(i)); sc > bestScore {
				best, bestScore = i, sc
			}
		}
		if best < 0 {
			break // every one is covered; remaining components stay empty
		}
		cand := x.Row(best)
		candPop := rowOnes[best]
		s.Row(r).Or(cand)
		// Usage: a row joins when the candidate covers more of its
		// uncovered ones than it spills onto its zeros (w⁺ = w⁻ = 1, the
		// same weights BCP_ALS uses with ASSO).
		for i := 0; i < n; i++ {
			xr, cr := x.Row(i), covered.Row(i)
			onesAll := cand.AndCount(xr)
			scratch.Zero()
			scratch.Or(cand)
			scratch.And(xr)
			onesOld := scratch.AndCount(cr)
			zeros := candPop - onesAll
			if (onesAll-onesOld)-zeros > 0 {
				u.Set(i, r, true)
				cr.Or(cand)
			}
		}
	}
	rec := boolmat.MulFactor(u, s)
	return &Result{U: u, S: s, Error: int64(x.XorCount(rec))}, nil
}
