// Package fixtures seeds the kernelcontract analyzer's true positives and
// accepted negatives. The file parses but is never compiled; the bitvec
// import resolves by path string only.
package fixtures

import (
	"fmt"

	"dbtf/internal/bitvec"
)

// badNoWidthCheck calls a word kernel on operands no check relates.
func badNoWidthCheck(a, b []uint64) int {
	return bitvec.AndCountWords(a, b) // want `call to bitvec\.AndCountWords without a visible operand-width check`
}

// goodLenCheck establishes the contract with a len comparison first.
func goodLenCheck(a, b []uint64) int {
	if len(a) != len(b) {
		panic("width mismatch")
	}
	return bitvec.XorCountWords(a, b)
}

type vec struct {
	n     int
	words []uint64
}

// goodFieldCheck uses the bitvec-internal .n idiom.
func goodFieldCheck(v, w *vec) int {
	if v.n != w.n {
		panic("length mismatch")
	}
	return bitvec.AndNotCountWords(v.words, w.words)
}

// goodAnnotated asserts a structural invariant the analyzer cannot see.
func goodAnnotated(row, w1, w0 []uint64) int {
	//dbtf:samewidth row stride equals the delta width by construction
	return bitvec.AndAndNotCountWords(row, w1, w0)
}

// badBareAnnotation has the assertion without a reason.
func badBareAnnotation(row, w1, w0 []uint64, occ [][]uint64) (int, int) {
	//dbtf:samewidth
	return bitvec.GainCountsWords(row, w1, w0, occ) // want `requires a reason`
}

// hotCount is allocation-free, as annotated; the panic path may format.
//
//dbtf:noalloc
func hotCount(a, b []uint64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mismatch %d != %d", len(a), len(b)))
	}
	c := 0
	for i, x := range a {
		c += int(x & b[i])
	}
	return c
}

// leakyCount claims noalloc but allocates four ways.
//
//dbtf:noalloc
func leakyCount(a []uint64) []uint64 {
	out := make([]uint64, 0, len(a)) // want `make in leakyCount`
	tmp := []uint64{1, 2}            // want `composite literal in leakyCount`
	out = append(out, tmp...)        // want `append in leakyCount`
	f := func() {}                   // want `function literal in leakyCount`
	f()
	return out
}

// unannotated may allocate freely.
func unannotated(n int) []uint64 {
	return make([]uint64, n)
}

// The parallel-kernel shape: a hot evaluation that fans its shards out
// through a prebuilt worker-pool closure. The closure and the shard split
// are built once at task-construction time; the noalloc body only stages
// state and makes method calls, which the analyzer accepts.

type pool struct{ threads int }

func (p *pool) Run(n int, fn func(int)) {
	for s := 0; s < n; s++ {
		fn(s)
	}
}

type shard struct{ lo, hi int }

type task struct {
	col      int
	deltas   []int64
	shards   []shard
	pool     *pool
	runShard func(int)
}

// goodParallelEval stages the column and hands the prebuilt closure to the
// pool — no allocation, no go statement, no fresh func literal.
//
//dbtf:noalloc
func goodParallelEval(t *task, c int) {
	if len(t.shards) == 1 {
		t.evalRows(c, &t.shards[0])
		return
	}
	t.col = c
	t.pool.Run(len(t.shards), t.runShard)
}

//dbtf:noalloc
func (t *task) evalRows(c int, sh *shard) {
	for r := sh.lo; r < sh.hi; r++ {
		t.deltas[r] = int64(c)
	}
}

// badParallelEval builds the shard closure inside the hot body and spawns
// bare goroutines per shard — both are per-column allocations.
//
//dbtf:noalloc
func badParallelEval(t *task, c int) {
	fn := func(s int) { t.evalRows(c, &t.shards[s]) } // want `function literal in badParallelEval`
	for s := range t.shards {
		go fn(s) // want `go statement in badParallelEval`
	}
}

// badShardSplit re-splits the row range on every evaluation instead of at
// build time.
//
//dbtf:noalloc
func badShardSplit(t *task, rows, n int) {
	t.shards = make([]shard, n) // want `make in badShardSplit`
	for s := range t.shards {
		t.shards[s] = shard{lo: rows * s / n, hi: rows * (s + 1) / n} // want `composite literal in badShardSplit`
	}
}
