// Package fixtures seeds the kernelcontract analyzer's true positives and
// accepted negatives. The file parses but is never compiled; the bitvec
// import resolves by path string only.
package fixtures

import (
	"fmt"

	"dbtf/internal/bitvec"
)

// badNoWidthCheck calls a word kernel on operands no check relates.
func badNoWidthCheck(a, b []uint64) int {
	return bitvec.AndCountWords(a, b) // want `call to bitvec\.AndCountWords without a visible operand-width check`
}

// goodLenCheck establishes the contract with a len comparison first.
func goodLenCheck(a, b []uint64) int {
	if len(a) != len(b) {
		panic("width mismatch")
	}
	return bitvec.XorCountWords(a, b)
}

type vec struct {
	n     int
	words []uint64
}

// goodFieldCheck uses the bitvec-internal .n idiom.
func goodFieldCheck(v, w *vec) int {
	if v.n != w.n {
		panic("length mismatch")
	}
	return bitvec.AndNotCountWords(v.words, w.words)
}

// goodAnnotated asserts a structural invariant the analyzer cannot see.
func goodAnnotated(row, w1, w0 []uint64) int {
	//dbtf:samewidth row stride equals the delta width by construction
	return bitvec.AndAndNotCountWords(row, w1, w0)
}

// badBareAnnotation has the assertion without a reason.
func badBareAnnotation(row, w1, w0 []uint64, occ [][]uint64) (int, int) {
	//dbtf:samewidth
	return bitvec.GainCountsWords(row, w1, w0, occ) // want `requires a reason`
}

// hotCount is allocation-free, as annotated; the panic path may format.
//
//dbtf:noalloc
func hotCount(a, b []uint64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mismatch %d != %d", len(a), len(b)))
	}
	c := 0
	for i, x := range a {
		c += int(x & b[i])
	}
	return c
}

// leakyCount claims noalloc but allocates four ways.
//
//dbtf:noalloc
func leakyCount(a []uint64) []uint64 {
	out := make([]uint64, 0, len(a)) // want `make in leakyCount`
	tmp := []uint64{1, 2}            // want `composite literal in leakyCount`
	out = append(out, tmp...)        // want `append in leakyCount`
	f := func() {}                   // want `function literal in leakyCount`
	f()
	return out
}

// unannotated may allocate freely.
func unannotated(n int) []uint64 {
	return make([]uint64, n)
}
