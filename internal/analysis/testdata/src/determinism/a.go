// Package fixtures seeds the determinism analyzer's true positives and
// accepted negatives. The file parses but is never compiled.
package fixtures

import (
	"math/rand"
	"time"
)

type engine struct {
	now     func() time.Time
	entries map[string]int
}

// badWallClock reads wall clocks three ways.
func badWallClock(e *engine) time.Duration {
	start := time.Now() // want `time\.Now reads the wall clock`
	_ = start
	time.Sleep(time.Millisecond)  // want `time\.Sleep reads the wall clock`
	return time.Since(time.Time{}) // want `time\.Since reads the wall clock`
}

// badClockValue references time.Now as a value, the injected-clock
// default pattern, without the annotation.
func badClockValue() *engine {
	return &engine{now: time.Now} // want `time\.Now reads the wall clock`
}

// goodClockValue carries the sanctioned annotation.
func goodClockValue() *engine {
	//dbtf:allow-nondeterministic default wall clock; tests inject a deterministic one
	return &engine{now: time.Now}
}

// badBareEscape has the escape hatch without a reason, which is itself a
// diagnostic.
func badBareEscape() time.Time {
	//dbtf:allow-nondeterministic
	return time.Now() // want `requires a reason`
}

// badGlobalRand draws from the process-global generator.
func badGlobalRand(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand\.Shuffle bypasses the seeded source`
	return rand.Intn(n)                // want `global math/rand\.Intn bypasses the seeded source`
}

// goodSeededRand goes through a seeded generator: rand.New and
// rand.NewSource are the sanctioned route and are not flagged.
func goodSeededRand(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// badMapRange iterates maps in order-sensitive positions.
func badMapRange(e *engine) int {
	total := 0
	for _, v := range e.entries { // want `map iteration order is nondeterministic`
		total += v
	}
	local := make(map[int]bool)
	for k := range local { // want `map iteration order is nondeterministic`
		total += k
	}
	lit := map[string]int{}
	for _, v := range lit { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

// goodMapRange is order-independent and says why.
func goodMapRange(e *engine) {
	//dbtf:allow-nondeterministic all matching keys are deleted; order-independent
	for k := range e.entries {
		delete(e.entries, k)
	}
}

// goodSliceRange ranges a slice, which is ordered and never flagged.
func goodSliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
