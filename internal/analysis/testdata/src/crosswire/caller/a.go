// Package caller invokes a decode entry point in another module-internal
// package; whether that package was audited is a cross-package question.
// The file parses but is never compiled.
package caller

import core "dbtf/internal/core"

func Parse(b []byte) error {
	_, err := core.DecodeHeader(b)
	return err
}
