// Package decoder is the audited home of the decode entry point caller
// uses. The file parses but is never compiled.
package decoder

func DecodeHeader(b []byte) (int, error) {
	if len(b) < 8 {
		return 0, nil
	}
	return 8, nil
}
