// Package right acquires its board lock, and one path calls back into
// left's locked Update — the other half of the cross-package cycle. The
// file parses but is never compiled.
package right

import "sync"

type Board struct{ mu sync.Mutex }

func Publish() {
	var b Board
	b.mu.Lock()
	defer b.mu.Unlock()
}

type updater interface{ Update() }

func Refresh(b *Board, r updater) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r.Update()
}
