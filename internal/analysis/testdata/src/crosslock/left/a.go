// Package left acquires its registry lock and, still holding it, calls
// into right — one half of a cycle neither package shows alone. The file
// parses but is never compiled.
package left

import (
	"sync"

	right "dbtf/internal/right"
)

type Registry struct{ mu sync.Mutex }

func (r *Registry) Update() {
	r.mu.Lock()
	defer r.mu.Unlock()
	right.Publish()
}
