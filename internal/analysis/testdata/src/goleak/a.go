// Package fixtures seeds the goleak analyzer's true positives and
// accepted negatives. The file parses but is never compiled.
package fixtures

import "sync"

// badFireAndForget launches with no join path at all.
func badFireAndForget() {
	go func() { // want `goroutine has no provable join`
		compute()
	}()
}

// badNamedNoJoin launches a resolvable named function that neither
// Dones a WaitGroup nor signals a channel.
func badNamedNoJoin() {
	go compute() // want `goroutine has no provable join`
}

// goodWaitGroup is the canonical Add-before-go / Done-in-body / Wait
// pairing.
func goodWaitGroup(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			compute()
		}()
	}
	wg.Wait()
}

// goodNamedMethod resolves the goroutine body through a named function
// declared in this file.
func goodNamedMethod(r *runner) {
	r.wg.Add(1)
	go r.loop()
	r.wg.Wait()
}

type runner struct {
	wg sync.WaitGroup
}

func (r *runner) loop() {
	defer r.wg.Done()
	compute()
}

// badAddAfterGo pairs Done but Adds too late: the Wait can return before
// the goroutine registers.
func badAddAfterGo() {
	var late sync.WaitGroup
	go func() { // want `goroutine has no provable join`
		defer late.Done()
		compute()
	}()
	late.Add(1)
	late.Wait()
}

// badNeverWaited pairs Add/Done correctly, but no function anywhere
// calls orphan.Wait() — the cross-package phase rejects the group.
func badNeverWaited() {
	var orphan sync.WaitGroup
	orphan.Add(1) // want `WaitGroup "orphan" has Add/Done pairs but no Wait`
	go func() {
		defer orphan.Done()
		compute()
	}()
}

// goodChannelJoin signals completion on a channel the launcher receives.
func goodChannelJoin() error {
	errc := make(chan error, 1)
	go func() {
		errc <- compute()
	}()
	return <-errc
}

// goodCloseJoin signals by closing; the launcher joins in a select.
func goodCloseJoin(cancel chan struct{}) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		compute()
	}()
	select {
	case <-done:
	case <-cancel:
	}
}

// goodDetached is intentionally unjoined, with its reason on record.
func goodDetached() {
	//dbtf:detached process-lifetime metrics loop, reaped at exit
	go func() {
		for {
			compute()
		}
	}()
}

// badBareDetached has the escape hatch without a reason.
func badBareDetached() {
	//dbtf:detached
	go func() { // want `requires a reason`
		compute()
	}()
}

func compute() error { return nil }
