// Package fixtures seeds the errcheck analyzer's true positives and
// accepted negatives. The file parses but is never compiled.
package fixtures

import "os"

// badDropAll drops every durable-path error.
func badDropAll(path string) {
	f, _ := os.Create(path)
	f.Sync()                        // want `result of Sync is discarded on the durable write path`
	f.Close()                       // want `result of Close is discarded on the durable write path`
	os.Rename(path, path+".bak")    // want `result of Rename is discarded on the durable write path`
	_ = os.Remove(path)             // want `result of Remove is discarded on the durable write path`
}

// goodChecked propagates every error.
func goodChecked(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path, path+".bak")
}

// goodBestEffortCleanup annotates the already-failing path.
func goodBestEffortCleanup(path string, f *os.File) error {
	//dbtf:allow-unchecked best-effort cleanup on an already-failing path
	f.Close()
	//dbtf:allow-unchecked best-effort cleanup on an already-failing path
	os.Remove(path)
	return nil
}

// badBareEscape has the escape hatch without a reason.
func badBareEscape(f *os.File) {
	//dbtf:allow-unchecked
	f.Close() // want `requires a reason`
}

// goodDeferredClose is the idiomatic read path and is exempt.
func goodDeferredClose(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return buf, err
}

// goodUnrelatedCall is not a durable-path operation.
func goodUnrelatedCall(xs []int) {
	process(xs)
}

func process([]int) {}
