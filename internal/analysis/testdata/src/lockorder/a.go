// Package fixtures seeds the lockorder analyzer's true positives and
// accepted negatives. The file parses but is never compiled.
package fixtures

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type G struct{ mu sync.Mutex }
type H struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }
type P struct{ mu sync.Mutex }
type Q struct{ mu sync.Mutex }

// badNestedAB and badNestedBA acquire the same two locks in opposite
// orders — the classic deadlock pair.
func badNestedAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle`
	defer b.mu.Unlock()
}

func badNestedBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
}

// badCallCycle acquires G then calls a helper that acquires H, while
// badCallCycleRev nests them directly the other way: the cycle only
// exists across the call graph, which the cross-package phase closes.
func badCallCycle(g *G) {
	g.mu.Lock()
	defer g.mu.Unlock()
	lockH() // want `lock-order cycle`
}

func lockH() {
	var h H
	h.mu.Lock()
	defer h.mu.Unlock()
}

func badCallCycleRev(g *G, h *H) {
	h.mu.Lock()
	defer h.mu.Unlock()
	g.mu.Lock()
	defer g.mu.Unlock()
}

// goodConsistentOrder nests P before Q on every path: no cycle, no
// finding.
func goodConsistentOrder(p *P, q *Q) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q.mu.Lock()
	defer q.mu.Unlock()
}

func goodConsistentOrderAgain(p *P, q *Q) {
	p.mu.Lock()
	q.mu.Lock()
	q.mu.Unlock()
	p.mu.Unlock()
}

// goodSequentialNotNested releases the first lock before taking the
// second; no edge, no cycle.
func goodSequentialNotNested(a *A, q *Q) {
	a.mu.Lock()
	a.mu.Unlock()
	q.mu.Lock()
	q.mu.Unlock()
}

// goodAnnotatedPair would cycle with goodAnnotatedPairRev, but the
// reversed acquisition is vouched benign (say, a tryLock protocol) so it
// contributes no edges.
func goodAnnotatedPair(d *D, e *E) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
}

func goodAnnotatedPairRev(d *D, e *E) {
	e.mu.Lock()
	defer e.mu.Unlock()
	//dbtf:lockorder acquisition guarded by a tryLock upstream; cannot deadlock
	d.mu.Lock()
	defer d.mu.Unlock()
}

// badBareEscape has the escape hatch without a reason.
func badBareEscape(f *F) {
	//dbtf:lockorder
	f.mu.Lock() // want `requires a reason`
	defer f.mu.Unlock()
}
