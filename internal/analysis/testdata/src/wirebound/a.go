// Package fixtures seeds the wirebound analyzer's true positives and
// accepted negatives. The file parses but is never compiled.
package fixtures

import (
	"encoding/binary"

	notaudited "dbtf/internal/notaudited"
)

const maxRows = 1 << 20

// badUncheckedMake allocates whatever the header says.
func badUncheckedMake(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	return make([]byte, n) // want `make sized by a wire-decoded value`
}

// badUncheckedCap hides the decoded size in the capacity.
func badUncheckedCap(b []byte) []int {
	n := binary.BigEndian.Uint64(b)
	return make([]int, 0, n) // want `make sized by a wire-decoded value`
}

// goodCheckedMake validates before allocating.
func goodCheckedMake(b []byte) ([]byte, bool) {
	n := binary.BigEndian.Uint32(b)
	if n > maxRows {
		return nil, false
	}
	return make([]byte, n), true
}

// badDerivedUnchecked launders the decoded value through arithmetic.
func badDerivedUnchecked(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	words := n * 8
	return make([]byte, words) // want `make sized by a wire-decoded value`
}

// goodDerivedChecked derives only from a checked value: the derived
// size is born checked.
func goodDerivedChecked(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	if n > maxRows {
		return nil
	}
	words := n * 8
	return make([]byte, words)
}

// badAppendLoop grows under a wire-controlled loop bound.
func badAppendLoop(b []byte) []uint64 {
	n := binary.BigEndian.Uint32(b)
	var out []uint64
	for i := uint32(0); i < n; i++ {
		out = append(out, 0) // want `append grows under a loop bounded by a wire-decoded value`
	}
	return out
}

// goodAppendLoopChecked bounds the count first; the loop condition then
// ranges over a checked value.
func goodAppendLoopChecked(b []byte) []uint64 {
	n := binary.BigEndian.Uint32(b)
	if n > maxRows {
		return nil
	}
	var out []uint64
	for i := uint32(0); i < n; i++ {
		out = append(out, 0)
	}
	return out
}

// badClosureSource reads through the decode-closure idiom; the closure's
// results are as wire-controlled as binary's.
func badClosureSource(br byteReader) []uint64 {
	read := func() (uint64, error) {
		return binary.ReadUvarint(br)
	}
	count, _ := read()
	return make([]uint64, count) // want `make sized by a wire-decoded value`
}

// goodIndexTaintChecked stores decoded values into a slice (tainting the
// slice) and checks an element before allocating from it.
func goodIndexTaintChecked(br byteReader) []byte {
	read := func() (uint64, error) {
		return binary.ReadUvarint(br)
	}
	dims := [3]uint64{}
	for i := 0; i < 3; i++ {
		v, _ := read()
		dims[i] = v
	}
	if dims[0] > maxRows {
		return nil
	}
	return make([]byte, dims[0])
}

// badIndexTaintUnchecked allocates straight from the tainted slice.
func badIndexTaintUnchecked(br byteReader) []byte {
	read := func() (uint64, error) {
		return binary.ReadUvarint(br)
	}
	dims := [3]uint64{}
	v, _ := read()
	dims[0] = v
	return make([]byte, dims[0]) // want `make sized by a wire-decoded value`
}

// goodAnnotated documents where the real bound lives.
func goodAnnotated(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	//dbtf:bounded caller validated n against the frame header in ReadFrame
	return make([]byte, n)
}

// badBareEscape has the escape hatch without a reason.
func badBareEscape(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	//dbtf:bounded
	return make([]byte, n) // want `requires a reason`
}

// goodUntainted sizes from trusted lengths, not the wire.
func goodUntainted(b []byte) []byte {
	return make([]byte, len(b))
}

// badUnauditedDecode calls a Decode entry point of a module-internal
// package wirebound never audits; the cross-package phase closes the
// escape.
func badUnauditedDecode(b []byte) {
	notaudited.DecodeBlob(b) // want `decode entry point outside wirebound's audited packages`
}

type byteReader interface{ ReadByte() (byte, error) }
