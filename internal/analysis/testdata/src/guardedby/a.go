// Package fixtures seeds the guardedby analyzer's true positives and
// accepted negatives. The file parses but is never compiled.
package fixtures

import "sync"

type counterSet struct {
	mu sync.Mutex
	// hits is the mutated hot counter.
	//dbtf:guardedby mu
	hits int64
	// misses shares the guard.
	//dbtf:guardedby mu
	misses int64
	// name is immutable after construction and deliberately unannotated.
	name string
}

// goodLocked locks before touching the fields.
func (c *counterSet) goodLocked() {
	c.mu.Lock()
	c.hits++
	c.misses++
	c.mu.Unlock()
}

// badUnlocked touches a guarded field with no lock in sight.
func (c *counterSet) badUnlocked() int64 {
	return c.hits // want `c\.hits is guarded by c\.mu, which is not visibly held here`
}

// badPartialLock locks the mutex only after the first access.
func (c *counterSet) badPartialLock() {
	c.misses++ // want `c\.misses is guarded by c\.mu`
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

// goodUnannotated reads the unannotated field freely.
func (c *counterSet) goodUnannotated() string { return c.name }

// mergeLocked follows the Locked-suffix convention: the caller holds mu.
func (c *counterSet) mergeLocked(other int64) {
	c.hits += other
}

// drain documents the held lock explicitly.
//
//dbtf:locks mu
func drain(c *counterSet) int64 {
	return c.hits + c.misses
}

// construct builds a fresh, unshared value; composite-literal fields are
// construction, not access, and the local is vouched by the scoped
// function-level escape.
//
//dbtf:allow-unguarded fresh: not yet shared with any other goroutine
func construct() *counterSet {
	fresh := &counterSet{name: "fresh"}
	fresh.hits = 1
	return fresh
}

// badScopedEscape shows the scope of the function-level escape: it vouches
// for one identifier only, so the other receiver is still checked.
//
//dbtf:allow-unguarded fresh: not yet shared
func badScopedEscape(shared *counterSet) {
	fresh := &counterSet{}
	fresh.hits = 1
	shared.hits = 2 // want `shared\.hits is guarded by shared\.mu`
}

// goodLineEscape suppresses a single access with a reason.
func goodLineEscape(c *counterSet) int64 {
	return c.hits //dbtf:allow-unguarded snapshot tolerates a stale read
}

// badBareLineEscape suppresses without a reason, which is itself flagged.
func badBareLineEscape(c *counterSet) int64 {
	//dbtf:allow-unguarded
	return c.misses // want `requires a reason`
}

// bump mutates under its own lock; callers may pass a guarded field's
// address into a method on the same receiver.
func (c *counterSet) bump(field *int64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// goodAddressToOwnMethod passes &c.hits to c's own method.
func (c *counterSet) goodAddressToOwnMethod() {
	c.bump(&c.hits)
}

type badAnnotation struct {
	//dbtf:guardedby lock
	value int // want `names no field of struct badAnnotation`
}
