// Package fixtures seeds the ctxflow analyzer's true positives and
// accepted negatives. The file parses but is never compiled.
package fixtures

import (
	"context"
	"net"
	"time"
)

// badBareReceive blocks on a channel with no cancellation path.
func badBareReceive(ctx context.Context, ch chan int) int {
	return <-ch // want `bare channel receive`
}

// badBareSend blocks on a send with no cancellation path.
func badBareSend(ctx context.Context, ch chan int) {
	ch <- 1 // want `bare channel send`
}

// badReceiveStmt blocks as a statement.
func badReceiveStmt(ctx context.Context, done chan struct{}) {
	<-done // want `bare channel receive`
}

// badSleep ignores cancellation for the whole sleep.
func badSleep(ctx context.Context) {
	time.Sleep(time.Second) // want `time.Sleep`
}

// badDial dials without the ctx-aware dialer.
func badDial(ctx context.Context, addr string) {
	net.Dial("tcp", addr) // want `ctx-aware dialer`
}

// badDeafSelect has no default and no Done case: every arm can block
// past cancellation.
func badDeafSelect(ctx context.Context, a, b chan int) {
	select { // want `no <-ctx.Done\(\) case and no default`
	case <-a:
	case <-b:
	}
}

// goodSelectDone observes cancellation.
func goodSelectDone(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// goodDerivedCtx selects on a derived context's Done.
func goodDerivedCtx(ctx context.Context, ch chan int) {
	dctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	select {
	case <-ch:
	case <-dctx.Done():
	}
}

// goodNonBlockingSelect cannot block: it has a default arm.
func goodNonBlockingSelect(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

// goodNoCtx makes no cancellation promise; bare receives are its
// caller's problem.
func goodNoCtx(ch chan int) int {
	return <-ch
}

// goodGoroutineExcluded launches a goroutine whose blocking does not
// block this cancellable caller (goleak owns its lifetime).
func goodGoroutineExcluded(ctx context.Context, ch chan int) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ch
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// badNestedCtxLit is a closure that makes its own context promise and
// breaks it.
func badNestedCtxLit(ch chan int) func(context.Context) {
	return func(ctx context.Context) {
		<-ch // want `bare channel receive`
	}
}

// goodAnnotated documents why the receive is safe.
func goodAnnotated(ctx context.Context, joined chan struct{}) {
	//dbtf:blocking joined goroutine selects on ctx and exits promptly
	<-joined
}

// badBareEscape has the escape hatch without a reason.
func badBareEscape(ctx context.Context, joined chan struct{}) {
	//dbtf:blocking
	<-joined // want `requires a reason`
}
