// Package launcher pairs Add/Done correctly but never Waits itself: the
// join lives in the waiter package, visible only to the cross-package
// phase. The file parses but is never compiled.
package launcher

import "sync"

type Pool struct{ tasks sync.WaitGroup }

func (p *Pool) Launch() {
	p.tasks.Add(1)
	go func() {
		defer p.tasks.Done()
	}()
}
