// Package waiter holds the join for launcher's goroutines. The file
// parses but is never compiled.
package waiter

import "sync"

type Pool struct{ tasks sync.WaitGroup }

func Drain(p *Pool) {
	p.tasks.Wait()
}
