package analysis

import (
	"testing"
)

// Each analyzer is exercised against its fixture package, which seeds
// true positives (want comments), accepted negatives (clean code that
// must stay silent), and the escape-hatch path including the
// reason-required rule.

func TestDeterminismFixture(t *testing.T)    { RunFixture(t, Determinism, "determinism") }
func TestGuardedByFixture(t *testing.T)      { RunFixture(t, GuardedBy, "guardedby") }
func TestKernelContractFixture(t *testing.T) { RunFixture(t, KernelContract, "kernelcontract") }
func TestErrCheckFixture(t *testing.T)       { RunFixture(t, ErrCheck, "errcheck") }
func TestGoLeakFixture(t *testing.T)         { RunFixture(t, GoLeak, "goleak") }
func TestLockOrderFixture(t *testing.T)      { RunFixture(t, LockOrder, "lockorder") }
func TestCtxFlowFixture(t *testing.T)        { RunFixture(t, CtxFlow, "ctxflow") }
func TestWireBoundFixture(t *testing.T)      { RunFixture(t, WireBound, "wirebound") }

func TestScopeMatching(t *testing.T) {
	a := &Analyzer{Name: "x", Scope: []string{"internal/cluster", "internal/core"}}
	for path, want := range map[string]bool{
		"internal/cluster":     true,
		"internal/cluster/sub": true,
		"internal/clusterette": false,
		"internal/core":        true,
		"internal/partition":   false,
		".":                    false,
	} {
		if got := a.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	unscoped := &Analyzer{Name: "y"}
	if !unscoped.AppliesTo("anything/at/all") {
		t.Error("unscoped analyzer must apply everywhere")
	}
}

func TestAnalyzersRegistry(t *testing.T) {
	all := Analyzers()
	if len(all) != 8 {
		t.Fatalf("suite has %d analyzers, want 8", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
