package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// This file is the suite's analysistest equivalent: fixture packages under
// testdata/src/<name> annotate the lines where an analyzer must report
// with
//
//	// want "regexp"
//
// comments (multiple quoted regexps allowed on one line, matched in any
// order), exactly like golang.org/x/tools/go/analysis/analysistest.
// Fixture files must parse but are never compiled, so they may freely
// model both true positives and accepted negatives.

// wantRE extracts the quoted regexps of a want comment.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one want entry: a diagnostic matching re must occur at
// (file, line).
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// TB is the subset of testing.TB the runner needs; it keeps this
// non-test file from importing the testing package.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunFixture loads testdata/src/<fixture> as one package, runs the
// analyzer over it (bypassing Scope), and checks the reported diagnostics
// against the fixture's want comments: every diagnostic must be expected
// and every expectation must fire.
func RunFixture(t TB, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	fset := token.NewFileSet()
	pkg, err := loadDir(fset, dir, dir, true)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
		return
	}
	if pkg == nil {
		t.Fatalf("fixture %s holds no Go files", dir)
		return
	}
	expects, err := collectExpectations(fset, dir)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", dir, err)
		return
	}
	diags, err := Run(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
		return
	}
	for _, d := range diags {
		if !consumeExpectation(expects, d) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// collectExpectations parses the want comments of every fixture file.
func collectExpectations(fset *token.FileSet, dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var expects []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				matches := wantRE.FindAllStringSubmatch(rest, -1)
				if len(matches) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment without a quoted regexp", path, line)
				}
				for _, m := range matches {
					text := m[1]
					if m[2] != "" {
						text = m[2]
					} else {
						text = strings.ReplaceAll(text, `\"`, `"`)
					}
					re, err := regexp.Compile(text)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", path, line, text, err)
					}
					expects = append(expects, &expectation{file: path, line: line, re: re})
				}
			}
		}
	}
	return expects, nil
}

// consumeExpectation marks the first unhit expectation matching d.
func consumeExpectation(expects []*expectation, d Diagnostic) bool {
	for _, e := range expects {
		if e.hit || e.line != d.Pos.Line || e.file != d.Pos.Filename {
			continue
		}
		if e.re.MatchString(d.Message) {
			e.hit = true
			return true
		}
	}
	return false
}
