package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// GuardedBy enforces //dbtf:guardedby field annotations: a struct field
// annotated
//
//	//dbtf:guardedby mu
//
// (where mu is a sibling mutex field) may only be read or written where
// the analyzer can see the named mutex held. An access through identifier
// x to an annotated field is accepted when one of these holds:
//
//   - a call x.mu.Lock() (or RLock) precedes the access in the same
//     function body — the analyzer checks textual precedence, not
//     dominance, which is exact for this codebase's lock-at-the-top style;
//   - the enclosing function's name ends in "Locked", the package's
//     convention for "caller holds the receiver's mutex";
//   - the enclosing function's doc carries //dbtf:locks <mu>;
//   - the access is the construction of a not-yet-shared value: field
//     values inside composite literals are not selector accesses and are
//     never flagged;
//   - the field's address is passed to a method on the same receiver
//     (x.m(&x.field, ...)): the mutation happens inside the annotated
//     type's own implementation, where this analyzer checks it;
//   - the statement or enclosing function carries
//     //dbtf:allow-unguarded [<ident>:] <reason> — the function-level form
//     optionally names the receiver identifier it vouches for, so a
//     function that legitimately owns one unshared value (a joined stage's
//     accounting, say) does not silence checks on other receivers.
//
// The analyzer resolves identifier-to-struct bindings syntactically from
// receivers, parameters, and locals declared or composite-constructed with
// an explicit type; accesses through other paths are not checked.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "enforces //dbtf:guardedby mutex annotations on struct fields",
	Run:  runGuardedBy,
}

const (
	guardedByName  = "guardedby"
	locksName      = "locks"
	allowUnguarded = "allow-unguarded"
)

// guardedStruct records one struct's annotated fields: field name → the
// sibling mutex field guarding it.
type guardedStruct struct {
	fields map[string]string
	all    map[string]bool // every field name, to validate mutex references
}

func runGuardedBy(pass *Pass) error {
	structs := collectGuardedStructs(pass)
	if len(structs) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGuardedFunc(pass, structs, fn)
		}
	}
	return nil
}

// collectGuardedStructs finds every struct with //dbtf:guardedby field
// annotations and validates that each named mutex is a sibling field.
func collectGuardedStructs(pass *Pass) map[string]*guardedStruct {
	structs := map[string]*guardedStruct{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			gs := &guardedStruct{fields: map[string]string{}, all: map[string]bool{}}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					gs.all[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				mu := fieldGuard(pass, field)
				if mu == "" {
					continue
				}
				if !gs.all[mu] {
					pass.Reportf(field.Pos(), "%s%s %s names no field of struct %s",
						DirectivePrefix, guardedByName, mu, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					gs.fields[name.Name] = mu
				}
			}
			if len(gs.fields) > 0 {
				structs[ts.Name.Name] = gs
			}
			return true
		})
	}
	return structs
}

// fieldGuard returns the mutex named by a field's //dbtf:guardedby
// annotation (in its doc or trailing comment), or "".
func fieldGuard(pass *Pass, field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		for _, d := range docDirectives(cg) {
			if d.name == guardedByName {
				if d.arg == "" {
					pass.Reportf(field.Pos(), "%s%s requires a mutex field name", DirectivePrefix, guardedByName)
					return ""
				}
				return d.arg
			}
		}
	}
	return ""
}

// funcAllowances holds a function's doc-level annotations.
type funcAllowances struct {
	locks   map[string]bool // mutex names the caller holds on entry
	allowed map[string]bool // receiver idents vouched unguarded ("" = all)
}

func parseFuncAllowances(pass *Pass, fn *ast.FuncDecl) funcAllowances {
	fa := funcAllowances{locks: map[string]bool{}, allowed: map[string]bool{}}
	for _, d := range docDirectives(fn.Doc) {
		switch d.name {
		case locksName:
			if d.arg == "" {
				pass.Reportf(d.pos, "%s%s requires a mutex field name", DirectivePrefix, locksName)
				continue
			}
			for _, mu := range strings.Fields(d.arg) {
				fa.locks[mu] = true
			}
		case allowUnguarded:
			scope, reason, hasScope := strings.Cut(d.arg, ":")
			if !hasScope {
				scope, reason = "", d.arg
			}
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(d.pos, "%s%s requires a reason", DirectivePrefix, allowUnguarded)
				continue
			}
			fa.allowed[strings.TrimSpace(scope)] = true
		}
	}
	return fa
}

// checkGuardedFunc verifies every annotated-field access in one function.
func checkGuardedFunc(pass *Pass, structs map[string]*guardedStruct, fn *ast.FuncDecl) {
	bindings := collectBindings(structs, fn)
	if len(bindings) == 0 {
		return
	}
	fa := parseFuncAllowances(pass, fn)
	lockedSuffix := strings.HasSuffix(fn.Name.Name, "Locked")
	locks := collectLockCalls(bindings, structs, fn)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		structName, bound := bindings[id.Name]
		if !bound {
			return true
		}
		mu, guarded := structs[structName].fields[sel.Sel.Name]
		if !guarded {
			return true
		}
		switch {
		case lockedSuffix, fa.locks[mu]:
		case fa.allowed[""], fa.allowed[id.Name]:
		case lockHeldBefore(locks, id.Name, mu, sel.Pos()):
		case addressPassedToOwnMethod(fn, sel, id.Name):
		case pass.Allowed(sel.Pos(), allowUnguarded):
		default:
			pass.Reportf(sel.Pos(), "%s.%s is guarded by %s.%s, which is not visibly held here (lock it first, suffix the function with Locked, or annotate %s%s <reason>)",
				id.Name, sel.Sel.Name, id.Name, mu, DirectivePrefix, allowUnguarded)
		}
		return true
	})
}

// collectBindings maps identifier names to guarded struct types, resolved
// from the receiver, parameters, and locals with syntactically evident
// types (`var x T`, `x := T{...}`, `x := &T{...}`).
func collectBindings(structs map[string]*guardedStruct, fn *ast.FuncDecl) map[string]string {
	bindings := map[string]string{}
	bind := func(names []*ast.Ident, typ ast.Expr) {
		name := structTypeName(typ)
		if _, ok := structs[name]; !ok {
			return
		}
		for _, id := range names {
			bindings[id.Name] = name
		}
	}
	if fn.Recv != nil {
		for _, field := range fn.Recv.List {
			bind(field.Names, field.Type)
		}
	}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			bind(field.Names, field.Type)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if n.Type != nil {
				bind(n.Names, n.Type)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if lit := compositeLitOf(rhs); lit != nil {
					bind([]*ast.Ident{id}, lit.Type)
				}
			}
		}
		return true
	})
	return bindings
}

// structTypeName unwraps T or *T to the named type's identifier.
func structTypeName(typ ast.Expr) string {
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// compositeLitOf unwraps x or &x to a composite literal.
func compositeLitOf(e ast.Expr) *ast.CompositeLit {
	if un, ok := e.(*ast.UnaryExpr); ok && un.Op == token.AND {
		e = un.X
	}
	lit, _ := e.(*ast.CompositeLit)
	return lit
}

// lockCall records one x.mu.Lock() call site.
type lockCall struct {
	ident, mu string
	pos       token.Pos
}

// collectLockCalls finds every x.<mu>.Lock()/RLock() where x is bound to a
// guarded struct and <mu> guards at least one of its fields.
func collectLockCalls(bindings map[string]string, structs map[string]*guardedStruct, fn *ast.FuncDecl) []lockCall {
	var locks []lockCall
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (method.Sel.Name != "Lock" && method.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := method.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := muSel.X.(*ast.Ident)
		if !ok {
			return true
		}
		structName, bound := bindings[id.Name]
		if !bound || !structs[structName].all[muSel.Sel.Name] {
			return true
		}
		locks = append(locks, lockCall{ident: id.Name, mu: muSel.Sel.Name, pos: call.Pos()})
		return true
	})
	return locks
}

func lockHeldBefore(locks []lockCall, ident, mu string, pos token.Pos) bool {
	for _, l := range locks {
		if l.ident == ident && l.mu == mu && l.pos < pos {
			return true
		}
	}
	return false
}

// addressPassedToOwnMethod reports whether sel occurs as &x.field in the
// arguments of a method call on the same x — the pattern
// x.bump(&x.counter), where the locked mutation lives inside the struct's
// own (checked) method.
func addressPassedToOwnMethod(fn *ast.FuncDecl, sel *ast.SelectorExpr, ident string) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := method.X.(*ast.Ident)
		if !ok || recv.Name != ident {
			return true
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if ok && un.Op == token.AND && un.X == sel {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
