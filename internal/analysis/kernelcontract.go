package analysis

import (
	"go/ast"
	"go/token"
)

// KernelContract machine-checks the two contracts of the raw word-slice
// kernels in internal/bitvec, which the hot paths rely on but the type
// system cannot express.
//
// Word-width contract: every call to a bitvec *Words kernel
// (AndCountWords, GainCountsWords, ...) indexes its later operands by the
// first operand's length, so all operands must have the same word count.
// A call is accepted when the enclosing function visibly establishes the
// contract before the call — a comparison of len(...) expressions or of
// the bitvec `.n` length fields (the package's internal idiom) — or when
// the call carries //dbtf:samewidth <reason>, asserting a structural
// invariant the analyzer cannot see (e.g. "block stride equals the cache's
// entry width by construction"). Precedence is textual, not dominating;
// exact for the guard-at-the-top style used here.
//
// Allocation contract: a function whose doc carries //dbtf:noalloc must
// not contain allocating constructs in its own body: make, new, append,
// composite literals, function literals, go/defer statements, or
// conversions to []byte/[]rune/string. Constructs inside the arguments of
// a panic(...) call are exempt — panic paths are cold and allowed to
// format. The check is intraprocedural: callees are checked where they are
// declared, not at the call site.
var KernelContract = &Analyzer{
	Name: "kernelcontract",
	Doc:  "checks word-width preconditions at bitvec word-kernel call sites and //dbtf:noalloc function bodies",
	Run:  runKernelContract,
}

const (
	sameWidth  = "samewidth"
	noAllocDir = "noalloc"
)

// wordKernels are the internal/bitvec functions operating on raw []uint64
// operands that must share one word count.
var wordKernels = map[string]bool{
	"AndCountWords":       true,
	"AndNotCountWords":    true,
	"AndAndNotCountWords": true,
	"XorCountWords":       true,
	"GainCountsWords":     true,
}

const bitvecImportPath = "dbtf/internal/bitvec"

func runKernelContract(pass *Pass) error {
	for _, f := range pass.Files {
		// The kernels may be called qualified (bitvec.XorCountWords) or,
		// inside the bitvec package itself, unqualified.
		bitvecName := ""
		for name, path := range fileImports(f) {
			if path == bitvecImportPath {
				bitvecName = name
			}
		}
		inBitvec := f.Name.Name == "bitvec"
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if bitvecName != "" || inBitvec {
				checkWordKernelCalls(pass, fn, bitvecName, inBitvec)
			}
			if _, ok := funcDirective(fn, noAllocDir); ok {
				checkNoAlloc(pass, fn)
			}
		}
	}
	return nil
}

// funcDirective finds a //dbtf:<name> directive in a function's doc.
func funcDirective(fn *ast.FuncDecl, name string) (string, bool) {
	for _, d := range docDirectives(fn.Doc) {
		if d.name == name {
			return d.arg, true
		}
	}
	return "", false
}

// checkWordKernelCalls flags word-kernel calls not dominated by a visible
// width check.
func checkWordKernelCalls(pass *Pass, fn *ast.FuncDecl, bitvecName string, inBitvec bool) {
	checks := collectWidthChecks(fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var kernel string
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == bitvecName && wordKernels[fun.Sel.Name] {
				kernel = fun.Sel.Name
			}
		case *ast.Ident:
			if inBitvec && wordKernels[fun.Name] {
				kernel = fun.Name
			}
		}
		if kernel == "" {
			return true
		}
		if widthCheckBefore(checks, call.Pos()) || pass.Allowed(call.Pos(), sameWidth) {
			return true
		}
		pass.Reportf(call.Pos(), "call to bitvec.%s without a visible operand-width check; compare len(...) (or .n) of the operands first, or annotate %s%s <reason>",
			kernel, DirectivePrefix, sameWidth)
		return true
	})
}

// collectWidthChecks finds the positions of length-equality comparisons: a
// ==/!= (or ordered) comparison whose operands are both len(...) calls or
// both selector expressions of a field named n (bitvec's length field).
func collectWidthChecks(fn *ast.FuncDecl) []token.Pos {
	var checks []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		if (isLenCall(be.X) && isLenCall(be.Y)) || (isLenField(be.X) && isLenField(be.Y)) {
			checks = append(checks, be.Pos())
		}
		return true
	})
	return checks
}

func isLenCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "len"
}

func isLenField(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "n"
}

func widthCheckBefore(checks []token.Pos, pos token.Pos) bool {
	for _, c := range checks {
		if c < pos {
			return true
		}
	}
	return false
}

// checkNoAlloc flags allocating constructs in a //dbtf:noalloc body.
func checkNoAlloc(pass *Pass, fn *ast.FuncDecl) {
	panicArgs := collectPanicArgRanges(fn)
	exempt := func(pos token.Pos) bool {
		for _, r := range panicArgs {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, what string) {
		if !exempt(pos) {
			pass.Reportf(pos, "%s in %s, which is annotated %s%s", what, fn.Name.Name, DirectivePrefix, noAllocDir)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				switch fun.Name {
				case "make", "new", "append":
					report(n.Pos(), fun.Name)
				}
			case *ast.ArrayType:
				report(n.Pos(), "slice conversion")
			}
		case *ast.CompositeLit:
			report(n.Pos(), "composite literal")
		case *ast.FuncLit:
			report(n.Pos(), "function literal")
			return false // the literal's own body is a different function
		case *ast.GoStmt:
			report(n.Pos(), "go statement")
		case *ast.DeferStmt:
			report(n.Pos(), "defer statement")
		}
		return true
	})
}

// collectPanicArgRanges returns the position ranges of panic(...) argument
// lists, whose contents the noalloc check exempts.
func collectPanicArgRanges(fn *ast.FuncDecl) [][2]token.Pos {
	var ranges [][2]token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			ranges = append(ranges, [2]token.Pos{call.Lparen, call.Rparen + 1})
		}
		return true
	})
	return ranges
}
