package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// LockOrder builds the repo-wide lock-acquisition graph and reports any
// cycle: if one code path acquires A then B while another acquires B then
// A, the two can deadlock, and no test is guaranteed to catch it.
//
// Lock identities come from the //dbtf:guardedby vocabulary: a lock is a
// struct field acquired as x.<mu>.Lock()/RLock() where x is bound to a
// struct declared in the package (guardedby's binding rules), identified
// globally as <pkg>.<Struct>.<mu>. The local phase walks each function
// body in statement order, tracking the held set — Lock adds, Unlock
// removes, deferred Unlocks hold to function end — and exports facts:
// direct held→acquired edges, plus the set of locks each function
// acquires and the calls it makes while holding a lock. The cross phase
// closes acquisition over the call graph (a call made holding A to a
// function that eventually acquires B contributes A→B), then reports
// every cycle once, anchored at an edge inside it.
//
// Approximations, documented so findings can be read with the right
// trust: func literal bodies are skipped (they usually run on another
// goroutine, where the launcher's held set does not apply); calls are
// resolved by bare name within the analyzed packages (method sets are
// not distinguished), which over-approximates the call graph — safe for
// cycle *detection*, and the module's method names are distinct enough
// in practice; held-set tracking is textual, not path-sensitive.
// An acquisition annotated //dbtf:lockorder <reason> contributes no
// edges — the escape hatch for a cycle that is provably benign (e.g.
// ordered by a tryLock or a documented external protocol).
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "detects lock-acquisition cycles across packages via guardedby lock identities",
	Run:       runLockOrder,
	FactTypes: []Fact{(*lockSummaryFact)(nil)},
	CrossPackage: func(cp *CrossPass) error {
		return crossLockOrder(cp)
	},
	Escape: lockorderName,
}

const lockorderName = "lockorder"

// lockEdge is one direct held→acquired observation.
type lockEdge struct {
	From, To string
	Pos      token.Pos
}

// heldCall is a call made while holding locks; the cross phase expands
// the callee's transitive acquisitions into edges.
type heldCall struct {
	Held   []string
	Callee string // bare function/method name
	Pos    token.Pos
}

// lockSummaryFact is one function's contribution to the global graph.
type lockSummaryFact struct {
	Func     string // bare name, for callee resolution
	Acquires []string
	Edges    []lockEdge
	Calls    []heldCall
}

func (*lockSummaryFact) AFact() {}

func runLockOrder(pass *Pass) error {
	structs := collectMutexStructs(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if sum := summarizeLocks(pass, structs, fn); sum != nil {
				pass.exportIfSuite(sum)
			}
		}
	}
	return nil
}

// collectMutexStructs maps struct name → its full field-name set, so lock
// identities can be formed for any x.field.Lock() on a bound receiver.
func collectMutexStructs(pass *Pass) map[string]*guardedStruct {
	structs := map[string]*guardedStruct{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			gs := &guardedStruct{fields: map[string]string{}, all: map[string]bool{}}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					gs.all[name.Name] = true
				}
			}
			structs[ts.Name.Name] = gs
			return true
		})
	}
	return structs
}

// summarizeLocks walks one function body in source order, maintaining the
// held lock set, and returns its summary fact (nil when the function
// neither locks nor calls anything while locked).
func summarizeLocks(pass *Pass, structs map[string]*guardedStruct, fn *ast.FuncDecl) *lockSummaryFact {
	bindings := collectBindings(structs, fn)
	sum := &lockSummaryFact{Func: fn.Name.Name}
	var held []string
	drop := func(id string) {
		for i, h := range held {
			if h == id {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	ast.Inspect(fn.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			// Runs on its own goroutine more often than not; the
			// launcher's held set does not transfer.
			return false
		case *ast.DeferStmt:
			// A deferred Unlock releases at return, after everything this
			// walk sees — so it never shrinks the held set.
			return false
		case *ast.CallExpr:
			id, method, ok := lockIdentity(bindings, structs, pass.Path, m)
			if ok {
				switch {
				case method == "Lock" || method == "RLock":
					if pass.Allowed(m.Pos(), lockorderName) {
						return false
					}
					for _, h := range held {
						if h != id {
							sum.Edges = append(sum.Edges, lockEdge{From: h, To: id, Pos: m.Pos()})
						}
					}
					sum.Acquires = append(sum.Acquires, id)
					held = append(held, id)
				case isUnlockName(method):
					drop(id)
				}
				return false
			}
			if len(held) > 0 {
				if callee := calleeName(m); callee != "" {
					sum.Calls = append(sum.Calls, heldCall{Held: append([]string(nil), held...), Callee: callee, Pos: m.Pos()})
				}
			}
		}
		return true
	})
	if len(sum.Acquires) == 0 && len(sum.Calls) == 0 {
		return nil
	}
	return sum
}

func isUnlockName(m string) bool { return m == "Unlock" || m == "RUnlock" }

// lockIdentity resolves a call x.<mu>.<M>() to a global lock identity
// <pkg>.<Struct>.<mu> when x is bound to a package-local struct and M is
// a mutex method name. ok is false for every other call.
func lockIdentity(bindings map[string]string, structs map[string]*guardedStruct, pkg string, call *ast.CallExpr) (id, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	method = sel.Sel.Name
	if method != "Lock" && method != "RLock" && !isUnlockName(method) {
		return "", "", false
	}
	muSel, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	recv, isIdent := muSel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	structName, bound := bindings[recv.Name]
	if !bound || !structs[structName].all[muSel.Sel.Name] {
		return "", "", false
	}
	return fmt.Sprintf("%s.%s.%s", pkg, structName, muSel.Sel.Name), method, true
}

// calleeName extracts a bare callee name for call-graph closure: f(...)
// or x.f(...) both yield "f". Builtins and conversions yield "".
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make", "len", "cap", "append", "copy", "close", "delete", "new", "panic", "recover", "print", "println", "min", "max", "clear",
			"int", "int8", "int16", "int32", "int64", "uint", "uint8", "uint16", "uint32", "uint64", "uintptr", "float32", "float64", "string", "byte", "rune", "bool", "error", "any":
			return ""
		}
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// crossLockOrder closes acquisition over the call graph, builds the
// global edge set, and reports each lock cycle once.
func crossLockOrder(cp *CrossPass) error {
	// Group summaries by bare function name; multiple functions sharing a
	// name merge, over-approximating the call graph (safe for detection).
	acquires := map[string]map[string]bool{}
	var sums []*lockSummaryFact
	for _, pf := range cp.Facts {
		sum, ok := pf.Fact.(*lockSummaryFact)
		if !ok {
			continue
		}
		sums = append(sums, sum)
		set := acquires[sum.Func]
		if set == nil {
			set = map[string]bool{}
			acquires[sum.Func] = set
		}
		for _, a := range sum.Acquires {
			set[a] = true
		}
	}
	// Fixpoint: fold each callee's acquisitions into its callers until
	// nothing changes (the graph is small; O(n²) rounds are fine).
	for changed := true; changed; {
		changed = false
		for _, sum := range sums {
			set := acquires[sum.Func]
			for _, call := range sum.Calls {
				for a := range acquires[call.Callee] {
					if !set[a] {
						set[a] = true
						changed = true
					}
				}
			}
		}
	}
	edges := map[string]map[string]token.Pos{}
	addEdge := func(from, to string, pos token.Pos) {
		if from == to {
			return
		}
		if edges[from] == nil {
			edges[from] = map[string]token.Pos{}
		}
		if _, ok := edges[from][to]; !ok {
			edges[from][to] = pos
		}
	}
	for _, sum := range sums {
		for _, e := range sum.Edges {
			addEdge(e.From, e.To, e.Pos)
		}
		for _, call := range sum.Calls {
			for a := range acquires[call.Callee] {
				for _, h := range call.Held {
					addEdge(h, a, call.Pos)
				}
			}
		}
	}
	reportLockCycles(cp, edges)
	return nil
}

// reportLockCycles finds strongly-connected components with an internal
// edge and reports one diagnostic per cycle, with the member locks named
// in sorted order so output is deterministic.
func reportLockCycles(cp *CrossPass, edges map[string]map[string]token.Pos) {
	nodes := make([]string, 0, len(edges))
	seen := map[string]bool{}
	for from, tos := range edges {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)
	// Tarjan would be idiomatic; with a handful of locks, reachability
	// pairs are simpler and obviously correct: a cycle exists through
	// (a, b), a < b, when a reaches b and b reaches a.
	reaches := func(from, to string) bool {
		stack := []string{from}
		visited := map[string]bool{}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[n] {
				continue
			}
			visited[n] = true
			for next := range edges[n] {
				if next == to {
					return true
				}
				stack = append(stack, next)
			}
		}
		return false
	}
	reported := map[string]bool{}
	for _, a := range nodes {
		for _, b := range nodes {
			if a >= b || !reaches(a, b) || !reaches(b, a) {
				continue
			}
			key := a + "↔" + b
			if reported[key] {
				continue
			}
			reported[key] = true
			pos := edges[a][b]
			if pos == token.NoPos {
				for _, to := range sortedKeys(edges[a]) {
					if p := edges[a][to]; p != token.NoPos {
						pos = p
						break
					}
				}
			}
			cp.Reportf(pos, "lock-order cycle: %s and %s are each acquired while the other is held (deadlock risk); pick one order or annotate the benign acquisition with %s%s <reason>",
				a, b, DirectivePrefix, lockorderName)
		}
	}
}

func sortedKeys(m map[string]token.Pos) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
