package analysis

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// These tests exercise the part of the facts mechanism the single-package
// fixtures cannot: a finding whose evidence lives in one package and
// whose resolution lives in another, visible only to RunSuite's
// cross-package phase.

// loadAs loads one fixture directory as a package with a chosen
// module-relative path, so Scope and fact aggregation see realistic
// paths.
func loadAs(t *testing.T, fset *token.FileSet, dir, path string) *Package {
	t.Helper()
	pkg, err := loadDir(fset, dir, dir, true)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s holds no Go files", dir)
	}
	pkg.Path = path
	return pkg
}

func TestGoLeakCrossPackageWait(t *testing.T) {
	fset := token.NewFileSet()
	launcher := loadAs(t, fset, filepath.Join("testdata", "src", "crossgoleak", "launcher"), "internal/launcher")
	waiter := loadAs(t, fset, filepath.Join("testdata", "src", "crossgoleak", "waiter"), "internal/waiter")

	// With the waiting package present, the Add/Done pairing resolves.
	diags, err := RunSuite([]*Analyzer{GoLeak}, []*Package{launcher, waiter})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic with waiter present: %s", d)
	}

	// Without it, no package ever Waits and the cross phase reports the
	// orphaned group at its Add site.
	diags, err = RunSuite([]*Analyzer{GoLeak}, []*Package{launcher})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "no Wait anywhere") {
		t.Fatalf("want exactly one no-Wait diagnostic, got %v", diags)
	}
}

func TestWireBoundCrossPackageAudit(t *testing.T) {
	fset := token.NewFileSet()
	caller := loadAs(t, fset, filepath.Join("testdata", "src", "crosswire", "caller"), "internal/serve")
	decoder := loadAs(t, fset, filepath.Join("testdata", "src", "crosswire", "decoder"), "internal/core")

	// The callee package is inside wirebound's scope, so it carries an
	// audited fact and the cross-package call is fine.
	diags, err := RunSuite([]*Analyzer{WireBound}, []*Package{caller, decoder})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic with decoder audited: %s", d)
	}

	// Drop the callee from the load (as if the decode entry point moved
	// to an unscoped package) and the audit closure breaks.
	diags, err = RunSuite([]*Analyzer{WireBound}, []*Package{caller})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "outside wirebound's audited packages") {
		t.Fatalf("want exactly one audit-closure diagnostic, got %v", diags)
	}
}

func TestLockOrderCrossPackageCycle(t *testing.T) {
	fset := token.NewFileSet()
	left := loadAs(t, fset, filepath.Join("testdata", "src", "crosslock", "left"), "internal/left")
	right := loadAs(t, fset, filepath.Join("testdata", "src", "crosslock", "right"), "internal/right")

	// Each package alone has a consistent order.
	for _, pkg := range []*Package{left, right} {
		diags, err := RunSuite([]*Analyzer{LockOrder}, []*Package{pkg})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("unexpected diagnostic for %s alone: %s", pkg.Path, d)
		}
	}

	// Together, left's held call into right's locker closes a cycle no
	// per-package analysis can see.
	diags, err := RunSuite([]*Analyzer{LockOrder}, []*Package{left, right})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "lock-order cycle") {
		t.Fatalf("want exactly one cross-package cycle diagnostic, got %v", diags)
	}
}
