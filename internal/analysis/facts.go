package analysis

import (
	"fmt"
	"go/token"
)

// This file is the suite's facts mechanism: the currency through which
// per-package analysis composes into whole-program checks. It mirrors the
// fact half of golang.org/x/tools/go/analysis — analyzers export typed
// facts while walking one package, a driver aggregates them, and a second
// phase sees every package's facts at once — close enough that a rebase
// onto the real framework would turn ExportPackageFact into the x/tools
// method of the same name and CrossPackage into a fact-consuming analyzer
// that depends on the exporters.
//
// The deliberate deviation: x/tools feeds facts along the import graph
// (an analyzer sees only its dependencies' facts), while this driver runs
// a separate cross-package phase over the facts of *every* analyzed
// package. The suite's whole-program checks — lock-order cycles, "is this
// WaitGroup ever waited on", "does every decode entry point stay inside
// the audited set" — are global properties with no useful import-order
// factoring, and the module is small enough that global aggregation is
// cheap.

// A Fact is a typed datum one package's analysis exports for the
// cross-package phase. The marker method mirrors x/tools; fact types are
// declared next to the analyzer that exports them and listed in its
// FactTypes.
type Fact interface {
	AFact()
}

// A PackageFact pairs an exported fact with the module-relative path of
// the package that exported it.
type PackageFact struct {
	Path string
	Fact Fact
}

// ExportPackageFact records a fact against the pass's package for the
// analyzer's cross-package phase.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.facts == nil {
		panic("analysis: ExportPackageFact outside a suite run")
	}
	*p.facts = append(*p.facts, PackageFact{Path: p.Path, Fact: f})
}

// A CrossPass hands an analyzer's cross-package phase the facts every
// analyzed package exported, plus a reporter. Positions inside facts are
// token.Pos values from the shared FileSet of the load, so diagnostics
// anchor to real source lines.
type CrossPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Facts are the analyzer's exported facts across all analyzed
	// packages, in package-path order.
	Facts []PackageFact

	diags *[]Diagnostic
}

// Reportf records a cross-package diagnostic at pos.
func (cp *CrossPass) Reportf(pos token.Pos, format string, args ...any) {
	*cp.diags = append(*cp.diags, Diagnostic{
		Pos:      cp.Fset.Position(pos),
		Analyzer: cp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PackageHasFacts reports whether the package at path exported any fact
// during the local phase — i.e. whether the analyzer ran there at all.
// Analyzers that must reason about coverage (wirebound's decode-closure
// check) use this to distinguish "analyzed and clean" from "never
// looked".
func (cp *CrossPass) PackageHasFacts(path string) bool {
	for _, pf := range cp.Facts {
		if pf.Path == path {
			return true
		}
	}
	return false
}

// RunSuite executes the full two-phase protocol over the loaded packages:
// every analyzer's local Run over each package its Scope admits
// (collecting diagnostics and facts), then each analyzer's CrossPackage
// phase over the aggregated facts. Diagnostics come back sorted by
// position.
func RunSuite(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	var fset *token.FileSet
	factsByAnalyzer := map[string][]PackageFact{}
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			fset = pkg.Fset
			d, facts, err := runLocal(a, pkg)
			if err != nil {
				return nil, err
			}
			diags = append(diags, d...)
			factsByAnalyzer[a.Name] = append(factsByAnalyzer[a.Name], facts...)
		}
	}
	for _, a := range analyzers {
		if a.CrossPackage == nil {
			continue
		}
		cp := &CrossPass{
			Analyzer: a,
			Fset:     fset,
			Facts:    factsByAnalyzer[a.Name],
			diags:    &diags,
		}
		if err := a.CrossPackage(cp); err != nil {
			return nil, fmt.Errorf("analysis: %s cross-package phase: %w", a.Name, err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// runLocal executes one analyzer's local phase over one package.
func runLocal(a *Analyzer, pkg *Package) ([]Diagnostic, []PackageFact, error) {
	var diags []Diagnostic
	var facts []PackageFact
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Path:     pkg.Path,
		diags:    &diags,
		facts:    &facts,
	}
	if err := a.Run(pass); err != nil {
		return nil, nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
	}
	return diags, facts, nil
}
