package analysis

import (
	"go/ast"
	"go/token"
)

// Determinism enforces the replay invariant of the engine packages:
// checkpoint/resume and the seeded chaos schedule are bit-identical per
// seed only while no code in the decomposition path reads wall clocks,
// draws from the global (unseeded) math/rand generator, or iterates a map
// in an order-sensitive position.
//
//   - time.Now / time.Since / time.Until and friends are flagged; the
//     sanctioned route is the injected clock (cluster.now) or, for
//     wall-clock *reporting* that never feeds back into results, an
//     explicit //dbtf:allow-nondeterministic <reason> annotation.
//   - Global math/rand functions (rand.Intn, rand.Shuffle, ...) are
//     flagged; rand.New/rand.NewSource over the seeded countingSource are
//     the sanctioned route and are not flagged.
//   - Ranging over a map is flagged when the ranged expression is
//     syntactically recognizable as a map: a local declared or made as a
//     map, or a selector whose field is declared as a map in this package.
//     Order-independent loops (e.g. deleting matching keys) carry the
//     annotation with their justification.
//
// The check is syntactic: a shadowed `time` identifier or a map reached
// through an interface is beyond it. That trade is deliberate — see the
// package comment.
var Determinism = &Analyzer{
	Name:  "determinism",
	Doc:   "flags wall-clock reads, global math/rand use, and map iteration in replay-critical packages",
	Scope: []string{"internal/cluster", "internal/core", "internal/partition"},
	Run:   runDeterminism,
}

const allowNondet = "allow-nondeterministic"

// wallClockFuncs are the time package functions whose results depend on
// the wall clock. Referencing one (call or value) is nondeterministic
// under replay.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true, "Sleep": true,
}

// globalRandFuncs are the package-level math/rand functions backed by the
// process-global generator. Seeded generators built with rand.New are the
// sanctioned alternative.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func runDeterminism(pass *Pass) error {
	mapFields := collectMapFields(pass.Files)
	for _, f := range pass.Files {
		imports := fileImports(f)
		timeName, randName := "", ""
		for name, path := range imports {
			switch path {
			case "time":
				timeName = name
			case "math/rand", "math/rand/v2":
				randName = name
			}
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			mapLocals := collectMapLocals(fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					id, ok := n.X.(*ast.Ident)
					if !ok {
						return true
					}
					switch {
					case timeName != "" && id.Name == timeName && wallClockFuncs[n.Sel.Name]:
						if !pass.Allowed(n.Pos(), allowNondet) {
							pass.Reportf(n.Pos(), "%s.%s reads the wall clock; route through the injected clock or annotate %s%s <reason>",
								timeName, n.Sel.Name, DirectivePrefix, allowNondet)
						}
					case randName != "" && id.Name == randName && globalRandFuncs[n.Sel.Name]:
						if !pass.Allowed(n.Pos(), allowNondet) {
							pass.Reportf(n.Pos(), "global math/rand.%s bypasses the seeded source; use a rand.New(...) generator or annotate %s%s <reason>",
								n.Sel.Name, DirectivePrefix, allowNondet)
						}
					}
				case *ast.RangeStmt:
					if isMapExpr(n.X, mapLocals, mapFields) && !pass.Allowed(n.Pos(), allowNondet) {
						pass.Reportf(n.Pos(), "map iteration order is nondeterministic; iterate sorted keys or annotate %s%s <reason>",
							DirectivePrefix, allowNondet)
					}
				}
				return true
			})
		}
	}
	return nil
}

// collectMapFields gathers the names of struct fields and package-level
// variables declared with a map type anywhere in the package. Matching
// selector expressions by field name alone is an approximation (two
// structs could share a field name with different types), which for this
// analyzer errs on the side of flagging.
func collectMapFields(files []*ast.File) map[string]bool {
	names := map[string]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if _, ok := field.Type.(*ast.MapType); ok {
						for _, name := range field.Names {
							names[name.Name] = true
						}
					}
				}
			case *ast.ValueSpec:
				if _, ok := n.Type.(*ast.MapType); ok {
					for _, name := range n.Names {
						names[name.Name] = true
					}
				}
			}
			return true
		})
	}
	return names
}

// collectMapLocals gathers the identifiers a function binds to values of
// syntactically-evident map type: map-typed parameters, `var x map[...]`,
// `x := make(map[...])`, and map composite literals.
func collectMapLocals(fn *ast.FuncDecl) map[string]bool {
	locals := map[string]bool{}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if _, ok := field.Type.(*ast.MapType); ok {
				for _, name := range field.Names {
					locals[name.Name] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if _, ok := n.Type.(*ast.MapType); ok {
				for _, name := range n.Names {
					locals[name.Name] = true
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE && n.Tok != token.ASSIGN {
				return true
			}
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok || !isMapValue(rhs) {
					continue
				}
				locals[id.Name] = true
			}
		}
		return true
	})
	return locals
}

// isMapValue reports whether an expression evidently constructs a map.
func isMapValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, ok := e.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}

// isMapExpr reports whether a ranged expression is recognizably a map.
func isMapExpr(e ast.Expr, locals, fields map[string]bool) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return locals[e.Name]
	case *ast.SelectorExpr:
		return fields[e.Sel.Name]
	}
	return false
}
