package analysis

import (
	"os"
	"testing"
)

// TestRepoClean runs the full two-phase suite — all eight analyzers,
// including the cross-package facts phase — over the entire module and
// asserts zero diagnostics. This is the in-process equivalent of
// `go run ./cmd/dbtfvet ./...` exiting 0, so a change that introduces a
// finding (or breaks an annotation) fails `go test ./...` directly rather
// than only the CI lint job.
func TestRepoClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkgs, err := Load(root, []string{"./..."}, false)
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded from module root")
	}
	diags, err := RunSuite(Analyzers(), pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
