package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// WireBound enforces the bounded-decode discipline on wire-facing code:
// an allocation sized by a value read off the wire must be preceded by a
// bound check, or a forged header buys an attacker gigabytes of memory.
// The fuzz targets (FuzzWireDecode, FuzzTensorDecode, ...) probe this
// property; wirebound makes it a compile-time style contract over every
// decode path, fuzzed or not.
//
// Taint sources (syntactic): calls whose final selector is one of
// binary's fixed-width readers (Uint16/Uint32/Uint64), varint readers
// (ReadUvarint/ReadVarint), or the checkpoint cursor helpers
// (u16/u32/u64); plus calls through a local closure whose body wraps one
// of those (the `read := func() ... ReadUvarint ...` idiom). Taint
// propagates through assignments — a value derived from tainted operands
// is tainted — and through index assignment into a slice (dims[i] = v
// taints dims).
//
// A tainted value becomes *checked* once it appears inside an if
// condition's comparison before the use (textual precedence, the suite's
// usual stand-in for dominance — exact for this codebase's
// validate-then-allocate style). For-loop conditions deliberately do not
// count: `for i < n` bounds i, it does not validate n. Values derived
// only from checked taint are born checked.
//
// Findings: make() with a tainted unchecked size/capacity argument, and
// append() inside a for loop whose condition is bounded by a tainted
// unchecked value. //dbtf:bounded <reason> on the allocation suppresses
// it (say where the bound actually lives).
//
// The cross-package phase closes the audit: every analyzed package
// exports an "audited" fact, and a call from an audited package into a
// module-internal Decode*/Read* function of a package wirebound never
// visited is reported — decode work must not migrate outside the
// analyzer's scope unnoticed.
var WireBound = &Analyzer{
	Name:      "wirebound",
	Doc:       "wire-decoded sizes need a bound check before make/append, or //dbtf:bounded <reason>",
	Scope:     []string{"internal/transport", "internal/serve", "internal/core", "internal/tensor", "internal/boolmat"},
	Run:       runWireBound,
	FactTypes: []Fact{(*auditedPkgFact)(nil), (*decodeCallFact)(nil)},
	CrossPackage: func(cp *CrossPass) error {
		return crossWireBound(cp)
	},
	Escape: "bounded",
}

const boundedName = "bounded"

// auditedPkgFact marks a package the local phase actually visited.
type auditedPkgFact struct{}

func (*auditedPkgFact) AFact() {}

// decodeCallFact records a call into another module-internal package's
// Decode*/Read* entry point.
type decodeCallFact struct {
	ImportPath string // full import path of the callee's package
	Callee     string
	Pos        token.Pos
}

func (*decodeCallFact) AFact() {}

// wireSources are the final selector names that produce wire-controlled
// integers.
var wireSources = map[string]bool{
	"Uint16": true, "Uint32": true, "Uint64": true,
	"ReadUvarint": true, "ReadVarint": true,
	"u16": true, "u32": true, "u64": true,
}

func runWireBound(pass *Pass) error {
	pass.exportIfSuite(&auditedPkgFact{})
	for _, f := range pass.Files {
		imports := fileImports(f)
		exportDecodeCalls(pass, imports, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkWireFunc(pass, fn)
		}
	}
	return nil
}

// taintState tracks one identifier's wire taint through a function walk.
type taintState struct {
	taintPos token.Pos // where it became tainted
	checkPos token.Pos // first if-condition mention, or NoPos
}

// wireWalk is the per-function taint engine. Statements are visited in
// source order (pre-order Inspect), matching the textual-precedence
// model used across the suite.
type wireWalk struct {
	pass    *Pass
	sources map[string]bool // local closures wrapping a source
	taint   map[string]*taintState
}

func checkWireFunc(pass *Pass, fn *ast.FuncDecl) {
	w := &wireWalk{pass: pass, sources: map[string]bool{}, taint: map[string]*taintState{}}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.IfStmt:
			w.check(n.Cond)
		case *ast.ForStmt:
			if n.Cond != nil {
				w.loopBound(n)
			}
		case *ast.CallExpr:
			w.makeCall(n)
		}
		return true
	})
}

// assign handles taint birth and propagation for one assignment.
func (w *wireWalk) assign(as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			// v, err := read(): the single call taints every result.
			rhs = as.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		// A closure wrapping a source makes its name a source.
		if lit, ok := rhs.(*ast.FuncLit); ok {
			if id, ok := lhs.(*ast.Ident); ok && w.litWrapsSource(lit) {
				w.sources[id.Name] = true
			}
			continue
		}
		tainted, allChecked := w.exprTaint(rhs, as.Pos())
		if !tainted {
			continue
		}
		st := &taintState{taintPos: as.Pos()}
		if allChecked {
			st.checkPos = as.Pos()
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name != "_" && l.Name != "err" {
				w.taint[l.Name] = st
			}
		case *ast.IndexExpr:
			// dims[i] = v: the whole slice is wire-controlled now.
			if id, ok := l.X.(*ast.Ident); ok {
				w.taint[id.Name] = st
			}
		}
	}
}

// litWrapsSource reports whether a func literal's body calls a wire
// source — the decode-closure idiom.
func (w *wireWalk) litWrapsSource(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && w.callIsSource(call) {
			found = true
		}
		return true
	})
	return found
}

// callIsSource matches direct source calls (binary.BigEndian.Uint32,
// binary.ReadUvarint, c.u32) and calls through a registered closure.
func (w *wireWalk) callIsSource(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return wireSources[fun.Sel.Name]
	case *ast.Ident:
		return w.sources[fun.Name]
	}
	return false
}

// exprTaint reports whether e mentions tainted/source material at pos,
// and whether every tainted mention was already checked.
func (w *wireWalk) exprTaint(e ast.Expr, pos token.Pos) (tainted, allChecked bool) {
	allChecked = true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if w.callIsSource(n) {
				tainted = true
				allChecked = false
			}
		case *ast.Ident:
			if st, ok := w.taint[n.Name]; ok && st.taintPos < pos {
				tainted = true
				if st.checkPos == token.NoPos || st.checkPos > pos {
					allChecked = false
				}
			}
		}
		return true
	})
	return tainted, allChecked
}

// check marks every tainted identifier mentioned in an if condition as
// checked from here on.
func (w *wireWalk) check(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if st, ok := w.taint[id.Name]; ok && st.checkPos == token.NoPos {
				st.checkPos = cond.Pos()
			}
		}
		return true
	})
}

// loopBound flags appends inside a for loop bounded by unchecked taint.
func (w *wireWalk) loopBound(loop *ast.ForStmt) {
	tainted, allChecked := w.exprTaint(loop.Cond, loop.Pos())
	if !tainted || allChecked {
		return
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		if w.pass.Allowed(call.Pos(), boundedName) {
			return false
		}
		w.pass.Reportf(call.Pos(), "append grows under a loop bounded by a wire-decoded value with no prior bound check; validate the count first or annotate %s%s <reason>", DirectivePrefix, boundedName)
		return false
	})
}

// makeCall flags make() whose size or capacity is unchecked taint.
func (w *wireWalk) makeCall(call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) < 2 {
		return
	}
	for _, arg := range call.Args[1:] {
		tainted, allChecked := w.exprTaint(arg, call.Pos())
		if tainted && !allChecked {
			if w.pass.Allowed(call.Pos(), boundedName) {
				return
			}
			w.pass.Reportf(call.Pos(), "make sized by a wire-decoded value with no prior bound check; a forged header controls this allocation — validate it first or annotate %s%s <reason>", DirectivePrefix, boundedName)
			return
		}
	}
}

// exportDecodeCalls records calls into other module-internal packages'
// Decode*/Read* entry points for the cross-phase audit-closure check.
func exportDecodeCalls(pass *Pass, imports map[string]string, f *ast.File) {
	internal := map[string]string{}
	for name, path := range imports {
		if strings.Contains(path, "/internal/") || strings.HasPrefix(path, "internal/") {
			internal[name] = path
		}
	}
	if len(internal) == 0 {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		path, ok := internal[base.Name]
		if !ok {
			return true
		}
		if !strings.HasPrefix(sel.Sel.Name, "Decode") && !strings.HasPrefix(sel.Sel.Name, "Read") {
			return true
		}
		pass.exportIfSuite(&decodeCallFact{ImportPath: path, Callee: sel.Sel.Name, Pos: call.Pos()})
		return true
	})
}

// crossWireBound reports decode calls into packages the analyzer never
// audited: either widen Scope or move the decoder.
func crossWireBound(cp *CrossPass) error {
	audited := map[string]bool{}
	for _, pf := range cp.Facts {
		if _, ok := pf.Fact.(*auditedPkgFact); ok {
			audited[pf.Path] = true
		}
	}
	isAudited := func(importPath string) bool {
		for p := range audited {
			if importPath == p || strings.HasSuffix(importPath, "/"+p) {
				return true
			}
		}
		return false
	}
	for _, pf := range cp.Facts {
		dc, ok := pf.Fact.(*decodeCallFact)
		if !ok || isAudited(dc.ImportPath) {
			continue
		}
		cp.Reportf(dc.Pos, "%s in %s is a decode entry point outside wirebound's audited packages; add the package to the analyzer Scope or move the decoder into an audited package", dc.Callee, dc.ImportPath)
	}
	return nil
}
