package analysis

import (
	"go/ast"
	"go/token"
)

// ErrCheck enforces error hygiene on the durable write path: the
// checkpoint's crash-safety argument (temp file → fsync → rename → dir
// fsync) is void if any step's error is dropped, so discarding the result
// of a Close/Sync/Rename/Remove call is a diagnostic in the scoped
// packages. Both statement-position calls (`f.Close()`) and explicit
// blank assignments (`_ = f.Close()`) are flagged; best-effort cleanup on
// already-failing paths carries //dbtf:allow-unchecked <reason>. Deferred
// calls are exempt — `defer f.Close()` on a read-only file is the
// idiomatic read path and returns nothing to act on.
//
// The check is name-based (no type information): any method or function
// named Close, Sync, Rename, or Remove in the scoped packages is treated
// as error-returning, which holds for the os-level calls these packages
// make.
var ErrCheck = &Analyzer{
	Name:  "errcheck",
	Doc:   "flags discarded errors from Close/Sync/Rename/Remove on the durable write path",
	Scope: []string{"internal/core", "internal/boolmat", "internal/serve"},
	Run:   runErrCheck,
}

const allowUnchecked = "allow-unchecked"

// durableCalls are the operation names whose errors the durable write
// path must not drop.
var durableCalls = map[string]bool{
	"Close": true, "Sync": true, "Rename": true, "Remove": true,
}

func runErrCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				return false // deferred close on read paths is idiomatic
			case *ast.ExprStmt:
				if name, ok := durableCallName(n.X); ok {
					reportUnchecked(pass, n.Pos(), name)
				}
			case *ast.AssignStmt:
				if !allBlank(n.Lhs) {
					return true
				}
				for _, rhs := range n.Rhs {
					if name, ok := durableCallName(rhs); ok {
						reportUnchecked(pass, n.Pos(), name)
					}
				}
			}
			return true
		})
	}
	return nil
}

func reportUnchecked(pass *Pass, pos token.Pos, name string) {
	if pass.Allowed(pos, allowUnchecked) {
		return
	}
	pass.Reportf(pos, "result of %s is discarded on the durable write path; check it or annotate %s%s <reason>",
		name, DirectivePrefix, allowUnchecked)
}

// durableCallName returns the method/function name of a call whose error
// the write path must check.
func durableCallName(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if durableCalls[fun.Sel.Name] {
			return fun.Sel.Name, true
		}
	case *ast.Ident:
		if durableCalls[fun.Name] {
			return fun.Name, true
		}
	}
	return "", false
}

func allBlank(lhs []ast.Expr) bool {
	for _, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
