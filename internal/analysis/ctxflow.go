package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// CtxFlow enforces cancellation flow: a function that accepts a
// context.Context promises its caller it can be cancelled, so any
// operation in its body that can block indefinitely must either select
// on the context's Done channel or carry an explicit
// //dbtf:blocking <reason> annotation.
//
// Blocking operations recognized (syntactically):
//
//   - a bare channel receive or send used as a statement, assignment
//     source, or return value outside any select (receives buried in
//     larger expressions are beyond the syntactic net);
//   - a select statement with neither a `default` clause nor a
//     `<-ctx.Done()` case (every arm can block, and none observes
//     cancellation);
//   - time.Sleep(...);
//   - net.Dial / net.DialTimeout / net.Listen (use a ctx-aware dialer).
//
// Func literal bodies are excluded from the enclosing function's scan: a
// goroutine's blocking does not block the cancellable caller (goleak
// owns goroutine lifetime). A literal that itself takes a context is
// checked in its own right. Receives on buffered channels and
// known-closed channels cannot be distinguished without types — if a
// bare receive provably cannot block, say why in the annotation.
var CtxFlow = &Analyzer{
	Name:   "ctxflow",
	Doc:    "blocking operations in context-taking functions must select on ctx.Done() or carry //dbtf:blocking <reason>",
	Run:    runCtxFlow,
	Escape: "blocking",
}

const blockingName = "blocking"

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		imports := fileImports(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCtxFuncs(pass, imports, fn.Type, fn.Body)
		}
	}
	return nil
}

// checkCtxFuncs checks one function body if its type takes a context, and
// recurses into func literals so nested ctx-taking closures are checked
// against their own parameter.
func checkCtxFuncs(pass *Pass, imports map[string]string, ft *ast.FuncType, body *ast.BlockStmt) {
	if ctx := ctxParamName(imports, ft); ctx != "" {
		checkCtxBody(pass, imports, ctx, body)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkCtxFuncs(pass, imports, lit.Type, lit.Body)
			return false
		}
		return true
	})
}

// ctxParamName returns the name of the function's context.Context
// parameter, "_" if it is declared but unusable (then nothing can select
// on it and every blocking op is a finding), or "" when there is none.
func ctxParamName(imports map[string]string, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || imports[base.Name] != "context" {
			continue
		}
		if len(field.Names) == 0 {
			return "_"
		}
		return field.Names[0].Name
	}
	return ""
}

// checkCtxBody scans one cancellable function body, skipping nested func
// literals (their blocking belongs to their own goroutine/closure).
func checkCtxBody(pass *Pass, imports map[string]string, ctx string, body *ast.BlockStmt) {
	inSelect := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			done := false
			hasDefault := false
			for _, clause := range n.Body.List {
				comm := clause.(*ast.CommClause)
				if comm.Comm == nil {
					hasDefault = true
					continue
				}
				inSelect[comm.Comm] = true
				if commReceivesDone(comm.Comm, ctx) {
					done = true
				}
			}
			if !done && !hasDefault && !pass.Allowed(n.Pos(), blockingName) {
				pass.Reportf(n.Pos(), "select in a context-taking function has no <-%s.Done() case and no default; add one or annotate %s%s <reason>", ctxName(ctx), DirectivePrefix, blockingName)
			}
			return true
		case *ast.SendStmt:
			if inSelect[ast.Node(n)] {
				return true
			}
			if !pass.Allowed(n.Pos(), blockingName) {
				pass.Reportf(n.Pos(), "bare channel send in a context-taking function can block past cancellation; wrap it in a select with <-%s.Done() or annotate %s%s <reason>", ctxName(ctx), DirectivePrefix, blockingName)
			}
		case *ast.ExprStmt:
			if bareReceive(n.X) != nil && !inSelect[ast.Node(n)] {
				reportBareReceive(pass, ctx, n)
				return false
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if bareReceive(rhs) != nil && !inSelect[ast.Node(n)] {
					reportBareReceive(pass, ctx, n)
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if bareReceive(res) != nil {
					reportBareReceive(pass, ctx, n)
					return false
				}
			}
		case *ast.CallExpr:
			if pkgCallIs(imports, n, "time", "Sleep") {
				if !pass.Allowed(n.Pos(), blockingName) {
					pass.Reportf(n.Pos(), "time.Sleep in a context-taking function ignores cancellation; select on time.After and <-%s.Done(), or annotate %s%s <reason>", ctxName(ctx), DirectivePrefix, blockingName)
				}
			}
			if pkgCallIs(imports, n, "net", "Dial") || pkgCallIs(imports, n, "net", "DialTimeout") || pkgCallIs(imports, n, "net", "Listen") {
				if !pass.Allowed(n.Pos(), blockingName) {
					pass.Reportf(n.Pos(), "net dial/listen in a context-taking function should go through a ctx-aware dialer (net.Dialer.DialContext); annotate %s%s <reason> if the blocking is bounded", DirectivePrefix, blockingName)
				}
			}
		}
		return true
	})
}

// ctxName renders the context parameter for messages; an unnamed (_)
// context still identifies the problem.
func ctxName(ctx string) string {
	if ctx == "_" {
		return "ctx"
	}
	return ctx
}

func reportBareReceive(pass *Pass, ctx string, stmt ast.Stmt) {
	if pass.Allowed(stmt.Pos(), blockingName) {
		return
	}
	pass.Reportf(stmt.Pos(), "bare channel receive in a context-taking function can block past cancellation; select on it together with <-%s.Done() or annotate %s%s <reason>", ctxName(ctx), DirectivePrefix, blockingName)
}

// bareReceive returns the receive expression if e is <-ch (possibly
// parenthesized), else nil.
func bareReceive(e ast.Expr) *ast.UnaryExpr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	if un, ok := e.(*ast.UnaryExpr); ok && un.Op == token.ARROW {
		return un
	}
	return nil
}

// commReceivesDone reports whether a select comm clause receives from
// <ctx>.Done() (or any .Done() when the context parameter is unnamed —
// it cannot be the parameter's, but a derived context stored earlier is
// beyond syntactic reach, so the check stays on the conservative side of
// noisy).
func commReceivesDone(comm ast.Stmt, ctx string) bool {
	matches := func(e ast.Expr) bool {
		un, ok := e.(*ast.UnaryExpr)
		if !ok || un.Op != token.ARROW {
			return false
		}
		call, ok := un.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return false
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return false
		}
		return ctx == "_" || base.Name == ctx || strings.Contains(base.Name, "ctx") || strings.Contains(base.Name, "Ctx")
	}
	switch s := comm.(type) {
	case *ast.ExprStmt:
		return matches(s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if matches(rhs) {
				return true
			}
		}
	}
	return false
}

// pkgCallIs reports whether call is <pkg>.<fn>(...) for the import path
// pkg (matched through the file's import table).
func pkgCallIs(imports map[string]string, call *ast.CallExpr, pkg, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return imports[base.Name] == pkg
}
