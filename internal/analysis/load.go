package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one directory of parsed Go source, the unit an Analyzer
// runs over.
type Package struct {
	// Path is the module-relative slash path ("." for the module root).
	Path string
	// Dir is the absolute directory.
	Dir string
	// Fset positions are shared across the load.
	Fset *token.FileSet
	// Files are the parsed non-test files (and test files when the load
	// included them), sorted by file name.
	Files []*ast.File
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load parses the packages selected by patterns, resolved against root
// (the module root). Patterns follow the go tool's shape: "./..." and
// "dir/..." select a subtree, anything else names one directory. Vendored
// and testdata directories and (unless includeTests) _test.go files are
// skipped. Directories without buildable Go files are silently dropped.
func Load(root string, patterns []string, includeTests bool) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		switch {
		case pat == "./..." || pat == "...":
			if err := walkPackageDirs(root, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(root, strings.TrimSuffix(pat, "/..."))
			if err := walkPackageDirs(base, dirs); err != nil {
				return nil, err
			}
		default:
			dirs[filepath.Join(root, pat)] = true
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := loadDir(fset, root, dir, includeTests)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// walkPackageDirs adds every package directory under base to dirs,
// skipping testdata, hidden, and vendor directories the go tool would
// skip.
func walkPackageDirs(base string, dirs map[string]bool) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs[path] = true
		return nil
	})
}

// loadDir parses one directory into a Package; nil when it holds no
// matching Go files.
func loadDir(fset *token.FileSet, root, dir string, includeTests bool) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:  filepath.ToSlash(rel),
		Dir:   dir,
		Fset:  fset,
		Files: files,
	}, nil
}
