package analysis

import (
	"go/ast"
	"go/token"
)

// GoLeak requires every `go` statement to have a provable join path, so a
// goroutine launched on a hot path cannot outlive the operation that
// started it. A launch is accepted when one of these holds:
//
//   - WaitGroup pairing: a call x.<wg>.Add(...) textually precedes the go
//     statement in the same function body, and the goroutine body (a func
//     literal, or the body of a same-package named function the statement
//     calls) contains a matching <wg>.Done(). Matching is by the final
//     field name (wg, backups, ...), not the resolved struct type — the
//     suite has no type information, and distinct WaitGroups in one
//     function body would alias only if they also share a field name.
//     Each pairing additionally exports a fact, and the cross-package
//     phase requires some function anywhere in the repo to call
//     <wg>.Wait() — an Add/Done pair nobody waits on joins nothing.
//   - channel join: the goroutine body sends on or closes a channel
//     identifier that the launching function also receives from
//     (including inside a select case). The receive may precede the go
//     statement textually (loop-shaped joins); what matters is that the
//     launcher observably consumes the goroutine's completion signal.
//   - //dbtf:detached <reason> on the go statement — the goroutine is
//     intentionally unjoined (a process-lifetime server loop, say), and
//     the reason makes the decision auditable.
//
// The analyzer is syntactic: it proves the join signal exists, not that
// every control path reaches it.
var GoLeak = &Analyzer{
	Name:      "goleak",
	Doc:       "every go statement needs a WaitGroup pairing, a joined channel, or //dbtf:detached <reason>",
	Run:       runGoLeak,
	FactTypes: []Fact{(*wgAddFact)(nil), (*wgWaitFact)(nil)},
	CrossPackage: func(cp *CrossPass) error {
		return crossGoLeak(cp)
	},
	Escape: "detached",
}

const detachedName = "detached"

// wgAddFact records that a go statement was justified by an Add/Done
// pairing on a WaitGroup field with this final name; the cross phase
// demands a Wait for it somewhere.
type wgAddFact struct {
	Name string
	Pos  token.Pos
}

func (*wgAddFact) AFact() {}

// wgWaitFact records a call x.<Name>.Wait() anywhere in a package.
type wgWaitFact struct {
	Name string
}

func (*wgWaitFact) AFact() {}

func runGoLeak(pass *Pass) error {
	for _, f := range pass.Files {
		decls := namedFuncs(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGoLeakFunc(pass, fn, decls)
		}
	}
	// Wait() calls are recorded everywhere — including inside func
	// literals and functions that launch nothing — because the join may
	// live far from the launch (Shutdown waits for Serve's goroutines).
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := waitGroupCallName(call, "Wait"); name != "" {
				pass.exportIfSuite(&wgWaitFact{Name: name})
			}
			return true
		})
	}
	return nil
}

// exportIfSuite exports a fact when running under RunSuite/Run and is a
// no-op for a bare pass (defensive; all drivers wire facts today).
func (p *Pass) exportIfSuite(f Fact) {
	if p.facts != nil {
		p.ExportPackageFact(f)
	}
}

// namedFuncs indexes a file's function declarations by name so `go
// s.runJob(...)` can be resolved to the body that holds the Done.
func namedFuncs(f *ast.File) map[string]*ast.FuncDecl {
	m := map[string]*ast.FuncDecl{}
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
			m[fn.Name.Name] = fn
		}
	}
	return m
}

func checkGoLeakFunc(pass *Pass, fn *ast.FuncDecl, decls map[string]*ast.FuncDecl) {
	adds := collectWaitGroupCalls(fn.Body, "Add")
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body := goroutineBody(g, decls)
		switch {
		case wgJoined(pass, adds, g, body):
		case chanJoined(fn.Body, body):
		case pass.Allowed(g.Pos(), detachedName):
		default:
			pass.Reportf(g.Pos(), "goroutine has no provable join: pair it with a WaitGroup Add/Done, receive its completion on a channel, or annotate %s%s <reason>", DirectivePrefix, detachedName)
		}
		return true
	})
}

// goroutineBody returns the statements the go statement runs: the func
// literal's body, or the body of a same-file named function (go fn(...)
// or go x.method(...)). Nil when the callee is out of reach (another
// package, a stored closure), which forces an explicit join or directive.
func goroutineBody(g *ast.GoStmt, decls map[string]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn := decls[fun.Name]; fn != nil {
			return fn.Body
		}
	case *ast.SelectorExpr:
		if fn := decls[fun.Sel.Name]; fn != nil {
			return fn.Body
		}
	}
	return nil
}

// waitGroupCallName matches a call x.<field>.<method>() or
// <ident>.<method>() and returns the WaitGroup's final name, or "".
func waitGroupCallName(call *ast.CallExpr, method string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return ""
	}
	switch recv := sel.X.(type) {
	case *ast.Ident:
		return recv.Name
	case *ast.SelectorExpr:
		return recv.Sel.Name
	}
	return ""
}

// collectWaitGroupCalls finds every call of the given method shape inside
// body, keyed by final receiver name.
func collectWaitGroupCalls(body *ast.BlockStmt, method string) []lockCall {
	var out []lockCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := waitGroupCallName(call, method); name != "" {
			out = append(out, lockCall{ident: name, pos: call.Pos()})
		}
		return true
	})
	return out
}

// wgJoined reports whether the go statement is justified by an Add before
// it and a matching Done inside the goroutine body; on success it exports
// the fact the cross phase uses to demand a Wait.
func wgJoined(pass *Pass, adds []lockCall, g *ast.GoStmt, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	dones := collectWaitGroupCalls(body, "Done")
	for _, add := range adds {
		if add.pos >= g.Pos() {
			continue
		}
		for _, done := range dones {
			if done.ident == add.ident {
				pass.exportIfSuite(&wgAddFact{Name: add.ident, Pos: add.pos})
				return true
			}
		}
	}
	return false
}

// chanJoined reports whether the goroutine body signals completion on a
// channel identifier the launching function receives from.
func chanJoined(launcher, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	signals := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if id, ok := n.Chan.(*ast.Ident); ok {
				signals[id.Name] = true
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if ch, ok := n.Args[0].(*ast.Ident); ok {
					signals[ch.Name] = true
				}
			}
		}
		return true
	})
	if len(signals) == 0 {
		return false
	}
	joined := false
	ast.Inspect(launcher, func(n ast.Node) bool {
		if joined {
			return false
		}
		un, ok := n.(*ast.UnaryExpr)
		if !ok || un.Op != token.ARROW {
			return true
		}
		if id, ok := un.X.(*ast.Ident); ok && signals[id.Name] {
			joined = true
		}
		return true
	})
	return joined
}

// crossGoLeak demands that every WaitGroup name used to justify a launch
// is Waited on somewhere in the analyzed tree.
func crossGoLeak(cp *CrossPass) error {
	waited := map[string]bool{}
	for _, pf := range cp.Facts {
		if w, ok := pf.Fact.(*wgWaitFact); ok {
			waited[w.Name] = true
		}
	}
	for _, pf := range cp.Facts {
		add, ok := pf.Fact.(*wgAddFact)
		if !ok || waited[add.Name] {
			continue
		}
		cp.Reportf(add.Pos, "WaitGroup %q has Add/Done pairs but no Wait anywhere in the analyzed packages; the goroutines it tracks are never joined", add.Name)
	}
	return nil
}
