// Package analysis is the dbtfvet analyzer suite: domain-specific static
// checks that machine-verify the invariants this codebase otherwise
// enforces only by convention — bit-identical replay per seed, single-mutex
// stats snapshots, and the length/aliasing contracts of the raw word-slice
// kernels.
//
// The framework is a deliberately small, dependency-free subset of
// golang.org/x/tools/go/analysis (this build environment is offline, so the
// real module is unavailable): an Analyzer runs over the parsed (not
// type-checked) files of one package and reports position-anchored
// diagnostics. Working on syntax alone keeps the suite fast and
// self-contained; each analyzer documents the approximations that follow
// from not having type information. The Analyzer/Pass shape matches x/tools
// closely enough that the suite could be rebased onto the real framework
// without rewriting the checks.
//
// Analyzers communicate with the code under analysis through //dbtf:
// directives (the annotation grammar is documented per analyzer and in
// DESIGN.md §8). Every escape hatch requires a reason: a bare directive is
// itself a diagnostic, so suppressions stay auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is the analyzer's one-paragraph description.
	Doc string
	// Scope restricts which packages the multichecker applies the analyzer
	// to: a package matches when its module-relative slash path equals a
	// scope entry or lives below it. Empty means every package. Fixture
	// tests bypass Scope and run the analyzer directly.
	Scope []string
	// Run performs the check, reporting findings through pass.Reportf.
	Run func(*Pass) error
	// FactTypes lists the fact types Run may export via ExportPackageFact;
	// declared for documentation and -list, mirroring x/tools.
	FactTypes []Fact
	// CrossPackage, if set, runs once after every package's Run with the
	// aggregated facts — the suite's second, whole-program phase.
	CrossPackage func(*CrossPass) error
	// Escape names the analyzer's //dbtf: escape-hatch directive (without
	// the prefix), surfaced in -list and -json output so suppressions stay
	// discoverable. Empty when the analyzer has no single escape directive.
	Escape string
}

// AppliesTo reports whether the multichecker should run the analyzer on
// the package with the given module-relative path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == s || strings.HasPrefix(pkgPath, s+"/") {
			return true
		}
	}
	return false
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass hands one package's syntax to an analyzer and collects its
// diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Path is the package's module-relative slash path ("." for the root).
	Path string

	diags      *[]Diagnostic
	facts      *[]PackageFact
	directives map[*ast.File]map[int][]directive
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //dbtf: annotation.
type directive struct {
	name string // e.g. "allow-nondeterministic"
	arg  string // text after the name, trimmed
	pos  token.Pos
}

// DirectivePrefix starts every annotation the suite understands.
const DirectivePrefix = "//dbtf:"

// parseDirective splits a //dbtf:name arg... comment line; ok is false for
// other comments.
func parseDirective(c *ast.Comment) (directive, bool) {
	text := c.Text
	if !strings.HasPrefix(text, DirectivePrefix) {
		return directive{}, false
	}
	rest := text[len(DirectivePrefix):]
	name, arg, _ := strings.Cut(rest, " ")
	return directive{name: strings.TrimSpace(name), arg: strings.TrimSpace(arg), pos: c.Pos()}, true
}

// fileDirectives indexes a file's //dbtf: directives by the line they
// govern: a directive governs its own line (inline comment) and, when it
// is the last line of its comment group, the line immediately below
// (leading comment).
func (p *Pass) fileDirectives(f *ast.File) map[int][]directive {
	if p.directives == nil {
		p.directives = map[*ast.File]map[int][]directive{}
	}
	if m, ok := p.directives[f]; ok {
		return m
	}
	m := map[int][]directive{}
	for _, cg := range f.Comments {
		for i, c := range cg.List {
			d, ok := parseDirective(c)
			if !ok {
				continue
			}
			line := p.Fset.Position(c.Pos()).Line
			m[line] = append(m[line], d)
			if i == len(cg.List)-1 {
				m[line+1] = append(m[line+1], d)
			}
		}
	}
	p.directives[f] = m
	return m
}

// fileOf returns the file containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// Directive looks for a //dbtf:<name> annotation governing the line of pos
// (inline on the same line, or a comment on the line above). It returns
// the directive's argument text; found distinguishes "annotation present
// with an empty reason" from "no annotation".
func (p *Pass) Directive(pos token.Pos, name string) (arg string, found bool) {
	f := p.fileOf(pos)
	if f == nil {
		return "", false
	}
	line := p.Fset.Position(pos).Line
	for _, d := range p.fileDirectives(f)[line] {
		if d.name == name {
			return d.arg, true
		}
	}
	return "", false
}

// Allowed implements the standard escape-hatch protocol: a //dbtf:<name>
// annotation with a non-empty reason suppresses the diagnostic; an
// annotation without a reason is itself reported, so every suppression in
// the tree carries its justification.
func (p *Pass) Allowed(pos token.Pos, name string) bool {
	arg, found := p.Directive(pos, name)
	if !found {
		return false
	}
	if arg == "" {
		p.Reportf(pos, "%s%s requires a reason", DirectivePrefix, name)
		return true // the bare-annotation diagnostic replaces the original
	}
	return true
}

// docDirectives parses the //dbtf: annotations of a declaration's doc
// comment (used for function-level annotations such as //dbtf:locks).
func docDirectives(doc *ast.CommentGroup) []directive {
	if doc == nil {
		return nil
	}
	var out []directive
	for _, c := range doc.List {
		if d, ok := parseDirective(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// importName returns the local name an import spec binds.
func importName(spec *ast.ImportSpec) string {
	if spec.Name != nil {
		return spec.Name.Name
	}
	path := strings.Trim(spec.Path.Value, `"`)
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// fileImports maps each local import name of f to its import path.
func fileImports(f *ast.File) map[string]string {
	m := map[string]string{}
	for _, spec := range f.Imports {
		m[importName(spec)] = strings.Trim(spec.Path.Value, `"`)
	}
	return m
}

// Analyzers returns the full suite in the order the multichecker runs it.
func Analyzers() []*Analyzer {
	return []*Analyzer{Determinism, GuardedBy, KernelContract, ErrCheck, GoLeak, LockOrder, CtxFlow, WireBound}
}

// Run executes one analyzer over one loaded package — both phases, with
// the cross-package phase seeing just this package's facts — and returns
// its diagnostics sorted by position. Fixture tests use this; the
// multichecker uses RunSuite so the cross phase sees every package.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	diags, facts, err := runLocal(a, pkg)
	if err != nil {
		return nil, err
	}
	if a.CrossPackage != nil {
		cp := &CrossPass{Analyzer: a, Fset: pkg.Fset, Facts: facts, diags: &diags}
		if err := a.CrossPackage(cp); err != nil {
			return nil, fmt.Errorf("analysis: %s cross-package phase: %w", a.Name, err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
