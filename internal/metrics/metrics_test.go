package metrics

import (
	"math"
	"math/rand"
	"testing"

	"dbtf/internal/boolmat"
	"dbtf/internal/tensor"
)

func planted(seed int64, i, j, k, r int, density float64) (*tensor.Tensor, *boolmat.FactorMatrix, *boolmat.FactorMatrix, *boolmat.FactorMatrix) {
	rng := rand.New(rand.NewSource(seed))
	a := boolmat.RandomFactor(rng, i, r, density)
	b := boolmat.RandomFactor(rng, j, r, density)
	c := boolmat.RandomFactor(rng, k, r, density)
	return tensor.Reconstruct(a, b, c), a, b, c
}

func TestRelativeErrorPerfect(t *testing.T) {
	x, a, b, c := planted(1, 10, 10, 10, 2, 0.3)
	if got := RelativeError(x, a, b, c); got != 0 {
		t.Fatalf("perfect factors: relative error %v", got)
	}
}

func TestRelativeErrorTrivial(t *testing.T) {
	x, _, _, _ := planted(2, 10, 10, 10, 2, 0.3)
	zero := boolmat.NewFactor(10, 2)
	if got := RelativeError(x, zero, zero, zero); got != 1 {
		t.Fatalf("all-zero factors: relative error %v, want 1", got)
	}
}

func TestRelativeErrorEmptyTensor(t *testing.T) {
	x := tensor.New(4, 4, 4)
	zero := boolmat.NewFactor(4, 1)
	if got := RelativeError(x, zero, zero, zero); got != 0 {
		t.Fatalf("empty tensor + empty factors: %v", got)
	}
	// A nonempty reconstruction of an empty tensor has no normalizer: the
	// score is +Inf, never the raw error count (which would silently change
	// units — the 1-cell case used to coincide with ratio 1.0 and a larger
	// reconstruction would not).
	one := boolmat.NewFactor(4, 1)
	one.Set(0, 0, true)
	if got := RelativeError(x, one, one, one); !math.IsInf(got, 1) {
		t.Fatalf("empty tensor + 1-cell reconstruction: %v, want +Inf", got)
	}
	many := boolmat.NewFactor(4, 1)
	for r := 0; r < 4; r++ {
		many.Set(r, 0, true)
	}
	if got := RecoveryError(x, many, many, many); !math.IsInf(got, 1) {
		t.Fatalf("empty truth + 64-cell reconstruction: %v, want +Inf", got)
	}
}

func TestPrecisionRecall(t *testing.T) {
	// x = {(0,0,0), (1,1,1)}; reconstruction covers (0,0,0) and (0,0,1).
	x := tensor.MustFromCoords(2, 2, 2, []tensor.Coord{{I: 0, J: 0, K: 0}, {I: 1, J: 1, K: 1}})
	a := boolmat.NewFactor(2, 1)
	b := boolmat.NewFactor(2, 1)
	c := boolmat.NewFactor(2, 1)
	a.Set(0, 0, true)
	b.Set(0, 0, true)
	c.Set(0, 0, true)
	c.Set(1, 0, true)
	p, r := PrecisionRecall(x, a, b, c)
	if p != 0.5 || r != 0.5 {
		t.Fatalf("precision %v recall %v, want 0.5/0.5", p, r)
	}
	if f := F1(p, r); f != 0.5 {
		t.Fatalf("F1 = %v", f)
	}
	if F1(0, 0) != 0 {
		t.Fatal("F1(0,0) != 0")
	}
}

func TestPrecisionRecallEmptyReconstruction(t *testing.T) {
	x := tensor.MustFromCoords(2, 2, 2, []tensor.Coord{{I: 0, J: 0, K: 0}})
	zero := boolmat.NewFactor(2, 1)
	p, r := PrecisionRecall(x, zero, zero, zero)
	if p != 1 || r != 0 {
		t.Fatalf("empty reconstruction: precision %v recall %v, want 1/0", p, r)
	}
}

func TestFactorSimilarityIdentical(t *testing.T) {
	_, a, b, c := planted(3, 8, 9, 10, 3, 0.3)
	if got := FactorSimilarity(a, b, c, a, b, c); got != 1 {
		t.Fatalf("self similarity %v, want 1", got)
	}
}

func TestFactorSimilarityPermutationInvariant(t *testing.T) {
	_, a, b, c := planted(4, 8, 9, 10, 3, 0.3)
	perm := []int{2, 0, 1}
	ap, bp, cp := a.PermuteColumns(perm), b.PermuteColumns(perm), c.PermuteColumns(perm)
	if got := FactorSimilarity(a, b, c, ap, bp, cp); got != 1 {
		t.Fatalf("permuted similarity %v, want 1", got)
	}
}

func TestFactorSimilarityDisjoint(t *testing.T) {
	a1 := boolmat.NewFactor(4, 1)
	a1.Set(0, 0, true)
	a2 := boolmat.NewFactor(4, 1)
	a2.Set(1, 0, true)
	if got := FactorSimilarity(a1, a1, a1, a2, a2, a2); got != 0 {
		t.Fatalf("disjoint similarity %v, want 0", got)
	}
}

func TestFactorSimilarityRankMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FactorSimilarity(boolmat.NewFactor(2, 1), boolmat.NewFactor(2, 1), boolmat.NewFactor(2, 1),
		boolmat.NewFactor(2, 2), boolmat.NewFactor(2, 2), boolmat.NewFactor(2, 2))
}

func TestRecoveryErrorBeatsNoisyFitForTrueFactors(t *testing.T) {
	// For the true factors, recovery error against the clean tensor is 0
	// even though the relative error against a noisy tensor is not.
	x, a, b, c := planted(5, 12, 12, 12, 2, 0.3)
	if RecoveryError(x, a, b, c) != 0 {
		t.Fatal("true factors have nonzero recovery error")
	}
	noisy := tensor.MustFromCoords(12, 12, 12, append([]tensor.Coord{{I: 11, J: 11, K: 11}}, x.Coords()...))
	if RelativeError(noisy, a, b, c) == 0 {
		t.Fatal("noisy tensor unexpectedly fits perfectly")
	}
}

func TestJaccardBothEmpty(t *testing.T) {
	a := boolmat.NewFactor(5, 1)
	if got := jaccard(a, 0, a, 0); got != 1 {
		t.Fatalf("empty-empty jaccard %v, want 1", got)
	}
}

func TestF1Harmonic(t *testing.T) {
	if got := F1(1, 0.5); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("F1(1,0.5) = %v", got)
	}
}

func TestFactorSimilarityZeroRank(t *testing.T) {
	z := boolmat.NewFactor(5, 0)
	if got := FactorSimilarity(z, z, z, z, z, z); got != 1 {
		t.Fatalf("zero-rank similarity %v, want 1 (empty factorizations are identical)", got)
	}
}

func TestPrecisionRecallEmptyTensor(t *testing.T) {
	// Empty reference, nonzero reconstruction: every reconstructed cell is
	// a false positive (precision 0) while recall's 0/0 convention is 1.
	x := tensor.New(2, 2, 2)
	one := boolmat.NewFactor(2, 1)
	one.Set(0, 0, true)
	p, r := PrecisionRecall(x, one, one, one)
	if p != 0 || r != 1 {
		t.Fatalf("empty tensor: precision %v recall %v, want 0/1", p, r)
	}
}

func TestPrecisionRecallBothEmpty(t *testing.T) {
	x := tensor.New(3, 3, 3)
	zero := boolmat.NewFactor(3, 2)
	p, r := PrecisionRecall(x, zero, zero, zero)
	if p != 1 || r != 1 {
		t.Fatalf("both empty: precision %v recall %v, want 1/1", p, r)
	}
	if F1(p, r) != 1 {
		t.Fatalf("F1(1,1) = %v", F1(p, r))
	}
}

func TestJaccardLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	jaccard(boolmat.NewFactor(3, 1), 0, boolmat.NewFactor(4, 1), 0)
}

func TestFactorSimilarityGreedyValue(t *testing.T) {
	// Rank 2: component 0 of the estimate matches component 1 of the
	// reference exactly, the remaining pair is disjoint. Greedy matching
	// takes the exact pair first, so the mean is (1 + 0) / 2.
	ref := boolmat.NewFactor(4, 2)
	ref.Set(0, 0, true)
	ref.Set(1, 1, true)
	est := boolmat.NewFactor(4, 2)
	est.Set(1, 0, true)
	est.Set(2, 1, true)
	if got := FactorSimilarity(ref, ref, ref, est, est, est); got != 0.5 {
		t.Fatalf("greedy similarity %v, want 0.5", got)
	}
}
