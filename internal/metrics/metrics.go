// Package metrics scores Boolean CP factorizations: reconstruction error
// relative to the input (the paper's Section IV-D measure), recovery
// against a known noise-free ground truth, cell-level precision/recall,
// and permutation-invariant factor similarity.
package metrics

import (
	"fmt"
	"math"

	"dbtf/internal/boolmat"
	"dbtf/internal/tensor"
)

// RelativeError returns |X ⊕ X̂| / |X|, the reconstruction error
// normalized by the input's nonzero count (so 1.0 is the trivial all-zero
// factorization). The empty-tensor edge cases follow the ratio's limits: a
// perfect reconstruction of an empty tensor scores 0, and a nonempty
// reconstruction of an empty tensor scores +Inf — every set cell is a
// false positive and no normalizer exists, so no finite score in the
// ratio's units is meaningful (an earlier version returned the raw error
// count here, which silently mixed units with every other return).
func RelativeError(x *tensor.Tensor, a, b, c *boolmat.FactorMatrix) float64 {
	e := tensor.ReconstructError(x, a, b, c)
	if x.NNZ() == 0 {
		if e == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(e) / float64(x.NNZ())
}

// RecoveryError returns |X_true ⊕ X̂| / |X_true|: how far the
// reconstruction is from the noise-free ground truth, the measure of
// whether a method recovered the planted structure rather than the noise.
func RecoveryError(truth *tensor.Tensor, a, b, c *boolmat.FactorMatrix) float64 {
	return RelativeError(truth, a, b, c)
}

// PrecisionRecall returns cell-level precision and recall of the
// reconstruction X̂ against a reference tensor: precision = |X̂ ∧ X| / |X̂|
// and recall = |X̂ ∧ X| / |X|. An empty reconstruction has precision 1.
func PrecisionRecall(x *tensor.Tensor, a, b, c *boolmat.FactorMatrix) (precision, recall float64) {
	rec := tensor.Reconstruct(a, b, c)
	tp := 0
	for _, co := range rec.Coords() {
		if x.Get(co.I, co.J, co.K) {
			tp++
		}
	}
	precision = 1
	if rec.NNZ() > 0 {
		precision = float64(tp) / float64(rec.NNZ())
	}
	recall = 1
	if x.NNZ() > 0 {
		recall = float64(tp) / float64(x.NNZ())
	}
	return precision, recall
}

// F1 returns the harmonic mean of precision and recall; 0 when both are 0.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// FactorSimilarity matches the components of an estimated factorization to
// a reference one (components of a CP decomposition carry no inherent
// order) and returns the mean Jaccard similarity of the matched rank-1
// supports, approximated per mode:
//
//	sim(r, s) = J(a_:r, a'_:s) · J(b_:r, b'_:s) · J(c_:r, c'_:s)
//
// Matching is greedy on descending similarity. Ranks must agree.
func FactorSimilarity(a1, b1, c1, a2, b2, c2 *boolmat.FactorMatrix) float64 {
	r := a1.Rank()
	if b1.Rank() != r || c1.Rank() != r || a2.Rank() != r || b2.Rank() != r || c2.Rank() != r {
		panic(fmt.Sprintf("metrics: rank mismatch %d/%d/%d vs %d/%d/%d",
			a1.Rank(), b1.Rank(), c1.Rank(), a2.Rank(), b2.Rank(), c2.Rank()))
	}
	if r == 0 {
		return 1
	}
	sim := make([][]float64, r)
	for i := 0; i < r; i++ {
		sim[i] = make([]float64, r)
		for j := 0; j < r; j++ {
			sim[i][j] = jaccard(a1, i, a2, j) * jaccard(b1, i, b2, j) * jaccard(c1, i, c2, j)
		}
	}
	usedI := make([]bool, r)
	usedJ := make([]bool, r)
	total := 0.0
	for n := 0; n < r; n++ {
		bi, bj, best := -1, -1, -1.0
		for i := 0; i < r; i++ {
			if usedI[i] {
				continue
			}
			for j := 0; j < r; j++ {
				if usedJ[j] {
					continue
				}
				if sim[i][j] > best {
					bi, bj, best = i, j, sim[i][j]
				}
			}
		}
		usedI[bi], usedJ[bj] = true, true
		total += best
	}
	return total / float64(r)
}

// jaccard computes the Jaccard similarity of column i of m1 and column j
// of m2. Two empty columns are fully similar.
func jaccard(m1 *boolmat.FactorMatrix, i int, m2 *boolmat.FactorMatrix, j int) float64 {
	c1 := m1.Column(i)
	c2 := m2.Column(j)
	if c1.Len() != c2.Len() {
		panic(fmt.Sprintf("metrics: column length mismatch %d vs %d", c1.Len(), c2.Len()))
	}
	inter := c1.AndCount(c2)
	union := c1.OnesCount() + c2.OnesCount() - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
