package mdl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dbtf/internal/boolmat"
	"dbtf/internal/tensor"
)

func TestBinomialBitsSmallExact(t *testing.T) {
	cases := []struct {
		n, k int64
		want float64
	}{
		{0, 0, 0},
		{5, 0, 0},
		{5, 5, 0},
		{4, 2, math.Log2(6)},
		{10, 3, math.Log2(120)},
	}
	for _, tc := range cases {
		if got := BinomialBits(tc.n, tc.k); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("BinomialBits(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestBinomialBitsInvalid(t *testing.T) {
	for _, tc := range [][2]int64{{-1, 0}, {3, -1}, {3, 4}} {
		if !math.IsInf(BinomialBits(tc[0], tc[1]), 1) {
			t.Errorf("BinomialBits(%d,%d) not +Inf", tc[0], tc[1])
		}
	}
}

func TestBinomialBitsSymmetry(t *testing.T) {
	f := func(nRaw, kRaw uint16) bool {
		n := int64(nRaw%1000) + 1
		k := int64(kRaw) % (n + 1)
		return math.Abs(BinomialBits(n, k)-BinomialBits(n, n-k)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorBitsMonotoneTowardHalf(t *testing.T) {
	// More ones (up to n/2) means more positional information.
	prev := VectorBits(100, 0)
	for h := int64(1); h <= 50; h++ {
		cur := VectorBits(100, h)
		if cur <= prev {
			t.Fatalf("VectorBits(100,%d)=%v not > VectorBits(100,%d)=%v", h, cur, h-1, prev)
		}
		prev = cur
	}
}

func TestFactorBitsSparserIsCheaper(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sparse := boolmat.RandomFactor(rng, 100, 5, 0.05)
	dense := boolmat.RandomFactor(rng, 100, 5, 0.4)
	if FactorBits(sparse) >= FactorBits(dense) {
		t.Fatalf("sparse factor costs %v >= dense %v", FactorBits(sparse), FactorBits(dense))
	}
}

func TestTotalBitsPerfectModelBeatsBaseline(t *testing.T) {
	// A tensor with one large planted block compresses far better through
	// its exact factors than as raw error cells.
	rng := rand.New(rand.NewSource(2))
	a := boolmat.RandomFactor(rng, 40, 1, 0.5)
	b := boolmat.RandomFactor(rng, 40, 1, 0.5)
	c := boolmat.RandomFactor(rng, 40, 1, 0.5)
	x := tensor.Reconstruct(a, b, c)
	if x.NNZ() < 100 {
		t.Skip("degenerate planted block")
	}
	if TotalBits(x, a, b, c) >= BaselineBits(x) {
		t.Fatalf("exact model %v bits not better than baseline %v", TotalBits(x, a, b, c), BaselineBits(x))
	}
}

func TestTotalBitsOverfittedModelLosesToBaseline(t *testing.T) {
	// Random noise has no structure: a full-rank "explanation" of it must
	// cost more than just listing the noise.
	rng := rand.New(rand.NewSource(3))
	var coords []tensor.Coord
	for n := 0; n < 50; n++ {
		coords = append(coords, tensor.Coord{I: rng.Intn(30), J: rng.Intn(30), K: rng.Intn(30)})
	}
	x := tensor.MustFromCoords(30, 30, 30, coords)
	// A dense rank-20 model that still fits nothing.
	a := boolmat.RandomFactor(rng, 30, 20, 0.5)
	b := boolmat.RandomFactor(rng, 30, 20, 0.5)
	c := boolmat.RandomFactor(rng, 30, 20, 0.5)
	if TotalBits(x, a, b, c) <= BaselineBits(x) {
		t.Fatal("random dense model compresses noise better than baseline")
	}
}

func TestErrorBitsZero(t *testing.T) {
	if got := ErrorBits(10, 10, 10, 0); math.Abs(got-math.Log2(1001)) > 1e-9 {
		t.Fatalf("ErrorBits(...,0) = %v", got)
	}
}

func TestQuickTotalBitsFinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		i, j, k := rng.Intn(10)+1, rng.Intn(10)+1, rng.Intn(10)+1
		r := rng.Intn(4) + 1
		a := boolmat.RandomFactor(rng, i, r, 0.3)
		b := boolmat.RandomFactor(rng, j, r, 0.3)
		c := boolmat.RandomFactor(rng, k, r, 0.3)
		x := tensor.Reconstruct(a, b, c)
		bits := TotalBits(x, a, b, c)
		return !math.IsInf(bits, 0) && !math.IsNaN(bits) && bits >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
