// Package mdl computes minimum-description-length (MDL) scores for
// Boolean tensor factorizations.
//
// MDL turns "how good is this factorization" into "how many bits does it
// take to transmit the tensor via the model": the factors are encoded
// first, then the error cells needed to correct the model's
// reconstruction. A better factorization compresses the data better. The
// Walk'n'Merge paper uses MDL to pick which discovered blocks to keep and
// how many (model-order selection); the same score provides automatic
// rank selection for CP decompositions.
//
// Encoding scheme (binomial/enumerative coding, following the style of
// MDL4BMF and Walk'n'Merge):
//
//   - a binary vector of length n with h ones costs
//     log2(n+1) + log2 C(n, h) bits (count, then position subset);
//   - a factor matrix costs the sum over its columns plus log2(R+1) for
//     the rank;
//   - the error costs log2(I·J·K+1) + log2 C(I·J·K, E) bits for E
//     mismatched cells.
package mdl

import (
	"math"

	"dbtf/internal/boolmat"
	"dbtf/internal/tensor"
)

// BinomialBits returns log2 C(n, k): the bits to enumerate a k-subset of
// n positions. Computed with log-gamma, so it is exact enough for scoring
// even at billions of cells.
func BinomialBits(n, k int64) float64 {
	if k < 0 || n < 0 || k > n {
		return math.Inf(1)
	}
	if k == 0 || k == n {
		return 0
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return (lg - lk - lnk) / math.Ln2
}

// VectorBits returns the bits to encode a binary vector of length n with
// h ones: the count followed by the position subset.
func VectorBits(n, h int64) float64 {
	if n < 0 || h < 0 || h > n {
		return math.Inf(1)
	}
	return math.Log2(float64(n+1)) + BinomialBits(n, h)
}

// FactorBits returns the bits to encode a factor matrix column by column,
// plus the rank header.
func FactorBits(m *boolmat.FactorMatrix) float64 {
	bits := math.Log2(float64(m.Rank() + 1))
	n := int64(m.Rows())
	for c := 0; c < m.Rank(); c++ {
		bits += VectorBits(n, int64(m.Column(c).OnesCount()))
	}
	return bits
}

// ErrorBits returns the bits to encode e mismatched cells of an
// i×j×k tensor.
func ErrorBits(i, j, k int, e int64) float64 {
	cells := int64(i) * int64(j) * int64(k)
	return math.Log2(float64(cells+1)) + BinomialBits(cells, e)
}

// TotalBits returns the full description length of x under the CP factor
// model (A, B, C): model bits plus error-correction bits.
func TotalBits(x *tensor.Tensor, a, b, c *boolmat.FactorMatrix) float64 {
	i, j, k := x.Dims()
	e := tensor.ReconstructError(x, a, b, c)
	return FactorBits(a) + FactorBits(b) + FactorBits(c) + ErrorBits(i, j, k, e)
}

// BaselineBits returns the description length of x under the empty model:
// every nonzero is an error cell. Any factorization worth keeping must
// beat this.
func BaselineBits(x *tensor.Tensor) float64 {
	i, j, k := x.Dims()
	return ErrorBits(i, j, k, int64(x.NNZ()))
}
