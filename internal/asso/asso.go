// Package asso implements the ASSO algorithm for Boolean matrix
// factorization (Miettinen et al., "The Discrete Basis Problem", 2008),
// the building block BCP_ALS uses to initialize its factor matrices.
//
// Given a binary matrix X ∈ B^{n×m} and a rank R, ASSO finds a usage
// matrix U ∈ B^{n×R} and a basis matrix S ∈ B^{R×m} such that U ∘ S ≈ X:
//
//  1. It builds the m×m column association matrix whose (i, j) entry is
//     the confidence ⟨x_:i, x_:j⟩ / ⟨x_:i, x_:i⟩, and thresholds each row
//     at τ to obtain m candidate basis vectors.
//  2. It greedily selects R candidates; each selection picks the candidate
//     (and, per row, the usage bit) maximizing the cover gain
//     w⁺·(newly covered ones) − w⁻·(newly covered zeros).
//
// The association matrix is quadratic in the number of columns — this is
// precisely the initialization cost the DBTF paper identifies as
// BCP_ALS's scalability bottleneck ("high space and time requirements
// which are proportional to the squares of the number of columns of each
// unfolded tensor"). The package keeps that behaviour deliberately and
// bounds it with a context and an explicit memory cap so large inputs
// fail the way the paper reports (out of time / out of memory) instead of
// thrashing the host.
package asso

import (
	"context"
	"errors"
	"fmt"

	"dbtf/internal/bitvec"
	"dbtf/internal/boolmat"
)

// ErrCandidateMemory is returned when materializing the m×m candidate set
// would exceed Options.MaxCandidateBytes — ASSO's documented O(m²) space
// bottleneck.
var ErrCandidateMemory = errors.New("asso: candidate matrix exceeds memory cap")

// Options configures an ASSO factorization.
type Options struct {
	// Rank is the number of basis vectors R. Required.
	Rank int
	// Tau is the association confidence threshold τ ∈ (0, 1]. Default 0.7
	// (the value the paper's experiments use for BCP_ALS).
	Tau float64
	// WPlus and WMinus weight covered ones and erroneously covered zeros
	// in the cover gain. Defaults 1 and 1.
	WPlus, WMinus int
	// MaxCandidateBytes caps the memory for the m×m candidate matrix.
	// Default 1 GiB.
	MaxCandidateBytes int64
}

func (o *Options) withDefaults() (Options, error) {
	opt := *o
	if opt.Rank < 1 || opt.Rank > boolmat.MaxRank {
		return opt, fmt.Errorf("asso: rank %d outside [1,%d]", opt.Rank, boolmat.MaxRank)
	}
	if opt.Tau == 0 {
		opt.Tau = 0.7
	}
	if opt.Tau <= 0 || opt.Tau > 1 {
		return opt, fmt.Errorf("asso: tau %v outside (0,1]", opt.Tau)
	}
	if opt.WPlus == 0 {
		opt.WPlus = 1
	}
	if opt.WMinus == 0 {
		opt.WMinus = 1
	}
	if opt.WPlus < 0 || opt.WMinus < 0 {
		return opt, fmt.Errorf("asso: negative cover weights %d/%d", opt.WPlus, opt.WMinus)
	}
	if opt.MaxCandidateBytes == 0 {
		opt.MaxCandidateBytes = 1 << 30
	}
	return opt, nil
}

// Result is an ASSO factorization X ≈ U ∘ S.
type Result struct {
	// U is the n×R usage matrix.
	U *boolmat.FactorMatrix
	// S is the R×m basis matrix.
	S *boolmat.Matrix
	// Error is |X ⊕ U ∘ S|.
	Error int64
}

// Factorize runs ASSO on x. The context bounds the run; cancellation is
// checked inside the quadratic candidate construction and each greedy
// round.
func Factorize(ctx context.Context, x *boolmat.Matrix, opts Options) (*Result, error) {
	opt, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	n, m := x.Rows(), x.Cols()
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("asso: empty matrix %dx%d", n, m)
	}
	cands, err := Candidates(ctx, x, opt.Tau, opt.MaxCandidateBytes)
	if err != nil {
		return nil, err
	}
	u := boolmat.NewFactor(n, opt.Rank)
	s := boolmat.NewMatrix(opt.Rank, m)
	covered := boolmat.NewMatrix(n, m) // cells covered by selected components

	for r := 0; r < opt.Rank; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestGain := 0
		bestCand := -1
		var bestUsage *bitvec.BitVec
		for ci := 0; ci < cands.Rows(); ci++ {
			cand := cands.Row(ci)
			if !cand.Any() {
				continue
			}
			gain, usage := coverGain(x, covered, cand, opt.WPlus, opt.WMinus)
			if gain > bestGain {
				bestGain, bestCand, bestUsage = gain, ci, usage
			}
		}
		if bestCand < 0 {
			break // no candidate improves the cover; remaining components stay empty
		}
		cand := cands.Row(bestCand)
		s.Row(r).Or(cand)
		bestUsage.Range(func(row int) {
			u.Set(row, r, true)
			covered.Row(row).Or(cand)
		})
	}

	rec := boolmat.MulFactor(u, s)
	return &Result{U: u, S: s, Error: int64(x.XorCount(rec))}, nil
}

// Candidates builds the thresholded column-association candidate matrix:
// row i is {j : ⟨x_:i, x_:j⟩ / ⟨x_:i, x_:i⟩ ≥ τ}. Cost and size are
// quadratic in the column count; maxBytes caps the materialized size.
func Candidates(ctx context.Context, x *boolmat.Matrix, tau float64, maxBytes int64) (*boolmat.Matrix, error) {
	m := x.Cols()
	if need := (int64(m)*int64(m) + 7) / 8; maxBytes > 0 && need > maxBytes {
		return nil, fmt.Errorf("%w: need %d bytes for %d×%d candidates", ErrCandidateMemory, need, m, m)
	}
	cols := make([]*bitvec.BitVec, m)
	for j := 0; j < m; j++ {
		col := bitvec.New(x.Rows())
		for i := 0; i < x.Rows(); i++ {
			if x.Get(i, j) {
				col.Set(i)
			}
		}
		cols[j] = col
	}
	cands := boolmat.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		base := cols[i].OnesCount()
		if base == 0 {
			continue
		}
		row := cands.Row(i)
		for j := 0; j < m; j++ {
			if float64(cols[i].AndCount(cols[j])) >= tau*float64(base) {
				row.Set(j)
			}
		}
	}
	return cands, nil
}

// coverGain evaluates a candidate basis vector against the uncovered part
// of x: for every row the usage bit is set exactly when the row's gain
// w⁺·(new ones covered) − w⁻·(zeros covered) is positive; the returned
// gain is the sum over used rows.
func coverGain(x, covered *boolmat.Matrix, cand *bitvec.BitVec, wPlus, wMinus int) (int, *bitvec.BitVec) {
	usage := bitvec.New(x.Rows())
	total := 0
	candPop := cand.OnesCount()
	for row := 0; row < x.Rows(); row++ {
		xr := x.Row(row)
		cr := covered.Row(row)
		// ones newly covered: |cand ∧ x_row| − |cand ∧ x_row ∧ covered|;
		// zeros covered: |cand| − |cand ∧ x_row|.
		onesAll := cand.AndCount(xr)
		tmp := cand.Copy()
		tmp.And(xr)
		onesOld := tmp.AndCount(cr)
		zeros := candPop - onesAll
		gain := wPlus*(onesAll-onesOld) - wMinus*zeros
		if gain > 0 {
			usage.Set(row)
			total += gain
		}
	}
	return total, usage
}
