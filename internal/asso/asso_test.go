package asso

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"dbtf/internal/boolmat"
)

func ctxb() context.Context { return context.Background() }

func TestValidation(t *testing.T) {
	x := boolmat.NewMatrix(2, 2)
	cases := []Options{
		{Rank: 0},
		{Rank: 65},
		{Rank: 2, Tau: -0.5},
		{Rank: 2, Tau: 1.5},
		{Rank: 2, WPlus: -1},
	}
	for i, opt := range cases {
		if _, err := Factorize(ctxb(), x, opt); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
	if _, err := Factorize(ctxb(), boolmat.NewMatrix(0, 3), Options{Rank: 1}); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestRecoverSingleBlock(t *testing.T) {
	// A single all-ones block is rank 1 and must be recovered exactly.
	x := boolmat.NewMatrix(10, 12)
	for i := 2; i < 7; i++ {
		for j := 3; j < 9; j++ {
			x.Set(i, j, true)
		}
	}
	res, err := Factorize(ctxb(), x, Options{Rank: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 {
		t.Fatalf("block not recovered: error %d", res.Error)
	}
	if got := boolmat.MulFactor(res.U, res.S); !got.Equal(x) {
		t.Fatal("reconstruction differs from x")
	}
}

func TestRecoverTwoDisjointBlocks(t *testing.T) {
	x := boolmat.NewMatrix(12, 12)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			x.Set(i, j, true)
		}
	}
	for i := 6; i < 12; i++ {
		for j := 6; j < 12; j++ {
			x.Set(i, j, true)
		}
	}
	res, err := Factorize(ctxb(), x, Options{Rank: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 {
		t.Fatalf("two blocks not recovered: error %d", res.Error)
	}
}

func TestErrorConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := boolmat.RandomMatrix(rng, 20, 25, 0.2)
	res, err := Factorize(ctxb(), x, Options{Rank: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(x.XorCount(boolmat.MulFactor(res.U, res.S))); res.Error != want {
		t.Fatalf("reported error %d != recomputed %d", res.Error, want)
	}
	if res.Error > int64(x.OnesCount()) {
		t.Fatalf("error %d worse than empty factorization %d", res.Error, x.OnesCount())
	}
}

func TestRankLimitedOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := boolmat.RandomMatrix(rng, 15, 15, 0.3)
	res, err := Factorize(ctxb(), x, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.U.Rank() != 3 || res.S.Rows() != 3 {
		t.Fatalf("shapes U:%d S:%d", res.U.Rank(), res.S.Rows())
	}
}

func TestCandidatesDefinition(t *testing.T) {
	// 4×3 matrix, columns: c0={0,1}, c1={0,1,2}, c2={3}.
	x := boolmat.NewMatrix(4, 3)
	x.Set(0, 0, true)
	x.Set(1, 0, true)
	x.Set(0, 1, true)
	x.Set(1, 1, true)
	x.Set(2, 1, true)
	x.Set(3, 2, true)
	cands, err := Candidates(ctxb(), x, 0.7, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 (confidence from c0): c0→c0 = 1, c0→c1 = 2/2 = 1, c0→c2 = 0.
	if !cands.Get(0, 0) || !cands.Get(0, 1) || cands.Get(0, 2) {
		t.Errorf("candidate row 0 wrong: %v %v %v", cands.Get(0, 0), cands.Get(0, 1), cands.Get(0, 2))
	}
	// Row 1: c1→c0 = 2/3 < 0.7 → unset; c1→c1 = 1.
	if cands.Get(1, 0) || !cands.Get(1, 1) {
		t.Errorf("candidate row 1 wrong")
	}
}

func TestMemoryCap(t *testing.T) {
	x := boolmat.NewMatrix(4, 1000) // candidates would need 1000² bits = 125 KB
	_, err := Factorize(ctxb(), x, Options{Rank: 1, MaxCandidateBytes: 1024})
	if !errors.Is(err, ErrCandidateMemory) {
		t.Fatalf("err = %v, want ErrCandidateMemory", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(3))
	x := boolmat.RandomMatrix(rng, 50, 200, 0.1)
	if _, err := Factorize(ctx, x, Options{Rank: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNoImprovingCandidateLeavesComponentsEmpty(t *testing.T) {
	// All-zero matrix: no candidate has positive gain; factors stay empty
	// and the error is 0.
	x := boolmat.NewMatrix(5, 5)
	res, err := Factorize(ctxb(), x, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 || res.U.OnesCount() != 0 {
		t.Fatalf("error %d, ones %d", res.Error, res.U.OnesCount())
	}
}
