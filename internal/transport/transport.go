// Package transport defines the seam between the cluster engine and a
// real distributed substrate. The engine in internal/cluster executes
// stages either on its simulated in-process machines (the default, and
// the deterministic oracle) or — when a Transport is configured — by
// shipping stage descriptors to remote executors over a wire protocol.
//
// The split mirrors a classic driver/executor design (Spark's, which the
// paper's DBTF runs on): the coordinator keeps the whole algorithm —
// control flow, RNG, column commits, checkpointing — and remote machines
// are stage servers holding replicated state (the tensor, the partitioned
// unfoldings, the current factor matrices) that execute named stage kinds
// against it. Because the executors run the byte-identical kernels on
// byte-identical state, a run over any Transport must produce factors
// bit-identical to the simulated engine's for the same seed; the
// differential tests enforce exactly that.
//
// The package holds the interfaces and the length-prefixed gob frame
// codec; the TCP implementation lives in transport/tcp.
package transport

import "context"

// Kind names a remote stage's computation. The set is closed: executors
// reject unknown kinds.
type Kind uint8

const (
	// KindBuild builds one partition's column-update task for a factor
	// update: block summers resolved through the executor's cache
	// registry plus the buffers the column loop needs.
	KindBuild Kind = iota + 1
	// KindEval evaluates one column of a factor update on one partition,
	// returning the per-row error deltas.
	KindEval
	// KindTotalError computes one mode-1 partition's share of the total
	// reconstruction error.
	KindTotalError
)

// String returns the kind's wire-independent name.
func (k Kind) String() string {
	switch k {
	case KindBuild:
		return "build"
	case KindEval:
		return "eval"
	case KindTotalError:
		return "total-error"
	}
	return "unknown"
}

// Spec describes one remote stage: what to run, not how. Tasks index
// partitions; the executor resolves everything else from its replicated
// state.
type Spec struct {
	// Name is the stage label, shared with the trace stream.
	Name string
	// Kind selects the computation.
	Kind Kind
	// Mode is the factor update's mode index (0=A, 1=B, 2=C) for
	// KindBuild and KindEval; unused for KindTotalError.
	Mode int
	// Col is the column under evaluation for KindEval.
	Col int
	// Tasks is the number of tasks (partitions) in the stage.
	Tasks int
}

// StateKind names a replicated-state push from the coordinator to every
// executor.
type StateKind uint8

const (
	// StateSetup ships the run's immutable inputs: the tensor and the
	// decomposition options the executors need to rebuild everything else
	// (partitioned unfoldings, caches) locally. Re-sent in full when a
	// lost machine rejoins — the re-shipped partitions of the recovery
	// protocol.
	StateSetup StateKind = iota + 1
	// StateFactors replaces the three factor matrices — the per-iteration
	// broadcast working set. It invalidates executor-side column tasks
	// and caches built over previous factor versions.
	StateFactors
	// StateColumn applies one committed column of one factor matrix in
	// place, keeping executor state identical to the coordinator's
	// between full broadcasts.
	StateColumn
)

// String returns the state kind's name.
func (k StateKind) String() string {
	switch k {
	case StateSetup:
		return "setup"
	case StateFactors:
		return "factors"
	case StateColumn:
		return "column"
	}
	return "unknown"
}

// TaskResult is one completed remote task: which machine ran it, the
// measured execution nanos (charged to the simulated clock exactly like a
// local task's duration), and the task's output payload (nil for
// side-effect-only kinds such as KindBuild).
type TaskResult struct {
	Task    int
	Machine int
	Nanos   int64
	Payload []byte
}

// LivenessEvent is one machine liveness transition observed by the
// transport: Up=false when a connection was declared dead (the machine is
// lost), Up=true when a dead machine was redialed and replayed back into
// service (the machine rejoined).
type LivenessEvent struct {
	Machine int
	Up      bool
}

// Transport executes remote stages for the cluster engine. Implementations
// own connection management and failure detection; the engine owns all
// accounting. The engine calls Membership at every remote stage boundary
// and applies the reported transitions to its liveness books (trace
// events, loss handlers, recovery charges) before opening the stage —
// matching the simulated engine's rule that machines are lost and rejoin
// only at stage boundaries.
type Transport interface {
	// Machines returns the executor count M; must equal the cluster's.
	Machines() int
	// Membership detects failed connections (read deadline, heartbeat),
	// attempts to redial dead machines and replay their state, and
	// returns the liveness transitions since the previous call, in
	// detection order.
	Membership(ctx context.Context) []LivenessEvent
	// PushState replicates one state blob to every live executor. A
	// machine that misses a push because its connection died is marked
	// down and receives a full replay when it rejoins. PushState fails
	// only when no live executor remains.
	PushState(ctx context.Context, kind StateKind, payload []byte) error
	// Run executes the stage: every task in [0, spec.Tasks) runs on its
	// home machine (task mod M) or, while that machine is down, on the
	// next live machine in ring order — the engine's reassignment rule.
	// deliver is called sequentially, once per task, in completion order.
	// A task whose machine dies mid-stage is rerouted and re-executed
	// (tasks are idempotent by the engine's contract); Run fails only
	// when a task has no live machine left or ctx is done.
	Run(ctx context.Context, spec Spec, deliver func(TaskResult) error) error
	// WireBytes returns cumulative bytes written to and read from the
	// real sockets. The engine emits per-stage deltas as trace events;
	// wire bytes are measurements, not part of the modeled traffic
	// accounting.
	WireBytes() (sent, received int64)
	// Close tears down every connection.
	Close() error
}

// Host is the executor side of the protocol: replicated state plus stage
// execution. Implementations must be safe for one request at a time (the
// wire protocol is sequential per connection); the tcp server serializes
// calls.
type Host interface {
	// Apply installs one replicated-state blob.
	Apply(kind StateKind, payload []byte) error
	// RunTask executes one task of a stage and returns its payload.
	RunTask(spec Spec, task int) ([]byte, error)
}

// BatchHost is an optional extension of Host: an executor that runs a
// whole stage batch itself, typically fanning the tasks (and their row
// ranges) out across its machine's OS threads. Servers type-assert for
// it and fall back to per-task RunTask calls when absent.
//
// The reply contract matches running the tasks one by one: on success
// RunBatch returns exactly one TaskOutput per requested task, in the
// order given, each with its own measured nanos. Any task failure fails
// the whole batch — the all-or-nothing rule the coordinator's rerouting
// relies on — with an error identifying the failing task; when several
// tasks fail, the error names the one earliest in the batch order, so a
// parallel executor reports deterministically.
type BatchHost interface {
	Host
	RunBatch(spec Spec, tasks []int) ([]TaskOutput, error)
}
