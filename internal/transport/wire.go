package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// ProtoVersion is the wire protocol version carried in the handshake;
// mismatched peers refuse each other instead of mis-decoding.
const ProtoVersion = 1

// DefaultMaxFrame bounds a frame body when the caller does not choose a
// tighter limit: large enough for a pushed tensor, small enough that a
// corrupt length prefix cannot ask for absurd memory.
const DefaultMaxFrame = 1 << 30

// readChunk caps the per-read allocation while a frame body streams in,
// so a hostile length prefix backed by a short stream never costs more
// than one chunk of memory beyond the bytes actually received.
const readChunk = 64 << 10

// MsgType identifies a protocol message.
type MsgType uint8

const (
	// MsgHello opens a connection: the coordinator announces the protocol
	// version, the executor's machine index, and the cluster size.
	MsgHello MsgType = iota + 1
	// MsgHelloOK acknowledges a compatible MsgHello.
	MsgHelloOK
	// MsgState pushes one replicated-state blob (State, Payload).
	MsgState
	// MsgAck acknowledges a MsgState.
	MsgAck
	// MsgRun requests execution of Tasks under Spec.
	MsgRun
	// MsgResult returns a MsgRun's outputs.
	MsgResult
	// MsgError reports a request that failed on the executor; Error holds
	// the message.
	MsgError
	// MsgPing and MsgPong are the liveness heartbeat.
	MsgPing
	MsgPong
)

// TaskOutput is one task's result inside a MsgResult: the executor's
// measured nanos and the output payload.
type TaskOutput struct {
	Task    int
	Nanos   int64
	Payload []byte
}

// Msg is the single wire message shape; which fields apply depends on
// Type. Slices, not maps, so gob encoding is deterministic.
type Msg struct {
	Type MsgType
	// Proto, Machine and Machines are the MsgHello handshake fields.
	Proto, Machine, Machines int
	// State and Payload carry a MsgState push.
	State   StateKind
	Payload []byte
	// Spec and Tasks carry a MsgRun request.
	Spec  Spec
	Tasks []int
	// Outputs carries a MsgResult.
	Outputs []TaskOutput
	// Error carries a MsgError.
	Error string
}

// WriteFrame writes one length-prefixed gob frame — a big-endian u32 body
// length followed by the gob-encoded message, a fresh encoder per frame so
// frames are self-contained and survive reconnects — and returns the bytes
// written.
func WriteFrame(w io.Writer, m *Msg) (int, error) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return 0, fmt.Errorf("transport: encode frame: %w", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b, uint32(len(b)-4))
	n, err := w.Write(b)
	if err != nil {
		return n, fmt.Errorf("transport: write frame: %w", err)
	}
	return n, nil
}

// ReadFrame reads one frame, enforcing maxFrame (<=0 means
// DefaultMaxFrame) on the length prefix before anything is allocated, and
// returns the decoded message with the bytes consumed. The body is read
// in bounded chunks, so a length prefix larger than the data actually
// sent errors out after allocating at most one chunk beyond the received
// bytes; a frame whose gob body ends before the declared length, or
// continues past it, is rejected as corrupt.
func ReadFrame(r io.Reader, maxFrame int64) (*Msg, int, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, fmt.Errorf("transport: truncated frame header: %w", err)
		}
		return nil, 0, err
	}
	n := int64(binary.BigEndian.Uint32(hdr[:]))
	if n == 0 {
		return nil, 4, errors.New("transport: empty frame")
	}
	if n > maxFrame {
		return nil, 4, fmt.Errorf("transport: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	body := make([]byte, 0, min64(n, readChunk))
	for int64(len(body)) < n {
		chunk := min64(n-int64(len(body)), readChunk)
		start := int64(len(body))
		body = append(body, make([]byte, chunk)...)
		got, err := io.ReadFull(r, body[start:])
		if err != nil {
			return nil, 4 + len(body[:start]) + got, fmt.Errorf("transport: truncated frame body (%d of %d bytes): %w", start+int64(got), n, err)
		}
	}
	br := bytes.NewReader(body)
	m := &Msg{}
	if err := gob.NewDecoder(br).Decode(m); err != nil {
		return nil, 4 + len(body), fmt.Errorf("transport: decode frame: %w", err)
	}
	if br.Len() != 0 {
		return nil, 4 + len(body), fmt.Errorf("transport: %d trailing bytes after frame body", br.Len())
	}
	return m, 4 + len(body), nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
