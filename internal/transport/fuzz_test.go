package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzWireDecode hammers the frame decoder with arbitrary byte streams:
// truncated frames, oversized length prefixes, and garbage gob payloads
// must all error cleanly — never panic, and never allocate beyond the
// fuzz limit no matter what the length prefix claims.
func FuzzWireDecode(f *testing.F) {
	seed := func(m *Msg) []byte {
		var buf bytes.Buffer
		if _, err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(&Msg{Type: MsgHello, Proto: ProtoVersion, Machine: 1, Machines: 3}))
	f.Add(seed(&Msg{Type: MsgState, State: StateSetup, Payload: bytes.Repeat([]byte{7}, 100)}))
	f.Add(seed(&Msg{Type: MsgRun, Spec: Spec{Name: "eval:B", Kind: KindEval, Col: 3, Tasks: 4}, Tasks: []int{1, 2}}))
	f.Add(seed(&Msg{Type: MsgResult, Outputs: []TaskOutput{{Task: 0, Nanos: 5, Payload: []byte{1}}}}))
	valid := seed(&Msg{Type: MsgPing})
	f.Add(valid[:2])                      // truncated header
	f.Add(valid[:len(valid)-1])           // truncated body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // absurd length prefix
	f.Add([]byte{0, 0, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8})

	const limit = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		msg, n, err := ReadFrame(r, limit)
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d bytes of a %d-byte input", n, len(data))
		}
		if err != nil {
			return
		}
		if msg == nil {
			t.Fatal("nil message without error")
		}
		// A frame that decodes must re-encode: the decoded form is a valid
		// message, not partially-filled garbage.
		var buf bytes.Buffer
		if _, werr := WriteFrame(&buf, msg); werr != nil {
			t.Fatalf("re-encoding a decoded frame failed: %v", werr)
		}
		// The decoder consumed exactly header + declared body.
		declared := int(binary.BigEndian.Uint32(data[:4]))
		if n != 4+declared {
			t.Fatalf("consumed %d bytes, frame declared 4+%d", n, declared)
		}
	})
}
