package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	msgs := []*Msg{
		{Type: MsgHello, Proto: ProtoVersion, Machine: 2, Machines: 4},
		{Type: MsgState, State: StateFactors, Payload: []byte{1, 2, 3}},
		{Type: MsgRun, Spec: Spec{Name: "eval:A", Kind: KindEval, Mode: 0, Col: 7, Tasks: 5}, Tasks: []int{0, 3}},
		{Type: MsgResult, Outputs: []TaskOutput{{Task: 3, Nanos: 42, Payload: []byte{9}}, {Task: 0, Nanos: 1}}},
		{Type: MsgError, Error: "boom"},
		{Type: MsgPing},
	}
	var buf bytes.Buffer
	var written int
	for _, m := range msgs {
		n, err := WriteFrame(&buf, m)
		if err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		written += n
	}
	if written != buf.Len() {
		t.Fatalf("WriteFrame reported %d bytes, buffer holds %d", written, buf.Len())
	}
	var read int
	for i, want := range msgs {
		got, n, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		read += n
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if read != written {
		t.Fatalf("ReadFrame consumed %d bytes of %d written", read, written)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, &Msg{Type: MsgPing}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]), 0)
		if err == nil {
			t.Fatalf("truncation at %d of %d bytes decoded successfully", cut, len(whole))
		}
	}
}

func TestReadFrameOversizedPrefix(t *testing.T) {
	// A prefix claiming far more than the limit must be rejected before any
	// body allocation.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<31-1)
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]), 1<<20)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized prefix: got %v, want limit error", err)
	}

	// A prefix within the limit but backed by a short stream must error
	// after reading what exists, not allocate the full claimed size.
	frame := append(hdr[:0:0], 0, 1, 0, 0) // claims 64 KiB
	frame = append(frame, make([]byte, 10)...)
	_, _, err = ReadFrame(bytes.NewReader(frame), 1<<20)
	if err == nil || !strings.Contains(err.Error(), "truncated frame body") {
		t.Fatalf("short body: got %v, want truncation error", err)
	}
}

func TestReadFrameGarbageAndTrailing(t *testing.T) {
	garbage := []byte{0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef}
	if _, _, err := ReadFrame(bytes.NewReader(garbage), 0); err == nil {
		t.Fatal("garbage body decoded successfully")
	}

	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, &Msg{Type: MsgPong}); err != nil {
		t.Fatal(err)
	}
	// Inflate the declared length so the gob body ends before the frame
	// does: the decoder must reject the trailing bytes.
	b := append([]byte(nil), buf.Bytes()...)
	b = append(b, 0, 0, 0)
	binary.BigEndian.PutUint32(b, uint32(len(b)-4))
	_, _, err := ReadFrame(bytes.NewReader(b), 0)
	if err == nil || !strings.Contains(err.Error(), "trailing bytes") {
		t.Fatalf("padded frame: got %v, want trailing-bytes error", err)
	}

	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0}), 0); err == nil {
		t.Fatal("empty frame decoded successfully")
	}
}

func TestReadFrameEOF(t *testing.T) {
	_, _, err := ReadFrame(bytes.NewReader(nil), 0)
	if err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}
