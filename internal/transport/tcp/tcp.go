// Package tcp is the multi-process transport backend: each cluster machine
// is a separate OS process (cmd/dbtf-worker) speaking the length-prefixed
// gob protocol of package transport over a TCP connection.
//
// The coordinator side (Dial) implements transport.Transport for the
// driver; the executor side (Serve) pumps frames into a transport.Host.
// Failure handling mirrors the simulated engine's recovery protocol:
// a connection error marks the machine down and surfaces as a
// LivenessEvent at the next stage boundary, its queued work reroutes to
// the ring-successor live machine, and a machine that redials is replayed
// the full state history (setup, current factors, columns since) before it
// is reported back up.
package tcp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dbtf/internal/transport"
)

// Config configures Dial.
type Config struct {
	// Addrs lists the worker addresses; machine m is Addrs[m].
	Addrs []string
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
	// CallTimeout bounds one request/response exchange and is therefore
	// the loss detector: a worker that does not answer within it is
	// treated as lost. It must cover the slowest single stage batch.
	// Default 2m.
	CallTimeout time.Duration
	// RedialBackoff is the minimum interval between reconnection attempts
	// to a down worker. Default 250ms.
	RedialBackoff time.Duration
	// MaxFrame bounds accepted frame sizes. Default transport.DefaultMaxFrame.
	MaxFrame int64
}

func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 2 * time.Minute
	}
	if c.RedialBackoff == 0 {
		c.RedialBackoff = 250 * time.Millisecond
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = transport.DefaultMaxFrame
	}
	return c
}

// errDown distinguishes connection-level failures (reroute the batch,
// report the machine lost) from executor-reported errors (fatal to the
// run, connection still healthy).
var errDown = errors.New("tcp: worker connection down")

// remoteError is an error the executor reported over a healthy
// connection: a failed task or a rejected state push.
type remoteError struct{ msg string }

func (e *remoteError) Error() string { return e.msg }

// worker is the coordinator's view of one machine.
type worker struct {
	addr string
	mu   sync.Mutex
	// conn is nil while the worker is down.
	conn     net.Conn
	lastDial time.Time
}

// Coordinator implements transport.Transport over per-worker TCP
// connections. The driver calls it from one goroutine; internal
// concurrency (parallel stage batches) is confined to Run.
type Coordinator struct {
	cfg     Config
	workers []*worker

	// pending accumulates liveness transitions detected since the last
	// Membership call, in detection order.
	pmu     sync.Mutex
	pending []transport.LivenessEvent

	// Replay log for rejoining workers: the setup blob, the latest factor
	// snapshot, and the column commits since that snapshot.
	setup   []byte
	factors []byte
	columns [][]byte

	sent  atomic.Int64
	recvd atomic.Int64
}

// Dial connects to every worker and performs the protocol handshake.
// All-or-nothing: if any worker is unreachable the whole dial fails, so a
// run never silently starts degraded.
func Dial(cfg Config) (*Coordinator, error) {
	return DialContext(context.Background(), cfg)
}

// DialContext is Dial with a caller-supplied context covering the whole
// connect phase — both the TCP connects and the protocol handshakes.
// Cancelling ctx aborts a dial that would otherwise stall until
// CallTimeout on a worker that accepts the connection but never answers
// the handshake.
func DialContext(ctx context.Context, cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("tcp: no worker addresses")
	}
	c := &Coordinator{cfg: cfg}
	for _, addr := range cfg.Addrs {
		c.workers = append(c.workers, &worker{addr: addr})
	}
	for m, w := range c.workers {
		if err := c.dialWorker(ctx, m, w); err != nil {
			if cerr := c.Close(); cerr != nil {
				return nil, fmt.Errorf("%w (and closing dialed workers: %v)", err, cerr)
			}
			return nil, err
		}
	}
	return c, nil
}

// dialWorker connects and handshakes machine m. Caller must not hold w.mu.
// ctx bounds both the connect and the handshake exchange; the redial path
// passes the stage-boundary ctx so a recovering run stays cancellable.
func (c *Coordinator) dialWorker(ctx context.Context, m int, w *worker) error {
	d := net.Dialer{Timeout: c.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", w.addr)
	if err != nil {
		return fmt.Errorf("tcp: dial worker %d (%s): %w", m, w.addr, err)
	}
	hello := &transport.Msg{
		Type:     transport.MsgHello,
		Proto:    transport.ProtoVersion,
		Machine:  m,
		Machines: len(c.workers),
	}
	// The handshake I/O only observes deadlines, not ctx; a watcher closes
	// the connection on cancellation to unblock the exchange immediately.
	stop := make(chan struct{})
	watched := make(chan struct{})
	go func() {
		defer close(watched)
		select {
		case <-ctx.Done():
			// Abandoning the handshake; the close error adds nothing.
			_ = conn.Close()
		case <-stop:
		}
	}()
	resp, err := c.exchange(conn, hello)
	close(stop)
	// The watcher exits as soon as stop closes (the line above), so this
	// join is bounded by a select already watching ctx.
	<-watched //dbtf:blocking watcher selects on ctx.Done/stop and stop just closed
	if err != nil {
		if ctx.Err() != nil {
			// The watcher already closed the connection.
			return fmt.Errorf("tcp: handshake with worker %d (%s): %w", m, w.addr, ctx.Err())
		}
		if cerr := conn.Close(); cerr != nil {
			err = fmt.Errorf("%w (and closing: %v)", err, cerr)
		}
		return fmt.Errorf("tcp: handshake with worker %d (%s): %w", m, w.addr, err)
	}
	if resp.Type != transport.MsgHelloOK {
		if cerr := conn.Close(); cerr != nil {
			return fmt.Errorf("tcp: worker %d (%s) rejected handshake: %s (and closing: %v)", m, w.addr, resp.Error, cerr)
		}
		return fmt.Errorf("tcp: worker %d (%s) rejected handshake: %s", m, w.addr, resp.Error)
	}
	w.mu.Lock()
	w.conn = conn
	w.lastDial = time.Now()
	w.mu.Unlock()
	return nil
}

// exchange writes one frame and reads one reply on a raw connection,
// under the call timeout, charging the wire counters.
func (c *Coordinator) exchange(conn net.Conn, m *transport.Msg) (*transport.Msg, error) {
	if err := conn.SetDeadline(time.Now().Add(c.cfg.CallTimeout)); err != nil {
		return nil, err
	}
	n, err := transport.WriteFrame(conn, m)
	c.sent.Add(int64(n))
	if err != nil {
		return nil, err
	}
	resp, rn, err := transport.ReadFrame(conn, c.cfg.MaxFrame)
	c.recvd.Add(int64(rn))
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// call performs one request/response with machine m. A connection-level
// failure marks the machine down and returns errDown; an executor-reported
// error returns a *remoteError with the connection kept alive.
func (c *Coordinator) call(m int, msg *transport.Msg) (*transport.Msg, error) {
	w := c.workers[m]
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conn == nil {
		return nil, errDown
	}
	resp, err := c.exchange(w.conn, msg)
	if err != nil {
		c.markDownLocked(m, w)
		return nil, fmt.Errorf("%w: machine %d: %v", errDown, m, err)
	}
	if resp.Type == transport.MsgError {
		return nil, &remoteError{msg: fmt.Sprintf("worker %d: %s", m, resp.Error)}
	}
	return resp, nil
}

// markDownLocked closes machine m's connection and queues the loss event.
// Caller holds w.mu.
func (c *Coordinator) markDownLocked(m int, w *worker) {
	if w.conn == nil {
		return
	}
	// The connection is already broken; a close error adds nothing.
	_ = w.conn.Close()
	w.conn = nil
	c.pmu.Lock()
	c.pending = append(c.pending, transport.LivenessEvent{Machine: m, Up: false})
	c.pmu.Unlock()
}

func (c *Coordinator) alive(m int) bool {
	w := c.workers[m]
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.conn != nil
}

// Machines implements transport.Transport.
func (c *Coordinator) Machines() int { return len(c.workers) }

// WireBytes implements transport.Transport.
func (c *Coordinator) WireBytes() (int64, int64) { return c.sent.Load(), c.recvd.Load() }

// Close tears down every worker connection.
func (c *Coordinator) Close() error {
	var first error
	for _, w := range c.workers {
		w.mu.Lock()
		if w.conn != nil {
			if err := w.conn.Close(); err != nil && first == nil {
				first = err
			}
			w.conn = nil
		}
		w.mu.Unlock()
	}
	return first
}

// Membership implements transport.Transport: it reports the liveness
// transitions since the last stage boundary. Losses detected mid-stage
// were queued by call; here the coordinator additionally pings live
// workers (catching silent deaths between stages) and attempts to redial
// down workers, replaying the state history before reporting them up.
func (c *Coordinator) Membership(ctx context.Context) []transport.LivenessEvent {
	for m := range c.workers {
		if !c.alive(m) {
			continue
		}
		// A failed ping queues the loss itself via call → markDownLocked.
		if _, err := c.call(m, &transport.Msg{Type: transport.MsgPing}); err == nil {
			continue
		}
	}
	for m, w := range c.workers {
		if c.alive(m) || ctx.Err() != nil {
			continue
		}
		w.mu.Lock()
		recent := time.Since(w.lastDial) < c.cfg.RedialBackoff
		w.mu.Unlock()
		if recent {
			continue
		}
		w.mu.Lock()
		w.lastDial = time.Now()
		w.mu.Unlock()
		if err := c.dialWorker(ctx, m, w); err != nil {
			continue // still down; try again next boundary
		}
		if err := c.replay(m); err != nil {
			// Replay failure re-queued the loss (connection) or means the
			// worker is misbehaving (remote error) — drop the connection
			// either way and retry at a later boundary.
			w.mu.Lock()
			c.markDownLocked(m, w)
			w.mu.Unlock()
			continue
		}
		c.pmu.Lock()
		c.pending = append(c.pending, transport.LivenessEvent{Machine: m, Up: true})
		c.pmu.Unlock()
	}
	c.pmu.Lock()
	ev := c.pending
	c.pending = nil
	c.pmu.Unlock()
	return ev
}

// replay ships the recorded state history to a freshly redialed machine:
// the rejoin path of the recovery protocol. The setup replay resets the
// worker, so replaying to a process that never actually died is safe.
func (c *Coordinator) replay(m int) error {
	push := func(kind transport.StateKind, payload []byte) error {
		if payload == nil {
			return nil
		}
		resp, err := c.call(m, &transport.Msg{Type: transport.MsgState, State: kind, Payload: payload})
		if err != nil {
			return err
		}
		if resp.Type != transport.MsgAck {
			return &remoteError{msg: fmt.Sprintf("worker %d: unexpected reply %d to state replay", m, resp.Type)}
		}
		return nil
	}
	if err := push(transport.StateSetup, c.setup); err != nil {
		return err
	}
	if err := push(transport.StateFactors, c.factors); err != nil {
		return err
	}
	for _, col := range c.columns {
		if err := push(transport.StateColumn, col); err != nil {
			return err
		}
	}
	return nil
}

// PushState implements transport.Transport: record the blob in the replay
// log, then ship it to every live worker. Workers that fail mid-push are
// marked down (they will be replayed the same blob on rejoin); the push
// only errors if an executor rejects the state or no live workers remain.
func (c *Coordinator) PushState(ctx context.Context, kind transport.StateKind, payload []byte) error {
	switch kind {
	case transport.StateSetup:
		c.setup, c.factors, c.columns = payload, nil, nil
	case transport.StateFactors:
		c.factors, c.columns = payload, nil
	case transport.StateColumn:
		c.columns = append(c.columns, payload)
	}
	live := 0
	for m := range c.workers {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !c.alive(m) {
			continue
		}
		resp, err := c.call(m, &transport.Msg{Type: transport.MsgState, State: kind, Payload: payload})
		switch {
		case errors.Is(err, errDown):
			continue
		case err != nil:
			return fmt.Errorf("tcp: state push (%s): %w", kind, err)
		case resp.Type != transport.MsgAck:
			return fmt.Errorf("tcp: state push (%s): worker %d replied %d, want ack", kind, m, resp.Type)
		}
		live++
	}
	if live == 0 {
		return fmt.Errorf("tcp: state push (%s): no live workers", kind)
	}
	return nil
}

// batch is one machine's share of a stage: the tasks whose home is that
// machine, executed wherever the ring currently routes them.
type batch struct {
	home  int
	tasks []int
}

type batchOutcome struct {
	b    batch
	outs []transport.TaskOutput
	exec int
	err  error
}

// executorFor routes a batch: the home machine if it is live, else the
// first live ring successor — the same successor rule the cluster engine's
// reassignment uses, so simulated and real reassignment agree.
func (c *Coordinator) executorFor(home int) (int, error) {
	n := len(c.workers)
	for i := 0; i < n; i++ {
		m := (home + i) % n
		if c.alive(m) {
			return m, nil
		}
	}
	return 0, errors.New("tcp: no live workers")
}

// Run implements transport.Transport: partition the stage's tasks into
// per-home-machine batches, execute the batches concurrently, and deliver
// results sequentially. A batch whose connection dies is relaunched on the
// ring successor; executor replies are all-or-nothing per batch, so a
// retried batch never double-delivers.
func (c *Coordinator) Run(ctx context.Context, spec transport.Spec, deliver func(transport.TaskResult) error) error {
	n := len(c.workers)
	byHome := make([][]int, n)
	for t := 0; t < spec.Tasks; t++ {
		byHome[t%n] = append(byHome[t%n], t)
	}
	var queue []batch
	for home, tasks := range byHome {
		if len(tasks) > 0 {
			queue = append(queue, batch{home: home, tasks: tasks})
		}
	}
	for round := 0; len(queue) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if round > n {
			return errors.New("tcp: stage retries exceeded machine count")
		}
		results := make(chan batchOutcome, len(queue))
		for _, b := range queue {
			exec, err := c.executorFor(b.home)
			if err != nil {
				return fmt.Errorf("tcp: stage %q: %w", spec.Name, err)
			}
			go func(b batch, exec int) {
				resp, err := c.call(exec, &transport.Msg{Type: transport.MsgRun, Spec: spec, Tasks: b.tasks})
				if err != nil {
					results <- batchOutcome{b: b, exec: exec, err: err}
					return
				}
				if resp.Type != transport.MsgResult || len(resp.Outputs) != len(b.tasks) {
					results <- batchOutcome{b: b, exec: exec,
						err: &remoteError{msg: fmt.Sprintf("worker %d: malformed stage reply", exec)}}
					return
				}
				results <- batchOutcome{b: b, exec: exec, outs: resp.Outputs}
			}(b, exec)
		}
		var requeue []batch
		var fatal error
		for range queue {
			var o batchOutcome
			select {
			case o = <-results:
			case <-ctx.Done():
				// Abandon the round: results is buffered to len(queue), so
				// stragglers deposit their outcome and exit without a
				// receiver, and each in-flight call is bounded by
				// CallTimeout. Before this select a cancelled run sat in
				// the bare receive until the slowest call timed out.
				return ctx.Err()
			}
			switch {
			case errors.Is(o.err, errDown):
				requeue = append(requeue, o.b)
			case o.err != nil:
				if fatal == nil {
					fatal = o.err
				}
			case fatal == nil:
				for _, out := range o.outs {
					if err := deliver(transport.TaskResult{
						Task:    out.Task,
						Machine: o.exec,
						Nanos:   out.Nanos,
						Payload: out.Payload,
					}); err != nil && fatal == nil {
						fatal = err
					}
				}
			}
		}
		if fatal != nil {
			return fatal
		}
		queue = requeue
	}
	return nil
}

var _ transport.Transport = (*Coordinator)(nil)
