package tcp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dbtf/internal/transport"
)

// writeTimeout bounds a single reply write on the executor side so a
// wedged coordinator cannot pin a worker in a blocked write forever.
const writeTimeout = time.Minute

// Serve runs the executor side of the protocol on lis, pumping frames
// into host, until the listener is closed. Each connection is a
// sequential request/response stream served on its own goroutine; the
// coordinator holds one connection per worker, so concurrency only
// arises across a redial racing a dying connection, and the host's own
// lock serializes those. Closing the listener closes every active
// connection before Serve returns. logf, when non-nil, receives one line
// per connection transition.
func Serve(lis net.Listener, host transport.Host, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		conns = map[net.Conn]struct{}{}
	)
	for {
		conn, err := lis.Accept()
		if err != nil {
			mu.Lock()
			for c := range conns {
				// The readers notice the close; their errors are theirs.
				_ = c.Close()
			}
			mu.Unlock()
			wg.Wait()
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("tcp: accept: %w", err)
		}
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			logf("coordinator connected from %s", conn.RemoteAddr())
			err := serveConn(conn, host)
			mu.Lock()
			delete(conns, conn)
			mu.Unlock()
			if err != nil {
				logf("connection from %s ended: %v", conn.RemoteAddr(), err)
			} else {
				logf("connection from %s closed", conn.RemoteAddr())
			}
		}(conn)
	}
}

// serveConn handshakes and then answers requests until the connection
// drops. Every request produces exactly one reply frame, in order; this
// strict alternation is what lets the coordinator treat a batch reply as
// all-or-nothing when it reroutes work after a loss.
func serveConn(conn net.Conn, host transport.Host) error {
	defer func() {
		// Either the peer is gone or we already have a more precise error.
		_ = conn.Close()
	}()
	reply := func(m *transport.Msg) error {
		if err := conn.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil {
			return err
		}
		_, err := transport.WriteFrame(conn, m)
		return err
	}
	hello, _, err := transport.ReadFrame(conn, transport.DefaultMaxFrame)
	if err != nil {
		return fmt.Errorf("reading hello: %w", err)
	}
	if hello.Type != transport.MsgHello || hello.Proto != transport.ProtoVersion {
		// Best effort: the handshake failed; the close is the real answer.
		_ = reply(&transport.Msg{Type: transport.MsgError,
			Error: fmt.Sprintf("bad handshake: type=%d proto=%d (want hello/%d)", hello.Type, hello.Proto, transport.ProtoVersion)})
		return fmt.Errorf("bad handshake: type=%d proto=%d", hello.Type, hello.Proto)
	}
	if err := reply(&transport.Msg{Type: transport.MsgHelloOK, Proto: transport.ProtoVersion}); err != nil {
		return fmt.Errorf("writing hello ack: %w", err)
	}
	for {
		req, _, err := transport.ReadFrame(conn, transport.DefaultMaxFrame)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		var resp *transport.Msg
		switch req.Type {
		case transport.MsgPing:
			resp = &transport.Msg{Type: transport.MsgPong}
		case transport.MsgState:
			if err := host.Apply(req.State, req.Payload); err != nil {
				resp = &transport.Msg{Type: transport.MsgError, Error: err.Error()}
			} else {
				resp = &transport.Msg{Type: transport.MsgAck}
			}
		case transport.MsgRun:
			resp = runBatch(host, req)
		default:
			resp = &transport.Msg{Type: transport.MsgError, Error: fmt.Sprintf("unexpected message type %d", req.Type)}
		}
		if err := reply(resp); err != nil {
			return err
		}
	}
}

// runBatch executes one stage batch. The reply is all-or-nothing: any
// task failure turns the whole batch into an error frame, so the
// coordinator never has to reconcile a partially delivered batch. Hosts
// implementing transport.BatchHost run the batch themselves (fanning
// tasks across the machine's threads) under the same contract; the
// coordinator cannot tell the two apart except by speed.
func runBatch(host transport.Host, req *transport.Msg) *transport.Msg {
	if bh, ok := host.(transport.BatchHost); ok {
		outs, err := bh.RunBatch(req.Spec, req.Tasks)
		if err != nil {
			return &transport.Msg{Type: transport.MsgError,
				Error: fmt.Sprintf("stage %q %v", req.Spec.Name, err)}
		}
		return &transport.Msg{Type: transport.MsgResult, Outputs: outs}
	}
	outs := make([]transport.TaskOutput, 0, len(req.Tasks))
	for _, task := range req.Tasks {
		start := time.Now()
		payload, err := host.RunTask(req.Spec, task)
		if err != nil {
			return &transport.Msg{Type: transport.MsgError,
				Error: fmt.Sprintf("stage %q task %d: %v", req.Spec.Name, task, err)}
		}
		outs = append(outs, transport.TaskOutput{
			Task:    task,
			Nanos:   time.Since(start).Nanoseconds(),
			Payload: payload,
		})
	}
	return &transport.Msg{Type: transport.MsgResult, Outputs: outs}
}
