package tcp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dbtf/internal/transport"
)

// writeTimeout bounds a single reply write on the executor side so a
// wedged coordinator cannot pin a worker in a blocked write forever.
const writeTimeout = time.Minute

// Server runs the executor side of the protocol: it pumps frames from
// coordinator connections into a transport.Host and supports a graceful
// drain (Shutdown) that finishes in-flight stage batches instead of
// dying mid-batch.
type Server struct {
	host transport.Host
	logf func(format string, args ...any)

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]*connState //dbtf:guardedby mu
	draining bool                    //dbtf:guardedby mu
	wg       sync.WaitGroup
}

// connState tracks one connection's drain-relevant state.
type connState struct {
	busy bool // a request frame is being processed; guarded by Server.mu
}

// NewServer returns a Server executing stage work on host. logf, when
// non-nil, receives one line per connection transition.
func NewServer(host transport.Host, logf func(format string, args ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{host: host, logf: logf, conns: map[net.Conn]*connState{}}
}

// Serve accepts coordinator connections on lis until the listener is
// closed. Each connection is a sequential request/response stream served
// on its own goroutine; the coordinator holds one connection per worker,
// so concurrency only arises across a redial racing a dying connection,
// and the host's own lock serializes those. Closing the listener directly
// (without Shutdown) closes every active connection before Serve returns;
// after Shutdown, Serve returns nil as soon as the accept loop unblocks
// and Shutdown owns the remaining connections.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("tcp: Serve on a draining server")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			if !draining {
				for c := range s.conns {
					// The readers notice the close; their errors are theirs.
					_ = c.Close()
				}
			}
			s.mu.Unlock()
			if !draining {
				s.wg.Wait()
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("tcp: accept: %w", err)
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			// Best effort: the drain already refused the connection.
			_ = conn.Close()
			continue
		}
		st := &connState{}
		s.conns[conn] = st
		s.wg.Add(1)
		s.mu.Unlock()
		go func(conn net.Conn, st *connState) {
			defer s.wg.Done()
			s.logf("coordinator connected from %s", conn.RemoteAddr())
			err := s.serveConn(conn, st)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			if err != nil {
				s.logf("connection from %s ended: %v", conn.RemoteAddr(), err)
			} else {
				s.logf("connection from %s closed", conn.RemoteAddr())
			}
		}(conn, st)
	}
}

// Shutdown drains the server: stop accepting, close idle connections,
// let connections that are mid-request finish the current reply, and
// wait for them up to drainTimeout before force-closing the stragglers
// and returning. It returns the listener-close error, if any. Safe to
// call once.
func (s *Server) Shutdown(drainTimeout time.Duration) error {
	s.mu.Lock()
	s.draining = true
	lis := s.lis
	for c, st := range s.conns {
		if !st.busy {
			// Unblocks the connection's read; serveConn maps the resulting
			// ErrClosed to a clean exit while draining.
			_ = c.Close()
		}
	}
	s.mu.Unlock()

	var lerr error
	if lis != nil {
		if err := lis.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			lerr = err
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if drainTimeout > 0 {
		timer := time.NewTimer(drainTimeout)
		defer timer.Stop()
		select {
		case <-done:
			return lerr
		case <-timer.C:
		}
	}
	// Drain timeout expired (or none given): force-close whatever is left
	// and return without waiting — the caller is exiting, and a host call
	// that outlived the drain budget cannot be waited on in bounded time.
	s.mu.Lock()
	for c := range s.conns {
		// The blocked reader/writer notices the close.
		_ = c.Close()
	}
	s.mu.Unlock()
	return lerr
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) setBusy(st *connState, busy bool) {
	s.mu.Lock()
	st.busy = busy
	s.mu.Unlock()
}

// Serve runs the executor side of the protocol on lis, pumping frames
// into host, until the listener is closed. It is NewServer(host,
// logf).Serve(lis) for callers that do not need graceful drain.
func Serve(lis net.Listener, host transport.Host, logf func(format string, args ...any)) error {
	return NewServer(host, logf).Serve(lis)
}

// serveConn handshakes and then answers requests until the connection
// drops. Every request produces exactly one reply frame, in order; this
// strict alternation is what lets the coordinator treat a batch reply as
// all-or-nothing when it reroutes work after a loss. While a request is
// being processed the connection is marked busy so Shutdown will not
// close it under the handler; after the reply, a draining server closes
// the connection instead of reading the next request.
func (s *Server) serveConn(conn net.Conn, st *connState) error {
	defer func() {
		// Either the peer is gone or we already have a more precise error.
		_ = conn.Close()
	}()
	reply := func(m *transport.Msg) error {
		if err := conn.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil {
			return err
		}
		_, err := transport.WriteFrame(conn, m)
		return err
	}
	hello, _, err := transport.ReadFrame(conn, transport.DefaultMaxFrame)
	if err != nil {
		if s.isDraining() && errors.Is(err, net.ErrClosed) {
			return nil
		}
		return fmt.Errorf("reading hello: %w", err)
	}
	if hello.Type != transport.MsgHello || hello.Proto != transport.ProtoVersion {
		// Best effort: the handshake failed; the close is the real answer.
		_ = reply(&transport.Msg{Type: transport.MsgError,
			Error: fmt.Sprintf("bad handshake: type=%d proto=%d (want hello/%d)", hello.Type, hello.Proto, transport.ProtoVersion)})
		return fmt.Errorf("bad handshake: type=%d proto=%d", hello.Type, hello.Proto)
	}
	if err := reply(&transport.Msg{Type: transport.MsgHelloOK, Proto: transport.ProtoVersion}); err != nil {
		return fmt.Errorf("writing hello ack: %w", err)
	}
	for {
		req, _, err := transport.ReadFrame(conn, transport.DefaultMaxFrame)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			if s.isDraining() && errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.setBusy(st, true)
		var resp *transport.Msg
		switch req.Type {
		case transport.MsgPing:
			resp = &transport.Msg{Type: transport.MsgPong}
		case transport.MsgState:
			if err := s.host.Apply(req.State, req.Payload); err != nil {
				resp = &transport.Msg{Type: transport.MsgError, Error: err.Error()}
			} else {
				resp = &transport.Msg{Type: transport.MsgAck}
			}
		case transport.MsgRun:
			resp = runBatch(s.host, req)
		default:
			resp = &transport.Msg{Type: transport.MsgError, Error: fmt.Sprintf("unexpected message type %d", req.Type)}
		}
		err = reply(resp)
		s.setBusy(st, false)
		if err != nil {
			return err
		}
		if s.isDraining() {
			// Batch answered; now it is safe to go.
			return nil
		}
	}
}

// runBatch executes one stage batch. The reply is all-or-nothing: any
// task failure turns the whole batch into an error frame, so the
// coordinator never has to reconcile a partially delivered batch. Hosts
// implementing transport.BatchHost run the batch themselves (fanning
// tasks across the machine's threads) under the same contract; the
// coordinator cannot tell the two apart except by speed.
func runBatch(host transport.Host, req *transport.Msg) *transport.Msg {
	if bh, ok := host.(transport.BatchHost); ok {
		outs, err := bh.RunBatch(req.Spec, req.Tasks)
		if err != nil {
			return &transport.Msg{Type: transport.MsgError,
				Error: fmt.Sprintf("stage %q %v", req.Spec.Name, err)}
		}
		return &transport.Msg{Type: transport.MsgResult, Outputs: outs}
	}
	outs := make([]transport.TaskOutput, 0, len(req.Tasks))
	for _, task := range req.Tasks {
		start := time.Now()
		payload, err := host.RunTask(req.Spec, task)
		if err != nil {
			return &transport.Msg{Type: transport.MsgError,
				Error: fmt.Sprintf("stage %q task %d: %v", req.Spec.Name, task, err)}
		}
		outs = append(outs, transport.TaskOutput{
			Task:    task,
			Nanos:   time.Since(start).Nanoseconds(),
			Payload: payload,
		})
	}
	return &transport.Msg{Type: transport.MsgResult, Outputs: outs}
}
