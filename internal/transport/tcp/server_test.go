package tcp

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"dbtf/internal/transport"
)

// slowHost blocks RunTask until release is closed, signalling started on
// entry, so tests can drain a server with a batch genuinely in flight.
type slowHost struct {
	*echoHost
	started chan struct{}
	release chan struct{}
}

func newSlowHost() *slowHost {
	return &slowHost{
		echoHost: newEchoHost(),
		started:  make(chan struct{}),
		release:  make(chan struct{}),
	}
}

func (h *slowHost) RunTask(spec transport.Spec, task int) ([]byte, error) {
	select {
	case <-h.started:
	default:
		close(h.started)
	}
	<-h.release
	return h.echoHost.RunTask(spec, task)
}

func TestShutdownDrainsInFlightBatch(t *testing.T) {
	h := newSlowHost()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h, nil)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()

	c, err := Dial(testConfig(lis.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	spec := transport.Spec{Name: "eval:A", Kind: transport.KindEval, Tasks: 2}
	runDone := make(chan error, 1)
	delivered := 0
	go func() {
		runDone <- c.Run(context.Background(), spec, func(transport.TaskResult) error {
			delivered++
			return nil
		})
	}()
	<-h.started // the batch is now in flight on the worker

	shutDone := make(chan error, 1)
	go func() { shutDone <- srv.Shutdown(10 * time.Second) }()
	// Give the drain a moment to start, then let the task finish: the
	// server must answer the in-flight batch instead of dying mid-batch.
	time.Sleep(50 * time.Millisecond)
	close(h.release)

	if err := <-runDone; err != nil {
		t.Fatalf("Run during drain: %v", err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d task results across the drain, want 2", delivered)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve after drain: %v", err)
	}
}

func TestShutdownClosesIdleConnections(t *testing.T) {
	h := newEchoHost()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h, nil)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()

	c, err := Dial(testConfig(lis.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve after drain: %v", err)
	}
	// The idle connection was closed server-side: the next call fails and
	// the machine is reported down.
	if err := c.PushState(context.Background(), transport.StateSetup, []byte("x")); err == nil {
		t.Fatal("PushState succeeded against a drained server")
	}
}

func TestShutdownForceClosesAfterTimeout(t *testing.T) {
	h := newSlowHost()
	t.Cleanup(func() { close(h.release) }) // unwedge the handler goroutine
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h, nil)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()

	c, err := Dial(testConfig(lis.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	spec := transport.Spec{Name: "eval:A", Kind: transport.KindEval, Tasks: 1}
	runDone := make(chan error, 1)
	go func() {
		runDone <- c.Run(context.Background(), spec, func(transport.TaskResult) error { return nil })
	}()
	<-h.started

	start := time.Now()
	if err := srv.Shutdown(50 * time.Millisecond); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v despite a 50ms drain budget", elapsed)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve after forced drain: %v", err)
	}
	// The coordinator sees the force-closed connection as a loss: with no
	// other live worker the stage fails rather than hanging.
	if err := <-runDone; err == nil {
		t.Fatal("Run succeeded although its worker was force-closed mid-batch")
	}
}

func TestServeAfterShutdownRefused(t *testing.T) {
	srv := NewServer(newEchoHost(), nil)
	if err := srv.Shutdown(0); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := lis.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Errorf("Close: %v", err)
		}
	}()
	if err := srv.Serve(lis); err == nil {
		t.Fatal("Serve on a drained server succeeded")
	}
}
