package tcp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dbtf/internal/transport"
)

// echoHost is a scriptable transport.Host: it records applied state and
// returns task payloads derived from the task index, so tests can verify
// routing and replay without the full DBTF executor.
type echoHost struct {
	mu      sync.Mutex
	applied []transport.StateKind
	blobs   map[transport.StateKind][][]byte
	taskErr error
}

func newEchoHost() *echoHost {
	return &echoHost{blobs: map[transport.StateKind][][]byte{}}
}

func (h *echoHost) Apply(kind transport.StateKind, payload []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.applied = append(h.applied, kind)
	h.blobs[kind] = append(h.blobs[kind], append([]byte(nil), payload...))
	return nil
}

func (h *echoHost) RunTask(spec transport.Spec, task int) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.taskErr != nil {
		return nil, h.taskErr
	}
	return []byte(fmt.Sprintf("%s/%d", spec.Name, task)), nil
}

func (h *echoHost) appliedKinds() []transport.StateKind {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]transport.StateKind(nil), h.applied...)
}

// startWorker serves host on an ephemeral loopback port until the test
// ends, returning the address.
func startWorker(t *testing.T, host transport.Host) (string, net.Listener) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- Serve(lis, host, nil) }()
	t.Cleanup(func() {
		// Idempotent: tests that already closed the listener get ErrClosed,
		// which Serve maps to nil and Close reports as an error we ignore.
		_ = lis.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return lis.Addr().String(), lis
}

func testConfig(addrs ...string) Config {
	return Config{
		Addrs:         addrs,
		DialTimeout:   2 * time.Second,
		CallTimeout:   5 * time.Second,
		RedialBackoff: time.Millisecond,
	}
}

func TestPushStateReachesAllWorkers(t *testing.T) {
	hosts := []*echoHost{newEchoHost(), newEchoHost(), newEchoHost()}
	var addrs []string
	for _, h := range hosts {
		addr, _ := startWorker(t, h)
		addrs = append(addrs, addr)
	}
	c, err := Dial(testConfig(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if c.Machines() != 3 {
		t.Fatalf("Machines() = %d, want 3", c.Machines())
	}
	ctx := context.Background()
	if err := c.PushState(ctx, transport.StateSetup, []byte("setup")); err != nil {
		t.Fatal(err)
	}
	if err := c.PushState(ctx, transport.StateFactors, []byte("factors")); err != nil {
		t.Fatal(err)
	}
	for i, h := range hosts {
		got := h.appliedKinds()
		if len(got) != 2 || got[0] != transport.StateSetup || got[1] != transport.StateFactors {
			t.Fatalf("worker %d applied %v, want [setup factors]", i, got)
		}
	}
	sent, recvd := c.WireBytes()
	if sent == 0 || recvd == 0 {
		t.Fatalf("WireBytes() = %d/%d, want both nonzero", sent, recvd)
	}
}

func TestRunRoutesTasksByHomeMachine(t *testing.T) {
	hosts := []*echoHost{newEchoHost(), newEchoHost()}
	var addrs []string
	for _, h := range hosts {
		addr, _ := startWorker(t, h)
		addrs = append(addrs, addr)
	}
	c, err := Dial(testConfig(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	spec := transport.Spec{Name: "eval:A", Kind: transport.KindEval, Tasks: 7}
	got := map[int]transport.TaskResult{}
	err = c.Run(context.Background(), spec, func(tr transport.TaskResult) error {
		got[tr.Task] = tr
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("delivered %d tasks, want 7", len(got))
	}
	for task, tr := range got {
		if want := fmt.Sprintf("eval:A/%d", task); string(tr.Payload) != want {
			t.Fatalf("task %d payload %q, want %q", task, tr.Payload, want)
		}
		if tr.Machine != task%2 {
			t.Fatalf("task %d ran on machine %d, want home %d", task, tr.Machine, task%2)
		}
		if tr.Nanos < 0 {
			t.Fatalf("task %d has negative nanos", task)
		}
	}
}

func TestRunTaskErrorIsFatalNotALoss(t *testing.T) {
	h := newEchoHost()
	h.taskErr = errors.New("kernel exploded")
	addr, _ := startWorker(t, h)
	c, err := Dial(testConfig(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	spec := transport.Spec{Name: "build:B", Kind: transport.KindBuild, Tasks: 2}
	err = c.Run(context.Background(), spec, func(transport.TaskResult) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "kernel exploded") {
		t.Fatalf("Run error = %v, want the executor's task error", err)
	}
	// The connection survived a task error: the machine is not lost.
	if ev := c.Membership(context.Background()); len(ev) != 0 {
		t.Fatalf("Membership reported %v after a task error, want no transitions", ev)
	}
}

func TestWorkerLossReroutesAndRejoinReplays(t *testing.T) {
	h0, h1 := newEchoHost(), newEchoHost()
	addr0, _ := startWorker(t, h0)
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := lis1.Addr().String()
	serve1 := make(chan error, 1)
	go func() { serve1 <- Serve(lis1, h1, nil) }()

	c, err := Dial(testConfig(addr0, addr1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	ctx := context.Background()
	if err := c.PushState(ctx, transport.StateSetup, []byte("setup")); err != nil {
		t.Fatal(err)
	}
	if err := c.PushState(ctx, transport.StateFactors, []byte("f1")); err != nil {
		t.Fatal(err)
	}
	if err := c.PushState(ctx, transport.StateColumn, []byte("c1")); err != nil {
		t.Fatal(err)
	}

	// Kill worker 1: close its listener and wait for the server loop to
	// exit, which tears down the live connection mid-protocol.
	if err := lis1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serve1; err != nil {
		t.Fatalf("Serve(worker 1): %v", err)
	}

	// The next stage routes worker 1's share to the ring successor
	// (machine 0) and the loss shows up at the next boundary.
	spec := transport.Spec{Name: "eval:A", Kind: transport.KindEval, Tasks: 4}
	machines := map[int]int{}
	err = c.Run(ctx, spec, func(tr transport.TaskResult) error {
		machines[tr.Task] = tr.Machine
		return nil
	})
	if err != nil {
		t.Fatalf("Run after loss: %v", err)
	}
	for task, m := range machines {
		if m != 0 {
			t.Fatalf("task %d ran on machine %d after the loss, want 0", task, m)
		}
	}
	ev := c.Membership(ctx)
	var sawLoss bool
	for _, e := range ev {
		if e.Machine == 1 && !e.Up {
			sawLoss = true
		}
		if e.Up {
			t.Fatalf("unexpected rejoin in %v while worker 1 is down", ev)
		}
	}
	if !sawLoss {
		t.Fatalf("Membership = %v, want a loss for machine 1", ev)
	}

	// Restart worker 1 on the same address with a fresh (empty) host: the
	// coordinator must redial and replay setup, factors, and the column.
	h1b := newEchoHost()
	lis1b, err := net.Listen("tcp", addr1)
	if err != nil {
		t.Fatalf("restarting worker 1 on %s: %v", addr1, err)
	}
	serve1b := make(chan error, 1)
	go func() { serve1b <- Serve(lis1b, h1b, nil) }()
	t.Cleanup(func() {
		_ = lis1b.Close()
		if err := <-serve1b; err != nil {
			t.Errorf("Serve(worker 1 restart): %v", err)
		}
	})

	deadline := time.Now().Add(5 * time.Second)
	var rejoined bool
	for !rejoined && time.Now().Before(deadline) {
		for _, e := range c.Membership(ctx) {
			if e.Machine == 1 && e.Up {
				rejoined = true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !rejoined {
		t.Fatal("worker 1 never rejoined after restart")
	}
	want := []transport.StateKind{transport.StateSetup, transport.StateFactors, transport.StateColumn}
	got := h1b.appliedKinds()
	if len(got) != len(want) {
		t.Fatalf("replay applied %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay applied %v, want %v", got, want)
		}
	}

	// And the rejoined worker takes its work back.
	err = c.Run(ctx, spec, func(tr transport.TaskResult) error {
		if tr.Task%2 == 1 && tr.Machine != 1 {
			return fmt.Errorf("task %d ran on machine %d after rejoin, want 1", tr.Task, tr.Machine)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDialFailsWhenAnyWorkerUnreachable(t *testing.T) {
	addr, _ := startWorker(t, newEchoHost())
	// Grab a port and close it again: dialing it must fail.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	if err := dead.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(testConfig(addr, deadAddr)); err == nil {
		t.Fatal("Dial succeeded with an unreachable worker")
	}
}

func TestDialContextCancelUnblocksHungHandshake(t *testing.T) {
	// A listener that never calls Accept: the kernel completes the TCP
	// handshake from its backlog, so DialContext gets past the connect and
	// blocks reading the hello reply. Only ctx cancellation can unblock it
	// before CallTimeout (set to an hour here so a regression hangs the
	// deadline, not flakes past it).
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := lis.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	cfg := testConfig(lis.Addr().String())
	cfg.CallTimeout = time.Hour

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = DialContext(ctx, cfg)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DialContext = %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("DialContext took %v to honor cancellation", elapsed)
	}
}

func TestDialContextCancelDuringConnect(t *testing.T) {
	// Already-cancelled context: the connect itself must fail immediately,
	// even against a healthy worker.
	addr, _ := startWorker(t, newEchoHost())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialContext(ctx, testConfig(addr)); !errors.Is(err, context.Canceled) {
		t.Fatalf("DialContext = %v, want context.Canceled", err)
	}
}

func TestServeRejectsBadHandshake(t *testing.T) {
	addr, _ := startWorker(t, newEchoHost())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Errorf("Close: %v", err)
		}
	}()
	// A ping before hello violates the protocol.
	if _, err := transport.WriteFrame(conn, &transport.Msg{Type: transport.MsgPing}); err != nil {
		t.Fatal(err)
	}
	resp, _, err := transport.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != transport.MsgError || !strings.Contains(resp.Error, "bad handshake") {
		t.Fatalf("got %d %q, want a bad-handshake error", resp.Type, resp.Error)
	}
}
