package tcp

import (
	"context"
	"errors"
	"testing"
	"time"

	"dbtf/internal/transport"
)

// stallHost blocks every RunTask until released, simulating a worker
// that is alive but slow.
type stallHost struct {
	*echoHost
	release chan struct{}
}

func (h *stallHost) RunTask(spec transport.Spec, task int) ([]byte, error) {
	<-h.release
	return h.echoHost.RunTask(spec, task)
}

// TestRunCancelledMidStageReturnsPromptly pins the coordinator's
// result-collection loop to the stage context: with a batch in flight on
// a stalled worker, cancelling ctx must end Run immediately rather than
// sitting in the receive until CallTimeout expires. The results channel
// is buffered to the batch count, so the abandoned sender goroutines
// deposit their outcomes and exit.
func TestRunCancelledMidStageReturnsPromptly(t *testing.T) {
	h := &stallHost{echoHost: newEchoHost(), release: make(chan struct{})}
	addr, _ := startWorker(t, h)
	c, err := Dial(testConfig(addr))
	if err != nil {
		close(h.release)
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	// Registered after the Close defer so it runs first: the abandoned
	// call holds the worker mutex until its reply arrives, and Close
	// blocks on that mutex — releasing the stall first keeps teardown
	// from riding out the full CallTimeout.
	defer close(h.release)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		errc <- c.Run(ctx, transport.Spec{Name: "stall", Tasks: 1},
			func(transport.TaskResult) error { return nil })
	}()
	// Give the batch time to reach the stalled worker, then cancel.
	time.Sleep(100 * time.Millisecond)
	cancel()

	// Well under the 5s CallTimeout: the old bare receive only returned
	// once the stalled call timed out.
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not observe cancellation while a batch was in flight")
	}
}
