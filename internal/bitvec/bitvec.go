// Package bitvec implements fixed-length bit vectors packed into 64-bit
// words. Bit vectors are the fundamental carrier of Boolean rows throughout
// DBTF: rows of unfolded tensors, columns of factor matrices, and cached
// Boolean row summations are all BitVecs.
//
// All operations treat the vector as a sequence of bits indexed from 0 to
// Len()-1. Bits beyond Len() inside the last word are kept zero by every
// operation so that popcount-style queries never need masking.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const (
	// WordBits is the number of bits per storage word.
	WordBits = 64
	wordMask = WordBits - 1
	wordLog  = 6
)

// BitVec is a fixed-length vector of bits. The zero value is an empty
// vector of length 0; use New to create a vector of a given length.
type BitVec struct {
	n     int
	words []uint64
}

// New returns a zeroed bit vector with n bits.
func New(n int) *BitVec {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &BitVec{n: n, words: make([]uint64, wordsFor(n))}
}

// Wrap returns a bit vector of n bits backed by the given word slice,
// without copying. The slice must hold exactly the words needed for n bits,
// and any bits beyond n in the final word must be zero. Wrap lets matrices
// expose rows of a flat backing array as BitVecs.
func Wrap(n int, words []uint64) *BitVec {
	if len(words) != wordsFor(n) {
		panic(fmt.Sprintf("bitvec: Wrap needs %d words for %d bits, got %d", wordsFor(n), n, len(words)))
	}
	return &BitVec{n: n, words: words}
}

// Slab returns count zeroed bit vectors of n bits each, all carved out of
// one shared word array: three allocations total instead of two per vector.
// It exists for bulk table construction — the sum-cache's 2^bits entry
// tables are its main customer — where per-entry allocation dominates the
// build. The vectors are independent views (their word ranges do not
// overlap and are capacity-clamped), so the usual BitVec operations apply;
// take the address of an element to use pointer methods.
func Slab(count, n int) []BitVec {
	if count < 0 || n < 0 {
		panic("bitvec: negative slab size")
	}
	stride := wordsFor(n)
	words := make([]uint64, count*stride)
	vecs := make([]BitVec, count)
	for i := range vecs {
		vecs[i] = BitVec{n: n, words: words[i*stride : (i+1)*stride : (i+1)*stride]}
	}
	return vecs
}

// SlabWords returns the number of backing words a Slab of count n-bit
// vectors occupies: count times the per-vector stride.
func SlabWords(count, n int) int { return count * wordsFor(n) }

// SlabOver carves count n-bit vectors out of the given word array, which
// must hold exactly SlabWords(count, n) words. Unlike Slab the contents
// are taken as-is: callers reusing recycled memory must clear (at least)
// the words of any vector they rely on starting out zero, and keep every
// vector's trailing bits beyond n zero themselves.
func SlabOver(words []uint64, count, n int) []BitVec {
	stride := wordsFor(n)
	if len(words) != count*stride {
		panic(fmt.Sprintf("bitvec: SlabOver needs %d words for %dx%d bits, got %d", count*stride, count, n, len(words)))
	}
	vecs := make([]BitVec, count)
	for i := range vecs {
		vecs[i] = BitVec{n: n, words: words[i*stride : (i+1)*stride : (i+1)*stride]}
	}
	return vecs
}

// FromIndices returns a bit vector of length n with the given bits set.
func FromIndices(n int, idx []int) *BitVec {
	v := New(n)
	for _, i := range idx {
		v.Set(i)
	}
	return v
}

// FromIndices32 is FromIndices for int32 index lists, the currency of
// unfolded-tensor rows.
func FromIndices32(n int, idx []int32) *BitVec {
	v := New(n)
	for _, i := range idx {
		v.Set(int(i))
	}
	return v
}

func wordsFor(n int) int { return (n + wordMask) >> wordLog }

// Len returns the number of bits in the vector.
func (v *BitVec) Len() int { return v.n }

// Words exposes the underlying word storage. The slice must not be resized
// by callers; it is shared, not copied.
func (v *BitVec) Words() []uint64 { return v.words }

// Get reports whether bit i is set.
func (v *BitVec) Get(i int) bool {
	return v.words[i>>wordLog]&(1<<(uint(i)&wordMask)) != 0
}

// Set sets bit i to 1.
func (v *BitVec) Set(i int) {
	v.words[i>>wordLog] |= 1 << (uint(i) & wordMask)
}

// Clear sets bit i to 0.
func (v *BitVec) Clear(i int) {
	v.words[i>>wordLog] &^= 1 << (uint(i) & wordMask)
}

// SetBool sets bit i to b.
func (v *BitVec) SetBool(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Zero clears every bit.
func (v *BitVec) Zero() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Copy returns a deep copy of v.
func (v *BitVec) Copy() *BitVec {
	w := New(v.n)
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v with the contents of src. The lengths must match.
func (v *BitVec) CopyFrom(src *BitVec) {
	if v.n != src.n {
		panic(fmt.Sprintf("bitvec: CopyFrom length mismatch %d != %d", v.n, src.n))
	}
	copy(v.words, src.words)
}

// Or sets v = v | w. The lengths must match.
func (v *BitVec) Or(w *BitVec) {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: Or length mismatch %d != %d", v.n, w.n))
	}
	for i, x := range w.words {
		v.words[i] |= x
	}
}

// And sets v = v & w. The lengths must match.
func (v *BitVec) And(w *BitVec) {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: And length mismatch %d != %d", v.n, w.n))
	}
	for i, x := range w.words {
		v.words[i] &= x
	}
}

// AndNot sets v = v &^ w. The lengths must match.
func (v *BitVec) AndNot(w *BitVec) {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: AndNot length mismatch %d != %d", v.n, w.n))
	}
	for i, x := range w.words {
		v.words[i] &^= x
	}
}

// OnesCount returns the number of set bits (the Boolean "norm" of the
// vector: for a binary vector this equals its squared Frobenius norm).
func (v *BitVec) OnesCount() int {
	c := 0
	for _, x := range v.words {
		c += bits.OnesCount64(x)
	}
	return c
}

// XorCount returns |v ⊕ w|, the Hamming distance between v and w. The
// lengths must match. This is the per-row reconstruction error used by the
// Boolean CP objective (Definition 4).
func (v *BitVec) XorCount(w *BitVec) int {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: XorCount length mismatch %d != %d", v.n, w.n))
	}
	c := 0
	for i, x := range w.words {
		c += bits.OnesCount64(v.words[i] ^ x)
	}
	return c
}

// AndCount returns |v ∧ w|, the number of positions set in both vectors.
func (v *BitVec) AndCount(w *BitVec) int {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: AndCount length mismatch %d != %d", v.n, w.n))
	}
	c := 0
	for i, x := range w.words {
		c += bits.OnesCount64(v.words[i] & x)
	}
	return c
}

// Equal reports whether v and w have the same length and bits.
func (v *BitVec) Equal(w *BitVec) bool {
	if v.n != w.n {
		return false
	}
	for i, x := range w.words {
		if v.words[i] != x {
			return false
		}
	}
	return true
}

// Any reports whether at least one bit is set.
func (v *BitVec) Any() bool {
	for _, x := range v.words {
		if x != 0 {
			return true
		}
	}
	return false
}

// Indices returns the positions of all set bits in increasing order.
func (v *BitVec) Indices() []int {
	idx := make([]int, 0, v.OnesCount())
	for wi, x := range v.words {
		for x != 0 {
			b := bits.TrailingZeros64(x)
			idx = append(idx, wi<<wordLog+b)
			x &= x - 1
		}
	}
	return idx
}

// Range calls fn for each set bit in increasing order.
func (v *BitVec) Range(fn func(i int)) {
	for wi, x := range v.words {
		for x != 0 {
			b := bits.TrailingZeros64(x)
			fn(wi<<wordLog + b)
			x &= x - 1
		}
	}
}

// Slice returns a new bit vector holding bits [lo, hi) of v.
// It is used to derive sliced cache tables for partial blocks
// (partition block types (1), (2) and (4) in the paper's Figure 5).
func (v *BitVec) Slice(lo, hi int) *BitVec {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("bitvec: Slice [%d,%d) out of range of %d bits", lo, hi, v.n))
	}
	out := New(hi - lo)
	out.blit(v, lo, hi)
	return out
}

// SliceInto overwrites out (which must have length hi-lo) with bits
// [lo, hi) of v, avoiding an allocation.
func (v *BitVec) SliceInto(out *BitVec, lo, hi int) {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("bitvec: SliceInto [%d,%d) out of range of %d bits", lo, hi, v.n))
	}
	if out.n != hi-lo {
		panic(fmt.Sprintf("bitvec: SliceInto destination length %d != %d", out.n, hi-lo))
	}
	out.blit(v, lo, hi)
}

// blit copies bits [lo,hi) of src into v starting at bit 0.
func (v *BitVec) blit(src *BitVec, lo, hi int) {
	n := hi - lo
	shift := uint(lo) & wordMask
	sw := lo >> wordLog
	nw := wordsFor(n)
	if shift == 0 {
		copy(v.words[:nw], src.words[sw:sw+nw])
	} else {
		for i := 0; i < nw; i++ {
			w := src.words[sw+i] >> shift
			if sw+i+1 < len(src.words) {
				w |= src.words[sw+i+1] << (WordBits - shift)
			}
			v.words[i] = w
		}
	}
	v.trim()
}

// trim zeroes bits beyond Len() in the final word.
func (v *BitVec) trim() {
	if r := uint(v.n) & wordMask; r != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << r) - 1
	}
}

// String renders the vector as a string of '0' and '1' characters, bit 0
// first. Intended for tests and debugging of small vectors.
func (v *BitVec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse builds a bit vector from a string of '0' and '1' characters,
// bit 0 first. It is the inverse of String.
func Parse(s string) (*BitVec, error) {
	v := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			v.Set(i)
		case '0':
		default:
			return nil, fmt.Errorf("bitvec: invalid character %q at position %d", s[i], i)
		}
	}
	return v, nil
}
