// Word-parallel counting kernels. DBTF's hot loops combine several bit
// vectors and need only a popcount of the combination; these kernels fuse
// the Boolean operation and the count into one pass over the words, so no
// intermediate vector is materialized and no allocation happens. They are
// the bit-level-parallel primitives the factor-update delta evaluation and
// the adaptive dense row kernels are built on.
//
// The word-slice forms operate on raw storage (as returned by Words) so
// callers that already hold words — packed block rows, cache entries —
// skip the BitVec wrapper entirely. All operands of one call must have the
// same word count; bits beyond Len() are zero by the package invariant, so
// counts never need masking.
package bitvec

import (
	"fmt"
	"math/bits"
)

// AndNotCount returns |v &^ w|, the number of bits set in v but not in w.
// The lengths must match.
//
//dbtf:noalloc
func (v *BitVec) AndNotCount(w *BitVec) int {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: AndNotCount length mismatch %d != %d", v.n, w.n))
	}
	return AndNotCountWords(v.words, w.words)
}

// OrAndCount returns |(v ∨ w) ∧ u| without materializing v ∨ w. The
// lengths must match.
//
//dbtf:noalloc
func (v *BitVec) OrAndCount(w, u *BitVec) int {
	if v.n != w.n || v.n != u.n {
		panic(fmt.Sprintf("bitvec: OrAndCount length mismatch %d, %d, %d", v.n, w.n, u.n))
	}
	c := 0
	for i, x := range v.words {
		c += bits.OnesCount64((x | w.words[i]) & u.words[i])
	}
	return c
}

// OnesCountRange returns the number of set bits in [lo, hi), a range
// popcount. It lets sliced views be weighed without being materialized.
//
//dbtf:noalloc
func (v *BitVec) OnesCountRange(lo, hi int) int {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("bitvec: OnesCountRange [%d,%d) out of range of %d bits", lo, hi, v.n))
	}
	if lo == hi {
		return 0
	}
	lw, hw := lo>>wordLog, (hi-1)>>wordLog
	loMask := ^uint64(0) << (uint(lo) & wordMask)
	hiMask := ^uint64(0)
	if r := uint(hi) & wordMask; r != 0 {
		hiMask = (uint64(1) << r) - 1
	}
	if lw == hw {
		return bits.OnesCount64(v.words[lw] & loMask & hiMask)
	}
	c := bits.OnesCount64(v.words[lw] & loMask)
	for i := lw + 1; i < hw; i++ {
		c += bits.OnesCount64(v.words[i])
	}
	return c + bits.OnesCount64(v.words[hw]&hiMask)
}

// AndCountWords returns popcount(a ∧ b) over raw word slices.
//
//dbtf:noalloc
func AndCountWords(a, b []uint64) int {
	c := 0
	for i, x := range a {
		c += bits.OnesCount64(x & b[i])
	}
	return c
}

// AndNotCountWords returns popcount(a &^ b) over raw word slices.
//
//dbtf:noalloc
func AndNotCountWords(a, b []uint64) int {
	c := 0
	for i, x := range a {
		c += bits.OnesCount64(x &^ b[i])
	}
	return c
}

// AndAndNotCountWords returns popcount(x ∧ (a &^ b)) over raw word
// slices: the overlap of x with the region a adds beyond b. This is the
// dense single-group delta kernel.
//
//dbtf:noalloc
func AndAndNotCountWords(x, a, b []uint64) int {
	c := 0
	for i, w := range x {
		c += bits.OnesCount64(w & a[i] &^ b[i])
	}
	return c
}

// XorCountWords returns popcount(a ⊕ b) over raw word slices: the Hamming
// distance, i.e. the Boolean reconstruction error of a dense row.
//
//dbtf:noalloc
func XorCountWords(a, b []uint64) int {
	c := 0
	for i, x := range a {
		c += bits.OnesCount64(x ^ b[i])
	}
	return c
}

// GainCountsWords returns (|D|, |x ∧ D|) where D = (w1 &^ w0) &^ occ[0]
// &^ occ[1] ... — the occluded gain region of a multi-group delta. x may
// be nil, in which case only |D| is computed and the second result is 0.
//
//dbtf:noalloc
func GainCountsWords(x, w1, w0 []uint64, occ [][]uint64) (gain, overlap int) {
	for i, hi := range w1 {
		d := hi &^ w0[i]
		if d == 0 {
			continue
		}
		for _, o := range occ {
			d &^= o[i]
		}
		gain += bits.OnesCount64(d)
		if x != nil {
			overlap += bits.OnesCount64(x[i] & d)
		}
	}
	return gain, overlap
}
