package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len() = %d, want %d", v.Len(), n)
		}
		if v.OnesCount() != 0 {
			t.Fatalf("new vector of %d bits has %d ones", n, v.OnesCount())
		}
		if v.Any() {
			t.Fatalf("new vector of %d bits reports Any()", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d set after Clear", i)
		}
	}
}

func TestSetBool(t *testing.T) {
	v := New(10)
	v.SetBool(3, true)
	if !v.Get(3) {
		t.Fatal("SetBool(3, true) did not set")
	}
	v.SetBool(3, false)
	if v.Get(3) {
		t.Fatal("SetBool(3, false) did not clear")
	}
}

func TestFromIndicesAndIndices(t *testing.T) {
	idx := []int{0, 5, 64, 99}
	v := FromIndices(100, idx)
	got := v.Indices()
	if len(got) != len(idx) {
		t.Fatalf("Indices() = %v, want %v", got, idx)
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Fatalf("Indices() = %v, want %v", got, idx)
		}
	}
}

func TestRange(t *testing.T) {
	v := FromIndices(200, []int{1, 63, 64, 150})
	var got []int
	v.Range(func(i int) { got = append(got, i) })
	want := []int{1, 63, 64, 150}
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range visited %v, want %v", got, want)
		}
	}
}

func TestOrAndAndNot(t *testing.T) {
	a := FromIndices(70, []int{0, 10, 65})
	b := FromIndices(70, []int{10, 20, 69})

	or := a.Copy()
	or.Or(b)
	if got := or.Indices(); !equalInts(got, []int{0, 10, 20, 65, 69}) {
		t.Errorf("Or = %v", got)
	}

	and := a.Copy()
	and.And(b)
	if got := and.Indices(); !equalInts(got, []int{10}) {
		t.Errorf("And = %v", got)
	}

	andnot := a.Copy()
	andnot.AndNot(b)
	if got := andnot.Indices(); !equalInts(got, []int{0, 65}) {
		t.Errorf("AndNot = %v", got)
	}
}

func TestCounts(t *testing.T) {
	a := FromIndices(128, []int{0, 1, 64, 100})
	b := FromIndices(128, []int{1, 2, 64})
	if got := a.OnesCount(); got != 4 {
		t.Errorf("OnesCount = %d, want 4", got)
	}
	if got := a.XorCount(b); got != 3 { // {0,100} vs {2}
		t.Errorf("XorCount = %d, want 3", got)
	}
	if got := a.AndCount(b); got != 2 { // {1,64}
		t.Errorf("AndCount = %d, want 2", got)
	}
}

func TestEqual(t *testing.T) {
	a := FromIndices(65, []int{3, 64})
	b := FromIndices(65, []int{3, 64})
	c := FromIndices(65, []int{3})
	d := FromIndices(66, []int{3, 64})
	if !a.Equal(b) {
		t.Error("a != b")
	}
	if a.Equal(c) {
		t.Error("a == c")
	}
	if a.Equal(d) {
		t.Error("a == d despite different lengths")
	}
}

func TestZeroAndCopyFrom(t *testing.T) {
	a := FromIndices(100, []int{1, 50, 99})
	b := New(100)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom mismatch")
	}
	a.Zero()
	if a.Any() {
		t.Fatal("Zero left bits set")
	}
	if !b.Get(50) {
		t.Fatal("CopyFrom shares storage with source")
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	ops := map[string]func(a, b *BitVec){
		"Or":       func(a, b *BitVec) { a.Or(b) },
		"And":      func(a, b *BitVec) { a.And(b) },
		"AndNot":   func(a, b *BitVec) { a.AndNot(b) },
		"XorCount": func(a, b *BitVec) { a.XorCount(b) },
		"AndCount": func(a, b *BitVec) { a.AndCount(b) },
		"CopyFrom": func(a, b *BitVec) { a.CopyFrom(b) },
	}
	for name, op := range ops {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			op(New(10), New(11))
		}()
	}
}

func TestSlice(t *testing.T) {
	v := New(200)
	for i := 0; i < 200; i += 3 {
		v.Set(i)
	}
	for _, tc := range []struct{ lo, hi int }{
		{0, 200}, {0, 0}, {200, 200}, {1, 64}, {64, 128}, {63, 65}, {7, 133}, {100, 101},
	} {
		s := v.Slice(tc.lo, tc.hi)
		if s.Len() != tc.hi-tc.lo {
			t.Fatalf("Slice(%d,%d).Len() = %d", tc.lo, tc.hi, s.Len())
		}
		for i := 0; i < s.Len(); i++ {
			if s.Get(i) != v.Get(tc.lo+i) {
				t.Fatalf("Slice(%d,%d) bit %d = %v, want %v", tc.lo, tc.hi, i, s.Get(i), v.Get(tc.lo+i))
			}
		}
	}
}

func TestSliceInto(t *testing.T) {
	v := FromIndices(100, []int{5, 6, 70, 71})
	out := New(10)
	v.SliceInto(out, 65, 75)
	if got := out.Indices(); !equalInts(got, []int{5, 6}) {
		t.Fatalf("SliceInto = %v, want [5 6]", got)
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, tc := range []struct{ lo, hi int }{{-1, 5}, {0, 11}, {6, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slice(%d,%d) did not panic", tc.lo, tc.hi)
				}
			}()
			v.Slice(tc.lo, tc.hi)
		}()
	}
}

func TestStringParseRoundtrip(t *testing.T) {
	s := "0110010000000000000000000000000000000000000000000000000000000000011"
	v, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != s {
		t.Fatalf("roundtrip: got %q", v.String())
	}
	if _, err := Parse("01x"); err == nil {
		t.Fatal("Parse accepted invalid character")
	}
}

func TestTrimKeepsTailZero(t *testing.T) {
	// Operations must never leave stray bits beyond Len(), or popcounts
	// would be wrong.
	v := New(70)
	for i := 0; i < 70; i++ {
		v.Set(i)
	}
	s := v.Slice(3, 68) // 65 bits, forces a shifted blit
	if got := s.OnesCount(); got != 65 {
		t.Fatalf("OnesCount = %d, want 65 (tail bits leaked)", got)
	}
}

// randomVec builds a deterministic pseudo-random vector for property tests.
func randomVec(rng *rand.Rand, n int) *BitVec {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func TestQuickOrCommutes(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%300) + 1
		a, b := randomVec(rng, n), randomVec(rng, n)
		ab := a.Copy()
		ab.Or(b)
		ba := b.Copy()
		ba.Or(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// |a| + |b| = |a∧b| + |a∨b|
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%300) + 1
		a, b := randomVec(rng, n), randomVec(rng, n)
		or := a.Copy()
		or.Or(b)
		return a.OnesCount()+b.OnesCount() == a.AndCount(b)+or.OnesCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickXorCountIdentity(t *testing.T) {
	// |a ⊕ b| = |a| + |b| − 2|a∧b|: the identity the partition error
	// evaluation relies on.
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%300) + 1
		a, b := randomVec(rng, n), randomVec(rng, n)
		return a.XorCount(b) == a.OnesCount()+b.OnesCount()-2*a.AndCount(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSliceMatchesBitwise(t *testing.T) {
	f := func(seed int64, nRaw, loRaw, hiRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%500) + 1
		lo := int(loRaw) % (n + 1)
		hi := lo + int(hiRaw)%(n-lo+1)
		v := randomVec(rng, n)
		s := v.Slice(lo, hi)
		for i := 0; i < s.Len(); i++ {
			if s.Get(i) != v.Get(lo+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIndicesRoundtrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%400) + 1
		v := randomVec(rng, n)
		return FromIndices(n, v.Indices()).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkOr(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomVec(rng, 4096)
	y := randomVec(rng, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}

func BenchmarkXorCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomVec(rng, 4096)
	y := randomVec(rng, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.XorCount(y)
	}
}
