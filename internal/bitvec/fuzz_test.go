package bitvec

import (
	"testing"
)

// FuzzBitVec drives a BitVec through a byte-coded op sequence against a
// naive []bool reference model, checking Get, OnesCount, XorCount,
// AndCount, Slice, and the Parse/String round trip agree at every step.
// The word-packed implementations (carry-propagating blits, final-word
// trimming) are exactly the code a byte-level model shakes out.
func FuzzBitVec(f *testing.F) {
	f.Add(uint8(7), []byte{0, 1, 2, 3, 4, 5})
	f.Add(uint8(64), []byte{1, 1, 1, 200, 30})
	f.Add(uint8(65), []byte{})
	f.Add(uint8(200), []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, size uint8, ops []byte) {
		n := int(size)
		v := New(n)
		w := New(n)
		ref := make([]bool, n)  // model of v
		ref2 := make([]bool, n) // model of w
		if n == 0 {
			return
		}
		for i := 0; i+1 < len(ops); i += 2 {
			pos := int(ops[i+1]) % n
			switch ops[i] % 6 {
			case 0:
				v.Set(pos)
				ref[pos] = true
			case 1:
				v.Clear(pos)
				ref[pos] = false
			case 2:
				w.Set(pos)
				ref2[pos] = true
			case 3:
				v.Or(w)
				for j := range ref {
					ref[j] = ref[j] || ref2[j]
				}
			case 4:
				v.And(w)
				for j := range ref {
					ref[j] = ref[j] && ref2[j]
				}
			case 5:
				v.AndNot(w)
				for j := range ref {
					ref[j] = ref[j] && !ref2[j]
				}
			}
		}

		var ones, xor, and int
		for j := range ref {
			if v.Get(j) != ref[j] {
				t.Fatalf("bit %d = %v, model %v", j, v.Get(j), ref[j])
			}
			if ref[j] {
				ones++
			}
			if ref[j] != ref2[j] {
				xor++
			}
			if ref[j] && ref2[j] {
				and++
			}
		}
		if got := v.OnesCount(); got != ones {
			t.Fatalf("OnesCount = %d, model %d", got, ones)
		}
		if got := v.XorCount(w); got != xor {
			t.Fatalf("XorCount = %d, model %d", got, xor)
		}
		if got := v.AndCount(w); got != and {
			t.Fatalf("AndCount = %d, model %d", got, and)
		}

		// Slice across an unaligned boundary and compare bit by bit.
		lo, hi := n/3, n/3+(n-n/3)/2
		s := v.Slice(lo, hi)
		for j := lo; j < hi; j++ {
			if s.Get(j-lo) != ref[j] {
				t.Fatalf("Slice(%d,%d) bit %d = %v, model %v", lo, hi, j-lo, s.Get(j-lo), ref[j])
			}
		}

		// Parse is the inverse of String.
		back, err := Parse(v.String())
		if err != nil {
			t.Fatalf("Parse(String()): %v", err)
		}
		if !back.Equal(v) {
			t.Fatalf("Parse/String round trip changed the vector")
		}
	})
}
