package bitvec

import (
	"testing"
)

// bitsFromBytes builds an n-bit vector and its []bool model from a byte
// string (bit j of the vector is bit j%8 of byte j/8, zero past the data).
func bitsFromBytes(n int, data []byte) (*BitVec, []bool) {
	v := New(n)
	ref := make([]bool, n)
	for j := 0; j < n; j++ {
		if j/8 < len(data) && data[j/8]&(1<<uint(j%8)) != 0 {
			v.Set(j)
			ref[j] = true
		}
	}
	return v, ref
}

// FuzzKernels checks every fused counting kernel — the BitVec methods and
// the raw word-slice forms the delta evaluation uses — against a []bool
// model: AndNotCount, OrAndCount, OnesCountRange, AndCountWords,
// AndNotCountWords, AndAndNotCountWords, XorCountWords, and
// GainCountsWords with zero, one, and two occluders.
func FuzzKernels(f *testing.F) {
	f.Add(uint8(7), []byte{0xff}, []byte{0x0f}, []byte{0xaa})
	f.Add(uint8(64), []byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{8, 7, 6, 5}, []byte{})
	f.Add(uint8(65), []byte{}, []byte{0xff, 0xff}, []byte{1})
	f.Add(uint8(200), []byte{0xde, 0xad, 0xbe, 0xef}, []byte{0xca, 0xfe}, []byte{0xba, 0xbe})
	f.Fuzz(func(t *testing.T, size uint8, d1, d2, d3 []byte) {
		n := int(size)
		if n == 0 {
			return
		}
		x, xr := bitsFromBytes(n, d1)
		a, ar := bitsFromBytes(n, d2)
		b, br := bitsFromBytes(n, d3)

		var andNot, orAnd, and, xor, andAndNot int
		for j := 0; j < n; j++ {
			if xr[j] && !ar[j] {
				andNot++
			}
			if (xr[j] || ar[j]) && br[j] {
				orAnd++
			}
			if xr[j] && ar[j] {
				and++
			}
			if xr[j] != ar[j] {
				xor++
			}
			if xr[j] && ar[j] && !br[j] {
				andAndNot++
			}
		}
		if got := x.AndNotCount(a); got != andNot {
			t.Fatalf("AndNotCount = %d, model %d", got, andNot)
		}
		if got := x.OrAndCount(a, b); got != orAnd {
			t.Fatalf("OrAndCount = %d, model %d", got, orAnd)
		}
		if got := AndCountWords(x.Words(), a.Words()); got != and {
			t.Fatalf("AndCountWords = %d, model %d", got, and)
		}
		if got := AndNotCountWords(x.Words(), a.Words()); got != andNot {
			t.Fatalf("AndNotCountWords = %d, model %d", got, andNot)
		}
		if got := XorCountWords(x.Words(), a.Words()); got != xor {
			t.Fatalf("XorCountWords = %d, model %d", got, xor)
		}
		if got := AndAndNotCountWords(x.Words(), a.Words(), b.Words()); got != andAndNot {
			t.Fatalf("AndAndNotCountWords = %d, model %d", got, andAndNot)
		}

		// OnesCountRange over every unaligned boundary pair derived from
		// the data lengths plus the degenerate and full ranges.
		for _, rg := range [][2]int{{0, n}, {0, 0}, {n, n}, {n / 3, n/3 + (n-n/3)/2}, {n / 7, n - n/5}} {
			lo, hi := rg[0], rg[1]
			if lo > hi {
				continue
			}
			want := 0
			for j := lo; j < hi; j++ {
				if xr[j] {
					want++
				}
			}
			if got := x.OnesCountRange(lo, hi); got != want {
				t.Fatalf("OnesCountRange(%d,%d) = %d, model %d", lo, hi, got, want)
			}
		}

		// GainCountsWords: D = (a &^ b) minus occluders; model per bit.
		o2, o2r := bitsFromBytes(n, append(append([]byte{}, d3...), d1...))
		for occCount := 0; occCount <= 2; occCount++ {
			occ := make([][]uint64, 0, 2)
			occRef := make([][]bool, 0, 2)
			if occCount >= 1 {
				occ = append(occ, x.Words())
				occRef = append(occRef, xr)
			}
			if occCount >= 2 {
				occ = append(occ, o2.Words())
				occRef = append(occRef, o2r)
			}
			wantGain, wantOverlap := 0, 0
			for j := 0; j < n; j++ {
				d := ar[j] && !br[j]
				for _, or := range occRef {
					d = d && !or[j]
				}
				if d {
					wantGain++
					if xr[j] {
						wantOverlap++
					}
				}
			}
			gain, overlap := GainCountsWords(x.Words(), a.Words(), b.Words(), occ)
			if gain != wantGain || overlap != wantOverlap {
				t.Fatalf("GainCountsWords(occ=%d) = (%d,%d), model (%d,%d)",
					occCount, gain, overlap, wantGain, wantOverlap)
			}
			gainOnly, zero := GainCountsWords(nil, a.Words(), b.Words(), occ)
			if gainOnly != wantGain || zero != 0 {
				t.Fatalf("GainCountsWords(nil, occ=%d) = (%d,%d), model (%d,0)",
					occCount, gainOnly, zero, wantGain)
			}
		}
	})
}
