// Package core implements DBTF, the distributed Boolean CP decomposition
// algorithm of the paper (Algorithms 2–5).
//
// Given a binary tensor X ∈ B^{I×J×K} and a rank R, Decompose finds binary
// factor matrices A, B, C minimizing |X ⊕ ⋁_r a_:r ∘ b_:r ∘ c_:r| with the
// alternating framework of Algorithm 1, executing each factor update as a
// set of partition-parallel stages on a cluster:
//
//   - the three unfolded tensors are vertically partitioned once and never
//     reshuffled (Section III-B, Algorithm 3);
//   - each partition generates the slice of the Khatri–Rao product it
//     needs from broadcast factor matrices and serves Boolean row
//     summations from cache tables built per update (Section III-C,
//     Algorithm 5);
//   - factor matrices are updated column by column: partitions evaluate,
//     for every row, the reconstruction error with the current column entry
//     set to 0 and to 1, the driver collects the errors and commits the
//     winning values (Section III-A, Algorithm 4).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime/pprof"
	"strconv"
	"time"

	"dbtf/internal/bitvec"
	"dbtf/internal/boolmat"
	"dbtf/internal/cluster"
	"dbtf/internal/partition"
	"dbtf/internal/sumcache"
	"dbtf/internal/tensor"
	"dbtf/internal/topfiber"
	"dbtf/internal/trace"
	"dbtf/internal/transport"
)

// InitScheme selects how the initial factor matrices are drawn.
type InitScheme int

const (
	// InitFiberSample seeds every component r from the fiber cross of a
	// uniformly sampled nonzero (i₀,j₀,k₀): a_:r, b_:r and c_:r become the
	// indicator vectors of the mode-1, mode-2 and mode-3 fibers through
	// that nonzero. This is the default: it keeps components anchored to
	// the data, which the greedy column update requires (see InitRandom).
	InitFiberSample InitScheme = iota
	// InitRandom draws every factor entry independently at the configured
	// InitDensity, as Algorithm 2 states literally. On sparse tensors this
	// collapses to the all-zero factorization: a column entry is set only
	// when the region newly covered by its component is majority-ones,
	// which holds for a random component only at tensor density > 0.5.
	// Kept for the initialization ablation.
	InitRandom
	// InitTopFiber seeds the components greedily from the top fibers of
	// the tensor (topFiberM): component r grows from the mode-1 fiber
	// covering the most nonzeros outside components 0..r-1. Deterministic
	// in the tensor and rank alone — it consumes no randomness, so the
	// Seed is irrelevant and InitialSets > 1 is rejected (every set would
	// be identical). See the topfiber package.
	InitTopFiber
)

// String returns the flag spelling of the scheme ("fiber", "random",
// "topfiber"), or a numeric form for unknown values.
func (s InitScheme) String() string {
	switch s {
	case InitFiberSample:
		return "fiber"
	case InitRandom:
		return "random"
	case InitTopFiber:
		return "topfiber"
	default:
		return fmt.Sprintf("InitScheme(%d)", int(s))
	}
}

// ParseInitScheme parses the flag spelling of an initialization scheme.
// The empty string selects the default (InitFiberSample).
func ParseInitScheme(s string) (InitScheme, error) {
	switch s {
	case "", "fiber":
		return InitFiberSample, nil
	case "random":
		return InitRandom, nil
	case "topfiber":
		return InitTopFiber, nil
	default:
		return 0, fmt.Errorf("core: unknown init scheme %q (want fiber, random or topfiber)", s)
	}
}

// Options configures a decomposition. The zero value of every field selects
// the default documented on the field.
type Options struct {
	// Rank is the number of components R. Required; 1 ≤ R ≤ 64.
	Rank int
	// MaxIter is the maximum number of iterations T. Default 10 (the
	// paper's default).
	MaxIter int
	// MinIter disables the convergence check before this many iterations.
	// Default 1; the runtime experiments set MinIter = MaxIter so every
	// method performs the same number of full update sweeps.
	MinIter int
	// InitialSets is the number of random initial factor sets L evaluated
	// in the first iteration, of which the best is kept (Algorithm 2,
	// lines 5-8). The zero value is the named sentinel InitialSetsAuto,
	// which selects the paper's default of 1; requesting L = 0 sets
	// outright is impossible and anything negative errors. InitTopFiber
	// rejects L > 1: the scheme is deterministic, so every set would be
	// identical and L−1 first-iteration sweeps would be wasted.
	InitialSets int
	// Partitions is the number of vertical partitions N per unfolded
	// tensor. Default: the cluster's machine count.
	Partitions int
	// GroupBits is the cache-splitting threshold V (Lemma 2). Default 15
	// (the paper's default).
	GroupBits int
	// Tolerance stops the iteration when the reconstruction error improves
	// by at most this much between consecutive iterations. Default 0: stop
	// when the error stops strictly decreasing.
	Tolerance int64
	// Init selects the initialization scheme. Default InitFiberSample.
	Init InitScheme
	// InitDensity is the density of the random initial factor matrices
	// under InitRandom, and meaningful only there: a non-zero value with
	// any other scheme is rejected instead of silently ignored. The zero
	// value is the named sentinel InitDensityAuto, which selects
	// (density(X)/R)^(1/3) clamped to [0.01, 0.5] — the expected density
	// of the initial reconstruction then matches the tensor's. An
	// explicit density of exactly 0 (the all-zero factorization) is
	// impossible to request; the sentinel owns that value.
	InitDensity float64
	// Seed seeds the deterministic random initialization.
	Seed int64
	// NoCache disables the row-summation cache and recomputes every
	// Boolean row summation from the factor columns (ablation of Section
	// III-C; DBTF proper always caches).
	NoCache bool
	// Horizontal switches to horizontal (rank-dimension) partitioning of
	// the Khatri–Rao product, the strawman design Section III-D argues
	// against: every row summation then requires combining partial results
	// across partitions through the driver.
	Horizontal bool
	// CheckpointDir, when non-empty, enables iteration-level durable
	// checkpointing: after every CheckpointEvery completed iterations (and
	// at the final one) a versioned snapshot of the factor matrices,
	// iteration state, and RNG stream state is written atomically to
	// CheckpointDir/CheckpointFile, so a killed run can be resumed
	// bit-identically with Resume.
	CheckpointDir string
	// CheckpointEvery is the checkpoint period k in iterations. Default 1.
	// Must be >= 1; meaningful only with CheckpointDir.
	CheckpointEvery int
	// Resume, when true, loads the checkpoint in CheckpointDir and
	// continues from it instead of initializing; the checkpoint's config
	// fingerprint must match this run's. A missing checkpoint file starts
	// a fresh run. Requires CheckpointDir.
	Resume bool
	// Preempt, when non-nil, is polled once per completed iteration at the
	// iteration boundary. Returning true evicts the run: the boundary's
	// state is written as a durable checkpoint (whether or not the period
	// was due) and Decompose returns an error wrapping ErrPreempted. A
	// preempted run resumed with Resume continues bit-identically to one
	// that was never interrupted — this is the eviction/timeslicing hook of
	// the job server. A run that just converged or completed its final
	// iteration finishes instead of yielding. Requires CheckpointDir.
	Preempt func() bool
	// Trace, when non-nil, receives human-readable progress lines.
	Trace func(format string, args ...any)
}

// Named sentinels for the Options fields whose zero value requests a
// computed default. They make "use the default" an explicit, spellable
// request instead of a silent mutation of a zero the caller may have
// meant literally: an impossible literal request (L = 0 initial sets, a
// density-0 random init) has no spelling at all.
const (
	// InitialSetsAuto requests the default number of initial sets (1).
	InitialSetsAuto = 0
	// InitDensityAuto requests the density-matched initial density under
	// InitRandom; see Options.InitDensity.
	InitDensityAuto = 0.0
)

func (o *Options) withDefaults(x *tensor.Tensor, machines int) (Options, error) {
	opt := *o
	if opt.Rank < 1 || opt.Rank > boolmat.MaxRank {
		return opt, fmt.Errorf("core: rank %d outside [1,%d]", opt.Rank, boolmat.MaxRank)
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 10
	}
	if opt.MaxIter < 1 {
		return opt, fmt.Errorf("core: MaxIter %d < 1", opt.MaxIter)
	}
	if opt.MinIter == 0 {
		opt.MinIter = 1
	}
	if opt.MinIter < 1 || opt.MinIter > opt.MaxIter {
		return opt, fmt.Errorf("core: MinIter %d outside [1,%d]", opt.MinIter, opt.MaxIter)
	}
	switch {
	case opt.Init == InitFiberSample || opt.Init == InitRandom || opt.Init == InitTopFiber:
	default:
		return opt, fmt.Errorf("core: unknown init scheme %d", int(opt.Init))
	}
	if opt.InitialSets == InitialSetsAuto {
		opt.InitialSets = 1
	}
	if opt.InitialSets < 1 {
		return opt, fmt.Errorf("core: InitialSets %d < 1", opt.InitialSets)
	}
	if opt.Init == InitTopFiber && opt.InitialSets > 1 {
		return opt, fmt.Errorf("core: InitialSets %d > 1 is meaningless with the deterministic topfiber init (every set would be identical)", opt.InitialSets)
	}
	if opt.Partitions == 0 {
		opt.Partitions = machines
	}
	if opt.Partitions < 1 {
		return opt, fmt.Errorf("core: Partitions %d < 1", opt.Partitions)
	}
	if opt.GroupBits == 0 {
		opt.GroupBits = sumcache.DefaultGroupBits
	}
	if opt.GroupBits < 1 {
		return opt, fmt.Errorf("core: GroupBits %d < 1", opt.GroupBits)
	}
	if opt.Tolerance < 0 {
		return opt, fmt.Errorf("core: Tolerance %d < 0", opt.Tolerance)
	}
	if opt.Init != InitRandom {
		// InitDensity parameterizes only the random scheme. Rejecting it
		// elsewhere (rather than ignoring it) also keeps the config
		// fingerprint honest: an unused parameter must not be auto-filled
		// from the tensor's density and then hashed.
		if opt.InitDensity != InitDensityAuto {
			return opt, fmt.Errorf("core: InitDensity %v is only meaningful with InitRandom (scheme is %v)", opt.InitDensity, opt.Init)
		}
	} else {
		if opt.InitDensity == InitDensityAuto {
			d := math.Cbrt(x.Density() / float64(opt.Rank))
			opt.InitDensity = math.Min(0.5, math.Max(0.01, d))
		}
		if opt.InitDensity < 0 || opt.InitDensity > 1 {
			return opt, fmt.Errorf("core: InitDensity %v outside [0,1]", opt.InitDensity)
		}
	}
	if opt.CheckpointEvery < 0 {
		return opt, fmt.Errorf("core: CheckpointEvery %d < 0", opt.CheckpointEvery)
	}
	if opt.CheckpointDir == "" {
		if opt.Resume {
			return opt, errors.New("core: Resume requires CheckpointDir")
		}
		if opt.CheckpointEvery > 0 {
			return opt, errors.New("core: CheckpointEvery requires CheckpointDir")
		}
		if opt.Preempt != nil {
			return opt, errors.New("core: Preempt requires CheckpointDir (eviction resumes from the checkpoint)")
		}
	} else if opt.CheckpointEvery == 0 {
		opt.CheckpointEvery = 1
	}
	return opt, nil
}

// ErrPreempted is returned (wrapped) by Decompose when Options.Preempt
// evicted the run at an iteration boundary. The boundary's state was
// durably checkpointed first, so rerunning with Resume continues the run
// bit-identically; nothing about the run failed. Callers detect it with
// errors.Is.
var ErrPreempted = errors.New("core: run preempted at iteration boundary")

// Result reports the outcome of a decomposition.
type Result struct {
	// A, B, C are the binary factor matrices (I×R, J×R, K×R).
	A, B, C *boolmat.FactorMatrix
	// Error is the final Boolean reconstruction error |X ⊕ X̂|.
	Error int64
	// Iterations is the number of full iterations executed.
	Iterations int
	// Converged reports whether the error-improvement criterion stopped
	// the iteration before MaxIter.
	Converged bool
	// InitialErrors holds the error of each of the L initial sets after
	// the first iteration.
	InitialErrors []int64
	// IterationErrors holds the reconstruction error of the kept factor
	// set after every iteration; the greedy column commits make it
	// monotonically non-increasing.
	IterationErrors []int64
	// Stats snapshots the cluster's traffic counters after the run.
	Stats cluster.Stats
	// SimTime is the simulated elapsed time on the cluster's machines.
	SimTime time.Duration
	// WallTime is the real elapsed time of the run.
	WallTime time.Duration
}

// Decompose runs DBTF (Algorithm 2) on the given cluster. The context
// bounds the run: cancellation or deadline expiry is checked between
// stages and surfaces as the context's error.
func Decompose(ctx context.Context, x *tensor.Tensor, cl *cluster.Cluster, opts Options) (*Result, error) {
	if x == nil {
		return nil, errors.New("core: nil tensor")
	}
	i, j, k := x.Dims()
	if i == 0 || j == 0 || k == 0 {
		return nil, fmt.Errorf("core: empty tensor %dx%dx%d", i, j, k)
	}
	opt, err := opts.withDefaults(x, cl.Machines())
	if err != nil {
		return nil, err
	}

	//dbtf:allow-nondeterministic wall-clock reporting only (Result.WallTime); no result depends on it
	start := time.Now()
	cl.ResetClock()
	d := &decomposition{ctx: ctx, rootCtx: ctx, x: x, cl: cl, opt: opt, remote: cl.Remote(), reg: newRegistries(cl.Machines())}
	if d.remote {
		if opt.Horizontal {
			// Horizontal partitioning routes every row summation through
			// the driver mid-stage — a chatty pattern the remote protocol
			// deliberately does not speak (the ablation argues against it).
			return nil, errors.New("core: horizontal partitioning requires the simulated backend")
		}
		// Ship the run's immutable inputs: every executor rebuilds the
		// partitioned unfoldings locally from the tensor, and a rejoining
		// machine gets the same blob replayed — the re-shipped partitions
		// of the recovery protocol, over the real socket.
		setup, err := encodeSetup(x, opt, cl.Machines())
		if err != nil {
			return nil, err
		}
		if err := cl.PushState(ctx, transport.StateSetup, setup); err != nil {
			return nil, err
		}
	}

	// Run span: the RunEnd snapshot is the Stats accumulated during this
	// run (diffed against the entry snapshot, so a reused cluster folds
	// correctly), which the trace validator compares against the fold of
	// every event in between. The deferred end also closes a run aborted by
	// an error, including its open iteration span, so even a failed run
	// leaves a structurally valid trace.
	tr := cl.Tracer()
	statsBefore := cl.Stats()
	if tr.Enabled() {
		ev := trace.NewEvent(trace.RunBegin)
		ev.Name = fmt.Sprintf("dbtf rank=%d", opt.Rank)
		ev.Machines = cl.Machines()
		ev.SimNanos = cl.SimElapsed().Nanoseconds()
		tr.Emit(ev)
		defer func() {
			if d.openIter > 0 {
				iev := trace.NewEvent(trace.IterationEnd)
				iev.Iteration = d.openIter
				iev.SimNanos = cl.SimElapsed().Nanoseconds()
				tr.Emit(iev)
			}
			eev := trace.NewEvent(trace.RunEnd)
			eev.SimNanos = cl.SimElapsed().Nanoseconds()
			delta := cl.Stats().TraceDelta().Sub(statsBefore.TraceDelta())
			eev.Delta = &delta
			tr.Emit(eev)
		}()
	}

	// Checkpointing: the fingerprint binds a checkpoint to this exact
	// configuration and tensor, and resume loads the latest snapshot
	// before any distributed work starts.
	checkpointing := opt.CheckpointDir != ""
	if checkpointing {
		d.fp = fingerprint(x, opt, cl.Machines())
	}
	var resumed *checkpoint
	if opt.Resume {
		ck, err := readCheckpoint(opt.CheckpointDir, d.fp)
		if err != nil {
			return nil, err
		}
		if ck != nil {
			// A v2 checkpoint records its init configuration readably, so a
			// changed init scheme gets a targeted error before the opaque
			// fingerprint check. This matters for the legacy un-namespaced
			// fallback file: continuing it under a different init would not
			// be bit-identical to any uninterrupted run.
			if ck.Version >= checkpointV2 {
				if ck.Init != opt.Init {
					return nil, fmt.Errorf("core: checkpoint was written with init scheme %v, run uses %v; resume requires the same init scheme",
						ck.Init, opt.Init)
				}
				if ck.InitialSets != opt.InitialSets {
					return nil, fmt.Errorf("core: checkpoint was written with InitialSets %d, run uses %d; resume requires the same init configuration",
						ck.InitialSets, opt.InitialSets)
				}
				if ck.InitDensity != opt.InitDensity {
					return nil, fmt.Errorf("core: checkpoint was written with InitDensity %v, run uses %v; resume requires the same init configuration",
						ck.InitDensity, opt.InitDensity)
				}
			}
			if ck.Fingerprint != d.fp {
				return nil, fmt.Errorf("core: checkpoint fingerprint %#x does not match run fingerprint %#x (config or tensor changed)",
					ck.Fingerprint, d.fp)
			}
			for _, f := range []struct {
				name string
				m    *boolmat.FactorMatrix
				rows int
			}{{"A", ck.A, i}, {"B", ck.B, j}, {"C", ck.C, k}} {
				if f.m.Rows() != f.rows || f.m.Rank() != opt.Rank {
					return nil, fmt.Errorf("core: checkpoint factor %s is %dx%d, want %dx%d",
						f.name, f.m.Rows(), f.m.Rank(), f.rows, opt.Rank)
				}
			}
			if ck.Iteration > opt.MaxIter {
				return nil, fmt.Errorf("core: checkpoint iteration %d > MaxIter %d", ck.Iteration, opt.MaxIter)
			}
			resumed = ck
		}
	}

	// Machine-loss recovery: when the cluster loses a machine, its share
	// of the cached partitions is re-shipped to the survivors and its
	// cache registry dies with it (survivors rebuild lazily on first use).
	d.cl.OnMachineLoss(d.machineLost)
	defer d.cl.OnMachineLoss(nil)
	if err := d.partitionAll(); err != nil {
		return nil, err
	}
	// Every stage joins its task goroutines (including speculative backups)
	// before returning, so when Decompose returns nothing can still touch
	// the partition arenas and they go back to the slab pool.
	defer func() {
		for _, p := range d.px {
			if p != nil {
				p.Release()
			}
		}
	}()

	src := newCountingSource(opt.Seed)
	rng := rand.New(src)
	res := &Result{}
	var a, b, c *boolmat.FactorMatrix
	var prevErr int64

	// preempt is the eviction poll at the boundary of completed iteration
	// t: a run that just converged or finished its last iteration is about
	// to return its result and is never evicted. When the hook fires, the
	// boundary's state is checkpointed (unless the periodic write above
	// already did) so a Resume continues bit-identically.
	preempt := func(t int, wrote bool) (bool, error) {
		if opt.Preempt == nil || res.Converged || t >= opt.MaxIter || !opt.Preempt() {
			return false, nil
		}
		if !wrote {
			if err := d.writeCheckpointStage(res, a, b, c, prevErr, src.n); err != nil {
				return false, err
			}
		}
		return true, nil
	}

	if resumed != nil {
		// The RNG is consumed only by initialization, which the resumed
		// run already performed; fast-forwarding by the recorded draw
		// count restores the identical stream state.
		src.fastForward(resumed.RNGDraws)
		a, b, c = resumed.A, resumed.B, resumed.C
		prevErr = resumed.PrevErr
		res.InitialErrors = resumed.InitialErrors
		res.IterationErrors = resumed.IterationErrors
		res.Iterations = resumed.Iteration
		res.Converged = resumed.Converged
		d.trace("resumed from checkpoint: iteration %d, error %d", res.Iterations, prevErr)
	} else {
		// First iteration: try L random initial sets and keep the best
		// (Algorithm 2, lines 5-8).
		d.beginIteration(1)
		type set struct {
			a, b, c *boolmat.FactorMatrix
			err     int64
		}
		best := set{err: math.MaxInt64}
		for l := 0; l < opt.InitialSets; l++ {
			// Drawing the initial factors is driver-side work like the
			// unfold: a named span charges its wall time to the driver
			// section, so per-stage attribution sees the init scheme's cost
			// (topfiber's data passes are not free, just near-linear).
			var ia, ib, ic *boolmat.FactorMatrix
			if err := d.cl.DriverNamed(d.ctx, "init", func() {
				ia, ib, ic = initialSet(rng, x, opt)
			}); err != nil {
				return nil, err
			}
			s := set{a: ia, b: ib, c: ic}
			if err := d.updateFactors(s.a, s.b, s.c); err != nil {
				return nil, err
			}
			e, err := d.totalError(s.a, s.b, s.c)
			if err != nil {
				return nil, err
			}
			s.err = e
			res.InitialErrors = append(res.InitialErrors, e)
			d.trace("initial set %d/%d: error %d", l+1, opt.InitialSets, e)
			if e < best.err {
				best = s
			}
		}
		a, b, c, prevErr = best.a, best.b, best.c, best.err
		if opt.InitialSets > 1 {
			// Losing sets' caches reference discarded factor matrices; drop
			// them. (With a single set the registry's entries stay live: the
			// cache totalError built over b serves iteration 2's A-update.)
			for _, r := range d.reg {
				r.clearRelease()
			}
		}
		res.Iterations = 1
		res.IterationErrors = append(res.IterationErrors, prevErr)
		wrote := checkpointing && (1%opt.CheckpointEvery == 0 || opt.MaxIter == 1)
		if wrote {
			if err := d.writeCheckpointStage(res, a, b, c, prevErr, src.n); err != nil {
				return nil, err
			}
		}
		stop, err := preempt(1, wrote)
		if err != nil {
			return nil, err
		}
		d.endIteration(1, prevErr, 0)
		if stop {
			return nil, fmt.Errorf("%w (after iteration 1)", ErrPreempted)
		}
	}

	for t := res.Iterations + 1; t <= opt.MaxIter && !res.Converged; t++ {
		d.beginIteration(t)
		if err := d.updateFactors(a, b, c); err != nil {
			return nil, err
		}
		e, err := d.totalError(a, b, c)
		if err != nil {
			return nil, err
		}
		res.Iterations = t
		res.IterationErrors = append(res.IterationErrors, e)
		d.trace("iteration %d: error %d", t, e)
		if t >= opt.MinIter && prevErr-e <= opt.Tolerance {
			res.Converged = true
		}
		improvement := prevErr - e
		prevErr = e
		wrote := checkpointing && (t%opt.CheckpointEvery == 0 || res.Converged || t == opt.MaxIter)
		if wrote {
			if err := d.writeCheckpointStage(res, a, b, c, prevErr, src.n); err != nil {
				return nil, err
			}
		}
		stop, err := preempt(t, wrote)
		if err != nil {
			return nil, err
		}
		d.endIteration(t, e, improvement)
		if stop {
			return nil, fmt.Errorf("%w (after iteration %d)", ErrPreempted, t)
		}
	}

	res.A, res.B, res.C = a, b, c
	res.Error = prevErr
	res.Stats = cl.Stats()
	res.SimTime = cl.SimElapsed()
	//dbtf:allow-nondeterministic wall-clock reporting only (Result.WallTime); no result depends on it
	res.WallTime = time.Since(start)
	return res, nil
}

// initialSet draws one set of initial factor matrices according to the
// configured scheme. InitTopFiber consumes no randomness: the RNG draw
// count (and with it the checkpointed stream state) advances only for the
// sampling schemes.
func initialSet(rng *rand.Rand, x *tensor.Tensor, opt Options) (a, b, c *boolmat.FactorMatrix) {
	i, j, k := x.Dims()
	if opt.Init == InitTopFiber {
		return topfiber.SeedFactors(x, opt.Rank)
	}
	if opt.Init == InitRandom {
		return boolmat.RandomFactor(rng, i, opt.Rank, opt.InitDensity),
			boolmat.RandomFactor(rng, j, opt.Rank, opt.InitDensity),
			boolmat.RandomFactor(rng, k, opt.Rank, opt.InitDensity)
	}
	a = boolmat.NewFactor(i, opt.Rank)
	b = boolmat.NewFactor(j, opt.Rank)
	c = boolmat.NewFactor(k, opt.Rank)
	coords := x.Coords()
	if len(coords) == 0 {
		return a, b, c
	}
	// rowStart[ii] indexes the first coordinate of mode-1 row ii: the
	// coordinate list is sorted by (I, J, K), so each row is a contiguous
	// range. The vote loops below walk only the rows of the seed fiber's
	// members instead of binary-searching the full list per cell.
	rowStart := make([]int, i+1)
	{
		r := 0
		for idx := range coords {
			for r <= coords[idx].I {
				rowStart[r] = idx
				r++
			}
		}
		for ; r <= i; r++ {
			rowStart[r] = len(coords)
		}
	}
	votesJ := make([]int32, j)
	votesK := make([]int32, k)
	// covered reports whether a cell lies inside the block of an earlier
	// component; seeds are rejection-sampled away from covered cells so
	// the components spread over distinct structures instead of piling
	// onto the densest one.
	covered := func(co tensor.Coord, upto int) bool {
		for r := 0; r < upto; r++ {
			if a.Get(co.I, r) && b.Get(co.J, r) && c.Get(co.K, r) {
				return true
			}
		}
		return false
	}
	for r := 0; r < opt.Rank; r++ {
		seed := coords[rng.Intn(len(coords))]
		for try := 0; try < 50 && covered(seed, r); try++ {
			seed = coords[rng.Intn(len(coords))]
		}
		// a_:r is the mode-1 fiber through the seed; b_:r and c_:r are
		// grown from it by majority vote: an index joins the component
		// when at least half of the a-members support it. This turns the
		// seed's fiber cross into a block estimate, which the alternating
		// updates then refine.
		var aIdx []int
		for ii := 0; ii < i; ii++ {
			if x.Get(ii, seed.J, seed.K) {
				a.Set(ii, r, true)
				aIdx = append(aIdx, ii)
			}
		}
		quorum := int32(len(aIdx)+1) / 2
		if quorum < 1 {
			quorum = 1
		}
		// One pass over each member row tallies both vote vectors: row ii
		// contributes a J-vote for every nonzero in its seed.K slice and a
		// K-vote for every nonzero in its seed.J slice, exactly the cells
		// the per-index Get probes used to test.
		for idx := range votesJ {
			votesJ[idx] = 0
		}
		for idx := range votesK {
			votesK[idx] = 0
		}
		for _, ii := range aIdx {
			for _, co := range coords[rowStart[ii]:rowStart[ii+1]] {
				if co.K == seed.K {
					votesJ[co.J]++
				}
				if co.J == seed.J {
					votesK[co.K]++
				}
			}
		}
		for jj := 0; jj < j; jj++ {
			if votesJ[jj] >= quorum {
				b.Set(jj, r, true)
			}
		}
		for kk := 0; kk < k; kk++ {
			if votesK[kk] >= quorum {
				c.Set(kk, r, true)
			}
		}
	}
	return a, b, c
}

type decomposition struct {
	// ctx is rootCtx with the current iteration's pprof label attached;
	// stages inherit it, so CPU profiles slice by iteration. rootCtx is the
	// caller's context, kept for re-labeling at each iteration boundary.
	ctx     context.Context
	rootCtx context.Context
	// openIter is the 1-based iteration whose trace span is open; 0 when
	// none. The run's deferred end event closes it on an aborted run.
	openIter int
	x        *tensor.Tensor
	cl       *cluster.Cluster
	opt      Options
	// remote marks a cluster backed by a real transport: distributed
	// stages ship to executors and committed state is replicated to them
	// instead of shared through memory.
	remote bool
	px     [3]*partition.Partitioned
	// reg[m] shares row-summation caches among the partitions placed on
	// machine m (Lemmas 4 and 5 count the build once per machine).
	reg []*machineRegistry
	// fp is the config+tensor fingerprint binding checkpoints to this run;
	// zero when checkpointing is disabled.
	fp uint64
}

// machineLost is the cluster's machine-loss callback (invoked at stage
// boundaries, before any of the stage's tasks run): machine m's cache
// registry died with the machine — survivors rebuild their own lazily on
// first use — and m's share of every mode's cached partitions is
// re-shipped to the survivors, charged as shuffle traffic. During the
// partitioning stage itself the unfoldings are not distributed yet and
// there is nothing to re-ship.
func (d *decomposition) machineLost(m int) {
	d.reg[m].clear()
	var bytes int64
	for _, px := range d.px {
		if px == nil {
			continue
		}
		for pi := range px.Parts {
			if pi%d.cl.Machines() == m {
				bytes += px.ReshipBytes(pi)
			}
		}
	}
	if bytes > 0 {
		d.cl.Shuffle(bytes)
	}
	d.trace("machine %d lost: re-shipping %d bytes to survivors", m, bytes)
}

// writeCheckpointStage durably snapshots the run at the just-completed
// iteration boundary. The write is driver-side disk I/O: its wall-clock
// cost is charged through the cluster's Driver section and its size is
// recorded in Stats.CheckpointBytes.
func (d *decomposition) writeCheckpointStage(res *Result, a, b, c *boolmat.FactorMatrix, prevErr int64, rngDraws uint64) error {
	ck := &checkpoint{
		Fingerprint:     d.fp,
		Iteration:       res.Iterations,
		Converged:       res.Converged,
		RNGDraws:        rngDraws,
		PrevErr:         prevErr,
		InitialErrors:   res.InitialErrors,
		IterationErrors: res.IterationErrors,
		A:               a, B: b, C: c,
		Init:        d.opt.Init,
		InitDensity: d.opt.InitDensity,
		InitialSets: d.opt.InitialSets,
	}
	var bytes int64
	var werr error
	if err := d.cl.DriverNamed(d.ctx, "checkpoint", func() {
		bytes, werr = writeCheckpoint(d.opt.CheckpointDir, ck)
	}); err != nil {
		return err
	}
	if werr != nil {
		return fmt.Errorf("core: checkpoint at iteration %d: %w", res.Iterations, werr)
	}
	d.cl.RecordCheckpoint(bytes)
	d.trace("checkpoint: iteration %d, %d bytes", res.Iterations, bytes)
	return nil
}

func (d *decomposition) trace(format string, args ...any) {
	if d.opt.Trace != nil {
		d.opt.Trace(format, args...)
	}
}

// beginIteration opens iteration t's trace span and re-labels the stage
// context so profiles attribute the iteration's kernels to it.
func (d *decomposition) beginIteration(t int) {
	d.ctx = pprof.WithLabels(d.rootCtx, pprof.Labels("iteration", strconv.Itoa(t)))
	if tr := d.cl.Tracer(); tr.Enabled() {
		ev := trace.NewEvent(trace.IterationBegin)
		ev.Iteration = t
		ev.SimNanos = d.cl.SimElapsed().Nanoseconds()
		tr.Emit(ev)
	}
	d.openIter = t
}

// endIteration closes iteration t's span, attaching the reconstruction
// error after the iteration and its improvement over the previous one.
func (d *decomposition) endIteration(t int, e, improvement int64) {
	d.openIter = 0
	if tr := d.cl.Tracer(); tr.Enabled() {
		ev := trace.NewEvent(trace.IterationEnd)
		ev.Iteration = t
		ev.SimNanos = d.cl.SimElapsed().Nanoseconds()
		ev.Error = &e
		ev.ErrorDelta = &improvement
		tr.Emit(ev)
	}
}

// partitionAll unfolds the tensor in its three modes and partitions each
// unfolding (Algorithm 2, lines 1-3). The shuffle volume of distributing
// the partitions is charged to the cluster (Lemma 6).
func (d *decomposition) partitionAll() error {
	// The three unfoldings share one fused sweep over the coordinate list
	// (driver-side, like the initial factors), then each machine builds its
	// mode's partitioning from the precomputed matricization.
	var ux [3]*tensor.Unfolded
	if err := d.cl.DriverNamed(d.ctx, "unfold", func() {
		ux = d.x.UnfoldAll()
	}); err != nil {
		return err
	}
	err := d.cl.ForEachNamed(d.ctx, "partition", 3, func(m int) error {
		d.px[m] = partition.Build(ux[m], d.opt.Partitions)
		return nil
	})
	if err != nil {
		return err
	}
	// The partitionings hold their own copy of every nonzero; the
	// unfoldings are dead weight from here on.
	for _, u := range ux {
		u.Recycle()
	}
	for _, px := range d.px {
		d.cl.Shuffle(px.ShuffleBytes)
	}
	return nil
}

// updateFactors updates A, B and C in place, one at a time while the other
// two are fixed (Algorithm 2, UpdateFactors). The factor matrices are
// broadcast to every machine once per call (Lemma 7).
func (d *decomposition) updateFactors(a, b, c *boolmat.FactorMatrix) error {
	bytes := int64(a.Rows()+b.Rows()+c.Rows()) * int64(d.opt.Rank) / 8
	// BroadcastState (not plain Broadcast): the factor matrices are the
	// working set a machine must re-fetch to recover from a machine loss.
	d.cl.BroadcastState(bytes)
	if d.remote {
		// The modeled broadcast above prices the transfer; this ships it:
		// remote executors replace their factor replicas (invalidating
		// column tasks and caches over the previous versions), after which
		// per-column pushes keep them identical to the driver's copies.
		if err := d.cl.PushState(d.ctx, transport.StateFactors, encodeFactors(a, b, c)); err != nil {
			return err
		}
	}
	// X₍₁₎ ≈ A ∘ (C ⊙ B)ᵀ: PVM blocks indexed by rows of C, cache over B.
	if err := d.updateFactor(0, "A", d.px[0], a, c, b); err != nil {
		return err
	}
	// X₍₂₎ ≈ B ∘ (C ⊙ A)ᵀ.
	if err := d.updateFactor(1, "B", d.px[1], b, c, a); err != nil {
		return err
	}
	// X₍₃₎ ≈ C ∘ (B ⊙ A)ᵀ.
	return d.updateFactor(2, "C", d.px[2], c, b, a)
}

// summer yields Boolean row summations for rank masks; it is the access
// interface shared by the cache tables and the uncached ablation.
type summer interface {
	// Sum returns the Boolean row summation for mask and its popcount;
	// scratch must be entry-width bits and may back the returned vector.
	Sum(mask uint64, scratch *bitvec.BitVec) (*bitvec.BitVec, int)
	// Width returns the entry width in bits.
	Width() int
}

// cacheSummer adapts sumcache.Cache to the summer interface.
type cacheSummer struct{ *sumcache.Cache }

// naiveSummer recomputes every row summation by ORing the selected factor
// columns, sliced to the block range — the behaviour DBTF's cache replaces.
type naiveSummer struct {
	cols  []*bitvec.BitVec // columns of M_s sliced to the block range
	width int
}

func (s naiveSummer) Width() int { return s.width }

func (s naiveSummer) Sum(mask uint64, scratch *bitvec.BitVec) (*bitvec.BitVec, int) {
	scratch.Zero()
	for m := mask; m != 0; m &= m - 1 {
		scratch.Or(s.cols[bits.TrailingZeros64(m)])
	}
	return scratch, scratch.OnesCount()
}

// blockSummers builds, for partition pi, a summer per block: the
// distributed part of Algorithm 5. The full-size cache is resolved through
// the registry of the machine the partition is placed on, so partitions
// sharing a machine share one table — and stages sharing a caching matrix
// (the B- and C-updates both cache over A; totalError's cache over B
// serves the next A-update) share it too, for as long as the matrix's
// version is unchanged. Partial blocks get lazily sliced views, memoized
// per distinct range (Lemma 3 bounds those per partition).
func (d *decomposition) blockSummers(pi int, p *partition.Partition, ms *boolmat.FactorMatrix) []summer {
	return buildBlockSummers(d.reg[d.cl.MachineFor(pi)], p, ms, d.opt.GroupBits, d.opt.NoCache)
}

// buildBlockSummers resolves a partition's summers against one machine's
// registry; the simulated path picks the registry by the engine's task
// placement, a remote executor uses its own. Shared so both backends build
// their caches identically.
func buildBlockSummers(reg *machineRegistry, p *partition.Partition, ms *boolmat.FactorMatrix, groupBits int, noCache bool) []summer {
	out := make([]summer, len(p.Blocks))
	if noCache {
		cols := ms.Columns()
		for bi, b := range p.Blocks {
			sliced := make([]*bitvec.BitVec, len(cols))
			for r, col := range cols {
				sliced[r] = col.Slice(b.InnerLo, b.InnerLo+b.Width())
			}
			out[bi] = naiveSummer{cols: sliced, width: b.Width()}
		}
		return out
	}
	mc := reg.cacheFor(ms, groupBits)
	for bi, b := range p.Blocks {
		if b.Type == partition.Full {
			out[bi] = cacheSummer{mc.full}
			continue
		}
		out[bi] = cacheSummer{mc.slice(b.InnerLo, b.InnerLo+b.Width())}
	}
	return out
}

// updateFactor updates factor matrix a against the partitioned unfolding
// px, where mf indexes the PVM blocks (the first Khatri–Rao operand) and
// ms is cached (the second operand) — Algorithm 4, with the per-row
// decision evaluated as the error difference e1 − e0 over the delta
// region of the two candidate summations instead of two full errors.
func (d *decomposition) updateFactor(modeIdx int, mode string, px *partition.Partitioned, a, mf, ms *boolmat.FactorMatrix) error {
	if d.opt.Horizontal {
		return d.updateFactorHorizontal(mode, px, a, mf, ms)
	}
	// The updated factor names the stage spans and the "mode" pprof label,
	// so both the timeline and CPU profiles split the three updates apart.
	ctx := pprof.WithLabels(d.ctx, pprof.Labels("mode", mode))
	n := len(px.Parts)
	p := a.Rows()

	// Stage: build per-partition column tasks — block summers resolved
	// through the per-machine cache registry (Algorithm 5) plus every
	// buffer the column loop needs, so the loop itself allocates nothing.
	// On a remote backend the tasks live on the executors; here only the
	// collected deltas do.
	tasks := make([]*columnTask, n)
	deltas := make([][]int64, n)
	buildSpec := transport.Spec{Name: "build:" + mode, Kind: transport.KindBuild, Mode: modeIdx, Tasks: n}
	err := d.cl.RunStage(ctx, buildSpec, func(pi int) error {
		tasks[pi] = d.newColumnTask(pi, px.Parts[pi], a, mf, ms)
		return nil
	}, nil)
	if err != nil {
		return err
	}

	for c := 0; c < d.opt.Rank; c++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Stage: every partition evaluates, for each row, the error
		// difference of its column range between the two candidate values
		// (Algorithm 4 lines 4-9 reduced to the flipped cells only).
		evalSpec := transport.Spec{Name: "eval:" + mode, Kind: transport.KindEval, Mode: modeIdx, Col: c, Tasks: n}
		err := d.cl.RunStage(ctx, evalSpec, func(pi int) error {
			tasks[pi].evalColumn(c)
			deltas[pi] = tasks[pi].deltas
			return nil
		}, func(pi int, payload []byte) error {
			ds, err := decodeDeltas(payload, p)
			if err != nil {
				return err
			}
			deltas[pi] = ds
			return nil
		})
		if err != nil {
			return err
		}
		// The driver collects P differences from every partition — one
		// int64 per row, half of Lemma 7's two-errors-per-row bound — and
		// commits the column (Algorithm 4 lines 10-12): set the entry
		// exactly when candidate 1's total error is strictly smaller,
		// i.e. when the summed difference is negative.
		d.cl.Collect(int64(n) * int64(p) * 8)
		err = d.cl.DriverNamed(ctx, "commit:"+mode, func() {
			for r := 0; r < p; r++ {
				var t int64
				for pi := 0; pi < n; pi++ {
					t += deltas[pi][r]
				}
				a.Set(r, c, t < 0)
			}
		})
		if err != nil {
			return err
		}
		if d.remote {
			// Replicate the committed column so executor factor replicas
			// track the driver's copies entry for entry.
			if err := d.cl.PushState(ctx, transport.StateColumn, encodeColumn(modeIdx, c, a)); err != nil {
				return err
			}
		}
	}
	return nil
}

// totalError computes |X ⊕ X̂| from the mode-1 partitions as a distributed
// stage. Its caches over b come from (and feed) the per-machine registry:
// b is unchanged since its own update finished, so the B-update's tables
// are reused here, and these remain valid for the next iteration's
// A-update.
func (d *decomposition) totalError(a, b, c *boolmat.FactorMatrix) (int64, error) {
	px := d.px[0]
	n := len(px.Parts)
	partial := make([]int64, n)
	spec := transport.Spec{Name: "total-error", Kind: transport.KindTotalError, Tasks: n}
	err := d.cl.RunStage(d.ctx, spec, func(pi int) error {
		part := px.Parts[pi]
		partial[pi] = partitionError(part, a, c, d.blockSummers(pi, part, b))
		return nil
	}, func(pi int, payload []byte) error {
		e, err := decodePartial(payload)
		if err != nil {
			return err
		}
		partial[pi] = e
		return nil
	})
	if err != nil {
		return 0, err
	}
	d.cl.Collect(int64(n) * 8)
	var total int64
	for _, e := range partial {
		total += e
	}
	return total, nil
}

// partitionError computes one mode-1 partition's share of |X ⊕ X̂| from
// pre-resolved summers over b: rows indexed by a, PVM blocks by c. Shared
// by the simulated path and remote executors.
func partitionError(part *partition.Partition, a, c *boolmat.FactorMatrix, summers []summer) int64 {
	var e int64
	for bi, blk := range part.Blocks {
		kMask := c.RowMask(blk.PVM)
		sm := summers[bi]
		scratch := bitvec.New(sm.Width())
		for r := 0; r < a.Rows(); r++ {
			sum, pop := sm.Sum(a.RowMask(r)&kMask, scratch)
			e += blk.RowError(r, sum, pop)
		}
	}
	return e
}
