package core

import (
	"fmt"
	"sync"

	"dbtf/internal/boolmat"
	"dbtf/internal/partition"
	"dbtf/internal/tensor"
	"dbtf/internal/transport"
)

// Worker is the executor side of a remote run: one logical machine's
// replicated state — the tensor, the three partitioned unfoldings, the
// current factor matrices, a cache registry, and the column tasks built by
// build stages — plus the stage kinds the coordinator ships. It implements
// transport.Host.
//
// A Worker runs the exact kernels the simulated engine runs
// (buildColumnTask, evalColumn, partitionError) on state kept
// entry-identical to the coordinator's by the StateKind pushes, which is
// what makes remote factors bit-identical to simulated ones for the same
// seed. Calls are serialized by an internal lock; the wire protocol is
// sequential per connection anyway.
type Worker struct {
	mu sync.Mutex
	//dbtf:guardedby mu
	setup wireSetup
	//dbtf:guardedby mu
	x *tensor.Tensor
	//dbtf:guardedby mu
	px [3]*partition.Partitioned
	// reg is this machine's cache registry: summers resolved here are
	// shared by the machine's partitions and across stages, exactly like
	// one simulated machine's registry entry.
	//dbtf:guardedby mu
	reg *machineRegistry
	//dbtf:guardedby mu
	a, b, c *boolmat.FactorMatrix
	// tasks[mode][pi] is the column task a build stage (or a lazy rebuild
	// after reassignment) created for partition pi of the mode's update.
	// Replaced wholesale on every factor push: tasks hold summers over
	// factor versions a push supersedes.
	//dbtf:guardedby mu
	tasks [3]map[int]*columnTask
}

// NewWorker returns an empty executor awaiting a StateSetup push.
func NewWorker() *Worker { return &Worker{} }

// Apply installs one replicated-state blob (transport.Host).
func (w *Worker) Apply(kind transport.StateKind, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch kind {
	case transport.StateSetup:
		return w.applySetupLocked(payload)
	case transport.StateFactors:
		return w.applyFactorsLocked(payload)
	case transport.StateColumn:
		return w.applyColumnLocked(payload)
	}
	return fmt.Errorf("core: worker: unknown state kind %d", kind)
}

func (w *Worker) applySetupLocked(payload []byte) error {
	ws, x, err := decodeSetup(payload)
	if err != nil {
		return err
	}
	w.setup, w.x = ws, x
	// Rebuild the vertical partitionings locally — the executor's share of
	// Algorithm 2's one-off distribution. A replayed setup (machine
	// rejoin) resets everything: the process may have restarted and holds
	// no usable state.
	for m := range w.px {
		w.px[m] = partition.Build(x.Unfold(tensor.Mode(m+1)), ws.Partitions)
	}
	w.reg = &machineRegistry{entries: map[registryKey]*machineCache{}}
	w.a, w.b, w.c = nil, nil, nil
	w.resetTasksLocked()
	return nil
}

func (w *Worker) applyFactorsLocked(payload []byte) error {
	if w.x == nil {
		return fmt.Errorf("core: worker: factors pushed before setup")
	}
	a, b, c, err := decodeFactors(payload)
	if err != nil {
		return err
	}
	i, j, k := w.x.Dims()
	for _, f := range []struct {
		name string
		m    *boolmat.FactorMatrix
		rows int
	}{{"A", a, i}, {"B", b, j}, {"C", c, k}} {
		if f.m.Rows() != f.rows || f.m.Rank() != w.setup.Rank {
			return fmt.Errorf("core: worker: pushed factor %s is %dx%d, want %dx%d",
				f.name, f.m.Rows(), f.m.Rank(), f.rows, w.setup.Rank)
		}
	}
	w.a, w.b, w.c = a, b, c
	// Tasks and caches built over the previous factor versions are stale;
	// the registry's version keys would catch the caches, dropping both
	// keeps memory bounded by the live working set.
	w.reg.clear()
	w.resetTasksLocked()
	return nil
}

func (w *Worker) applyColumnLocked(payload []byte) error {
	modeIdx, col, rows, bits, err := decodeColumn(payload)
	if err != nil {
		return err
	}
	m := w.factorLocked(modeIdx)
	if m == nil {
		return fmt.Errorf("core: worker: column pushed before factors")
	}
	if rows != m.Rows() || col >= m.Rank() {
		return fmt.Errorf("core: worker: column push %d rows/col %d does not fit %dx%d factor",
			rows, col, m.Rows(), m.Rank())
	}
	// In place: live column tasks hold pointers to this matrix and must
	// observe the committed entries, exactly as the simulated path's
	// driver commit mutates the shared matrix under its tasks.
	for r := 0; r < rows; r++ {
		m.Set(r, col, bits[r/8]&(1<<uint(r%8)) != 0)
	}
	return nil
}

func (w *Worker) resetTasksLocked() {
	for m := range w.tasks {
		w.tasks[m] = map[int]*columnTask{}
	}
}

// factor returns the matrix updated in mode modeIdx (0=A, 1=B, 2=C).
func (w *Worker) factorLocked(modeIdx int) *boolmat.FactorMatrix {
	switch modeIdx {
	case 0:
		return w.a
	case 1:
		return w.b
	case 2:
		return w.c
	}
	return nil
}

// modeMatrices resolves a factor update's operand roles, mirroring
// updateFactors: the updated matrix, the PVM-indexing matrix mf, and the
// cached matrix ms.
func (w *Worker) modeMatricesLocked(modeIdx int) (upd, mf, ms *boolmat.FactorMatrix, err error) {
	switch modeIdx {
	case 0:
		upd, mf, ms = w.a, w.c, w.b
	case 1:
		upd, mf, ms = w.b, w.c, w.a
	case 2:
		upd, mf, ms = w.c, w.b, w.a
	default:
		return nil, nil, nil, fmt.Errorf("core: worker: mode %d outside [0,2]", modeIdx)
	}
	if upd == nil || mf == nil || ms == nil {
		return nil, nil, nil, fmt.Errorf("core: worker: mode %d stage before factors push", modeIdx)
	}
	return upd, mf, ms, nil
}

// RunTask executes one task of a shipped stage (transport.Host) and
// returns its result payload.
func (w *Worker) RunTask(spec transport.Spec, task int) ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.x == nil {
		return nil, fmt.Errorf("core: worker: stage %q before setup", spec.Name)
	}
	switch spec.Kind {
	case transport.KindBuild:
		_, err := w.columnTaskForLocked(spec.Mode, task)
		return nil, err
	case transport.KindEval:
		t, err := w.columnTaskForLocked(spec.Mode, task)
		if err != nil {
			return nil, err
		}
		if spec.Col < 0 || spec.Col >= w.setup.Rank {
			return nil, fmt.Errorf("core: worker: eval column %d outside rank %d", spec.Col, w.setup.Rank)
		}
		t.evalColumn(spec.Col)
		return encodeDeltas(t.deltas), nil
	case transport.KindTotalError:
		if w.a == nil {
			return nil, fmt.Errorf("core: worker: total-error before factors push")
		}
		px := w.px[0]
		if task < 0 || task >= len(px.Parts) {
			return nil, fmt.Errorf("core: worker: task %d outside %d partitions", task, len(px.Parts))
		}
		part := px.Parts[task]
		summers := buildBlockSummers(w.reg, part, w.b, w.setup.GroupBits, w.setup.NoCache)
		return encodePartial(partitionError(part, w.a, w.c, summers)), nil
	}
	return nil, fmt.Errorf("core: worker: unknown stage kind %d", spec.Kind)
}

// columnTaskFor returns the mode's column task for partition pi, building
// it if the build stage ran elsewhere (the partition was reassigned to
// this machine after a loss). Lazy rebuild is sound because evalColumn is
// stateless across columns and the cached matrix ms does not change during
// its own mode's update: a task built mid-update is byte-equivalent to one
// built at the build stage.
func (w *Worker) columnTaskForLocked(modeIdx, pi int) (*columnTask, error) {
	upd, mf, ms, err := w.modeMatricesLocked(modeIdx)
	if err != nil {
		return nil, err
	}
	px := w.px[modeIdx]
	if pi < 0 || pi >= len(px.Parts) {
		return nil, fmt.Errorf("core: worker: task %d outside %d partitions", pi, len(px.Parts))
	}
	if t := w.tasks[modeIdx][pi]; t != nil {
		return t, nil
	}
	part := px.Parts[pi]
	summers := buildBlockSummers(w.reg, part, ms, w.setup.GroupBits, w.setup.NoCache)
	t := buildColumnTask(part, upd, mf, summers, w.setup.NoCache)
	w.tasks[modeIdx][pi] = t
	return t, nil
}
