package core

import (
	"fmt"
	"sync"
	"time"

	"dbtf/internal/boolmat"
	"dbtf/internal/cluster"
	"dbtf/internal/partition"
	"dbtf/internal/tensor"
	"dbtf/internal/transport"
)

// Worker is the executor side of a remote run: one logical machine's
// replicated state — the tensor, the three partitioned unfoldings, the
// current factor matrices, a cache registry, and the column tasks built by
// build stages — plus the stage kinds the coordinator ships. It implements
// transport.Host.
//
// A Worker runs the exact kernels the simulated engine runs
// (buildColumnTask, evalColumn, partitionError) on state kept
// entry-identical to the coordinator's by the StateKind pushes, which is
// what makes remote factors bit-identical to simulated ones for the same
// seed.
//
// Concurrency: the wire protocol is one request at a time per
// connection, but a single request may fan out — RunBatch evaluates a
// stage batch's tasks concurrently across the worker's threads, and each
// task's evalColumn row-shards over the same pool. State mutation
// (Apply, task builds, lazy rebuilds) holds the lock exclusively;
// parallel batch evaluation holds it shared, and each task writes only
// its own columnTask, so evaluations never race each other.
type Worker struct {
	// pool is the machine's intra-task worker pool; nil runs everything
	// sequentially. Immutable after construction.
	pool *cluster.Pool
	mu   sync.RWMutex
	//dbtf:guardedby mu
	setup wireSetup
	//dbtf:guardedby mu
	x *tensor.Tensor
	//dbtf:guardedby mu
	px [3]*partition.Partitioned
	// reg is this machine's cache registry: summers resolved here are
	// shared by the machine's partitions and across stages, exactly like
	// one simulated machine's registry entry.
	//dbtf:guardedby mu
	reg *machineRegistry
	//dbtf:guardedby mu
	a, b, c *boolmat.FactorMatrix
	// tasks[mode][pi] is the column task a build stage (or a lazy rebuild
	// after reassignment) created for partition pi of the mode's update.
	// Replaced wholesale on every factor push: tasks hold summers over
	// factor versions a push supersedes.
	//dbtf:guardedby mu
	tasks [3]map[int]*columnTask
}

// NewWorker returns an empty executor awaiting a StateSetup push.
func NewWorker() *Worker { return &Worker{} }

// NewWorkerThreads returns an executor whose stage batches and eval
// kernels may use up to threads OS threads (one simulated machine with T
// cores). Thread counts never change results — only how many goroutines
// compute them — so workers of mixed widths can serve one run.
func NewWorkerThreads(threads int) *Worker {
	if threads <= 1 {
		return &Worker{}
	}
	return &Worker{pool: cluster.NewPool(threads)}
}

// Apply installs one replicated-state blob (transport.Host).
func (w *Worker) Apply(kind transport.StateKind, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch kind {
	case transport.StateSetup:
		return w.applySetupLocked(payload)
	case transport.StateFactors:
		return w.applyFactorsLocked(payload)
	case transport.StateColumn:
		return w.applyColumnLocked(payload)
	}
	return fmt.Errorf("core: worker: unknown state kind %d", kind)
}

func (w *Worker) applySetupLocked(payload []byte) error {
	ws, x, err := decodeSetup(payload)
	if err != nil {
		return err
	}
	w.setup, w.x = ws, x
	// Rebuild the vertical partitionings locally — the executor's share of
	// Algorithm 2's one-off distribution. A replayed setup (machine
	// rejoin) resets everything: the process may have restarted and holds
	// no usable state.
	ux := x.UnfoldAll()
	for m := range w.px {
		if w.px[m] != nil {
			w.px[m].Release()
		}
		w.px[m] = partition.Build(ux[m], ws.Partitions)
		ux[m].Recycle()
	}
	w.reg = &machineRegistry{entries: map[registryKey]*machineCache{}}
	w.a, w.b, w.c = nil, nil, nil
	w.resetTasksLocked()
	return nil
}

func (w *Worker) applyFactorsLocked(payload []byte) error {
	if w.x == nil {
		return fmt.Errorf("core: worker: factors pushed before setup")
	}
	a, b, c, err := decodeFactors(payload)
	if err != nil {
		return err
	}
	i, j, k := w.x.Dims()
	for _, f := range []struct {
		name string
		m    *boolmat.FactorMatrix
		rows int
	}{{"A", a, i}, {"B", b, j}, {"C", c, k}} {
		if f.m.Rows() != f.rows || f.m.Rank() != w.setup.Rank {
			return fmt.Errorf("core: worker: pushed factor %s is %dx%d, want %dx%d",
				f.name, f.m.Rows(), f.m.Rank(), f.rows, w.setup.Rank)
		}
	}
	w.a, w.b, w.c = a, b, c
	// Tasks and caches built over the previous factor versions are stale;
	// the registry's version keys would catch the caches, dropping both
	// keeps memory bounded by the live working set.
	w.reg.clearRelease()
	w.resetTasksLocked()
	return nil
}

func (w *Worker) applyColumnLocked(payload []byte) error {
	modeIdx, col, rows, bits, err := decodeColumn(payload)
	if err != nil {
		return err
	}
	m := w.factorLocked(modeIdx)
	if m == nil {
		return fmt.Errorf("core: worker: column pushed before factors")
	}
	if rows != m.Rows() || col >= m.Rank() {
		return fmt.Errorf("core: worker: column push %d rows/col %d does not fit %dx%d factor",
			rows, col, m.Rows(), m.Rank())
	}
	// In place: live column tasks hold pointers to this matrix and must
	// observe the committed entries, exactly as the simulated path's
	// driver commit mutates the shared matrix under its tasks.
	for r := 0; r < rows; r++ {
		m.Set(r, col, bits[r/8]&(1<<uint(r%8)) != 0)
	}
	return nil
}

func (w *Worker) resetTasksLocked() {
	for m := range w.tasks {
		w.tasks[m] = map[int]*columnTask{}
	}
}

// factor returns the matrix updated in mode modeIdx (0=A, 1=B, 2=C).
func (w *Worker) factorLocked(modeIdx int) *boolmat.FactorMatrix {
	switch modeIdx {
	case 0:
		return w.a
	case 1:
		return w.b
	case 2:
		return w.c
	}
	return nil
}

// modeMatrices resolves a factor update's operand roles, mirroring
// updateFactors: the updated matrix, the PVM-indexing matrix mf, and the
// cached matrix ms.
func (w *Worker) modeMatricesLocked(modeIdx int) (upd, mf, ms *boolmat.FactorMatrix, err error) {
	switch modeIdx {
	case 0:
		upd, mf, ms = w.a, w.c, w.b
	case 1:
		upd, mf, ms = w.b, w.c, w.a
	case 2:
		upd, mf, ms = w.c, w.b, w.a
	default:
		return nil, nil, nil, fmt.Errorf("core: worker: mode %d outside [0,2]", modeIdx)
	}
	if upd == nil || mf == nil || ms == nil {
		return nil, nil, nil, fmt.Errorf("core: worker: mode %d stage before factors push", modeIdx)
	}
	return upd, mf, ms, nil
}

// RunTask executes one task of a shipped stage (transport.Host) and
// returns its result payload.
func (w *Worker) RunTask(spec transport.Spec, task int) ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.x == nil {
		return nil, fmt.Errorf("core: worker: stage %q before setup", spec.Name)
	}
	switch spec.Kind {
	case transport.KindBuild:
		_, err := w.columnTaskForLocked(spec.Mode, task)
		return nil, err
	case transport.KindEval:
		t, err := w.columnTaskForLocked(spec.Mode, task)
		if err != nil {
			return nil, err
		}
		if spec.Col < 0 || spec.Col >= w.setup.Rank {
			return nil, fmt.Errorf("core: worker: eval column %d outside rank %d", spec.Col, w.setup.Rank)
		}
		t.evalColumn(spec.Col)
		return encodeDeltas(t.deltas), nil
	case transport.KindTotalError:
		if w.a == nil {
			return nil, fmt.Errorf("core: worker: total-error before factors push")
		}
		px := w.px[0]
		if task < 0 || task >= len(px.Parts) {
			return nil, fmt.Errorf("core: worker: task %d outside %d partitions", task, len(px.Parts))
		}
		part := px.Parts[task]
		summers := buildBlockSummers(w.reg, part, w.b, w.setup.GroupBits, w.setup.NoCache)
		return encodePartial(partitionError(part, w.a, w.c, summers)), nil
	}
	return nil, fmt.Errorf("core: worker: unknown stage kind %d", spec.Kind)
}

// columnTaskFor returns the mode's column task for partition pi, building
// it if the build stage ran elsewhere (the partition was reassigned to
// this machine after a loss). Lazy rebuild is sound because evalColumn is
// stateless across columns and the cached matrix ms does not change during
// its own mode's update: a task built mid-update is byte-equivalent to one
// built at the build stage.
func (w *Worker) columnTaskForLocked(modeIdx, pi int) (*columnTask, error) {
	upd, mf, ms, err := w.modeMatricesLocked(modeIdx)
	if err != nil {
		return nil, err
	}
	px := w.px[modeIdx]
	if pi < 0 || pi >= len(px.Parts) {
		return nil, fmt.Errorf("core: worker: task %d outside %d partitions", pi, len(px.Parts))
	}
	if t := w.tasks[modeIdx][pi]; t != nil {
		return t, nil
	}
	part := px.Parts[pi]
	summers := buildBlockSummers(w.reg, part, ms, w.setup.GroupBits, w.setup.NoCache)
	t := buildColumnTask(part, upd, mf, summers, w.setup.NoCache, w.pool)
	w.tasks[modeIdx][pi] = t
	return t, nil
}

// RunBatch executes a whole stage batch (transport.BatchHost). Eval
// batches fan their tasks out across the worker's threads: every task is
// first resolved under the exclusive lock (lazy rebuilds after a
// reassignment mutate the task maps and the cache registry), then the
// evaluations — which write only their own columnTask state — run
// concurrently under the shared lock. All other kinds, and sequential
// workers, run the tasks one by one. Failures follow the BatchHost
// contract: the batch fails as a whole, naming the earliest failing task
// in batch order (validation happens in that order before any fan-out,
// so the selection is deterministic even for parallel batches).
func (w *Worker) RunBatch(spec transport.Spec, tasks []int) ([]transport.TaskOutput, error) {
	outs := make([]transport.TaskOutput, len(tasks))
	if spec.Kind != transport.KindEval || len(tasks) <= 1 || w.pool.Threads() <= 1 {
		for i, task := range tasks {
			//dbtf:allow-nondeterministic task nanos are wall-clock reporting charged to the simulated ledger, never fed back into results
			start := time.Now()
			payload, err := w.RunTask(spec, task)
			if err != nil {
				return nil, fmt.Errorf("task %d: %w", task, err)
			}
			outs[i] = transport.TaskOutput{
				Task: task,
				//dbtf:allow-nondeterministic task nanos are wall-clock reporting charged to the simulated ledger, never fed back into results
				Nanos:   time.Since(start).Nanoseconds() + w.pool.DrainExcess(),
				Payload: payload,
			}
		}
		return outs, nil
	}
	cts, err := w.resolveEvalBatch(spec, tasks)
	if err != nil {
		return nil, err
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	w.pool.Run(len(tasks), func(i int) {
		//dbtf:allow-nondeterministic task nanos are wall-clock reporting charged to the simulated ledger, never fed back into results
		start := time.Now()
		cts[i].evalColumn(spec.Col)
		outs[i] = transport.TaskOutput{
			Task: tasks[i],
			//dbtf:allow-nondeterministic task nanos are wall-clock reporting charged to the simulated ledger, never fed back into results
			Nanos:   time.Since(start).Nanoseconds(),
			Payload: encodeDeltas(cts[i].deltas),
		}
	})
	// The wall time the fan-out saved is charged to the batch's first
	// task: the coordinator sums nanos per machine, so attribution within
	// one worker's batch cannot skew the simulated makespan.
	outs[0].Nanos += w.pool.DrainExcess()
	return outs, nil
}

// resolveEvalBatch validates an eval batch and builds (or fetches) every
// task's columnTask under the exclusive lock, in batch order.
func (w *Worker) resolveEvalBatch(spec transport.Spec, tasks []int) ([]*columnTask, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.x == nil {
		return nil, fmt.Errorf("stage before setup")
	}
	if spec.Col < 0 || spec.Col >= w.setup.Rank {
		return nil, fmt.Errorf("eval column %d outside rank %d", spec.Col, w.setup.Rank)
	}
	cts := make([]*columnTask, len(tasks))
	for i, task := range tasks {
		t, err := w.columnTaskForLocked(spec.Mode, task)
		if err != nil {
			return nil, fmt.Errorf("task %d: %w", task, err)
		}
		cts[i] = t
	}
	return cts, nil
}
