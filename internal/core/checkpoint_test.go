package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dbtf/internal/boolmat"
)

func testCheckpoint() *checkpoint {
	rng := rand.New(rand.NewSource(5))
	return &checkpoint{
		Fingerprint:     0xdeadbeefcafef00d,
		Iteration:       3,
		Converged:       true,
		RNGDraws:        1234,
		PrevErr:         42,
		InitialErrors:   []int64{99, 77},
		IterationErrors: []int64{77, 60, 42},
		A:               boolmat.RandomFactor(rng, 10, 4, 0.3),
		B:               boolmat.RandomFactor(rng, 8, 4, 0.3),
		C:               boolmat.RandomFactor(rng, 6, 4, 0.3),
	}
}

func checkpointsEqual(a, b *checkpoint) bool {
	if a.Fingerprint != b.Fingerprint || a.Iteration != b.Iteration ||
		a.Converged != b.Converged || a.RNGDraws != b.RNGDraws || a.PrevErr != b.PrevErr {
		return false
	}
	for _, p := range [][2][]int64{{a.InitialErrors, b.InitialErrors}, {a.IterationErrors, b.IterationErrors}} {
		if len(p[0]) != len(p[1]) {
			return false
		}
		for i := range p[0] {
			if p[0][i] != p[1][i] {
				return false
			}
		}
	}
	return a.A.Equal(b.A) && a.B.Equal(b.B) && a.C.Equal(b.C)
}

func TestCheckpointRoundtrip(t *testing.T) {
	ck := testCheckpoint()
	got, err := decodeCheckpoint(ck.encode())
	if err != nil {
		t.Fatal(err)
	}
	if !checkpointsEqual(ck, got) {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", ck, got)
	}
}

func TestCheckpointDecodeRejectsCorruption(t *testing.T) {
	valid := testCheckpoint().encode()
	cases := map[string][]byte{
		"empty":     {},
		"too short": valid[:8],
		"truncated": valid[:len(valid)-9],
		"trailing":  append(append([]byte(nil), valid...), 0, 1, 2, 3),
	}
	for i := 0; i < len(valid); i += 7 {
		c := append([]byte(nil), valid...)
		c[i] ^= 0x40
		cases[fmt.Sprintf("bit flip at %d", i)] = c
	}
	for name, data := range cases {
		if _, err := decodeCheckpoint(data); err == nil {
			t.Errorf("%s: corrupt checkpoint decoded without error", name)
		}
	}
}

func TestWriteCheckpointAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	first := testCheckpoint()
	if _, err := writeCheckpoint(dir, first); err != nil {
		t.Fatal(err)
	}
	second := testCheckpoint()
	second.Iteration = 4
	second.PrevErr = 30
	second.IterationErrors = append(second.IterationErrors, 30)
	n, err := writeCheckpoint(dir, second)
	if err != nil {
		t.Fatal(err)
	}
	got, err := readCheckpoint(dir, second.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if !checkpointsEqual(second, got) {
		t.Fatal("read checkpoint is not the latest written one")
	}
	name := CheckpointFileName(second.Fingerprint)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != name {
		t.Fatalf("directory holds %v, want only %s (no temp files)", entries, name)
	}
	if fi, err := os.Stat(filepath.Join(dir, name)); err != nil || fi.Size() != n {
		t.Fatalf("checkpoint size %v (err %v), recorded %d", fi, err, n)
	}
}

func TestReadCheckpointMissingIsFreshStart(t *testing.T) {
	ck, err := readCheckpoint(t.TempDir(), 0xabc)
	if err != nil || ck != nil {
		t.Fatalf("readCheckpoint(empty dir) = %v, %v; want nil, nil", ck, err)
	}
}

func TestReadCheckpointLegacyFallback(t *testing.T) {
	// A directory written by a pre-namespacing build holds the checkpoint
	// under the bare legacy name; readCheckpoint must still find it.
	dir := t.TempDir()
	ck := testCheckpoint()
	if _, err := writeCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, CheckpointFileName(ck.Fingerprint)),
		filepath.Join(dir, CheckpointFile)); err != nil {
		t.Fatal(err)
	}
	got, err := readCheckpoint(dir, ck.Fingerprint)
	if err != nil || got == nil || !checkpointsEqual(ck, got) {
		t.Fatalf("legacy checkpoint not read back: %v, %v", got, err)
	}
}

func TestCountingSourceFastForward(t *testing.T) {
	a := newCountingSource(99)
	rng := rand.New(a)
	for i := 0; i < 500; i++ {
		rng.Intn(10 + i)
		rng.Float64()
	}
	b := newCountingSource(99)
	b.fastForward(a.n)
	if b.n != a.n {
		t.Fatalf("fast-forwarded draw count %d, want %d", b.n, a.n)
	}
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d after fast-forward: %d != %d", i, x, y)
		}
	}
}

func TestCheckpointOptionValidation(t *testing.T) {
	cl := testCluster(2)
	x := randomTensor(rand.New(rand.NewSource(1)), 4, 4, 4, 0.2)
	for name, opt := range map[string]Options{
		"resume without dir": {Rank: 2, Resume: true},
		"every without dir":  {Rank: 2, CheckpointEvery: 2},
		"negative every":     {Rank: 2, CheckpointDir: t.TempDir(), CheckpointEvery: -1},
	} {
		if _, err := Decompose(context.Background(), x, cl, opt); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// resultsEqual compares everything a bit-identical resume must reproduce.
func resultsEqual(a, b *Result) bool {
	if a.Error != b.Error || a.Iterations != b.Iterations || a.Converged != b.Converged ||
		!a.A.Equal(b.A) || !a.B.Equal(b.B) || !a.C.Equal(b.C) ||
		len(a.InitialErrors) != len(b.InitialErrors) || len(a.IterationErrors) != len(b.IterationErrors) {
		return false
	}
	for i := range a.InitialErrors {
		if a.InitialErrors[i] != b.InitialErrors[i] {
			return false
		}
	}
	for i := range a.IterationErrors {
		if a.IterationErrors[i] != b.IterationErrors[i] {
			return false
		}
	}
	return true
}

func TestKillAtCheckpointThenResumeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, _, _, _ := plantedTensor(rng, 14, 12, 10, 3, 0.3)
	base := Options{Rank: 3, MaxIter: 6, MinIter: 6, InitialSets: 2, Seed: 21, CheckpointEvery: 1}

	opt := base
	opt.CheckpointDir = t.TempDir()
	uninterrupted, err := Decompose(context.Background(), x, testCluster(4), opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("kill after iteration %d", k), func(t *testing.T) {
			opt := base
			opt.CheckpointDir = t.TempDir()
			// Kill the run right after the checkpoint for iteration k is
			// durable: the Trace hook cancels the context, and the next
			// stage boundary observes it.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opt.Trace = func(format string, args ...any) {
				line := fmt.Sprintf(format, args...)
				var iter, bytes int
				if n, _ := fmt.Sscanf(line, "checkpoint: iteration %d, %d bytes", &iter, &bytes); n == 2 && iter == k {
					cancel()
				}
			}
			if _, err := Decompose(ctx, x, testCluster(4), opt); !errors.Is(err, context.Canceled) {
				t.Fatalf("killed run returned %v, want context.Canceled", err)
			}
			fp, err := Fingerprint(x, opt, 4)
			if err != nil {
				t.Fatal(err)
			}
			ck, err := readCheckpoint(opt.CheckpointDir, fp)
			if err != nil || ck == nil || ck.Iteration != k {
				t.Fatalf("latest checkpoint after kill: %+v, %v; want iteration %d", ck, err, k)
			}

			opt.Trace = nil
			opt.Resume = true
			resumed, err := Decompose(context.Background(), x, testCluster(4), opt)
			if err != nil {
				t.Fatal(err)
			}
			if !resultsEqual(uninterrupted, resumed) {
				t.Fatalf("resumed run differs from uninterrupted:\nuninterrupted: err=%d iters=%d errors=%v\nresumed:       err=%d iters=%d errors=%v",
					uninterrupted.Error, uninterrupted.Iterations, uninterrupted.IterationErrors,
					resumed.Error, resumed.Iterations, resumed.IterationErrors)
			}
		})
	}
}

func TestResumeMissingCheckpointStartsFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, _, _, _ := plantedTensor(rng, 10, 10, 10, 2, 0.3)
	opt := Options{Rank: 2, MaxIter: 3, MinIter: 3, Seed: 5, CheckpointDir: t.TempDir(), Resume: true}
	fresh, err := Decompose(context.Background(), x, testCluster(2), opt)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Decompose(context.Background(), x, testCluster(2), Options{Rank: 2, MaxIter: 3, MinIter: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(fresh, plain) {
		t.Fatal("resume from a missing checkpoint must run fresh and match a plain run")
	}
}

func TestResumeRejectsFingerprintMismatch(t *testing.T) {
	// Legacy (un-namespaced) checkpoint files carry no config identity in
	// their name, so resuming under a changed config finds the stale file
	// through the fallback and must refuse it explicitly.
	rng := rand.New(rand.NewSource(11))
	x, _, _, _ := plantedTensor(rng, 10, 10, 10, 2, 0.3)
	dir := t.TempDir()
	opt := Options{Rank: 2, MaxIter: 3, MinIter: 3, Seed: 5, CheckpointDir: dir}
	if _, err := Decompose(context.Background(), x, testCluster(2), opt); err != nil {
		t.Fatal(err)
	}
	fp, err := Fingerprint(x, opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, CheckpointFileName(fp)),
		filepath.Join(dir, CheckpointFile)); err != nil {
		t.Fatal(err)
	}
	opt.Seed = 6
	opt.Resume = true
	_, err = Decompose(context.Background(), x, testCluster(2), opt)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("resume under a changed config returned %v, want fingerprint mismatch", err)
	}
}

func TestResumeChangedConfigStartsFreshNamespace(t *testing.T) {
	// With fingerprint-namespaced files a changed config simply has no
	// checkpoint of its own yet: it starts fresh in its own lineage and
	// must not disturb the original run's file.
	rng := rand.New(rand.NewSource(11))
	x, _, _, _ := plantedTensor(rng, 10, 10, 10, 2, 0.3)
	dir := t.TempDir()
	opt := Options{Rank: 2, MaxIter: 3, MinIter: 3, Seed: 5, CheckpointDir: dir}
	if _, err := Decompose(context.Background(), x, testCluster(2), opt); err != nil {
		t.Fatal(err)
	}
	fpOld, err := Fingerprint(x, opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	oldImage, err := os.ReadFile(filepath.Join(dir, CheckpointFileName(fpOld)))
	if err != nil {
		t.Fatal(err)
	}
	opt.Seed = 6
	opt.Resume = true
	res, err := Decompose(context.Background(), x, testCluster(2), opt)
	if err != nil {
		t.Fatalf("resume under a changed config with namespaced checkpoints: %v (want fresh start)", err)
	}
	plain, err := Decompose(context.Background(), x, testCluster(2),
		Options{Rank: 2, MaxIter: 3, MinIter: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(res, plain) {
		t.Fatal("changed-config resume must run fresh and match a plain run")
	}
	after, err := os.ReadFile(filepath.Join(dir, CheckpointFileName(fpOld)))
	if err != nil || string(after) != string(oldImage) {
		t.Fatalf("original run's checkpoint disturbed by the new lineage (err %v)", err)
	}
}

func TestResumeCompletedRunReturnsStoredResult(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x, _, _, _ := plantedTensor(rng, 12, 10, 8, 2, 0.3)
	opt := Options{Rank: 2, MaxIter: 4, MinIter: 4, Seed: 3, CheckpointDir: t.TempDir()}
	full, err := Decompose(context.Background(), x, testCluster(2), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Resume = true
	again, err := Decompose(context.Background(), x, testCluster(2), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(full, again) {
		t.Fatal("resuming a completed run must return the stored result")
	}
	if again.Stats.Stages >= full.Stats.Stages {
		t.Fatalf("resume of a completed run executed %d stages (full run: %d); it must skip the iterations",
			again.Stats.Stages, full.Stats.Stages)
	}
}

func TestCheckpointEveryKWritesFinal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x, _, _, _ := plantedTensor(rng, 10, 10, 10, 2, 0.3)
	opt := Options{Rank: 2, MaxIter: 5, MinIter: 5, Seed: 3,
		CheckpointDir: t.TempDir(), CheckpointEvery: 2}
	res, err := Decompose(context.Background(), x, testCluster(2), opt)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Fingerprint(x, opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := readCheckpoint(opt.CheckpointDir, fp)
	if err != nil || ck == nil {
		t.Fatalf("readCheckpoint: %v, %v", ck, err)
	}
	if ck.Iteration != res.Iterations {
		t.Fatalf("final checkpoint at iteration %d, want %d: the last iteration must be durable even off the period",
			ck.Iteration, res.Iterations)
	}
	if res.Stats.CheckpointBytes <= 0 {
		t.Fatalf("CheckpointBytes = %d, want > 0", res.Stats.CheckpointBytes)
	}
}

func TestConcurrentCheckpointJobsSharedDir(t *testing.T) {
	// Two resumable jobs sharing one checkpoint directory (the job server's
	// default before per-job dirs, and the CLI's -checkpoint-dir) must not
	// collide: each writes and reads only its fingerprint-namespaced file.
	// Under -race this also drives the two write paths concurrently.
	rng := rand.New(rand.NewSource(23))
	x, _, _, _ := plantedTensor(rng, 14, 12, 10, 3, 0.3)
	shared := t.TempDir()
	seeds := []int64{101, 202}
	mkOpt := func(seed int64) Options {
		return Options{Rank: 3, MaxIter: 4, MinIter: 4, Seed: seed,
			CheckpointDir: shared, CheckpointEvery: 1}
	}

	solo := make([]*Result, len(seeds))
	for i, seed := range seeds {
		res, err := Decompose(context.Background(), x, testCluster(4),
			Options{Rank: 3, MaxIter: 4, MinIter: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = res
	}

	results := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			results[i], errs[i] = Decompose(context.Background(), x, testCluster(4), mkOpt(seed))
		}(i, seed)
	}
	wg.Wait()
	for i := range seeds {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !resultsEqual(results[i], solo[i]) {
			t.Fatalf("job %d sharing a checkpoint dir diverged from its solo run", i)
		}
	}

	want := map[string]bool{}
	for _, seed := range seeds {
		fp, err := Fingerprint(x, mkOpt(seed), 4)
		if err != nil {
			t.Fatal(err)
		}
		want[CheckpointFileName(fp)] = true
	}
	entries, err := os.ReadDir(shared)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(want) {
		t.Fatalf("shared dir holds %d files, want %d", len(entries), len(want))
	}
	for _, e := range entries {
		if !want[e.Name()] {
			t.Fatalf("unexpected file %s in shared checkpoint dir", e.Name())
		}
	}

	// Each job resumes its own lineage from the shared directory.
	for i, seed := range seeds {
		opt := mkOpt(seed)
		opt.Resume = true
		res, err := Decompose(context.Background(), x, testCluster(4), opt)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(res, solo[i]) {
			t.Fatalf("job %d resumed from the shared dir does not match its solo run", i)
		}
	}
}

func FuzzCheckpointDecode(f *testing.F) {
	f.Add(testCheckpoint().encode())
	small := &checkpoint{Iteration: 1, PrevErr: 9, IterationErrors: []int64{9},
		A: boolmat.NewFactor(1, 1), B: boolmat.NewFactor(1, 1), C: boolmat.NewFactor(0, 1)}
	f.Add(small.encode())
	v1 := testCheckpoint()
	v1.Version = checkpointV1
	f.Add(v1.encode())
	f.Add([]byte("DBTFCKP\x01 garbage"))
	f.Add([]byte("DBTFCKP\x02 garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := decodeCheckpoint(data)
		if err != nil {
			return
		}
		// A decoded checkpoint must re-encode to the identical image: the
		// format is canonical, so decode(encode(decode(x))) cannot drift.
		if got := ck.encode(); string(got) != string(data) {
			t.Fatalf("decode/encode not canonical:\nin:  %x\nout: %x", data, got)
		}
	})
}

func TestCheckpointV1DecodesAndReencodesCanonically(t *testing.T) {
	// A v1 image (written by a pre-init-field build) must still decode,
	// report "init not recorded" (Init = -1), and re-encode byte-identically
	// in its own layout — the fuzz canonicality property, pinned explicitly.
	v1 := testCheckpoint()
	v1.Version = checkpointV1
	img := v1.encode()
	if img[7] != checkpointV1 {
		t.Fatalf("version byte %#x, want v1", img[7])
	}
	got, err := decodeCheckpoint(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != checkpointV1 || got.Init != -1 {
		t.Fatalf("decoded v1: Version %#x Init %d, want v1 with Init sentinel -1", got.Version, got.Init)
	}
	if !checkpointsEqual(v1, got) {
		t.Fatal("v1 roundtrip mismatch")
	}
	if re := got.encode(); string(re) != string(img) {
		t.Fatal("v1 image does not re-encode canonically")
	}
}

func TestCheckpointV2RecordsInitConfig(t *testing.T) {
	ck := testCheckpoint()
	ck.Init = InitTopFiber
	ck.InitDensity = 0.25
	ck.InitialSets = 3
	got, err := decodeCheckpoint(ck.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != checkpointV2 || got.Init != InitTopFiber ||
		got.InitDensity != 0.25 || got.InitialSets != 3 {
		t.Fatalf("v2 init fields not round-tripped: %+v", got)
	}
}

func TestCheckpointDecodeRejectsUnknownVersion(t *testing.T) {
	img := testCheckpoint().encode()
	img[7] = 0x03
	// Re-seal the CRC so only the version check can reject it.
	body := img[:len(img)-4]
	binary.LittleEndian.PutUint32(img[len(img)-4:], crc32.ChecksumIEEE(body))
	if _, err := decodeCheckpoint(img); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown version decoded: %v", err)
	}
}

func TestResumeRejectsInitSchemeMismatch(t *testing.T) {
	// Satellite of ISSUE 10: a legacy (un-namespaced) checkpoint written
	// under one init scheme, resumed under another, must name the scheme
	// mismatch instead of reporting an opaque fingerprint difference.
	rng := rand.New(rand.NewSource(41))
	x, _, _, _ := plantedTensor(rng, 12, 10, 8, 2, 0.3)
	dir := t.TempDir()
	opt := Options{Rank: 2, MaxIter: 3, MinIter: 3, Seed: 5, CheckpointDir: dir}
	if _, err := Decompose(context.Background(), x, testCluster(2), opt); err != nil {
		t.Fatal(err)
	}
	fp, err := Fingerprint(x, opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, CheckpointFileName(fp)),
		filepath.Join(dir, CheckpointFile)); err != nil {
		t.Fatal(err)
	}
	opt.Init = InitTopFiber
	opt.Resume = true
	_, err = Decompose(context.Background(), x, testCluster(2), opt)
	if err == nil || !strings.Contains(err.Error(), "init scheme") {
		t.Fatalf("resume under a changed init scheme returned %v, want a named init-scheme mismatch", err)
	}
	if !strings.Contains(err.Error(), "fiber") || !strings.Contains(err.Error(), "topfiber") {
		t.Fatalf("mismatch error does not name both schemes: %v", err)
	}
}

func TestKillThenResumeTopFiberBitIdentical(t *testing.T) {
	// Kill-at-k/resume through an init-mode run: the topfiber scheme draws
	// nothing from the RNG, so the checkpointed stream state is zero draws
	// and the resumed run must still be bit-identical.
	rng := rand.New(rand.NewSource(43))
	x, _, _, _ := plantedTensor(rng, 14, 12, 10, 3, 0.3)
	base := Options{Rank: 3, MaxIter: 5, MinIter: 5, Init: InitTopFiber, CheckpointEvery: 1}

	opt := base
	opt.CheckpointDir = t.TempDir()
	uninterrupted, err := Decompose(context.Background(), x, testCluster(4), opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 3} {
		t.Run(fmt.Sprintf("kill after iteration %d", k), func(t *testing.T) {
			opt := base
			opt.CheckpointDir = t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opt.Trace = func(format string, args ...any) {
				line := fmt.Sprintf(format, args...)
				var iter, bytes int
				if n, _ := fmt.Sscanf(line, "checkpoint: iteration %d, %d bytes", &iter, &bytes); n == 2 && iter == k {
					cancel()
				}
			}
			if _, err := Decompose(ctx, x, testCluster(4), opt); !errors.Is(err, context.Canceled) {
				t.Fatalf("killed run returned %v, want context.Canceled", err)
			}
			fp, err := Fingerprint(x, opt, 4)
			if err != nil {
				t.Fatal(err)
			}
			ck, err := readCheckpoint(opt.CheckpointDir, fp)
			if err != nil || ck == nil || ck.Iteration != k {
				t.Fatalf("latest checkpoint after kill: %+v, %v; want iteration %d", ck, err, k)
			}
			if ck.RNGDraws != 0 {
				t.Fatalf("topfiber checkpoint records %d RNG draws, want 0 (the scheme is deterministic)", ck.RNGDraws)
			}
			if ck.Init != InitTopFiber {
				t.Fatalf("checkpoint init scheme %v, want topfiber", ck.Init)
			}

			opt.Trace = nil
			opt.Resume = true
			resumed, err := Decompose(context.Background(), x, testCluster(4), opt)
			if err != nil {
				t.Fatal(err)
			}
			if !resultsEqual(uninterrupted, resumed) {
				t.Fatal("topfiber run resumed from a kill differs from the uninterrupted run")
			}
		})
	}
}
