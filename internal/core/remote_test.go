package core

import (
	"context"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"dbtf/internal/boolmat"
	"dbtf/internal/cluster"
	"dbtf/internal/transport"
)

// hostTransport is the minimal remote backend: Worker hosts called
// in-process with no sockets. It exercises the whole driver/executor split
// — state replication, stage shipping, result payloads — so a divergence
// here is a protocol bug, not a networking bug.
type hostTransport struct {
	hosts []transport.Host
	// batch ships each machine's tasks as one RunBatch call when the host
	// implements transport.BatchHost, mirroring the tcp server's
	// type-assertion; false calls RunTask per task.
	batch bool
	sent  atomic.Int64
	recvd atomic.Int64
}

func newHostTransport(machines int) *hostTransport {
	ht := &hostTransport{}
	for m := 0; m < machines; m++ {
		ht.hosts = append(ht.hosts, NewWorker())
	}
	return ht
}

// newBatchHostTransport builds Worker hosts of the given thread width and
// ships per-machine batches, exercising the parallel batch path end to
// end.
func newBatchHostTransport(machines, threads int) *hostTransport {
	ht := &hostTransport{batch: true}
	for m := 0; m < machines; m++ {
		ht.hosts = append(ht.hosts, NewWorkerThreads(threads))
	}
	return ht
}

func (h *hostTransport) Machines() int { return len(h.hosts) }

func (h *hostTransport) Membership(context.Context) []transport.LivenessEvent { return nil }

func (h *hostTransport) PushState(ctx context.Context, kind transport.StateKind, payload []byte) error {
	for _, host := range h.hosts {
		if err := host.Apply(kind, payload); err != nil {
			return err
		}
		h.sent.Add(int64(len(payload)))
	}
	return nil
}

func (h *hostTransport) Run(ctx context.Context, spec transport.Spec, deliver func(transport.TaskResult) error) error {
	if h.batch {
		for m := range h.hosts {
			var tasks []int
			for task := m; task < spec.Tasks; task += len(h.hosts) {
				tasks = append(tasks, task)
			}
			if len(tasks) == 0 {
				continue
			}
			outs, err := h.hosts[m].(transport.BatchHost).RunBatch(spec, tasks)
			if err != nil {
				return err
			}
			for _, out := range outs {
				h.recvd.Add(int64(len(out.Payload)))
				if err := deliver(transport.TaskResult{Task: out.Task, Machine: m, Nanos: 1000, Payload: out.Payload}); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for task := 0; task < spec.Tasks; task++ {
		m := task % len(h.hosts)
		payload, err := h.hosts[m].RunTask(spec, task)
		if err != nil {
			return err
		}
		h.recvd.Add(int64(len(payload)))
		if err := deliver(transport.TaskResult{Task: task, Machine: m, Nanos: 1000, Payload: payload}); err != nil {
			return err
		}
	}
	return nil
}

func (h *hostTransport) WireBytes() (int64, int64) { return h.sent.Load(), h.recvd.Load() }
func (h *hostTransport) Close() error              { return nil }

// TestRemoteHostsMatchSimulated is the in-process half of the transport
// differential guarantee: for the same seed, Decompose over Worker hosts
// must be bit-identical to Decompose on the simulated backend — factors,
// error trajectory, and the formula-based traffic statistics.
func TestRemoteHostsMatchSimulated(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 4; trial++ {
		i, j, k := rng.Intn(12)+4, rng.Intn(12)+4, rng.Intn(12)+4
		x := randomTensor(rng, i, j, k, 0.12)
		opt := Options{
			Rank:        rng.Intn(4) + 2,
			Seed:        int64(trial + 1),
			MaxIter:     3,
			Partitions:  rng.Intn(3) + 1,
			InitialSets: 2,
			NoCache:     trial%2 == 1,
		}
		machines := rng.Intn(3) + 2

		sim, err := Decompose(context.Background(), x, testCluster(machines), opt)
		if err != nil {
			t.Fatalf("trial %d: simulated: %v", trial, err)
		}
		rem, err := Decompose(context.Background(), x,
			cluster.New(cluster.Config{Machines: machines, Transport: newHostTransport(machines)}), opt)
		if err != nil {
			t.Fatalf("trial %d: remote: %v", trial, err)
		}

		if !rem.A.Equal(sim.A) || !rem.B.Equal(sim.B) || !rem.C.Equal(sim.C) {
			t.Fatalf("trial %d: remote factors differ from simulated", trial)
		}
		if rem.Error != sim.Error || rem.Iterations != sim.Iterations || rem.Converged != sim.Converged {
			t.Fatalf("trial %d: remote result %d/%d/%v, simulated %d/%d/%v",
				trial, rem.Error, rem.Iterations, rem.Converged, sim.Error, sim.Iterations, sim.Converged)
		}
		if len(rem.IterationErrors) != len(sim.IterationErrors) {
			t.Fatalf("trial %d: iteration-error lengths differ: %d vs %d",
				trial, len(rem.IterationErrors), len(sim.IterationErrors))
		}
		for it := range rem.IterationErrors {
			if rem.IterationErrors[it] != sim.IterationErrors[it] {
				t.Fatalf("trial %d: iteration %d error %d, simulated %d",
					trial, it, rem.IterationErrors[it], sim.IterationErrors[it])
			}
		}
		// The formula-based accounting is backend-independent by design.
		rs, ss := rem.Stats, sim.Stats
		if rs.Stages != ss.Stages || rs.Tasks != ss.Tasks {
			t.Fatalf("trial %d: stage/task counts differ: %d/%d vs %d/%d",
				trial, rs.Stages, rs.Tasks, ss.Stages, ss.Tasks)
		}
		if rs.ShuffledBytes != ss.ShuffledBytes || rs.BroadcastBytes != ss.BroadcastBytes || rs.CollectedBytes != ss.CollectedBytes {
			t.Fatalf("trial %d: traffic formulas differ: shuffle %d/%d broadcast %d/%d collect %d/%d",
				trial, rs.ShuffledBytes, ss.ShuffledBytes, rs.BroadcastBytes, ss.BroadcastBytes,
				rs.CollectedBytes, ss.CollectedBytes)
		}
	}
}

// TestWorkerRejectsOutOfOrderState pins the executor's error paths: stages
// before setup, factors before setup, columns before factors, and garbage
// payloads must all fail loudly.
func TestWorkerRejectsOutOfOrderState(t *testing.T) {
	w := NewWorker()
	if _, err := w.RunTask(transport.Spec{Name: "eval:A", Kind: transport.KindEval}, 0); err == nil {
		t.Fatal("RunTask before setup succeeded")
	}
	if err := w.Apply(transport.StateFactors, nil); err == nil {
		t.Fatal("factors push before setup succeeded")
	}
	if err := w.Apply(transport.StateColumn, nil); err == nil {
		t.Fatal("column push before setup succeeded")
	}
	if err := w.Apply(transport.StateSetup, []byte("garbage")); err == nil {
		t.Fatal("garbage setup payload accepted")
	}
	if err := w.Apply(transport.StateKind(99), nil); err == nil {
		t.Fatal("unknown state kind accepted")
	}

	rng := rand.New(rand.NewSource(3))
	x := randomTensor(rng, 5, 6, 7, 0.2)
	setup, err := encodeSetup(x, Options{Rank: 2, Partitions: 2, GroupBits: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Apply(transport.StateSetup, setup); err != nil {
		t.Fatalf("valid setup rejected: %v", err)
	}
	if err := w.Apply(transport.StateColumn, encodeColumn(0, 0, boolmat.RandomFactor(rng, 5, 2, 0.5))); err == nil {
		t.Fatal("column push before factors succeeded")
	}
	if _, err := w.RunTask(transport.Spec{Name: "eval:A", Kind: transport.KindEval, Mode: 0, Col: 0}, 0); err == nil {
		t.Fatal("eval before factors succeeded")
	}
}

// TestRemoteBatchedThreadedWorkersMatchSimulated runs the remote
// differential over the parallel batch path: each machine receives its
// stage tasks as one RunBatch call and fans them (and their row shards)
// out across 4 threads. Factors, trajectories, and the formula-based
// accounting must still be bit-identical to the sequential simulated
// run — the same guarantee the TCP transport inherits through
// transport.BatchHost.
func TestRemoteBatchedThreadedWorkersMatchSimulated(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 3; trial++ {
		i, j, k := rng.Intn(12)+4, rng.Intn(12)+4, rng.Intn(12)+4
		x := randomTensor(rng, i, j, k, 0.12)
		opt := Options{
			Rank:        rng.Intn(4) + 2,
			Seed:        int64(trial + 1),
			MaxIter:     3,
			Partitions:  rng.Intn(3) + 2,
			InitialSets: 2,
			NoCache:     trial == 2,
		}
		machines := rng.Intn(2) + 2

		sim, err := Decompose(context.Background(), x, testCluster(machines), opt)
		if err != nil {
			t.Fatalf("trial %d: simulated: %v", trial, err)
		}
		rem, err := Decompose(context.Background(), x,
			cluster.New(cluster.Config{Machines: machines, Transport: newBatchHostTransport(machines, 4)}), opt)
		if err != nil {
			t.Fatalf("trial %d: remote: %v", trial, err)
		}
		if !rem.A.Equal(sim.A) || !rem.B.Equal(sim.B) || !rem.C.Equal(sim.C) {
			t.Fatalf("trial %d: batched remote factors differ from simulated", trial)
		}
		if rem.Error != sim.Error || rem.Iterations != sim.Iterations {
			t.Fatalf("trial %d: batched remote result %d/%d, simulated %d/%d",
				trial, rem.Error, rem.Iterations, sim.Error, sim.Iterations)
		}
		for it := range rem.IterationErrors {
			if rem.IterationErrors[it] != sim.IterationErrors[it] {
				t.Fatalf("trial %d: iteration %d error %d, simulated %d",
					trial, it, rem.IterationErrors[it], sim.IterationErrors[it])
			}
		}
	}
}

// TestWorkerBatchErrorAttribution pins the batch failure contract: a bad
// task inside a parallel eval batch fails the whole batch with an error
// naming that task — the earliest offender in batch order — instead of
// surfacing as a connection-level failure or a partial reply.
func TestWorkerBatchErrorAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randomTensor(rng, 8, 7, 6, 0.25)
	w := NewWorkerThreads(4)
	setup, err := encodeSetup(x, Options{Rank: 3, Partitions: 2, GroupBits: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Apply(transport.StateSetup, setup); err != nil {
		t.Fatal(err)
	}
	a := boolmat.RandomFactor(rng, 8, 3, 0.4)
	b := boolmat.RandomFactor(rng, 7, 3, 0.4)
	c := boolmat.RandomFactor(rng, 6, 3, 0.4)
	if err := w.Apply(transport.StateFactors, encodeFactors(a, b, c)); err != nil {
		t.Fatal(err)
	}
	spec := transport.Spec{Name: "eval:A", Kind: transport.KindEval, Mode: 0, Col: 1, Tasks: 2}

	// Tasks 7 and 9 are outside the 2-partition range; the earlier one in
	// batch order must be the one named.
	_, err = w.RunBatch(spec, []int{0, 7, 9})
	if err == nil {
		t.Fatal("batch with invalid tasks succeeded")
	}
	if got := err.Error(); !strings.Contains(got, "task 7") {
		t.Fatalf("batch error %q does not name task 7", got)
	}

	// The worker survives the failed batch: the valid half of the stage
	// still evaluates, with one output per task in batch order.
	outs, err := w.RunBatch(spec, []int{0, 1})
	if err != nil {
		t.Fatalf("valid batch after failure: %v", err)
	}
	if len(outs) != 2 || outs[0].Task != 0 || outs[1].Task != 1 {
		t.Fatalf("batch outputs %+v, want tasks [0 1]", outs)
	}
	for i, out := range outs {
		if len(out.Payload) == 0 {
			t.Fatalf("output %d has empty payload", i)
		}
		want, err := w.RunTask(spec, out.Task)
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(out.Payload) {
			t.Fatalf("task %d: batched payload differs from sequential RunTask", out.Task)
		}
	}
}
