package core

import (
	"math/rand"
	"testing"

	"dbtf/internal/boolmat"
	"dbtf/internal/cluster"
)

// TestEvalColumnMatchesNaive compares the delta-evaluation kernels (cached
// path, dense and sparse blocks, single- and multi-group caches) against
// the retained naive reference: per-row error differences must agree
// exactly for every column, across random tensors and ranks spanning the
// single-uint64-mask range.
func TestEvalColumnMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ranks := []int{1, 2, 3, 7, 8, 13, 33, 64}
	for _, r := range ranks {
		for _, groupBits := range []int{2, 15} {
			i, j, k := rng.Intn(8)+3, rng.Intn(8)+3, rng.Intn(8)+3
			// Mix densities so some blocks pack dense rows and others
			// keep the sparse offset walk.
			density := []float64{0.01, 0.1, 0.4}[rng.Intn(3)]
			x := randomTensor(rng, i, j, k, density)
			a := boolmat.RandomFactor(rng, i, r, 0.3)
			mf := boolmat.RandomFactor(rng, k, r, 0.3)
			ms := boolmat.RandomFactor(rng, j, r, 0.3)

			opt := Options{Rank: r, Partitions: rng.Intn(4) + 1, GroupBits: groupBits}
			cached := newTestDecomposition(t, x, opt, 2)
			opt.NoCache = true
			naive := newTestDecomposition(t, x, opt, 2)

			for pi, part := range cached.px[0].Parts {
				ct := cached.newColumnTask(pi, part, a, mf, ms)
				nt := naive.newColumnTask(pi, naive.px[0].Parts[pi], a, mf, ms)
				for c := 0; c < r; c++ {
					ct.evalColumn(c)
					nt.evalColumn(c)
					for row := range ct.deltas {
						if ct.deltas[row] != nt.deltas[row] {
							t.Fatalf("rank %d V=%d part %d col %d row %d: delta %d, naive %d",
								r, groupBits, pi, c, row, ct.deltas[row], nt.deltas[row])
						}
					}
				}
			}
		}
	}
}

// TestEvalColumnZeroAlloc pins the tentpole's allocation contract: once a
// column task is built (and its lazy cache slices warmed), evaluating
// columns allocates nothing — across both a single-group and a
// multi-group (occluded delta) configuration.
func TestEvalColumnZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randomTensor(rng, 16, 12, 10, 0.2)
	a := boolmat.RandomFactor(rng, 16, 8, 0.4)
	mf := boolmat.RandomFactor(rng, 10, 8, 0.4)
	ms := boolmat.RandomFactor(rng, 12, 8, 0.4)
	for _, groupBits := range []int{3, 15} {
		d := newTestDecomposition(t, x, Options{Rank: 8, Partitions: 3, GroupBits: groupBits}, 2)
		for pi, part := range d.px[0].Parts {
			task := d.newColumnTask(pi, part, a, mf, ms)
			for c := 0; c < 8; c++ {
				task.evalColumn(c) // warm lazy slices and the Occ buffer
			}
			allocs := testing.AllocsPerRun(5, func() {
				for c := 0; c < 8; c++ {
					task.evalColumn(c)
				}
			})
			if allocs != 0 {
				t.Fatalf("V=%d part %d: evalColumn allocated %v times per sweep, want 0",
					groupBits, pi, allocs)
			}
		}
	}
}

// TestRegistrySharesCaches checks the per-machine cache accounting: tasks
// on one machine share one table per caching matrix, a version bump
// invalidates it, and distinct machines build their own.
func TestRegistrySharesCaches(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ms := boolmat.RandomFactor(rng, 12, 5, 0.4)
	regs := newRegistries(2)

	mc1 := regs[0].cacheFor(ms, 15)
	mc2 := regs[0].cacheFor(ms, 15)
	if mc1 != mc2 || mc1.full != mc2.full {
		t.Fatal("same machine, same matrix version: cache not shared")
	}
	if s1, s2 := mc1.slice(2, 9), mc2.slice(2, 9); s1 != s2 {
		t.Fatal("sliced views of one machine cache not memoized")
	}
	if other := regs[1].cacheFor(ms, 15); other == mc1 {
		t.Fatal("distinct machines must not share registry entries")
	}

	ms.Set(0, 0, true) // bump version
	mc3 := regs[0].cacheFor(ms, 15)
	if mc3 == mc1 {
		t.Fatal("stale cache served after the matrix changed")
	}
	if len(regs[0].entries) != 1 {
		t.Fatalf("stale entries not evicted: %d live, want 1", len(regs[0].entries))
	}
}

// TestEvalColumnShardedIdentical pins the row-parallel kernel's
// determinism contract: shards cover the row range exactly once, in
// order, and a task evaluated over any pool width produces deltas
// bit-identical to the sequential kernel's — the positional merge of
// disjoint subranges leaves no room for scheduling order to matter. Run
// under -race this also drives all shards of every column concurrently.
func TestEvalColumnShardedIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	x := randomTensor(rng, 33, 14, 11, 0.15)
	const rank = 9
	a := boolmat.RandomFactor(rng, 33, rank, 0.35)
	mf := boolmat.RandomFactor(rng, 11, rank, 0.35)
	ms := boolmat.RandomFactor(rng, 14, rank, 0.35)
	for _, noCache := range []bool{false, true} {
		opt := Options{Rank: rank, Partitions: 2, GroupBits: 4, NoCache: noCache}
		d := newTestDecomposition(t, x, opt, 2)
		for pi, part := range d.px[0].Parts {
			seq := d.newColumnTask(pi, part, a, mf, ms)
			for _, threads := range []int{2, 4, 7, 64} {
				par := buildColumnTask(part, a, mf, d.blockSummers(pi, part, ms), noCache, cluster.NewPool(threads))
				wantShards := threads
				if wantShards > a.Rows() {
					wantShards = a.Rows()
				}
				if len(par.shards) != wantShards {
					t.Fatalf("threads=%d: %d shards, want %d", threads, len(par.shards), wantShards)
				}
				prev := 0
				for _, sh := range par.shards {
					if sh.lo != prev || sh.hi < sh.lo {
						t.Fatalf("threads=%d: shard range [%d,%d) does not continue at %d", threads, sh.lo, sh.hi, prev)
					}
					prev = sh.hi
				}
				if prev != a.Rows() {
					t.Fatalf("threads=%d: shards cover %d rows, want %d", threads, prev, a.Rows())
				}
				for c := 0; c < rank; c++ {
					seq.evalColumn(c)
					par.evalColumn(c)
					for row := range seq.deltas {
						if par.deltas[row] != seq.deltas[row] {
							t.Fatalf("noCache=%v threads=%d part %d col %d row %d: delta %d, sequential %d",
								noCache, threads, pi, c, row, par.deltas[row], seq.deltas[row])
						}
					}
				}
			}
		}
	}
}
