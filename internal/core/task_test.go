package core

import (
	"math/rand"
	"testing"

	"dbtf/internal/boolmat"
)

// TestEvalColumnMatchesNaive compares the delta-evaluation kernels (cached
// path, dense and sparse blocks, single- and multi-group caches) against
// the retained naive reference: per-row error differences must agree
// exactly for every column, across random tensors and ranks spanning the
// single-uint64-mask range.
func TestEvalColumnMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ranks := []int{1, 2, 3, 7, 8, 13, 33, 64}
	for _, r := range ranks {
		for _, groupBits := range []int{2, 15} {
			i, j, k := rng.Intn(8)+3, rng.Intn(8)+3, rng.Intn(8)+3
			// Mix densities so some blocks pack dense rows and others
			// keep the sparse offset walk.
			density := []float64{0.01, 0.1, 0.4}[rng.Intn(3)]
			x := randomTensor(rng, i, j, k, density)
			a := boolmat.RandomFactor(rng, i, r, 0.3)
			mf := boolmat.RandomFactor(rng, k, r, 0.3)
			ms := boolmat.RandomFactor(rng, j, r, 0.3)

			opt := Options{Rank: r, Partitions: rng.Intn(4) + 1, GroupBits: groupBits}
			cached := newTestDecomposition(t, x, opt, 2)
			opt.NoCache = true
			naive := newTestDecomposition(t, x, opt, 2)

			for pi, part := range cached.px[0].Parts {
				ct := cached.newColumnTask(pi, part, a, mf, ms)
				nt := naive.newColumnTask(pi, naive.px[0].Parts[pi], a, mf, ms)
				for c := 0; c < r; c++ {
					ct.evalColumn(c)
					nt.evalColumn(c)
					for row := range ct.deltas {
						if ct.deltas[row] != nt.deltas[row] {
							t.Fatalf("rank %d V=%d part %d col %d row %d: delta %d, naive %d",
								r, groupBits, pi, c, row, ct.deltas[row], nt.deltas[row])
						}
					}
				}
			}
		}
	}
}

// TestEvalColumnZeroAlloc pins the tentpole's allocation contract: once a
// column task is built (and its lazy cache slices warmed), evaluating
// columns allocates nothing — across both a single-group and a
// multi-group (occluded delta) configuration.
func TestEvalColumnZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randomTensor(rng, 16, 12, 10, 0.2)
	a := boolmat.RandomFactor(rng, 16, 8, 0.4)
	mf := boolmat.RandomFactor(rng, 10, 8, 0.4)
	ms := boolmat.RandomFactor(rng, 12, 8, 0.4)
	for _, groupBits := range []int{3, 15} {
		d := newTestDecomposition(t, x, Options{Rank: 8, Partitions: 3, GroupBits: groupBits}, 2)
		for pi, part := range d.px[0].Parts {
			task := d.newColumnTask(pi, part, a, mf, ms)
			for c := 0; c < 8; c++ {
				task.evalColumn(c) // warm lazy slices and the Occ buffer
			}
			allocs := testing.AllocsPerRun(5, func() {
				for c := 0; c < 8; c++ {
					task.evalColumn(c)
				}
			})
			if allocs != 0 {
				t.Fatalf("V=%d part %d: evalColumn allocated %v times per sweep, want 0",
					groupBits, pi, allocs)
			}
		}
	}
}

// TestRegistrySharesCaches checks the per-machine cache accounting: tasks
// on one machine share one table per caching matrix, a version bump
// invalidates it, and distinct machines build their own.
func TestRegistrySharesCaches(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ms := boolmat.RandomFactor(rng, 12, 5, 0.4)
	regs := newRegistries(2)

	mc1 := regs[0].cacheFor(ms, 15)
	mc2 := regs[0].cacheFor(ms, 15)
	if mc1 != mc2 || mc1.full != mc2.full {
		t.Fatal("same machine, same matrix version: cache not shared")
	}
	if s1, s2 := mc1.slice(2, 9), mc2.slice(2, 9); s1 != s2 {
		t.Fatal("sliced views of one machine cache not memoized")
	}
	if other := regs[1].cacheFor(ms, 15); other == mc1 {
		t.Fatal("distinct machines must not share registry entries")
	}

	ms.Set(0, 0, true) // bump version
	mc3 := regs[0].cacheFor(ms, 15)
	if mc3 == mc1 {
		t.Fatal("stale cache served after the matrix changed")
	}
	if len(regs[0].entries) != 1 {
		t.Fatalf("stale entries not evicted: %d live, want 1", len(regs[0].entries))
	}
}
