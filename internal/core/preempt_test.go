package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestPreemptRequiresCheckpointDir(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, _, _, _ := plantedTensor(rng, 8, 8, 8, 2, 0.3)
	_, err := Decompose(context.Background(), x, testCluster(2),
		Options{Rank: 2, MaxIter: 2, Preempt: func() bool { return true }})
	if err == nil {
		t.Fatal("Preempt without CheckpointDir was accepted; eviction would lose the job")
	}
	if !strings.Contains(err.Error(), "CheckpointDir") {
		t.Fatalf("error %q does not name CheckpointDir", err)
	}
}

func TestPreemptEvictsAndResumesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x, _, _, _ := plantedTensor(rng, 14, 12, 10, 3, 0.3)
	base := Options{Rank: 3, MaxIter: 5, MinIter: 5, InitialSets: 2, Seed: 77, CheckpointEvery: 2}

	opt := base
	opt.CheckpointDir = t.TempDir()
	uninterrupted, err := Decompose(context.Background(), x, testCluster(4), opt)
	if err != nil {
		t.Fatal(err)
	}

	// CheckpointEvery is 2 so preemption at odd boundaries must force an
	// off-period checkpoint write before the job is evicted.
	for _, evictAfter := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("after-iteration-%d", evictAfter), func(t *testing.T) {
			opt := base
			opt.CheckpointDir = t.TempDir()
			polls := 0
			opt.Preempt = func() bool { polls++; return polls == evictAfter }
			_, err := Decompose(context.Background(), x, testCluster(4), opt)
			if !errors.Is(err, ErrPreempted) {
				t.Fatalf("evicted run returned %v, want ErrPreempted", err)
			}
			opt.Preempt = nil
			opt.Resume = true
			resumed, err := Decompose(context.Background(), x, testCluster(4), opt)
			if err != nil {
				t.Fatal(err)
			}
			if !resultsEqual(uninterrupted, resumed) {
				t.Fatalf("resume after eviction at iteration %d diverged from the uninterrupted run", evictAfter)
			}
		})
	}
}

func TestPreemptEveryIterationCompletesViaResume(t *testing.T) {
	// Worst-case timeslicing: the scheduler evicts the job at every single
	// iteration boundary. Re-admitting with Resume must make one iteration of
	// progress per slice and land on the same factors as a run that was never
	// interrupted.
	rng := rand.New(rand.NewSource(47))
	x, _, _, _ := plantedTensor(rng, 12, 10, 9, 2, 0.3)
	opt := Options{Rank: 2, MaxIter: 4, MinIter: 4, Seed: 9,
		CheckpointDir: t.TempDir(), CheckpointEvery: 1}
	uninterrupted, err := Decompose(context.Background(), x, testCluster(3), opt)
	if err != nil {
		t.Fatal(err)
	}

	opt.CheckpointDir = t.TempDir()
	opt.Preempt = func() bool { return true }
	var res *Result
	runs := 0
	for {
		runs++
		if runs > 2*opt.MaxIter {
			t.Fatalf("no progress after %d slices", runs)
		}
		r, err := Decompose(context.Background(), x, testCluster(3), opt)
		if errors.Is(err, ErrPreempted) {
			opt.Resume = true
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		res = r
		break
	}
	if runs < 2 {
		t.Fatalf("preempt-every-iteration run finished in %d slice(s); hook never fired", runs)
	}
	if !resultsEqual(uninterrupted, res) {
		t.Fatal("timesliced run diverged from the uninterrupted run")
	}
}
