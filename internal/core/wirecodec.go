package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"dbtf/internal/boolmat"
	"dbtf/internal/tensor"
)

// The state and result payloads a remote run ships, in the coordinator →
// executor direction (setup, factors, columns) and back (deltas, partial
// errors). Payloads are opaque to the transport: these codecs define their
// only interpretation, and every decoder validates against the run's known
// shapes so a corrupt or mismatched peer errors instead of computing
// garbage.

// wireSetup is the gob form of StateSetup: the decomposition parameters an
// executor needs plus the tensor in its compact binary format. Everything
// else — unfolded partitions, caches, column tasks — is rebuilt locally
// from these, which is what keeps the blob O(nnz) instead of O(data
// structures).
type wireSetup struct {
	Machines   int
	Rank       int
	Partitions int
	GroupBits  int
	NoCache    bool
	Tensor     []byte
}

func encodeSetup(x *tensor.Tensor, opt Options, machines int) ([]byte, error) {
	var tb bytes.Buffer
	if err := x.WriteBinary(&tb); err != nil {
		return nil, fmt.Errorf("core: encode setup tensor: %w", err)
	}
	var buf bytes.Buffer
	ws := wireSetup{
		Machines:   machines,
		Rank:       opt.Rank,
		Partitions: opt.Partitions,
		GroupBits:  opt.GroupBits,
		NoCache:    opt.NoCache,
		Tensor:     tb.Bytes(),
	}
	if err := gob.NewEncoder(&buf).Encode(&ws); err != nil {
		return nil, fmt.Errorf("core: encode setup: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeSetup(payload []byte) (wireSetup, *tensor.Tensor, error) {
	var ws wireSetup
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ws); err != nil {
		return ws, nil, fmt.Errorf("core: decode setup: %w", err)
	}
	if ws.Machines < 1 || ws.Rank < 1 || ws.Rank > boolmat.MaxRank || ws.Partitions < 1 || ws.GroupBits < 1 {
		return ws, nil, fmt.Errorf("core: setup parameters out of range: machines=%d rank=%d partitions=%d groupbits=%d",
			ws.Machines, ws.Rank, ws.Partitions, ws.GroupBits)
	}
	x, err := tensor.ReadBinary(bytes.NewReader(ws.Tensor))
	if err != nil {
		return ws, nil, fmt.Errorf("core: decode setup tensor: %w", err)
	}
	return ws, x, nil
}

// encodeFactors snapshots A, B, C back to back in the boolmat binary
// layout (StateFactors).
func encodeFactors(a, b, c *boolmat.FactorMatrix) []byte {
	out := a.AppendBinary(nil)
	out = b.AppendBinary(out)
	return c.AppendBinary(out)
}

func decodeFactors(payload []byte) (a, b, c *boolmat.FactorMatrix, err error) {
	rest := payload
	for i, dst := range []**boolmat.FactorMatrix{&a, &b, &c} {
		var m *boolmat.FactorMatrix
		m, rest, err = boolmat.DecodeBinaryFactor(rest)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: decode factor %d: %w", i, err)
		}
		*dst = m
	}
	if len(rest) != 0 {
		return nil, nil, nil, fmt.Errorf("core: %d trailing bytes after factor snapshot", len(rest))
	}
	return a, b, c, nil
}

// columnHeaderLen is the StateColumn header: u8 mode, u8 pad, u16 column,
// u32 row count; the packed column bits follow.
const columnHeaderLen = 8

// encodeColumn snapshots column col of factor matrix m (the factor
// updated in mode modeIdx) as a packed bit vector.
func encodeColumn(modeIdx, col int, m *boolmat.FactorMatrix) []byte {
	rows := m.Rows()
	out := make([]byte, columnHeaderLen+(rows+7)/8)
	out[0] = byte(modeIdx)
	binary.LittleEndian.PutUint16(out[2:], uint16(col))
	binary.LittleEndian.PutUint32(out[4:], uint32(rows))
	for r := 0; r < rows; r++ {
		if m.Get(r, col) {
			out[columnHeaderLen+r/8] |= 1 << uint(r%8)
		}
	}
	return out
}

func decodeColumn(payload []byte) (modeIdx, col, rows int, bits []byte, err error) {
	if len(payload) < columnHeaderLen {
		return 0, 0, 0, nil, fmt.Errorf("core: column payload truncated: %d bytes", len(payload))
	}
	modeIdx = int(payload[0])
	col = int(binary.LittleEndian.Uint16(payload[2:]))
	rows = int(binary.LittleEndian.Uint32(payload[4:]))
	bits = payload[columnHeaderLen:]
	if want := (rows + 7) / 8; len(bits) != want {
		return 0, 0, 0, nil, fmt.Errorf("core: column payload has %d bit bytes, want %d for %d rows", len(bits), want, rows)
	}
	if modeIdx < 0 || modeIdx > 2 {
		return 0, 0, 0, nil, fmt.Errorf("core: column payload mode %d outside [0,2]", modeIdx)
	}
	return modeIdx, col, rows, bits, nil
}

// encodeDeltas packs one eval task's per-row error differences
// (KindEval's result payload).
func encodeDeltas(deltas []int64) []byte {
	out := make([]byte, 4+8*len(deltas))
	binary.LittleEndian.PutUint32(out, uint32(len(deltas)))
	for i, d := range deltas {
		binary.LittleEndian.PutUint64(out[4+8*i:], uint64(d))
	}
	return out
}

// decodeDeltas unpacks an eval payload, insisting on exactly rows entries
// — the driver knows the factor's row count and a mismatched executor
// must fail loudly, not silently mis-commit columns.
func decodeDeltas(payload []byte, rows int) ([]int64, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("core: deltas payload truncated: %d bytes", len(payload))
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if n != rows {
		return nil, fmt.Errorf("core: deltas payload has %d rows, want %d", n, rows)
	}
	if len(payload) != 4+8*n {
		return nil, fmt.Errorf("core: deltas payload is %d bytes, want %d", len(payload), 4+8*n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(payload[4+8*i:]))
	}
	return out, nil
}

// encodePartial packs one total-error task's partial sum (KindTotalError's
// result payload).
func encodePartial(e int64) []byte {
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], uint64(e))
	return out[:]
}

func decodePartial(payload []byte) (int64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("core: partial-error payload is %d bytes, want 8", len(payload))
	}
	return int64(binary.LittleEndian.Uint64(payload)), nil
}
