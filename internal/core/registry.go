package core

import (
	"sync"

	"dbtf/internal/boolmat"
	"dbtf/internal/sumcache"
)

// machineRegistry shares row-summation caches among all partitions placed
// on one logical machine. The paper's Lemma 4 (step i) and Lemma 5 count
// the cache build time and memory once per machine — N partitions on the
// same machine query one table, they do not each build their own. The
// registry realizes that accounting: the full-size cache for a caching
// matrix is built by whichever of the machine's tasks gets there first and
// reused by the rest, and it survives across stages for as long as the
// matrix is unchanged. That cross-stage validity is what lets the B-update
// and C-update share one cache over A, and the next iteration's A-update
// reuse the cache totalError built over B.
//
// Tasks placed on one machine may run concurrently in real time (the
// goroutine pool is decoupled from the machine count), so the registry is
// internally synchronized; cache contents are immutable once built.
type machineRegistry struct {
	mu sync.Mutex
	//dbtf:guardedby mu
	entries map[registryKey]*machineCache
}

// registryKey identifies a cache derivation: the caching matrix and its
// mutation version. A version mismatch means the matrix changed since the
// cache was built and the entry is stale.
type registryKey struct {
	m       *boolmat.FactorMatrix
	version uint64
}

// machineCache is one machine's shared cache state for one (matrix,
// version): the full-size table plus memoized lazily-sliced views keyed
// by bit range.
type machineCache struct {
	build sync.Once
	full  *sumcache.Cache

	mu sync.Mutex
	//dbtf:guardedby mu
	slices map[sliceRange]*sumcache.Cache
}

type sliceRange struct{ lo, hi int }

func newRegistries(machines int) []*machineRegistry {
	regs := make([]*machineRegistry, machines)
	for i := range regs {
		regs[i] = &machineRegistry{entries: map[registryKey]*machineCache{}}
	}
	return regs
}

// cacheFor returns the machine's shared cache state for ms at its current
// version, building the full-size table exactly once per machine. Stale
// versions of the same matrix are evicted on the first miss, so the
// registry holds at most one cache per live factor matrix.
func (r *machineRegistry) cacheFor(ms *boolmat.FactorMatrix, groupBits int) *machineCache {
	key := registryKey{m: ms, version: ms.Version()}
	r.mu.Lock()
	mc, ok := r.entries[key]
	if !ok {
		//dbtf:allow-nondeterministic every key matching the stale matrix is deleted; order-independent
		for k, stale := range r.entries {
			if k.m == ms {
				// Every stage that resolved summers over the stale version
				// has been joined (factor versions only change between
				// stages), so its tables can go back to the slab pool.
				stale.release()
				delete(r.entries, k)
			}
		}
		mc = &machineCache{slices: map[sliceRange]*sumcache.Cache{}}
		r.entries[key] = mc
	}
	r.mu.Unlock()
	mc.build.Do(func() { mc.full = sumcache.NewFromFactor(ms, groupBits) })
	return mc
}

// clear drops every entry without recycling the tables. It is the only
// safe drop when live column tasks may still hold summers over the
// entries — machine loss reassigns tasks but keeps the task objects, so
// their caches must survive until the garbage collector proves them dead.
func (r *machineRegistry) clear() {
	r.mu.Lock()
	r.entries = map[registryKey]*machineCache{}
	r.mu.Unlock()
}

// clearRelease drops every entry and returns the cache tables to the slab
// pool. Callers must hold exclusive access with no live tasks: the driver
// between initial factor sets (stages joined, losers' tasks dropped) and
// the worker under a factor push (tasks reset in the same critical
// section).
func (r *machineRegistry) clearRelease() {
	r.mu.Lock()
	//dbtf:allow-nondeterministic every entry is released; order is irrelevant
	for _, mc := range r.entries {
		mc.release()
	}
	r.entries = map[registryKey]*machineCache{}
	r.mu.Unlock()
}

// release recycles the cache tables of an evicted entry. The caller must
// guarantee no in-flight task can still read them: entries are only
// evicted at factor-version boundaries, after the stages that used the
// stale version have been joined.
func (mc *machineCache) release() {
	if mc.full != nil {
		mc.full.Release()
	}
}

// slice returns the shared view over entry bit range [lo, hi), memoized
// per distinct range. Lemma 3 bounds the distinct ranges per partition to
// at most two non-full block shapes, so the map stays tiny; the views
// themselves materialize entries lazily on first query.
func (mc *machineCache) slice(lo, hi int) *sumcache.Cache {
	if lo == 0 && hi == mc.full.Width() {
		return mc.full
	}
	key := sliceRange{lo: lo, hi: hi}
	mc.mu.Lock()
	defer mc.mu.Unlock()
	sc, ok := mc.slices[key]
	if !ok {
		sc = mc.full.Slice(lo, hi)
		mc.slices[key] = sc
	}
	return sc
}
