package core

import (
	"context"
	"math/rand"
	"testing"

	"dbtf/internal/cluster"
	"dbtf/internal/trace"
)

// TestDecomposeTraceReplaysChaosRun is the end-to-end tracing test: a
// seeded chaos decomposition recorded into an in-memory sink must produce
// a structurally valid stream — spans pair and nest, machine losses land
// on stage boundaries — whose per-stage deltas fold exactly to the run's
// final Stats, with one iteration span per executed iteration.
func TestDecomposeTraceReplaysChaosRun(t *testing.T) {
	buf := &trace.Buffer{}
	cl := cluster.New(cluster.Config{
		Machines: 4,
		Faults: &cluster.FaultPlan{
			Seed:               11,
			FailureRate:        0.1,
			StragglerRate:      0.05,
			MachineLossRate:    0.04,
			MachineRejoinAfter: 2,
		},
		Tracer: trace.New(buf),
	})
	x := randomTensor(rand.New(rand.NewSource(5)), 10, 9, 8, 0.2)
	res, err := Decompose(context.Background(), x, cl, Options{Rank: 3, Seed: 5, MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}

	sum, err := trace.Validate(buf.Events)
	if err != nil {
		t.Fatalf("chaos decomposition trace invalid: %v", err)
	}
	if sum.Runs != 1 {
		t.Fatalf("trace holds %d runs, want 1", sum.Runs)
	}

	var iterBegins, iterEnds int
	var runEnd *trace.Event
	for _, ev := range buf.Events {
		switch ev.Type {
		case trace.IterationBegin:
			iterBegins++
		case trace.IterationEnd:
			iterEnds++
		case trace.RunEnd:
			runEnd = ev
		}
	}
	if iterBegins != res.Iterations || iterEnds != res.Iterations {
		t.Fatalf("iteration spans %d/%d, want %d each", iterBegins, iterEnds, res.Iterations)
	}
	// The cluster was fresh, so the run's delta is the full Stats snapshot.
	if runEnd == nil || runEnd.Delta == nil {
		t.Fatal("run_end missing its stats delta")
	}
	if got, want := *runEnd.Delta, res.Stats.TraceDelta(); got != want {
		t.Fatalf("run delta does not match result stats:\ndelta: %+v\nstats: %+v", got, want)
	}
}

// TestDecomposeTraceClosesRunOnError asserts the abort path still emits a
// balanced stream: a context cancelled mid-run must close any open
// iteration span before the run span, so the trace validates.
func TestDecomposeTraceClosesRunOnError(t *testing.T) {
	buf := &trace.Buffer{}
	cl := cluster.New(cluster.Config{Machines: 2, Tracer: trace.New(buf)})
	x := randomTensor(rand.New(rand.NewSource(5)), 8, 8, 8, 0.2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Decompose(ctx, x, cl, Options{Rank: 2, Seed: 1}); err == nil {
		t.Fatal("cancelled decomposition succeeded")
	}
	if _, err := trace.Validate(buf.Events); err != nil {
		t.Fatalf("aborted run left an invalid trace: %v", err)
	}
}

// TestDecomposeUntracedUnchanged guards against tracing perturbing the
// computation: the same seed with and without a tracer must produce
// identical factors and error curves.
func TestDecomposeUntracedUnchanged(t *testing.T) {
	x := randomTensor(rand.New(rand.NewSource(9)), 10, 9, 8, 0.2)
	opt := Options{Rank: 3, Seed: 9, MaxIter: 3}
	plain, err := Decompose(context.Background(), x, testCluster(4), opt)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Decompose(context.Background(), x, cluster.New(cluster.Config{
		Machines: 4,
		Tracer:   trace.New(&trace.Buffer{}),
	}), opt)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Error != traced.Error || plain.Iterations != traced.Iterations {
		t.Fatalf("tracing changed the run: error %d vs %d, iterations %d vs %d",
			plain.Error, traced.Error, plain.Iterations, traced.Iterations)
	}
	if plain.A.String() != traced.A.String() || plain.B.String() != traced.B.String() || plain.C.String() != traced.C.String() {
		t.Fatal("tracing changed the factor matrices")
	}
}
