package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dbtf/internal/bitvec"
	"dbtf/internal/boolmat"
	"dbtf/internal/cluster"
	"dbtf/internal/tensor"
)

func testCluster(machines int) *cluster.Cluster {
	return cluster.New(cluster.Config{Machines: machines})
}

func randomTensor(rng *rand.Rand, i, j, k int, density float64) *tensor.Tensor {
	var coords []tensor.Coord
	for a := 0; a < i; a++ {
		for b := 0; b < j; b++ {
			for c := 0; c < k; c++ {
				if rng.Float64() < density {
					coords = append(coords, tensor.Coord{I: a, J: b, K: c})
				}
			}
		}
	}
	return tensor.MustFromCoords(i, j, k, coords)
}

func plantedTensor(rng *rand.Rand, i, j, k, r int, density float64) (*tensor.Tensor, *boolmat.FactorMatrix, *boolmat.FactorMatrix, *boolmat.FactorMatrix) {
	a := boolmat.RandomFactor(rng, i, r, density)
	b := boolmat.RandomFactor(rng, j, r, density)
	c := boolmat.RandomFactor(rng, k, r, density)
	return tensor.Reconstruct(a, b, c), a, b, c
}

func TestDecomposeValidation(t *testing.T) {
	cl := testCluster(2)
	x := randomTensor(rand.New(rand.NewSource(1)), 4, 4, 4, 0.2)
	cases := []struct {
		name string
		x    *tensor.Tensor
		opt  Options
	}{
		{"nil tensor", nil, Options{Rank: 2}},
		{"zero rank", x, Options{Rank: 0}},
		{"rank too large", x, Options{Rank: 65}},
		{"negative maxiter", x, Options{Rank: 2, MaxIter: -1}},
		{"negative sets", x, Options{Rank: 2, InitialSets: -1}},
		{"negative partitions", x, Options{Rank: 2, Partitions: -1}},
		{"negative groupbits", x, Options{Rank: 2, GroupBits: -1}},
		{"negative tolerance", x, Options{Rank: 2, Tolerance: -5}},
		{"bad init density", x, Options{Rank: 2, Init: InitRandom, InitDensity: 1.5}},
		{"density without random init", x, Options{Rank: 2, InitDensity: 0.3}},
		{"density with topfiber init", x, Options{Rank: 2, Init: InitTopFiber, InitDensity: 0.3}},
		{"multiple sets with topfiber init", x, Options{Rank: 2, Init: InitTopFiber, InitialSets: 2}},
		{"unknown init scheme", x, Options{Rank: 2, Init: InitScheme(9)}},
		{"empty tensor", tensor.New(0, 3, 3), Options{Rank: 2}},
	}
	for _, tc := range cases {
		if _, err := Decompose(context.Background(), tc.x, cl, tc.opt); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestDecomposeReducesError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, _, _, _ := plantedTensor(rng, 20, 20, 20, 3, 0.2)
	cl := testCluster(4)
	res, err := Decompose(context.Background(), x, cl, Options{Rank: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error >= int64(x.NNZ()) {
		t.Fatalf("final error %d not better than trivial all-zero factorization %d", res.Error, x.NNZ())
	}
	// The reported error must equal the true reconstruction error.
	if want := tensor.ReconstructError(x, res.A, res.B, res.C); res.Error != want {
		t.Fatalf("reported error %d != recomputed %d", res.Error, want)
	}
}

func TestDecomposeExactRecoveryRank1(t *testing.T) {
	// A single dense block is a rank-1 tensor; DBTF must recover it
	// exactly from almost any initialization.
	var coords []tensor.Coord
	for i := 4; i < 12; i++ {
		for j := 2; j < 9; j++ {
			for k := 5; k < 13; k++ {
				coords = append(coords, tensor.Coord{I: i, J: j, K: k})
			}
		}
	}
	x := tensor.MustFromCoords(16, 16, 16, coords)
	res, err := Decompose(context.Background(), x, testCluster(4), Options{Rank: 1, InitialSets: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 {
		t.Fatalf("rank-1 block not recovered exactly: error %d", res.Error)
	}
}

func TestDecomposeErrorMonotoneAcrossIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randomTensor(rng, 16, 16, 16, 0.05)
	var errs []int64
	_, err := Decompose(context.Background(), x, testCluster(4), Options{
		Rank: 4, MaxIter: 8, Seed: 1,
		Trace: func(format string, args ...any) {
			line := fmt.Sprintf(format, args...)
			if strings.HasPrefix(line, "iteration") || strings.HasPrefix(line, "initial") {
				var e int64
				fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &e)
				errs = append(errs, e)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) < 2 {
		t.Fatalf("captured %d errors", len(errs))
	}
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1] {
			t.Fatalf("error increased: %v", errs)
		}
	}
}

func TestDecomposeDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randomTensor(rng, 12, 12, 12, 0.1)
	opt := Options{Rank: 3, Seed: 42, MaxIter: 3}
	r1, err := Decompose(context.Background(), x, testCluster(4), opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Decompose(context.Background(), x, testCluster(7), opt) // different cluster size
	if err != nil {
		t.Fatal(err)
	}
	if r1.Error != r2.Error || !r1.A.Equal(r2.A) || !r1.B.Equal(r2.B) || !r1.C.Equal(r2.C) {
		t.Fatal("results differ across cluster sizes for the same seed")
	}
}

func TestInitialSets(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randomTensor(rng, 12, 12, 12, 0.1)
	res, err := Decompose(context.Background(), x, testCluster(4), Options{Rank: 3, InitialSets: 4, MaxIter: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InitialErrors) != 4 {
		t.Fatalf("InitialErrors has %d entries, want 4", len(res.InitialErrors))
	}
	min := res.InitialErrors[0]
	for _, e := range res.InitialErrors {
		if e < min {
			min = e
		}
	}
	if res.Error != min {
		t.Fatalf("final error %d != best initial %d after 1 iteration", res.Error, min)
	}
}

func TestConvergedFlag(t *testing.T) {
	// With a generous tolerance the run must stop early and set Converged.
	rng := rand.New(rand.NewSource(7))
	x := randomTensor(rng, 10, 10, 10, 0.1)
	res, err := Decompose(context.Background(), x, testCluster(2), Options{Rank: 2, MaxIter: 50, Tolerance: 1 << 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("Converged not set")
	}
	if res.Iterations >= 50 {
		t.Fatalf("did not stop early: %d iterations", res.Iterations)
	}
}

// referenceUpdate is a brute-force single-machine implementation of
// Algorithm 4: for every column and row it evaluates both candidate values
// against the fully materialized Khatri–Rao product and commits the value
// with the smaller full-row error (ties go to 0). The distributed cached
// updater must make identical decisions.
func referenceUpdate(u *tensor.Unfolded, a, mf, ms *boolmat.FactorMatrix) {
	krT := boolmat.KhatriRao(mf, ms).Matrix().Transpose() // R × Q
	q := u.NumCols
	xRows := make([]*bitvec.BitVec, u.NumRows)
	for r := 0; r < u.NumRows; r++ {
		xRows[r] = bitvec.FromIndices32(q, u.Row(r))
	}
	sum := bitvec.New(q)
	for c := 0; c < a.Rank(); c++ {
		bit := uint64(1) << uint(c)
		for r := 0; r < a.Rows(); r++ {
			var errs [2]int
			for cand := 0; cand < 2; cand++ {
				mask := a.RowMask(r) &^ bit
				if cand == 1 {
					mask |= bit
				}
				sum.Zero()
				for m := mask; m != 0; m &= m - 1 {
					rr := 0
					for mm := m ^ (m & (m - 1)); mm > 1; mm >>= 1 {
						rr++
					}
					sum.Or(krT.Row(rr))
				}
				errs[cand] = xRows[r].XorCount(sum)
			}
			a.Set(r, c, errs[1] < errs[0])
		}
	}
}

func newTestDecomposition(t *testing.T, x *tensor.Tensor, opt Options, machines int) *decomposition {
	t.Helper()
	cl := testCluster(machines)
	full, err := opt.withDefaults(x, cl.Machines())
	if err != nil {
		t.Fatal(err)
	}
	d := &decomposition{ctx: context.Background(), x: x, cl: cl, opt: full, reg: newRegistries(cl.Machines())}
	if err := d.partitionAll(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestUpdateFactorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		i, j, k := rng.Intn(10)+2, rng.Intn(10)+2, rng.Intn(10)+2
		r := rng.Intn(6) + 1
		x := randomTensor(rng, i, j, k, 0.15)
		a := boolmat.RandomFactor(rng, i, r, 0.3)
		b := boolmat.RandomFactor(rng, j, r, 0.3)
		c := boolmat.RandomFactor(rng, k, r, 0.3)

		d := newTestDecomposition(t, x, Options{Rank: r, Partitions: rng.Intn(5) + 1}, 3)
		got := a.Clone()
		if err := d.updateFactor(0, "A", d.px[0], got, c, b); err != nil {
			t.Fatal(err)
		}
		want := a.Clone()
		referenceUpdate(x.Unfold(tensor.Mode1), want, c, b)
		if !got.Equal(want) {
			t.Fatalf("trial %d (%dx%dx%d r=%d): distributed update differs from reference\ngot:\n%swant:\n%s",
				trial, i, j, k, r, got, want)
		}
	}
}

func TestUpdateFactorModes2And3MatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randomTensor(rng, 7, 8, 9, 0.15)
	r := 3
	a := boolmat.RandomFactor(rng, 7, r, 0.3)
	b := boolmat.RandomFactor(rng, 8, r, 0.3)
	c := boolmat.RandomFactor(rng, 9, r, 0.3)
	d := newTestDecomposition(t, x, Options{Rank: r, Partitions: 4}, 2)

	gotB := b.Clone()
	if err := d.updateFactor(1, "B", d.px[1], gotB, c, a); err != nil {
		t.Fatal(err)
	}
	wantB := b.Clone()
	referenceUpdate(x.Unfold(tensor.Mode2), wantB, c, a)
	if !gotB.Equal(wantB) {
		t.Fatal("mode-2 update differs from reference")
	}

	gotC := c.Clone()
	if err := d.updateFactor(2, "C", d.px[2], gotC, b, a); err != nil {
		t.Fatal(err)
	}
	wantC := c.Clone()
	referenceUpdate(x.Unfold(tensor.Mode3), wantC, b, a)
	if !gotC.Equal(wantC) {
		t.Fatal("mode-3 update differs from reference")
	}
}

func TestNoCacheMatchesCached(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randomTensor(rng, 10, 11, 12, 0.1)
	opt := Options{Rank: 4, Seed: 5, MaxIter: 3}
	cached, err := Decompose(context.Background(), x, testCluster(4), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.NoCache = true
	uncached, err := Decompose(context.Background(), x, testCluster(4), opt)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Error != uncached.Error || !cached.A.Equal(uncached.A) {
		t.Fatal("NoCache ablation changes results")
	}
}

func TestHorizontalMatchesVertical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randomTensor(rng, 9, 10, 11, 0.1)
	opt := Options{Rank: 4, Seed: 5, MaxIter: 2, Partitions: 3}
	vert, err := Decompose(context.Background(), x, testCluster(3), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Horizontal = true
	horiz, err := Decompose(context.Background(), x, testCluster(3), opt)
	if err != nil {
		t.Fatal(err)
	}
	if vert.Error != horiz.Error || !vert.A.Equal(horiz.A) || !vert.B.Equal(horiz.B) || !vert.C.Equal(horiz.C) {
		t.Fatal("horizontal partitioning changes results")
	}
}

func TestHorizontalCollectsMoreTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randomTensor(rng, 20, 20, 20, 0.1)
	opt := Options{Rank: 4, Seed: 5, MaxIter: 2, Partitions: 4}
	vert, err := Decompose(context.Background(), x, testCluster(4), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Horizontal = true
	horiz, err := Decompose(context.Background(), x, testCluster(4), opt)
	if err != nil {
		t.Fatal(err)
	}
	if horiz.Stats.CollectedBytes <= vert.Stats.CollectedBytes*4 {
		t.Fatalf("horizontal collect traffic %d not ≫ vertical %d",
			horiz.Stats.CollectedBytes, vert.Stats.CollectedBytes)
	}
}

func TestGroupBitsInvariance(t *testing.T) {
	// Lemma 2's table splitting is a space/time trade-off; it must not
	// change any decision.
	rng := rand.New(rand.NewSource(13))
	x := randomTensor(rng, 10, 10, 10, 0.1)
	var base *Result
	for _, v := range []int{2, 3, 7, 15} {
		res, err := Decompose(context.Background(), x, testCluster(4), Options{Rank: 6, Seed: 3, MaxIter: 2, GroupBits: v})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Error != base.Error || !res.A.Equal(base.A) {
			t.Fatalf("GroupBits=%d changes results", v)
		}
	}
}

func TestPartitionCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := randomTensor(rng, 11, 13, 9, 0.12)
	var base *Result
	for _, n := range []int{1, 2, 5, 16} {
		res, err := Decompose(context.Background(), x, testCluster(4), Options{Rank: 4, Seed: 8, MaxIter: 2, Partitions: n})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Error != base.Error || !res.A.Equal(base.A) {
			t.Fatalf("Partitions=%d changes results", n)
		}
	}
}

func TestShuffleVolumeLemma6(t *testing.T) {
	// Shuffle volume must scale with |X| and be charged exactly once.
	rng := rand.New(rand.NewSource(15))
	sparse := randomTensor(rng, 12, 12, 12, 0.02)
	dense := randomTensor(rng, 12, 12, 12, 0.3)
	opt := Options{Rank: 2, MaxIter: 2, Seed: 1}
	rs, err := Decompose(context.Background(), sparse, testCluster(4), opt)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Decompose(context.Background(), dense, testCluster(4), opt)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rd.Stats.ShuffledBytes) / float64(rs.Stats.ShuffledBytes)
	nnzRatio := float64(dense.NNZ()) / float64(sparse.NNZ())
	if ratio < nnzRatio/2 || ratio > nnzRatio*2 {
		t.Fatalf("shuffle ratio %.2f vs nnz ratio %.2f", ratio, nnzRatio)
	}
}

func TestBroadcastVolumeLemma7(t *testing.T) {
	// Broadcast traffic scales with the machine count M.
	rng := rand.New(rand.NewSource(16))
	x := randomTensor(rng, 12, 12, 12, 0.1)
	opt := Options{Rank: 3, MaxIter: 2, Seed: 1, Partitions: 4}
	r4, err := Decompose(context.Background(), x, testCluster(4), opt)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Decompose(context.Background(), x, testCluster(8), opt)
	if err != nil {
		t.Fatal(err)
	}
	if r8.Stats.BroadcastBytes != 2*r4.Stats.BroadcastBytes {
		t.Fatalf("broadcast bytes %d (M=8) vs %d (M=4), want exact 2x",
			r8.Stats.BroadcastBytes, r4.Stats.BroadcastBytes)
	}
}

func TestCollectVolumeLemma7(t *testing.T) {
	// Collect traffic scales with the partition count N.
	rng := rand.New(rand.NewSource(17))
	x := randomTensor(rng, 12, 12, 12, 0.1)
	opt := Options{Rank: 3, MaxIter: 2, Seed: 1, Partitions: 2}
	r2, err := Decompose(context.Background(), x, testCluster(4), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Partitions = 8
	r8, err := Decompose(context.Background(), x, testCluster(4), opt)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 3*r2.Stats.CollectedBytes, 5*r2.Stats.CollectedBytes
	if r8.Stats.CollectedBytes < lo || r8.Stats.CollectedBytes > hi {
		t.Fatalf("collect bytes %d (N=8) vs %d (N=2), want ≈4x", r8.Stats.CollectedBytes, r2.Stats.CollectedBytes)
	}
}

func TestQuickDecomposeErrorMatchesReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		i, j, k := rng.Intn(8)+2, rng.Intn(8)+2, rng.Intn(8)+2
		x := randomTensor(rng, i, j, k, 0.2)
		r := rng.Intn(4) + 1
		res, err := Decompose(context.Background(), x, testCluster(rng.Intn(4)+1), Options{
			Rank: r, Seed: seed, MaxIter: 2, Partitions: rng.Intn(6) + 1,
		})
		if err != nil {
			return false
		}
		return res.Error == tensor.ReconstructError(x, res.A, res.B, res.C)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeNonCubicTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	x := randomTensor(rng, 30, 5, 11, 0.08)
	res, err := Decompose(context.Background(), x, testCluster(4), Options{Rank: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.A.Rows() != 30 || res.B.Rows() != 5 || res.C.Rows() != 11 {
		t.Fatalf("factor shapes %d/%d/%d", res.A.Rows(), res.B.Rows(), res.C.Rows())
	}
}

func TestInitRandomCollapsesOnSparseTensors(t *testing.T) {
	// Documents why InitFiberSample is the default: the paper-literal
	// uniform random initialization drives every factor to zero on sparse
	// tensors, leaving the trivial error |X|.
	rng := rand.New(rand.NewSource(19))
	x := randomTensor(rng, 16, 16, 16, 0.05)
	res, err := Decompose(context.Background(), x, testCluster(2), Options{Rank: 4, Seed: 3, Init: InitRandom})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != int64(x.NNZ()) {
		t.Fatalf("expected collapse to trivial error %d, got %d", x.NNZ(), res.Error)
	}
	if res.A.OnesCount() != 0 {
		t.Fatalf("expected all-zero factors, A has %d ones", res.A.OnesCount())
	}
}

func TestDecomposeAllZeroTensor(t *testing.T) {
	x := tensor.New(8, 8, 8)
	res, err := Decompose(context.Background(), x, testCluster(2), Options{Rank: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 {
		t.Fatalf("all-zero tensor: error %d, want 0 (empty factors)", res.Error)
	}
}

func TestDecomposeAllOnesTensor(t *testing.T) {
	var coords []tensor.Coord
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			for k := 0; k < 6; k++ {
				coords = append(coords, tensor.Coord{I: i, J: j, K: k})
			}
		}
	}
	x := tensor.MustFromCoords(6, 6, 6, coords)
	res, err := Decompose(context.Background(), x, testCluster(2), Options{Rank: 1, InitialSets: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 {
		t.Fatalf("all-ones tensor is rank 1; error %d", res.Error)
	}
}

func TestMinIterValidationAndEffect(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := randomTensor(rng, 10, 10, 10, 0.1)
	if _, err := Decompose(context.Background(), x, testCluster(2), Options{Rank: 2, MaxIter: 3, MinIter: 5}); err == nil {
		t.Fatal("MinIter > MaxIter accepted")
	}
	if _, err := Decompose(context.Background(), x, testCluster(2), Options{Rank: 2, MinIter: -1}); err == nil {
		t.Fatal("negative MinIter accepted")
	}
	// MinIter = MaxIter forces the full sweep count even when converged.
	res, err := Decompose(context.Background(), x, testCluster(2), Options{Rank: 2, MaxIter: 6, MinIter: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 6 {
		t.Fatalf("iterations = %d, want 6 with MinIter=MaxIter", res.Iterations)
	}
}

func TestTraceReceivesProgress(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randomTensor(rng, 8, 8, 8, 0.1)
	var lines []string
	_, err := Decompose(context.Background(), x, testCluster(2), Options{
		Rank: 2, Seed: 1, InitialSets: 2,
		Trace: func(format string, args ...any) {
			lines = append(lines, fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawInitial, sawIteration bool
	for _, l := range lines {
		if strings.HasPrefix(l, "initial set") {
			sawInitial = true
		}
		if strings.HasPrefix(l, "iteration") {
			sawIteration = true
		}
	}
	if !sawInitial || !sawIteration {
		t.Fatalf("trace missing phases: %v", lines)
	}
}

func TestFiberSampleInitAnchorsToData(t *testing.T) {
	// Every initial component must lie inside the data's support: the
	// seeded columns only contain indices of actual nonzeros.
	rng := rand.New(rand.NewSource(22))
	x := randomTensor(rng, 12, 12, 12, 0.05)
	opt, err := (&Options{Rank: 4}).withDefaults(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := initialSet(rand.New(rand.NewSource(1)), x, opt)
	for r := 0; r < 4; r++ {
		for _, i := range a.Column(r).Indices() {
			found := false
			for _, co := range x.Coords() {
				if co.I == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("component %d contains row %d with no nonzeros", r, i)
			}
		}
	}
	_ = b
	_ = c
}

func TestInitTopFiberSeedIndependent(t *testing.T) {
	// The topfiber scheme consumes no randomness: two runs under different
	// seeds are bit-identical, and so is a run with any InitialSetsAuto
	// spelling of the single-set default.
	rng := rand.New(rand.NewSource(31))
	x, _, _, _ := plantedTensor(rng, 16, 14, 12, 3, 0.3)
	base := Options{Rank: 3, MaxIter: 4, MinIter: 4, Init: InitTopFiber}
	r1, err := Decompose(context.Background(), x, testCluster(4), base)
	if err != nil {
		t.Fatal(err)
	}
	seeded := base
	seeded.Seed = 999
	seeded.InitialSets = 1
	r2, err := Decompose(context.Background(), x, testCluster(4), seeded)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(r1, r2) {
		t.Fatal("topfiber runs under different seeds differ; the scheme must not consume randomness")
	}
}

func TestInitTopFiberThreadCountInvariance(t *testing.T) {
	// Satellite of ISSUE 10: topfiber-seeded runs are bit-identical for
	// every ThreadsPerMachine — the init is driver-side and deterministic,
	// and the distributed stages were already thread-invariant.
	rng := rand.New(rand.NewSource(33))
	x, _, _, _ := plantedTensor(rng, 18, 16, 14, 3, 0.25)
	var ref *Result
	for _, threads := range []int{1, 2, 4, 8} {
		cl := cluster.New(cluster.Config{Machines: 4, ThreadsPerMachine: threads})
		res, err := Decompose(context.Background(), x, cl, Options{
			Rank: 3, MaxIter: 4, MinIter: 4, Init: InitTopFiber})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !resultsEqual(ref, res) {
			t.Fatalf("topfiber run with %d threads/machine differs from 1-thread run", threads)
		}
	}
}

func TestInitTopFiberExactRecoveryRank1(t *testing.T) {
	// A rank-1 tensor's top fiber is inside the planted block, so the seed
	// already reconstructs it and the first iteration keeps error 0.
	rng := rand.New(rand.NewSource(35))
	x, _, _, _ := plantedTensor(rng, 20, 20, 20, 1, 0.4)
	res, err := Decompose(context.Background(), x, testCluster(2), Options{
		Rank: 1, MaxIter: 5, Init: InitTopFiber})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 {
		t.Fatalf("rank-1 recovery error %d, want 0", res.Error)
	}
}

func TestInitialSetsAutoSentinelMatchesExplicitOne(t *testing.T) {
	// Regression for the zero-as-unset fix: the named sentinel and the
	// explicit default must resolve to the same run.
	rng := rand.New(rand.NewSource(37))
	x, _, _, _ := plantedTensor(rng, 12, 12, 12, 2, 0.3)
	auto, err := Decompose(context.Background(), x, testCluster(2),
		Options{Rank: 2, MaxIter: 3, MinIter: 3, Seed: 4, InitialSets: InitialSetsAuto})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Decompose(context.Background(), x, testCluster(2),
		Options{Rank: 2, MaxIter: 3, MinIter: 3, Seed: 4, InitialSets: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(auto, one) {
		t.Fatal("InitialSetsAuto does not match an explicit InitialSets of 1")
	}
}

func TestInitDensityNotAutoFilledOutsideRandom(t *testing.T) {
	// Regression for the zero-as-unset fix: under non-random schemes the
	// unused InitDensity must stay zero instead of being auto-filled from
	// the tensor's density — otherwise the config fingerprint depends on a
	// parameter the run never reads.
	rng := rand.New(rand.NewSource(39))
	x := randomTensor(rng, 8, 8, 8, 0.2)
	for _, scheme := range []InitScheme{InitFiberSample, InitTopFiber} {
		opt, err := (&Options{Rank: 2, Init: scheme}).withDefaults(x, 2)
		if err != nil {
			t.Fatal(err)
		}
		if opt.InitDensity != 0 {
			t.Fatalf("scheme %v: InitDensity auto-filled to %v, want untouched 0", scheme, opt.InitDensity)
		}
	}
	opt, err := (&Options{Rank: 2, Init: InitRandom}).withDefaults(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if opt.InitDensity <= 0 {
		t.Fatalf("InitRandom: InitDensity not auto-filled (got %v)", opt.InitDensity)
	}
}

func TestInitSchemeStringAndParseRoundtrip(t *testing.T) {
	for _, scheme := range []InitScheme{InitFiberSample, InitRandom, InitTopFiber} {
		got, err := ParseInitScheme(scheme.String())
		if err != nil || got != scheme {
			t.Fatalf("ParseInitScheme(%q) = %v, %v; want %v", scheme.String(), got, err, scheme)
		}
	}
	if got, err := ParseInitScheme(""); err != nil || got != InitFiberSample {
		t.Fatalf("ParseInitScheme(\"\") = %v, %v; want the default", got, err)
	}
	if _, err := ParseInitScheme("assoc"); err == nil {
		t.Fatal("unknown scheme name parsed without error")
	}
}
