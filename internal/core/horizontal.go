package core

import (
	"math/bits"
	"runtime/pprof"

	"dbtf/internal/bitvec"
	"dbtf/internal/boolmat"
	"dbtf/internal/partition"
)

// updateFactorHorizontal updates a factor matrix under horizontal
// partitioning of the Khatri–Rao product: partitions own contiguous ranges
// of the rank dimension instead of column ranges of the unfolded tensor.
//
// This is the design Section III-D rejects, implemented for the
// partitioning ablation. Its two predicted drawbacks are visible directly
// in the code: every Boolean row summation must combine per-partition
// partial summations through the driver (each partial is a full
// Q-bit vector, so the collected traffic per column is N·P·2·Q/8 bytes
// instead of N·P·2·8), and the level of parallelism is capped by the rank,
// which is usually far smaller than the tensor dimensionalities.
func (d *decomposition) updateFactorHorizontal(mode string, px *partition.Partitioned, a, mf, ms *boolmat.FactorMatrix) error {
	r := d.opt.Rank
	n := d.opt.Partitions
	if n > r {
		n = r // horizontal partitioning cannot exceed the rank
	}
	ctx := pprof.WithLabels(d.ctx, pprof.Labels("mode", mode))
	p := a.Rows()
	q := px.NumCols

	// Rank rows of (C ⊙ B)ᵀ owned by each partition: contiguous ranges.
	rankLo := func(pi int) int { return pi * r / n }
	rankHi := func(pi int) int { return (pi + 1) * r / n }

	// Stage: each partition materializes its owned rows of (C ⊙ B)ᵀ as
	// full-width Q-bit vectors (row rr is mf's column rr Kronecker ms's
	// column rr).
	kron := make([]*bitvec.BitVec, r)
	err := d.cl.ForEachNamed(ctx, "kron:"+mode, n, func(pi int) error {
		for rr := rankLo(pi); rr < rankHi(pi); rr++ {
			v := bitvec.New(q)
			inner := ms.Column(rr).Indices()
			mf.Column(rr).Range(func(kk int) {
				base := kk * px.BlockSize
				for _, j := range inner {
					v.Set(base + j)
				}
			})
			kron[rr] = v
		}
		return nil
	})
	if err != nil {
		return err
	}

	// partials[pi][row][cand] is partition pi's Boolean summation of its
	// owned rank rows selected by the candidate mask.
	partials := make([][][2]*bitvec.BitVec, n)
	for pi := range partials {
		partials[pi] = make([][2]*bitvec.BitVec, p)
		for row := range partials[pi] {
			partials[pi][row] = [2]*bitvec.BitVec{bitvec.New(q), bitvec.New(q)}
		}
	}
	combined := bitvec.New(q)

	for c := 0; c < r; c++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		bit := uint64(1) << uint(c)
		err := d.cl.ForEachNamed(ctx, "eval-h:"+mode, n, func(pi int) error {
			owned := ownedMask(rankLo(pi), rankHi(pi))
			for row := 0; row < p; row++ {
				key0 := (a.RowMask(row) &^ bit) & owned
				key1 := (a.RowMask(row) | bit) & owned
				for cand, key := range [2]uint64{key0, key1} {
					dst := partials[pi][row][cand]
					dst.Zero()
					for m := key; m != 0; m &= m - 1 {
						dst.Or(kron[bits.TrailingZeros64(m)])
					}
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		// Every partial is a full Q-bit vector shipped to the driver: the
		// communication horizontal partitioning cannot avoid.
		d.cl.Collect(int64(n) * int64(p) * 2 * int64((q+7)/8))
		err = d.cl.DriverNamed(ctx, "commit-h:"+mode, func() {
			for row := 0; row < p; row++ {
				var errs [2]int64
				for cand := 0; cand < 2; cand++ {
					combined.Zero()
					for pi := 0; pi < n; pi++ {
						combined.Or(partials[pi][row][cand])
					}
					errs[cand] = horizontalRowError(px, row, combined)
				}
				a.Set(row, c, errs[1] < errs[0])
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func ownedMask(lo, hi int) uint64 {
	var m uint64
	for rr := lo; rr < hi; rr++ {
		m |= 1 << uint(rr)
	}
	return m
}

// horizontalRowError computes |x_row ⊕ sum| for a full-width candidate row
// by walking the row's nonzeros across all partitions' blocks.
func horizontalRowError(px *partition.Partitioned, row int, sum *bitvec.BitVec) int64 {
	nnz, overlap := 0, 0
	for _, part := range px.Parts {
		for _, b := range part.Blocks {
			rb := b.RowBits(row)
			nnz += len(rb)
			for _, off := range rb {
				if sum.Get(b.Lo + int(off)) {
					overlap++
				}
			}
		}
	}
	return int64(nnz + sum.OnesCount() - 2*overlap)
}
