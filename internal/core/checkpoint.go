package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"dbtf/internal/boolmat"
	"dbtf/internal/tensor"
)

// CheckpointFile is the legacy (pre-namespacing) checkpoint name inside
// Options.CheckpointDir. New checkpoints are written under
// CheckpointFileName(fingerprint) so that concurrent jobs sharing one
// directory never collide; readCheckpoint still falls back to this name so
// directories written by older builds keep resuming.
const CheckpointFile = "checkpoint.dbtf"

// CheckpointFileName returns the checkpoint file name for a run with the
// given config+tensor fingerprint (see Fingerprint). Namespacing the file
// by fingerprint means any number of jobs may share one checkpoint
// directory: each run only ever reads and atomically replaces its own
// file, and a changed configuration starts its own checkpoint lineage
// instead of clobbering another run's.
func CheckpointFileName(fp uint64) string {
	return fmt.Sprintf("checkpoint-%016x.dbtf", fp)
}

// checkpointMagicPrefix identifies the checkpoint format; the byte after
// it is the format version (checkpointV1 or checkpointV2).
var checkpointMagicPrefix = [7]byte{'D', 'B', 'T', 'F', 'C', 'K', 'P'}

const (
	// checkpointV1 is the original layout: the init configuration is only
	// folded into the fingerprint, not recorded readably.
	checkpointV1 = 0x01
	// checkpointV2 additionally records the resolved init scheme and its
	// parameters right after the fingerprint, so a resume under a changed
	// init configuration can name the mismatch instead of reporting an
	// opaque fingerprint difference. New checkpoints are written as v2.
	checkpointV2 = 0x02
)

// checkpoint is a durable snapshot of a decomposition at an iteration
// boundary: everything Decompose needs to continue the run bit-identically
// to one that was never interrupted.
//
// Binary layout (all integers little-endian):
//
//	magic      8 bytes  "DBTFCKP" + version (0x01 or 0x02)
//	payload:
//	  fingerprint      u64   config+tensor fingerprint (see fingerprint)
//	  init             u32   resolved InitScheme            (v2 only)
//	  initDensity      u64   float64 bits of InitDensity    (v2 only)
//	  initialSets      u32   resolved InitialSets           (v2 only)
//	  iteration        u32   completed iterations
//	  converged        u8    1 if the convergence criterion already fired
//	  rngDraws         u64   source draws consumed by initialization
//	  prevErr          u64   int64 bits of the last iteration's error
//	  initialErrors    u32 count, then count × u64 (int64 bits)
//	  iterationErrors  u32 count, then count × u64 (int64 bits)
//	  A, B, C          boolmat.AppendBinary layout each
//	crc32      u32  IEEE checksum of magic+payload
type checkpoint struct {
	// Version is the decoded image's format version; the zero value means
	// "current" on encode. Decoded v1 images re-encode as v1 so that
	// decode∘encode is the identity on every valid image.
	Version         byte
	Fingerprint     uint64
	Iteration       int
	Converged       bool
	RNGDraws        uint64
	PrevErr         int64
	InitialErrors   []int64
	IterationErrors []int64
	A, B, C         *boolmat.FactorMatrix
	// Init, InitDensity and InitialSets mirror the resolved options the
	// checkpoint was written under (v2 images only; a v1 image leaves
	// Init = -1 to mean "not recorded").
	Init        InitScheme
	InitDensity float64
	InitialSets int
}

func (ck *checkpoint) encode() []byte {
	le := binary.LittleEndian
	version := ck.Version
	if version == 0 {
		version = checkpointV2
	}
	buf := append([]byte(nil), checkpointMagicPrefix[:]...)
	buf = append(buf, version)
	buf = le.AppendUint64(buf, ck.Fingerprint)
	if version >= checkpointV2 {
		buf = le.AppendUint32(buf, uint32(ck.Init))
		buf = le.AppendUint64(buf, math.Float64bits(ck.InitDensity))
		buf = le.AppendUint32(buf, uint32(ck.InitialSets))
	}
	buf = le.AppendUint32(buf, uint32(ck.Iteration))
	conv := byte(0)
	if ck.Converged {
		conv = 1
	}
	buf = append(buf, conv)
	buf = le.AppendUint64(buf, ck.RNGDraws)
	buf = le.AppendUint64(buf, uint64(ck.PrevErr))
	for _, errs := range [][]int64{ck.InitialErrors, ck.IterationErrors} {
		buf = le.AppendUint32(buf, uint32(len(errs)))
		for _, e := range errs {
			buf = le.AppendUint64(buf, uint64(e))
		}
	}
	for _, m := range []*boolmat.FactorMatrix{ck.A, ck.B, ck.C} {
		buf = m.AppendBinary(buf)
	}
	return le.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// cursor is a bounds-checked little-endian reader over the payload;
// every read reports truncation instead of slicing out of range.
type cursor struct{ data []byte }

func (c *cursor) take(n int) ([]byte, error) {
	if len(c.data) < n {
		return nil, fmt.Errorf("core: checkpoint truncated: %d bytes left, want %d", len(c.data), n)
	}
	b := c.data[:n]
	c.data = c.data[n:]
	return b, nil
}

func (c *cursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *cursor) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *cursor) i64s() ([]int64, error) {
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	// The count is bounded by the bytes actually present before anything
	// is allocated, so a corrupt length cannot force a huge allocation.
	if uint64(len(c.data)) < uint64(n)*8 {
		return nil, fmt.Errorf("core: checkpoint truncated: %d bytes left, want %d errors", len(c.data), n)
	}
	out := make([]int64, n)
	for i := range out {
		v, err := c.u64()
		if err != nil {
			return nil, err
		}
		out[i] = int64(v)
	}
	return out, nil
}

func (c *cursor) factor() (*boolmat.FactorMatrix, error) {
	m, rest, err := boolmat.DecodeBinaryFactor(c.data)
	if err != nil {
		return nil, err
	}
	c.data = rest
	return m, nil
}

// decodeCheckpoint parses and verifies a checkpoint image. Corrupt or
// truncated input returns an error — never a panic, and never a partially
// valid checkpoint: the CRC over the full image is verified before any
// field is parsed.
func decodeCheckpoint(data []byte) (*checkpoint, error) {
	if len(data) < len(checkpointMagicPrefix)+1+4 {
		return nil, fmt.Errorf("core: checkpoint too short: %d bytes", len(data))
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("core: checkpoint checksum mismatch: %#x != %#x", got, sum)
	}
	if [7]byte(body[:7]) != checkpointMagicPrefix {
		return nil, fmt.Errorf("core: bad checkpoint magic %q", body[:8])
	}
	version := body[7]
	if version != checkpointV1 && version != checkpointV2 {
		return nil, fmt.Errorf("core: unsupported checkpoint version %#x", version)
	}
	c := &cursor{data: body[8:]}
	ck := &checkpoint{Version: version, Init: -1}
	var err error
	if ck.Fingerprint, err = c.u64(); err != nil {
		return nil, err
	}
	if version >= checkpointV2 {
		init, err := c.u32()
		if err != nil {
			return nil, err
		}
		ck.Init = InitScheme(int32(init))
		density, err := c.u64()
		if err != nil {
			return nil, err
		}
		ck.InitDensity = math.Float64frombits(density)
		sets, err := c.u32()
		if err != nil {
			return nil, err
		}
		ck.InitialSets = int(sets)
	}
	iter, err := c.u32()
	if err != nil {
		return nil, err
	}
	ck.Iteration = int(iter)
	conv, err := c.take(1)
	if err != nil {
		return nil, err
	}
	if conv[0] > 1 {
		return nil, fmt.Errorf("core: checkpoint converged flag %d not 0/1", conv[0])
	}
	ck.Converged = conv[0] == 1
	if ck.RNGDraws, err = c.u64(); err != nil {
		return nil, err
	}
	prev, err := c.u64()
	if err != nil {
		return nil, err
	}
	ck.PrevErr = int64(prev)
	if ck.InitialErrors, err = c.i64s(); err != nil {
		return nil, err
	}
	if ck.IterationErrors, err = c.i64s(); err != nil {
		return nil, err
	}
	for _, m := range []**boolmat.FactorMatrix{&ck.A, &ck.B, &ck.C} {
		if *m, err = c.factor(); err != nil {
			return nil, err
		}
	}
	if len(c.data) != 0 {
		return nil, fmt.Errorf("core: checkpoint has %d trailing bytes", len(c.data))
	}
	if ck.Iteration < 1 || len(ck.IterationErrors) != ck.Iteration {
		return nil, fmt.Errorf("core: checkpoint iteration %d does not match %d recorded errors",
			ck.Iteration, len(ck.IterationErrors))
	}
	if last := ck.IterationErrors[len(ck.IterationErrors)-1]; last != ck.PrevErr {
		return nil, fmt.Errorf("core: checkpoint error %d does not match last iteration error %d",
			ck.PrevErr, last)
	}
	return ck, nil
}

// writeCheckpoint durably replaces the run's checkpoint in dir: the image
// is written to a temp file in the same directory, fsynced, renamed over
// CheckpointFileName(ck.Fingerprint), and the directory is fsynced — a
// crash at any point leaves either the old checkpoint or the new one,
// never a torn file. Returns the image size.
func writeCheckpoint(dir string, ck *checkpoint) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	data := ck.encode()
	f, err := os.CreateTemp(dir, "checkpoint-*.tmp")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	cleanup := func(err error) (int64, error) {
		//dbtf:allow-unchecked best-effort cleanup; the write already failed and err is propagated
		f.Close()
		//dbtf:allow-unchecked best-effort cleanup; the write already failed and err is propagated
		os.Remove(tmp)
		return 0, err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		//dbtf:allow-unchecked best-effort cleanup; the close error is propagated
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, CheckpointFileName(ck.Fingerprint))); err != nil {
		//dbtf:allow-unchecked best-effort cleanup; the rename error is propagated
		os.Remove(tmp)
		return 0, err
	}
	if d, err := os.Open(dir); err == nil {
		// The directory fsync makes the rename itself durable; a dropped
		// close error here could mask a failed metadata flush (dbtfvet
		// errcheck finding), so it is folded into the sync error.
		serr := d.Sync()
		if cerr := d.Close(); serr == nil {
			serr = cerr
		}
		if serr != nil {
			return 0, serr
		}
	}
	return int64(len(data)), nil
}

// readCheckpoint loads the checkpoint for the run with fingerprint fp from
// dir: first the fingerprint-namespaced file, then the legacy un-namespaced
// CheckpointFile (directories written by older builds — the caller's
// fingerprint check still rejects a legacy checkpoint from a different
// configuration). A missing file returns (nil, nil): resuming a run that
// was killed before its first checkpoint boundary simply starts fresh.
func readCheckpoint(dir string, fp uint64) (*checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, CheckpointFileName(fp)))
	if os.IsNotExist(err) {
		data, err = os.ReadFile(filepath.Join(dir, CheckpointFile))
		if os.IsNotExist(err) {
			return nil, nil
		}
	}
	if err != nil {
		return nil, err
	}
	return decodeCheckpoint(data)
}

// fingerprint hashes (FNV-1a 64) everything that determines a
// decomposition's trajectory: the resolved options that influence results,
// the cluster size, and the tensor's dims and nonzero coordinates. Resume
// refuses a checkpoint whose fingerprint differs — continuing under a
// changed config or tensor could not be bit-identical to an uninterrupted
// run. Checkpoint placement (CheckpointDir, CheckpointEvery, Resume) and
// Trace are excluded: they affect durability, not results.
func fingerprint(x *tensor.Tensor, opt Options, machines int) uint64 {
	h := fnv64a{sum: 14695981039346656037}
	for _, v := range []uint64{
		uint64(opt.Rank), uint64(opt.MaxIter), uint64(opt.MinIter),
		uint64(opt.InitialSets), uint64(opt.Partitions), uint64(opt.GroupBits),
		uint64(opt.Tolerance), uint64(opt.Init), math.Float64bits(opt.InitDensity),
		uint64(opt.Seed), boolBit(opt.NoCache), boolBit(opt.Horizontal),
		uint64(machines),
	} {
		h.u64(v)
	}
	i, j, k := x.Dims()
	coords := x.Coords()
	h.u64(uint64(i))
	h.u64(uint64(j))
	h.u64(uint64(k))
	h.u64(uint64(len(coords)))
	for _, co := range coords {
		h.u64(uint64(co.I))
		h.u64(uint64(co.J))
		h.u64(uint64(co.K))
	}
	return h.sum
}

// Fingerprint returns the config+tensor fingerprint a run with the given
// options on a machines-machine cluster binds its checkpoints to. Options
// are resolved to their defaults first, exactly as Decompose resolves
// them, so the value matches the fingerprint of the actual run. The
// service layer uses it to name a job's checkpoint lineage (see
// CheckpointFileName) and as a job-scoped RNG/config identity when
// verifying bit-identical resumption.
func Fingerprint(x *tensor.Tensor, opts Options, machines int) (uint64, error) {
	opt, err := opts.withDefaults(x, machines)
	if err != nil {
		return 0, err
	}
	return fingerprint(x, opt, machines), nil
}

type fnv64a struct{ sum uint64 }

func (h *fnv64a) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.sum ^= uint64(byte(v >> (8 * i)))
		h.sum *= 1099511628211
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// countingSource wraps a rand.Source64 and counts its draws. Every value
// rand.Rand produces consumes draws from the source, so (seed, draw count)
// is the generator's complete stream state: a checkpoint stores the count,
// and resume replays exactly that many draws from a fresh source to
// fast-forward to the identical state.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// fastForward replays n draws, reproducing the state a source that made n
// draws before its checkpoint was in. Int63 and Uint64 advance the
// underlying generator identically, so replaying with either matches a
// history of any mix.
func (s *countingSource) fastForward(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.Int63()
	}
}
