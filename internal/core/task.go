package core

import (
	"dbtf/internal/bitvec"
	"dbtf/internal/boolmat"
	"dbtf/internal/cluster"
	"dbtf/internal/partition"
	"dbtf/internal/sumcache"
)

// shardState is one row range of a column task's evaluation: shard s owns
// rows [lo, hi) and writes only deltas[lo:hi] of the task's accumulator,
// plus its own Delta view and (in the NoCache ablation) its own scratch
// vectors. Shards therefore touch pairwise-disjoint mutable state, which
// is what makes a parallel evaluation bit-identical to a sequential one:
// each row's delta is computed by the same code over the same read-only
// inputs, and the "merge" is positional — every shard already writes its
// final location.
type shardState struct {
	lo, hi int
	delta  sumcache.Delta
	// scratch[bi] backs naiveSummer evaluation in the NoCache ablation;
	// nil under the cached delta path, which materializes no summations.
	scratch []*bitvec.BitVec
}

// columnTask is one partition's reusable state for the column-update
// stages of one factor update (Algorithm 4): block summers, pooled
// scratch, and the per-row delta accumulator, pre-split into one shard
// per machine thread. Everything is allocated when the task is built,
// before the column loop starts — evalColumn itself performs zero
// allocations.
type columnTask struct {
	part *partition.Partition
	// a is the factor matrix under update (row masks feed the cache
	// keys); mf indexes the PVM blocks.
	a, mf   *boolmat.FactorMatrix
	summers []summer
	// deltas[r] accumulates Σ_blocks (e1 − e0) for row r.
	deltas  []int64
	noCache bool
	// pool is the owning machine's intra-task worker pool (nil means
	// sequential); shards split the rows pool.Threads() ways.
	pool   *cluster.Pool
	shards []shardState
	// col is the column under evaluation, staged by evalColumn for
	// runShard — the closure is built once so the eval loop allocates
	// nothing.
	col      int
	runShard func(shard int)
}

func (d *decomposition) newColumnTask(pi int, part *partition.Partition, a, mf, ms *boolmat.FactorMatrix) *columnTask {
	pool := d.cl.PoolFor(d.cl.MachineFor(pi))
	return buildColumnTask(part, a, mf, d.blockSummers(pi, part, ms), d.opt.NoCache, pool)
}

// buildColumnTask assembles a column task from pre-resolved summers. It is
// the shared constructor of the simulated path (summers resolved through
// the per-machine registries) and a remote executor (its own registry);
// both sides build byte-identical state, which is what makes lazily
// rebuilding a reassigned task on another machine safe: evalColumn is
// stateless across columns, so a task built mid-update evaluates exactly
// like one built at the update's build stage. The pool only affects how
// many threads evaluate the rows, never the result, so the two sides may
// differ in it freely.
func buildColumnTask(part *partition.Partition, a, mf *boolmat.FactorMatrix, summers []summer, noCache bool, pool *cluster.Pool) *columnTask {
	t := &columnTask{
		part:    part,
		a:       a,
		mf:      mf,
		summers: summers,
		deltas:  make([]int64, a.Rows()),
		noCache: noCache,
		pool:    pool,
	}
	rows := a.Rows()
	n := pool.Threads()
	if n > rows {
		n = rows
	}
	if n < 1 {
		n = 1
	}
	t.shards = make([]shardState, n)
	for s := range t.shards {
		sh := &t.shards[s]
		sh.lo, sh.hi = rows*s/n, rows*(s+1)/n
		if t.noCache {
			sh.scratch = make([]*bitvec.BitVec, len(part.Blocks))
			for bi, b := range part.Blocks {
				sh.scratch[bi] = bitvec.New(b.Width())
			}
		}
	}
	t.runShard = func(s int) { t.evalRows(t.col, &t.shards[s]) }
	return t
}

// evalColumn fills deltas with every row's error difference e1 − e0 for
// column c: the change in the partition's reconstruction error if the
// row's entry in column c were 1 instead of 0. The row range is split
// across the machine pool's threads; shards write disjoint subranges of
// deltas (see shardState), so the parallel result is bit-identical to
// the sequential one.
//
//dbtf:noalloc
func (t *columnTask) evalColumn(c int) {
	if len(t.shards) == 1 {
		t.evalRows(c, &t.shards[0])
		return
	}
	t.col = c
	t.pool.Run(len(t.shards), t.runShard)
}

// evalRows evaluates one shard's rows [sh.lo, sh.hi) for column c.
// Blocks whose PVM row mask lacks bit c reconstruct identically under
// both candidates and are skipped; so are rows whose delta region is
// empty (SumDelta decides that from two cached popcounts, without
// touching any vector). All shared state read here — summers, factor
// row masks, block rows — is read-only during an eval stage; the cache's
// lazy sliced entries memoize under compare-and-swap.
//
//dbtf:noalloc
func (t *columnTask) evalRows(c int, sh *shardState) {
	bit := uint64(1) << uint(c)
	for r := sh.lo; r < sh.hi; r++ {
		t.deltas[r] = 0
	}
	for bi, b := range t.part.Blocks {
		kMask := t.mf.RowMask(b.PVM)
		if kMask&bit == 0 {
			continue
		}
		if t.noCache {
			t.evalBlockNaive(sh, bi, b, bit, kMask)
			continue
		}
		cache := t.summers[bi].(cacheSummer).Cache
		for r := sh.lo; r < sh.hi; r++ {
			key0 := (t.a.RowMask(r) &^ bit) & kMask
			cache.SumDelta(key0, bit, &sh.delta)
			if sh.delta.Empty() {
				continue
			}
			t.deltas[r] += b.DeltaError(r, &sh.delta)
		}
	}
}

// evalBlockNaive is the uncached reference path: both candidate
// summations are materialized from the factor columns and both errors
// evaluated in full. It is retained as the ablation of Section III-C and
// as the referee the differential tests compare the delta kernels
// against.
//
//dbtf:noalloc
func (t *columnTask) evalBlockNaive(sh *shardState, bi int, b *partition.Block, bit, kMask uint64) {
	sm := t.summers[bi]
	scratch := sh.scratch[bi]
	for r := sh.lo; r < sh.hi; r++ {
		row := t.a.RowMask(r)
		key0 := (row &^ bit) & kMask
		key1 := key0 | bit
		sum0, pop0 := sm.Sum(key0, scratch)
		e0 := b.RowError(r, sum0, pop0)
		sum1, pop1 := sm.Sum(key1, scratch)
		e1 := b.RowError(r, sum1, pop1)
		t.deltas[r] += e1 - e0
	}
}
