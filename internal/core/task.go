package core

import (
	"dbtf/internal/bitvec"
	"dbtf/internal/boolmat"
	"dbtf/internal/partition"
	"dbtf/internal/sumcache"
)

// columnTask is one partition's reusable state for the column-update
// stages of one factor update (Algorithm 4): block summers, pooled
// scratch, and the per-row delta accumulator. Everything is allocated when
// the task is built, before the column loop starts — evalColumn itself
// performs zero allocations.
type columnTask struct {
	part *partition.Partition
	// a is the factor matrix under update (row masks feed the cache
	// keys); mf indexes the PVM blocks.
	a, mf   *boolmat.FactorMatrix
	summers []summer
	// scratch[bi] backs naiveSummer evaluation in the NoCache ablation;
	// nil under the cached delta path, which materializes no summations.
	scratch []*bitvec.BitVec
	delta   sumcache.Delta
	// deltas[r] accumulates Σ_blocks (e1 − e0) for row r.
	deltas  []int64
	noCache bool
}

func (d *decomposition) newColumnTask(pi int, part *partition.Partition, a, mf, ms *boolmat.FactorMatrix) *columnTask {
	return buildColumnTask(part, a, mf, d.blockSummers(pi, part, ms), d.opt.NoCache)
}

// buildColumnTask assembles a column task from pre-resolved summers. It is
// the shared constructor of the simulated path (summers resolved through
// the per-machine registries) and a remote executor (its own registry);
// both sides build byte-identical state, which is what makes lazily
// rebuilding a reassigned task on another machine safe: evalColumn is
// stateless across columns, so a task built mid-update evaluates exactly
// like one built at the update's build stage.
func buildColumnTask(part *partition.Partition, a, mf *boolmat.FactorMatrix, summers []summer, noCache bool) *columnTask {
	t := &columnTask{
		part:    part,
		a:       a,
		mf:      mf,
		summers: summers,
		deltas:  make([]int64, a.Rows()),
		noCache: noCache,
	}
	if t.noCache {
		t.scratch = make([]*bitvec.BitVec, len(part.Blocks))
		for bi, b := range part.Blocks {
			t.scratch[bi] = bitvec.New(b.Width())
		}
	}
	return t
}

// evalColumn fills deltas with every row's error difference e1 − e0 for
// column c: the change in the partition's reconstruction error if the
// row's entry in column c were 1 instead of 0. Blocks whose PVM row mask
// lacks bit c reconstruct identically under both candidates and are
// skipped; so are rows whose delta region is empty (SumDelta decides that
// from two cached popcounts, without touching any vector).
//
//dbtf:noalloc
func (t *columnTask) evalColumn(c int) {
	bit := uint64(1) << uint(c)
	for r := range t.deltas {
		t.deltas[r] = 0
	}
	for bi, b := range t.part.Blocks {
		kMask := t.mf.RowMask(b.PVM)
		if kMask&bit == 0 {
			continue
		}
		if t.noCache {
			t.evalBlockNaive(bi, b, bit, kMask)
			continue
		}
		cache := t.summers[bi].(cacheSummer).Cache
		for r := range t.deltas {
			key0 := (t.a.RowMask(r) &^ bit) & kMask
			cache.SumDelta(key0, bit, &t.delta)
			if t.delta.Empty() {
				continue
			}
			t.deltas[r] += b.DeltaError(r, &t.delta)
		}
	}
}

// evalBlockNaive is the uncached reference path: both candidate
// summations are materialized from the factor columns and both errors
// evaluated in full. It is retained as the ablation of Section III-C and
// as the referee the differential tests compare the delta kernels
// against.
//
//dbtf:noalloc
func (t *columnTask) evalBlockNaive(bi int, b *partition.Block, bit, kMask uint64) {
	sm := t.summers[bi]
	scratch := t.scratch[bi]
	for r := range t.deltas {
		row := t.a.RowMask(r)
		key0 := (row &^ bit) & kMask
		key1 := key0 | bit
		sum0, pop0 := sm.Sum(key0, scratch)
		e0 := b.RowError(r, sum0, pop0)
		sum1, pop1 := sm.Sum(key1, scratch)
		e1 := b.RowError(r, sum1, pop1)
		t.deltas[r] += e1 - e0
	}
}
