package boolmat

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// WriteTo writes the factor matrix in the text interchange format: a
// header line "rows rank" followed by one line of '0'/'1' characters per
// row.
func (m *FactorMatrix) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "%d %d\n", m.Rows(), m.Rank())
	total += int64(n)
	if err != nil {
		return total, err
	}
	line := make([]byte, m.r+1)
	line[m.r] = '\n'
	for i := 0; i < m.Rows(); i++ {
		row := m.rows[i]
		for c := 0; c < m.r; c++ {
			if row&(1<<uint(c)) != 0 {
				line[c] = '1'
			} else {
				line[c] = '0'
			}
		}
		n, err := bw.Write(line)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// ReadFactorFrom parses the text interchange format written by WriteTo.
func ReadFactorFrom(r io.Reader) (*FactorMatrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("boolmat: empty factor input")
	}
	var rows, rank int
	if _, err := fmt.Sscanf(sc.Text(), "%d %d", &rows, &rank); err != nil {
		return nil, fmt.Errorf("boolmat: factor header %q: %w", sc.Text(), err)
	}
	if rows < 0 || rank < 0 || rank > MaxRank {
		return nil, fmt.Errorf("boolmat: invalid factor shape %dx%d", rows, rank)
	}
	// Grow by appending rather than trusting the header's row count, so a
	// corrupt or hostile header cannot force a huge allocation before a
	// single row is read.
	const initialRowCap = 1 << 12
	masks := make([]uint64, 0, min(rows, initialRowCap))
	for i := 0; i < rows; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("boolmat: factor input ends at row %d of %d", i, rows)
		}
		line := sc.Text()
		if len(line) != rank {
			return nil, fmt.Errorf("boolmat: row %d has %d entries, want %d", i, len(line), rank)
		}
		var mask uint64
		for c := 0; c < rank; c++ {
			switch line[c] {
			case '1':
				mask |= 1 << uint(c)
			case '0':
			default:
				return nil, fmt.Errorf("boolmat: row %d has invalid character %q", i, line[c])
			}
		}
		masks = append(masks, mask)
	}
	return &FactorMatrix{rows: masks, r: rank}, nil
}

// WriteFile writes the factor matrix to a file in the text interchange
// format.
func (m *FactorMatrix) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := m.WriteTo(f); err != nil {
		//dbtf:allow-unchecked best-effort cleanup; the write error is propagated
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFactorFile reads a factor matrix from a file in the text interchange
// format.
func ReadFactorFile(path string) (*FactorMatrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFactorFrom(f)
}
