package boolmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFactorShape(t *testing.T) {
	m := NewFactor(5, 10)
	if m.Rows() != 5 || m.Rank() != 10 {
		t.Fatalf("shape = %dx%d, want 5x10", m.Rows(), m.Rank())
	}
	if m.OnesCount() != 0 {
		t.Fatal("new factor matrix not zeroed")
	}
}

func TestNewFactorRankLimit(t *testing.T) {
	NewFactor(1, MaxRank) // must not panic
	for _, r := range []int{-1, MaxRank + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFactor(1, %d) did not panic", r)
				}
			}()
			NewFactor(1, r)
		}()
	}
}

func TestFactorSetGet(t *testing.T) {
	m := NewFactor(3, 4)
	m.Set(1, 2, true)
	if !m.Get(1, 2) {
		t.Fatal("Get(1,2) false after Set")
	}
	if m.Get(1, 1) || m.Get(2, 2) {
		t.Fatal("unexpected entries set")
	}
	m.Set(1, 2, false)
	if m.Get(1, 2) {
		t.Fatal("Get(1,2) true after clearing")
	}
}

func TestFactorRowMask(t *testing.T) {
	m := NewFactor(2, 6)
	m.Set(0, 0, true)
	m.Set(0, 5, true)
	if got := m.RowMask(0); got != 0b100001 {
		t.Fatalf("RowMask = %#b, want 0b100001", got)
	}
	m.SetRowMask(1, 0b011010)
	for c, want := range []bool{false, true, false, true, true, false} {
		if m.Get(1, c) != want {
			t.Fatalf("entry (1,%d) = %v, want %v", c, m.Get(1, c), want)
		}
	}
}

func TestSetRowMaskRejectsHighBits(t *testing.T) {
	m := NewFactor(1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("SetRowMask with out-of-rank bits did not panic")
		}
	}()
	m.SetRowMask(0, 0b1000)
}

func TestColumn(t *testing.T) {
	m := NewFactor(4, 3)
	m.Set(0, 1, true)
	m.Set(2, 1, true)
	m.Set(3, 0, true)
	col := m.Column(1)
	if col.Len() != 4 {
		t.Fatalf("Column length = %d, want 4", col.Len())
	}
	want := []bool{true, false, true, false}
	for i, w := range want {
		if col.Get(i) != w {
			t.Fatalf("column bit %d = %v, want %v", i, col.Get(i), w)
		}
	}
	cols := m.Columns()
	if len(cols) != 3 {
		t.Fatalf("Columns() returned %d vectors", len(cols))
	}
	if !cols[1].Equal(col) {
		t.Fatal("Columns()[1] != Column(1)")
	}
}

func TestDensityAndOnesCount(t *testing.T) {
	m := NewFactor(2, 4)
	m.SetRowMask(0, 0b1111)
	m.SetRowMask(1, 0b0001)
	if got := m.OnesCount(); got != 5 {
		t.Fatalf("OnesCount = %d, want 5", got)
	}
	if got := m.Density(); got != 5.0/8.0 {
		t.Fatalf("Density = %v, want 0.625", got)
	}
	if NewFactor(0, 0).Density() != 0 {
		t.Fatal("empty matrix density not 0")
	}
}

func TestRandomFactorDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := RandomFactor(rng, 2000, 20, 0.3)
	d := m.Density()
	if d < 0.27 || d > 0.33 {
		t.Fatalf("empirical density %v too far from 0.3", d)
	}
}

func TestCloneAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RandomFactor(rng, 10, 8, 0.5)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(0, 0, !c.Get(0, 0))
	if m.Equal(c) {
		t.Fatal("clone shares storage")
	}
	if m.Equal(NewFactor(10, 7)) || m.Equal(NewFactor(9, 8)) {
		t.Fatal("Equal ignores shape")
	}
}

func TestPermuteColumns(t *testing.T) {
	m := NewFactor(2, 3)
	m.SetRowMask(0, 0b001)                // columns: 0 set
	m.SetRowMask(1, 0b110)                // columns: 1,2 set
	p := m.PermuteColumns([]int{2, 0, 1}) // new col c = old col perm[c]
	if p.RowMask(0) != 0b010 {            // old col 0 is now col 1
		t.Fatalf("row 0 = %#b", p.RowMask(0))
	}
	if p.RowMask(1) != 0b101 { // old cols {1,2} are now {2,0}
		t.Fatalf("row 1 = %#b", p.RowMask(1))
	}
}

func TestFactorMatrixConversion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := RandomFactor(rng, 12, 9, 0.4)
	m := f.Matrix()
	if m.Rows() != 12 || m.Cols() != 9 {
		t.Fatalf("converted shape %dx%d", m.Rows(), m.Cols())
	}
	for i := 0; i < 12; i++ {
		for c := 0; c < 9; c++ {
			if f.Get(i, c) != m.Get(i, c) {
				t.Fatalf("entry (%d,%d) mismatch", i, c)
			}
		}
	}
}

func TestKhatriRaoDefinition(t *testing.T) {
	// Equation 3: (A ⊙ B) has column r = a_:r ⊗ b_:r.
	rng := rand.New(rand.NewSource(11))
	a := RandomFactor(rng, 4, 5, 0.5)
	b := RandomFactor(rng, 3, 5, 0.5)
	kr := KhatriRao(a, b)
	if kr.Rows() != 12 || kr.Rank() != 5 {
		t.Fatalf("Khatri-Rao shape %dx%d, want 12x5", kr.Rows(), kr.Rank())
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			for r := 0; r < 5; r++ {
				want := a.Get(i, r) && b.Get(j, r)
				if kr.Get(i*3+j, r) != want {
					t.Fatalf("KR entry (%d,%d,%d) = %v, want %v", i, j, r, kr.Get(i*3+j, r), want)
				}
			}
		}
	}
}

func TestKhatriRaoRankMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on rank mismatch")
		}
	}()
	KhatriRao(NewFactor(2, 3), NewFactor(2, 4))
}

func TestPVMDefinition(t *testing.T) {
	// Equation 4: a ⊛ B = [a₁b_:1 ... a_R b_:R].
	rng := rand.New(rand.NewSource(5))
	b := RandomFactor(rng, 6, 8, 0.5)
	var a uint64 = 0b10110001
	p := PVM(a, b)
	for j := 0; j < 6; j++ {
		for r := 0; r < 8; r++ {
			want := b.Get(j, r) && a&(1<<uint(r)) != 0
			if p.Get(j, r) != want {
				t.Fatalf("PVM entry (%d,%d) = %v, want %v", j, r, p.Get(j, r), want)
			}
		}
	}
}

func TestQuickKhatriRaoViaKronecker(t *testing.T) {
	// Column r of A ⊙ B equals column r of A ⊗ B restricted to the
	// columnwise-Kronecker positions, i.e. a_:r ⊗ b_:r.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		na, nb, r := rng.Intn(5)+1, rng.Intn(5)+1, rng.Intn(6)+1
		a := RandomFactor(rng, na, r, 0.5)
		b := RandomFactor(rng, nb, r, 0.5)
		kr := KhatriRao(a, b)
		kron := Kronecker(a.Matrix(), b.Matrix())
		for c := 0; c < r; c++ {
			for i := 0; i < na*nb; i++ {
				if kr.Get(i, c) != kron.Get(i, c*r+c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
