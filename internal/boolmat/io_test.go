package boolmat

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestFactorIORoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RandomFactor(rng, 17, 9, 0.4)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFactorFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestFactorIOFileRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := RandomFactor(rng, 8, 5, 0.5)
	path := filepath.Join(t.TempDir(), "m.fm")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFactorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Fatal("file roundtrip mismatch")
	}
}

func TestFactorIOZeroShapes(t *testing.T) {
	for _, m := range []*FactorMatrix{NewFactor(0, 3), NewFactor(3, 0), NewFactor(0, 0)} {
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadFactorFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(m) {
			t.Fatalf("roundtrip mismatch for %dx%d", m.Rows(), m.Rank())
		}
	}
}

func TestReadFactorErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "x y\n",
		"rank too big":  "1 65\n",
		"negative":      "-1 2\n",
		"short input":   "2 2\n01\n",
		"short row":     "1 3\n01\n",
		"long row":      "1 2\n011\n",
		"bad character": "1 2\n0x\n",
	}
	for name, in := range cases {
		if _, err := ReadFactorFrom(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadFactorMissingFile(t *testing.T) {
	if _, err := ReadFactorFile("/nonexistent/m.fm"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestQuickFactorIORoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := RandomFactor(rng, rng.Intn(40), rng.Intn(MaxRank+1), rng.Float64())
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		back, err := ReadFactorFrom(&buf)
		return err == nil && back.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
