package boolmat

import (
	"encoding/binary"
	"fmt"
)

// factorHeaderLen is the binary snapshot header: u32 rows, u32 rank.
const factorHeaderLen = 8

// AppendBinary appends the factor matrix in the binary snapshot layout —
// little-endian u32 row count, u32 rank, then one u64 row mask per row —
// and returns the extended slice. The layout is the factor component of
// the durable checkpoint format; DecodeBinaryFactor inverts it.
func (m *FactorMatrix) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.rows)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.r))
	for _, row := range m.rows {
		dst = binary.LittleEndian.AppendUint64(dst, row)
	}
	return dst
}

// DecodeBinaryFactor decodes one factor matrix from the front of data in
// the AppendBinary layout and returns it with the remaining bytes.
// Corrupt input — truncated headers or rows, an out-of-range rank, or row
// masks with bits at or above the rank — returns an error; the decoder
// never allocates more than the input can back, so a hostile header
// cannot force a huge allocation.
func DecodeBinaryFactor(data []byte) (*FactorMatrix, []byte, error) {
	if len(data) < factorHeaderLen {
		return nil, nil, fmt.Errorf("boolmat: factor snapshot truncated: %d header bytes, want %d", len(data), factorHeaderLen)
	}
	rows := binary.LittleEndian.Uint32(data)
	rank := binary.LittleEndian.Uint32(data[4:])
	if rank > MaxRank {
		return nil, nil, fmt.Errorf("boolmat: factor snapshot rank %d > %d", rank, MaxRank)
	}
	rest := data[factorHeaderLen:]
	if uint64(len(rest)) < uint64(rows)*8 {
		return nil, nil, fmt.Errorf("boolmat: factor snapshot truncated: %d mask bytes, want %d rows", len(rest), rows)
	}
	masks := make([]uint64, rows)
	for i := range masks {
		mask := binary.LittleEndian.Uint64(rest[i*8:])
		if rank < MaxRank && mask>>rank != 0 {
			return nil, nil, fmt.Errorf("boolmat: factor snapshot row %d mask %#x has bits beyond rank %d", i, mask, rank)
		}
		masks[i] = mask
	}
	return &FactorMatrix{rows: masks, r: int(rank)}, rest[rows*8:], nil
}
