package boolmat

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFactor fuzzes the factor-matrix text parser: arbitrary input
// must either parse into a well-formed matrix that round-trips through
// WriteTo bit-for-bit, or fail with an error — never panic or allocate
// according to an unvalidated header.
func FuzzReadFactor(f *testing.F) {
	f.Add([]byte("2 3\n101\n010\n"))
	f.Add([]byte("0 0\n"))
	f.Add([]byte("1 64\n" + strings.Repeat("1", 64) + "\n"))
	f.Add([]byte("999999999 2\n10\n"))
	f.Add([]byte("2 -1\n"))
	f.Add([]byte(""))
	f.Add([]byte("a b\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFactorFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m.Rank() < 0 || m.Rank() > MaxRank || m.Rows() < 0 {
			t.Fatalf("parsed matrix has invalid shape %dx%d", m.Rows(), m.Rank())
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo of parsed matrix: %v", err)
		}
		back, err := ReadFactorFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of written matrix: %v", err)
		}
		if !m.Equal(back) {
			t.Fatalf("round trip changed the matrix:\n%v\nvs\n%v", m, back)
		}
	})
}
