// Package boolmat implements Boolean matrices and the Boolean linear
// algebra used by Boolean CP decomposition: the Boolean matrix product,
// Khatri–Rao product, Kronecker product, and the pointwise vector-matrix
// product of the paper's Section II-A.
//
// Two representations are provided:
//
//   - FactorMatrix: an n×R binary matrix with R ≤ 64, storing each row as a
//     single uint64 mask. Factor matrices A, B, C of a rank-R Boolean CP
//     decomposition are FactorMatrices; the uint64 row masks make the cache
//     key a_i: ∧ c_k: of the paper's Section III-C a single AND instruction
//     (the "bitwise AND operation for efficiency" of Section III-F).
//
//   - Matrix: a general n×m binary matrix with bit-packed rows, used for
//     wide intermediates such as (C ⊙ B)ᵀ in reference computations and
//     tests. The scalable DBTF path never materializes such intermediates.
package boolmat

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"

	"dbtf/internal/bitvec"
)

// MaxRank is the largest rank a FactorMatrix supports. Rows are stored as
// uint64 masks; the paper evaluates ranks up to 60, well within this limit.
const MaxRank = 64

// FactorMatrix is an n×R binary matrix, R ≤ MaxRank, with rows stored as
// uint64 bit masks (bit r of row i is the entry at row i, column r).
type FactorMatrix struct {
	rows    []uint64
	r       int
	version uint64
}

// NewFactor returns a zeroed n×r factor matrix.
func NewFactor(n, r int) *FactorMatrix {
	if r < 0 || r > MaxRank {
		panic(fmt.Sprintf("boolmat: rank %d out of range [0,%d]", r, MaxRank))
	}
	if n < 0 {
		panic("boolmat: negative row count")
	}
	return &FactorMatrix{rows: make([]uint64, n), r: r}
}

// RandomFactor returns an n×r factor matrix whose entries are 1
// independently with probability density, drawn from rng.
func RandomFactor(rng *rand.Rand, n, r int, density float64) *FactorMatrix {
	m := NewFactor(n, r)
	for i := range m.rows {
		var mask uint64
		for c := 0; c < r; c++ {
			if rng.Float64() < density {
				mask |= 1 << uint(c)
			}
		}
		m.rows[i] = mask
	}
	return m
}

// Rows returns the number of rows n.
func (m *FactorMatrix) Rows() int { return len(m.rows) }

// Rank returns the number of columns R.
func (m *FactorMatrix) Rank() int { return m.r }

// Get reports whether entry (i, c) is set.
func (m *FactorMatrix) Get(i, c int) bool {
	m.checkCol(c)
	return m.rows[i]&(1<<uint(c)) != 0
}

// Set assigns entry (i, c).
func (m *FactorMatrix) Set(i, c int, v bool) {
	m.checkCol(c)
	m.version++
	if v {
		m.rows[i] |= 1 << uint(c)
	} else {
		m.rows[i] &^= 1 << uint(c)
	}
}

// Version returns a counter that advances on every mutation. Derived
// structures (row-summation caches) key their validity on the pair
// (matrix pointer, version): equal pairs guarantee the derivation is
// still current. Readers and the single writer must already be
// externally synchronized, as for every other method.
func (m *FactorMatrix) Version() uint64 { return m.version }

func (m *FactorMatrix) checkCol(c int) {
	if c < 0 || c >= m.r {
		panic(fmt.Sprintf("boolmat: column %d out of range [0,%d)", c, m.r))
	}
}

// RowMask returns row i as a bit mask (bit c = entry (i, c)).
func (m *FactorMatrix) RowMask(i int) uint64 { return m.rows[i] }

// SetRowMask overwrites row i with the given mask. Bits at or above Rank
// must be zero.
func (m *FactorMatrix) SetRowMask(i int, mask uint64) {
	if m.r < MaxRank && mask>>uint(m.r) != 0 {
		panic(fmt.Sprintf("boolmat: mask %#x has bits beyond rank %d", mask, m.r))
	}
	m.version++
	m.rows[i] = mask
}

// Column materializes column c as a bit vector of length Rows().
// Columns of B are the unit of caching in the paper's Section III-C.
func (m *FactorMatrix) Column(c int) *bitvec.BitVec {
	m.checkCol(c)
	v := bitvec.New(len(m.rows))
	bit := uint64(1) << uint(c)
	for i, row := range m.rows {
		if row&bit != 0 {
			v.Set(i)
		}
	}
	return v
}

// Columns materializes all R columns. Column r of the result is the r-th
// column of m as a length-n bit vector.
func (m *FactorMatrix) Columns() []*bitvec.BitVec {
	cols := make([]*bitvec.BitVec, m.r)
	for c := 0; c < m.r; c++ {
		cols[c] = m.Column(c)
	}
	return cols
}

// OnesCount returns the number of set entries.
func (m *FactorMatrix) OnesCount() int {
	n := 0
	for _, row := range m.rows {
		n += bits.OnesCount64(row)
	}
	return n
}

// Density returns the fraction of set entries.
func (m *FactorMatrix) Density() float64 {
	if len(m.rows) == 0 || m.r == 0 {
		return 0
	}
	return float64(m.OnesCount()) / float64(len(m.rows)*m.r)
}

// Clone returns a deep copy.
func (m *FactorMatrix) Clone() *FactorMatrix {
	c := NewFactor(len(m.rows), m.r)
	copy(c.rows, m.rows)
	return c
}

// Equal reports whether two factor matrices have identical shape and
// entries.
func (m *FactorMatrix) Equal(o *FactorMatrix) bool {
	if m.r != o.r || len(m.rows) != len(o.rows) {
		return false
	}
	for i, row := range m.rows {
		if o.rows[i] != row {
			return false
		}
	}
	return true
}

// Matrix converts the factor matrix to a general bit matrix.
func (m *FactorMatrix) Matrix() *Matrix {
	out := NewMatrix(len(m.rows), m.r)
	for i, row := range m.rows {
		for mask := row; mask != 0; mask &= mask - 1 {
			out.Set(i, bits.TrailingZeros64(mask), true)
		}
	}
	return out
}

// PermuteColumns returns a copy of m with columns reordered so that new
// column c is old column perm[c]. Used when matching recovered factors to
// planted ones (rank-1 components of a CP decomposition are unordered).
func (m *FactorMatrix) PermuteColumns(perm []int) *FactorMatrix {
	if len(perm) != m.r {
		panic(fmt.Sprintf("boolmat: permutation length %d != rank %d", len(perm), m.r))
	}
	out := NewFactor(len(m.rows), m.r)
	for i, row := range m.rows {
		var nr uint64
		for c, p := range perm {
			if row&(1<<uint(p)) != 0 {
				nr |= 1 << uint(c)
			}
		}
		out.rows[i] = nr
	}
	return out
}

// String renders the matrix with one row per line, for tests and debugging.
func (m *FactorMatrix) String() string {
	var sb strings.Builder
	for i := range m.rows {
		for c := 0; c < m.r; c++ {
			if m.Get(i, c) {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// KhatriRao returns the Boolean Khatri–Rao product A ⊙ B of two factor
// matrices with equal rank (Equation 3): the result has Rows(A)·Rows(B)
// rows, and row i·Rows(B)+j equals rowA(i) ∧ rowB(j). For binary inputs
// the columnwise Kronecker product is exactly this maskwise AND.
func KhatriRao(a, b *FactorMatrix) *FactorMatrix {
	if a.r != b.r {
		panic(fmt.Sprintf("boolmat: Khatri-Rao rank mismatch %d != %d", a.r, b.r))
	}
	out := NewFactor(a.Rows()*b.Rows(), a.r)
	idx := 0
	for _, ra := range a.rows {
		for _, rb := range b.rows {
			out.rows[idx] = ra & rb
			idx++
		}
	}
	return out
}

// PVM returns the pointwise vector-matrix product a ⊛ B (Equation 4) of a
// row mask a and a factor matrix B: column c of the result is B's column c
// if bit c of a is set, and all-zero otherwise. Equivalently every row mask
// of B is ANDed with a.
func PVM(a uint64, b *FactorMatrix) *FactorMatrix {
	out := NewFactor(b.Rows(), b.r)
	for i, row := range b.rows {
		out.rows[i] = row & a
	}
	return out
}
