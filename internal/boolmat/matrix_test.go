package boolmat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dbtf/internal/bitvec"
)

func TestMatrixSetGet(t *testing.T) {
	m := NewMatrix(3, 100)
	m.Set(1, 70, true)
	if !m.Get(1, 70) {
		t.Fatal("Get false after Set")
	}
	if m.Get(0, 70) || m.Get(1, 69) {
		t.Fatal("unexpected entries set")
	}
	m.Set(1, 70, false)
	if m.Get(1, 70) {
		t.Fatal("Get true after clear")
	}
}

func TestMatrixRowIsView(t *testing.T) {
	m := NewMatrix(2, 80)
	row := m.Row(1)
	row.Set(79)
	if !m.Get(1, 79) {
		t.Fatal("Row() is not a live view")
	}
}

func TestMatrixTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := RandomMatrix(rng, 7, 130, 0.3)
	tr := m.Transpose()
	if tr.Rows() != 130 || tr.Cols() != 7 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 7; i++ {
		for j := 0; j < 130; j++ {
			if m.Get(i, j) != tr.Get(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixXorCount(t *testing.T) {
	a := NewMatrix(2, 70)
	b := NewMatrix(2, 70)
	a.Set(0, 0, true)
	a.Set(1, 69, true)
	b.Set(1, 69, true)
	b.Set(1, 68, true)
	if got := a.XorCount(b); got != 2 {
		t.Fatalf("XorCount = %d, want 2", got)
	}
}

func TestMulDefinition(t *testing.T) {
	// Equation 6 checked against triple-loop reference.
	rng := rand.New(rand.NewSource(4))
	a := RandomMatrix(rng, 6, 9, 0.4)
	b := RandomMatrix(rng, 9, 11, 0.4)
	got := Mul(a, b)
	for i := 0; i < 6; i++ {
		for j := 0; j < 11; j++ {
			want := false
			for k := 0; k < 9; k++ {
				if a.Get(i, k) && b.Get(k, j) {
					want = true
					break
				}
			}
			if got.Get(i, j) != want {
				t.Fatalf("Mul entry (%d,%d) = %v, want %v", i, j, got.Get(i, j), want)
			}
		}
	}
}

func TestMulInnerMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on inner dimension mismatch")
		}
	}()
	Mul(NewMatrix(2, 3), NewMatrix(4, 2))
}

func TestMulFactorAgainstMul(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := RandomFactor(rng, 10, 12, 0.4)
	m := RandomMatrix(rng, 12, 33, 0.4)
	if !MulFactor(f, m).Equal(Mul(f.Matrix(), m)) {
		t.Fatal("MulFactor disagrees with Mul")
	}
}

func TestOrSelectedRowsLemma1(t *testing.T) {
	// Lemma 1: a_i: ∘ Mᵀ equals the Boolean sum of the rows of Mᵀ selected
	// by the nonzeros of a_i:.
	rng := rand.New(rand.NewSource(9))
	m := RandomMatrix(rng, 10, 25, 0.4)
	var mask uint64 = 0b1010010011
	dst := bitvec.New(25)
	OrSelectedRows(dst, m, mask)
	want := bitvec.New(25)
	for k := 0; k < 10; k++ {
		if mask&(1<<uint(k)) != 0 {
			want.Or(m.Row(k))
		}
	}
	if !dst.Equal(want) {
		t.Fatal("OrSelectedRows disagrees with explicit Boolean summation")
	}
}

func TestKroneckerDefinition(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, true)
	a.Set(1, 1, true)
	b := NewMatrix(2, 3)
	b.Set(0, 2, true)
	b.Set(1, 0, true)
	k := Kronecker(a, b)
	if k.Rows() != 4 || k.Cols() != 6 {
		t.Fatalf("Kronecker shape %dx%d, want 4x6", k.Rows(), k.Cols())
	}
	for i1 := 0; i1 < 2; i1++ {
		for j1 := 0; j1 < 2; j1++ {
			for i2 := 0; i2 < 2; i2++ {
				for j2 := 0; j2 < 3; j2++ {
					want := a.Get(i1, j1) && b.Get(i2, j2)
					if k.Get(i1*2+i2, j1*3+j2) != want {
						t.Fatalf("Kronecker entry mismatch at (%d,%d,%d,%d)", i1, j1, i2, j2)
					}
				}
			}
		}
	}
}

func TestQuickMulAssociatesWithOr(t *testing.T) {
	// (A ∨ B) ∘ C = (A ∘ C) ∨ (B ∘ C): Boolean sum distributes over the
	// Boolean matrix product.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k, m := rng.Intn(6)+1, rng.Intn(6)+1, rng.Intn(6)+1
		a := RandomMatrix(rng, n, k, 0.5)
		b := RandomMatrix(rng, n, k, 0.5)
		c := RandomMatrix(rng, k, m, 0.5)
		ab := a.Clone()
		for i := 0; i < n; i++ {
			ab.Row(i).Or(b.Row(i))
		}
		left := Mul(ab, c)
		right := Mul(a, c)
		bc := Mul(b, c)
		for i := 0; i < n; i++ {
			right.Row(i).Or(bc.Row(i))
		}
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := rng.Intn(20)+1, rng.Intn(90)+1
		a := RandomMatrix(rng, n, m, 0.3)
		return a.Transpose().Transpose().Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulMatchesProductOfTransposes(t *testing.T) {
	// (A ∘ B)ᵀ = Bᵀ ∘ Aᵀ for Boolean products.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k, m := rng.Intn(7)+1, rng.Intn(7)+1, rng.Intn(7)+1
		a := RandomMatrix(rng, n, k, 0.5)
		b := RandomMatrix(rng, k, m, 0.5)
		return Mul(a, b).Transpose().Equal(Mul(b.Transpose(), a.Transpose()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulFactor(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f := RandomFactor(rng, 256, 16, 0.2)
	m := RandomMatrix(rng, 16, 4096, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MulFactor(f, m)
	}
}
