package boolmat

import (
	"fmt"
	"math/bits"
	"math/rand"

	"dbtf/internal/bitvec"
)

// Matrix is a general n×m binary matrix with bit-packed rows backed by a
// single flat word array. Row views are zero-copy BitVecs.
type Matrix struct {
	n, m   int
	stride int // words per row
	words  []uint64
}

// NewMatrix returns a zeroed n×m bit matrix.
func NewMatrix(n, m int) *Matrix {
	if n < 0 || m < 0 {
		panic("boolmat: negative matrix dimension")
	}
	stride := (m + bitvec.WordBits - 1) / bitvec.WordBits
	return &Matrix{n: n, m: m, stride: stride, words: make([]uint64, n*stride)}
}

// RandomMatrix returns an n×m bit matrix whose entries are 1 independently
// with probability density, drawn from rng.
func RandomMatrix(rng *rand.Rand, n, m int, density float64) *Matrix {
	out := NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if rng.Float64() < density {
				out.Set(i, j, true)
			}
		}
	}
	return out
}

// Rows returns the number of rows n.
func (a *Matrix) Rows() int { return a.n }

// Cols returns the number of columns m.
func (a *Matrix) Cols() int { return a.m }

// Row returns row i as a zero-copy bit vector view. Mutating the returned
// vector mutates the matrix.
func (a *Matrix) Row(i int) *bitvec.BitVec {
	return bitvec.Wrap(a.m, a.words[i*a.stride:(i+1)*a.stride])
}

// Get reports whether entry (i, j) is set.
func (a *Matrix) Get(i, j int) bool {
	if j < 0 || j >= a.m {
		panic(fmt.Sprintf("boolmat: column %d out of range [0,%d)", j, a.m))
	}
	return a.words[i*a.stride+j/bitvec.WordBits]&(1<<(uint(j)%bitvec.WordBits)) != 0
}

// Set assigns entry (i, j).
func (a *Matrix) Set(i, j int, v bool) {
	if j < 0 || j >= a.m {
		panic(fmt.Sprintf("boolmat: column %d out of range [0,%d)", j, a.m))
	}
	w := i*a.stride + j/bitvec.WordBits
	bit := uint64(1) << (uint(j) % bitvec.WordBits)
	if v {
		a.words[w] |= bit
	} else {
		a.words[w] &^= bit
	}
}

// OnesCount returns the number of set entries.
func (a *Matrix) OnesCount() int {
	n := 0
	for i := 0; i < a.n; i++ {
		n += a.Row(i).OnesCount()
	}
	return n
}

// Clone returns a deep copy.
func (a *Matrix) Clone() *Matrix {
	out := NewMatrix(a.n, a.m)
	copy(out.words, a.words)
	return out
}

// Equal reports whether two matrices have identical shape and entries.
func (a *Matrix) Equal(b *Matrix) bool {
	if a.n != b.n || a.m != b.m {
		return false
	}
	for i, w := range a.words {
		if b.words[i] != w {
			return false
		}
	}
	return true
}

// Transpose returns aᵀ.
func (a *Matrix) Transpose() *Matrix {
	out := NewMatrix(a.m, a.n)
	for i := 0; i < a.n; i++ {
		a.Row(i).Range(func(j int) {
			out.Set(j, i, true)
		})
	}
	return out
}

// XorCount returns |a ⊕ b|, the number of entries where the matrices
// differ. Shapes must match.
func (a *Matrix) XorCount(b *Matrix) int {
	if a.n != b.n || a.m != b.m {
		panic(fmt.Sprintf("boolmat: XorCount shape mismatch %dx%d vs %dx%d", a.n, a.m, b.n, b.m))
	}
	n := 0
	for i := 0; i < a.n; i++ {
		n += a.Row(i).XorCount(b.Row(i))
	}
	return n
}

// Mul returns the Boolean matrix product a ∘ b (Equation 6):
// (a ∘ b)_ij = ⋁_k a_ik ∧ b_kj. Row i of the result is the Boolean sum of
// the rows of b selected by the set bits of row i of a (Lemma 1).
func Mul(a, b *Matrix) *Matrix {
	if a.m != b.n {
		panic(fmt.Sprintf("boolmat: Mul inner dimension mismatch %d != %d", a.m, b.n))
	}
	out := NewMatrix(a.n, b.m)
	for i := 0; i < a.n; i++ {
		dst := out.Row(i)
		a.Row(i).Range(func(k int) {
			dst.Or(b.Row(k))
		})
	}
	return out
}

// MulFactor returns the Boolean matrix product A ∘ M of a factor matrix
// (n×R) and a general matrix (R×m). Row i of the result is the Boolean sum
// of the rows of M selected by A's row mask i.
func MulFactor(a *FactorMatrix, m *Matrix) *Matrix {
	if a.Rank() != m.n {
		panic(fmt.Sprintf("boolmat: MulFactor inner dimension mismatch %d != %d", a.Rank(), m.n))
	}
	out := NewMatrix(a.Rows(), m.m)
	for i := 0; i < a.Rows(); i++ {
		dst := out.Row(i)
		OrSelectedRows(dst, m, a.RowMask(i))
	}
	return out
}

// OrSelectedRows ORs into dst the rows of m selected by the set bits of
// mask. This is the Boolean row summation of Lemma 1 and the operation the
// DBTF cache tables precompute.
func OrSelectedRows(dst *bitvec.BitVec, m *Matrix, mask uint64) {
	for ; mask != 0; mask &= mask - 1 {
		dst.Or(m.Row(bits.TrailingZeros64(mask)))
	}
}

// Kronecker returns the Boolean Kronecker product a ⊗ b (Equation 2): a
// matrix of size Rows(a)·Rows(b) × Cols(a)·Cols(b) whose (i₁·n₂+i₂,
// j₁·m₂+j₂) entry is a_{i₁j₁} ∧ b_{i₂j₂}.
func Kronecker(a, b *Matrix) *Matrix {
	out := NewMatrix(a.n*b.n, a.m*b.m)
	for i1 := 0; i1 < a.n; i1++ {
		a.Row(i1).Range(func(j1 int) {
			for i2 := 0; i2 < b.n; i2++ {
				b.Row(i2).Range(func(j2 int) {
					out.Set(i1*b.n+i2, j1*b.m+j2, true)
				})
			}
		})
	}
	return out
}
