package boolmat

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

func TestBinaryRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []*FactorMatrix{
		NewFactor(0, 0),
		NewFactor(0, 5),
		NewFactor(3, 0),
		NewFactor(4, 1),
		RandomFactor(rng, 17, 9, 0.4),
		RandomFactor(rng, 1, MaxRank, 0.5),
		RandomFactor(rng, 100, 63, 0.2),
	}
	for _, m := range cases {
		data := m.AppendBinary(nil)
		if want := factorHeaderLen + 8*m.Rows(); len(data) != want {
			t.Errorf("%dx%d: encoded %d bytes, want %d", m.Rows(), m.Rank(), len(data), want)
		}
		got, rest, err := DecodeBinaryFactor(data)
		if err != nil {
			t.Fatalf("%dx%d: decode: %v", m.Rows(), m.Rank(), err)
		}
		if len(rest) != 0 {
			t.Errorf("%dx%d: %d unconsumed bytes", m.Rows(), m.Rank(), len(rest))
		}
		if !got.Equal(m) {
			t.Errorf("%dx%d: decoded matrix differs", m.Rows(), m.Rank())
		}
	}
}

func TestBinaryAppendsToExisting(t *testing.T) {
	m := NewFactor(2, 3)
	m.SetRowMask(0, 0b101)
	prefix := []byte("prefix")
	data := m.AppendBinary(append([]byte(nil), prefix...))
	if !bytes.HasPrefix(data, prefix) {
		t.Fatal("AppendBinary clobbered the existing slice contents")
	}
	got, rest, err := DecodeBinaryFactor(data[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || !got.Equal(m) {
		t.Error("round-trip after prefix failed")
	}
}

func TestBinaryTrailingBytesPassThrough(t *testing.T) {
	m := NewFactor(2, 4)
	m.SetRowMask(1, 0b1111)
	trailer := []byte{0xde, 0xad, 0xbe, 0xef}
	data := append(m.AppendBinary(nil), trailer...)
	got, rest, err := DecodeBinaryFactor(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, trailer) {
		t.Errorf("rest = %x, want %x", rest, trailer)
	}
	if !got.Equal(m) {
		t.Error("decoded matrix differs")
	}
}

func TestBinaryConsecutiveFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := RandomFactor(rng, 5, 8, 0.5)
	b := RandomFactor(rng, 9, 3, 0.5)
	data := b.AppendBinary(a.AppendBinary(nil))
	gotA, rest, err := DecodeBinaryFactor(data)
	if err != nil {
		t.Fatal(err)
	}
	gotB, rest, err := DecodeBinaryFactor(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || !gotA.Equal(a) || !gotB.Equal(b) {
		t.Error("consecutive factor decode failed")
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	valid := func() []byte {
		m := NewFactor(2, 3)
		m.SetRowMask(0, 0b110)
		return m.AppendBinary(nil)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"nil input", nil, "truncated"},
		{"short header", valid()[:factorHeaderLen-1], "truncated"},
		{"missing row", valid()[:factorHeaderLen+7], "truncated"},
		{"rank too large", func() []byte {
			d := valid()
			binary.LittleEndian.PutUint32(d[4:], MaxRank+1)
			return d
		}(), "rank"},
		{"mask beyond rank", func() []byte {
			d := valid()
			binary.LittleEndian.PutUint64(d[factorHeaderLen:], 1<<3)
			return d
		}(), "bits beyond rank"},
		{"huge row count", func() []byte {
			d := valid()
			binary.LittleEndian.PutUint32(d, 1<<30)
			return d
		}(), "truncated"},
	}
	for _, tc := range cases {
		m, rest, err := DecodeBinaryFactor(tc.data)
		if err == nil {
			t.Errorf("%s: decode succeeded, want error containing %q", tc.name, tc.want)
			continue
		}
		if m != nil || rest != nil {
			t.Errorf("%s: non-nil result alongside error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestBinaryMaxRankMaskAllowed(t *testing.T) {
	// At rank 64 every bit of the u64 mask is in range; the beyond-rank
	// check must not fire (mask>>64 would be UB-adjacent in other
	// languages and is guarded by the rank < MaxRank condition here).
	m := NewFactor(1, MaxRank)
	m.SetRowMask(0, ^uint64(0))
	got, rest, err := DecodeBinaryFactor(m.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || got.RowMask(0) != ^uint64(0) {
		t.Error("full-width mask round-trip failed")
	}
}
