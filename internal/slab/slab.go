// Package slab recycles the large flat arenas the decomposition engine
// otherwise allocates fresh on every call: unfolding column arrays,
// partition CSR and packed-row arenas, and sum-cache entry tables. These
// are the dominant allocation sites of a Factorize call, and because each
// has a clear owner with a well-defined release point (an unfolding is
// dead once its partitioning is built; a partitioning dies with its
// decomposition; a sum cache dies when its factor version goes stale),
// they can be returned to a free list instead of churning the garbage
// collector.
//
// Slices are pooled per power-of-two capacity class in global sync.Pools,
// so Get/Put are safe for concurrent use from cluster task goroutines and
// TCP workers. A Get never fails: on a cold pool it falls back to make.
//
// Contract: a Put hands ownership of the slice's full capacity back to the
// pool. The caller must not retain any alias (including subslices) past
// the Put — the memory will be handed to an unrelated Get. Dirty variants
// return unspecified contents; callers must fully overwrite them.
package slab

import (
	"math/bits"
	"sync"
)

// Slices smaller than this many bytes are not worth round-tripping
// through a sync.Pool; they come straight from make and Puts of them are
// dropped.
const minBytes = 2048

var (
	int32Pools  [33]sync.Pool
	uint64Pools [33]sync.Pool
)

// class returns the power-of-two capacity class holding n elements.
func class(n int) int { return bits.Len(uint(n - 1)) }

// Int32s returns a slice of n int32s with unspecified contents.
func Int32s(n int) []int32 {
	if n == 0 {
		return nil
	}
	k := class(n)
	if n*4 >= minBytes {
		if p, _ := int32Pools[k].Get().(*[]int32); p != nil {
			return (*p)[:n]
		}
	}
	return make([]int32, n, 1<<k)
}

// Int32sZeroed returns a slice of n zeroed int32s.
func Int32sZeroed(n int) []int32 {
	s := Int32s(n)
	clear(s)
	return s
}

// PutInt32s returns a slice obtained from Int32s to the pool. The slice
// and every alias of it must not be used afterwards.
func PutInt32s(s []int32) {
	c := cap(s)
	if c*4 < minBytes || c != 1<<class(c) {
		return
	}
	s = s[:c]
	int32Pools[class(c)].Put(&s)
}

// Uint64s returns a slice of n uint64s with unspecified contents.
func Uint64s(n int) []uint64 {
	if n == 0 {
		return nil
	}
	k := class(n)
	if n*8 >= minBytes {
		if p, _ := uint64Pools[k].Get().(*[]uint64); p != nil {
			return (*p)[:n]
		}
	}
	return make([]uint64, n, 1<<k)
}

// Uint64sZeroed returns a slice of n zeroed uint64s.
func Uint64sZeroed(n int) []uint64 {
	s := Uint64s(n)
	clear(s)
	return s
}

// PutUint64s returns a slice obtained from Uint64s to the pool. The slice
// and every alias of it must not be used afterwards.
func PutUint64s(s []uint64) {
	c := cap(s)
	if c*8 < minBytes || c != 1<<class(c) {
		return
	}
	s = s[:c]
	uint64Pools[class(c)].Put(&s)
}
