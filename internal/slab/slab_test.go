package slab

import (
	"math/rand"
	"sync"
	"testing"
)

func TestClass(t *testing.T) {
	cases := []struct{ n, k int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21},
	}
	for _, c := range cases {
		if got := class(c.n); got != c.k {
			t.Errorf("class(%d) = %d, want %d", c.n, got, c.k)
		}
	}
}

func TestInt32sShape(t *testing.T) {
	for _, n := range []int{0, 1, 7, 511, 512, 513, 4096, 100_000} {
		s := Int32s(n)
		if len(s) != n {
			t.Fatalf("Int32s(%d) has len %d", n, len(s))
		}
		if n > 0 && cap(s) != 1<<class(n) {
			t.Fatalf("Int32s(%d) has cap %d, want the class size %d", n, cap(s), 1<<class(n))
		}
		PutInt32s(s)
	}
}

func TestZeroedVariantsAreZero(t *testing.T) {
	// Dirty a pooled slice, return it, and check the zeroed constructor
	// really clears recycled contents.
	for i := 0; i < 3; i++ {
		d := Int32s(4096)
		for j := range d {
			d[j] = -1
		}
		PutInt32s(d)
		z := Int32sZeroed(4096)
		for j, v := range z {
			if v != 0 {
				t.Fatalf("Int32sZeroed[%d] = %d after recycling", j, v)
			}
		}
		PutInt32s(z)

		u := Uint64s(4096)
		for j := range u {
			u[j] = ^uint64(0)
		}
		PutUint64s(u)
		uz := Uint64sZeroed(4096)
		for j, v := range uz {
			if v != 0 {
				t.Fatalf("Uint64sZeroed[%d] = %d after recycling", j, v)
			}
		}
		PutUint64s(uz)
	}
}

func TestPutRejectsForeignSlices(t *testing.T) {
	// Non-power-of-two capacities (e.g. subslices with odd caps) and
	// below-threshold slices must be dropped, not pooled: a later Get
	// assumes full class capacity.
	PutInt32s(make([]int32, 1000, 1000)) // cap not a power of two
	PutInt32s(make([]int32, 8))          // below minBytes
	PutUint64s(make([]uint64, 100, 100))
	PutUint64s(nil)
	s := Int32s(1024)
	if cap(s) != 1024 {
		t.Fatalf("Int32s(1024) has cap %d after foreign Puts, want 1024", cap(s))
	}
	PutInt32s(s)
}

// TestConcurrentChurn hammers Get/Put from many goroutines; run under
// -race this pins the pools' safety for cluster task goroutines and TCP
// workers recycling concurrently.
func TestConcurrentChurn(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				n := 1 + rng.Intn(8192)
				a := Int32s(n)
				b := Uint64sZeroed(n)
				for j := range b {
					if b[j] != 0 {
						t.Error("dirty zeroed slice")
						return
					}
				}
				a[0], a[n-1] = 1, 2
				PutInt32s(a)
				PutUint64s(b)
			}
		}(int64(g))
	}
	wg.Wait()
}
