package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrAndAndNot(t *testing.T) {
	x := MustFromCoords(3, 3, 3, []Coord{{0, 0, 0}, {1, 1, 1}})
	y := MustFromCoords(3, 3, 3, []Coord{{1, 1, 1}, {2, 2, 2}})

	or := Or(x, y)
	if or.NNZ() != 3 || !or.Get(0, 0, 0) || !or.Get(1, 1, 1) || !or.Get(2, 2, 2) {
		t.Fatalf("Or = %v", or.Coords())
	}
	and := And(x, y)
	if and.NNZ() != 1 || !and.Get(1, 1, 1) {
		t.Fatalf("And = %v", and.Coords())
	}
	diff := AndNot(x, y)
	if diff.NNZ() != 1 || !diff.Get(0, 0, 0) {
		t.Fatalf("AndNot = %v", diff.Coords())
	}
}

func TestSetOpsDimensionMismatchPanics(t *testing.T) {
	x := New(2, 2, 2)
	y := New(2, 2, 3)
	for name, op := range map[string]func(){
		"Or":     func() { Or(x, y) },
		"And":    func() { And(x, y) },
		"AndNot": func() { AndNot(x, y) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			op()
		}()
	}
}

func TestQuickSetOpAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		i, j, k := rng.Intn(6)+1, rng.Intn(6)+1, rng.Intn(6)+1
		x := randomTensor(rng, i, j, k, 0.3)
		y := randomTensor(rng, i, j, k, 0.3)
		// |x| + |y| = |x∧y| + |x∨y|
		if x.NNZ()+y.NNZ() != And(x, y).NNZ()+Or(x, y).NNZ() {
			return false
		}
		// x = (x∧y) ∨ (x∧¬y)
		if !Or(And(x, y), AndNot(x, y)).Equal(x) {
			return false
		}
		// |x ⊕ y| = |x∧¬y| + |y∧¬x|
		return x.XorCount(y) == AndNot(x, y).NNZ()+AndNot(y, x).NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPermute(t *testing.T) {
	x := MustFromCoords(2, 3, 4, []Coord{{1, 2, 3}, {0, 1, 2}})
	p := x.Permute([3]int{2, 0, 1}) // new I = old K, new J = old I, new K = old J
	i, j, k := p.Dims()
	if i != 4 || j != 2 || k != 3 {
		t.Fatalf("permuted dims %dx%dx%d", i, j, k)
	}
	if !p.Get(3, 1, 2) || !p.Get(2, 0, 1) {
		t.Fatalf("permuted coords wrong: %v", p.Coords())
	}
}

func TestPermuteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randomTensor(rng, 4, 5, 6, 0.2)
	if !x.Permute([3]int{0, 1, 2}).Equal(x) {
		t.Fatal("identity permutation changed the tensor")
	}
}

func TestPermuteInvalidPanics(t *testing.T) {
	x := New(2, 2, 2)
	for _, perm := range [][3]int{{0, 0, 1}, {0, 1, 3}, {-1, 1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Permute(%v) did not panic", perm)
				}
			}()
			x.Permute(perm)
		}()
	}
}

func TestQuickPermuteRoundtrip(t *testing.T) {
	// Applying a permutation and its inverse restores the tensor.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomTensor(rng, rng.Intn(5)+1, rng.Intn(5)+1, rng.Intn(5)+1, 0.3)
		perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
		perm := perms[rng.Intn(len(perms))]
		var inv [3]int
		for newMode, oldMode := range perm {
			inv[oldMode] = newMode
		}
		return x.Permute(perm).Permute(inv).Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSubTensor(t *testing.T) {
	x := MustFromCoords(4, 4, 4, []Coord{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}, {3, 3, 3}})
	sub := x.SubTensor(1, 3, 1, 3, 1, 3)
	i, j, k := sub.Dims()
	if i != 2 || j != 2 || k != 2 {
		t.Fatalf("sub dims %dx%dx%d", i, j, k)
	}
	if sub.NNZ() != 2 || !sub.Get(0, 0, 0) || !sub.Get(1, 1, 1) {
		t.Fatalf("sub coords %v", sub.Coords())
	}
}

func TestSubTensorOutOfRangePanics(t *testing.T) {
	x := New(2, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	x.SubTensor(0, 3, 0, 2, 0, 2)
}

func TestSliceK(t *testing.T) {
	x := MustFromCoords(3, 3, 3, []Coord{{0, 1, 2}, {1, 2, 2}, {0, 0, 0}})
	s := x.SliceK(2)
	i, j, k := s.Dims()
	if i != 3 || j != 3 || k != 1 {
		t.Fatalf("slice dims %dx%dx%d", i, j, k)
	}
	if s.NNZ() != 2 || !s.Get(0, 1, 0) || !s.Get(1, 2, 0) {
		t.Fatalf("slice coords %v", s.Coords())
	}
}

func TestFiberCounts(t *testing.T) {
	x := MustFromCoords(3, 2, 2, []Coord{{0, 0, 0}, {0, 1, 1}, {2, 0, 1}})
	bi, bj, bk := x.FiberCounts()
	if bi[0] != 2 || bi[1] != 0 || bi[2] != 1 {
		t.Fatalf("byI = %v", bi)
	}
	if bj[0] != 2 || bj[1] != 1 {
		t.Fatalf("byJ = %v", bj)
	}
	if bk[0] != 1 || bk[1] != 2 {
		t.Fatalf("byK = %v", bk)
	}
}
