package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// binaryMagic identifies the compact binary tensor format.
var binaryMagic = [4]byte{'D', 'B', 'T', '1'}

// WriteBinary writes the tensor in the compact binary format: a 4-byte
// magic, the three dimensions and the nonzero count as uvarints, then the
// coordinates delta-encoded in sorted order (per-entry: uvarint ΔI,
// uvarint J', uvarint K', where J'/K' restart from the absolute value
// whenever the previous coordinate's prefix changes). The format is
// typically 3–6× smaller than the text format and an order of magnitude
// faster to parse.
func (t *Tensor) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	for _, v := range []uint64{uint64(t.dimI), uint64(t.dimJ), uint64(t.dimK), uint64(len(t.coords))} {
		if err := putUvarint(v); err != nil {
			return err
		}
	}
	prev := Coord{I: -1, J: -1, K: -1}
	for _, c := range t.coords {
		di := c.I - prev.I
		if prev.I < 0 {
			di = c.I
		}
		if err := putUvarint(uint64(di)); err != nil {
			return err
		}
		if err := putUvarint(uint64(c.J)); err != nil {
			return err
		}
		if err := putUvarint(uint64(c.K)); err != nil {
			return err
		}
		prev = c
	}
	return bw.Flush()
}

// ReadBinary parses the compact binary format written by WriteBinary.
func ReadBinary(r io.Reader) (*Tensor, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("tensor: binary magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("tensor: bad binary magic %q", magic[:])
	}
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	dims := make([]uint64, 4)
	for n := range dims {
		v, err := read()
		if err != nil {
			return nil, fmt.Errorf("tensor: binary header: %w", err)
		}
		dims[n] = v
	}
	const maxDim = 1 << 40
	if dims[0] > maxDim || dims[1] > maxDim || dims[2] > maxDim {
		return nil, fmt.Errorf("tensor: implausible dimensions %v", dims[:3])
	}
	t := New(int(dims[0]), int(dims[1]), int(dims[2]))
	nnz := int(dims[3])
	if nnz < 0 {
		return nil, fmt.Errorf("tensor: negative nonzero count")
	}
	// The header's nonzero count is attacker-controlled: cap the initial
	// allocation and let append grow it against actually-present entries,
	// so a forged header cannot over-allocate.
	prealloc := nnz
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	coords := make([]Coord, 0, prealloc)
	cur := 0
	for n := 0; n < nnz; n++ {
		di, err := read()
		if err != nil {
			return nil, fmt.Errorf("tensor: entry %d: %w", n, err)
		}
		j, err := read()
		if err != nil {
			return nil, fmt.Errorf("tensor: entry %d: %w", n, err)
		}
		k, err := read()
		if err != nil {
			return nil, fmt.Errorf("tensor: entry %d: %w", n, err)
		}
		cur += int(di)
		c := Coord{I: cur, J: int(j), K: int(k)}
		if !t.inRange(c) {
			return nil, fmt.Errorf("tensor: entry %d coordinate (%d,%d,%d) outside %dx%dx%d",
				n, c.I, c.J, c.K, t.dimI, t.dimJ, t.dimK)
		}
		coords = append(coords, c)
	}
	sortCoords(coords)
	t.coords = dedup(coords)
	return t, nil
}

// WriteBinaryFile writes the tensor to a file in the compact binary
// format.
func (t *Tensor) WriteBinaryFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile reads a tensor from a file in the compact binary format.
func ReadBinaryFile(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// ReadAnyFile reads a tensor file in either format, sniffing the binary
// magic first.
func ReadAnyFile(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [4]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && n == 0 {
		return nil, fmt.Errorf("tensor: empty file %s", path)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if magic == binaryMagic {
		return ReadBinary(f)
	}
	return ReadFrom(f)
}
