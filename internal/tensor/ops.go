package tensor

import "fmt"

// Or returns the Boolean sum X ⊕ Y (cellwise OR) of two tensors with equal
// dimensions.
func Or(x, y *Tensor) *Tensor {
	checkSameDims("Or", x, y)
	coords := make([]Coord, 0, len(x.coords)+len(y.coords))
	coords = append(coords, x.coords...)
	coords = append(coords, y.coords...)
	sortCoords(coords)
	return &Tensor{dimI: x.dimI, dimJ: x.dimJ, dimK: x.dimK, coords: dedup(coords)}
}

// And returns the cellwise AND of two tensors with equal dimensions.
func And(x, y *Tensor) *Tensor {
	checkSameDims("And", x, y)
	var coords []Coord
	a, b := x.coords, y.coords
	for len(a) > 0 && len(b) > 0 {
		switch {
		case a[0] == b[0]:
			coords = append(coords, a[0])
			a, b = a[1:], b[1:]
		case coordLess(a[0], b[0]):
			a = a[1:]
		default:
			b = b[1:]
		}
	}
	return &Tensor{dimI: x.dimI, dimJ: x.dimJ, dimK: x.dimK, coords: coords}
}

// AndNot returns the cellwise difference X ∧ ¬Y: the cells of x not
// covered by y. Useful for residual tensors after removing a discovered
// component.
func AndNot(x, y *Tensor) *Tensor {
	checkSameDims("AndNot", x, y)
	var coords []Coord
	a, b := x.coords, y.coords
	for len(a) > 0 {
		switch {
		case len(b) == 0 || coordLess(a[0], b[0]):
			coords = append(coords, a[0])
			a = a[1:]
		case a[0] == b[0]:
			a, b = a[1:], b[1:]
		default:
			b = b[1:]
		}
	}
	return &Tensor{dimI: x.dimI, dimJ: x.dimJ, dimK: x.dimK, coords: coords}
}

func checkSameDims(op string, x, y *Tensor) {
	if x.dimI != y.dimI || x.dimJ != y.dimJ || x.dimK != y.dimK {
		panic(fmt.Sprintf("tensor: %s dimension mismatch %dx%dx%d vs %dx%dx%d",
			op, x.dimI, x.dimJ, x.dimK, y.dimI, y.dimJ, y.dimK))
	}
}

// Permute returns the tensor with modes reordered: new mode m takes the
// old mode perm[m] (0 = I, 1 = J, 2 = K). perm must be a permutation of
// {0, 1, 2}.
func (t *Tensor) Permute(perm [3]int) *Tensor {
	seen := [3]bool{}
	for _, p := range perm {
		if p < 0 || p > 2 || seen[p] {
			panic(fmt.Sprintf("tensor: Permute %v is not a permutation of {0,1,2}", perm))
		}
		seen[p] = true
	}
	dims := [3]int{t.dimI, t.dimJ, t.dimK}
	coords := make([]Coord, len(t.coords))
	for n, c := range t.coords {
		old := [3]int{c.I, c.J, c.K}
		coords[n] = Coord{I: old[perm[0]], J: old[perm[1]], K: old[perm[2]]}
	}
	sortCoords(coords)
	return &Tensor{
		dimI:   dims[perm[0]],
		dimJ:   dims[perm[1]],
		dimK:   dims[perm[2]],
		coords: coords,
	}
}

// SubTensor returns the tensor restricted to the index ranges
// [i0,i1) × [j0,j1) × [k0,k1), re-indexed to start at zero.
func (t *Tensor) SubTensor(i0, i1, j0, j1, k0, k1 int) *Tensor {
	if i0 < 0 || i1 > t.dimI || i0 > i1 ||
		j0 < 0 || j1 > t.dimJ || j0 > j1 ||
		k0 < 0 || k1 > t.dimK || k0 > k1 {
		panic(fmt.Sprintf("tensor: SubTensor [%d,%d)x[%d,%d)x[%d,%d) outside %dx%dx%d",
			i0, i1, j0, j1, k0, k1, t.dimI, t.dimJ, t.dimK))
	}
	var coords []Coord
	for _, c := range t.coords {
		if c.I >= i0 && c.I < i1 && c.J >= j0 && c.J < j1 && c.K >= k0 && c.K < k1 {
			coords = append(coords, Coord{I: c.I - i0, J: c.J - j0, K: c.K - k0})
		}
	}
	return &Tensor{dimI: i1 - i0, dimJ: j1 - j0, dimK: k1 - k0, coords: coords}
}

// SliceK returns the frontal slice at mode-3 index k as an I×J×1 tensor.
func (t *Tensor) SliceK(k int) *Tensor {
	return t.SubTensor(0, t.dimI, 0, t.dimJ, k, k+1)
}

// FiberCounts returns, per mode, how many nonzeros each index
// participates in — the marginal occupancy histograms used to profile
// datasets.
func (t *Tensor) FiberCounts() (byI, byJ, byK []int) {
	byI = make([]int, t.dimI)
	byJ = make([]int, t.dimJ)
	byK = make([]int, t.dimK)
	for _, c := range t.coords {
		byI[c.I]++
		byJ[c.J]++
		byK[c.K]++
	}
	return byI, byJ, byK
}
