package tensor

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestBinaryRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randomTensor(rng, 9, 11, 13, 0.15)
	var buf bytes.Buffer
	if err := x.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(x) {
		t.Fatal("binary roundtrip mismatch")
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randomTensor(rng, 64, 64, 64, 0.02)
	var text, bin bytes.Buffer
	if _, err := x.WriteTo(&text); err != nil {
		t.Fatal(err)
	}
	if err := x.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= text.Len() {
		t.Fatalf("binary %d bytes not smaller than text %d", bin.Len(), text.Len())
	}
}

func TestBinaryEmptyTensor(t *testing.T) {
	x := New(5, 6, 7)
	var buf bytes.Buffer
	if err := x.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(x) {
		t.Fatal("empty tensor roundtrip mismatch")
	}
}

func TestBinaryErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  []byte("XXXX"),
		"truncated":  append([]byte("DBT1"), 0x05),
		"bad coords": append([]byte("DBT1"), 2, 2, 2, 1, 9, 0, 0), // I=9 outside 2x2x2
	}
	for name, in := range cases {
		if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBinaryFileRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randomTensor(rng, 6, 6, 6, 0.2)
	path := filepath.Join(t.TempDir(), "x.btns")
	if err := x.WriteBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(x) {
		t.Fatal("file roundtrip mismatch")
	}
}

func TestReadAnyFile(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randomTensor(rng, 7, 7, 7, 0.15)
	dir := t.TempDir()

	textPath := filepath.Join(dir, "x.tns")
	if err := x.WriteFile(textPath); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "x.btns")
	if err := x.WriteBinaryFile(binPath); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{textPath, binPath} {
		back, err := ReadAnyFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !back.Equal(x) {
			t.Fatalf("%s: roundtrip mismatch", path)
		}
	}
	if _, err := ReadAnyFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestQuickBinaryRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomTensor(rng, rng.Intn(12)+1, rng.Intn(12)+1, rng.Intn(12)+1, rng.Float64()*0.4)
		var buf bytes.Buffer
		if err := x.WriteBinary(&buf); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		return err == nil && back.Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
