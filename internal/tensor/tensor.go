// Package tensor implements sparse three-way Boolean tensors: construction,
// mode-n matricization (unfolding, Equation 1 of the paper), reconstruction
// from Boolean CP factors, and reconstruction-error computation.
//
// A tensor X ∈ B^{I×J×K} is stored as a sorted, deduplicated coordinate
// list of its nonzero entries. All indices are 0-based (the paper uses
// 1-based indices; the unfolding maps below are the 0-based equivalents of
// Equation 1).
package tensor

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/bits"
	"os"
	"slices"
	"sort"
	"strconv"

	"dbtf/internal/bitvec"
	"dbtf/internal/boolmat"
	"dbtf/internal/slab"
)

// Coord is the coordinate of a nonzero tensor entry.
type Coord struct {
	I, J, K int
}

// Tensor is a sparse three-way Boolean tensor. The zero value is unusable;
// construct with New or FromCoords.
type Tensor struct {
	dimI, dimJ, dimK int
	coords           []Coord // sorted lexicographically by (I, J, K), deduplicated
}

// New returns an empty tensor with the given mode dimensions.
func New(i, j, k int) *Tensor {
	if i < 0 || j < 0 || k < 0 {
		panic("tensor: negative dimension")
	}
	return &Tensor{dimI: i, dimJ: j, dimK: k}
}

// FromCoords builds a tensor from a coordinate list. The list is copied,
// sorted, and deduplicated. Coordinates outside the dimensions are
// rejected.
func FromCoords(i, j, k int, coords []Coord) (*Tensor, error) {
	t := New(i, j, k)
	cs := make([]Coord, len(coords))
	copy(cs, coords)
	for _, c := range cs {
		if !t.inRange(c) {
			return nil, fmt.Errorf("tensor: coordinate (%d,%d,%d) outside %dx%dx%d", c.I, c.J, c.K, i, j, k)
		}
	}
	sortCoords(cs)
	t.coords = dedup(cs)
	return t, nil
}

// MustFromCoords is FromCoords for known-good inputs; it panics on error.
func MustFromCoords(i, j, k int, coords []Coord) *Tensor {
	t, err := FromCoords(i, j, k, coords)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tensor) inRange(c Coord) bool {
	return c.I >= 0 && c.I < t.dimI && c.J >= 0 && c.J < t.dimJ && c.K >= 0 && c.K < t.dimK
}

func sortCoords(cs []Coord) {
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].I != cs[b].I {
			return cs[a].I < cs[b].I
		}
		if cs[a].J != cs[b].J {
			return cs[a].J < cs[b].J
		}
		return cs[a].K < cs[b].K
	})
}

func dedup(cs []Coord) []Coord {
	out := cs[:0]
	for i, c := range cs {
		if i == 0 || c != cs[i-1] {
			out = append(out, c)
		}
	}
	return out
}

// Dims returns the mode dimensions (I, J, K).
func (t *Tensor) Dims() (i, j, k int) { return t.dimI, t.dimJ, t.dimK }

// NNZ returns the number of nonzero entries |X|.
func (t *Tensor) NNZ() int { return len(t.coords) }

// Density returns |X| / (I·J·K).
func (t *Tensor) Density() float64 {
	cells := float64(t.dimI) * float64(t.dimJ) * float64(t.dimK)
	if cells == 0 {
		return 0
	}
	return float64(len(t.coords)) / cells
}

// Coords returns the sorted nonzero coordinates. The slice is shared;
// callers must not modify it.
func (t *Tensor) Coords() []Coord { return t.coords }

// Get reports whether entry (i, j, k) is set.
func (t *Tensor) Get(i, j, k int) bool {
	c := Coord{i, j, k}
	n := sort.Search(len(t.coords), func(x int) bool { return !coordLess(t.coords[x], c) })
	return n < len(t.coords) && t.coords[n] == c
}

func coordLess(a, b Coord) bool {
	if a.I != b.I {
		return a.I < b.I
	}
	if a.J != b.J {
		return a.J < b.J
	}
	return a.K < b.K
}

// Equal reports whether two tensors have identical dimensions and entries.
func (t *Tensor) Equal(o *Tensor) bool {
	if t.dimI != o.dimI || t.dimJ != o.dimJ || t.dimK != o.dimK || len(t.coords) != len(o.coords) {
		return false
	}
	for i, c := range t.coords {
		if o.coords[i] != c {
			return false
		}
	}
	return true
}

// XorCount returns |X ⊕ Y|, the number of cells where the tensors differ.
// Dimensions must match.
func (t *Tensor) XorCount(o *Tensor) int {
	if t.dimI != o.dimI || t.dimJ != o.dimJ || t.dimK != o.dimK {
		panic("tensor: XorCount dimension mismatch")
	}
	// Merge the two sorted coordinate lists.
	diff := 0
	a, b := t.coords, o.coords
	for len(a) > 0 && len(b) > 0 {
		switch {
		case a[0] == b[0]:
			a, b = a[1:], b[1:]
		case coordLess(a[0], b[0]):
			diff++
			a = a[1:]
		default:
			diff++
			b = b[1:]
		}
	}
	return diff + len(a) + len(b)
}

// Mode identifies a matricization mode (1, 2 or 3 in the paper's notation).
type Mode int

// The three matricization modes of a three-way tensor.
const (
	Mode1 Mode = 1 // rows indexed by i, columns by j + k·J
	Mode2 Mode = 2 // rows indexed by j, columns by i + k·I
	Mode3 Mode = 3 // rows indexed by k, columns by i + j·I
)

// Unfolded is the mode-n matricization X₍ₙ₎ of a tensor in compressed
// sparse row form: for each row, a sorted list of nonzero column indices.
type Unfolded struct {
	NumRows, NumCols int
	// BlockSize is the width of one pointwise vector-matrix (PVM) product
	// along the columns: column c belongs to PVM block c / BlockSize, at
	// inner index c % BlockSize. For mode 1 this is J (the row count of the
	// second Khatri–Rao operand B in X₍₁₎ ≈ A ∘ (C ⊙ B)ᵀ).
	BlockSize int
	// NumBlocks is NumCols / BlockSize, the row count of the first
	// Khatri–Rao operand (C above).
	NumBlocks int
	rowPtr    []int
	// colIdx holds the column indices as int32: unfolding and partitioning
	// are memory-bandwidth bound, and half-width columns halve that traffic.
	// Unfold panics if the column space exceeds int32.
	colIdx []int32
	// bucketOff delimits the (row, PVM block) buckets of colIdx: bucket
	// b = row·NumBlocks + block spans colIdx[bucketOff[b]:bucketOff[b+1]].
	// Retained from the counting-sort construction (nil when the sort fell
	// back to per-row sorting), it hands partition.Build every block-row
	// segment by pure arithmetic instead of a merge over the nonzeros.
	bucketOff []int32
}

// Unfold returns the mode-n matricization of the tensor, following the
// 0-based version of Equation 1:
//
//	mode 1: x_ijk ↦ [X₍₁₎]_{i, j+k·J}   (PVM block k, inner index j)
//	mode 2: x_ijk ↦ [X₍₂₎]_{j, i+k·I}   (PVM block k, inner index i)
//	mode 3: x_ijk ↦ [X₍₃₎]_{k, i+j·I}   (PVM block j, inner index i)
func (t *Tensor) Unfold(mode Mode) *Unfolded {
	var nRows, block, nBlocks int
	switch mode {
	case Mode1:
		nRows, block, nBlocks = t.dimI, t.dimJ, t.dimK
	case Mode2:
		nRows, block, nBlocks = t.dimJ, t.dimI, t.dimK
	case Mode3:
		nRows, block, nBlocks = t.dimK, t.dimI, t.dimJ
	default:
		panic(fmt.Sprintf("tensor: invalid mode %d", mode))
	}
	if int64(block)*int64(nBlocks) > math.MaxInt32 {
		panic(fmt.Sprintf("tensor: mode-%d unfolding has %d columns, beyond the int32 column space", mode, block*nBlocks))
	}
	u := &Unfolded{
		NumRows:   nRows,
		NumCols:   block * nBlocks,
		BlockSize: block,
		NumBlocks: nBlocks,
		rowPtr:    make([]int, nRows+1),
		colIdx:    slab.Int32s(len(t.coords)),
	}
	// The coordinate list is sorted by (I, J, K), which for every mode
	// leaves the inner column index ascending within a fixed (row, PVM
	// block) pair. A stable counting sort by the composite key
	// row·NumBlocks + block therefore emits each row's columns already
	// sorted — no comparison sort at all. The bucket array is sized with
	// two leading zero slots so the fill cursors (bucket b advances
	// off[b+1]) end the pass holding exactly the start-offset table: no
	// copy. Fall back to per-row sorting when the bucket array would
	// dwarf the nonzeros.
	if nb := nBlocks; nRows > 0 && nb > 0 && nRows <= (4*len(t.coords)+1024)/nb {
		n := nRows * nb
		off := slab.Int32sZeroed(n + 2)
		for _, c := range t.coords {
			off[rowOf(c, mode)*nb+blockOf(c, mode)+2]++
		}
		for b := 2; b <= n+1; b++ {
			off[b] += off[b-1]
		}
		for _, c := range t.coords {
			b := rowOf(c, mode)*nb + blockOf(c, mode) + 1
			u.colIdx[off[b]] = int32(colOf(c, mode, block))
			off[b]++
		}
		u.bucketOff = off[:n+1]
		for r := 0; r < nRows; r++ {
			u.rowPtr[r] = int(off[r*nb])
		}
		u.rowPtr[nRows] = len(t.coords)
		return u
	}
	// Counting sort by row, then fill columns and sort within each row.
	for _, c := range t.coords {
		u.rowPtr[rowOf(c, mode)+1]++
	}
	for r := 0; r < nRows; r++ {
		u.rowPtr[r+1] += u.rowPtr[r]
	}
	next := make([]int, nRows)
	copy(next, u.rowPtr[:nRows])
	for _, c := range t.coords {
		r := rowOf(c, mode)
		u.colIdx[next[r]] = int32(colOf(c, mode, block))
		next[r]++
	}
	for r := 0; r < nRows; r++ {
		row := u.colIdx[u.rowPtr[r]:u.rowPtr[r+1]]
		slices.Sort(row)
	}
	return u
}

// UnfoldAll returns all three matricizations at once. When every mode is
// eligible for the counting sort it fuses the three builds into a single
// count pass and a single fill pass over the coordinate list — one third of
// the coordinate traffic of three Unfold calls, which matters because the
// unfold step is pure memory bandwidth. Falls back to per-mode Unfold
// otherwise.
func (t *Tensor) UnfoldAll() [3]*Unfolded {
	nnz := len(t.coords)
	dimI, dimJ, dimK := t.dimI, t.dimJ, t.dimK
	eligible := func(nRows, nb int) bool {
		return nRows > 0 && nb > 0 && nRows <= (4*nnz+1024)/nb
	}
	fits32 := func(a, b int) bool { return int64(a)*int64(b) <= math.MaxInt32 }
	if !eligible(dimI, dimK) || !eligible(dimJ, dimK) || !eligible(dimK, dimJ) ||
		!fits32(dimI, dimJ) || !fits32(dimI, dimK) || !fits32(dimJ, dimK) {
		return [3]*Unfolded{t.Unfold(Mode1), t.Unfold(Mode2), t.Unfold(Mode3)}
	}
	skeleton := func(nRows, block, nBlocks int) (*Unfolded, []int32) {
		u := &Unfolded{
			NumRows:   nRows,
			NumCols:   block * nBlocks,
			BlockSize: block,
			NumBlocks: nBlocks,
			rowPtr:    make([]int, nRows+1),
			colIdx:    slab.Int32s(nnz),
		}
		// Two leading zero slots, as in Unfold: the fill cursors end the
		// pass holding the start-offset table in place.
		return u, slab.Int32sZeroed(nRows*nBlocks + 2)
	}
	u1, off1 := skeleton(dimI, dimJ, dimK)
	u2, off2 := skeleton(dimJ, dimI, dimK)
	u3, off3 := skeleton(dimK, dimI, dimJ)
	for _, c := range t.coords {
		off1[c.I*dimK+c.K+2]++
		off2[c.J*dimK+c.K+2]++
		off3[c.K*dimJ+c.J+2]++
	}
	prefix := func(off []int32) {
		for b := 2; b < len(off); b++ {
			off[b] += off[b-1]
		}
	}
	prefix(off1)
	prefix(off2)
	prefix(off3)
	c1, c2, c3 := u1.colIdx, u2.colIdx, u3.colIdx
	for _, c := range t.coords {
		b := c.I*dimK + c.K + 1
		c1[off1[b]] = int32(c.J + c.K*dimJ)
		off1[b]++
		b = c.J*dimK + c.K + 1
		c2[off2[b]] = int32(c.I + c.K*dimI)
		off2[b]++
		b = c.K*dimJ + c.J + 1
		c3[off3[b]] = int32(c.I + c.J*dimI)
		off3[b]++
	}
	finish := func(u *Unfolded, off []int32) {
		n := u.NumRows * u.NumBlocks
		u.bucketOff = off[:n+1]
		for r := 0; r < u.NumRows; r++ {
			u.rowPtr[r] = int(off[r*u.NumBlocks])
		}
		u.rowPtr[u.NumRows] = nnz
	}
	finish(u1, off1)
	finish(u2, off2)
	finish(u3, off3)
	return [3]*Unfolded{u1, u2, u3}
}

// blockOf returns the PVM block index of a coordinate under the given
// mode: the K (modes 1, 2) or J (mode 3) index.
func blockOf(c Coord, mode Mode) int {
	if mode == Mode3 {
		return c.J
	}
	return c.K
}

func rowOf(c Coord, mode Mode) int {
	switch mode {
	case Mode1:
		return c.I
	case Mode2:
		return c.J
	default:
		return c.K
	}
}

func colOf(c Coord, mode Mode, block int) int {
	switch mode {
	case Mode1:
		return c.J + c.K*block
	case Mode2:
		return c.I + c.K*block
	default:
		return c.I + c.J*block
	}
}

// NNZ returns the number of nonzero entries.
func (u *Unfolded) NNZ() int { return len(u.colIdx) }

// Row returns the sorted nonzero column indices of the given row. The
// slice is shared; callers must not modify it.
func (u *Unfolded) Row(r int) []int32 {
	return u.colIdx[u.rowPtr[r]:u.rowPtr[r+1]]
}

// BlockRow returns the sorted nonzero column indices of row r that lie
// inside PVM block p (global columns [p·BlockSize, (p+1)·BlockSize)). With
// the counting-sort bucket table retained the segment is located by pure
// arithmetic; otherwise it falls back to binary searches within the row.
// The slice is shared; callers must not modify it.
func (u *Unfolded) BlockRow(r, p int) []int32 {
	if u.bucketOff != nil {
		b := r*u.NumBlocks + p
		return u.colIdx[u.bucketOff[b]:u.bucketOff[b+1]]
	}
	return u.RowInRange(r, p*u.BlockSize, (p+1)*u.BlockSize)
}

// BucketOffs exposes the (row, PVM block) bucket table: bucket
// b = row·NumBlocks + block spans Bucket(BucketOffs()[b], BucketOffs()[b+1]).
// Nil when the unfolding was built by per-row sorting; partition.Build's
// hot loops index it directly and fall back to BlockRow otherwise.
func (u *Unfolded) BucketOffs() []int32 { return u.bucketOff }

// Bucket returns the colIdx range [lo, hi) addressed by BucketOffs. The
// slice is shared; callers must not modify it.
func (u *Unfolded) Bucket(lo, hi int32) []int32 { return u.colIdx[lo:hi] }

// Recycle returns the unfolding's large arrays to the slab pool and
// poisons the unfolding against further use. Callers that build a
// partitioning and keep nothing else (the decomposition engine, the TCP
// worker) recycle the unfolding once partition.Build has copied every
// nonzero; all other users simply let the garbage collector take it.
func (u *Unfolded) Recycle() {
	slab.PutInt32s(u.colIdx)
	slab.PutInt32s(u.bucketOff)
	u.colIdx, u.bucketOff, u.rowPtr = nil, nil, nil
}

// RowNNZInRange returns the number of nonzeros of row r whose column index
// lies in [lo, hi).
func (u *Unfolded) RowNNZInRange(r, lo, hi int) int {
	return len(u.RowInRange(r, lo, hi))
}

// RowInRange returns the nonzero column indices of row r in [lo, hi).
// The slice is shared; callers must not modify it.
func (u *Unfolded) RowInRange(r, lo, hi int) []int32 {
	row := u.Row(r)
	a := sort.Search(len(row), func(i int) bool { return int(row[i]) >= lo })
	b := a + sort.Search(len(row)-a, func(i int) bool { return int(row[a+i]) >= hi })
	return row[a:b]
}

// Fold is the inverse of Unfold: it rebuilds the tensor from a mode-n
// matricization given the original dimensions.
func Fold(u *Unfolded, mode Mode, i, j, k int) *Tensor {
	t := New(i, j, k)
	coords := make([]Coord, 0, u.NNZ())
	for r := 0; r < u.NumRows; r++ {
		for _, c32 := range u.Row(r) {
			c := int(c32)
			inner := c % u.BlockSize
			blk := c / u.BlockSize
			var co Coord
			switch mode {
			case Mode1:
				co = Coord{r, inner, blk}
			case Mode2:
				co = Coord{inner, r, blk}
			case Mode3:
				co = Coord{inner, blk, r}
			default:
				panic(fmt.Sprintf("tensor: invalid mode %d", mode))
			}
			coords = append(coords, co)
		}
	}
	sortCoords(coords)
	t.coords = dedup(coords)
	return t
}

// Reconstruct materializes the Boolean CP reconstruction
// ⋁_r a_:r ∘ b_:r ∘ c_:r from factor matrices A (I×R), B (J×R), C (K×R).
// Intended for small tensors and tests; use ReconstructError to score
// factors against a tensor without materializing the reconstruction's
// coordinate list.
func Reconstruct(a, b, c *boolmat.FactorMatrix) *Tensor {
	r := a.Rank()
	if b.Rank() != r || c.Rank() != r {
		panic("tensor: Reconstruct rank mismatch")
	}
	seen := make(map[Coord]struct{})
	for q := 0; q < r; q++ {
		ai := a.Column(q).Indices()
		bi := b.Column(q).Indices()
		ci := c.Column(q).Indices()
		for _, i := range ai {
			for _, j := range bi {
				for _, k := range ci {
					seen[Coord{i, j, k}] = struct{}{}
				}
			}
		}
	}
	coords := make([]Coord, 0, len(seen))
	for c := range seen {
		coords = append(coords, c)
	}
	sortCoords(coords)
	return &Tensor{dimI: a.Rows(), dimJ: b.Rows(), dimK: c.Rows(), coords: coords}
}

// ReconstructError returns |X ⊕ ⋁_r a_:r ∘ b_:r ∘ c_:r|, the Boolean CP
// objective of Definition 4, computed in streaming fashion over mode-1
// rows: the reconstruction row for index i is the OR over the set bits r
// of a_i: of the Kronecker rows c_:r ⊗ b_:r, compared against the sparse
// tensor row without materializing the reconstructed tensor.
func ReconstructError(x *Tensor, a, b, c *boolmat.FactorMatrix) int64 {
	r := a.Rank()
	if b.Rank() != r || c.Rank() != r {
		panic("tensor: ReconstructError rank mismatch")
	}
	if a.Rows() != x.dimI || b.Rows() != x.dimJ || c.Rows() != x.dimK {
		panic("tensor: ReconstructError dimension mismatch")
	}
	u := x.Unfold(Mode1)
	// kron[q] = c_:q ⊗ b_:q as a JK-bit vector (column q of C ⊙ B).
	kron := make([]*bitvec.BitVec, r)
	for q := 0; q < r; q++ {
		v := bitvec.New(x.dimJ * x.dimK)
		bIdx := b.Column(q).Indices()
		c.Column(q).Range(func(k int) {
			base := k * x.dimJ
			for _, j := range bIdx {
				v.Set(base + j)
			}
		})
		kron[q] = v
	}
	row := bitvec.New(x.dimJ * x.dimK)
	var err int64
	for i := 0; i < x.dimI; i++ {
		row.Zero()
		for mask := a.RowMask(i); mask != 0; mask &= mask - 1 {
			row.Or(kron[bits.TrailingZeros64(mask)])
		}
		// |x_row ⊕ rec_row| = nnz(x_row) + |rec_row| − 2·overlap.
		overlap := 0
		for _, col := range u.Row(i) {
			if row.Get(int(col)) {
				overlap++
			}
		}
		err += int64(len(u.Row(i)) + row.OnesCount() - 2*overlap)
	}
	return err
}

// WriteTo writes the tensor in the text interchange format: a header line
// "I J K" followed by one "i j k" line per nonzero.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	c, err := fmt.Fprintf(bw, "%d %d %d\n", t.dimI, t.dimJ, t.dimK)
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, co := range t.coords {
		c, err := fmt.Fprintf(bw, "%d %d %d\n", co.I, co.J, co.K)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom parses the text interchange format written by WriteTo.
func ReadFrom(r io.Reader) (*Tensor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("tensor: empty input")
	}
	dimI, dimJ, dimK, err := parseTriple(sc.Text())
	if err != nil {
		return nil, fmt.Errorf("tensor: header: %w", err)
	}
	var coords []Coord
	line := 1
	for sc.Scan() {
		line++
		txt := sc.Text()
		if txt == "" {
			continue
		}
		i, j, k, err := parseTriple(txt)
		if err != nil {
			return nil, fmt.Errorf("tensor: line %d: %w", line, err)
		}
		coords = append(coords, Coord{i, j, k})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromCoords(dimI, dimJ, dimK, coords)
}

// WriteFile writes the tensor to a file in the text interchange format.
func (t *Tensor) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a tensor from a file in the text interchange format.
func ReadFile(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}

func parseTriple(s string) (a, b, c int, err error) {
	fields := splitFields(s)
	if len(fields) != 3 {
		return 0, 0, 0, fmt.Errorf("expected 3 fields, got %d", len(fields))
	}
	if a, err = strconv.Atoi(fields[0]); err != nil {
		return
	}
	if b, err = strconv.Atoi(fields[1]); err != nil {
		return
	}
	c, err = strconv.Atoi(fields[2])
	return
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' || s[i] == '\t' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}
