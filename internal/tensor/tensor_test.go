package tensor

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"dbtf/internal/boolmat"
)

func randomTensor(rng *rand.Rand, i, j, k int, density float64) *Tensor {
	var coords []Coord
	for a := 0; a < i; a++ {
		for b := 0; b < j; b++ {
			for c := 0; c < k; c++ {
				if rng.Float64() < density {
					coords = append(coords, Coord{a, b, c})
				}
			}
		}
	}
	return MustFromCoords(i, j, k, coords)
}

func TestFromCoordsDedupAndSort(t *testing.T) {
	coords := []Coord{{2, 0, 0}, {0, 1, 1}, {0, 1, 1}, {1, 2, 3}}
	x := MustFromCoords(3, 3, 4, coords)
	if x.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 after dedup", x.NNZ())
	}
	got := x.Coords()
	want := []Coord{{0, 1, 1}, {1, 2, 3}, {2, 0, 0}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Coords = %v, want %v", got, want)
		}
	}
}

func TestFromCoordsOutOfRange(t *testing.T) {
	if _, err := FromCoords(2, 2, 2, []Coord{{0, 0, 2}}); err == nil {
		t.Fatal("out-of-range coordinate accepted")
	}
	if _, err := FromCoords(2, 2, 2, []Coord{{-1, 0, 0}}); err == nil {
		t.Fatal("negative coordinate accepted")
	}
}

func TestGet(t *testing.T) {
	x := MustFromCoords(4, 4, 4, []Coord{{1, 2, 3}, {0, 0, 0}})
	if !x.Get(1, 2, 3) || !x.Get(0, 0, 0) {
		t.Fatal("Get misses present entries")
	}
	if x.Get(1, 2, 2) || x.Get(3, 3, 3) {
		t.Fatal("Get reports absent entries")
	}
}

func TestDensity(t *testing.T) {
	x := MustFromCoords(2, 2, 2, []Coord{{0, 0, 0}, {1, 1, 1}})
	if x.Density() != 0.25 {
		t.Fatalf("Density = %v, want 0.25", x.Density())
	}
	if New(0, 5, 5).Density() != 0 {
		t.Fatal("empty-dimension tensor density not 0")
	}
}

func TestXorCount(t *testing.T) {
	a := MustFromCoords(3, 3, 3, []Coord{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}})
	b := MustFromCoords(3, 3, 3, []Coord{{1, 1, 1}, {2, 2, 2}, {0, 1, 0}, {0, 2, 0}})
	if got := a.XorCount(b); got != 3 { // {0,0,0} only in a; {0,1,0},{0,2,0} only in b
		t.Fatalf("XorCount = %d, want 3", got)
	}
	if a.XorCount(a) != 0 {
		t.Fatal("self XorCount nonzero")
	}
}

func TestUnfoldMappingEquation1(t *testing.T) {
	// Every nonzero must land exactly where the 0-based Equation 1 says.
	x := MustFromCoords(3, 4, 5, []Coord{{2, 3, 4}, {0, 1, 2}, {1, 0, 0}})
	cases := []struct {
		mode Mode
		row  func(c Coord) int
		col  func(c Coord) int
	}{
		{Mode1, func(c Coord) int { return c.I }, func(c Coord) int { return c.J + c.K*4 }},
		{Mode2, func(c Coord) int { return c.J }, func(c Coord) int { return c.I + c.K*3 }},
		{Mode3, func(c Coord) int { return c.K }, func(c Coord) int { return c.I + c.J*3 }},
	}
	for _, tc := range cases {
		u := x.Unfold(tc.mode)
		if u.NNZ() != x.NNZ() {
			t.Fatalf("mode %d: NNZ %d != %d", tc.mode, u.NNZ(), x.NNZ())
		}
		for _, c := range x.Coords() {
			found := false
			for _, col := range u.Row(tc.row(c)) {
				if int(col) == tc.col(c) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("mode %d: coordinate %v not at (%d,%d)", tc.mode, c, tc.row(c), tc.col(c))
			}
		}
	}
}

func TestUnfoldShapes(t *testing.T) {
	x := New(3, 4, 5)
	u1, u2, u3 := x.Unfold(Mode1), x.Unfold(Mode2), x.Unfold(Mode3)
	check := func(u *Unfolded, rows, cols, block, blocks int) {
		t.Helper()
		if u.NumRows != rows || u.NumCols != cols || u.BlockSize != block || u.NumBlocks != blocks {
			t.Fatalf("shape (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				u.NumRows, u.NumCols, u.BlockSize, u.NumBlocks, rows, cols, block, blocks)
		}
	}
	check(u1, 3, 20, 4, 5)
	check(u2, 4, 15, 3, 5)
	check(u3, 5, 12, 3, 4)
}

func TestUnfoldInvalidModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unfold(0) did not panic")
		}
	}()
	New(1, 1, 1).Unfold(Mode(0))
}

func TestFoldRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := randomTensor(rng, 6, 7, 8, 0.1)
	for _, m := range []Mode{Mode1, Mode2, Mode3} {
		back := Fold(x.Unfold(m), m, 6, 7, 8)
		if !back.Equal(x) {
			t.Fatalf("mode %d: fold(unfold(x)) != x", m)
		}
	}
}

func TestRowInRange(t *testing.T) {
	x := MustFromCoords(1, 10, 1, []Coord{{0, 1, 0}, {0, 3, 0}, {0, 7, 0}})
	u := x.Unfold(Mode1)
	if got := u.RowNNZInRange(0, 2, 8); got != 2 {
		t.Fatalf("RowNNZInRange = %d, want 2", got)
	}
	in := u.RowInRange(0, 2, 8)
	if len(in) != 2 || in[0] != 3 || in[1] != 7 {
		t.Fatalf("RowInRange = %v, want [3 7]", in)
	}
}

func TestReconstructSingleComponent(t *testing.T) {
	a := boolmat.NewFactor(3, 1)
	b := boolmat.NewFactor(2, 1)
	c := boolmat.NewFactor(2, 1)
	a.Set(0, 0, true)
	a.Set(2, 0, true)
	b.Set(1, 0, true)
	c.Set(0, 0, true)
	c.Set(1, 0, true)
	x := Reconstruct(a, b, c)
	want := MustFromCoords(3, 2, 2, []Coord{{0, 1, 0}, {0, 1, 1}, {2, 1, 0}, {2, 1, 1}})
	if !x.Equal(want) {
		t.Fatalf("Reconstruct = %v, want %v", x.Coords(), want.Coords())
	}
}

func TestReconstructBooleanSum(t *testing.T) {
	// Overlapping rank-1 tensors must saturate (1 ⊕ 1 = 1), not double count.
	a := boolmat.NewFactor(1, 2)
	b := boolmat.NewFactor(1, 2)
	c := boolmat.NewFactor(1, 2)
	a.SetRowMask(0, 0b11)
	b.SetRowMask(0, 0b11)
	c.SetRowMask(0, 0b11)
	x := Reconstruct(a, b, c)
	if x.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (Boolean saturation)", x.NNZ())
	}
}

func TestReconstructErrorMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		i, j, k := rng.Intn(8)+1, rng.Intn(8)+1, rng.Intn(8)+1
		r := rng.Intn(5) + 1
		x := randomTensor(rng, i, j, k, 0.2)
		a := boolmat.RandomFactor(rng, i, r, 0.4)
		b := boolmat.RandomFactor(rng, j, r, 0.4)
		c := boolmat.RandomFactor(rng, k, r, 0.4)
		want := int64(x.XorCount(Reconstruct(a, b, c)))
		if got := ReconstructError(x, a, b, c); got != want {
			t.Fatalf("trial %d: ReconstructError = %d, want %d", trial, got, want)
		}
	}
}

func TestReconstructErrorPerfectFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := boolmat.RandomFactor(rng, 10, 3, 0.3)
	b := boolmat.RandomFactor(rng, 11, 3, 0.3)
	c := boolmat.RandomFactor(rng, 12, 3, 0.3)
	x := Reconstruct(a, b, c)
	if got := ReconstructError(x, a, b, c); got != 0 {
		t.Fatalf("error against own reconstruction = %d, want 0", got)
	}
}

func TestQuickMatricizedReconstruction(t *testing.T) {
	// Equation 12: X₍₁₎ of the reconstruction equals A ∘ (C ⊙ B)ᵀ.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		i, j, k, r := rng.Intn(6)+1, rng.Intn(6)+1, rng.Intn(6)+1, rng.Intn(4)+1
		a := boolmat.RandomFactor(rng, i, r, 0.4)
		b := boolmat.RandomFactor(rng, j, r, 0.4)
		c := boolmat.RandomFactor(rng, k, r, 0.4)
		rec := Reconstruct(a, b, c)
		u := rec.Unfold(Mode1)
		krT := boolmat.KhatriRao(c, b).Matrix().Transpose()
		prod := boolmat.MulFactor(a, krT)
		for row := 0; row < i; row++ {
			got := u.Row(row)
			for col := 0; col < u.NumCols; col++ {
				want := prod.Get(row, col)
				has := false
				for _, cc := range got {
					if int(cc) == col {
						has = true
						break
					}
				}
				if has != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickFoldUnfoldRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		i, j, k := rng.Intn(9)+1, rng.Intn(9)+1, rng.Intn(9)+1
		x := randomTensor(rng, i, j, k, 0.15)
		for _, m := range []Mode{Mode1, Mode2, Mode3} {
			if !Fold(x.Unfold(m), m, i, j, k).Equal(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReadWriteRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randomTensor(rng, 5, 6, 7, 0.1)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(x) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestReadWriteFile(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randomTensor(rng, 4, 4, 4, 0.2)
	path := filepath.Join(t.TempDir(), "x.tns")
	if err := x.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(x) {
		t.Fatal("file roundtrip mismatch")
	}
}

func TestReadFromErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "1 2\n",
		"bad entry":     "2 2 2\n0 0\n",
		"non-numeric":   "2 2 2\na b c\n",
		"out of bounds": "2 2 2\n0 0 5\n",
	}
	for name, in := range cases {
		if _, err := ReadFrom(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadFromSkipsBlankLines(t *testing.T) {
	x, err := ReadFrom(bytes.NewReader([]byte("2 2 2\n0 0 0\n\n1 1 1\n")))
	if err != nil {
		t.Fatal(err)
	}
	if x.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", x.NNZ())
	}
}

func BenchmarkUnfold(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomTensor(rng, 64, 64, 64, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Unfold(Mode1)
	}
}

func BenchmarkReconstructError(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomTensor(rng, 64, 64, 64, 0.01)
	a := boolmat.RandomFactor(rng, 64, 10, 0.1)
	bm := boolmat.RandomFactor(rng, 64, 10, 0.1)
	c := boolmat.RandomFactor(rng, 64, 10, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ReconstructError(x, a, bm, c)
	}
}
