package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 0 machines did not panic")
		}
	}()
	New(Config{Machines: 0})
}

func TestForEachRunsAllTasks(t *testing.T) {
	c := New(Config{Machines: 4})
	var ran [100]atomic.Bool
	if err := c.ForEach(context.Background(), 100, func(task int) error {
		if ran[task].Swap(true) {
			return fmt.Errorf("task %d ran twice", task)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("task %d never ran", i)
		}
	}
	s := c.Stats()
	if s.Stages != 1 || s.Tasks != 100 {
		t.Fatalf("stats = %+v, want 1 stage / 100 tasks", s)
	}
}

func TestForEachZeroTasks(t *testing.T) {
	c := New(Config{Machines: 2})
	if err := c.ForEach(context.Background(), 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	c := New(Config{Machines: 2})
	want := errors.New("boom")
	err := c.ForEach(context.Background(), 10, func(task int) error {
		if task == 3 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestForEachRecoversPanic(t *testing.T) {
	c := New(Config{Machines: 2})
	err := c.ForEach(context.Background(), 4, func(task int) error {
		if task == 1 {
			panic("worker died")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
}

func TestTrafficAccounting(t *testing.T) {
	c := New(Config{Machines: 8})
	c.Shuffle(1000)
	c.Broadcast(10) // ×8 machines
	c.Collect(5)
	s := c.Stats()
	if s.ShuffledBytes != 1000 {
		t.Errorf("ShuffledBytes = %d", s.ShuffledBytes)
	}
	if s.BroadcastBytes != 80 {
		t.Errorf("BroadcastBytes = %d, want 10*8", s.BroadcastBytes)
	}
	if s.CollectedBytes != 5 {
		t.Errorf("CollectedBytes = %d", s.CollectedBytes)
	}
}

func TestSimulatedMakespanScalesWithMachines(t *testing.T) {
	// 16 equal tasks on 1 machine must cost exactly 4x the simulated time
	// of the same tasks on 4 machines (no network cost here). A fake
	// clock advancing 1ms per reading makes every task cost exactly 1ms
	// in the ledger regardless of host load.
	noNet := NetworkModel{LatencyPerStage: 0, BytesPerSecond: 1e18} // non-zero struct so DefaultNetwork is not substituted
	run := func(machines int) time.Duration {
		c := New(Config{Machines: machines, Parallelism: 1, Network: noNet})
		fake := time.Unix(0, 0)
		c.now = func() time.Time {
			fake = fake.Add(time.Millisecond)
			return fake
		}
		if err := c.ForEach(context.Background(), 16, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return c.SimElapsed()
	}
	t1, t4 := run(1), run(4)
	if t1 != 16*time.Millisecond {
		t.Fatalf("1-machine makespan %v, want 16ms", t1)
	}
	if t4 != 4*time.Millisecond {
		t.Fatalf("4-machine makespan %v, want 4ms", t4)
	}
}

func TestNetworkCostCharged(t *testing.T) {
	slow := NetworkModel{LatencyPerStage: 0, BytesPerSecond: 1e6} // 1 MB/s per link
	c := New(Config{Machines: 2, Network: slow})
	// Shuffle fans out over the 2 machines' links: 1 MB / (1 MB/s × 2) ≈ 0.5s.
	c.Shuffle(1_000_000)
	if err := c.ForEach(context.Background(), 1, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	sim := c.SimElapsed()
	if sim < 450*time.Millisecond || sim > 700*time.Millisecond {
		t.Fatalf("parallel shuffle cost %v, want ≈0.5s", sim)
	}
	// Collection funnels into the driver's single downlink: 1 MB / 1 MB/s ≈ 1s more.
	c.Collect(1_000_000)
	if err := c.ForEach(context.Background(), 1, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if extra := c.SimElapsed() - sim; extra < 900*time.Millisecond {
		t.Fatalf("collect funnel cost %v, want ≈1s", extra)
	}
}

func TestNetworkTrafficChargedOnce(t *testing.T) {
	slow := NetworkModel{LatencyPerStage: 0, BytesPerSecond: 1e6}
	c := New(Config{Machines: 2, Network: slow})
	c.Collect(1_000_000)
	noop := func(int) error { return nil }
	if err := c.ForEach(context.Background(), 1, noop); err != nil {
		t.Fatal(err)
	}
	first := c.SimElapsed()
	if err := c.ForEach(context.Background(), 1, noop); err != nil {
		t.Fatal(err)
	}
	second := c.SimElapsed() - first
	if second > first/2 {
		t.Fatalf("second stage recharged old traffic: %v after %v", second, first)
	}
}

func TestDriverCharged(t *testing.T) {
	c := New(Config{Machines: 4})
	c.Driver(context.Background(), func() { busySpin(5 * time.Millisecond) })
	if sim := c.SimElapsed(); sim < 4*time.Millisecond {
		t.Fatalf("driver section not charged: %v", sim)
	}
}

func TestResetClock(t *testing.T) {
	c := New(Config{Machines: 2})
	c.Driver(context.Background(), func() { busySpin(time.Millisecond) })
	c.ResetClock()
	if c.SimElapsed() != 0 {
		t.Fatal("ResetClock did not zero the simulated clock")
	}
}

func TestDefaultParallelismBounded(t *testing.T) {
	// With 64 logical machines the engine must still work and must not
	// spawn 64 concurrent tasks on a small host: observe that concurrency
	// never exceeds the host GOMAXPROCS.
	c := New(Config{Machines: 64})
	var cur, peak atomic.Int64
	if err := c.ForEach(context.Background(), 64, func(int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > 64 {
		t.Fatalf("peak concurrency %d", got)
	}
}

// busySpin burns CPU for roughly d so measured durations reflect work, not
// sleep (sleep would be invisible to the dedicated-core duration model).
func busySpin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
