package cluster

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMachineKillReassignsTasks(t *testing.T) {
	c := New(Config{Machines: 4, Network: noNetwork,
		Faults: &FaultPlan{MachineKills: []MachineKill{{Stage: 0, Machine: 1}}}})
	if err := c.ForEach(context.Background(), 8, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := c.LiveMachines(); got != 3 {
		t.Fatalf("LiveMachines = %d after one kill of 4, want 3", got)
	}
	// Home machine 1 is dead: its tasks land on the next live machine in
	// ring order (machine 2); live machines keep their home placement.
	for task, want := range map[int]int{0: 0, 1: 2, 5: 2, 2: 2, 3: 3} {
		if got := c.MachineFor(task); got != want {
			t.Fatalf("MachineFor(%d) = %d, want %d", task, got, want)
		}
	}
	s := c.Stats()
	if s.MachineLosses != 1 {
		t.Fatalf("MachineLosses = %d, want 1", s.MachineLosses)
	}
	if s.Recoveries != 1 {
		t.Fatalf("Recoveries = %d: the completed stage should absorb the loss, want 1", s.Recoveries)
	}
}

func TestMachineRejoin(t *testing.T) {
	c := New(Config{Machines: 2, Network: noNetwork,
		Faults: &FaultPlan{
			MachineKills:       []MachineKill{{Stage: 0, Machine: 0}},
			MachineRejoinAfter: 2,
		}})
	ctx := context.Background()
	if err := c.ForEach(ctx, 4, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := c.LiveMachines(); got != 1 {
		t.Fatalf("LiveMachines = %d after kill, want 1", got)
	}
	if got := c.MachineFor(0); got != 1 {
		t.Fatalf("MachineFor(0) = %d while machine 0 is dead, want 1", got)
	}
	// Stage 1 is still within the rejoin delay; stage 2 revives machine 0.
	for s := 0; s < 2; s++ {
		if err := c.ForEach(ctx, 4, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.LiveMachines(); got != 2 {
		t.Fatalf("LiveMachines = %d after rejoin delay, want 2", got)
	}
	if got := c.MachineFor(0); got != 0 {
		t.Fatalf("MachineFor(0) = %d after rejoin, want home machine 0", got)
	}
	s := c.Stats()
	// One loss absorbed by its stage plus one rejoin.
	if s.MachineLosses != 1 || s.Recoveries != 2 {
		t.Fatalf("MachineLosses = %d, Recoveries = %d, want 1 and 2", s.MachineLosses, s.Recoveries)
	}
}

func TestNeverKillsLastMachine(t *testing.T) {
	c := New(Config{Machines: 1, Network: noNetwork,
		Faults: &FaultPlan{Seed: 1, MachineLossRate: 0.99}})
	for s := 0; s < 20; s++ {
		if err := c.ForEach(context.Background(), 4, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().MachineLosses; got != 0 {
		t.Fatalf("MachineLosses = %d on a 1-machine cluster, want 0", got)
	}
	if got := c.LiveMachines(); got != 1 {
		t.Fatalf("LiveMachines = %d, want 1", got)
	}
}

func TestMachineLossScheduleDeterministic(t *testing.T) {
	run := func() Stats {
		c := New(Config{Machines: 8, Network: noNetwork,
			Faults: &FaultPlan{Seed: 11, MachineLossRate: 0.15, MachineRejoinAfter: 2}})
		for s := 0; s < 12; s++ {
			if err := c.ForEach(context.Background(), 16, func(int) error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	a, b := run(), run()
	if a.MachineLosses == 0 {
		t.Fatal("no machine losses injected at rate 0.15 over 12 stages of 8 machines")
	}
	// Measured task durations vary between runs; the fault schedule and
	// its counters must not.
	a.ComputeNanos, a.TaskNanos, b.ComputeNanos, b.TaskNanos = 0, 0, 0, 0
	if a != b {
		t.Fatalf("loss schedule not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestOnMachineLossHandler(t *testing.T) {
	c := New(Config{Machines: 4, Network: noNetwork,
		Faults: &FaultPlan{MachineKills: []MachineKill{{Stage: 1, Machine: 2}}}})
	var lost []int
	var tasksBeforeHandler atomic.Int64
	var ran atomic.Int64
	c.OnMachineLoss(func(m int) {
		lost = append(lost, m)
		tasksBeforeHandler.Store(ran.Load())
		c.Shuffle(1000) // recovery traffic from inside the handler must not deadlock
	})
	ctx := context.Background()
	for s := 0; s < 2; s++ {
		if err := c.ForEach(ctx, 8, func(int) error { ran.Add(1); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if len(lost) != 1 || lost[0] != 2 {
		t.Fatalf("handler saw losses %v, want [2]", lost)
	}
	if got := tasksBeforeHandler.Load(); got != 8 {
		t.Fatalf("handler ran after %d tasks, want 8: it must run at the stage boundary before the stage's tasks", got)
	}
}

func TestMachineLossChargesRecoveryTraffic(t *testing.T) {
	c := New(Config{Machines: 4, Network: noNetwork,
		Faults: &FaultPlan{MachineKills: []MachineKill{{Stage: 1, Machine: 0}}}})
	ctx := context.Background()
	if err := c.ForEach(ctx, 4, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	c.BroadcastState(1 << 20)
	before := c.Stats().BroadcastBytes
	if want := int64(4 << 20); before != want {
		t.Fatalf("BroadcastBytes = %d after BroadcastState, want %d", before, want)
	}
	// Stage 1 kills machine 0: the survivor re-fetches the 1 MiB working
	// set once (not ×M).
	if err := c.ForEach(ctx, 4, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	after := c.Stats().BroadcastBytes
	if got := after - before; got != 1<<20 {
		t.Fatalf("recovery re-broadcast %d bytes, want %d", got, 1<<20)
	}
}

func TestMachineKillOutsideClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a MachineKills entry outside the cluster")
		}
	}()
	New(Config{Machines: 2, Faults: &FaultPlan{MachineKills: []MachineKill{{Stage: 0, Machine: 5}}}})
}

func TestSpeculativeLaunchesAreReal(t *testing.T) {
	c := New(Config{Machines: 4, Network: noNetwork,
		Faults: &FaultPlan{Seed: 1, StragglerRate: 1.0,
			StragglerDelay: time.Second, SpeculativeLaunch: time.Millisecond}})
	var runs atomic.Int64
	if err := c.ForEach(context.Background(), 8, func(int) error {
		runs.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.SpeculativeLaunches != 8 {
		t.Fatalf("SpeculativeLaunches = %d for 8 all-straggling tasks, want 8", s.SpeculativeLaunches)
	}
	// Real speculation: every launched backup actually re-executed its
	// task, so the task function ran twice per task.
	if got := runs.Load(); got != 16 {
		t.Fatalf("task function ran %d times, want 16 (8 originals + 8 backup copies)", got)
	}
	if s.SpeculativeWins != 8 {
		t.Fatalf("SpeculativeWins = %d, want 8: instant copies beat 1s delays", s.SpeculativeWins)
	}
}

func TestCancelledSpeculationDoesNotLeakGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	c := New(Config{Machines: 4, Network: noNetwork,
		Faults: &FaultPlan{Seed: 1, StragglerRate: 1.0, StragglerDelay: time.Second}})
	var ran atomic.Int64
	err := c.ForEach(ctx, 64, func(int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	_ = err // the stage may finish or observe cancellation; either is fine
	cancel()
	// Backup goroutines are joined before ForEach returns; give the
	// runtime a moment to retire exited goroutines, then require the
	// count to settle back.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after cancelled speculation", before, runtime.NumGoroutine())
}

func TestStatsSnapshotNotTorn(t *testing.T) {
	// Every stage of 8 tasks fails each task exactly once, so Retries
	// grows in exact multiples of 8 — but only if retry counters are
	// published atomically with their stage. A torn snapshot (counters
	// read mid-stage, as with the former per-counter atomics) shows
	// partial increments.
	c := New(Config{Machines: 4, Network: noNetwork, MaxRetries: 1})
	const tasksPerStage = 8
	var stage atomic.Int64
	var attempts sync.Map
	done := make(chan struct{})
	var torn atomic.Int64
	var snaps atomic.Int64
	var wg, started sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		started.Add(1)
		go func() {
			defer wg.Done()
			first := true
			for {
				s := c.Stats()
				snaps.Add(1)
				if s.Retries%tasksPerStage != 0 {
					torn.Add(1)
				}
				if first {
					first = false
					started.Done()
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	started.Wait()
	for st := 0; st < 50; st++ {
		stage.Store(int64(st))
		if err := c.ForEach(context.Background(), tasksPerStage, func(task int) error {
			key := [2]int64{stage.Load(), int64(task)}
			if n, _ := attempts.LoadOrStore(key, new(atomic.Int64)); n.(*atomic.Int64).Add(1) == 1 {
				return errTransient
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if snaps.Load() == 0 {
		t.Fatal("no concurrent snapshots taken")
	}
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d of %d snapshots showed torn mid-stage Retries", n, snaps.Load())
	}
	if got := c.Stats().Retries; got != 50*tasksPerStage {
		t.Fatalf("final Retries = %d, want %d", got, 50*tasksPerStage)
	}
}

var errTransient = errTransientType{}

type errTransientType struct{}

func (errTransientType) Error() string { return "transient" }
