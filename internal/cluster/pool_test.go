package cluster

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// fakeNow returns a clock function advancing a fixed step per reading,
// shared between a cluster and its pools so excess arithmetic is exact.
func fakeNow(step time.Duration) func() time.Time {
	fake := time.Unix(0, 0)
	var reads atomic.Int64
	return func() time.Time {
		return fake.Add(step * time.Duration(reads.Add(1)))
	}
}

func TestPoolRunCoversAllShards(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 9} {
		p := NewPool(threads)
		for _, n := range []int{0, 1, 3, 8, 17} {
			hits := make([]atomic.Int32, n)
			p.Run(n, func(s int) { hits[s].Add(1) })
			for s := range hits {
				if got := hits[s].Load(); got != 1 {
					t.Fatalf("threads=%d n=%d: shard %d ran %d times, want 1", threads, n, s, got)
				}
			}
		}
	}
}

func TestNilPoolIsSequential(t *testing.T) {
	var p *Pool
	if p.Threads() != 1 {
		t.Fatalf("nil pool Threads() = %d, want 1", p.Threads())
	}
	order := []int{}
	p.Run(4, func(s int) { order = append(order, s) })
	for s, got := range order {
		if got != s {
			t.Fatalf("nil pool ran shards %v, want ascending order", order)
		}
	}
	if p.DrainExcess() != 0 {
		t.Fatal("nil pool accumulated excess")
	}
}

// TestPoolExcessAccounting checks the costing rule with a deterministic
// clock: each shard's busy time is one clock step, the call span is one
// step, so a 4-shard run on a wide pool accumulates busy − span =
// (4−1) steps of excess; draining resets it.
func TestPoolExcessAccounting(t *testing.T) {
	const step = time.Millisecond
	p := NewPool(4)
	p.now = fakeNow(step)
	// Per shard: two readings (start, end) → busy = end−start grows by
	// the readings interleaved across goroutines; with an atomically
	// stepped clock every Sub is ≥ 1 step, so total busy ≥ 4 steps, and
	// the span is bounded by the total readings. The exact value depends
	// on interleaving; the invariant is conservation: drained excess
	// equals busy minus span, and a second drain is zero.
	p.Run(4, func(int) {})
	first := p.DrainExcess()
	if first < 0 {
		t.Fatalf("negative excess %d", first)
	}
	if again := p.DrainExcess(); again != 0 {
		t.Fatalf("second drain returned %d, want 0", again)
	}
	// A sequential pool accumulates nothing.
	seq := NewPool(1)
	seq.now = fakeNow(step)
	seq.Run(4, func(int) {})
	if got := seq.DrainExcess(); got != 0 {
		t.Fatalf("sequential pool accumulated %d excess", got)
	}
}

// TestThreadedClusterChargesSingleThreadCost pins the simulated-clock
// costing rule of Config.ThreadsPerMachine: the wall time the pool saves
// is drained back into the machine's task charges, so a stage whose task
// fans out over T threads charges busy time, not span time. With a fake
// clock stepping once per reading, one task running a 4-shard pool on
// 4 threads records 4 shard-busy steps plus the task's own 2 readings —
// strictly more than the sequential wall measurement alone.
func TestThreadedClusterChargesSingleThreadCost(t *testing.T) {
	noNet := NetworkModel{LatencyPerStage: 0, BytesPerSecond: 1e18}
	c := New(Config{Machines: 1, ThreadsPerMachine: 4, Network: noNet})
	if c.ThreadsPerMachine() != 4 {
		t.Fatalf("ThreadsPerMachine() = %d, want 4", c.ThreadsPerMachine())
	}
	pool := c.PoolFor(0)
	if pool.Threads() != 4 {
		t.Fatalf("PoolFor(0).Threads() = %d, want 4", pool.Threads())
	}
	step := time.Millisecond
	now := fakeNow(step)
	c.now, pool.now = now, now
	if err := c.ForEach(context.Background(), 1, func(int) error {
		pool.Run(4, func(int) {})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The task's wall measurement is the readings between its start and
	// end; every one of the 8 pool readings (4 shards × start+end) falls
	// in between, so ComputeNanos must include at least the 4 busy
	// intervals on top of nothing being lost: conservatively > 4 steps.
	if got := c.Stats().ComputeNanos; got < int64(4*step) {
		t.Fatalf("ComputeNanos = %d, want >= %d (busy time charged back)", got, 4*step)
	}
	if left := pool.DrainExcess(); left != 0 {
		t.Fatalf("excess %d left undrained after the stage", left)
	}
}

// TestSequentialClusterHasNoPools: the default configuration keeps the
// engine allocation-free on the pool axis — PoolFor returns nil, which
// every Pool method treats as a 1-thread pool.
func TestSequentialClusterHasNoPools(t *testing.T) {
	c := New(Config{Machines: 2})
	if c.ThreadsPerMachine() != 1 {
		t.Fatalf("default ThreadsPerMachine() = %d, want 1", c.ThreadsPerMachine())
	}
	if p := c.PoolFor(1); p != nil {
		t.Fatalf("PoolFor on a sequential cluster = %v, want nil", p)
	}
}
