package cluster

import (
	"fmt"
	"time"
)

// FaultPlan deterministically injects machine failures into a cluster.
// Spark's resilience claims — lost tasks are re-executed, stragglers are
// speculatively relaunched — are only testable if failures can be produced
// on demand; a FaultPlan schedules them reproducibly: whether attempt a of
// task t in stage s is failed, panicked, or delayed is a pure function of
// (Seed, s, t, a), independent of goroutine scheduling and host load. Two
// runs of the same workload under the same plan therefore inject the
// identical fault schedule.
//
// Injected failures and panics are transient by construction: the final
// allowed attempt of a task always runs clean, so a fault plan can never
// fail a decomposition when retries are enabled — it only costs time. (A
// FailFast cluster has exactly one attempt per task, so fail and panic
// injection is disabled there; stragglers, which delay but never fail,
// are still injected.) Real task errors are not shielded this way: a task
// that genuinely fails on every attempt aborts the stage.
type FaultPlan struct {
	// Seed determines the entire fault schedule.
	Seed int64
	// FailureRate is the probability that a task attempt is lost after
	// doing its work (the machine dies before reporting back). The wasted
	// attempt's measured duration is charged to the simulated clock.
	FailureRate float64
	// PanicRate is the probability that a task attempt panics instead of
	// running, exercising the engine's recovery path.
	PanicRate float64
	// StragglerRate is the probability that an attempt is delayed by
	// StragglerDelay on the simulated clock (real execution is not
	// slowed).
	StragglerRate float64
	// StragglerDelay is the simulated delay of a straggling attempt.
	// Default 1s.
	StragglerDelay time.Duration
	// SpeculativeLaunch is the simulated latency of launching a
	// speculative copy of a straggling task on another machine.
	// Default 100ms.
	SpeculativeLaunch time.Duration
	// DisableSpeculation turns off speculative re-execution of
	// stragglers: the full StragglerDelay is then always paid.
	DisableSpeculation bool
}

func (p *FaultPlan) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"FailureRate", p.FailureRate}, {"PanicRate", p.PanicRate}, {"StragglerRate", p.StragglerRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("cluster: FaultPlan.%s %v outside [0,1]", r.name, r.v)
		}
	}
	if p.FailureRate+p.PanicRate+p.StragglerRate > 1 {
		return fmt.Errorf("cluster: FaultPlan rates sum to %v > 1",
			p.FailureRate+p.PanicRate+p.StragglerRate)
	}
	return nil
}

func (p *FaultPlan) stragglerDelay() int64 {
	if p.StragglerDelay > 0 {
		return p.StragglerDelay.Nanoseconds()
	}
	return int64(time.Second)
}

func (p *FaultPlan) speculativeLaunch() int64 {
	if p.SpeculativeLaunch > 0 {
		return p.SpeculativeLaunch.Nanoseconds()
	}
	return int64(100 * time.Millisecond)
}

// faultKind is the outcome drawn for one task attempt.
type faultKind int

const (
	faultNone faultKind = iota
	// faultFail loses the attempt after it runs: work done, result gone.
	faultFail
	// faultPanic crashes the attempt before it runs.
	faultPanic
	// faultStraggler delays the attempt on the simulated clock.
	faultStraggler
)

// draw returns the scheduled fault for attempt `attempt` of task `task` in
// stage `stage`. last marks the task's final allowed attempt, on which fail
// and panic injection is suppressed (see the type comment).
func (p *FaultPlan) draw(stage int64, task, attempt int, last bool) faultKind {
	h := splitmix64(uint64(p.Seed))
	h = splitmix64(h ^ uint64(stage))
	h = splitmix64(h ^ uint64(task))
	h = splitmix64(h ^ uint64(attempt))
	r := float64(h>>11) / (1 << 53)
	switch {
	case r < p.FailureRate:
		if last {
			return faultNone
		}
		return faultFail
	case r < p.FailureRate+p.PanicRate:
		if last {
			return faultNone
		}
		return faultPanic
	case r < p.FailureRate+p.PanicRate+p.StragglerRate:
		return faultStraggler
	default:
		return faultNone
	}
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality bit mixer used to derive per-attempt fault draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
