package cluster

import (
	"fmt"
	"time"
)

// FaultPlan deterministically injects machine failures into a cluster.
// Spark's resilience claims — lost tasks are re-executed, stragglers are
// speculatively relaunched — are only testable if failures can be produced
// on demand; a FaultPlan schedules them reproducibly: whether attempt a of
// task t in stage s is failed, panicked, or delayed is a pure function of
// (Seed, s, t, a), independent of goroutine scheduling and host load. Two
// runs of the same workload under the same plan therefore inject the
// identical fault schedule.
//
// Injected failures and panics are transient by construction: the final
// allowed attempt of a task always runs clean, so a fault plan can never
// fail a decomposition when retries are enabled — it only costs time. (A
// FailFast cluster has exactly one attempt per task, so fail and panic
// injection is disabled there; stragglers, which delay but never fail,
// are still injected.) Real task errors are not shielded this way: a task
// that genuinely fails on every attempt aborts the stage.
type FaultPlan struct {
	// Seed determines the entire fault schedule.
	Seed int64
	// FailureRate is the probability that a task attempt is lost after
	// doing its work (the machine dies before reporting back). The wasted
	// attempt's measured duration is charged to the simulated clock.
	FailureRate float64
	// PanicRate is the probability that a task attempt panics instead of
	// running, exercising the engine's recovery path.
	PanicRate float64
	// StragglerRate is the probability that an attempt is delayed by
	// StragglerDelay on the simulated clock (real execution is not
	// slowed).
	StragglerRate float64
	// StragglerDelay is the simulated delay of a straggling attempt.
	// Default 1s.
	StragglerDelay time.Duration
	// SpeculativeLaunch is the simulated latency of launching a
	// speculative copy of a straggling task on another machine.
	// Default 100ms.
	SpeculativeLaunch time.Duration
	// DisableSpeculation turns off speculative re-execution of
	// stragglers: no backup copy is launched and the full StragglerDelay
	// is always paid.
	DisableSpeculation bool
	// MachineLossRate is the per-stage probability that each live machine
	// is lost at the stage boundary, drawn deterministically per
	// (Seed, stage, machine). A lost machine's tasks are reassigned to
	// survivors, its machine-local caches are invalidated (see
	// Cluster.OnMachineLoss), and the recovery traffic is charged to the
	// simulated clock. The engine never kills the last live machine, so a
	// loss plan can slow a run but not fail it. Must lie in [0, 1).
	MachineLossRate float64
	// MachineRejoinAfter, when positive, lets a lost machine rejoin
	// service that many stages after its loss. The rejoining machine
	// re-fetches the broadcast working set (priced on the simulated
	// clock) and rebuilds its caches lazily. Zero means lost machines
	// never rejoin.
	MachineRejoinAfter int
	// MachineKills deterministically kills specific machines at specific
	// stages, independent of MachineLossRate. Replayable by construction:
	// the schedule does not depend on the seed at all.
	MachineKills []MachineKill
}

// MachineKill schedules the loss of one machine at the boundary of one
// stage (stages are numbered from 0 in execution order).
type MachineKill struct {
	Stage   int64
	Machine int
}

func (p *FaultPlan) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"FailureRate", p.FailureRate}, {"PanicRate", p.PanicRate}, {"StragglerRate", p.StragglerRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("cluster: FaultPlan.%s %v outside [0,1]", r.name, r.v)
		}
	}
	if p.FailureRate+p.PanicRate+p.StragglerRate > 1 {
		return fmt.Errorf("cluster: FaultPlan rates sum to %v > 1",
			p.FailureRate+p.PanicRate+p.StragglerRate)
	}
	if p.MachineLossRate < 0 || p.MachineLossRate >= 1 {
		return fmt.Errorf("cluster: FaultPlan.MachineLossRate %v outside [0,1)", p.MachineLossRate)
	}
	if p.MachineRejoinAfter < 0 {
		return fmt.Errorf("cluster: FaultPlan.MachineRejoinAfter %d < 0", p.MachineRejoinAfter)
	}
	for _, k := range p.MachineKills {
		if k.Stage < 0 || k.Machine < 0 {
			return fmt.Errorf("cluster: FaultPlan.MachineKills entry %+v has negative fields", k)
		}
	}
	return nil
}

// lossesPossible reports whether the plan can ever produce a machine loss,
// so the engine can skip per-stage loss bookkeeping entirely otherwise.
func (p *FaultPlan) lossesPossible() bool {
	return p.MachineLossRate > 0 || len(p.MachineKills) > 0
}

// machineLossTag separates the machine-loss draw stream from the per-task
// fault draws of the same seed.
const machineLossTag = 0x6d6c6f7373 // "mloss"

// drawMachineLoss reports whether machine `machine` is scheduled to be
// lost at the boundary of stage `stage`: a pure function of
// (Seed, stage, machine) plus the explicit kill list, independent of
// goroutine scheduling, so loss schedules replay exactly.
func (p *FaultPlan) drawMachineLoss(stage int64, machine int) bool {
	for _, k := range p.MachineKills {
		if k.Stage == stage && k.Machine == machine {
			return true
		}
	}
	if p.MachineLossRate <= 0 {
		return false
	}
	h := splitmix64(uint64(p.Seed) ^ machineLossTag)
	h = splitmix64(h ^ uint64(stage))
	h = splitmix64(h ^ uint64(machine))
	return float64(h>>11)/(1<<53) < p.MachineLossRate
}

func (p *FaultPlan) stragglerDelay() int64 {
	if p.StragglerDelay > 0 {
		return p.StragglerDelay.Nanoseconds()
	}
	return int64(time.Second)
}

func (p *FaultPlan) speculativeLaunch() int64 {
	if p.SpeculativeLaunch > 0 {
		return p.SpeculativeLaunch.Nanoseconds()
	}
	return int64(100 * time.Millisecond)
}

// faultKind is the outcome drawn for one task attempt.
type faultKind int

const (
	faultNone faultKind = iota
	// faultFail loses the attempt after it runs: work done, result gone.
	faultFail
	// faultPanic crashes the attempt before it runs.
	faultPanic
	// faultStraggler delays the attempt on the simulated clock.
	faultStraggler
)

// draw returns the scheduled fault for attempt `attempt` of task `task` in
// stage `stage`. last marks the task's final allowed attempt, on which fail
// and panic injection is suppressed (see the type comment).
func (p *FaultPlan) draw(stage int64, task, attempt int, last bool) faultKind {
	h := splitmix64(uint64(p.Seed))
	h = splitmix64(h ^ uint64(stage))
	h = splitmix64(h ^ uint64(task))
	h = splitmix64(h ^ uint64(attempt))
	r := float64(h>>11) / (1 << 53)
	switch {
	case r < p.FailureRate:
		if last {
			return faultNone
		}
		return faultFail
	case r < p.FailureRate+p.PanicRate:
		if last {
			return faultNone
		}
		return faultPanic
	case r < p.FailureRate+p.PanicRate+p.StragglerRate:
		return faultStraggler
	default:
		return faultNone
	}
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality bit mixer used to derive per-attempt fault draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
