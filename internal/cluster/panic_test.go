package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// A panicking task must surface as an error naming the stage, not crash
// the coordinator (regression: the recovered panic used to propagate
// without stage attribution).
func TestForEachTaskPanicNamesStage(t *testing.T) {
	c := New(Config{Machines: 2, FailFast: true})
	err := c.ForEachNamed(context.Background(), "explode", 4, func(task int) error {
		if task == 1 {
			panic("boom: kernel invariant violated")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panicking task returned nil error")
	}
	for _, want := range []string{`stage "explode"`, "panicked", "boom"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// Under retries the panic is retried like any transient failure; a task
// panicking on every attempt still aborts with the stage name and the
// attempt count.
func TestForEachPersistentPanicExhaustsRetries(t *testing.T) {
	c := New(Config{Machines: 2, MaxRetries: 2})
	err := c.ForEach(context.Background(), 3, func(task int) error {
		if task == 2 {
			panic(fmt.Sprintf("task %d always dies", task))
		}
		return nil
	})
	if err == nil {
		t.Fatal("persistently panicking task returned nil error")
	}
	for _, want := range []string{`stage "stage 0"`, "failed after 3 attempts", "panicked"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	if got := c.Stats().Retries; got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
}

// An anonymous stage that panics once and then succeeds on retry reports
// no error and keeps the books consistent.
func TestForEachPanicRecoversOnRetry(t *testing.T) {
	c := New(Config{Machines: 2, MaxRetries: 2})
	attempts := make(map[int]int)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	err := c.ForEach(context.Background(), 4, func(task int) error {
		<-mu
		attempts[task]++
		first := attempts[task] == 1
		mu <- struct{}{}
		if task == 3 && first {
			panic("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stage failed despite successful retry: %v", err)
	}
	if got := c.Stats().Retries; got != 1 {
		t.Fatalf("Retries = %d, want 1", got)
	}
}

// Cancellation is not a stage failure: the context sentinel must pass
// through unwrapped so callers can match it with errors.Is — and must not
// acquire a misleading stage label.
func TestForEachCancellationNotWrapped(t *testing.T) {
	c := New(Config{Machines: 2, FailFast: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := c.ForEachNamed(ctx, "cancelled", 4, func(task int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if strings.Contains(fmt.Sprint(err), "stage") {
		t.Fatalf("cancellation error %q carries a stage label", err)
	}
}
