package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pool fans one task's inner loop across the OS threads of a single
// logical machine. It is the engine's model of intra-task parallelism:
// the paper's cluster runs multicore executors, where one Spark task may
// use several cores, but the simulated clock prices stages in
// single-thread semantics (a machine's charge is the CPU time its tasks
// consumed, not the wall time they spanned).
//
// Run measures each shard's busy time; the difference between the summed
// busy time and the call's wall-clock span — the time saved by running
// shards concurrently — accumulates as *excess*. The engine drains the
// excess back into the owning machine's task charges (runAttempts after
// each task, endStage as a backstop), so a run with ThreadsPerMachine = T
// finishes in roughly 1/T the wall time while reporting the same
// simulated makespan as a single-threaded run, modulo scheduling noise.
//
// A nil Pool (and a 1-thread pool) runs shards sequentially on the
// caller's goroutine and accumulates no excess, so kernels can call
// pool.Run unconditionally.
type Pool struct {
	threads int
	// now measures shard busy times and the call span; replaceable in
	// tests for deterministic excess checks.
	now func() time.Time
	// excess is the accumulated (busy − span) nanos not yet drained into
	// a task charge.
	excess atomic.Int64
}

// NewPool returns a pool of the given width. Widths below 1 are clamped
// to 1 (a sequential pool).
func NewPool(threads int) *Pool {
	if threads < 1 {
		threads = 1
	}
	//dbtf:allow-nondeterministic default clock measures real shard durations; tests inject a deterministic one
	return &Pool{threads: threads, now: time.Now}
}

// Threads returns the pool's width; 1 for a nil pool.
func (p *Pool) Threads() int {
	if p == nil {
		return 1
	}
	return p.threads
}

// Run executes fn(0) … fn(n-1) and returns when all calls have finished.
// On a pool wider than one thread the shards run concurrently on fresh
// goroutines (shards are long relative to goroutine launch, so the pool
// holds no standing workers); the saved wall time is accumulated as
// excess. Shards must write disjoint state — the engine's kernels give
// each shard its own row range and scratch.
func (p *Pool) Run(n int, fn func(shard int)) {
	if p == nil || p.threads <= 1 || n <= 1 {
		for s := 0; s < n; s++ {
			fn(s)
		}
		return
	}
	workers := p.threads
	if workers > n {
		workers = n
	}
	start := p.now()
	var (
		busy atomic.Int64
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= n {
					return
				}
				t0 := p.now()
				fn(s)
				busy.Add(p.now().Sub(t0).Nanoseconds())
			}
		}()
	}
	wg.Wait()
	if ex := busy.Load() - p.now().Sub(start).Nanoseconds(); ex > 0 {
		p.excess.Add(ex)
	}
}

// DrainExcess returns the accumulated excess nanos and resets it. The
// engine charges the drained time to the pool's machine so the simulated
// clock keeps single-thread semantics; 0 for a nil pool.
func (p *Pool) DrainExcess() int64 {
	if p == nil {
		return 0
	}
	return p.excess.Swap(0)
}
