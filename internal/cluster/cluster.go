// Package cluster simulates the distributed substrate DBTF runs on. The
// paper implements DBTF on Apache Spark over a 17-node cluster; this
// package provides the equivalent single-process execution engine:
//
//   - M logical machines execute partition-parallel stages. Real execution
//     uses a goroutine pool bounded by the host's CPUs so measured per-task
//     durations approximate dedicated-core times.
//   - A simulated clock tracks what the same stages would cost on M real
//     machines: each stage contributes max-over-machines of the summed task
//     durations of the tasks statically assigned to that machine (Spark's
//     even partition placement), plus a configurable per-stage network cost
//     fed by the engine's traffic accounting. Driver-side sequential
//     sections contribute their measured duration directly.
//   - Traffic counters record shuffled, broadcast, and collected bytes so
//     the volume claims of the paper's Lemmas 6 and 7 can be validated.
//
// The machine-scalability experiment (paper Figure 7) reports simulated
// makespans; all other experiments compare real wall-clock times of the
// competing methods under the same engine.
package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// NetworkModel prices the simulated cluster's communication. A stage pays
// LatencyPerStage once (barrier/synchronization cost) plus transfer time
// for the traffic recorded since the previous stage. BytesPerSecond is
// the per-link bandwidth; traffic classes use the links differently:
//
//   - shuffled and broadcast data flow to M machines in parallel
//     (Spark's shuffle fan-out and torrent broadcast), so they are priced
//     against M links;
//   - collected data converges on the driver's single downlink.
type NetworkModel struct {
	LatencyPerStage time.Duration
	BytesPerSecond  float64
}

// DefaultNetwork approximates a commodity gigabit-ethernet cluster like the
// paper's testbed.
var DefaultNetwork = NetworkModel{
	LatencyPerStage: 2 * time.Millisecond,
	BytesPerSecond:  125e6, // 1 Gbit/s
}

// Config configures a Cluster.
type Config struct {
	// Machines is the number of logical machines M. Must be >= 1.
	Machines int
	// Parallelism bounds the real goroutines executing tasks. Zero means
	// min(Machines, GOMAXPROCS); measured task durations then approximate
	// dedicated-core execution.
	Parallelism int
	// Network prices simulated communication. Zero value means
	// DefaultNetwork.
	Network NetworkModel
}

// Stats holds the cumulative traffic and execution counters of a cluster.
type Stats struct {
	// ShuffledBytes is data repartitioned across machines: the one-off
	// distribution of unfolded tensor partitions (Lemma 6).
	ShuffledBytes int64
	// BroadcastBytes is data sent from the driver to every machine: the
	// factor matrices at each iteration (Lemma 7). Recorded already
	// multiplied by the machine count.
	BroadcastBytes int64
	// CollectedBytes is data returned from partitions to the driver: the
	// per-column error vectors (Lemma 7).
	CollectedBytes int64
	// Stages is the number of parallel stages executed.
	Stages int64
	// Tasks is the number of tasks executed across all stages.
	Tasks int64
	// ComputeNanos, NetworkNanos and DriverNanos break the simulated
	// elapsed time into stage makespans, modeled communication, and
	// driver-side sequential sections.
	ComputeNanos, NetworkNanos, DriverNanos int64
	// TaskNanos is the summed duration of all tasks; ComputeNanos −
	// TaskNanos/Machines measures load imbalance.
	TaskNanos int64
}

// Cluster is a simulated multi-machine execution engine.
type Cluster struct {
	machines    int
	parallelism int
	network     NetworkModel

	shuffled  atomic.Int64
	broadcast atomic.Int64
	collected atomic.Int64
	stages    atomic.Int64
	tasks     atomic.Int64

	// now is the clock used to measure task and driver durations;
	// replaceable in tests for deterministic ledger checks.
	now func() time.Time

	mu       sync.Mutex
	simNanos int64 // simulated elapsed time
	// breakdown of simNanos for diagnostics
	computeNanos, netNanos, driverNanos, taskNanos int64
	// stage-local traffic snapshots, used to price the network cost of
	// the stage that is about to run, per traffic class.
	lastShuffled, lastBroadcast, lastCollected int64
}

// New returns a cluster with the given configuration.
func New(cfg Config) *Cluster {
	if cfg.Machines < 1 {
		panic(fmt.Sprintf("cluster: machines must be >= 1, got %d", cfg.Machines))
	}
	p := cfg.Parallelism
	if p <= 0 {
		p = cfg.Machines
		if mp := runtime.GOMAXPROCS(0); p > mp {
			p = mp
		}
	}
	net := cfg.Network
	if net == (NetworkModel{}) {
		net = DefaultNetwork
	}
	return &Cluster{machines: cfg.Machines, parallelism: p, network: net, now: time.Now}
}

// Machines returns the number of logical machines M.
func (c *Cluster) Machines() int { return c.machines }

// Stats returns a snapshot of the traffic and execution counters.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	compute, network, driver, task := c.computeNanos, c.netNanos, c.driverNanos, c.taskNanos
	c.mu.Unlock()
	return Stats{
		ShuffledBytes:  c.shuffled.Load(),
		BroadcastBytes: c.broadcast.Load(),
		CollectedBytes: c.collected.Load(),
		Stages:         c.stages.Load(),
		Tasks:          c.tasks.Load(),
		ComputeNanos:   compute,
		NetworkNanos:   network,
		DriverNanos:    driver,
		TaskNanos:      task,
	}
}

// Shuffle records bytes moved between machines during repartitioning.
func (c *Cluster) Shuffle(bytes int64) { c.shuffled.Add(bytes) }

// Broadcast records bytes sent from the driver to every machine; the
// recorded traffic is bytes × Machines, matching Lemma 7's O(M·I·R) term.
func (c *Cluster) Broadcast(bytes int64) { c.broadcast.Add(bytes * int64(c.machines)) }

// Collect records bytes returned from partitions to the driver.
func (c *Cluster) Collect(bytes int64) { c.collected.Add(bytes) }

// ForEach runs n tasks as one parallel stage. Task t is logically placed on
// machine t mod M. Real execution is bounded by the configured parallelism.
// The first error (or recovered panic) aborts the stage and is returned;
// remaining queued tasks are skipped.
//
// The simulated clock advances by the stage makespan: the maximum over
// machines of the summed durations of the machine's tasks, plus the network
// cost of traffic recorded since the previous stage boundary.
func (c *Cluster) ForEach(n int, fn func(task int) error) error {
	if n < 0 {
		panic("cluster: negative task count")
	}
	c.stages.Add(1)
	c.tasks.Add(int64(n))

	perMachine := make([]int64, c.machines) // summed task nanos per logical machine
	var perMachineMu sync.Mutex

	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		failed   atomic.Bool
		firstErr atomic.Value
	)
	workers := c.parallelism
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= n || failed.Load() {
					return
				}
				start := c.now()
				err := runTask(fn, t)
				dur := c.now().Sub(start).Nanoseconds()
				perMachineMu.Lock()
				perMachine[t%c.machines] += dur
				perMachineMu.Unlock()
				if err != nil {
					if failed.CompareAndSwap(false, true) {
						firstErr.Store(err)
					}
					return
				}
			}
		}()
	}
	wg.Wait()

	var makespan, taskSum int64
	for _, m := range perMachine {
		taskSum += m
		if m > makespan {
			makespan = m
		}
	}
	c.mu.Lock()
	dShuffled := c.shuffled.Load() - c.lastShuffled
	dBroadcast := c.broadcast.Load() - c.lastBroadcast
	dCollected := c.collected.Load() - c.lastCollected
	c.lastShuffled += dShuffled
	c.lastBroadcast += dBroadcast
	c.lastCollected += dCollected
	net := c.networkNanos(dShuffled, dBroadcast, dCollected)
	c.taskNanos += taskSum
	c.computeNanos += makespan
	c.netNanos += net
	c.simNanos += makespan + net
	c.mu.Unlock()

	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return nil
}

func (c *Cluster) networkNanos(shuffled, broadcast, collected int64) int64 {
	nanos := c.network.LatencyPerStage.Nanoseconds()
	if c.network.BytesPerSecond > 0 {
		// Shuffle and broadcast land on M machines' links in parallel;
		// collection funnels into the driver's one downlink.
		parallel := float64(shuffled+broadcast) / (c.network.BytesPerSecond * float64(c.machines))
		funnel := float64(collected) / c.network.BytesPerSecond
		nanos += int64((parallel + funnel) * 1e9)
	}
	return nanos
}

func runTask(fn func(int) error, t int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: task %d panicked: %v", t, r)
		}
	}()
	return fn(t)
}

// Driver runs a sequential driver-side section and charges its measured
// duration to the simulated clock. Column commits in DBTF — collecting the
// per-partition errors and deciding each entry — are driver work.
func (c *Cluster) Driver(fn func()) {
	start := c.now()
	fn()
	dur := c.now().Sub(start).Nanoseconds()
	c.mu.Lock()
	c.simNanos += dur
	c.driverNanos += dur
	c.mu.Unlock()
}

// SimElapsed returns the simulated elapsed time on M machines.
func (c *Cluster) SimElapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.simNanos)
}

// ResetClock zeroes the simulated clock and stage-traffic snapshots but
// keeps the traffic counters. Used between timed experiment phases.
func (c *Cluster) ResetClock() {
	c.mu.Lock()
	c.simNanos = 0
	c.computeNanos, c.netNanos, c.driverNanos, c.taskNanos = 0, 0, 0, 0
	c.lastShuffled = c.shuffled.Load()
	c.lastBroadcast = c.broadcast.Load()
	c.lastCollected = c.collected.Load()
	c.mu.Unlock()
}
