// Package cluster simulates the distributed substrate DBTF runs on. The
// paper implements DBTF on Apache Spark over a 17-node cluster; this
// package provides the equivalent single-process execution engine:
//
//   - M logical machines execute partition-parallel stages. Real execution
//     uses a goroutine pool bounded by the host's CPUs so measured per-task
//     durations approximate dedicated-core times.
//   - A simulated clock tracks what the same stages would cost on M real
//     machines: each stage contributes max-over-machines of the summed task
//     durations of the tasks statically assigned to that machine (Spark's
//     even partition placement), plus a configurable per-stage network cost
//     fed by the engine's traffic accounting. Driver-side sequential
//     sections contribute their measured duration directly.
//   - Traffic counters record shuffled, broadcast, and collected bytes so
//     the volume claims of the paper's Lemmas 6 and 7 can be validated.
//   - Failed tasks are re-executed with bounded attempts and exponential
//     backoff, reproducing Spark's task-level fault tolerance; straggling
//     tasks launch real speculative backup copies whose race is priced by
//     the simulated clock; and whole machines can be lost (and rejoin),
//     with the dead machine's tasks reassigned to survivors and its
//     machine-local state invalidated — see FaultPlan, OnMachineLoss, and
//     Stats.
//
// The machine-scalability experiment (paper Figure 7) reports simulated
// makespans; all other experiments compare real wall-clock times of the
// competing methods under the same engine.
package cluster

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// NetworkModel prices the simulated cluster's communication. A stage pays
// LatencyPerStage once (barrier/synchronization cost) plus transfer time
// for the traffic recorded since the previous stage. BytesPerSecond is
// the per-link bandwidth; traffic classes use the links differently:
//
//   - shuffled and broadcast data flow to M machines in parallel
//     (Spark's shuffle fan-out and torrent broadcast), so they are priced
//     against M links;
//   - collected data converges on the driver's single downlink;
//   - recovery re-broadcasts after a machine loss or rejoin target a
//     single machine and are priced against one link.
type NetworkModel struct {
	LatencyPerStage time.Duration
	BytesPerSecond  float64
}

// DefaultNetwork approximates a commodity gigabit-ethernet cluster like the
// paper's testbed.
var DefaultNetwork = NetworkModel{
	LatencyPerStage: 2 * time.Millisecond,
	BytesPerSecond:  125e6, // 1 Gbit/s
}

// Config configures a Cluster.
type Config struct {
	// Machines is the number of logical machines M. Must be >= 1.
	Machines int
	// Parallelism bounds the real goroutines executing tasks. Zero means
	// min(Machines, GOMAXPROCS); measured task durations then approximate
	// dedicated-core execution.
	Parallelism int
	// Network prices simulated communication. Zero value means
	// DefaultNetwork.
	Network NetworkModel
	// FailFast disables retries: the first task error or recovered panic
	// aborts the stage immediately, the engine's original semantics.
	FailFast bool
	// MaxRetries bounds the re-execution attempts per failed task when
	// FailFast is false. Task errors and recovered panics are treated as
	// transient machine failures, as Spark treats lost executors, and the
	// task is re-run with exponential backoff; only a task failing all
	// 1+MaxRetries attempts aborts the stage. Zero means
	// DefaultMaxRetries; negative panics.
	MaxRetries int
	// RetryBackoff is the base backoff before re-executing a failed task,
	// doubled on every further attempt of the same task. It is charged to
	// the simulated clock only — real execution retries immediately, so
	// wall-clock tests stay fast while simulated makespans price the
	// recovery delay a real cluster would pay. Zero means
	// DefaultRetryBackoff.
	RetryBackoff time.Duration
	// Faults, when non-nil, injects deterministic task failures, panics,
	// straggler delays, and machine losses from a seed; see FaultPlan.
	Faults *FaultPlan
}

// DefaultMaxRetries is the per-task retry bound when Config.MaxRetries is
// zero; it matches Spark's default of 4 attempts per task.
const DefaultMaxRetries = 3

// DefaultRetryBackoff is the simulated base backoff between attempts when
// Config.RetryBackoff is zero.
const DefaultRetryBackoff = 100 * time.Millisecond

// Stats holds the cumulative traffic and execution counters of a cluster.
// Snapshots returned by Cluster.Stats are internally consistent: every
// counter is read under one lock, and counters produced inside a stage
// (retries, injected faults, speculation) are published together with that
// stage's time accounting at the stage boundary — a snapshot taken while a
// stage runs concurrently can never show, say, a retry whose task time is
// missing.
type Stats struct {
	// ShuffledBytes is data repartitioned across machines: the one-off
	// distribution of unfolded tensor partitions (Lemma 6) plus
	// partitions re-shipped to survivors after machine losses.
	ShuffledBytes int64
	// BroadcastBytes is data sent from the driver to every machine: the
	// factor matrices at each iteration (Lemma 7). Recorded already
	// multiplied by the machine count. Recovery re-broadcasts (a single
	// machine re-fetching the working set after a loss or rejoin) are
	// added once, not multiplied.
	BroadcastBytes int64
	// CollectedBytes is data returned from partitions to the driver: the
	// per-column error vectors (Lemma 7).
	CollectedBytes int64
	// Stages is the number of parallel stages executed.
	Stages int64
	// Tasks is the number of tasks executed across all stages.
	Tasks int64
	// ComputeNanos, NetworkNanos and DriverNanos break the simulated
	// elapsed time into stage makespans, modeled communication, and
	// driver-side sequential sections.
	ComputeNanos, NetworkNanos, DriverNanos int64
	// TaskNanos is the summed duration of all tasks; ComputeNanos −
	// TaskNanos/Machines measures load imbalance.
	TaskNanos int64
	// Retries is the number of task re-executions after transient
	// failures (real errors, recovered panics, or injected faults).
	Retries int64
	// InjectedFaults is the number of task-level failures, panics, and
	// straggler delays injected by the configured FaultPlan. Machine
	// losses are counted separately in MachineLosses.
	InjectedFaults int64
	// SpeculativeLaunches counts real backup copies launched for
	// straggling tasks (Spark's speculative execution). A launched copy
	// actually re-executes the task.
	SpeculativeLaunches int64
	// SpeculativeWins counts straggling tasks whose backup copy finished,
	// on the simulated clock, before the straggler's delay would have
	// elapsed — the straggler is cancelled and the clock pays the copy.
	SpeculativeWins int64
	// MachineLosses is the number of machine-loss events injected by the
	// FaultPlan (seeded draws plus explicit MachineKills).
	MachineLosses int64
	// Recoveries counts completed recovery events: a lost machine's
	// reassigned work finishing its stage successfully (one per loss),
	// and a dead machine rejoining service.
	Recoveries int64
	// CheckpointBytes is the total size of durable iteration checkpoints
	// written by the driver (see RecordCheckpoint).
	CheckpointBytes int64
}

// Cluster is a simulated multi-machine execution engine.
type Cluster struct {
	machines     int
	parallelism  int
	network      NetworkModel
	maxRetries   int
	retryBackoff time.Duration
	faults       *FaultPlan

	// now is the clock used to measure task and driver durations;
	// replaceable in tests for deterministic ledger checks.
	now func() time.Time

	mu sync.Mutex
	// st accumulates every cumulative counter; Stats copies it under mu
	// so snapshots are torn-free.
	//dbtf:guardedby mu
	st Stats
	// simNanos is the simulated elapsed time.
	//dbtf:guardedby mu
	simNanos int64
	// stage-local traffic snapshots, used to price the network cost of
	// the stage that is about to run, per traffic class.
	//dbtf:guardedby mu
	lastShuffled, lastBroadcast, lastCollected int64
	// liveBroadcast is the per-machine broadcast working set in bytes
	// (see BroadcastState): what a machine must re-fetch to rejoin the
	// stage pipeline after a loss.
	//dbtf:guardedby mu
	liveBroadcast int64
	// recoveryNanos accumulates single-link recovery transfer time to be
	// charged to the next stage's network cost.
	//dbtf:guardedby mu
	recoveryNanos int64
	// alive[m] reports whether logical machine m is in service; diedAt[m]
	// is the stage at which a dead machine was lost. At least one machine
	// is always alive.
	//dbtf:guardedby mu
	alive []bool
	//dbtf:guardedby mu
	aliveCount int
	//dbtf:guardedby mu
	diedAt []int64
	//dbtf:guardedby mu
	lossHandler func(machine int)
	// pendingRecoveries counts machine losses not yet absorbed by a
	// successfully completed stage.
	//dbtf:guardedby mu
	pendingRecoveries int64
}

// New returns a cluster with the given configuration.
func New(cfg Config) *Cluster {
	if cfg.Machines < 1 {
		panic(fmt.Sprintf("cluster: machines must be >= 1, got %d", cfg.Machines))
	}
	p := cfg.Parallelism
	if p <= 0 {
		p = cfg.Machines
		if mp := runtime.GOMAXPROCS(0); p > mp {
			p = mp
		}
	}
	net := cfg.Network
	if net == (NetworkModel{}) {
		net = DefaultNetwork
	}
	if cfg.MaxRetries < 0 {
		panic(fmt.Sprintf("cluster: MaxRetries must be >= 0, got %d", cfg.MaxRetries))
	}
	retries := cfg.MaxRetries
	if retries == 0 {
		retries = DefaultMaxRetries
	}
	if cfg.FailFast {
		retries = 0
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.validate(); err != nil {
			panic(err.Error())
		}
		for _, k := range cfg.Faults.MachineKills {
			if k.Machine >= cfg.Machines {
				panic(fmt.Sprintf("cluster: MachineKills machine %d outside cluster of %d", k.Machine, cfg.Machines))
			}
		}
	}
	alive := make([]bool, cfg.Machines)
	for i := range alive {
		alive[i] = true
	}
	return &Cluster{
		machines: cfg.Machines, parallelism: p, network: net,
		maxRetries: retries, retryBackoff: backoff, faults: cfg.Faults,
		//dbtf:allow-nondeterministic default clock measures real task durations; tests inject a deterministic one
		now:   time.Now,
		alive: alive, aliveCount: cfg.Machines, diedAt: make([]int64, cfg.Machines),
	}
}

// Machines returns the number of logical machines M.
func (c *Cluster) Machines() int { return c.machines }

// LiveMachines returns the number of machines currently in service.
func (c *Cluster) LiveMachines() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aliveCount
}

// MachineFor returns the logical machine that task t of any ForEach stage
// executes on. The home placement is t mod M, the engine's static
// round-robin rule (the same rule the simulated clock uses to attribute
// task durations); while the home machine is lost, the task is reassigned
// to the next live machine in ring order. The placement is stable across
// stages for as long as the machine set is stable — machine losses and
// rejoins happen only at stage boundaries — so stages may key
// machine-local state (per-machine cache tables, scratch pools) by this
// index. Tasks that share a machine may still execute concurrently in real
// time (the goroutine pool is bounded by Parallelism, not by M), so
// machine-local state must be internally synchronized.
func (c *Cluster) MachineFor(task int) int {
	if task < 0 {
		panic(fmt.Sprintf("cluster: negative task index %d", task))
	}
	home := task % c.machines
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reassignLocked(home)
}

// reassignLocked maps a home machine to its current stand-in: itself while
// alive, else the next live machine in ring order. At least one machine is
// always alive.
func (c *Cluster) reassignLocked(home int) int {
	if c.alive[home] {
		return home
	}
	for i := 1; i < c.machines; i++ {
		if m := (home + i) % c.machines; c.alive[m] {
			return m
		}
	}
	return home
}

// OnMachineLoss registers fn to be invoked for every machine lost at a
// stage boundary, from the goroutine entering the stage and before any of
// the stage's tasks run. The handler owns the client-side recovery: it
// typically drops the machine's local caches (they died with the machine)
// and records the traffic of re-shipping the machine's pinned partitions
// to survivors via Shuffle. A nil fn unregisters the handler.
func (c *Cluster) OnMachineLoss(fn func(machine int)) {
	c.mu.Lock()
	c.lossHandler = fn
	c.mu.Unlock()
}

// Stats returns a consistent snapshot of the traffic and execution
// counters: all fields are read under one lock, and in-stage counters are
// published only at stage boundaries together with the stage's time
// accounting.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// Shuffle records bytes moved between machines during repartitioning.
func (c *Cluster) Shuffle(bytes int64) {
	c.mu.Lock()
	c.st.ShuffledBytes += bytes
	c.mu.Unlock()
}

// Broadcast records bytes sent from the driver to every machine; the
// recorded traffic is bytes × Machines, matching Lemma 7's O(M·I·R) term.
func (c *Cluster) Broadcast(bytes int64) {
	c.mu.Lock()
	c.st.BroadcastBytes += bytes * int64(c.machines)
	c.mu.Unlock()
}

// BroadcastState records a broadcast like Broadcast and additionally marks
// bytes as the per-machine broadcast working set: the state a machine must
// re-fetch before it can execute tasks again after a machine loss or
// rejoin. Successive calls replace the working set — DBTF re-broadcasts
// fresh factor matrices every iteration, superseding the previous ones.
func (c *Cluster) BroadcastState(bytes int64) {
	c.mu.Lock()
	c.st.BroadcastBytes += bytes * int64(c.machines)
	c.liveBroadcast = bytes
	c.mu.Unlock()
}

// Collect records bytes returned from partitions to the driver.
func (c *Cluster) Collect(bytes int64) {
	c.mu.Lock()
	c.st.CollectedBytes += bytes
	c.mu.Unlock()
}

// RecordCheckpoint records the durable write of an iteration checkpoint of
// the given size (Stats.CheckpointBytes). The write itself is driver-side
// disk I/O; its wall-clock cost is measured by the Driver section that
// performs it, so only the byte count is recorded here.
func (c *Cluster) RecordCheckpoint(bytes int64) {
	c.mu.Lock()
	c.st.CheckpointBytes += bytes
	c.mu.Unlock()
}

// chargeRecoveryLocked prices a single-machine re-fetch of bytes over one
// link and schedules it into the next stage's network cost. The bytes are
// added to BroadcastBytes once (they target one machine, not M).
func (c *Cluster) chargeRecoveryLocked(bytes int64) {
	c.st.BroadcastBytes += bytes
	if c.network.BytesPerSecond > 0 {
		c.recoveryNanos += int64(float64(bytes) / c.network.BytesPerSecond * 1e9)
	}
}

// stageState is the per-stage accounting shared by workers and speculative
// backup goroutines. Everything here is merged into the cluster's
// cumulative counters in one critical section at the stage boundary, so
// concurrent Stats snapshots never observe a half-published stage.
type stageState struct {
	ctx context.Context
	fn  func(int) error

	backups sync.WaitGroup // speculative copies in flight; joined before the stage returns

	mu sync.Mutex
	// perMachine sums simulated task nanos per logical machine.
	//dbtf:guardedby mu
	perMachine []int64
	//dbtf:guardedby mu
	retries int64
	//dbtf:guardedby mu
	injected int64
	//dbtf:guardedby mu
	specWins int64
	//dbtf:guardedby mu
	specLaunch int64
	losses     int // machine losses injected at this stage's boundary; written only before the stage starts
}

func (st *stageState) charge(machine int, nanos int64) {
	st.mu.Lock()
	st.perMachine[machine] += nanos
	st.mu.Unlock()
}

func (st *stageState) bump(counter *int64) {
	st.mu.Lock()
	*counter++
	st.mu.Unlock()
}

// beginStage numbers the stage, applies scheduled machine rejoins and
// losses at its boundary, invokes the loss handler for every machine lost,
// and returns the stage index plus fresh per-stage accounting.
func (c *Cluster) beginStage(ctx context.Context, n int, fn func(int) error) (int64, *stageState) {
	var losses []int
	c.mu.Lock()
	stage := c.st.Stages
	c.st.Stages++
	c.st.Tasks += int64(n)
	if c.faults != nil && c.faults.lossesPossible() {
		if c.faults.MachineRejoinAfter > 0 {
			for m := range c.alive {
				if !c.alive[m] && stage-c.diedAt[m] >= int64(c.faults.MachineRejoinAfter) {
					c.alive[m] = true
					c.aliveCount++
					// The rejoining machine re-fetches the broadcast
					// working set before taking tasks again.
					c.chargeRecoveryLocked(c.liveBroadcast)
					c.st.Recoveries++
				}
			}
		}
		for m := range c.alive {
			if !c.alive[m] || c.aliveCount <= 1 {
				continue // never kill the last live machine
			}
			if c.faults.drawMachineLoss(stage, m) {
				c.alive[m] = false
				c.aliveCount--
				c.diedAt[m] = stage
				c.st.MachineLosses++
				c.pendingRecoveries++
				// The survivor taking over re-fetches the broadcast
				// working set the dead machine held.
				c.chargeRecoveryLocked(c.liveBroadcast)
				losses = append(losses, m)
			}
		}
	}
	handler := c.lossHandler
	c.mu.Unlock()
	if handler != nil {
		// Outside the lock: handlers record recovery traffic through
		// Shuffle/Collect, which take the lock themselves.
		for _, m := range losses {
			handler(m)
		}
	}
	return stage, &stageState{
		ctx: ctx, fn: fn,
		perMachine: make([]int64, c.machines),
		losses:     len(losses),
	}
}

// endStage merges the stage's accounting into the cumulative counters in
// one critical section: makespan, network cost (including pending recovery
// transfers), and every in-stage fault counter. ok marks a stage that
// completed without error; it absorbs pending machine-loss recoveries.
//
//dbtf:allow-unguarded st: all workers and backups are joined before endStage runs, so st is no longer shared
func (c *Cluster) endStage(st *stageState, ok bool) {
	// All workers and backups are joined; st is no longer shared.
	var makespan, taskSum int64
	for _, m := range st.perMachine {
		taskSum += m
		if m > makespan {
			makespan = m
		}
	}
	c.mu.Lock()
	dShuffled := c.st.ShuffledBytes - c.lastShuffled
	dBroadcast := c.st.BroadcastBytes - c.lastBroadcast
	dCollected := c.st.CollectedBytes - c.lastCollected
	c.lastShuffled += dShuffled
	c.lastBroadcast += dBroadcast
	c.lastCollected += dCollected
	net := c.networkNanos(dShuffled, dBroadcast, dCollected) + c.recoveryNanos
	c.recoveryNanos = 0
	c.st.Retries += st.retries
	c.st.InjectedFaults += st.injected
	c.st.SpeculativeWins += st.specWins
	c.st.SpeculativeLaunches += st.specLaunch
	c.st.TaskNanos += taskSum
	c.st.ComputeNanos += makespan
	c.st.NetworkNanos += net
	c.simNanos += makespan + net
	if ok && c.pendingRecoveries > 0 {
		c.st.Recoveries += c.pendingRecoveries
		c.pendingRecoveries = 0
	}
	c.mu.Unlock()
}

// ForEach runs n tasks as one parallel stage. Task t is logically placed on
// machine t mod M, reassigned to a survivor while that machine is lost
// (see MachineFor). Real execution is bounded by the configured
// parallelism.
//
// Task errors and recovered panics are treated as transient machine
// failures: the task is re-executed up to the configured retry bound with
// exponential (simulated) backoff, and only a task exhausting every attempt
// aborts the stage — its last error, wrapped with the attempt count, is
// returned and remaining queued tasks are skipped. Under FailFast the first
// failure aborts immediately. A configured FaultPlan injects additional
// deterministic failures, panics, straggler delays, and machine losses
// (applied at the stage boundary). An injected straggler launches a real
// speculative backup copy of the task on another machine; the first
// finisher on the simulated clock wins and the loser is cancelled. Backup
// copies are joined before ForEach returns, so no goroutine outlives the
// stage.
//
// Cancellation of ctx is observed between task launches, between retry
// attempts, and before a backup copy starts: no new work starts after ctx
// is done, in-flight tasks run to completion, and ctx.Err() is returned.
//
// The simulated clock advances by the stage makespan: the maximum over
// machines of the summed durations of the machine's tasks — including
// wasted attempts, retry backoff, speculative races, and recovery
// transfers after machine losses — plus the network cost of traffic
// recorded since the previous stage boundary.
func (c *Cluster) ForEach(ctx context.Context, n int, fn func(task int) error) error {
	if n < 0 {
		panic("cluster: negative task count")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	stage, st := c.beginStage(ctx, n, fn)

	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		failed   atomic.Bool
		firstErr atomic.Value
	)
	fail := func(err error) {
		if failed.CompareAndSwap(false, true) {
			firstErr.Store(err)
		}
	}
	workers := c.parallelism
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= n || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				assigned := c.MachineFor(t)
				simNanos, err := c.runAttempts(st, stage, t, assigned)
				st.charge(assigned, simNanos)
				if err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Join speculative backup copies before closing the stage's books: no
	// goroutine outlives ForEach, and the stage makespan includes every
	// resolved speculation race.
	st.backups.Wait()

	err, _ := firstErr.Load().(error)
	c.endStage(st, err == nil)
	return err
}

// runAttempts executes task t until one attempt succeeds or the retry
// bound is exhausted, returning the simulated nanos charged to the task's
// machine: every attempt's measured duration (wasted attempts included),
// unspeculated straggler delays, and the exponential backoff between
// attempts. Speculated stragglers resolve asynchronously (see speculate)
// and charge the race outcome to the stage directly.
func (c *Cluster) runAttempts(st *stageState, stage int64, t, assigned int) (int64, error) {
	maxAttempts := 1 + c.maxRetries
	var sim int64
	for attempt := 0; ; attempt++ {
		fault := faultNone
		if c.faults != nil {
			fault = c.faults.draw(stage, t, attempt, attempt == maxAttempts-1)
		}
		start := c.now()
		var err error
		if fault == faultPanic {
			// The attempt crashes before the user task runs; the recover
			// path turns the crash into a transient error.
			err = runTask(func(int) error {
				panic(fmt.Sprintf("injected fault (stage %d, attempt %d)", stage, attempt))
			}, t)
		} else {
			err = runTask(st.fn, t)
		}
		dur := c.now().Sub(start).Nanoseconds()
		switch fault {
		case faultPanic:
			st.bump(&st.injected)
		case faultFail:
			// The machine is lost after the attempt ran: its work is
			// discarded but its duration was spent.
			st.bump(&st.injected)
			if err == nil {
				err = fmt.Errorf("cluster: injected failure of task %d (stage %d, attempt %d)", t, stage, attempt)
			}
		case faultStraggler:
			st.bump(&st.injected)
			if err != nil || c.faults.DisableSpeculation {
				// A failed attempt is handled by retry, not speculation;
				// with speculation disabled the full delay is always paid.
				dur += c.faults.stragglerDelay()
			} else {
				c.speculate(st, t, assigned)
			}
		}
		sim += dur
		if err == nil {
			return sim, nil
		}
		if attempt+1 >= maxAttempts {
			if maxAttempts > 1 {
				return sim, fmt.Errorf("cluster: task %d failed after %d attempts: %w", t, maxAttempts, err)
			}
			return sim, err
		}
		if cerr := st.ctx.Err(); cerr != nil {
			return sim, cerr
		}
		st.bump(&st.retries)
		sim += c.retryBackoff.Nanoseconds() << uint(attempt)
	}
}

// speculate launches a real backup copy of straggling task t, reproducing
// Spark's speculative execution: the copy actually re-executes the task on
// the stage's goroutine pool (tasks are idempotent by the engine's
// contract, so duplicate execution is safe), and the simulated clock pays
// whichever finishes first — the straggler's injected delay or the copy's
// measured duration plus launch latency. The loser is cancelled: both the
// straggling machine and the backup machine are charged only up to the
// race's resolution. A context cancelled before the copy starts cancels
// the speculation instead, and the straggler pays its full delay. The
// backup goroutine is registered with the stage and joined before ForEach
// returns.
func (c *Cluster) speculate(st *stageState, t, home int) {
	delay := c.faults.stragglerDelay()
	st.backups.Add(1)
	go func() {
		defer st.backups.Done()
		if st.ctx.Err() != nil {
			// Speculation cancelled before launch: the straggler runs to
			// the end of its delay.
			st.charge(home, delay)
			return
		}
		st.bump(&st.specLaunch)
		backup := c.backupMachineFor(home)
		start := c.now()
		// The original attempt already succeeded; the copy's outcome is
		// discarded and its errors are irrelevant.
		_ = runTask(st.fn, t)
		cost := c.now().Sub(start).Nanoseconds() + c.faults.speculativeLaunch()
		resolve := delay
		if cost < delay {
			st.bump(&st.specWins)
			resolve = cost
		}
		st.charge(home, resolve)
		if backup != home {
			st.charge(backup, resolve)
		}
	}()
}

// backupMachineFor picks the machine a speculative copy launches on: the
// next live machine after home in ring order, or home itself on a
// single-machine (or fully-degraded) cluster.
func (c *Cluster) backupMachineFor(home int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 1; i < c.machines; i++ {
		if m := (home + i) % c.machines; c.alive[m] {
			return m
		}
	}
	return home
}

func (c *Cluster) networkNanos(shuffled, broadcast, collected int64) int64 {
	nanos := c.network.LatencyPerStage.Nanoseconds()
	if c.network.BytesPerSecond > 0 {
		// Shuffle and broadcast land on M machines' links in parallel;
		// collection funnels into the driver's one downlink.
		parallel := float64(shuffled+broadcast) / (c.network.BytesPerSecond * float64(c.machines))
		funnel := float64(collected) / c.network.BytesPerSecond
		nanos += int64((parallel + funnel) * 1e9)
	}
	return nanos
}

func runTask(fn func(int) error, t int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: task %d panicked: %v", t, r)
		}
	}()
	return fn(t)
}

// Driver runs a sequential driver-side section and charges its measured
// duration to the simulated clock. Column commits in DBTF — collecting the
// per-partition errors and deciding each entry — are driver work. A done
// context skips the section and returns its error, so cancellation is
// observed at every stage boundary.
func (c *Cluster) Driver(ctx context.Context, fn func()) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	start := c.now()
	fn()
	dur := c.now().Sub(start).Nanoseconds()
	c.mu.Lock()
	c.simNanos += dur
	c.st.DriverNanos += dur
	c.mu.Unlock()
	return nil
}

// SimElapsed returns the simulated elapsed time on M machines.
func (c *Cluster) SimElapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.simNanos)
}

// ResetClock zeroes the simulated clock and stage-traffic snapshots but
// keeps the traffic counters and the machine liveness state. Used between
// timed experiment phases.
func (c *Cluster) ResetClock() {
	c.mu.Lock()
	c.simNanos = 0
	c.st.ComputeNanos, c.st.NetworkNanos, c.st.DriverNanos, c.st.TaskNanos = 0, 0, 0, 0
	c.lastShuffled = c.st.ShuffledBytes
	c.lastBroadcast = c.st.BroadcastBytes
	c.lastCollected = c.st.CollectedBytes
	c.mu.Unlock()
}
