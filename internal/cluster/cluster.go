// Package cluster simulates the distributed substrate DBTF runs on. The
// paper implements DBTF on Apache Spark over a 17-node cluster; this
// package provides the equivalent single-process execution engine:
//
//   - M logical machines execute partition-parallel stages. Real execution
//     uses a goroutine pool bounded by the host's CPUs so measured per-task
//     durations approximate dedicated-core times.
//   - A simulated clock tracks what the same stages would cost on M real
//     machines: each stage contributes max-over-machines of the summed task
//     durations of the tasks statically assigned to that machine (Spark's
//     even partition placement), plus a configurable per-stage network cost
//     fed by the engine's traffic accounting. Driver-side sequential
//     sections contribute their measured duration directly.
//   - Traffic counters record shuffled, broadcast, and collected bytes so
//     the volume claims of the paper's Lemmas 6 and 7 can be validated.
//   - Failed tasks are re-executed with bounded attempts and exponential
//     backoff, reproducing Spark's task-level fault tolerance, and a
//     seeded FaultPlan injects deterministic failures, panics, and
//     straggler delays whose recovery cost is priced by the simulated
//     clock (see Stats.Retries, InjectedFaults, SpeculativeWins).
//
// The machine-scalability experiment (paper Figure 7) reports simulated
// makespans; all other experiments compare real wall-clock times of the
// competing methods under the same engine.
package cluster

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// NetworkModel prices the simulated cluster's communication. A stage pays
// LatencyPerStage once (barrier/synchronization cost) plus transfer time
// for the traffic recorded since the previous stage. BytesPerSecond is
// the per-link bandwidth; traffic classes use the links differently:
//
//   - shuffled and broadcast data flow to M machines in parallel
//     (Spark's shuffle fan-out and torrent broadcast), so they are priced
//     against M links;
//   - collected data converges on the driver's single downlink.
type NetworkModel struct {
	LatencyPerStage time.Duration
	BytesPerSecond  float64
}

// DefaultNetwork approximates a commodity gigabit-ethernet cluster like the
// paper's testbed.
var DefaultNetwork = NetworkModel{
	LatencyPerStage: 2 * time.Millisecond,
	BytesPerSecond:  125e6, // 1 Gbit/s
}

// Config configures a Cluster.
type Config struct {
	// Machines is the number of logical machines M. Must be >= 1.
	Machines int
	// Parallelism bounds the real goroutines executing tasks. Zero means
	// min(Machines, GOMAXPROCS); measured task durations then approximate
	// dedicated-core execution.
	Parallelism int
	// Network prices simulated communication. Zero value means
	// DefaultNetwork.
	Network NetworkModel
	// FailFast disables retries: the first task error or recovered panic
	// aborts the stage immediately, the engine's original semantics.
	FailFast bool
	// MaxRetries bounds the re-execution attempts per failed task when
	// FailFast is false. Task errors and recovered panics are treated as
	// transient machine failures, as Spark treats lost executors, and the
	// task is re-run with exponential backoff; only a task failing all
	// 1+MaxRetries attempts aborts the stage. Zero means
	// DefaultMaxRetries; negative panics.
	MaxRetries int
	// RetryBackoff is the base backoff before re-executing a failed task,
	// doubled on every further attempt of the same task. It is charged to
	// the simulated clock only — real execution retries immediately, so
	// wall-clock tests stay fast while simulated makespans price the
	// recovery delay a real cluster would pay. Zero means
	// DefaultRetryBackoff.
	RetryBackoff time.Duration
	// Faults, when non-nil, injects deterministic task failures, panics,
	// and straggler delays from a seed; see FaultPlan.
	Faults *FaultPlan
}

// DefaultMaxRetries is the per-task retry bound when Config.MaxRetries is
// zero; it matches Spark's default of 4 attempts per task.
const DefaultMaxRetries = 3

// DefaultRetryBackoff is the simulated base backoff between attempts when
// Config.RetryBackoff is zero.
const DefaultRetryBackoff = 100 * time.Millisecond

// Stats holds the cumulative traffic and execution counters of a cluster.
type Stats struct {
	// ShuffledBytes is data repartitioned across machines: the one-off
	// distribution of unfolded tensor partitions (Lemma 6).
	ShuffledBytes int64
	// BroadcastBytes is data sent from the driver to every machine: the
	// factor matrices at each iteration (Lemma 7). Recorded already
	// multiplied by the machine count.
	BroadcastBytes int64
	// CollectedBytes is data returned from partitions to the driver: the
	// per-column error vectors (Lemma 7).
	CollectedBytes int64
	// Stages is the number of parallel stages executed.
	Stages int64
	// Tasks is the number of tasks executed across all stages.
	Tasks int64
	// ComputeNanos, NetworkNanos and DriverNanos break the simulated
	// elapsed time into stage makespans, modeled communication, and
	// driver-side sequential sections.
	ComputeNanos, NetworkNanos, DriverNanos int64
	// TaskNanos is the summed duration of all tasks; ComputeNanos −
	// TaskNanos/Machines measures load imbalance.
	TaskNanos int64
	// Retries is the number of task re-executions after transient
	// failures (real errors, recovered panics, or injected faults).
	Retries int64
	// InjectedFaults is the number of failures, panics, and straggler
	// delays injected by the configured FaultPlan.
	InjectedFaults int64
	// SpeculativeWins counts straggling tasks whose modeled speculative
	// copy finished before the straggler would have, so the simulated
	// clock paid the copy instead of the full delay.
	SpeculativeWins int64
}

// Cluster is a simulated multi-machine execution engine.
type Cluster struct {
	machines     int
	parallelism  int
	network      NetworkModel
	maxRetries   int
	retryBackoff time.Duration
	faults       *FaultPlan

	shuffled  atomic.Int64
	broadcast atomic.Int64
	collected atomic.Int64
	stages    atomic.Int64
	tasks     atomic.Int64
	retries   atomic.Int64
	injected  atomic.Int64
	specWins  atomic.Int64

	// now is the clock used to measure task and driver durations;
	// replaceable in tests for deterministic ledger checks.
	now func() time.Time

	mu       sync.Mutex
	simNanos int64 // simulated elapsed time
	// breakdown of simNanos for diagnostics
	computeNanos, netNanos, driverNanos, taskNanos int64
	// stage-local traffic snapshots, used to price the network cost of
	// the stage that is about to run, per traffic class.
	lastShuffled, lastBroadcast, lastCollected int64
}

// New returns a cluster with the given configuration.
func New(cfg Config) *Cluster {
	if cfg.Machines < 1 {
		panic(fmt.Sprintf("cluster: machines must be >= 1, got %d", cfg.Machines))
	}
	p := cfg.Parallelism
	if p <= 0 {
		p = cfg.Machines
		if mp := runtime.GOMAXPROCS(0); p > mp {
			p = mp
		}
	}
	net := cfg.Network
	if net == (NetworkModel{}) {
		net = DefaultNetwork
	}
	if cfg.MaxRetries < 0 {
		panic(fmt.Sprintf("cluster: MaxRetries must be >= 0, got %d", cfg.MaxRetries))
	}
	retries := cfg.MaxRetries
	if retries == 0 {
		retries = DefaultMaxRetries
	}
	if cfg.FailFast {
		retries = 0
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.validate(); err != nil {
			panic(err.Error())
		}
	}
	return &Cluster{
		machines: cfg.Machines, parallelism: p, network: net,
		maxRetries: retries, retryBackoff: backoff, faults: cfg.Faults,
		now: time.Now,
	}
}

// Machines returns the number of logical machines M.
func (c *Cluster) Machines() int { return c.machines }

// MachineFor returns the logical machine that task t of any ForEach stage
// is placed on: t mod M, the engine's static round-robin placement (the
// same rule the simulated clock uses to attribute task durations). The
// placement is stable across stages, so stages may key machine-local
// state — per-machine cache tables, scratch pools — by this index and
// rely on task t landing on the same machine every stage. Tasks that
// share a machine may still execute concurrently in real time (the
// goroutine pool is bounded by Parallelism, not by M), so machine-local
// state must be internally synchronized.
func (c *Cluster) MachineFor(task int) int {
	if task < 0 {
		panic(fmt.Sprintf("cluster: negative task index %d", task))
	}
	return task % c.machines
}

// Stats returns a snapshot of the traffic and execution counters.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	compute, network, driver, task := c.computeNanos, c.netNanos, c.driverNanos, c.taskNanos
	c.mu.Unlock()
	return Stats{
		ShuffledBytes:   c.shuffled.Load(),
		BroadcastBytes:  c.broadcast.Load(),
		CollectedBytes:  c.collected.Load(),
		Stages:          c.stages.Load(),
		Tasks:           c.tasks.Load(),
		ComputeNanos:    compute,
		NetworkNanos:    network,
		DriverNanos:     driver,
		TaskNanos:       task,
		Retries:         c.retries.Load(),
		InjectedFaults:  c.injected.Load(),
		SpeculativeWins: c.specWins.Load(),
	}
}

// Shuffle records bytes moved between machines during repartitioning.
func (c *Cluster) Shuffle(bytes int64) { c.shuffled.Add(bytes) }

// Broadcast records bytes sent from the driver to every machine; the
// recorded traffic is bytes × Machines, matching Lemma 7's O(M·I·R) term.
func (c *Cluster) Broadcast(bytes int64) { c.broadcast.Add(bytes * int64(c.machines)) }

// Collect records bytes returned from partitions to the driver.
func (c *Cluster) Collect(bytes int64) { c.collected.Add(bytes) }

// ForEach runs n tasks as one parallel stage. Task t is logically placed on
// machine t mod M. Real execution is bounded by the configured parallelism.
//
// Task errors and recovered panics are treated as transient machine
// failures: the task is re-executed up to the configured retry bound with
// exponential (simulated) backoff, and only a task exhausting every attempt
// aborts the stage — its last error, wrapped with the attempt count, is
// returned and remaining queued tasks are skipped. Under FailFast the first
// failure aborts immediately. A configured FaultPlan injects additional
// deterministic failures, panics, and straggler delays.
//
// Cancellation of ctx is observed between task launches and between retry
// attempts: no new work starts after ctx is done, in-flight tasks run to
// completion, and ctx.Err() is returned.
//
// The simulated clock advances by the stage makespan: the maximum over
// machines of the summed durations of the machine's tasks — including
// wasted attempts, retry backoff, and injected straggler delays — plus the
// network cost of traffic recorded since the previous stage boundary.
func (c *Cluster) ForEach(ctx context.Context, n int, fn func(task int) error) error {
	if n < 0 {
		panic("cluster: negative task count")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	stage := c.stages.Add(1) - 1
	c.tasks.Add(int64(n))

	perMachine := make([]int64, c.machines) // summed task nanos per logical machine
	var perMachineMu sync.Mutex

	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		failed   atomic.Bool
		firstErr atomic.Value
	)
	fail := func(err error) {
		if failed.CompareAndSwap(false, true) {
			firstErr.Store(err)
		}
	}
	workers := c.parallelism
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= n || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				simNanos, err := c.runAttempts(ctx, stage, t, fn)
				perMachineMu.Lock()
				perMachine[t%c.machines] += simNanos
				perMachineMu.Unlock()
				if err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	var makespan, taskSum int64
	for _, m := range perMachine {
		taskSum += m
		if m > makespan {
			makespan = m
		}
	}
	c.mu.Lock()
	dShuffled := c.shuffled.Load() - c.lastShuffled
	dBroadcast := c.broadcast.Load() - c.lastBroadcast
	dCollected := c.collected.Load() - c.lastCollected
	c.lastShuffled += dShuffled
	c.lastBroadcast += dBroadcast
	c.lastCollected += dCollected
	net := c.networkNanos(dShuffled, dBroadcast, dCollected)
	c.taskNanos += taskSum
	c.computeNanos += makespan
	c.netNanos += net
	c.simNanos += makespan + net
	c.mu.Unlock()

	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return nil
}

// runAttempts executes task t until one attempt succeeds or the retry
// bound is exhausted, returning the simulated nanos charged to the task's
// machine: every attempt's measured duration (wasted attempts included),
// injected straggler delays, and the exponential backoff between attempts.
func (c *Cluster) runAttempts(ctx context.Context, stage int64, t int, fn func(int) error) (int64, error) {
	maxAttempts := 1 + c.maxRetries
	var sim int64
	for attempt := 0; ; attempt++ {
		fault := faultNone
		if c.faults != nil {
			fault = c.faults.draw(stage, t, attempt, attempt == maxAttempts-1)
		}
		start := c.now()
		var err error
		if fault == faultPanic {
			// The attempt crashes before the user task runs; the recover
			// path turns the crash into a transient error.
			err = runTask(func(int) error {
				panic(fmt.Sprintf("injected fault (stage %d, attempt %d)", stage, attempt))
			}, t)
		} else {
			err = runTask(fn, t)
		}
		dur := c.now().Sub(start).Nanoseconds()
		switch fault {
		case faultPanic:
			c.injected.Add(1)
		case faultFail:
			// The machine is lost after the attempt ran: its work is
			// discarded but its duration was spent.
			c.injected.Add(1)
			if err == nil {
				err = fmt.Errorf("cluster: injected failure of task %d (stage %d, attempt %d)", t, stage, attempt)
			}
		case faultStraggler:
			c.injected.Add(1)
			dur += c.stragglerNanos(dur)
		}
		sim += dur
		if err == nil {
			return sim, nil
		}
		if attempt+1 >= maxAttempts {
			if maxAttempts > 1 {
				return sim, fmt.Errorf("cluster: task %d failed after %d attempts: %w", t, maxAttempts, err)
			}
			return sim, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return sim, cerr
		}
		c.retries.Add(1)
		sim += c.retryBackoff.Nanoseconds() << uint(attempt)
	}
}

// stragglerNanos returns the simulated delay a straggling attempt adds.
// Unless speculation is disabled, the engine models Spark's speculative
// execution: a copy of the task is relaunched on another machine, costing
// the attempt's own duration again plus the launch latency, and the clock
// pays whichever finishes first.
func (c *Cluster) stragglerNanos(attemptNanos int64) int64 {
	delay := c.faults.stragglerDelay()
	if c.faults.DisableSpeculation {
		return delay
	}
	if spec := attemptNanos + c.faults.speculativeLaunch(); spec < delay {
		c.specWins.Add(1)
		return spec
	}
	return delay
}

func (c *Cluster) networkNanos(shuffled, broadcast, collected int64) int64 {
	nanos := c.network.LatencyPerStage.Nanoseconds()
	if c.network.BytesPerSecond > 0 {
		// Shuffle and broadcast land on M machines' links in parallel;
		// collection funnels into the driver's one downlink.
		parallel := float64(shuffled+broadcast) / (c.network.BytesPerSecond * float64(c.machines))
		funnel := float64(collected) / c.network.BytesPerSecond
		nanos += int64((parallel + funnel) * 1e9)
	}
	return nanos
}

func runTask(fn func(int) error, t int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: task %d panicked: %v", t, r)
		}
	}()
	return fn(t)
}

// Driver runs a sequential driver-side section and charges its measured
// duration to the simulated clock. Column commits in DBTF — collecting the
// per-partition errors and deciding each entry — are driver work. A done
// context skips the section and returns its error, so cancellation is
// observed at every stage boundary.
func (c *Cluster) Driver(ctx context.Context, fn func()) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	start := c.now()
	fn()
	dur := c.now().Sub(start).Nanoseconds()
	c.mu.Lock()
	c.simNanos += dur
	c.driverNanos += dur
	c.mu.Unlock()
	return nil
}

// SimElapsed returns the simulated elapsed time on M machines.
func (c *Cluster) SimElapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.simNanos)
}

// ResetClock zeroes the simulated clock and stage-traffic snapshots but
// keeps the traffic counters. Used between timed experiment phases.
func (c *Cluster) ResetClock() {
	c.mu.Lock()
	c.simNanos = 0
	c.computeNanos, c.netNanos, c.driverNanos, c.taskNanos = 0, 0, 0, 0
	c.lastShuffled = c.shuffled.Load()
	c.lastBroadcast = c.broadcast.Load()
	c.lastCollected = c.collected.Load()
	c.mu.Unlock()
}
