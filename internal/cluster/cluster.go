// Package cluster simulates the distributed substrate DBTF runs on. The
// paper implements DBTF on Apache Spark over a 17-node cluster; this
// package provides the equivalent single-process execution engine:
//
//   - M logical machines execute partition-parallel stages. Real execution
//     uses a goroutine pool bounded by the host's CPUs so measured per-task
//     durations approximate dedicated-core times.
//   - A simulated clock tracks what the same stages would cost on M real
//     machines: each stage contributes max-over-machines of the summed task
//     durations of the tasks statically assigned to that machine (Spark's
//     even partition placement), plus a configurable per-stage network cost
//     fed by the engine's traffic accounting. Driver-side sequential
//     sections contribute their measured duration directly.
//   - Traffic counters record shuffled, broadcast, and collected bytes so
//     the volume claims of the paper's Lemmas 6 and 7 can be validated.
//   - Failed tasks are re-executed with bounded attempts and exponential
//     backoff, reproducing Spark's task-level fault tolerance; straggling
//     tasks launch real speculative backup copies whose race is priced by
//     the simulated clock; and whole machines can be lost (and rejoin),
//     with the dead machine's tasks reassigned to survivors and its
//     machine-local state invalidated — see FaultPlan, OnMachineLoss, and
//     Stats.
//
// The machine-scalability experiment (paper Figure 7) reports simulated
// makespans; all other experiments compare real wall-clock times of the
// competing methods under the same engine.
package cluster

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"dbtf/internal/trace"
	"dbtf/internal/transport"
)

// NetworkModel prices the simulated cluster's communication. A stage pays
// LatencyPerStage once (barrier/synchronization cost) plus transfer time
// for the traffic recorded since the previous stage. BytesPerSecond is
// the per-link bandwidth; traffic classes use the links differently:
//
//   - shuffled and broadcast data flow to M machines in parallel
//     (Spark's shuffle fan-out and torrent broadcast), so they are priced
//     against M links;
//   - collected data converges on the driver's single downlink;
//   - recovery re-broadcasts after a machine loss or rejoin target a
//     single machine and are priced against one link.
type NetworkModel struct {
	LatencyPerStage time.Duration
	BytesPerSecond  float64
}

// DefaultNetwork approximates a commodity gigabit-ethernet cluster like the
// paper's testbed.
var DefaultNetwork = NetworkModel{
	LatencyPerStage: 2 * time.Millisecond,
	BytesPerSecond:  125e6, // 1 Gbit/s
}

// Config configures a Cluster.
type Config struct {
	// Machines is the number of logical machines M. Must be >= 1.
	Machines int
	// Parallelism bounds the real goroutines executing tasks. Zero means
	// min(Machines, GOMAXPROCS); measured task durations then approximate
	// dedicated-core execution.
	Parallelism int
	// ThreadsPerMachine is the number of OS threads T each logical
	// machine's executor may use inside a single task (intra-task
	// parallelism; see Pool). Real wall-clock execution of shardable
	// kernels speeds up by up to T while the simulated clock still
	// charges single-thread semantics: the wall time a pool saves is
	// drained back into the owning machine's task charges. Zero and one
	// mean sequential tasks.
	ThreadsPerMachine int
	// Network prices simulated communication. Zero value means
	// DefaultNetwork.
	Network NetworkModel
	// FailFast disables retries: the first task error or recovered panic
	// aborts the stage immediately, the engine's original semantics.
	FailFast bool
	// MaxRetries bounds the re-execution attempts per failed task when
	// FailFast is false. Task errors and recovered panics are treated as
	// transient machine failures, as Spark treats lost executors, and the
	// task is re-run with exponential backoff; only a task failing all
	// 1+MaxRetries attempts aborts the stage. Zero means
	// DefaultMaxRetries; negative panics.
	MaxRetries int
	// RetryBackoff is the base backoff before re-executing a failed task,
	// doubled on every further attempt of the same task. It is charged to
	// the simulated clock only — real execution retries immediately, so
	// wall-clock tests stay fast while simulated makespans price the
	// recovery delay a real cluster would pay. Zero means
	// DefaultRetryBackoff.
	RetryBackoff time.Duration
	// Faults, when non-nil, injects deterministic task failures, panics,
	// straggler delays, and machine losses from a seed; see FaultPlan.
	Faults *FaultPlan
	// Tracer, when non-nil, receives a structured event for every stage,
	// driver section, traffic charge, retry, speculation, machine
	// loss/recovery, and checkpoint — see package trace. Nil disables
	// tracing at the cost of one nil check per emission site.
	Tracer *trace.Tracer
	// Transport, when non-nil, executes remote-capable stages (see
	// RunStage) on real machines instead of the simulated pool. The
	// engine keeps all accounting — stage numbering, the formula-based
	// traffic counters, liveness books — so a remote run's Stats message
	// counts match the simulated run's exactly; only the measured times
	// (and the extra Wire trace events carrying real socket bytes)
	// differ. Machine losses come from the transport's failure detection
	// instead of a FaultPlan: the two are mutually exclusive, and
	// Transport.Machines() must equal Machines.
	Transport transport.Transport
	// Gate, when non-nil, bounds concurrent task execution across every
	// cluster sharing it — the job server's host-CPU admission gate. See
	// Gate. Waiting at the gate is host contention and is not charged to
	// the simulated clock.
	Gate *Gate
}

// DefaultMaxRetries is the per-task retry bound when Config.MaxRetries is
// zero; it matches Spark's default of 4 attempts per task.
const DefaultMaxRetries = 3

// DefaultRetryBackoff is the simulated base backoff between attempts when
// Config.RetryBackoff is zero.
const DefaultRetryBackoff = 100 * time.Millisecond

// Stats holds the cumulative traffic and execution counters of a cluster.
// Snapshots returned by Cluster.Stats are internally consistent: every
// counter is read under one lock, and counters produced inside a stage
// (retries, injected faults, speculation) are published together with that
// stage's time accounting at the stage boundary — a snapshot taken while a
// stage runs concurrently can never show, say, a retry whose task time is
// missing.
type Stats struct {
	// ShuffledBytes is data repartitioned across machines: the one-off
	// distribution of unfolded tensor partitions (Lemma 6) plus
	// partitions re-shipped to survivors after machine losses.
	ShuffledBytes int64
	// BroadcastBytes is data sent from the driver to every machine: the
	// factor matrices at each iteration (Lemma 7). Recorded already
	// multiplied by the machine count. Recovery re-broadcasts (a single
	// machine re-fetching the working set after a loss or rejoin) are
	// added once, not multiplied.
	BroadcastBytes int64
	// CollectedBytes is data returned from partitions to the driver: the
	// per-column error vectors (Lemma 7).
	CollectedBytes int64
	// Stages is the number of parallel stages executed.
	Stages int64
	// Tasks is the number of tasks executed across all stages.
	Tasks int64
	// ComputeNanos, NetworkNanos and DriverNanos break the simulated
	// elapsed time into stage makespans, modeled communication, and
	// driver-side sequential sections.
	ComputeNanos, NetworkNanos, DriverNanos int64
	// TaskNanos is the summed duration of all tasks; ComputeNanos −
	// TaskNanos/Machines measures load imbalance.
	TaskNanos int64
	// Retries is the number of task re-executions after transient
	// failures (real errors, recovered panics, or injected faults).
	Retries int64
	// InjectedFaults is the number of task-level failures, panics, and
	// straggler delays injected by the configured FaultPlan. Machine
	// losses are counted separately in MachineLosses.
	InjectedFaults int64
	// SpeculativeLaunches counts real backup copies launched for
	// straggling tasks (Spark's speculative execution). A launched copy
	// actually re-executes the task.
	SpeculativeLaunches int64
	// SpeculativeWins counts straggling tasks whose backup copy finished,
	// on the simulated clock, before the straggler's delay would have
	// elapsed — the straggler is cancelled and the clock pays the copy.
	SpeculativeWins int64
	// MachineLosses is the number of machine-loss events injected by the
	// FaultPlan (seeded draws plus explicit MachineKills).
	MachineLosses int64
	// Recoveries counts completed recovery events: a lost machine's
	// reassigned work finishing its stage successfully (one per loss),
	// and a dead machine rejoining service.
	Recoveries int64
	// CheckpointBytes is the total size of durable iteration checkpoints
	// written by the driver (see RecordCheckpoint).
	CheckpointBytes int64
}

// Cluster is a simulated multi-machine execution engine.
type Cluster struct {
	machines    int
	parallelism int
	threads     int
	// pools[m] is machine m's intra-task worker pool; nil slice when
	// ThreadsPerMachine <= 1 (every PoolFor is then nil, which Pool
	// methods treat as sequential). Immutable after New.
	pools        []*Pool
	network      NetworkModel
	maxRetries   int
	retryBackoff time.Duration
	faults       *FaultPlan
	// tracer receives the structured event stream; nil when tracing is
	// disabled (the nil-receiver fast path). Immutable after New.
	tracer *trace.Tracer
	// transport executes remote-capable stages on real machines; nil
	// selects the simulated pool. Immutable after New.
	transport transport.Transport
	// gate bounds concurrent task execution across clusters; nil means
	// ungated. Immutable after New.
	gate *Gate

	// now is the clock used to measure task and driver durations;
	// replaceable in tests for deterministic ledger checks.
	now func() time.Time

	mu sync.Mutex
	// st accumulates every cumulative counter; Stats copies it under mu
	// so snapshots are torn-free.
	//dbtf:guardedby mu
	st Stats
	// simNanos is the simulated elapsed time.
	//dbtf:guardedby mu
	simNanos int64
	// stage-local traffic snapshots, used to price the network cost of
	// the stage that is about to run, per traffic class.
	//dbtf:guardedby mu
	lastShuffled, lastBroadcast, lastCollected int64
	// lastCheckpoint is the checkpoint-bytes snapshot at the previous
	// stage boundary (and at ResetClock), so per-stage trace deltas and
	// timed experiment phases never attribute pre-phase checkpoint
	// traffic to the wrong stage or phase.
	//dbtf:guardedby mu
	lastCheckpoint int64
	// liveBroadcast is the per-machine broadcast working set in bytes
	// (see BroadcastState): what a machine must re-fetch to rejoin the
	// stage pipeline after a loss.
	//dbtf:guardedby mu
	liveBroadcast int64
	// recoveryNanos accumulates single-link recovery transfer time to be
	// charged to the next stage's network cost.
	//dbtf:guardedby mu
	recoveryNanos int64
	// alive[m] reports whether logical machine m is in service; diedAt[m]
	// is the stage at which a dead machine was lost. At least one machine
	// is always alive.
	//dbtf:guardedby mu
	alive []bool
	//dbtf:guardedby mu
	aliveCount int
	//dbtf:guardedby mu
	diedAt []int64
	//dbtf:guardedby mu
	lossHandler func(machine int)
	// pendingRecoveries counts machine losses not yet absorbed by a
	// successfully completed stage.
	//dbtf:guardedby mu
	pendingRecoveries int64
}

// New returns a cluster with the given configuration.
func New(cfg Config) *Cluster {
	if cfg.Machines < 1 {
		panic(fmt.Sprintf("cluster: machines must be >= 1, got %d", cfg.Machines))
	}
	p := cfg.Parallelism
	if p <= 0 {
		p = cfg.Machines
		if mp := runtime.GOMAXPROCS(0); p > mp {
			p = mp
		}
	}
	net := cfg.Network
	if net == (NetworkModel{}) {
		net = DefaultNetwork
	}
	if cfg.MaxRetries < 0 {
		panic(fmt.Sprintf("cluster: MaxRetries must be >= 0, got %d", cfg.MaxRetries))
	}
	retries := cfg.MaxRetries
	if retries == 0 {
		retries = DefaultMaxRetries
	}
	if cfg.FailFast {
		retries = 0
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.validate(); err != nil {
			panic(err.Error())
		}
		for _, k := range cfg.Faults.MachineKills {
			if k.Machine >= cfg.Machines {
				panic(fmt.Sprintf("cluster: MachineKills machine %d outside cluster of %d", k.Machine, cfg.Machines))
			}
		}
	}
	if cfg.Transport != nil {
		if cfg.Faults != nil {
			panic("cluster: Faults and Transport are mutually exclusive (remote failures come from the transport's failure detection)")
		}
		if tm := cfg.Transport.Machines(); tm != cfg.Machines {
			panic(fmt.Sprintf("cluster: Transport has %d machines, cluster has %d", tm, cfg.Machines))
		}
	}
	threads := cfg.ThreadsPerMachine
	if threads < 1 {
		threads = 1
	}
	var pools []*Pool
	if threads > 1 {
		pools = make([]*Pool, cfg.Machines)
		for i := range pools {
			pools[i] = NewPool(threads)
		}
	}
	alive := make([]bool, cfg.Machines)
	for i := range alive {
		alive[i] = true
	}
	return &Cluster{
		machines: cfg.Machines, parallelism: p, network: net,
		threads: threads, pools: pools,
		maxRetries: retries, retryBackoff: backoff, faults: cfg.Faults,
		tracer: cfg.Tracer, transport: cfg.Transport, gate: cfg.Gate,
		//dbtf:allow-nondeterministic default clock measures real task durations; tests inject a deterministic one
		now:   time.Now,
		alive: alive, aliveCount: cfg.Machines, diedAt: make([]int64, cfg.Machines),
	}
}

// Machines returns the number of logical machines M.
func (c *Cluster) Machines() int { return c.machines }

// ThreadsPerMachine returns the configured intra-task thread count T.
func (c *Cluster) ThreadsPerMachine() int { return c.threads }

// PoolFor returns machine m's intra-task worker pool, nil when the
// cluster is configured sequential (ThreadsPerMachine <= 1). A nil Pool
// is valid: its Run executes shards sequentially. Clients key the pool
// by MachineFor(task), so a reassigned task uses the survivor's pool.
func (c *Cluster) PoolFor(m int) *Pool {
	if c.pools == nil {
		return nil
	}
	return c.pools[m]
}

// Tracer returns the cluster's tracer, nil when tracing is disabled.
// Clients (the decomposition driver) emit their own events — iteration
// and run spans — onto the same stream.
func (c *Cluster) Tracer() *trace.Tracer { return c.tracer }

// LiveMachines returns the number of machines currently in service.
func (c *Cluster) LiveMachines() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aliveCount
}

// MachineFor returns the logical machine that task t of any ForEach stage
// executes on. The home placement is t mod M, the engine's static
// round-robin rule (the same rule the simulated clock uses to attribute
// task durations); while the home machine is lost, the task is reassigned
// to the next live machine in ring order. The placement is stable across
// stages for as long as the machine set is stable — machine losses and
// rejoins happen only at stage boundaries — so stages may key
// machine-local state (per-machine cache tables, scratch pools) by this
// index. Tasks that share a machine may still execute concurrently in real
// time (the goroutine pool is bounded by Parallelism, not by M), so
// machine-local state must be internally synchronized.
func (c *Cluster) MachineFor(task int) int {
	if task < 0 {
		panic(fmt.Sprintf("cluster: negative task index %d", task))
	}
	home := task % c.machines
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reassignLocked(home)
}

// reassignLocked maps a home machine to its current stand-in: itself while
// alive, else the next live machine in ring order. At least one machine is
// always alive.
func (c *Cluster) reassignLocked(home int) int {
	if c.alive[home] {
		return home
	}
	for i := 1; i < c.machines; i++ {
		if m := (home + i) % c.machines; c.alive[m] {
			return m
		}
	}
	return home
}

// OnMachineLoss registers fn to be invoked for every machine lost at a
// stage boundary, from the goroutine entering the stage and before any of
// the stage's tasks run. The handler owns the client-side recovery: it
// typically drops the machine's local caches (they died with the machine)
// and records the traffic of re-shipping the machine's pinned partitions
// to survivors via Shuffle. A nil fn unregisters the handler.
func (c *Cluster) OnMachineLoss(fn func(machine int)) {
	c.mu.Lock()
	c.lossHandler = fn
	c.mu.Unlock()
}

// Stats returns a consistent snapshot of the traffic and execution
// counters: all fields are read under one lock, and in-stage counters are
// published only at stage boundaries together with the stage's time
// accounting.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// Shuffle records bytes moved between machines during repartitioning.
func (c *Cluster) Shuffle(bytes int64) {
	c.mu.Lock()
	c.st.ShuffledBytes += bytes
	sim := c.simNanos
	c.mu.Unlock()
	c.emitTraffic(trace.Shuffle, bytes, sim)
}

// Broadcast records bytes sent from the driver to every machine; the
// recorded traffic is bytes × Machines, matching Lemma 7's O(M·I·R) term.
func (c *Cluster) Broadcast(bytes int64) {
	recorded := bytes * int64(c.machines)
	c.mu.Lock()
	c.st.BroadcastBytes += recorded
	sim := c.simNanos
	c.mu.Unlock()
	c.emitTraffic(trace.Broadcast, recorded, sim)
}

// BroadcastState records a broadcast like Broadcast and additionally marks
// bytes as the per-machine broadcast working set: the state a machine must
// re-fetch before it can execute tasks again after a machine loss or
// rejoin. Successive calls replace the working set — DBTF re-broadcasts
// fresh factor matrices every iteration, superseding the previous ones.
func (c *Cluster) BroadcastState(bytes int64) {
	recorded := bytes * int64(c.machines)
	c.mu.Lock()
	c.st.BroadcastBytes += recorded
	c.liveBroadcast = bytes
	sim := c.simNanos
	c.mu.Unlock()
	c.emitTraffic(trace.Broadcast, recorded, sim)
}

// Collect records bytes returned from partitions to the driver.
func (c *Cluster) Collect(bytes int64) {
	c.mu.Lock()
	c.st.CollectedBytes += bytes
	sim := c.simNanos
	c.mu.Unlock()
	c.emitTraffic(trace.Collect, bytes, sim)
}

// RecordCheckpoint records the durable write of an iteration checkpoint of
// the given size (Stats.CheckpointBytes). The write itself is driver-side
// disk I/O; its wall-clock cost is measured by the Driver section that
// performs it, so only the byte count is recorded here.
func (c *Cluster) RecordCheckpoint(bytes int64) {
	c.mu.Lock()
	c.st.CheckpointBytes += bytes
	sim := c.simNanos
	c.mu.Unlock()
	c.emitTraffic(trace.Checkpoint, bytes, sim)
}

// emitTraffic publishes one traffic charge to the tracer: bytes is the
// exact increment applied to the corresponding Stats counter, so folding
// the stream's traffic events reproduces the byte counters.
func (c *Cluster) emitTraffic(typ trace.Type, bytes, sim int64) {
	if !c.tracer.Enabled() {
		return
	}
	ev := trace.NewEvent(typ)
	ev.Bytes = bytes
	ev.SimNanos = sim
	c.tracer.Emit(ev)
}

// chargeRecoveryLocked prices a single-machine re-fetch of bytes over one
// link and schedules it into the next stage's network cost. The bytes are
// added to BroadcastBytes once (they target one machine, not M).
func (c *Cluster) chargeRecoveryLocked(bytes int64) {
	c.st.BroadcastBytes += bytes
	if c.network.BytesPerSecond > 0 {
		c.recoveryNanos += int64(float64(bytes) / c.network.BytesPerSecond * 1e9)
	}
}

// stageState is the per-stage accounting shared by workers and speculative
// backup goroutines. Everything here is merged into the cluster's
// cumulative counters in one critical section at the stage boundary, so
// concurrent Stats snapshots never observe a half-published stage.
type stageState struct {
	ctx context.Context
	fn  func(int) error
	// stage, label and beginSim identify the stage in trace events:
	// index, human label, and the simulated clock at the stage boundary
	// (in-stage events resolve at the boundary on the simulated clock).
	// Written only before the stage starts.
	stage    int64
	label    string
	beginSim int64

	backups sync.WaitGroup // speculative copies in flight; joined before the stage returns

	mu sync.Mutex
	// perMachine sums simulated task nanos per logical machine.
	//dbtf:guardedby mu
	perMachine []int64
	//dbtf:guardedby mu
	retries int64
	//dbtf:guardedby mu
	injected int64
	//dbtf:guardedby mu
	specWins int64
	//dbtf:guardedby mu
	specLaunch int64
	losses     int // machine losses injected at this stage's boundary; written only before the stage starts
}

func (st *stageState) charge(machine int, nanos int64) {
	st.mu.Lock()
	st.perMachine[machine] += nanos
	st.mu.Unlock()
}

func (st *stageState) bump(counter *int64) {
	st.mu.Lock()
	*counter++
	st.mu.Unlock()
}

// beginStage numbers the stage, applies scheduled machine rejoins and
// losses at its boundary, invokes the loss handler for every machine lost,
// and returns fresh per-stage accounting. Liveness events and the stage's
// begin event are emitted at the boundary, before any task runs — losses
// are therefore never inside a stage span on the trace.
func (c *Cluster) beginStage(ctx context.Context, name string, n int, fn func(int) error) *stageState {
	var losses, rejoins []int
	var recoveryBytes int64
	c.mu.Lock()
	stage := c.st.Stages
	c.st.Stages++
	c.st.Tasks += int64(n)
	beginSim := c.simNanos
	if c.faults != nil && c.faults.lossesPossible() {
		recoveryBytes = c.liveBroadcast
		if c.faults.MachineRejoinAfter > 0 {
			for m := range c.alive {
				if !c.alive[m] && stage-c.diedAt[m] >= int64(c.faults.MachineRejoinAfter) {
					c.alive[m] = true
					c.aliveCount++
					// The rejoining machine re-fetches the broadcast
					// working set before taking tasks again.
					c.chargeRecoveryLocked(c.liveBroadcast)
					c.st.Recoveries++
					rejoins = append(rejoins, m)
				}
			}
		}
		for m := range c.alive {
			if !c.alive[m] || c.aliveCount <= 1 {
				continue // never kill the last live machine
			}
			if c.faults.drawMachineLoss(stage, m) {
				c.alive[m] = false
				c.aliveCount--
				c.diedAt[m] = stage
				c.st.MachineLosses++
				c.pendingRecoveries++
				// The survivor taking over re-fetches the broadcast
				// working set the dead machine held.
				c.chargeRecoveryLocked(c.liveBroadcast)
				losses = append(losses, m)
			}
		}
	}
	handler := c.lossHandler
	c.mu.Unlock()
	if c.tracer.Enabled() {
		for _, m := range rejoins {
			ev := trace.NewEvent(trace.MachineRejoin)
			ev.Stage, ev.Machine, ev.Bytes, ev.SimNanos = stage, m, recoveryBytes, beginSim
			c.tracer.Emit(ev)
		}
		for _, m := range losses {
			ev := trace.NewEvent(trace.MachineLoss)
			ev.Stage, ev.Machine, ev.Bytes, ev.SimNanos = stage, m, recoveryBytes, beginSim
			c.tracer.Emit(ev)
		}
	}
	if handler != nil {
		// Outside the lock: handlers record recovery traffic through
		// Shuffle/Collect, which take the lock themselves.
		for _, m := range losses {
			handler(m)
		}
	}
	if c.tracer.Enabled() {
		ev := trace.NewEvent(trace.StageBegin)
		ev.Stage, ev.Name, ev.Tasks, ev.SimNanos = stage, name, n, beginSim
		c.tracer.Emit(ev)
	}
	return &stageState{
		ctx: ctx, fn: fn,
		stage: stage, label: name, beginSim: beginSim,
		perMachine: make([]int64, c.machines),
		losses:     len(losses),
	}
}

// endStage merges the stage's accounting into the cumulative counters in
// one critical section: makespan, network cost (including pending recovery
// transfers), and every in-stage fault counter. ok marks a stage that
// completed without error; it absorbs pending machine-loss recoveries.
//
//dbtf:allow-unguarded st: all workers and backups are joined before endStage runs, so st is no longer shared
func (c *Cluster) endStage(st *stageState, ok bool) {
	// All workers and backups are joined; st is no longer shared.
	for m, p := range c.pools {
		// Backstop: excess left by the stage's last drains (speculative
		// copies, a task racing the stage close) lands on its machine
		// before the makespan is read, never on a later stage.
		if ex := p.DrainExcess(); ex > 0 {
			st.perMachine[m] += ex
		}
	}
	var makespan, taskSum int64
	for _, m := range st.perMachine {
		taskSum += m
		if m > makespan {
			makespan = m
		}
	}
	c.mu.Lock()
	dShuffled := c.st.ShuffledBytes - c.lastShuffled
	dBroadcast := c.st.BroadcastBytes - c.lastBroadcast
	dCollected := c.st.CollectedBytes - c.lastCollected
	dCheckpoint := c.st.CheckpointBytes - c.lastCheckpoint
	c.lastShuffled += dShuffled
	c.lastBroadcast += dBroadcast
	c.lastCollected += dCollected
	c.lastCheckpoint += dCheckpoint
	net := c.networkNanos(dShuffled, dBroadcast, dCollected) + c.recoveryNanos
	c.recoveryNanos = 0
	c.st.Retries += st.retries
	c.st.InjectedFaults += st.injected
	c.st.SpeculativeWins += st.specWins
	c.st.SpeculativeLaunches += st.specLaunch
	c.st.TaskNanos += taskSum
	c.st.ComputeNanos += makespan
	c.st.NetworkNanos += net
	c.simNanos += makespan + net
	var absorbed int64
	if ok && c.pendingRecoveries > 0 {
		absorbed = c.pendingRecoveries
		c.st.Recoveries += absorbed
		c.pendingRecoveries = 0
	}
	simAfter := c.simNanos
	c.mu.Unlock()
	if c.tracer.Enabled() {
		ev := trace.NewEvent(trace.StageEnd)
		ev.Stage, ev.Name, ev.SimNanos = st.stage, st.label, simAfter
		ev.DurNanos = makespan + net
		ev.Delta = &trace.StatsDelta{
			ShuffledBytes:       dShuffled,
			BroadcastBytes:      dBroadcast,
			CollectedBytes:      dCollected,
			CheckpointBytes:     dCheckpoint,
			ComputeNanos:        makespan,
			NetworkNanos:        net,
			TaskNanos:           taskSum,
			Retries:             st.retries,
			InjectedFaults:      st.injected,
			SpeculativeLaunches: st.specLaunch,
			SpeculativeWins:     st.specWins,
			Recoveries:          absorbed,
		}
		ev.PerMachineNanos = append([]int64(nil), st.perMachine...)
		c.tracer.Emit(ev)
	}
}

// ForEach runs n tasks as one parallel stage. Task t is logically placed on
// machine t mod M, reassigned to a survivor while that machine is lost
// (see MachineFor). Real execution is bounded by the configured
// parallelism.
//
// Task errors and recovered panics are treated as transient machine
// failures: the task is re-executed up to the configured retry bound with
// exponential (simulated) backoff, and only a task exhausting every attempt
// aborts the stage — its last error, wrapped with the attempt count and the
// stage label, is returned and remaining queued tasks are skipped. Under FailFast the first
// failure aborts immediately. A configured FaultPlan injects additional
// deterministic failures, panics, straggler delays, and machine losses
// (applied at the stage boundary). An injected straggler launches a real
// speculative backup copy of the task on another machine; the first
// finisher on the simulated clock wins and the loser is cancelled. Backup
// copies are joined before ForEach returns, so no goroutine outlives the
// stage.
//
// Cancellation of ctx is observed between task launches, between retry
// attempts, and before a backup copy starts: no new work starts after ctx
// is done, in-flight tasks run to completion, and ctx.Err() is returned.
//
// The simulated clock advances by the stage makespan: the maximum over
// machines of the summed durations of the machine's tasks — including
// wasted attempts, retry backoff, speculative races, and recovery
// transfers after machine losses — plus the network cost of traffic
// recorded since the previous stage boundary.
func (c *Cluster) ForEach(ctx context.Context, n int, fn func(task int) error) error {
	return c.ForEachNamed(ctx, "", n, fn)
}

// ForEachNamed is ForEach with a stage label: the label names the stage's
// span on the trace and is attached as the "stage" pprof label to every
// worker goroutine, so CPU profiles attribute kernel time to the factor
// update (or other) stage that spent it. An empty name traces as a
// numbered anonymous stage.
func (c *Cluster) ForEachNamed(ctx context.Context, name string, n int, fn func(task int) error) error {
	if n < 0 {
		panic("cluster: negative task count")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	st := c.beginStage(ctx, name, n, fn)

	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		failed   atomic.Bool
		firstErr atomic.Value
	)
	fail := func(err error) {
		if failed.CompareAndSwap(false, true) {
			firstErr.Store(err)
		}
	}
	workers := c.parallelism
	if workers > n {
		workers = n
	}
	label := name
	if label == "" {
		label = fmt.Sprintf("stage %d", st.stage)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// pprof.Do merges the "stage" label with any labels the caller
			// attached to ctx (the decomposition driver sets "mode" and
			// "iteration"), so profiles slice by stage × mode × iteration.
			pprof.Do(ctx, pprof.Labels("stage", label), func(ctx context.Context) {
				for {
					t := int(next.Add(1)) - 1
					if t >= n || failed.Load() {
						return
					}
					if err := ctx.Err(); err != nil {
						fail(err)
						return
					}
					assigned := c.MachineFor(t)
					if c.gate != nil {
						// Host-CPU admission across clusters; the wait is
						// real-host contention, never simulated time.
						if err := c.gate.acquire(ctx); err != nil {
							fail(err)
							return
						}
					}
					simNanos, err := c.runAttempts(st, st.stage, t, assigned)
					if c.gate != nil {
						c.gate.release()
					}
					st.charge(assigned, simNanos)
					if err != nil {
						// A task failure — including a recovered panic —
						// surfaces as an error naming the stage; it never
						// crashes the coordinator.
						fail(stageError(label, err))
						return
					}
				}
			})
		}()
	}
	wg.Wait()
	// Join speculative backup copies before closing the stage's books: no
	// goroutine outlives ForEach, and the stage makespan includes every
	// resolved speculation race.
	st.backups.Wait()

	err, _ := firstErr.Load().(error)
	c.endStage(st, err == nil)
	return err
}

// runAttempts executes task t until one attempt succeeds or the retry
// bound is exhausted, returning the simulated nanos charged to the task's
// machine: every attempt's measured duration (wasted attempts included),
// unspeculated straggler delays, and the exponential backoff between
// attempts. Speculated stragglers resolve asynchronously (see speculate)
// and charge the race outcome to the stage directly.
func (c *Cluster) runAttempts(st *stageState, stage int64, t, assigned int) (int64, error) {
	maxAttempts := 1 + c.maxRetries
	var sim int64
	for attempt := 0; ; attempt++ {
		fault := faultNone
		if c.faults != nil {
			fault = c.faults.draw(stage, t, attempt, attempt == maxAttempts-1)
		}
		start := c.now()
		var err error
		if fault == faultPanic {
			// The attempt crashes before the user task runs; the recover
			// path turns the crash into a transient error.
			err = runTask(func(int) error {
				panic(fmt.Sprintf("injected fault (stage %d, attempt %d)", stage, attempt))
			}, t)
		} else {
			err = runTask(st.fn, t)
		}
		dur := c.now().Sub(start).Nanoseconds()
		if c.pools != nil {
			// Intra-task parallelism saved wall time; charge it back so the
			// machine pays single-thread cost. Concurrent tasks on the same
			// machine may drain each other's excess — the per-machine sum,
			// which is what the makespan reads, is preserved.
			dur += c.pools[assigned].DrainExcess()
		}
		switch fault {
		case faultPanic:
			st.bump(&st.injected)
		case faultFail:
			// The machine is lost after the attempt ran: its work is
			// discarded but its duration was spent.
			st.bump(&st.injected)
			if err == nil {
				err = fmt.Errorf("cluster: injected failure of task %d (stage %d, attempt %d)", t, stage, attempt)
			}
		case faultStraggler:
			st.bump(&st.injected)
			if err != nil || c.faults.DisableSpeculation {
				// A failed attempt is handled by retry, not speculation;
				// with speculation disabled the full delay is always paid.
				dur += c.faults.stragglerDelay()
			} else {
				c.speculate(st, t, assigned)
			}
		}
		sim += dur
		if err == nil {
			return sim, nil
		}
		if attempt+1 >= maxAttempts {
			if maxAttempts > 1 {
				return sim, fmt.Errorf("cluster: task %d failed after %d attempts: %w", t, maxAttempts, err)
			}
			return sim, err
		}
		if cerr := st.ctx.Err(); cerr != nil {
			return sim, cerr
		}
		st.bump(&st.retries)
		if c.tracer.Enabled() {
			// A marker, not a counter: the retry count folds from the
			// owning stage_end delta, published at the stage boundary.
			ev := trace.NewEvent(trace.Retry)
			ev.Stage, ev.Machine, ev.Task = stage, assigned, t
			ev.Attempt = attempt + 1
			ev.SimNanos = st.beginSim
			c.tracer.Emit(ev)
		}
		sim += c.retryBackoff.Nanoseconds() << uint(attempt)
	}
}

// speculate launches a real backup copy of straggling task t, reproducing
// Spark's speculative execution: the copy actually re-executes the task on
// the stage's goroutine pool (tasks are idempotent by the engine's
// contract, so duplicate execution is safe), and the simulated clock pays
// whichever finishes first — the straggler's injected delay or the copy's
// measured duration plus launch latency. The loser is cancelled: both the
// straggling machine and the backup machine are charged only up to the
// race's resolution. A context cancelled before the copy starts cancels
// the speculation instead, and the straggler pays its full delay. The
// backup goroutine is registered with the stage and joined before ForEach
// returns.
func (c *Cluster) speculate(st *stageState, t, home int) {
	delay := c.faults.stragglerDelay()
	st.backups.Add(1)
	go func() {
		defer st.backups.Done()
		if st.ctx.Err() != nil {
			// Speculation cancelled before launch: the straggler runs to
			// the end of its delay.
			st.charge(home, delay)
			return
		}
		st.bump(&st.specLaunch)
		backup := c.backupMachineFor(home)
		if c.tracer.Enabled() {
			ev := trace.NewEvent(trace.SpeculativeLaunch)
			ev.Stage, ev.Machine, ev.Task = st.stage, backup, t
			ev.SimNanos = st.beginSim
			c.tracer.Emit(ev)
		}
		start := c.now()
		// The original attempt already succeeded; the copy's outcome is
		// discarded and its errors are irrelevant.
		_ = runTask(st.fn, t)
		cost := c.now().Sub(start).Nanoseconds() + c.faults.speculativeLaunch()
		resolve := delay
		if cost < delay {
			st.bump(&st.specWins)
			if c.tracer.Enabled() {
				ev := trace.NewEvent(trace.SpeculativeWin)
				ev.Stage, ev.Machine, ev.Task = st.stage, backup, t
				ev.SimNanos = st.beginSim
				c.tracer.Emit(ev)
			}
			resolve = cost
		}
		st.charge(home, resolve)
		if backup != home {
			st.charge(backup, resolve)
		}
	}()
}

// backupMachineFor picks the machine a speculative copy launches on: the
// next live machine after home in ring order, or home itself on a
// single-machine (or fully-degraded) cluster.
func (c *Cluster) backupMachineFor(home int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 1; i < c.machines; i++ {
		if m := (home + i) % c.machines; c.alive[m] {
			return m
		}
	}
	return home
}

func (c *Cluster) networkNanos(shuffled, broadcast, collected int64) int64 {
	nanos := c.network.LatencyPerStage.Nanoseconds()
	if c.network.BytesPerSecond > 0 {
		// Shuffle and broadcast land on M machines' links in parallel;
		// collection funnels into the driver's one downlink.
		parallel := float64(shuffled+broadcast) / (c.network.BytesPerSecond * float64(c.machines))
		funnel := float64(collected) / c.network.BytesPerSecond
		nanos += int64((parallel + funnel) * 1e9)
	}
	return nanos
}

func runTask(fn func(int) error, t int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: task %d panicked: %v", t, r)
		}
	}()
	return fn(t)
}

// Driver runs a sequential driver-side section and charges its measured
// duration to the simulated clock. Column commits in DBTF — collecting the
// per-partition errors and deciding each entry — are driver work. A done
// context skips the section and returns its error, so cancellation is
// observed at every stage boundary.
//
// A context cancelled while fn runs does not lose the section: the work
// was done and is recorded (clock charge and trace span) before the
// cancellation is propagated, so a cancelled resume never reports a clean
// exit over half-accounted books.
func (c *Cluster) Driver(ctx context.Context, fn func()) error {
	return c.DriverNamed(ctx, "", fn)
}

// DriverNamed is Driver with a section label for the trace.
func (c *Cluster) DriverNamed(ctx context.Context, name string, fn func()) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	var simBefore int64
	if c.tracer.Enabled() {
		c.mu.Lock()
		simBefore = c.simNanos
		c.mu.Unlock()
		ev := trace.NewEvent(trace.DriverBegin)
		ev.Name, ev.SimNanos = name, simBefore
		c.tracer.Emit(ev)
	}
	start := c.now()
	fn()
	dur := c.now().Sub(start).Nanoseconds()
	c.mu.Lock()
	c.simNanos += dur
	c.st.DriverNanos += dur
	simAfter := c.simNanos
	c.mu.Unlock()
	if c.tracer.Enabled() {
		ev := trace.NewEvent(trace.DriverEnd)
		ev.Name, ev.SimNanos, ev.DurNanos = name, simAfter, dur
		c.tracer.Emit(ev)
	}
	if ctx != nil {
		// Re-check after fn: a section interrupted by cancellation is
		// recorded above, then the cancellation propagates.
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// SimElapsed returns the simulated elapsed time on M machines.
func (c *Cluster) SimElapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.simNanos)
}

// ResetClock zeroes the simulated clock and stage-traffic snapshots but
// keeps the traffic counters and the machine liveness state. Used between
// timed experiment phases. Every traffic class is re-baselined — including
// checkpoint bytes and pending recovery transfer time — so a timed phase
// never pays for (or attributes) traffic recorded before the reset.
func (c *Cluster) ResetClock() {
	c.mu.Lock()
	c.simNanos = 0
	c.st.ComputeNanos, c.st.NetworkNanos, c.st.DriverNanos, c.st.TaskNanos = 0, 0, 0, 0
	c.lastShuffled = c.st.ShuffledBytes
	c.lastBroadcast = c.st.BroadcastBytes
	c.lastCollected = c.st.CollectedBytes
	c.lastCheckpoint = c.st.CheckpointBytes
	c.recoveryNanos = 0
	c.mu.Unlock()
}

// TraceDelta converts a Stats snapshot into the trace package's
// accumulator form (trace cannot import cluster). RunEnd events carry this
// snapshot so validators can compare the folded event stream against the
// engine's own counters.
func (s Stats) TraceDelta() trace.StatsDelta {
	return trace.StatsDelta{
		ShuffledBytes:       s.ShuffledBytes,
		BroadcastBytes:      s.BroadcastBytes,
		CollectedBytes:      s.CollectedBytes,
		CheckpointBytes:     s.CheckpointBytes,
		Stages:              s.Stages,
		Tasks:               s.Tasks,
		ComputeNanos:        s.ComputeNanos,
		NetworkNanos:        s.NetworkNanos,
		DriverNanos:         s.DriverNanos,
		TaskNanos:           s.TaskNanos,
		Retries:             s.Retries,
		InjectedFaults:      s.InjectedFaults,
		SpeculativeLaunches: s.SpeculativeLaunches,
		SpeculativeWins:     s.SpeculativeWins,
		MachineLosses:       s.MachineLosses,
		Recoveries:          s.Recoveries,
	}
}
