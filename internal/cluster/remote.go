package cluster

import (
	"context"
	"errors"
	"fmt"

	"dbtf/internal/trace"
	"dbtf/internal/transport"
)

// Remote reports whether the cluster executes remote-capable stages on a
// real transport instead of the simulated pool. Clients gate
// state-replication pushes (PushState) on it; everything else — stage
// structure, traffic accounting, driver sections — is identical on both
// backends.
func (c *Cluster) Remote() bool { return c.transport != nil }

// RunStage executes one partition-parallel stage described by spec. On the
// simulated backend (the default) it is exactly ForEachNamed(spec.Name,
// spec.Tasks, local): same stage numbering, chaos injection, retries, and
// accounting. On a remote transport the stage is shipped as spec, each
// task's payload is delivered to sink (sequentially, in completion order),
// and the executors' measured task nanos are charged to the simulated
// clock in place of locally measured durations. Either way the stage pays
// the network price of the traffic recorded since the previous boundary,
// so the modeled Stats stay backend-independent.
func (c *Cluster) RunStage(ctx context.Context, spec transport.Spec, local func(task int) error, sink func(task int, payload []byte) error) error {
	if c.transport == nil {
		return c.ForEachNamed(ctx, spec.Name, spec.Tasks, local)
	}
	return c.runStageRemote(ctx, spec, sink)
}

// runStageRemote is the transport-backed stage path: liveness transitions
// are collected from the transport and applied at the boundary (exactly
// where the simulated engine applies FaultPlan losses), the stage opens
// and closes through the same beginStage/endStage books as a simulated
// stage, and the stage's real wire traffic is emitted as a trace
// measurement.
func (c *Cluster) runStageRemote(ctx context.Context, spec transport.Spec, sink func(task int, payload []byte) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.applyLiveness(c.transport.Membership(ctx))
	st := c.beginStage(ctx, spec.Name, spec.Tasks, nil)
	sentBefore, recvBefore := c.transport.WireBytes()
	err := ctx.Err()
	if err == nil {
		err = c.transport.Run(ctx, spec, func(tr transport.TaskResult) error {
			st.charge(tr.Machine, tr.Nanos)
			if sink == nil {
				return nil
			}
			return sink(tr.Task, tr.Payload)
		})
	}
	c.endStage(st, err == nil)
	sentAfter, recvAfter := c.transport.WireBytes()
	c.emitWire(spec.Name, st.stage, (sentAfter-sentBefore)+(recvAfter-recvBefore))
	if err != nil {
		return stageError(st.label, err)
	}
	return nil
}

// PushState replicates one state blob to every live remote executor; on
// the simulated backend it is a no-op (the "executors" share the
// coordinator's memory). The wire volume is emitted as a trace
// measurement; the modeled broadcast traffic is recorded separately by the
// caller through Broadcast/BroadcastState, identically on both backends.
func (c *Cluster) PushState(ctx context.Context, kind transport.StateKind, payload []byte) error {
	if c.transport == nil {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sentBefore, recvBefore := c.transport.WireBytes()
	err := c.transport.PushState(ctx, kind, payload)
	sentAfter, recvAfter := c.transport.WireBytes()
	c.emitWire("state:"+kind.String(), -1, (sentAfter-sentBefore)+(recvAfter-recvBefore))
	if err != nil {
		return fmt.Errorf("cluster: state push %q: %w", kind.String(), err)
	}
	return nil
}

// applyLiveness applies transport-observed machine transitions to the
// engine's liveness books, in detection order, with the same accounting as
// FaultPlan losses at a simulated stage boundary: the survivor (or the
// rejoining machine) re-fetches the broadcast working set over one link,
// losses invoke the registered loss handler, and every transition is
// emitted as a boundary trace event.
func (c *Cluster) applyLiveness(events []transport.LivenessEvent) {
	if len(events) == 0 {
		return
	}
	type transition struct {
		machine int
		up      bool
	}
	var applied []transition
	c.mu.Lock()
	stage := c.st.Stages
	recoveryBytes := c.liveBroadcast
	for _, ev := range events {
		m := ev.Machine
		if m < 0 || m >= c.machines {
			continue
		}
		if ev.Up {
			if c.alive[m] {
				continue
			}
			c.alive[m] = true
			c.aliveCount++
			c.chargeRecoveryLocked(recoveryBytes)
			c.st.Recoveries++
			applied = append(applied, transition{m, true})
			continue
		}
		if !c.alive[m] || c.aliveCount <= 1 {
			// Never mark the last live machine dead: reassignment needs a
			// survivor. A transport with no live executor fails the next
			// Run instead.
			continue
		}
		c.alive[m] = false
		c.aliveCount--
		c.diedAt[m] = stage
		c.st.MachineLosses++
		c.pendingRecoveries++
		c.chargeRecoveryLocked(recoveryBytes)
		applied = append(applied, transition{m, false})
	}
	handler := c.lossHandler
	beginSim := c.simNanos
	c.mu.Unlock()
	if c.tracer.Enabled() {
		for _, tr := range applied {
			typ := trace.MachineLoss
			if tr.up {
				typ = trace.MachineRejoin
			}
			ev := trace.NewEvent(typ)
			ev.Stage, ev.Machine, ev.Bytes, ev.SimNanos = stage, tr.machine, recoveryBytes, beginSim
			c.tracer.Emit(ev)
		}
	}
	if handler != nil {
		// Outside the lock: handlers record recovery traffic through
		// Shuffle/Collect, which take the lock themselves.
		for _, tr := range applied {
			if !tr.up {
				handler(tr.machine)
			}
		}
	}
}

// emitWire publishes one real-socket traffic measurement. Wire bytes are
// observations of the physical backend, not modeled traffic: validators
// do not fold them into the Stats contract.
func (c *Cluster) emitWire(name string, stage int64, bytes int64) {
	if bytes <= 0 || !c.tracer.Enabled() {
		return
	}
	c.mu.Lock()
	sim := c.simNanos
	c.mu.Unlock()
	ev := trace.NewEvent(trace.Wire)
	ev.Name, ev.Stage, ev.Bytes, ev.SimNanos = name, stage, bytes, sim
	c.tracer.Emit(ev)
}

// stageError attributes a stage failure to its stage label so a panicking
// or failing task surfaces as "stage X failed because ..." instead of an
// anonymous error. Context cancellation passes through unwrapped: callers
// match it with errors.Is against the context sentinels, and a cancelled
// stage is the caller's doing, not the stage's.
func stageError(label string, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("cluster: stage %q: %w", label, err)
}
