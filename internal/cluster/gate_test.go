package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateBoundsConcurrencyAcrossClusters(t *testing.T) {
	g := NewGate(1)
	mk := func() *Cluster {
		return New(Config{Machines: 4, Gate: g})
	}
	var (
		running atomic.Int32
		peak    atomic.Int32
	)
	task := func(int) error {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		running.Add(-1)
		return nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cl := mk()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cl.ForEach(context.Background(), 8, task); err != nil {
				t.Errorf("ForEach: %v", err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p != 1 {
		t.Fatalf("peak concurrency %d across two gated clusters, want 1", p)
	}
}

func TestGateAcquireHonorsContext(t *testing.T) {
	g := NewGate(1)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.release()

	cl := New(Config{Machines: 2, Gate: g})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	err := cl.ForEach(ctx, 2, func(int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEach blocked on a full gate returned %v, want context.Canceled", err)
	}
}

func TestNewGateRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGate(0) did not panic")
		}
	}()
	NewGate(0)
}
