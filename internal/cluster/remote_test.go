package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"dbtf/internal/trace"
	"dbtf/internal/transport"
)

// fakeTransport is an in-process Transport for seam tests: tasks execute
// inline, liveness events are queued by the test, and wire counters are
// advanced artificially.
type fakeTransport struct {
	machines int
	pending  []transport.LivenessEvent
	runErr   error
	run      func(spec transport.Spec, task int) ([]byte, error)
	sent     atomic.Int64
	recvd    atomic.Int64
	closed   bool
}

func (f *fakeTransport) Machines() int { return f.machines }

func (f *fakeTransport) Membership(ctx context.Context) []transport.LivenessEvent {
	ev := f.pending
	f.pending = nil
	return ev
}

func (f *fakeTransport) PushState(ctx context.Context, kind transport.StateKind, payload []byte) error {
	f.sent.Add(int64(len(payload)))
	return nil
}

func (f *fakeTransport) Run(ctx context.Context, spec transport.Spec, deliver func(transport.TaskResult) error) error {
	if f.runErr != nil {
		return f.runErr
	}
	for t := 0; t < spec.Tasks; t++ {
		var payload []byte
		if f.run != nil {
			var err error
			payload, err = f.run(spec, t)
			if err != nil {
				return err
			}
		}
		f.sent.Add(10)
		f.recvd.Add(int64(len(payload)) + 10)
		if err := deliver(transport.TaskResult{Task: t, Machine: t % f.machines, Nanos: 1000, Payload: payload}); err != nil {
			return err
		}
	}
	return nil
}

func (f *fakeTransport) WireBytes() (int64, int64) { return f.sent.Load(), f.recvd.Load() }
func (f *fakeTransport) Close() error              { f.closed = true; return nil }

func TestRunStageRemoteDeliversAndAccounts(t *testing.T) {
	ft := &fakeTransport{machines: 3, run: func(spec transport.Spec, task int) ([]byte, error) {
		return []byte{byte(task)}, nil
	}}
	c := New(Config{Machines: 3, Transport: ft})
	if !c.Remote() {
		t.Fatal("Remote() = false with a transport configured")
	}
	var got []int
	spec := transport.Spec{Name: "eval:A", Kind: transport.KindEval, Tasks: 5}
	err := c.RunStage(context.Background(), spec, func(int) error {
		t.Fatal("local fn ran on the remote path")
		return nil
	}, func(task int, payload []byte) error {
		if len(payload) != 1 || int(payload[0]) != task {
			return fmt.Errorf("task %d got payload %v", task, payload)
		}
		got = append(got, task)
		return nil
	})
	if err != nil {
		t.Fatalf("RunStage: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("sink saw %d tasks, want 5", len(got))
	}
	st := c.Stats()
	if st.Stages != 1 || st.Tasks != 5 {
		t.Fatalf("Stages=%d Tasks=%d, want 1/5", st.Stages, st.Tasks)
	}
	if st.TaskNanos != 5000 {
		t.Fatalf("TaskNanos=%d, want 5000 (executor-measured nanos)", st.TaskNanos)
	}
}

func TestRunStageSimulatedPathUnchanged(t *testing.T) {
	c := New(Config{Machines: 2})
	var ran atomic.Int64
	spec := transport.Spec{Name: "build:B", Kind: transport.KindBuild, Tasks: 4}
	err := c.RunStage(context.Background(), spec, func(task int) error {
		ran.Add(1)
		return nil
	}, func(int, []byte) error {
		t.Fatal("sink ran on the simulated path")
		return nil
	})
	if err != nil || ran.Load() != 4 {
		t.Fatalf("err=%v ran=%d, want nil/4", err, ran.Load())
	}
}

func TestRunStageRemoteErrorNamesStage(t *testing.T) {
	ft := &fakeTransport{machines: 2, runErr: errors.New("socket torn")}
	c := New(Config{Machines: 2, Transport: ft})
	err := c.RunStage(context.Background(), transport.Spec{Name: "total-error", Kind: transport.KindTotalError, Tasks: 2}, nil, nil)
	if err == nil || !strings.Contains(err.Error(), `stage "total-error"`) || !strings.Contains(err.Error(), "socket torn") {
		t.Fatalf("got %v, want stage-attributed transport error", err)
	}
}

func TestApplyLivenessLossAndRejoin(t *testing.T) {
	buf := &trace.Buffer{}
	tr := trace.New(buf)
	ft := &fakeTransport{machines: 3}
	c := New(Config{Machines: 3, Transport: ft, Tracer: tr})
	c.BroadcastState(100) // the working set a recovering machine re-fetches

	var lost []int
	c.OnMachineLoss(func(m int) { lost = append(lost, m) })

	spec := transport.Spec{Name: "eval:A", Kind: transport.KindEval, Tasks: 3}
	ft.pending = []transport.LivenessEvent{{Machine: 1, Up: false}}
	if err := c.RunStage(context.Background(), spec, nil, nil); err != nil {
		t.Fatal(err)
	}
	if len(lost) != 1 || lost[0] != 1 {
		t.Fatalf("loss handler saw %v, want [1]", lost)
	}
	if c.LiveMachines() != 2 {
		t.Fatalf("LiveMachines=%d, want 2", c.LiveMachines())
	}
	if m := c.MachineFor(1); m != 2 {
		t.Fatalf("MachineFor(1)=%d after losing machine 1, want ring successor 2", m)
	}
	st := c.Stats()
	if st.MachineLosses != 1 {
		t.Fatalf("MachineLosses=%d, want 1", st.MachineLosses)
	}
	// The completed stage absorbed the pending recovery.
	if st.Recoveries != 1 {
		t.Fatalf("Recoveries=%d, want 1 (reassigned work finished its stage)", st.Recoveries)
	}

	ft.pending = []transport.LivenessEvent{{Machine: 1, Up: true}}
	if err := c.RunStage(context.Background(), spec, nil, nil); err != nil {
		t.Fatal(err)
	}
	if c.LiveMachines() != 3 {
		t.Fatalf("LiveMachines=%d after rejoin, want 3", c.LiveMachines())
	}
	if got := c.Stats().Recoveries; got != 2 {
		t.Fatalf("Recoveries=%d after rejoin, want 2", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var losses, rejoins, wires int
	for _, ev := range buf.Events {
		switch ev.Type {
		case trace.MachineLoss:
			losses++
			if ev.Bytes != 100 {
				t.Fatalf("loss recovery bytes = %d, want 100", ev.Bytes)
			}
		case trace.MachineRejoin:
			rejoins++
		case trace.Wire:
			wires++
		}
	}
	if losses != 1 || rejoins != 1 {
		t.Fatalf("trace saw %d losses / %d rejoins, want 1/1", losses, rejoins)
	}
	if wires == 0 {
		t.Fatal("no wire traffic events emitted for remote stages")
	}
	if _, err := trace.Validate(buf.Events); err != nil {
		t.Fatalf("remote-path trace invalid: %v", err)
	}
}

func TestApplyLivenessNeverKillsLastMachine(t *testing.T) {
	ft := &fakeTransport{machines: 2}
	c := New(Config{Machines: 2, Transport: ft})
	ft.pending = []transport.LivenessEvent{{Machine: 0, Up: false}, {Machine: 1, Up: false}}
	spec := transport.Spec{Name: "build:A", Kind: transport.KindBuild, Tasks: 2}
	if err := c.RunStage(context.Background(), spec, nil, nil); err != nil {
		t.Fatal(err)
	}
	if c.LiveMachines() != 1 {
		t.Fatalf("LiveMachines=%d, want 1 (the engine keeps one survivor for reassignment)", c.LiveMachines())
	}
}

func TestNewRejectsFaultsWithTransport(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted Faults together with Transport")
		}
	}()
	New(Config{Machines: 2, Transport: &fakeTransport{machines: 2}, Faults: &FaultPlan{Seed: 1, FailureRate: 0.5}})
}

func TestNewRejectsMachineCountMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a transport with a different machine count")
		}
	}()
	New(Config{Machines: 3, Transport: &fakeTransport{machines: 2}})
}
