package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dbtf/internal/trace"
)

// stepClock returns a deterministic clock advancing step per reading,
// usable both as the engine's task clock and the tracer's wall clock.
func stepClock(step time.Duration) func() time.Time {
	fake := time.Unix(0, 0)
	return func() time.Time {
		fake = fake.Add(step)
		return fake
	}
}

// foldStream folds every event with StatsDelta.Observe, the validator's
// accumulation rule.
func foldStream(events []*trace.Event) trace.StatsDelta {
	var acc trace.StatsDelta
	for _, ev := range events {
		acc.Observe(ev)
	}
	return acc
}

// TestTraceDeltasSumToStats runs a chaos-heavy seeded workload — retries,
// panics, stragglers with speculation, machine losses with rejoins, a
// loss handler recording recovery traffic, checkpoints, driver sections —
// and asserts the attribution contract: folding the event stream
// reproduces Cluster.Stats exactly.
func TestTraceDeltasSumToStats(t *testing.T) {
	buf := &trace.Buffer{}
	c := New(Config{
		Machines: 4,
		Faults: &FaultPlan{
			Seed:               42,
			FailureRate:        0.15,
			PanicRate:          0.05,
			StragglerRate:      0.1,
			MachineLossRate:    0.08,
			MachineRejoinAfter: 2,
		},
		Tracer: trace.New(buf, trace.WithClock(stepClock(time.Microsecond))),
	})
	c.OnMachineLoss(func(m int) { c.Shuffle(512) })
	ctx := context.Background()
	c.BroadcastState(64)
	for stage := 0; stage < 12; stage++ {
		if err := c.ForEachNamed(ctx, fmt.Sprintf("work%d", stage), 8, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		c.Collect(96)
		if err := c.Driver(ctx, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	c.RecordCheckpoint(2048)
	if err := c.ForEach(ctx, 4, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}

	got := foldStream(buf.Events)
	want := c.Stats().TraceDelta()
	if got != want {
		t.Fatalf("folded event deltas do not reproduce Stats:\nfold: %+v\nstats: %+v", got, want)
	}
	if want.MachineLosses == 0 || want.Retries == 0 || want.SpeculativeLaunches == 0 {
		t.Fatalf("chaos run exercised no faults (losses=%d retries=%d spec=%d); weak test",
			want.MachineLosses, want.Retries, want.SpeculativeLaunches)
	}
}

// TestTraceStreamStructureUnderChaos validates the same chaos stream
// structurally: spans pair and nest, losses land on stage boundaries, the
// simulated clock never goes backwards.
func TestTraceStreamStructureUnderChaos(t *testing.T) {
	buf := &trace.Buffer{}
	c := New(Config{
		Machines: 3,
		Faults:   &FaultPlan{Seed: 7, FailureRate: 0.2, MachineLossRate: 0.1, MachineRejoinAfter: 1},
		Tracer:   trace.New(buf, trace.WithClock(stepClock(time.Microsecond))),
	})
	ctx := context.Background()
	statsBefore := c.Stats()
	run := trace.NewEvent(trace.RunBegin)
	run.Machines = c.Machines()
	c.Tracer().Emit(run)
	c.BroadcastState(32)
	for stage := 0; stage < 8; stage++ {
		if err := c.ForEachNamed(ctx, "chaos", 6, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	end := trace.NewEvent(trace.RunEnd)
	end.SimNanos = c.SimElapsed().Nanoseconds()
	delta := c.Stats().TraceDelta().Sub(statsBefore.TraceDelta())
	end.Delta = &delta
	c.Tracer().Emit(end)

	sum, err := trace.Validate(buf.Events)
	if err != nil {
		t.Fatalf("chaos stream structurally invalid: %v", err)
	}
	if sum.Stages != 8 {
		t.Fatalf("validated %d stages, want 8", sum.Stages)
	}
}

// TestTraceConcurrentStages drives many stages from concurrent goroutines
// (run under -race): the tracer must serialize emission into a consistent
// stream — strictly increasing sequence numbers, no torn events, paired
// begin/end counts — and the fold must still reproduce Stats exactly,
// since every counter mutation is published by exactly one event.
func TestTraceConcurrentStages(t *testing.T) {
	buf := &trace.Buffer{}
	c := New(Config{Machines: 4, Tracer: trace.New(buf)})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for s := 0; s < 5; s++ {
				c.Shuffle(10)
				if err := c.ForEachNamed(ctx, fmt.Sprintf("g%d", g), 4, func(int) error { return nil }); err != nil {
					t.Error(err)
				}
				if err := c.DriverNamed(ctx, "d", func() {}); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()

	counts := map[trace.Type]int{}
	lastSeq := int64(-1)
	for _, ev := range buf.Events {
		if ev.Seq <= lastSeq {
			t.Fatalf("seq %d after %d: stream interleaved", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		counts[ev.Type]++
	}
	if counts[trace.StageBegin] != 40 || counts[trace.StageEnd] != 40 {
		t.Fatalf("stage begin/end counts %d/%d, want 40/40", counts[trace.StageBegin], counts[trace.StageEnd])
	}
	if counts[trace.DriverBegin] != counts[trace.DriverEnd] {
		t.Fatalf("driver begin/end counts %d/%d", counts[trace.DriverBegin], counts[trace.DriverEnd])
	}
	if got, want := foldStream(buf.Events), c.Stats().TraceDelta(); got != want {
		t.Fatalf("concurrent fold mismatch:\nfold: %+v\nstats: %+v", got, want)
	}
}

// TestChromeGolden locks the byte-exact Chrome export of a fully
// deterministic scripted run: fake engine and wall clocks, one worker, a
// scheduled machine kill, speculation disabled. Regenerate with
// DBTF_UPDATE_GOLDEN=1 after an intentional format change.
func TestChromeGolden(t *testing.T) {
	updateGolden := os.Getenv("DBTF_UPDATE_GOLDEN") != ""
	var out bytes.Buffer
	c := New(Config{
		Machines:    2,
		Parallelism: 1,
		Network:     NetworkModel{LatencyPerStage: time.Millisecond, BytesPerSecond: 1e6},
		Faults: &FaultPlan{
			MachineKills:       []MachineKill{{Stage: 1, Machine: 1}},
			MachineRejoinAfter: 2,
			DisableSpeculation: true,
		},
		Tracer: trace.New(trace.NewChrome(&out), trace.WithClock(stepClock(time.Microsecond))),
	})
	c.now = stepClock(time.Millisecond)
	ctx := context.Background()

	c.Shuffle(1000)
	if err := c.ForEachNamed(ctx, "build", 4, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	c.BroadcastState(500)
	if err := c.ForEachNamed(ctx, "eval", 4, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	c.Collect(250)
	if err := c.DriverNamed(ctx, "commit", func() {}); err != nil {
		t.Fatal(err)
	}
	if err := c.ForEachNamed(ctx, "eval", 4, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := c.Tracer().Close(); err != nil {
		t.Fatal(err)
	}

	var parsed []any
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("golden output not valid JSON: %v", err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with DBTF_UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("chrome export differs from %s (run with DBTF_UPDATE_GOLDEN=1 to regenerate)\ngot:\n%s", golden, out.Bytes())
	}
}

// TestResetClockRebaselinesCheckpointBytes is the regression test for the
// checkpoint-baseline bug: checkpoint traffic recorded before ResetClock
// must not be attributed to the first stage after the reset.
func TestResetClockRebaselinesCheckpointBytes(t *testing.T) {
	buf := &trace.Buffer{}
	c := New(Config{Machines: 2, Tracer: trace.New(buf)})
	ctx := context.Background()
	c.RecordCheckpoint(1 << 20) // pre-phase checkpoint
	c.ResetClock()
	if err := c.ForEach(ctx, 2, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	var stageEnd *trace.Event
	for _, ev := range buf.Events {
		if ev.Type == trace.StageEnd {
			stageEnd = ev
		}
	}
	if stageEnd == nil {
		t.Fatal("no stage_end event")
	}
	if stageEnd.Delta.CheckpointBytes != 0 {
		t.Fatalf("first stage after ResetClock attributed %d pre-phase checkpoint bytes", stageEnd.Delta.CheckpointBytes)
	}
	// And checkpoint traffic recorded after the reset is attributed to the
	// next stage boundary as usual.
	c.RecordCheckpoint(4096)
	if err := c.ForEach(ctx, 2, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	last := buf.Events[len(buf.Events)-1]
	if last.Type != trace.StageEnd || last.Delta.CheckpointBytes != 4096 {
		t.Fatalf("post-reset checkpoint bytes not attributed to the next stage: %+v", last)
	}
}

// TestResetClockDropsPendingRecoveryNanos is the companion clock
// regression: recovery transfer time accrued before ResetClock (a machine
// loss whose re-fetch was not yet absorbed by a stage) must not be charged
// to the first stage of the next timed phase.
func TestResetClockDropsPendingRecoveryNanos(t *testing.T) {
	noNet := NetworkModel{LatencyPerStage: 0, BytesPerSecond: 1e6}
	c := New(Config{Machines: 2, Network: noNet})
	c.mu.Lock()
	c.recoveryNanos = int64(5 * time.Second) // pending pre-phase recovery transfer
	c.mu.Unlock()
	c.ResetClock()
	if err := c.ForEach(context.Background(), 2, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if n := c.Stats().NetworkNanos; n >= int64(5*time.Second) {
		t.Fatalf("pre-phase recovery nanos leaked into the next phase: NetworkNanos=%d", n)
	}
}

// TestDriverRecordsCancelledSection is the regression test for the
// mid-section cancellation bug: a context cancelled while fn runs must
// still charge the section to the clock AND propagate the cancellation.
func TestDriverRecordsCancelledSection(t *testing.T) {
	buf := &trace.Buffer{}
	c := New(Config{Machines: 2, Tracer: trace.New(buf)})
	c.now = stepClock(time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	err := c.DriverNamed(ctx, "interrupted", func() { cancel() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Driver returned %v after mid-section cancellation, want context.Canceled", err)
	}
	if c.Stats().DriverNanos == 0 {
		t.Fatal("cancelled section's duration was not recorded")
	}
	var end *trace.Event
	for _, ev := range buf.Events {
		if ev.Type == trace.DriverEnd {
			end = ev
		}
	}
	if end == nil || end.DurNanos == 0 {
		t.Fatalf("cancelled section missing from the trace: %+v", end)
	}
	// A context already cancelled before the section still skips it.
	before := c.Stats().DriverNanos
	if err := c.Driver(ctx, func() { t.Fatal("section ran under a dead context") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Driver returned %v", err)
	}
	if c.Stats().DriverNanos != before {
		t.Fatal("skipped section charged time")
	}
}

// TestTracerDisabledOverhead guards the nil fast path at the engine level:
// a traced-API call sequence with a nil tracer allocates nothing beyond
// the untraced baseline.
func TestTracerDisabledOverhead(t *testing.T) {
	c := New(Config{Machines: 2})
	allocs := testing.AllocsPerRun(50, func() {
		c.Shuffle(1)
		c.Broadcast(1)
		c.Collect(1)
		c.RecordCheckpoint(1)
	})
	if allocs != 0 {
		t.Fatalf("traffic recording with disabled tracer allocates %v per call set", allocs)
	}
}
