package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// noNetwork removes modeled communication cost so simulated-clock tests
// observe only task, backoff, and straggler time. Non-zero struct so
// DefaultNetwork is not substituted.
var noNetwork = NetworkModel{LatencyPerStage: 0, BytesPerSecond: 1e18}

func TestRetryRecoversTransientError(t *testing.T) {
	c := New(Config{Machines: 2, Network: noNetwork})
	var attempts [4]atomic.Int64
	err := c.ForEach(context.Background(), 4, func(task int) error {
		if attempts[task].Add(1) <= 2 && task == 1 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("transient error not retried away: %v", err)
	}
	if got := c.Stats().Retries; got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
}

func TestRetryRecoversTransientPanic(t *testing.T) {
	c := New(Config{Machines: 2, Network: noNetwork})
	var attempts atomic.Int64
	err := c.ForEach(context.Background(), 1, func(int) error {
		if attempts.Add(1) == 1 {
			panic("machine lost")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("transient panic not retried away: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("task ran %d times, want 2", got)
	}
}

func TestRetriesExhausted(t *testing.T) {
	c := New(Config{Machines: 2, MaxRetries: 2, Network: noNetwork})
	want := errors.New("permanent")
	var attempts atomic.Int64
	err := c.ForEach(context.Background(), 1, func(int) error {
		attempts.Add(1)
		return want
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want wrapped %v", err, want)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("task ran %d times, want 1+MaxRetries = 3", got)
	}
}

func TestFailFastAborts(t *testing.T) {
	c := New(Config{Machines: 2, FailFast: true, Network: noNetwork})
	want := errors.New("boom")
	var attempts atomic.Int64
	err := c.ForEach(context.Background(), 1, func(int) error {
		attempts.Add(1)
		return want
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("task ran %d times under FailFast, want 1", got)
	}
	if got := c.Stats().Retries; got != 0 {
		t.Fatalf("Retries = %d under FailFast, want 0", got)
	}
}

func TestBackoffChargedToSimulatedClock(t *testing.T) {
	c := New(Config{Machines: 1, RetryBackoff: 100 * time.Millisecond, Network: noNetwork})
	var attempts atomic.Int64
	start := time.Now()
	if err := c.ForEach(context.Background(), 1, func(int) error {
		if attempts.Add(1) == 1 {
			return errors.New("transient")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 50*time.Millisecond {
		t.Fatalf("backoff slept %v of real time; must be simulated only", wall)
	}
	if sim := c.SimElapsed(); sim < 100*time.Millisecond {
		t.Fatalf("SimElapsed = %v, want >= 100ms of charged backoff", sim)
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	run := func() Stats {
		c := New(Config{Machines: 4, Network: noNetwork,
			Faults: &FaultPlan{Seed: 7, FailureRate: 0.2, PanicRate: 0.05}})
		for s := 0; s < 5; s++ {
			if err := c.ForEach(context.Background(), 40, func(int) error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	a, b := run(), run()
	if a.InjectedFaults == 0 {
		t.Fatal("plan injected no faults at rate 0.25 over 200 tasks")
	}
	if a.InjectedFaults != b.InjectedFaults || a.Retries != b.Retries {
		t.Fatalf("fault schedule not deterministic: %+v vs %+v", a, b)
	}
	if a.Retries < a.InjectedFaults {
		t.Fatalf("Retries %d < InjectedFaults %d: injected failures must be retried", a.Retries, a.InjectedFaults)
	}
}

func TestFaultPlanNeverFailsWithRetries(t *testing.T) {
	// Injected failures are transient by construction: the final attempt
	// always runs clean, so even an extreme plan cannot abort a stage.
	c := New(Config{Machines: 4, Network: noNetwork,
		Faults: &FaultPlan{Seed: 3, FailureRate: 0.5, PanicRate: 0.3}})
	var ran atomic.Int64
	if err := c.ForEach(context.Background(), 200, func(int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("injected faults aborted the stage: %v", err)
	}
	if ran.Load() < 200 {
		t.Fatalf("only %d of 200 tasks completed", ran.Load())
	}
}

func TestFailFastSuppressesFailureInjection(t *testing.T) {
	// With one attempt per task there is no clean retry to fall back on,
	// so fail/panic injection is disabled rather than making every run
	// abort.
	c := New(Config{Machines: 2, FailFast: true, Network: noNetwork,
		Faults: &FaultPlan{Seed: 1, FailureRate: 1.0}})
	if err := c.ForEach(context.Background(), 50, func(int) error { return nil }); err != nil {
		t.Fatalf("FailFast run failed under injection-only faults: %v", err)
	}
	if got := c.Stats().InjectedFaults; got != 0 {
		t.Fatalf("InjectedFaults = %d under FailFast, want 0", got)
	}
}

func TestStragglerChargesSimulatedClock(t *testing.T) {
	c := New(Config{Machines: 1, Network: noNetwork,
		Faults: &FaultPlan{Seed: 1, StragglerRate: 1.0,
			StragglerDelay: 80 * time.Millisecond, DisableSpeculation: true}})
	start := time.Now()
	if err := c.ForEach(context.Background(), 1, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 50*time.Millisecond {
		t.Fatalf("straggler delay slept %v of real time; must be simulated only", wall)
	}
	if sim := c.SimElapsed(); sim < 80*time.Millisecond {
		t.Fatalf("SimElapsed = %v, want >= the 80ms injected delay", sim)
	}
	s := c.Stats()
	if s.InjectedFaults != 1 || s.SpeculativeWins != 0 {
		t.Fatalf("stats = %+v, want 1 injected fault, 0 speculative wins", s)
	}
}

func TestSpeculativeCopyBeatsStraggler(t *testing.T) {
	// A near-instant task delayed by 1s: the speculative copy (task cost +
	// 1ms launch) wins, and the clock pays the copy instead of the delay.
	c := New(Config{Machines: 1, Network: noNetwork,
		Faults: &FaultPlan{Seed: 1, StragglerRate: 1.0,
			StragglerDelay: time.Second, SpeculativeLaunch: time.Millisecond}})
	if err := c.ForEach(context.Background(), 1, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().SpeculativeWins; got != 1 {
		t.Fatalf("SpeculativeWins = %d, want 1", got)
	}
	if sim := c.SimElapsed(); sim >= time.Second {
		t.Fatalf("SimElapsed = %v: speculative win should undercut the 1s delay", sim)
	}
}

func TestForEachObservesCancellation(t *testing.T) {
	c := New(Config{Machines: 2, Network: noNetwork})
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := c.ForEach(ctx, 1000, func(task int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Fatal("cancellation did not stop task launches")
	}
}

func TestDriverObservesCancellation(t *testing.T) {
	c := New(Config{Machines: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Driver(ctx, func() { t.Fatal("driver section ran after cancel") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFaultPlanValidation(t *testing.T) {
	for _, plan := range []FaultPlan{
		{FailureRate: -0.1},
		{PanicRate: 1.5},
		{FailureRate: 0.6, PanicRate: 0.3, StragglerRate: 0.2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New accepted invalid plan %+v", plan)
				}
			}()
			p := plan
			New(Config{Machines: 1, Faults: &p})
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("New accepted negative MaxRetries")
		}
	}()
	New(Config{Machines: 1, MaxRetries: -1})
}

func TestDrawSuppressesFaultsOnFinalAttempt(t *testing.T) {
	p := &FaultPlan{Seed: 1, FailureRate: 0.7, PanicRate: 0.3}
	for task := 0; task < 100; task++ {
		if got := p.draw(0, task, 3, true); got != faultNone {
			t.Fatalf("task %d: draw on final attempt = %v, want faultNone", task, got)
		}
	}
	// Stragglers delay but never fail, so they are allowed on the final
	// attempt.
	sp := &FaultPlan{Seed: 1, StragglerRate: 1.0}
	if got := sp.draw(0, 0, 3, true); got != faultStraggler {
		t.Fatalf("straggler draw on final attempt = %v, want faultStraggler", got)
	}
}
