package cluster

import "context"

// Gate is a host-CPU admission gate shared across clusters: it bounds
// how many cluster tasks may execute concurrently on the real machine,
// across every Cluster configured with it. The job server gives each
// running job its own Cluster but one shared Gate, so the host is never
// oversubscribed by (jobs × machines) goroutines while each job's
// simulated M-machine ledger stays untouched — waiting at the gate is
// real-host contention, not modeled cluster time, and is deliberately
// not charged to SimTime.
type Gate struct {
	slots chan struct{}
}

// NewGate returns a gate admitting at most n concurrent tasks. n must be
// >= 1.
func NewGate(n int) *Gate {
	if n < 1 {
		panic("cluster: gate size must be >= 1")
	}
	return &Gate{slots: make(chan struct{}, n)}
}

// acquire blocks until a slot frees or ctx is done.
func (g *Gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *Gate) release() { <-g.slots }
