package serve

import "testing"

func qjob(tenant string, seq int64, prio int) *Job {
	return &Job{
		ID:   tenant + string(rune('0'+seq%10)),
		Seq:  seq,
		Spec: JobSpec{Tenant: tenant, Priority: prio},
	}
}

func popIDs(q *fairQueue, n int) []string {
	var ids []string
	for i := 0; i < n; i++ {
		j := q.pop()
		if j == nil {
			break
		}
		ids = append(ids, j.ID)
	}
	return ids
}

func TestFairQueueRoundRobinAcrossTenants(t *testing.T) {
	q := newFairQueue()
	// Tenant a dumps three jobs before tenant b submits one; b must not
	// wait behind all of a's backlog.
	q.push(qjob("a", 1, 0))
	q.push(qjob("a", 2, 0))
	q.push(qjob("a", 3, 0))
	q.push(qjob("b", 4, 0))
	got := popIDs(q, 4)
	want := []string{"a1", "b4", "a2", "a3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
	if q.pop() != nil {
		t.Fatal("queue should be empty")
	}
}

func TestFairQueuePriorityThenFIFOWithinTenant(t *testing.T) {
	q := newFairQueue()
	q.push(qjob("a", 1, 0))
	q.push(qjob("a", 2, 5)) // higher priority jumps the tenant's own queue
	q.push(qjob("a", 3, 5)) // ties break FIFO by sequence
	got := popIDs(q, 3)
	want := []string{"a2", "a3", "a1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestFairQueueRemove(t *testing.T) {
	q := newFairQueue()
	q.push(qjob("a", 1, 0))
	q.push(qjob("b", 2, 0))
	q.push(qjob("a", 3, 0))
	if j := q.remove("a1"); j == nil || j.ID != "a1" {
		t.Fatalf("remove(a1) = %v", j)
	}
	if j := q.remove("a1"); j != nil {
		t.Fatalf("second remove(a1) = %v, want nil", j)
	}
	if q.len() != 2 {
		t.Fatalf("len = %d, want 2", q.len())
	}
	got := popIDs(q, 2)
	if len(got) != 2 {
		t.Fatalf("popped %v", got)
	}
	seen := map[string]bool{got[0]: true, got[1]: true}
	if !seen["b2"] || !seen["a3"] {
		t.Fatalf("popped %v, want b2 and a3", got)
	}
}

func TestFairQueueRemoveLastOfTenantKeepsRotationValid(t *testing.T) {
	q := newFairQueue()
	q.push(qjob("a", 1, 0))
	q.push(qjob("b", 2, 0))
	q.push(qjob("c", 3, 0))
	// Advance the cursor past a, then remove b (the tenant at the
	// cursor): the rotation must stay in bounds.
	if j := q.pop(); j.ID != "a1" {
		t.Fatalf("pop = %v", j.ID)
	}
	if j := q.remove("b2"); j == nil {
		t.Fatal("remove(b2) = nil")
	}
	if j := q.pop(); j == nil || j.ID != "c3" {
		t.Fatalf("pop after remove = %v, want c3", j)
	}
	if q.len() != 0 {
		t.Fatalf("len = %d, want 0", q.len())
	}
}
