package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued: admitted, waiting for a worker slot. Evicted and
	// crash-recovered jobs return here.
	StateQueued State = "queued"
	// StateRunning: executing on the shared engine.
	StateRunning State = "running"
	// StateDone: finished; Result is set.
	StateDone State = "done"
	// StateFailed: the engine returned a non-eviction error.
	StateFailed State = "failed"
	// StateCancelled: removed by the client.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobResult is the durable outcome of a finished job.
type JobResult struct {
	// Error is the Boolean reconstruction error |X ⊕ X̂|.
	Error int64 `json:"error"`
	// RelativeError is Error normalized by |X|.
	RelativeError float64 `json:"relative_error"`
	// Iterations is the total alternating iterations executed, summed
	// across every slice the job ran in.
	Iterations int `json:"iterations"`
	// Converged reports whether the tolerance criterion stopped the run.
	Converged bool `json:"converged"`
	// FactorHash is the FNV-1a hash over the binary encodings of A, B
	// and C — the bit-identity fingerprint: an evicted-and-resumed job
	// must report the same hash as an uninterrupted run of its spec.
	FactorHash string `json:"factor_hash"`
	// SimNanos is the simulated cluster time of the last slice.
	SimNanos int64 `json:"sim_nanos"`
}

// Job is the server's record of one admitted factorization job. The
// mutable fields are guarded by the Server's mutex; every state
// transition is persisted crash-safely before it takes effect for
// clients.
type Job struct {
	// ID is the server-assigned identifier.
	ID string `json:"id"`
	// Seq is the admission sequence number; FIFO ties break on it.
	Seq int64 `json:"seq"`
	// Spec is the client's job description.
	Spec JobSpec `json:"spec"`
	// State is the lifecycle state.
	State State `json:"state"`
	// Evictions counts how many times the job was preempted at an
	// iteration boundary and requeued.
	Evictions int `json:"evictions,omitempty"`
	// Restarts counts recoveries from a server crash while running.
	Restarts int `json:"restarts,omitempty"`
	// TensorBytes is the admission memory estimate for the job.
	TensorBytes int64 `json:"tensor_bytes"`
	// Error is the failure message for StateFailed.
	Error string `json:"error,omitempty"`
	// Result is set once the job reaches StateDone.
	Result *JobResult `json:"result,omitempty"`
	// SubmittedNanos/StartedNanos/FinishedNanos are wall-clock
	// timestamps (UnixNano) of the first admission, first slice start,
	// and terminal transition.
	SubmittedNanos int64 `json:"submitted_nanos,omitempty"`
	StartedNanos   int64 `json:"started_nanos,omitempty"`
	FinishedNanos  int64 `json:"finished_nanos,omitempty"`

	// evict asks the running slice to stop at the next iteration
	// boundary; owned by the Server.
	evict bool
	// cancelReq marks a client-requested cancellation so the outcome
	// classifier can tell it apart from a drain-timeout cancel; owned by
	// the Server.
	cancelReq bool
	// cancel aborts the running slice's context; owned by the Server.
	cancel func()
}

// jobsDirName is the metadata directory under the server's data dir.
const jobsDirName = "jobs"

// jobPath returns the metadata file for a job ID.
func jobPath(dataDir, id string) string {
	return filepath.Join(dataDir, jobsDirName, id+".json")
}

// persistJob writes the job's metadata crash-safely: temp file, fsync,
// rename, directory fsync — the same discipline as the engine's
// checkpoint writer, so a crash leaves either the old record or the new
// one, never a torn file.
func persistJob(dataDir string, j *Job) error {
	dir := filepath.Join(dataDir, jobsDirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "job-*.tmp")
	if err != nil {
		return err
	}
	defer func() {
		// Best effort on the error paths; on success the rename consumed it.
		//dbtf:allow-unchecked cleanup of a temp file that may already be renamed away
		os.Remove(tmp.Name())
	}()
	if _, err := tmp.Write(data); err != nil {
		//dbtf:allow-unchecked write error is already being returned
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		//dbtf:allow-unchecked sync error is already being returned
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	final := jobPath(dataDir, j.ID)
	if err := os.Rename(tmp.Name(), final); err != nil {
		return err
	}
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := df.Sync(); err != nil {
		//dbtf:allow-unchecked close after a sync error that is already being returned
		df.Close()
		return err
	}
	return df.Close()
}

// loadJobs scans the metadata directory and returns every job sorted by
// admission sequence. Jobs recorded as running were interrupted by a
// crash: they are flipped back to queued (counting a restart) so the
// scheduler resumes them from their last checkpoint — the zero-lost-jobs
// invariant across restarts.
func loadJobs(dataDir string) ([]*Job, error) {
	dir := filepath.Join(dataDir, jobsDirName)
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var jobs []*Job
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			// Stray temp file from a crash mid-persist; the rename never
			// happened, so the previous record (if any) is authoritative.
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var j Job
		if err := json.Unmarshal(data, &j); err != nil {
			return nil, fmt.Errorf("serve: corrupt job record %s: %w", name, err)
		}
		if j.State == StateRunning {
			j.State = StateQueued
			j.Restarts++
			if err := persistJob(dataDir, &j); err != nil {
				return nil, err
			}
		}
		jobs = append(jobs, &j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Seq < jobs[b].Seq })
	return jobs, nil
}
