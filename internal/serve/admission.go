package serve

import (
	"fmt"
	"math"
	"time"
)

// AdmissionError is a typed rejection: the server sheds the request
// explicitly (HTTP 429 or 503) instead of degrading, and tells the
// client when to come back.
type AdmissionError struct {
	// Reason is a short machine-readable cause ("queue_full",
	// "tenant_quota", "memory_budget", "rate_limited", "draining").
	Reason string
	// RetryAfter is the suggested backoff before resubmitting.
	RetryAfter time.Duration
	// Detail is the human-readable explanation.
	Detail string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("serve: admission rejected (%s): %s", e.Reason, e.Detail)
}

// tokenBucket is a per-tenant rate limiter with an injectable clock.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// take refills the bucket at rate tokens/second up to burst, then takes
// one token. When the bucket is empty it returns false and the wait
// until the next token accrues.
func (b *tokenBucket) take(now time.Time, rate, burst float64) (bool, time.Duration) {
	if b.last.IsZero() {
		b.tokens = burst
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(burst, b.tokens+dt*rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if rate <= 0 {
		return false, time.Hour
	}
	need := 1 - b.tokens
	return false, time.Duration(math.Ceil(need / rate * float64(time.Second)))
}

// admissionState tracks everything the admit decision needs; guarded by
// the Server's mutex.
type admissionState struct {
	buckets map[string]*tokenBucket
	// memoryBytes is the sum of the tensor-size estimates of every
	// queued and running job: the explicit budget that replaces "grow
	// until OOM".
	memoryBytes int64
	// Shed counters by reason, for /v1/stats and the load report.
	shed map[string]int64
}

func newAdmissionState() *admissionState {
	return &admissionState{buckets: map[string]*tokenBucket{}, shed: map[string]int64{}}
}

func (a *admissionState) bucket(tenant string) *tokenBucket {
	b, ok := a.buckets[tenant]
	if !ok {
		b = &tokenBucket{}
		a.buckets[tenant] = b
	}
	return b
}

// admit decides whether one job may enter the queue. It is pure
// bookkeeping over the caller-held state: the Server calls it under its
// mutex with current queue depths and the job's memory estimate.
func (a *admissionState) admit(now time.Time, spec *JobSpec, cfg AdmissionConfig,
	queued, tenantQueued, running int, jobBytes int64) *AdmissionError {
	reject := func(reason string, retry time.Duration, format string, args ...any) *AdmissionError {
		a.shed[reason]++
		return &AdmissionError{Reason: reason, RetryAfter: retry, Detail: fmt.Sprintf(format, args...)}
	}
	if ok, wait := a.bucket(spec.Tenant).take(now, cfg.TenantRate, cfg.TenantBurst); !ok {
		return reject("rate_limited", wait,
			"tenant %q exceeds %.3g jobs/s (burst %.3g)", spec.Tenant, cfg.TenantRate, cfg.TenantBurst)
	}
	if total := queued + running; total >= cfg.MaxQueued {
		return reject("queue_full", cfg.RetryAfter,
			"%d jobs queued or running (limit %d)", total, cfg.MaxQueued)
	}
	if tenantQueued >= cfg.MaxQueuedPerTenant {
		return reject("tenant_quota", cfg.RetryAfter,
			"tenant %q has %d queued jobs (limit %d)", spec.Tenant, tenantQueued, cfg.MaxQueuedPerTenant)
	}
	if a.memoryBytes+jobBytes > cfg.MemoryBudget {
		return reject("memory_budget", cfg.RetryAfter,
			"job needs ~%d bytes, %d of %d budget in use", jobBytes, a.memoryBytes, cfg.MemoryBudget)
	}
	a.memoryBytes += jobBytes
	return nil
}

// releaseMemory returns a finished or cancelled job's estimate to the
// budget.
func (a *admissionState) releaseMemory(jobBytes int64) {
	a.memoryBytes -= jobBytes
	if a.memoryBytes < 0 {
		a.memoryBytes = 0
	}
}

// AdmissionConfig bounds the server's explicit budgets. Zero values
// select the defaults in withDefaults.
type AdmissionConfig struct {
	// MaxQueued bounds queued+running jobs across all tenants.
	MaxQueued int
	// MaxQueuedPerTenant bounds one tenant's queued jobs.
	MaxQueuedPerTenant int
	// MemoryBudget bounds the summed tensor-size estimates of queued and
	// running jobs, in bytes.
	MemoryBudget int64
	// TenantRate is the per-tenant admission rate in jobs/second.
	TenantRate float64
	// TenantBurst is the per-tenant burst allowance.
	TenantBurst float64
	// RetryAfter is the Retry-After hint for budget rejections.
	RetryAfter time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxQueued == 0 {
		c.MaxQueued = 1024
	}
	if c.MaxQueuedPerTenant == 0 {
		c.MaxQueuedPerTenant = 256
	}
	if c.MemoryBudget == 0 {
		c.MemoryBudget = 1 << 30
	}
	if c.TenantRate == 0 {
		c.TenantRate = 50
	}
	if c.TenantBurst == 0 {
		c.TenantBurst = 100
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	return c
}
