package serve

import (
	"encoding/json"
	"os"
	"sync"

	"dbtf/internal/trace"
)

// jsonlFileSink appends events to a per-job JSONL file, one unbuffered
// line per event so a follower reading the file sees progress live. The
// Tracer serializes Write calls; concurrent readers only ever observe
// whole lines because each event is a single write.
type jsonlFileSink struct {
	f   *os.File
	enc *json.Encoder
}

func newJSONLFileSink(path string) (*jsonlFileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &jsonlFileSink{f: f, enc: json.NewEncoder(f)}, nil
}

func (s *jsonlFileSink) Write(ev *trace.Event) error { return s.enc.Encode(ev) }

func (s *jsonlFileSink) Close() error { return s.f.Close() }

// progressSink is the in-memory branch of a job's trace tee: it folds
// the stream into the live progress numbers the job-status endpoint
// reports, without touching disk.
type progressSink struct {
	mu         sync.Mutex
	iterations int
	lastError  int64
	hasError   bool
	events     int64
}

// Progress is a job's live progress snapshot, folded from its trace
// stream.
type Progress struct {
	// Iterations is the number of completed iterations observed across
	// all slices.
	Iterations int `json:"iterations"`
	// LastError is the reconstruction error after the latest iteration;
	// meaningful when Iterations > 0.
	LastError int64 `json:"last_error"`
	// Events is the total trace events emitted for the job.
	Events int64 `json:"events"`
}

func (p *progressSink) Write(ev *trace.Event) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.events++
	if ev.Type == trace.IterationEnd {
		p.iterations++
		if ev.Error != nil {
			p.lastError = *ev.Error
			p.hasError = true
		}
	}
	return nil
}

func (p *progressSink) Close() error { return nil }

func (p *progressSink) snapshot() Progress {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Progress{Iterations: p.iterations, LastError: p.lastError, Events: p.events}
}
