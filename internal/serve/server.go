package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"dbtf/internal/boolmat"
	"dbtf/internal/cluster"
	"dbtf/internal/core"
	"dbtf/internal/tensor"
	"dbtf/internal/trace"
)

// Config configures a Server. Zero values select the documented
// defaults.
type Config struct {
	// DataDir is the durable root: job metadata, tensors, checkpoints,
	// and trace streams live under it. Required.
	DataDir string
	// MaxRunning bounds concurrently running jobs (worker slots).
	// Default 2.
	MaxRunning int
	// Machines is the simulated cluster size each job runs on.
	// Default 4.
	Machines int
	// ThreadsPerMachine is each job cluster's intra-task thread width.
	// Default 1.
	ThreadsPerMachine int
	// GateSlots bounds concurrently executing cluster tasks across all
	// running jobs — the host-CPU admission gate shared by every job's
	// cluster. Default GOMAXPROCS.
	GateSlots int
	// SliceIterations is the scheduler's timeslice: a running job that
	// has completed this many iterations in its current slice is
	// preempted (checkpoint + requeue) whenever other jobs are waiting,
	// so giant jobs cannot monopolize the worker slots. Negative
	// disables timeslicing; zero means the default 8.
	SliceIterations int
	// MaxTensorBytes bounds one tensor upload body. Default 64 MiB.
	MaxTensorBytes int64
	// DrainTimeout bounds the graceful drain: running jobs get this
	// long to reach an iteration boundary and checkpoint before their
	// contexts are cancelled. Default 30s.
	DrainTimeout time.Duration
	// Admission configures the explicit queue/memory/rate budgets.
	Admission AdmissionConfig
	// Now is the clock; injectable for deterministic admission tests.
	Now func() time.Time
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	if c.DataDir == "" {
		return c, errors.New("serve: Config.DataDir is required")
	}
	if c.MaxRunning == 0 {
		c.MaxRunning = 2
	}
	if c.Machines == 0 {
		c.Machines = 4
	}
	if c.ThreadsPerMachine == 0 {
		c.ThreadsPerMachine = 1
	}
	if c.GateSlots == 0 {
		c.GateSlots = runtime.GOMAXPROCS(0)
	}
	if c.SliceIterations == 0 {
		c.SliceIterations = 8
	}
	if c.MaxTensorBytes == 0 {
		c.MaxTensorBytes = 64 << 20
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 30 * time.Second
	}
	c.Admission = c.Admission.withDefaults()
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// Server is the factorization job server: admission, fair queueing,
// bounded execution, eviction, and crash-safe state. Create with New,
// expose with Handler, stop with Drain.
type Server struct {
	cfg   Config
	gate  *cluster.Gate
	store *tensorStore

	mu    sync.Mutex
	jobs  map[string]*Job //dbtf:guardedby mu
	queue *fairQueue      //dbtf:guardedby mu
	adm   *admissionState //dbtf:guardedby mu
	// seq is the next admission sequence number.
	//dbtf:guardedby mu
	seq int64
	// runningCount is the number of occupied worker slots.
	//dbtf:guardedby mu
	runningCount int
	//dbtf:guardedby mu
	draining bool
	// traces holds each job's tracer tee (durable JSONL + live
	// progress); entries persist after job completion for status reads.
	//dbtf:guardedby mu
	traces map[string]*jobTrace
	//dbtf:guardedby mu
	counters counters
	// idle is signalled whenever runningCount decreases.
	idle *sync.Cond
	wg   sync.WaitGroup
}

type jobTrace struct {
	tracer   *trace.Tracer
	progress *progressSink
}

type counters struct {
	admitted  int64
	completed int64
	failed    int64
	cancelled int64
	evictions int64
}

// New opens (or re-opens) a server over dataDir. Jobs recorded as
// queued or running by a previous process are requeued and resume from
// their checkpoints; nothing is lost across a crash or restart.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	store, err := openTensorStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		gate:   cluster.NewGate(cfg.GateSlots),
		store:  store,
		jobs:   map[string]*Job{},
		queue:  newFairQueue(),
		adm:    newAdmissionState(),
		traces: map[string]*jobTrace{},
	}
	s.idle = sync.NewCond(&s.mu)
	jobs, err := loadJobs(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range jobs {
		s.jobs[j.ID] = j
		if j.Seq >= s.seq {
			s.seq = j.Seq + 1
		}
		if j.State == StateQueued {
			s.queue.push(j)
			s.adm.memoryBytes += j.TensorBytes
		}
	}
	s.scheduleLocked()
	return s, nil
}

// PutTensor durably stores an uploaded tensor under id. IDs are
// immutable once taken: ErrTensorExists on reuse.
func (s *Server) PutTensor(id string, t *tensor.Tensor) error {
	if !validIdent(id) {
		return fmt.Errorf("serve: invalid tensor id %q", id)
	}
	return s.store.Put(id, t)
}

// TensorIDs lists the stored tensor IDs (unordered).
func (s *Server) TensorIDs() []string { return s.store.IDs() }

// Submit admits one job. On success the job is durably queued; on
// rejection the returned error is an *AdmissionError (shed, retryable)
// or a validation/not-found error.
func (s *Server) Submit(spec *JobSpec) (JobView, error) {
	if err := spec.Validate(); err != nil {
		return JobView{}, err
	}
	bytes, _, _, err := s.store.Info(spec.TensorID)
	if err != nil {
		return JobView{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Now()
	if s.draining {
		s.adm.shed["draining"]++
		return JobView{}, &AdmissionError{Reason: "draining", RetryAfter: 10 * time.Second,
			Detail: "server is draining; resubmit to its successor"}
	}
	if aerr := s.adm.admit(now, spec, s.cfg.Admission,
		s.queue.len(), s.queue.tenantLen(spec.Tenant), s.runningCount, bytes); aerr != nil {
		return JobView{}, aerr
	}
	j := &Job{
		ID:             fmt.Sprintf("j%08d", s.seq),
		Seq:            s.seq,
		Spec:           *spec,
		State:          StateQueued,
		TensorBytes:    bytes,
		SubmittedNanos: now.UnixNano(),
	}
	s.seq++
	if err := persistJob(s.cfg.DataDir, j); err != nil {
		s.adm.releaseMemory(bytes)
		return JobView{}, fmt.Errorf("serve: persisting job: %w", err)
	}
	s.jobs[j.ID] = j
	s.queue.push(j)
	s.counters.admitted++
	s.scheduleLocked()
	return s.viewLocked(j), nil
}

// scheduleLocked fills free worker slots from the fair queue. Caller
// holds s.mu.
func (s *Server) scheduleLocked() {
	for !s.draining && s.runningCount < s.cfg.MaxRunning {
		j := s.queue.pop()
		if j == nil {
			return
		}
		j.State = StateRunning
		j.evict = false
		j.cancelReq = false
		if j.StartedNanos == 0 {
			j.StartedNanos = s.cfg.Now().UnixNano()
		}
		if err := persistJob(s.cfg.DataDir, j); err != nil {
			s.failLocked(j, fmt.Errorf("persisting running state: %w", err))
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		s.runningCount++
		s.wg.Add(1)
		go s.runJob(ctx, j)
	}
}

// failLocked transitions a job to failed. Caller holds s.mu.
func (s *Server) failLocked(j *Job, err error) {
	j.State = StateFailed
	j.Error = err.Error()
	j.FinishedNanos = s.cfg.Now().UnixNano()
	s.adm.releaseMemory(j.TensorBytes)
	s.counters.failed++
	s.closeTraceLocked(j.ID)
	if perr := persistJob(s.cfg.DataDir, j); perr != nil {
		s.cfg.Logf("serve: persisting failed job %s: %v", j.ID, perr)
	}
}

// runJob executes one slice of a job and applies the outcome
// transition. Eviction (core.ErrPreempted) and drain cancellation
// requeue the job; everything else is terminal.
func (s *Server) runJob(ctx context.Context, j *Job) {
	defer s.wg.Done()
	res, err := s.runSlice(ctx, j)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.runningCount--
	j.cancel = nil
	now := s.cfg.Now().UnixNano()
	switch {
	case err == nil:
		j.State = StateDone
		_, nnz, _, _ := s.store.Info(j.Spec.TensorID)
		j.Result = buildResult(res, nnz)
		j.FinishedNanos = now
		s.adm.releaseMemory(j.TensorBytes)
		s.counters.completed++
		s.closeTraceLocked(j.ID)
	case errors.Is(err, core.ErrPreempted):
		j.State = StateQueued
		j.Evictions++
		s.counters.evictions++
		s.queue.push(j)
	case errors.Is(err, context.Canceled) && j.cancelReq:
		j.State = StateCancelled
		j.FinishedNanos = now
		s.adm.releaseMemory(j.TensorBytes)
		s.counters.cancelled++
		s.closeTraceLocked(j.ID)
	case errors.Is(err, context.Canceled):
		// Drain-timeout cancellation: the work since the last iteration
		// boundary is lost, but the checkpoint makes the resume
		// bit-identical, so the job just goes back in the queue.
		j.State = StateQueued
		s.queue.push(j)
	default:
		j.State = StateFailed
		j.Error = err.Error()
		j.FinishedNanos = now
		s.adm.releaseMemory(j.TensorBytes)
		s.counters.failed++
		s.closeTraceLocked(j.ID)
	}
	if perr := persistJob(s.cfg.DataDir, j); perr != nil {
		s.cfg.Logf("serve: persisting job %s after slice: %v", j.ID, perr)
	}
	s.idle.Broadcast()
	s.scheduleLocked()
}

// runSlice runs the job on a fresh cluster until completion, eviction,
// or cancellation. Resume is always on: the first slice finds no
// checkpoint and starts fresh; later slices continue bit-identically.
func (s *Server) runSlice(ctx context.Context, j *Job) (*core.Result, error) {
	x, err := s.store.Get(j.Spec.TensorID)
	if err != nil {
		return nil, err
	}
	tracer := s.traceFor(j.ID)
	cl := cluster.New(cluster.Config{
		Machines:          s.cfg.Machines,
		ThreadsPerMachine: s.cfg.ThreadsPerMachine,
		Gate:              s.gate,
		Tracer:            tracer,
	})
	ckdir := filepath.Join(s.cfg.DataDir, "checkpoints", j.ID)
	if err := os.MkdirAll(ckdir, 0o755); err != nil {
		return nil, err
	}
	sliceIters := 0
	return core.Decompose(ctx, x, cl, core.Options{
		Rank:            j.Spec.Rank,
		MaxIter:         j.Spec.MaxIter,
		MinIter:         j.Spec.MinIter,
		InitialSets:     j.Spec.InitialSets,
		Init:            j.Spec.InitScheme(),
		Tolerance:       j.Spec.Tolerance,
		Seed:            j.Spec.Seed,
		CheckpointDir:   ckdir,
		CheckpointEvery: 1,
		Resume:          true,
		Preempt: func() bool {
			sliceIters++
			if s.evictRequested(j) {
				return true
			}
			return s.cfg.SliceIterations > 0 && sliceIters >= s.cfg.SliceIterations && s.queuedLen() > 0
		},
	})
}

func (s *Server) evictRequested(j *Job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.evict
}

func (s *Server) queuedLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.len()
}

// traceFor returns the job's tracer, creating the durable
// JSONL-file + live-progress tee on first use. One tracer spans all of
// a job's slices within a server process, so sequence numbers stay
// strictly increasing across evictions; a restarted server appends a
// fresh stream to the same file. Tracing is best-effort: on sink errors
// the job runs untraced.
func (s *Server) traceFor(id string) *trace.Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if jt, ok := s.traces[id]; ok {
		return jt.tracer
	}
	dir := filepath.Join(s.cfg.DataDir, "traces")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.cfg.Logf("serve: trace dir: %v", err)
		return nil
	}
	sink, err := newJSONLFileSink(tracePath(s.cfg.DataDir, id))
	if err != nil {
		s.cfg.Logf("serve: trace sink for %s: %v", id, err)
		return nil
	}
	prog := &progressSink{}
	jt := &jobTrace{tracer: trace.New(trace.NewTee(sink, prog)), progress: prog}
	s.traces[id] = jt
	return jt.tracer
}

// tracePath is the durable JSONL stream for a job.
func tracePath(dataDir, id string) string {
	return filepath.Join(dataDir, "traces", id+".jsonl")
}

// closeTraceLocked flushes and closes a terminal job's trace stream;
// the progress snapshot stays readable. Caller holds s.mu.
func (s *Server) closeTraceLocked(id string) {
	if jt, ok := s.traces[id]; ok && jt.tracer != nil {
		if err := jt.tracer.Close(); err != nil {
			s.cfg.Logf("serve: closing trace for %s: %v", id, err)
		}
		jt.tracer = nil
	}
}

// buildResult folds a finished slice's engine result into the durable
// job result, including the bit-identity factor hash.
func buildResult(res *core.Result, nnz int) *JobResult {
	jr := &JobResult{
		Error:      res.Error,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		FactorHash: FactorHash(res.A, res.B, res.C),
		SimNanos:   res.SimTime.Nanoseconds(),
	}
	if nnz > 0 {
		jr.RelativeError = float64(res.Error) / float64(nnz)
	}
	return jr
}

// FactorHash is the bit-identity fingerprint of a factor triple: FNV-1a
// over the binary encodings of A, B, C. Two runs agree on it iff their
// factors are bit-for-bit identical.
func FactorHash(a, b, c *boolmat.FactorMatrix) string {
	h := fnv.New64a()
	var buf []byte
	for _, m := range []*boolmat.FactorMatrix{a, b, c} {
		buf = m.AppendBinary(buf[:0])
		//dbtf:allow-unchecked hash.Hash Write never errors
		h.Write(buf)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Evict asks a running job to stop at its next iteration boundary and
// requeue; queued jobs are untouched (they are already preemptible).
func (s *Server) Evict(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("serve: no job %q", id)
	}
	if j.State != StateRunning {
		return fmt.Errorf("serve: job %q is %s, not running", id, j.State)
	}
	j.evict = true
	return nil
}

// Cancel removes a job: queued jobs leave the queue immediately,
// running jobs are cancelled mid-slice. Terminal jobs error.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("serve: no job %q", id)
	}
	switch j.State {
	case StateQueued:
		s.queue.remove(id)
		j.State = StateCancelled
		j.FinishedNanos = s.cfg.Now().UnixNano()
		s.adm.releaseMemory(j.TensorBytes)
		s.counters.cancelled++
		s.closeTraceLocked(id)
		if err := persistJob(s.cfg.DataDir, j); err != nil {
			return err
		}
		return nil
	case StateRunning:
		j.cancelReq = true
		if j.cancel != nil {
			j.cancel()
		}
		return nil
	default:
		return fmt.Errorf("serve: job %q already %s", id, j.State)
	}
}

// Drain gracefully stops the server: admission turns 503, running jobs
// are evicted at their next iteration boundary (checkpointing first),
// and jobs that miss the DrainTimeout are cancelled — their checkpoints
// still make the next start resume bit-identically. After Drain returns
// every job is durably queued or terminal: zero lost jobs.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	for _, j := range s.jobs {
		if j.State == StateRunning {
			j.evict = true
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.runningCount > 0 {
			s.idle.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.cfg.Logf("serve: drain timeout after %v; cancelling stragglers", s.cfg.DrainTimeout)
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.State == StateRunning && j.cancel != nil {
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done // cancellation is observed between stages; this is bounded
	}
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range s.traces {
		s.closeTraceLocked(id)
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// JobView is a torn-free snapshot of a job for clients.
type JobView struct {
	Job
	// Progress is the live trace-folded progress, when the job has
	// emitted any events this server lifetime.
	Progress *Progress `json:"progress,omitempty"`
}

// viewLocked snapshots a job. Caller holds s.mu.
func (s *Server) viewLocked(j *Job) JobView {
	v := JobView{Job: *j}
	v.cancel = nil
	if jt, ok := s.traces[j.ID]; ok {
		p := jt.progress.snapshot()
		v.Progress = &p
	}
	return v
}

// JobByID returns a snapshot of one job.
func (s *Server) JobByID(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return s.viewLocked(j), true
}

// JobList returns snapshots of every job, oldest first. tenant, when
// non-empty, filters.
func (s *Server) JobList(tenant string) []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		if tenant != "" && j.Spec.Tenant != tenant {
			continue
		}
		views = append(views, s.viewLocked(j))
	}
	sort.Slice(views, func(a, b int) bool { return views[a].Seq < views[b].Seq })
	return views
}

// Stats is the server's operational snapshot for /v1/stats.
type Stats struct {
	Queued       int              `json:"queued"`
	Running      int              `json:"running"`
	Admitted     int64            `json:"admitted"`
	Completed    int64            `json:"completed"`
	Failed       int64            `json:"failed"`
	Cancelled    int64            `json:"cancelled"`
	Evictions    int64            `json:"evictions"`
	Shed         map[string]int64 `json:"shed,omitempty"`
	MemoryBytes  int64            `json:"memory_bytes"`
	MemoryBudget int64            `json:"memory_budget"`
	Draining     bool             `json:"draining"`
}

// StatsSnapshot returns the current operational counters.
func (s *Server) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	shed := make(map[string]int64, len(s.adm.shed))
	for k, v := range s.adm.shed {
		shed[k] = v
	}
	return Stats{
		Queued:       s.queue.len(),
		Running:      s.runningCount,
		Admitted:     s.counters.admitted,
		Completed:    s.counters.completed,
		Failed:       s.counters.failed,
		Cancelled:    s.counters.cancelled,
		Evictions:    s.counters.evictions,
		Shed:         shed,
		MemoryBytes:  s.adm.memoryBytes,
		MemoryBudget: s.cfg.Admission.MemoryBudget,
		Draining:     s.draining,
	}
}
