package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestTraceFollowEndsOnDrain pins the drain/follow interaction: Drain
// evicts running jobs back to queued — never terminal — so a ?follow=1
// tail waiting for terminality would spin forever and pin the HTTP
// server's shutdown past its deadline. The follower must end once the
// server is draining.
func TestTraceFollowEndsOnDrain(t *testing.T) {
	s := testServer(t, func(cfg *Config) {
		cfg.MaxRunning = 1
	})
	if err := s.PutTensor("x1", testTensor(7)); err != nil {
		t.Fatal(err)
	}
	// The hog occupies the single slot so the followed job stays queued
	// (no terminal transition can end the tail on its own).
	hogSpec := baseSpec("x1")
	hogSpec.MaxIter = 500
	hogSpec.MinIter = 500
	hog, err := s.Submit(hogSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, hog.ID, func(v JobView) bool { return v.State == StateRunning }, "hog running")
	queued, err := s.Submit(baseSpec("x1"))
	if err != nil {
		t.Fatal(err)
	}

	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	type result struct {
		status int
		err    error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(hs.URL + "/v1/jobs/" + queued.ID + "/trace?follow=1")
		if err != nil {
			got <- result{err: err}
			return
		}
		_, err = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got <- result{status: resp.StatusCode, err: err}
	}()

	// Let the follower reach its polling loop before draining.
	time.Sleep(250 * time.Millisecond)
	select {
	case r := <-got:
		t.Fatalf("follower ended before drain: %+v", r)
	default:
	}
	s.Drain()

	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("follow request failed: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("follow status = %d, want 200", r.status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("?follow=1 tail did not end after Drain; it would pin HTTP shutdown")
	}

	// The followed job survived the drain as a queued (not lost) job.
	v, ok := s.JobByID(queued.ID)
	if !ok || v.State != StateQueued {
		t.Fatalf("followed job after drain: ok=%v state=%v, want queued", ok, v.State)
	}
}
