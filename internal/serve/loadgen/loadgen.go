// Package loadgen drives a dbtf-serve instance through its HTTP API
// with a seeded open-loop workload — many small jobs across competing
// tenants, a few giant ones, an over-quota tenant, and chaotic forced
// evictions — then verifies the service invariants: every admitted job
// reaches a terminal state (zero lost jobs), over-budget submissions
// are shed with 429/503 instead of degrading the server, and
// evicted-and-resumed jobs produce factors bit-identical to a local
// uninterrupted run of the same spec.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"dbtf/internal/cluster"
	"dbtf/internal/core"
	"dbtf/internal/gen"
	"dbtf/internal/serve"
	"dbtf/internal/tensor"
)

// Scenario is a seeded workload description. The same scenario
// generates the same tensors, specs, and arrival schedule.
type Scenario struct {
	// Seed drives every random choice in the workload.
	Seed int64
	// Tenants is the number of well-behaved tenants.
	Tenants int
	// SmallJobs is the total number of small jobs across those tenants.
	SmallJobs int
	// GiantJobs is the number of giant jobs (bigger tensor, more
	// iterations) mixed into the workload.
	GiantJobs int
	// OverQuota adds one extra tenant that submits far above its rate
	// limit; its sheds exercise the 429 path.
	OverQuota bool
	// MeanArrival is the mean inter-arrival gap per tenant goroutine in
	// the open loop. Zero means 2ms.
	MeanArrival time.Duration
	// EvictInterval is the chaos cadence: every interval one random
	// running job is forcibly evicted. Zero disables chaos.
	EvictInterval time.Duration
	// Machines must match the server's cluster size so the local
	// bit-identity verification reproduces the service's runs.
	Machines int
	// VerifySample bounds how many completed jobs are re-run locally for
	// bit-identity (evicted jobs are verified first). Zero means 8.
	VerifySample int
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Tenants == 0 {
		sc.Tenants = 4
	}
	if sc.MeanArrival == 0 {
		sc.MeanArrival = 2 * time.Millisecond
	}
	if sc.Machines == 0 {
		sc.Machines = 2
	}
	if sc.VerifySample == 0 {
		sc.VerifySample = 8
	}
	return sc
}

// TenantStats is one tenant's slice of the report.
type TenantStats struct {
	Submitted int
	Admitted  int
	Shed      int
	Completed int
	Evictions int
}

// Report is the outcome of one scenario run.
type Report struct {
	Tenants map[string]*TenantStats
	// Lost counts admitted jobs that never reached a terminal state —
	// the invariant is that this is always zero.
	Lost int
	// Failed counts jobs that ended in the failed state.
	Failed int
	// Verified and VerifyMismatches count the local bit-identity checks.
	Verified         int
	VerifyMismatches int
	// Latency quantiles over submit→done, and total throughput.
	LatencyP50, LatencyP95, LatencyMax time.Duration
	Elapsed                            time.Duration
	Throughput                         float64 // completed jobs/sec
	// Jain is Jain's fairness index over the well-behaved tenants'
	// completed-job counts: 1.0 is perfectly fair, 1/n is maximally
	// unfair.
	Jain float64
	// Evictions is the total forced+timeslice preemptions observed.
	Evictions int
}

// Markdown renders the report as a table for EXPERIMENTS.md.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "| tenant | submitted | admitted | shed (429) | completed | evictions |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|\n")
	names := make([]string, 0, len(r.Tenants))
	for name := range r.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := r.Tenants[name]
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d |\n",
			name, ts.Submitted, ts.Admitted, ts.Shed, ts.Completed, ts.Evictions)
	}
	fmt.Fprintf(&b, "\n| metric | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| lost jobs | %d |\n", r.Lost)
	fmt.Fprintf(&b, "| failed jobs | %d |\n", r.Failed)
	fmt.Fprintf(&b, "| latency p50 / p95 / max | %v / %v / %v |\n",
		r.LatencyP50.Round(time.Millisecond), r.LatencyP95.Round(time.Millisecond), r.LatencyMax.Round(time.Millisecond))
	fmt.Fprintf(&b, "| throughput | %.1f jobs/s |\n", r.Throughput)
	fmt.Fprintf(&b, "| Jain fairness (well-behaved tenants) | %.3f |\n", r.Jain)
	fmt.Fprintf(&b, "| bit-identity checks | %d verified, %d mismatches |\n", r.Verified, r.VerifyMismatches)
	return b.String()
}

// jobRecord tracks one submission end to end.
type jobRecord struct {
	id        string
	tenant    string
	spec      serve.JobSpec
	submitted time.Time
	finished  time.Time
	state     serve.State
	evictions int
}

// Runner executes a scenario against a server's base URL. The server
// may be drained and restarted (on a different address) between
// SubmitAll and AwaitCompletion — that is the point.
type Runner struct {
	sc     Scenario
	client *http.Client
	logf   func(string, ...any)

	mu      sync.Mutex
	records map[string]*jobRecord //dbtf:guardedby mu
	shed    map[string]int        //dbtf:guardedby mu
	tensors map[string]*tensor.Tensor
	start   time.Time
}

// New builds a runner for the scenario.
func New(sc Scenario, logf func(string, ...any)) *Runner {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Runner{
		sc:      sc.withDefaults(),
		client:  &http.Client{Timeout: 30 * time.Second},
		logf:    logf,
		records: map[string]*jobRecord{},
		shed:    map[string]int{},
		tensors: map[string]*tensor.Tensor{},
	}
}

// tensorID returns the workload's tensor names: a few small planted
// tensors plus one giant.
func (r *Runner) buildTensors() {
	rng := rand.New(rand.NewSource(r.sc.Seed))
	for i := 0; i < 3; i++ {
		x, _, _, _ := gen.FromFactors(rng, 12, 10, 8, 3, 0.3)
		r.tensors[fmt.Sprintf("small%d", i)] = x
	}
	giant, _, _, _ := gen.FromFactors(rng, 40, 36, 30, 6, 0.2)
	r.tensors["giant"] = giant
}

// UploadTensors pushes the workload tensors to the server.
func (r *Runner) UploadTensors(baseURL string) error {
	if len(r.tensors) == 0 {
		r.buildTensors()
	}
	for id, x := range r.tensors {
		var body bytes.Buffer
		if err := x.WriteBinary(&body); err != nil {
			return err
		}
		resp, err := r.client.Post(baseURL+"/v1/tensors/"+id, "application/octet-stream", &body)
		if err != nil {
			return fmt.Errorf("loadgen: uploading %s: %w", id, err)
		}
		drainClose(resp)
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
			return fmt.Errorf("loadgen: uploading %s: HTTP %d", id, resp.StatusCode)
		}
	}
	return nil
}

// specFor builds the i-th job's spec deterministically from the seed.
func (r *Runner) specFor(rng *rand.Rand, tenant string, giant bool) serve.JobSpec {
	if giant {
		return serve.JobSpec{
			Tenant: tenant, TensorID: "giant", Rank: 6,
			MaxIter: 10, MinIter: 10, Seed: rng.Int63n(1 << 30),
		}
	}
	spec := serve.JobSpec{
		Tenant:   tenant,
		TensorID: fmt.Sprintf("small%d", rng.Intn(3)),
		Rank:     3,
		MaxIter:  4 + rng.Intn(4),
		MinIter:  2,
		Seed:     rng.Int63n(1 << 30),
		Priority: rng.Intn(5),
	}
	// A third of the small jobs exercise the deterministic topfiber init,
	// so eviction/resume and the local rerun verify both init paths. The
	// draw stays on the same rng stream so the schedule is reproducible.
	if rng.Intn(3) == 0 {
		spec.Init = "topfiber"
	}
	return spec
}

// SubmitAll runs the open-loop arrival phase: each tenant submits its
// share on a seeded schedule without waiting for completions, the
// over-quota tenant (if any) hammers the rate limit, and the chaos
// goroutine force-evicts random running jobs. It returns when every
// arrival has been attempted.
func (r *Runner) SubmitAll(ctx context.Context, baseURL string) error {
	if len(r.tensors) == 0 {
		return fmt.Errorf("loadgen: UploadTensors first")
	}
	r.start = time.Now()
	stopChaos := make(chan struct{})
	var chaosWG sync.WaitGroup
	if r.sc.EvictInterval > 0 {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			r.chaos(ctx, baseURL, stopChaos)
		}()
	}

	var wg sync.WaitGroup
	errc := make(chan error, r.sc.Tenants+1)
	perTenant := r.sc.SmallJobs / r.sc.Tenants
	for ti := 0; ti < r.sc.Tenants; ti++ {
		tenant := fmt.Sprintf("tenant%d", ti)
		n := perTenant
		if ti == 0 {
			n += r.sc.SmallJobs % r.sc.Tenants
		}
		giants := 0
		if r.sc.Tenants > 0 {
			giants = r.sc.GiantJobs / r.sc.Tenants
			if ti < r.sc.GiantJobs%r.sc.Tenants {
				giants++
			}
		}
		wg.Add(1)
		go func(ti int, tenant string, n, giants int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.sc.Seed + int64(ti)*7919))
			for i := 0; i < n+giants; i++ {
				if ctx.Err() != nil {
					return
				}
				spec := r.specFor(rng, tenant, i >= n)
				if err := r.submit(baseURL, spec); err != nil {
					errc <- err
					return
				}
				gap := time.Duration(rng.ExpFloat64() * float64(r.sc.MeanArrival))
				select {
				case <-time.After(gap):
				case <-ctx.Done():
					return
				}
			}
		}(ti, tenant, n, giants)
	}
	if r.sc.OverQuota {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.sc.Seed + 104729))
			// Submit a burst far above any sane rate with no pacing; most
			// of these must shed.
			for i := 0; i < 3*r.sc.SmallJobs/2+10; i++ {
				if ctx.Err() != nil {
					return
				}
				if err := r.submit(baseURL, r.specFor(rng, "hog", false)); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stopChaos)
	chaosWG.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// submit posts one spec and records the outcome. Admission sheds
// (429/503) are expected outcomes, not errors.
func (r *Runner) submit(baseURL string, spec serve.JobSpec) error {
	body, err := json.Marshal(&spec)
	if err != nil {
		return err
	}
	resp, err := r.client.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("loadgen: submit: %w", err)
	}
	defer drainClose(resp)
	r.mu.Lock()
	defer r.mu.Unlock()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var view struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&view); err != nil {
			return fmt.Errorf("loadgen: decoding submit response: %w", err)
		}
		r.records[view.ID] = &jobRecord{
			id: view.ID, tenant: spec.Tenant, spec: spec, submitted: time.Now(),
		}
		return nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		r.shed[spec.Tenant]++
		if resp.Header.Get("Retry-After") == "" {
			return fmt.Errorf("loadgen: %d response without Retry-After", resp.StatusCode)
		}
		return nil
	default:
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("loadgen: submit: HTTP %d: %s", resp.StatusCode, data)
	}
}

// chaos periodically evicts one random running job.
func (r *Runner) chaos(ctx context.Context, baseURL string, stop <-chan struct{}) {
	rng := rand.New(rand.NewSource(r.sc.Seed ^ 0x5ca1ab1e))
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-time.After(r.sc.EvictInterval):
		}
		ids := r.jobIDs()
		if len(ids) == 0 {
			continue
		}
		id := ids[rng.Intn(len(ids))]
		resp, err := r.client.Post(baseURL+"/v1/jobs/"+id+"/evict", "", nil)
		if err != nil {
			continue // server may be restarting; chaos is best-effort
		}
		drainClose(resp)
	}
}

func (r *Runner) jobIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.records))
	for id := range r.records {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// AwaitCompletion polls until every admitted job is terminal. baseURL
// may differ from the submission URL when the server was drained and
// restarted in between.
func (r *Runner) AwaitCompletion(ctx context.Context, baseURL string) error {
	for {
		pending := 0
		for _, id := range r.jobIDs() {
			r.mu.Lock()
			rec := r.records[id]
			done := rec.state.Terminal()
			r.mu.Unlock()
			if done {
				continue
			}
			view, err := r.fetchJob(baseURL, id)
			if err != nil {
				return err
			}
			r.mu.Lock()
			rec.state = view.State
			rec.evictions = view.Evictions
			if view.State.Terminal() {
				rec.finished = time.Now()
			} else {
				pending++
			}
			r.mu.Unlock()
		}
		if pending == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("loadgen: %d jobs still pending: %w", pending, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

type jobView struct {
	ID        string       `json:"id"`
	State     serve.State  `json:"state"`
	Evictions int          `json:"evictions"`
	Result    *serveResult `json:"result"`
}

type serveResult struct {
	Error      int64  `json:"error"`
	FactorHash string `json:"factor_hash"`
}

func (r *Runner) fetchJob(baseURL, id string) (*jobView, error) {
	resp, err := r.client.Get(baseURL + "/v1/jobs/" + id)
	if err != nil {
		return nil, fmt.Errorf("loadgen: fetching job %s: %w", id, err)
	}
	defer drainClose(resp)
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("loadgen: job %s LOST: server no longer knows it", id)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: fetching job %s: HTTP %d", id, resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Verify re-runs a sample of completed jobs locally — uninterrupted, on
// an identically-sized cluster — and compares factor hashes. Jobs that
// were evicted or restarted are sampled first: they are exactly the
// ones whose resume path must be bit-identical.
func (r *Runner) Verify(baseURL string) (verified, mismatches int, err error) {
	ids := r.jobIDs()
	r.mu.Lock()
	sort.SliceStable(ids, func(a, b int) bool {
		return r.records[ids[a]].evictions > r.records[ids[b]].evictions
	})
	r.mu.Unlock()
	for _, id := range ids {
		if verified >= r.sc.VerifySample {
			break
		}
		r.mu.Lock()
		rec := r.records[id]
		r.mu.Unlock()
		if rec.state != serve.StateDone {
			continue
		}
		view, ferr := r.fetchJob(baseURL, id)
		if ferr != nil {
			return verified, mismatches, ferr
		}
		if view.Result == nil {
			return verified, mismatches, fmt.Errorf("loadgen: done job %s has no result", id)
		}
		x := r.tensors[rec.spec.TensorID]
		cl := cluster.New(cluster.Config{Machines: r.sc.Machines})
		res, derr := core.Decompose(context.Background(), x, cl, core.Options{
			Rank:        rec.spec.Rank,
			MaxIter:     rec.spec.MaxIter,
			MinIter:     rec.spec.MinIter,
			InitialSets: rec.spec.InitialSets,
			Init:        rec.spec.InitScheme(),
			Tolerance:   rec.spec.Tolerance,
			Seed:        rec.spec.Seed,
		})
		if derr != nil {
			return verified, mismatches, fmt.Errorf("loadgen: local rerun of %s: %w", id, derr)
		}
		want := serve.FactorHash(res.A, res.B, res.C)
		if want != view.Result.FactorHash {
			mismatches++
			r.logf("loadgen: job %s (evictions %d): service hash %s != local uninterrupted %s",
				id, rec.evictions, view.Result.FactorHash, want)
		}
		verified++
	}
	return verified, mismatches, nil
}

// Report assembles the final numbers. Call after AwaitCompletion (and
// optionally Verify, passing its results).
func (r *Runner) Report(verified, mismatches int) *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		Tenants:          map[string]*TenantStats{},
		Verified:         verified,
		VerifyMismatches: mismatches,
		Elapsed:          time.Since(r.start),
	}
	tenant := func(name string) *TenantStats {
		ts, ok := rep.Tenants[name]
		if !ok {
			ts = &TenantStats{}
			rep.Tenants[name] = ts
		}
		return ts
	}
	var latencies []time.Duration
	completedPerTenant := map[string]int{}
	for _, rec := range r.records {
		ts := tenant(rec.tenant)
		ts.Submitted++
		ts.Admitted++
		ts.Evictions += rec.evictions
		rep.Evictions += rec.evictions
		switch rec.state {
		case serve.StateDone:
			ts.Completed++
			completedPerTenant[rec.tenant]++
			latencies = append(latencies, rec.finished.Sub(rec.submitted))
		case serve.StateFailed:
			rep.Failed++
		case serve.StateCancelled:
		default:
			rep.Lost++
		}
	}
	for name, n := range r.shed {
		ts := tenant(name)
		ts.Submitted += n
		ts.Shed += n
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		rep.LatencyP50 = latencies[len(latencies)/2]
		rep.LatencyP95 = latencies[len(latencies)*95/100]
		rep.LatencyMax = latencies[len(latencies)-1]
		rep.Throughput = float64(len(latencies)) / rep.Elapsed.Seconds()
	}
	// Jain's index over the well-behaved tenants (the hog is excluded:
	// its sheds are the rate limiter working, not unfairness).
	var xs []float64
	for ti := 0; ti < r.sc.Tenants; ti++ {
		xs = append(xs, float64(completedPerTenant[fmt.Sprintf("tenant%d", ti)]))
	}
	rep.Jain = jain(xs)
	return rep
}

// jain computes Jain's fairness index (Σx)² / (n·Σx²).
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// drainClose discards the rest of a response body and closes it so the
// client connection can be reused.
func drainClose(resp *http.Response) {
	//dbtf:allow-unchecked best-effort body drain for connection reuse
	io.CopyN(io.Discard, resp.Body, 1<<20)
	//dbtf:allow-unchecked closing a fully-read response body
	resp.Body.Close()
}
