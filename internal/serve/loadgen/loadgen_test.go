package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"dbtf/internal/serve"
)

// TestScenarioWithDrainRestart runs a compact chaos scenario entirely
// in-process: open-loop submissions with forced evictions, a mid-flight
// drain + restart over the same data dir, then completion, zero-lost
// verification, and bit-identity sampling.
func TestScenarioWithDrainRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	cfg := serve.Config{
		DataDir:         dir,
		MaxRunning:      2,
		Machines:        2,
		SliceIterations: 3,
		DrainTimeout:    20 * time.Second,
		// Burst covers one well-behaved tenant's share (~9 jobs); the
		// unpaced hog must blow through it and shed.
		Admission: serve.AdmissionConfig{
			TenantRate:  5,
			TenantBurst: 12,
		},
	}
	start := func() (*serve.Server, *httptest.Server) {
		s, err := serve.New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s, httptest.NewServer(s.Handler())
	}

	sc := Scenario{
		Seed:          7,
		Tenants:       3,
		SmallJobs:     24,
		GiantJobs:     1,
		OverQuota:     true,
		EvictInterval: 10 * time.Millisecond,
		Machines:      2,
		VerifySample:  4,
	}
	runner := New(sc, t.Logf)

	s1, hs1 := start()
	if err := runner.UploadTensors(hs1.URL); err != nil {
		t.Fatalf("UploadTensors: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := runner.SubmitAll(ctx, hs1.URL); err != nil {
		t.Fatalf("SubmitAll: %v", err)
	}
	s1.Drain()
	hs1.Close()

	s2, hs2 := start()
	defer func() { s2.Drain(); hs2.Close() }()
	if err := runner.AwaitCompletion(ctx, hs2.URL); err != nil {
		t.Fatalf("AwaitCompletion: %v", err)
	}
	verified, mismatches, err := runner.Verify(hs2.URL)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	rep := runner.Report(verified, mismatches)
	t.Logf("report:\n%s", rep.Markdown())
	if rep.Lost != 0 {
		t.Fatalf("lost jobs = %d, want 0", rep.Lost)
	}
	if rep.Failed != 0 {
		t.Fatalf("failed jobs = %d, want 0", rep.Failed)
	}
	if mismatches != 0 {
		t.Fatalf("bit-identity mismatches = %d", mismatches)
	}
	if verified == 0 {
		t.Fatal("no jobs verified")
	}
	// The hog must have been shed at least once; well-behaved tenants
	// should complete everything they submitted.
	hog := rep.Tenants["hog"]
	if hog == nil || hog.Shed == 0 {
		t.Fatalf("hog stats = %+v, want sheds", hog)
	}
	if rep.Jain < 0.5 {
		t.Fatalf("Jain fairness = %.3f, implausibly unfair", rep.Jain)
	}
}

func TestJainIndex(t *testing.T) {
	if got := jain([]float64{5, 5, 5}); got < 0.999 {
		t.Fatalf("equal shares: jain = %v", got)
	}
	if got := jain([]float64{9, 0, 0}); got > 0.34 {
		t.Fatalf("one-tenant monopoly: jain = %v", got)
	}
	if got := jain(nil); got != 1 {
		t.Fatalf("empty: jain = %v", got)
	}
}
