package serve

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"dbtf/internal/core"
	"dbtf/internal/tensor"
)

func TestDecodeJobSpecValid(t *testing.T) {
	spec, err := DecodeJobSpec(strings.NewReader(
		`{"tenant":"acme","tensor_id":"t1","rank":4,"max_iter":20,"seed":7,"priority":-3}`))
	if err != nil {
		t.Fatalf("DecodeJobSpec: %v", err)
	}
	if spec.Tenant != "acme" || spec.TensorID != "t1" || spec.Rank != 4 ||
		spec.MaxIter != 20 || spec.Seed != 7 || spec.Priority != -3 {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestDecodeJobSpecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"tenant":"a","tensor_id":"t","rank":2,"rnak":3}`,
		"missing tenant":   `{"tensor_id":"t","rank":2}`,
		"bad tenant chars": `{"tenant":"a b","tensor_id":"t","rank":2}`,
		"rank zero":        `{"tenant":"a","tensor_id":"t","rank":0}`,
		"rank too big":     `{"tenant":"a","tensor_id":"t","rank":65}`,
		"trailing data":    `{"tenant":"a","tensor_id":"t","rank":2}{"again":1}`,
		"negative iter":    `{"tenant":"a","tensor_id":"t","rank":2,"max_iter":-1}`,
		"huge priority":    `{"tenant":"a","tensor_id":"t","rank":2,"priority":1000}`,
		"unknown init":     `{"tenant":"a","tensor_id":"t","rank":2,"init":"bogus"}`,
		"topfiber + sets":  `{"tenant":"a","tensor_id":"t","rank":2,"init":"topfiber","initial_sets":4}`,
		"not json":         `rank=2`,
		"empty":            ``,
	}
	for name, body := range cases {
		if _, err := DecodeJobSpec(strings.NewReader(body)); err == nil {
			t.Errorf("%s: DecodeJobSpec accepted %q", name, body)
		}
	}
}

func TestJobSpecInitScheme(t *testing.T) {
	for body, want := range map[string]core.InitScheme{
		`{"tenant":"a","tensor_id":"t","rank":2}`:                   core.InitFiberSample,
		`{"tenant":"a","tensor_id":"t","rank":2,"init":"fiber"}`:    core.InitFiberSample,
		`{"tenant":"a","tensor_id":"t","rank":2,"init":"random"}`:   core.InitRandom,
		`{"tenant":"a","tensor_id":"t","rank":2,"init":"topfiber"}`: core.InitTopFiber,
	} {
		spec, err := DecodeJobSpec(strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", body, err)
		}
		if got := spec.InitScheme(); got != want {
			t.Errorf("%s: InitScheme() = %v, want %v", body, got, want)
		}
	}
}

func TestDecodeJobSpecBoundsBody(t *testing.T) {
	// An endless body must be rejected after at most MaxSpecBytes+1
	// bytes, not buffered.
	huge := strings.NewReader(`{"tenant":"` + strings.Repeat("a", 1<<20) + `"}`)
	if _, err := DecodeJobSpec(huge); err == nil {
		t.Fatal("accepted oversized spec")
	}
	if read := int(huge.Size()) - huge.Len(); read > MaxSpecBytes+1 {
		t.Fatalf("consumed %d bytes, cap is %d", read, MaxSpecBytes+1)
	}
}

func TestDecodeTensorBothFormats(t *testing.T) {
	x := tensor.MustFromCoords(3, 4, 5, []tensor.Coord{{I: 0, J: 1, K: 2}, {I: 2, J: 3, K: 4}})
	var bin bytes.Buffer
	if err := x.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTensor(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatalf("binary decode: %v", err)
	}
	if !got.Equal(x) {
		t.Fatal("binary round trip mismatch")
	}
	var txt bytes.Buffer
	if _, err := x.WriteTo(&txt); err != nil {
		t.Fatal(err)
	}
	got, err = DecodeTensor(bytes.NewReader(txt.Bytes()))
	if err != nil {
		t.Fatalf("text decode: %v", err)
	}
	if !got.Equal(x) {
		t.Fatal("text round trip mismatch")
	}
	if _, err := DecodeTensor(strings.NewReader("")); err == nil {
		t.Fatal("accepted empty body")
	}
}

// FuzzJobSpecDecode is the satellite fuzz target for the HTTP job-spec
// parser: arbitrary bodies must never panic, never read unbounded
// input, and anything accepted must itself validate.
func FuzzJobSpecDecode(f *testing.F) {
	f.Add(`{"tenant":"acme","tensor_id":"t1","rank":4}`)
	f.Add(`{"tenant":"a","tensor_id":"t","rank":2,"max_iter":20,"min_iter":5,"initial_sets":3,"seed":-9,"tolerance":1,"priority":100}`)
	f.Add(`{"tenant":"a","tensor_id":"t","rank":2,"init":"topfiber"}`)
	f.Add(`{"tenant":"a","tensor_id":"t","rank":2,"init":"random","initial_sets":4}`)
	f.Add(`{"tenant":"` + strings.Repeat("x", 100) + `","tensor_id":"t","rank":2}`)
	f.Add(`{}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"rank":1e9}`)
	f.Add("\x00\xff\xfe")
	f.Fuzz(func(t *testing.T, body string) {
		r := strings.NewReader(body)
		spec, err := DecodeJobSpec(r)
		if consumed := int(r.Size()) - r.Len(); consumed > MaxSpecBytes+1 {
			t.Fatalf("consumed %d bytes of body, cap is %d", consumed, MaxSpecBytes+1)
		}
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("decoded spec fails its own validation: %v", verr)
		}
	})
}

// FuzzTensorDecode guards the tensor-upload parser against adversarial
// bodies: no panics, and a forged binary header must not cause a giant
// allocation (the parser caps preallocation and grows against bytes
// actually present).
func FuzzTensorDecode(f *testing.F) {
	x := tensor.MustFromCoords(3, 4, 5, []tensor.Coord{{I: 0, J: 1, K: 2}})
	var bin bytes.Buffer
	if err := x.WriteBinary(&bin); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	var txt bytes.Buffer
	if _, err := x.WriteTo(&txt); err != nil {
		f.Fatal(err)
	}
	f.Add(txt.Bytes())
	// A forged header claiming 2^31 nonzeros with no payload.
	forged := append([]byte{}, bin.Bytes()[:16]...)
	f.Add(forged)
	f.Add([]byte("DBT1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		// The HTTP handler bounds bodies with MaxBytesReader; mirror a
		// small bound here so the text parser cannot loop over gigabytes.
		const bound = 1 << 20
		tt, err := DecodeTensor(io.LimitReader(bytes.NewReader(body), bound))
		if err != nil {
			return
		}
		if tt.NNZ() > bound {
			t.Fatalf("decoded %d nonzeros from %d input bytes", tt.NNZ(), len(body))
		}
	})
}
