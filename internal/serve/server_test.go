package serve

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dbtf/internal/gen"
	"dbtf/internal/tensor"
)

// testTensor is a small planted tensor that factorizes exactly, so jobs
// finish quickly but still run real engine iterations.
func testTensor(seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x, _, _, _ := gen.FromFactors(rng, 12, 10, 8, 3, 0.3)
	return x
}

func testServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		DataDir:    t.TempDir(),
		MaxRunning: 1,
		Machines:   2,
		GateSlots:  2,
		// Disable timeslicing by default; tests that exercise eviction
		// turn it back on or call Evict explicitly.
		SliceIterations: -1,
		DrainTimeout:    20 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func waitState(t *testing.T, s *Server, id string, pred func(JobView) bool, what string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := s.JobByID(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if pred(v) {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	v, _ := s.JobByID(id)
	t.Fatalf("timed out waiting for %s on job %s (state %s)", what, id, v.State)
	return JobView{}
}

func waitTerminal(t *testing.T, s *Server, id string) JobView {
	t.Helper()
	return waitState(t, s, id, func(v JobView) bool { return v.State.Terminal() }, "terminal state")
}

func baseSpec(tensorID string) *JobSpec {
	return &JobSpec{Tenant: "acme", TensorID: tensorID, Rank: 3, MaxIter: 6, MinIter: 6, Seed: 42}
}

func TestSubmitRunsToDone(t *testing.T) {
	s := testServer(t, nil)
	defer s.Drain()
	if err := s.PutTensor("x1", testTensor(7)); err != nil {
		t.Fatalf("PutTensor: %v", err)
	}
	view, err := s.Submit(baseSpec("x1"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if view.State != StateQueued && view.State != StateRunning {
		t.Fatalf("state after submit = %s", view.State)
	}
	done := waitTerminal(t, s, view.ID)
	if done.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", done.State, done.Error)
	}
	if done.Result == nil || done.Result.FactorHash == "" {
		t.Fatalf("result = %+v", done.Result)
	}
	if done.Result.Iterations == 0 {
		t.Fatal("result reports zero iterations")
	}
	// The job record is durable and the trace stream exists.
	if _, err := os.Stat(jobPath(s.cfg.DataDir, view.ID)); err != nil {
		t.Fatalf("job record: %v", err)
	}
	data, err := os.ReadFile(tracePath(s.cfg.DataDir, view.ID))
	if err != nil {
		t.Fatalf("trace stream: %v", err)
	}
	if !strings.Contains(string(data), "iteration_end") {
		t.Fatal("trace stream has no iteration events")
	}
	if done.Progress == nil || done.Progress.Iterations == 0 {
		t.Fatalf("progress = %+v", done.Progress)
	}
}

func TestSameSpecReproducesFactorHash(t *testing.T) {
	s := testServer(t, nil)
	defer s.Drain()
	if err := s.PutTensor("x1", testTensor(7)); err != nil {
		t.Fatal(err)
	}
	v1, err := s.Submit(baseSpec("x1"))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Submit(baseSpec("x1"))
	if err != nil {
		t.Fatal(err)
	}
	r1 := waitTerminal(t, s, v1.ID)
	r2 := waitTerminal(t, s, v2.ID)
	if r1.State != StateDone || r2.State != StateDone {
		t.Fatalf("states = %s, %s", r1.State, r2.State)
	}
	if r1.Result.FactorHash != r2.Result.FactorHash {
		t.Fatalf("same spec produced different factors: %s vs %s",
			r1.Result.FactorHash, r2.Result.FactorHash)
	}
	if r1.Result.Error != r2.Result.Error {
		t.Fatalf("errors differ: %d vs %d", r1.Result.Error, r2.Result.Error)
	}
}

func TestEvictResumesBitIdentical(t *testing.T) {
	s := testServer(t, nil)
	defer s.Drain()
	if err := s.PutTensor("x1", testTensor(7)); err != nil {
		t.Fatal(err)
	}
	// Baseline: the same spec uninterrupted.
	base, err := s.Submit(baseSpec("x1"))
	if err != nil {
		t.Fatal(err)
	}
	baseDone := waitTerminal(t, s, base.ID)
	if baseDone.State != StateDone {
		t.Fatalf("baseline state = %s", baseDone.State)
	}

	// Victim: evict it every time we catch it running, until it has been
	// preempted at least twice, then let it finish.
	victim, err := s.Submit(baseSpec("x1"))
	if err != nil {
		t.Fatal(err)
	}
	evictions := 0
	deadline := time.Now().Add(30 * time.Second)
	for evictions < 2 && time.Now().Before(deadline) {
		v, _ := s.JobByID(victim.ID)
		if v.State.Terminal() {
			break
		}
		if v.State == StateRunning && v.Evictions == evictions {
			if err := s.Evict(victim.ID); err == nil {
				waitState(t, s, victim.ID, func(v JobView) bool {
					return v.Evictions > evictions || v.State.Terminal()
				}, "eviction to land")
				evictions++
			}
		}
		time.Sleep(time.Millisecond)
	}
	done := waitTerminal(t, s, victim.ID)
	if done.State != StateDone {
		t.Fatalf("victim state = %s (error %q)", done.State, done.Error)
	}
	if done.Evictions == 0 {
		t.Skip("job finished before any eviction landed; nothing to compare")
	}
	if done.Result.FactorHash != baseDone.Result.FactorHash {
		t.Fatalf("evicted-and-resumed job diverged: hash %s after %d evictions, baseline %s",
			done.Result.FactorHash, done.Evictions, baseDone.Result.FactorHash)
	}
	if done.Result.Error != baseDone.Result.Error {
		t.Fatalf("errors diverged: %d vs baseline %d", done.Result.Error, baseDone.Result.Error)
	}
}

func TestTimesliceSharesSlotAcrossJobs(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.SliceIterations = 2 // aggressive timeslice
	})
	defer s.Drain()
	if err := s.PutTensor("x1", testTensor(7)); err != nil {
		t.Fatal(err)
	}
	// Two long jobs on one slot: the timeslicer must preempt the first
	// so the second makes progress before the first finishes.
	long := baseSpec("x1")
	long.MaxIter, long.MinIter = 10, 10
	v1, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	spec2 := *long
	spec2.Seed = 43
	v2, err := s.Submit(&spec2)
	if err != nil {
		t.Fatal(err)
	}
	r1 := waitTerminal(t, s, v1.ID)
	r2 := waitTerminal(t, s, v2.ID)
	if r1.State != StateDone || r2.State != StateDone {
		t.Fatalf("states = %s, %s", r1.State, r2.State)
	}
	if r1.Evictions == 0 {
		t.Fatal("first job was never timesliced despite a waiting queue")
	}
}

func TestAdmissionRejectsAtServer(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.Admission = AdmissionConfig{TenantRate: 0.0001, TenantBurst: 1}
	})
	defer s.Drain()
	if err := s.PutTensor("x1", testTensor(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(baseSpec("x1")); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err := s.Submit(baseSpec("x1"))
	aerr, ok := err.(*AdmissionError)
	if !ok || aerr.Reason != "rate_limited" {
		t.Fatalf("second submit = %v, want rate_limited AdmissionError", err)
	}
	if aerr.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v", aerr.RetryAfter)
	}
	stats := s.StatsSnapshot()
	if stats.Shed["rate_limited"] != 1 {
		t.Fatalf("shed counters = %v", stats.Shed)
	}
}

func TestSubmitUnknownTensor(t *testing.T) {
	s := testServer(t, nil)
	defer s.Drain()
	if _, err := s.Submit(baseSpec("nope")); err == nil {
		t.Fatal("submitted against a missing tensor")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := testServer(t, nil)
	defer s.Drain()
	if err := s.PutTensor("x1", testTensor(7)); err != nil {
		t.Fatal(err)
	}
	long := baseSpec("x1")
	long.MaxIter, long.MinIter = 50, 50
	v1, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Submit(baseSpec("x1"))
	if err != nil {
		t.Fatal(err)
	}
	// v2 waits behind v1 on the single slot; cancel it while queued.
	if err := s.Cancel(v2.ID); err != nil {
		// It may have started if v1 finished implausibly fast; then the
		// running-cancel path applies.
		t.Logf("queued cancel raced to running: %v", err)
	}
	got := waitTerminal(t, s, v2.ID)
	if got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got.State)
	}
	if r1 := waitTerminal(t, s, v1.ID); r1.State != StateDone {
		t.Fatalf("unrelated job state = %s", r1.State)
	}
}

func TestDrainZeroLostJobsAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, func(c *Config) { c.DataDir = dir })
	if err := s.PutTensor("x1", testTensor(7)); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 4; i++ {
		spec := baseSpec("x1")
		spec.Seed = int64(100 + i)
		spec.MaxIter, spec.MinIter = 8, 8
		v, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}
	// Let the first job get going, then drain mid-flight.
	waitState(t, s, ids[0], func(v JobView) bool {
		return v.State == StateRunning || v.State.Terminal()
	}, "first job to start")
	s.Drain()

	// Zero lost jobs: every submitted job is durably queued or terminal.
	for _, id := range ids {
		v, ok := s.JobByID(id)
		if !ok {
			t.Fatalf("job %s lost across drain", id)
		}
		if v.State == StateRunning {
			t.Fatalf("job %s still running after Drain", id)
		}
	}
	if _, err := s.Submit(baseSpec("x1")); err == nil {
		t.Fatal("draining server accepted a submit")
	}

	// Restart over the same data dir: queued jobs resume to completion.
	s2 := testServer(t, func(c *Config) { c.DataDir = dir })
	defer s2.Drain()
	for _, id := range ids {
		v := waitTerminal(t, s2, id)
		if v.State != StateDone {
			t.Fatalf("job %s after restart = %s (error %q)", id, v.State, v.Error)
		}
	}
	// And the recovered results are still bit-identical to fresh runs.
	fresh := baseSpec("x1")
	fresh.Seed, fresh.MaxIter, fresh.MinIter = 100, 8, 8
	fv, err := s2.Submit(fresh)
	if err != nil {
		t.Fatal(err)
	}
	fd := waitTerminal(t, s2, fv.ID)
	rv, _ := s2.JobByID(ids[0])
	if fd.Result.FactorHash != rv.Result.FactorHash {
		t.Fatalf("restart-resumed hash %s != fresh-run hash %s",
			rv.Result.FactorHash, fd.Result.FactorHash)
	}
}

func TestCrashRecoveryFlipsRunningToQueued(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, func(c *Config) { c.DataDir = dir })
	if err := s.PutTensor("x1", testTensor(7)); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	// Simulate a crash mid-run: a job record durably marked running with
	// no process behind it.
	j := &Job{ID: "j00000099", Seq: 99, Spec: *baseSpec("x1"), State: StateRunning,
		TensorBytes: 100}
	if err := persistJob(dir, j); err != nil {
		t.Fatal(err)
	}
	s2 := testServer(t, func(c *Config) { c.DataDir = dir })
	defer s2.Drain()
	v := waitTerminal(t, s2, "j00000099")
	if v.State != StateDone {
		t.Fatalf("recovered job = %s (error %q)", v.State, v.Error)
	}
	if v.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", v.Restarts)
	}
}

func TestLoadJobsSkipsTempAndRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := persistJob(dir, &Job{ID: "j1", Seq: 1, State: StateDone}); err != nil {
		t.Fatal(err)
	}
	// A crash-orphaned temp file is ignored.
	if err := os.WriteFile(filepath.Join(dir, jobsDirName, "job-123.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, err := loadJobs(dir)
	if err != nil {
		t.Fatalf("loadJobs: %v", err)
	}
	if len(jobs) != 1 || jobs[0].ID != "j1" {
		t.Fatalf("jobs = %+v", jobs)
	}
	// A torn .json record is a hard error, not a silent skip.
	if err := os.WriteFile(filepath.Join(dir, jobsDirName, "j2.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadJobs(dir); err == nil {
		t.Fatal("loadJobs accepted a corrupt record")
	}
}

func TestJobListFiltersAndOrders(t *testing.T) {
	s := testServer(t, func(c *Config) { c.MaxRunning = 2 })
	defer s.Drain()
	if err := s.PutTensor("x1", testTensor(7)); err != nil {
		t.Fatal(err)
	}
	for i, tenant := range []string{"a", "b", "a"} {
		spec := baseSpec("x1")
		spec.Tenant = tenant
		spec.Seed = int64(i)
		if _, err := s.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	all := s.JobList("")
	if len(all) != 3 {
		t.Fatalf("len(all) = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("list not ordered by seq: %v", all)
		}
	}
	if got := len(s.JobList("a")); got != 2 {
		t.Fatalf("tenant a jobs = %d, want 2", got)
	}
	if got := len(s.JobList("nobody")); got != 0 {
		t.Fatalf("unknown tenant jobs = %d, want 0", got)
	}
}

func TestTensorStoreDurableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := openTensorStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	x := testTensor(5)
	if err := st.Put("t1", x); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("t1", x); err != ErrTensorExists {
		t.Fatalf("duplicate Put = %v, want ErrTensorExists", err)
	}
	st2, err := openTensorStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st2.Get("t1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(x) {
		t.Fatal("tensor changed across reopen")
	}
	if _, err := st2.Get("missing"); err == nil {
		t.Fatal("Get(missing) succeeded")
	}
}

func TestFactorHashDistinguishesFactors(t *testing.T) {
	// Sanity: different tensors produce different hashes (with
	// overwhelming probability), identical runs identical ones.
	s := testServer(t, func(c *Config) { c.MaxRunning = 2 })
	defer s.Drain()
	if err := s.PutTensor("x1", testTensor(7)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTensor("x2", testTensor(8)); err != nil {
		t.Fatal(err)
	}
	v1, err := s.Submit(baseSpec("x1"))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Submit(baseSpec("x2"))
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := waitTerminal(t, s, v1.ID), waitTerminal(t, s, v2.ID)
	if r1.Result.FactorHash == r2.Result.FactorHash {
		t.Fatalf("different tensors, same factor hash %s", r1.Result.FactorHash)
	}
}

func TestConfigRequiresDataDir(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted empty DataDir")
	}
}

func TestServerStatsCountersAdvance(t *testing.T) {
	s := testServer(t, nil)
	defer s.Drain()
	if err := s.PutTensor("x1", testTensor(7)); err != nil {
		t.Fatal(err)
	}
	n := 3
	var ids []string
	for i := 0; i < n; i++ {
		spec := baseSpec("x1")
		spec.Seed = int64(i)
		v, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		waitTerminal(t, s, id)
	}
	stats := s.StatsSnapshot()
	if stats.Admitted != int64(n) || stats.Completed != int64(n) {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.MemoryBytes != 0 {
		t.Fatalf("memory not released: %d", stats.MemoryBytes)
	}
	if stats.Queued != 0 || stats.Running != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestDrainRequeuesRunningJobViaCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, func(c *Config) { c.DataDir = dir })
	if err := s.PutTensor("x1", testTensor(7)); err != nil {
		t.Fatal(err)
	}
	long := baseSpec("x1")
	long.MaxIter, long.MinIter = 40, 40
	v, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, func(jv JobView) bool {
		return jv.State == StateRunning || jv.State.Terminal()
	}, "job to start")
	s.Drain()
	jv, _ := s.JobByID(v.ID)
	if jv.State == StateRunning {
		t.Fatalf("running after drain")
	}
	if jv.State.Terminal() && jv.State != StateDone {
		t.Fatalf("drained job = %s (error %q)", jv.State, jv.Error)
	}
	if jv.State == StateQueued {
		// Checkpoint must exist so the restart resumes, not restarts.
		ckdir := filepath.Join(dir, "checkpoints", v.ID)
		entries, err := os.ReadDir(ckdir)
		if err != nil || len(entries) == 0 {
			t.Fatalf("no checkpoint after drain eviction: %v %v", entries, err)
		}
	}
	s2 := testServer(t, func(c *Config) { c.DataDir = dir })
	defer s2.Drain()
	final := waitTerminal(t, s2, v.ID)
	if final.State != StateDone {
		t.Fatalf("after restart = %s (error %q)", final.State, final.Error)
	}
}

func TestManySmallJobsAllComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := testServer(t, func(c *Config) {
		c.MaxRunning = 3
		c.SliceIterations = 3
	})
	defer s.Drain()
	for i := 0; i < 3; i++ {
		if err := s.PutTensor(fmt.Sprintf("x%d", i), testTensor(int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	var ids []string
	for i := 0; i < 12; i++ {
		spec := baseSpec(fmt.Sprintf("x%d", i%3))
		spec.Tenant = fmt.Sprintf("tenant%d", i%4)
		spec.Seed = int64(i)
		spec.MaxIter, spec.MinIter = 5, 5
		v, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		if v := waitTerminal(t, s, id); v.State != StateDone {
			t.Fatalf("job %s = %s (error %q)", id, v.State, v.Error)
		}
	}
}
