package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"
)

// Handler returns the server's HTTP API:
//
//	POST   /v1/tensors/{id}        upload a tensor (binary DBT1 or text)
//	GET    /v1/tensors             list tensor IDs
//	POST   /v1/jobs                submit a job spec (JSON)
//	GET    /v1/jobs                list jobs (?tenant= filters)
//	GET    /v1/jobs/{id}           one job's state and progress
//	GET    /v1/jobs/{id}/result    the finished job's result
//	GET    /v1/jobs/{id}/trace     the job's JSONL trace stream (?follow=1 tails)
//	POST   /v1/jobs/{id}/evict     preempt at the next iteration boundary
//	DELETE /v1/jobs/{id}           cancel
//	GET    /v1/stats               operational counters
//	GET    /healthz                liveness (503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tensors/{id}", s.handlePutTensor)
	mux.HandleFunc("GET /v1/tensors", s.handleListTensors)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/jobs/{id}/evict", s.handleEvict)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//dbtf:allow-unchecked response-body write failure leaves nothing to report to
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// writeAdmissionError maps a shed decision onto 429/503 with the
// Retry-After the admission layer computed.
func writeAdmissionError(w http.ResponseWriter, aerr *AdmissionError) {
	status := http.StatusTooManyRequests
	if aerr.Reason == "draining" {
		status = http.StatusServiceUnavailable
	}
	secs := int64(aerr.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//dbtf:allow-unchecked response-body write failure leaves nothing to report to
	_ = enc.Encode(apiError{Error: aerr.Error(), Reason: aerr.Reason})
}

func (s *Server) handlePutTensor(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxTensorBytes)
	t, err := DecodeTensor(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("serve: tensor upload exceeds %d bytes", s.cfg.MaxTensorBytes))
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.PutTensor(id, t); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrTensorExists) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	i, j, k := t.Dims()
	writeJSON(w, http.StatusCreated, map[string]any{
		"id": id, "dims": [3]int{i, j, k}, "nnz": t.NNZ(),
	})
}

func (s *Server) handleListTensors(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tensors": s.TensorIDs()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeJobSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	view, err := s.Submit(spec)
	if err != nil {
		var aerr *AdmissionError
		switch {
		case errors.As(err, &aerr):
			writeAdmissionError(w, aerr)
		case errors.Is(err, ErrTensorNotFound):
			writeError(w, http.StatusNotFound, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs": s.JobList(r.URL.Query().Get("tenant")),
	})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	view, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", r.PathValue("id")))
		return
	}
	if view.Result == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: job %s is %s; no result yet", view.ID, view.State))
		return
	}
	writeJSON(w, http.StatusOK, view.Result)
}

// handleTrace streams the job's JSONL trace file. With ?follow=1 it
// tails the file, polling until the job reaches a terminal state — a
// plain curl shows iterations landing live.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.JobByID(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", id))
		return
	}
	follow := r.URL.Query().Get("follow") != ""
	path := tracePath(s.cfg.DataDir, id)
	if _, err := os.Stat(path); os.IsNotExist(err) && !follow {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: job %s has no trace yet", id))
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// Each poll re-opens the file and resumes at the last offset, so the
	// appender and the tail never share a descriptor.
	var offset int64
	copyAvailable := func() {
		f, err := os.Open(path)
		if err != nil {
			return // first slice may not have started yet
		}
		defer f.Close()
		if _, err := f.Seek(offset, io.SeekStart); err != nil {
			return
		}
		//dbtf:allow-unchecked client disconnects surface on the next poll; the copied count still advances the offset
		n, _ := io.Copy(w, f)
		offset += n
		if flusher != nil {
			flusher.Flush()
		}
	}
	copyAvailable()
	if !follow {
		return
	}
	for {
		view, ok := s.JobByID(id)
		if !ok || view.State.Terminal() {
			copyAvailable()
			return
		}
		// A draining server evicts running jobs back to queued — never
		// terminal — so a follower waiting for terminality would outlive
		// Drain and pin http.Server.Shutdown past its deadline. End the
		// tail with what has been written; the client re-follows after
		// restart.
		if s.Draining() {
			copyAvailable()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
		copyAvailable()
	}
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	if err := s.Evict(r.PathValue("id")); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "evicting"})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "cancelling"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: draining"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
