package serve

import "container/heap"

// fairQueue is the scheduler's ready queue: round-robin across tenants
// (each pop serves the next tenant in rotation, so a tenant that dumps a
// thousand jobs cannot starve one that submits a single job), and within
// a tenant a priority heap (higher Priority first, FIFO by sequence
// number among equals). Not safe for concurrent use; the Server's mutex
// guards it.
type fairQueue struct {
	tenants map[string]*tenantHeap
	// order is the round-robin rotation; tenants join at the back when
	// their first job arrives and leave when their queue drains.
	order []string
	next  int
	size  int
}

func newFairQueue() *fairQueue {
	return &fairQueue{tenants: map[string]*tenantHeap{}}
}

func (q *fairQueue) len() int { return q.size }

func (q *fairQueue) tenantLen(tenant string) int {
	if th, ok := q.tenants[tenant]; ok {
		return th.Len()
	}
	return 0
}

func (q *fairQueue) push(j *Job) {
	th, ok := q.tenants[j.Spec.Tenant]
	if !ok {
		th = &tenantHeap{}
		q.tenants[j.Spec.Tenant] = th
		q.order = append(q.order, j.Spec.Tenant)
	}
	heap.Push(th, j)
	q.size++
}

// pop removes and returns the next job by the fairness policy, or nil
// when the queue is empty.
func (q *fairQueue) pop() *Job {
	if q.size == 0 {
		return nil
	}
	if q.next >= len(q.order) {
		q.next = 0
	}
	tenant := q.order[q.next]
	th := q.tenants[tenant]
	j := heap.Pop(th).(*Job)
	q.size--
	if th.Len() == 0 {
		delete(q.tenants, tenant)
		q.order = append(q.order[:q.next], q.order[q.next+1:]...)
		// The rotation continues with the tenant that slid into this slot.
	} else {
		q.next++
	}
	if q.next >= len(q.order) {
		q.next = 0
	}
	return j
}

// remove deletes the queued job with the given ID, returning it, or nil
// if no queued job has that ID.
func (q *fairQueue) remove(id string) *Job {
	for tenant, th := range q.tenants {
		for i, j := range *th {
			if j.ID != id {
				continue
			}
			//dbtf:allow-unchecked container/heap.Remove returns the removed element, not an error
			heap.Remove(th, i)
			q.size--
			if th.Len() == 0 {
				delete(q.tenants, tenant)
				for k, name := range q.order {
					if name == tenant {
						q.order = append(q.order[:k], q.order[k+1:]...)
						if q.next > k {
							q.next--
						}
						break
					}
				}
				if q.next >= len(q.order) {
					q.next = 0
				}
			}
			return j
		}
	}
	return nil
}

// tenantHeap orders one tenant's jobs: higher priority first, then FIFO
// by admission sequence.
type tenantHeap []*Job

func (h tenantHeap) Len() int { return len(h) }
func (h tenantHeap) Less(a, b int) bool {
	if h[a].Spec.Priority != h[b].Spec.Priority {
		return h[a].Spec.Priority > h[b].Spec.Priority
	}
	return h[a].Seq < h[b].Seq
}
func (h tenantHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }

func (h *tenantHeap) Push(x any) { *h = append(*h, x.(*Job)) }

func (h *tenantHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
