package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"dbtf/internal/tensor"
)

// ErrTensorExists reports an upload under an ID that is already taken;
// tensors are immutable once named so queued jobs can never race an
// overwrite.
var ErrTensorExists = errors.New("serve: tensor id already exists")

// ErrTensorNotFound reports a job spec naming an unknown tensor.
var ErrTensorNotFound = errors.New("serve: tensor not found")

const tensorsDirName = "tensors"

// tensorStore keeps uploaded tensors: durably on disk (crash-safe
// temp+fsync+rename) and cached in memory for the engine. Entries are
// immutable after Put.
type tensorStore struct {
	dir string

	mu      sync.Mutex
	entries map[string]*tensorEntry
}

type tensorEntry struct {
	nnz   int
	dims  [3]int
	bytes int64 // admission memory estimate

	// loaded is the cached in-memory tensor; nil until first use after
	// a restart. Guarded by the store's mutex.
	loaded *tensor.Tensor
}

// estimateTensorBytes is the admission-budget estimate for holding the
// tensor plus per-job working state: the coordinate slice (3 ints per
// nonzero) doubled for the unfolded views, plus a fixed overhead.
func estimateTensorBytes(nnz int) int64 {
	return int64(nnz)*48 + 4096
}

func openTensorStore(dataDir string) (*tensorStore, error) {
	dir := filepath.Join(dataDir, tensorsDirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &tensorStore{dir: dir, entries: map[string]*tensorEntry{}}
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		name := f.Name()
		if !strings.HasSuffix(name, ".dbt") {
			continue // crash-orphaned temp file; the rename never happened
		}
		id := strings.TrimSuffix(name, ".dbt")
		t, err := tensor.ReadBinaryFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("serve: corrupt stored tensor %s: %w", name, err)
		}
		i, j, k := t.Dims()
		s.entries[id] = &tensorEntry{
			nnz: t.NNZ(), dims: [3]int{i, j, k},
			bytes: estimateTensorBytes(t.NNZ()), loaded: t,
		}
	}
	return s, nil
}

func (s *tensorStore) path(id string) string {
	return filepath.Join(s.dir, id+".dbt")
}

// Put stores a new tensor under id, durably and atomically.
func (s *tensorStore) Put(id string, t *tensor.Tensor) error {
	s.mu.Lock()
	if _, ok := s.entries[id]; ok {
		s.mu.Unlock()
		return ErrTensorExists
	}
	// Reserve the ID while writing so concurrent uploads cannot race.
	i, j, k := t.Dims()
	entry := &tensorEntry{nnz: t.NNZ(), dims: [3]int{i, j, k},
		bytes: estimateTensorBytes(t.NNZ()), loaded: t}
	s.entries[id] = entry
	s.mu.Unlock()

	if err := s.writeDurably(id, t); err != nil {
		s.mu.Lock()
		delete(s.entries, id)
		s.mu.Unlock()
		return err
	}
	return nil
}

// writeDurably persists the tensor with the checkpoint writer's
// discipline: temp file, fsync, rename, directory fsync.
func (s *tensorStore) writeDurably(id string, t *tensor.Tensor) error {
	tmp, err := os.CreateTemp(s.dir, "tensor-*.tmp")
	if err != nil {
		return err
	}
	defer func() {
		//dbtf:allow-unchecked cleanup of a temp file that may already be renamed away
		os.Remove(tmp.Name())
	}()
	if err := t.WriteBinary(tmp); err != nil {
		//dbtf:allow-unchecked write error is already being returned
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		//dbtf:allow-unchecked sync error is already being returned
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		return err
	}
	df, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	if err := df.Sync(); err != nil {
		//dbtf:allow-unchecked close after a sync error that is already being returned
		df.Close()
		return err
	}
	return df.Close()
}

// Get returns the tensor for id, loading it from disk if a restart
// dropped the cache.
func (s *tensorStore) Get(id string) (*tensor.Tensor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrTensorNotFound, id)
	}
	if e.loaded == nil {
		t, err := tensor.ReadBinaryFile(s.path(id))
		if err != nil {
			return nil, err
		}
		e.loaded = t
	}
	return e.loaded, nil
}

// Info returns the admission estimate and shape for id.
func (s *tensorStore) Info(id string) (bytes int64, nnz int, dims [3]int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return 0, 0, [3]int{}, fmt.Errorf("%w: %q", ErrTensorNotFound, id)
	}
	return e.bytes, e.nnz, e.dims, nil
}

// IDs returns the stored tensor IDs (unordered).
func (s *tensorStore) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	return ids
}
