// Package serve is the factorization-as-a-service layer: a long-running
// job server that admits, queues, throttles, evicts, and resumes DBTF
// factorization jobs on a shared engine without ever losing one.
//
// The robustness mechanics reuse the repo's existing currencies: PR-3
// iteration checkpoints make eviction a cheap, bit-identical timeslice
// boundary; PR-5 JSONL trace streams are the live progress feed; the
// atomic temp+fsync+rename discipline of writeCheckpoint keeps job
// metadata crash-safe. See DESIGN.md §13 for the admission state
// machine, the eviction/resume protocol, and the fairness policy.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dbtf/internal/core"
	"dbtf/internal/tensor"
)

// Limits bound adversarial inputs at the HTTP boundary.
const (
	// MaxSpecBytes bounds a job-spec request body.
	MaxSpecBytes = 1 << 16
	// MaxRank mirrors the engine's rank ceiling.
	MaxRank = 64
	// MaxIterLimit bounds requested iterations per job.
	MaxIterLimit = 10000
	// MaxInitialSets bounds the initial factor sets per job.
	MaxInitialSets = 64
	// maxIDLen bounds tenant and tensor identifiers.
	maxIDLen = 64
)

// JobSpec is the client-supplied description of one factorization job.
// It is deliberately a plain-old-data subset of dbtf.Options: everything
// needed to reproduce the run bit-identically from the spec alone.
type JobSpec struct {
	// Tenant identifies the submitting tenant for fairness, quotas, and
	// rate limits. Required; [A-Za-z0-9_-], at most 64 bytes.
	Tenant string `json:"tenant"`
	// TensorID names a previously uploaded tensor. Required; same
	// charset as Tenant.
	TensorID string `json:"tensor_id"`
	// Rank is the decomposition rank R. Required; 1..64.
	Rank int `json:"rank"`
	// MaxIter bounds the alternating iterations. Default 10.
	MaxIter int `json:"max_iter,omitempty"`
	// MinIter disables convergence checks before this iteration.
	MinIter int `json:"min_iter,omitempty"`
	// InitialSets is the number of initial factor sets tried.
	InitialSets int `json:"initial_sets,omitempty"`
	// Init selects the initialization scheme: "fiber" (default),
	// "random", or "topfiber". Part of the checkpoint fingerprint, so a
	// resubmitted spec must keep it to resume a prior run's checkpoint.
	Init string `json:"init,omitempty"`
	// Seed makes the job deterministic; resubmitting the same spec
	// against the same tensor reproduces the same factors bit for bit.
	Seed int64 `json:"seed,omitempty"`
	// Tolerance is the convergence tolerance on the error improvement.
	Tolerance int64 `json:"tolerance,omitempty"`
	// Priority orders a tenant's own jobs: higher runs first. It never
	// lets one tenant jump another's queue. -100..100.
	Priority int `json:"priority,omitempty"`
}

func validIdent(s string) bool {
	if len(s) == 0 || len(s) > maxIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Validate checks the spec's fields against the service limits.
func (s *JobSpec) Validate() error {
	switch {
	case !validIdent(s.Tenant):
		return errors.New("serve: tenant must be 1-64 chars of [A-Za-z0-9_-]")
	case !validIdent(s.TensorID):
		return errors.New("serve: tensor_id must be 1-64 chars of [A-Za-z0-9_-]")
	case s.Rank < 1 || s.Rank > MaxRank:
		return fmt.Errorf("serve: rank must be 1..%d, got %d", MaxRank, s.Rank)
	case s.MaxIter < 0 || s.MaxIter > MaxIterLimit:
		return fmt.Errorf("serve: max_iter must be 0..%d, got %d", MaxIterLimit, s.MaxIter)
	case s.MinIter < 0 || s.MinIter > MaxIterLimit:
		return fmt.Errorf("serve: min_iter must be 0..%d, got %d", MaxIterLimit, s.MinIter)
	case s.InitialSets < 0 || s.InitialSets > MaxInitialSets:
		return fmt.Errorf("serve: initial_sets must be 0..%d, got %d", MaxInitialSets, s.InitialSets)
	case s.Tolerance < 0:
		return fmt.Errorf("serve: tolerance must be >= 0, got %d", s.Tolerance)
	case s.Priority < -100 || s.Priority > 100:
		return fmt.Errorf("serve: priority must be -100..100, got %d", s.Priority)
	}
	scheme, err := core.ParseInitScheme(s.Init)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if scheme == core.InitTopFiber && s.InitialSets > 1 {
		return fmt.Errorf("serve: init %q is deterministic; initial_sets %d would try identical sets", s.Init, s.InitialSets)
	}
	return nil
}

// InitScheme returns the spec's parsed initialization scheme; Validate
// must have accepted the spec.
func (s *JobSpec) InitScheme() core.InitScheme {
	scheme, _ := core.ParseInitScheme(s.Init)
	return scheme
}

// DecodeJobSpec parses and validates one job spec from at most
// MaxSpecBytes of r. Unknown fields are rejected so a client typo never
// silently changes a run. The reader is consumed at most MaxSpecBytes+1
// bytes; larger bodies are rejected, never buffered.
func DecodeJobSpec(r io.Reader) (*JobSpec, error) {
	lr := &io.LimitedReader{R: r, N: MaxSpecBytes + 1}
	dec := json.NewDecoder(lr)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		if lr.N == 0 {
			return nil, fmt.Errorf("serve: job spec exceeds %d bytes", MaxSpecBytes)
		}
		return nil, fmt.Errorf("serve: decoding job spec: %w", err)
	}
	// A body with trailing garbage after the JSON object is malformed.
	if _, err := dec.Token(); err != io.EOF {
		return nil, errors.New("serve: trailing data after job spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// DecodeTensor parses an uploaded tensor body in either the compact
// binary format (sniffed by magic) or the text format. The caller bounds
// the reader (http.MaxBytesReader); the binary parser additionally caps
// its preallocation against forged headers.
func DecodeTensor(r io.Reader) (*tensor.Tensor, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil {
		if len(magic) == 0 {
			return nil, errors.New("serve: empty tensor body")
		}
		// Shorter than a magic: only the text parser can make sense of it.
		return tensor.ReadFrom(br)
	}
	if bytes.Equal(magic, []byte("DBT1")) {
		return tensor.ReadBinary(br)
	}
	return tensor.ReadFrom(br)
}
