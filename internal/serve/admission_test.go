package serve

import (
	"testing"
	"time"
)

func admitSpec(tenant string) *JobSpec {
	return &JobSpec{Tenant: tenant, TensorID: "x", Rank: 2}
}

func TestAdmitQueueFull(t *testing.T) {
	a := newAdmissionState()
	cfg := AdmissionConfig{MaxQueued: 3, RetryAfter: 2 * time.Second}.withDefaults()
	now := time.Unix(1000, 0)
	// queued+running at the limit: reject with the configured backoff.
	aerr := a.admit(now, admitSpec("t"), cfg, 2, 0, 1, 100)
	if aerr == nil || aerr.Reason != "queue_full" {
		t.Fatalf("admit = %v, want queue_full", aerr)
	}
	if aerr.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want 2s", aerr.RetryAfter)
	}
	if a.shed["queue_full"] != 1 {
		t.Fatalf("shed = %v", a.shed)
	}
	// One slot free: admitted, and the memory estimate is reserved.
	if aerr := a.admit(now, admitSpec("t"), cfg, 1, 0, 1, 100); aerr != nil {
		t.Fatalf("admit with free slot = %v", aerr)
	}
	if a.memoryBytes != 100 {
		t.Fatalf("memoryBytes = %d, want 100", a.memoryBytes)
	}
}

func TestAdmitTenantQuota(t *testing.T) {
	a := newAdmissionState()
	cfg := AdmissionConfig{MaxQueuedPerTenant: 2}.withDefaults()
	now := time.Unix(1000, 0)
	aerr := a.admit(now, admitSpec("greedy"), cfg, 5, 2, 0, 10)
	if aerr == nil || aerr.Reason != "tenant_quota" {
		t.Fatalf("admit = %v, want tenant_quota", aerr)
	}
	// Another tenant is unaffected by greedy's quota.
	if aerr := a.admit(now, admitSpec("other"), cfg, 5, 0, 0, 10); aerr != nil {
		t.Fatalf("other tenant = %v", aerr)
	}
}

func TestAdmitMemoryBudget(t *testing.T) {
	a := newAdmissionState()
	cfg := AdmissionConfig{MemoryBudget: 1000}.withDefaults()
	now := time.Unix(1000, 0)
	if aerr := a.admit(now, admitSpec("t"), cfg, 0, 0, 0, 600); aerr != nil {
		t.Fatalf("first admit = %v", aerr)
	}
	aerr := a.admit(now, admitSpec("t"), cfg, 1, 1, 0, 600)
	if aerr == nil || aerr.Reason != "memory_budget" {
		t.Fatalf("admit = %v, want memory_budget", aerr)
	}
	// Releasing the first job's estimate frees the budget again.
	a.releaseMemory(600)
	if aerr := a.admit(now, admitSpec("t"), cfg, 0, 0, 0, 600); aerr != nil {
		t.Fatalf("admit after release = %v", aerr)
	}
	a.releaseMemory(9999) // floors at zero, never goes negative
	if a.memoryBytes != 0 {
		t.Fatalf("memoryBytes = %d, want 0", a.memoryBytes)
	}
}

func TestAdmitRateLimitRefillsOverTime(t *testing.T) {
	a := newAdmissionState()
	cfg := AdmissionConfig{TenantRate: 1, TenantBurst: 2}.withDefaults()
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if aerr := a.admit(now, admitSpec("t"), cfg, 0, 0, 0, 1); aerr != nil {
			t.Fatalf("burst admit %d = %v", i, aerr)
		}
	}
	aerr := a.admit(now, admitSpec("t"), cfg, 0, 0, 0, 1)
	if aerr == nil || aerr.Reason != "rate_limited" {
		t.Fatalf("admit = %v, want rate_limited", aerr)
	}
	if aerr.RetryAfter <= 0 || aerr.RetryAfter > 2*time.Second {
		t.Fatalf("RetryAfter = %v, want ~1s", aerr.RetryAfter)
	}
	// A second tenant has its own bucket.
	if aerr := a.admit(now, admitSpec("u"), cfg, 0, 0, 0, 1); aerr != nil {
		t.Fatalf("tenant u = %v", aerr)
	}
	// After the backoff the bucket has refilled.
	later := now.Add(1100 * time.Millisecond)
	if aerr := a.admit(later, admitSpec("t"), cfg, 0, 0, 0, 1); aerr != nil {
		t.Fatalf("admit after refill = %v", aerr)
	}
}

func TestTokenBucketZeroRateNeverRefills(t *testing.T) {
	b := &tokenBucket{}
	now := time.Unix(1000, 0)
	if ok, _ := b.take(now, 0, 1); !ok {
		t.Fatal("burst token should be available")
	}
	ok, wait := b.take(now.Add(time.Hour), 0, 1)
	if ok {
		t.Fatal("zero rate should never refill")
	}
	if wait != time.Hour {
		t.Fatalf("wait = %v, want 1h sentinel", wait)
	}
}
