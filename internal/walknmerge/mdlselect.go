package walknmerge

import (
	"context"

	"dbtf/internal/mdl"
	"dbtf/internal/tensor"
)

// selectMDL greedily picks the subset of blocks that minimizes the
// description length of x: each round adds the block with the largest
// bits saving (ones newly explained vs zeros wrongly covered plus the
// block's own encoding cost) and stops when no block helps. This is the
// model-order selection of the original Walk'n'Merge; without it the
// caller has to fix the rank externally.
func selectMDL(ctx context.Context, x *tensor.Tensor, blocks []*Block) ([]*Block, error) {
	dimI, dimJ, dimK := x.Dims()
	type cell struct{ i, j, k int }
	cover := make(map[cell]bool)

	errs := int64(x.NNZ()) // all ones start uncovered
	modelBits := 0.0
	curBits := modelBits + mdl.ErrorBits(dimI, dimJ, dimK, errs)

	blockBits := func(b *Block) float64 {
		return mdl.VectorBits(int64(dimI), int64(b.I.OnesCount())) +
			mdl.VectorBits(int64(dimJ), int64(b.J.OnesCount())) +
			mdl.VectorBits(int64(dimK), int64(b.K.OnesCount()))
	}
	// newCells counts the block's cells not yet covered, split into ones
	// and zeros of x.
	newCells := func(b *Block) (ones, zeros int64) {
		for _, i := range b.I.Indices() {
			for _, j := range b.J.Indices() {
				for _, k := range b.K.Indices() {
					if cover[cell{i, j, k}] {
						continue
					}
					if x.Get(i, j, k) {
						ones++
					} else {
						zeros++
					}
				}
			}
		}
		return ones, zeros
	}

	remaining := append([]*Block(nil), blocks...)
	var selected []*Block
	for len(selected) < 64 && len(remaining) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestIdx := -1
		bestBits := curBits
		var bestErrs int64
		for idx, b := range remaining {
			ones, zeros := newCells(b)
			newErrs := errs - ones + zeros
			bits := modelBits + blockBits(b) + mdl.ErrorBits(dimI, dimJ, dimK, newErrs)
			if bits < bestBits {
				bestIdx, bestBits, bestErrs = idx, bits, newErrs
			}
		}
		if bestIdx < 0 {
			break
		}
		b := remaining[bestIdx]
		for _, i := range b.I.Indices() {
			for _, j := range b.J.Indices() {
				for _, k := range b.K.Indices() {
					cover[cell{i, j, k}] = true
				}
			}
		}
		selected = append(selected, b)
		modelBits += blockBits(b)
		errs = bestErrs
		curBits = bestBits
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return selected, nil
}
