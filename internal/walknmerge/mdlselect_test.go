package walknmerge

import (
	"context"
	"math/rand"
	"testing"

	"dbtf/internal/bitvec"
	"dbtf/internal/tensor"
)

func TestMDLSelectKeepsPlantedBlocksDropsNoise(t *testing.T) {
	// Two real dense blocks plus scattered noise: MDL selection must keep
	// exactly the two blocks and reject tiny noise blocks.
	rng := rand.New(rand.NewSource(1))
	var coords []tensor.Coord
	addBlock := func(i0, i1, j0, j1, k0, k1 int) {
		for i := i0; i < i1; i++ {
			for j := j0; j < j1; j++ {
				for k := k0; k < k1; k++ {
					coords = append(coords, tensor.Coord{I: i, J: j, K: k})
				}
			}
		}
	}
	addBlock(0, 6, 0, 6, 0, 6)
	addBlock(10, 15, 10, 15, 10, 15)
	for n := 0; n < 20; n++ {
		coords = append(coords, tensor.Coord{I: rng.Intn(16), J: rng.Intn(16), K: rng.Intn(16)})
	}
	x := tensor.MustFromCoords(16, 16, 16, coords)

	res, err := Decompose(context.Background(), x, Options{Seed: 2, MergeThreshold: 0.9, MDLSelect: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) < 2 {
		t.Fatalf("MDL selected %d blocks, want >= 2", len(res.Blocks))
	}
	// The two largest selected blocks must be (supersets of) the planted
	// ones; noise-only blocks must not dominate.
	if res.Blocks[0].Ones < 125 || res.Blocks[1].Ones < 100 {
		t.Fatalf("selected block sizes %d, %d too small", res.Blocks[0].Ones, res.Blocks[1].Ones)
	}
}

func TestSelectMDLRejectsWastefulBlocks(t *testing.T) {
	// A block that is mostly zeros must never be selected: covering zeros
	// adds error bits with no compensating savings.
	x := tensor.MustFromCoords(10, 10, 10, []tensor.Coord{{I: 0, J: 0, K: 0}})
	wasteful := &Block{
		I:    bitvec.FromIndices(10, []int{0, 1, 2, 3, 4}),
		J:    bitvec.FromIndices(10, []int{0, 1, 2, 3, 4}),
		K:    bitvec.FromIndices(10, []int{0, 1, 2, 3, 4}),
		Ones: 1,
	}
	selected, err := selectMDL(context.Background(), x, []*Block{wasteful})
	if err != nil {
		t.Fatal(err)
	}
	if len(selected) != 0 {
		t.Fatalf("wasteful block selected")
	}
}

func TestSelectMDLAcceptsPerfectBlock(t *testing.T) {
	var coords []tensor.Coord
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			for k := 0; k < 5; k++ {
				coords = append(coords, tensor.Coord{I: i, J: j, K: k})
			}
		}
	}
	x := tensor.MustFromCoords(8, 8, 8, coords)
	b := &Block{
		I:    bitvec.FromIndices(8, []int{0, 1, 2, 3, 4}),
		J:    bitvec.FromIndices(8, []int{0, 1, 2, 3, 4}),
		K:    bitvec.FromIndices(8, []int{0, 1, 2, 3, 4}),
		Ones: 125,
	}
	selected, err := selectMDL(context.Background(), x, []*Block{b})
	if err != nil {
		t.Fatal(err)
	}
	if len(selected) != 1 {
		t.Fatalf("perfect block not selected")
	}
}

func TestSelectMDLDeduplicatesOverlap(t *testing.T) {
	// Two identical candidate blocks: selecting the second saves nothing
	// (all its cells are covered) but costs model bits, so only one may be
	// selected.
	var coords []tensor.Coord
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				coords = append(coords, tensor.Coord{I: i, J: j, K: k})
			}
		}
	}
	x := tensor.MustFromCoords(6, 6, 6, coords)
	mk := func() *Block {
		return &Block{
			I:    bitvec.FromIndices(6, []int{0, 1, 2, 3}),
			J:    bitvec.FromIndices(6, []int{0, 1, 2, 3}),
			K:    bitvec.FromIndices(6, []int{0, 1, 2, 3}),
			Ones: 64,
		}
	}
	selected, err := selectMDL(context.Background(), x, []*Block{mk(), mk()})
	if err != nil {
		t.Fatal(err)
	}
	if len(selected) != 1 {
		t.Fatalf("selected %d copies of the same block", len(selected))
	}
}

func TestSelectMDLContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := tensor.MustFromCoords(4, 4, 4, []tensor.Coord{{I: 0, J: 0, K: 0}})
	b := &Block{I: bitvec.FromIndices(4, []int{0}), J: bitvec.FromIndices(4, []int{0}), K: bitvec.FromIndices(4, []int{0}), Ones: 1}
	if _, err := selectMDL(ctx, x, []*Block{b}); err == nil {
		t.Fatal("cancelled context not honored")
	}
}
