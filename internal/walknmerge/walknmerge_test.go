package walknmerge

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"dbtf/internal/bitvec"
	"dbtf/internal/tensor"
)

func ctxb() context.Context { return context.Background() }

func blockTensor(specs [][6]int, dims [3]int) *tensor.Tensor {
	var coords []tensor.Coord
	for _, s := range specs {
		for i := s[0]; i < s[1]; i++ {
			for j := s[2]; j < s[3]; j++ {
				for k := s[4]; k < s[5]; k++ {
					coords = append(coords, tensor.Coord{I: i, J: j, K: k})
				}
			}
		}
	}
	return tensor.MustFromCoords(dims[0], dims[1], dims[2], coords)
}

func TestValidation(t *testing.T) {
	x := blockTensor([][6]int{{0, 2, 0, 2, 0, 2}}, [3]int{4, 4, 4})
	cases := []Options{
		{Rank: -1},
		{Rank: 65},
		{WalkLength: -1},
		{NumWalks: -1},
		{MergeThreshold: 1.5},
		{MergeThreshold: -0.1},
		{MinBlockDim: -1},
		{MaxBlocks: -1},
	}
	for i, opt := range cases {
		if _, err := Decompose(ctxb(), x, opt); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
	if _, err := Decompose(ctxb(), nil, Options{}); err == nil {
		t.Error("nil tensor accepted")
	}
	if _, err := Decompose(ctxb(), tensor.New(0, 2, 2), Options{}); err == nil {
		t.Error("empty tensor accepted")
	}
}

func TestRecoversSingleDenseBlock(t *testing.T) {
	x := blockTensor([][6]int{{2, 8, 3, 9, 1, 7}}, [3]int{12, 12, 12})
	res, err := Decompose(ctxb(), x, Options{Seed: 1, MergeThreshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 {
		t.Fatalf("single dense block not recovered exactly: error %d (blocks %d)", res.Error, len(res.Blocks))
	}
}

func TestRecoversTwoDisjointBlocks(t *testing.T) {
	x := blockTensor([][6]int{
		{0, 5, 0, 5, 0, 5},
		{7, 12, 7, 12, 7, 12},
	}, [3]int{12, 12, 12})
	res, err := Decompose(ctxb(), x, Options{Seed: 2, MergeThreshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 {
		t.Fatalf("two blocks not recovered: error %d", res.Error)
	}
	if len(res.Blocks) < 2 {
		t.Fatalf("found %d blocks, want >= 2", len(res.Blocks))
	}
}

func TestMergeGrowsBlocks(t *testing.T) {
	// One large dense block: short walks only span fragments of it, so
	// exact recovery requires the merge phase to reassemble them.
	x := blockTensor([][6]int{{0, 10, 0, 10, 0, 10}}, [3]int{16, 16, 16})
	res, err := Decompose(ctxb(), x, Options{Seed: 3, MergeThreshold: 0.95, WalkLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) == 0 {
		t.Fatal("no blocks found")
	}
	best := res.Blocks[0]
	if best.Ones != 1000 {
		t.Fatalf("largest block covers %d ones, want 1000 (merge failed)", best.Ones)
	}
}

func TestRankBoundsFactors(t *testing.T) {
	x := blockTensor([][6]int{
		{0, 4, 0, 4, 0, 4},
		{5, 9, 5, 9, 5, 9},
		{10, 14, 10, 14, 10, 14},
	}, [3]int{14, 14, 14})
	res, err := Decompose(ctxb(), x, Options{Rank: 2, Seed: 4, MergeThreshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if res.A.Rank() != 2 {
		t.Fatalf("factor rank %d, want 2", res.A.Rank())
	}
	// The two largest blocks cover 2/3 of the ones; error must reflect the
	// third, uncovered block.
	if res.Error != 64 {
		t.Fatalf("error %d, want 64 (one uncovered 4x4x4 block)", res.Error)
	}
}

func TestNoisyBlockStillFound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var coords []tensor.Coord
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			for k := 0; k < 8; k++ {
				if rng.Float64() < 0.9 { // 10% destructive noise
					coords = append(coords, tensor.Coord{I: i, J: j, K: k})
				}
			}
		}
	}
	x := tensor.MustFromCoords(16, 16, 16, coords)
	res, err := Decompose(ctxb(), x, Options{Seed: 6, MergeThreshold: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) == 0 {
		t.Fatal("no blocks found in noisy tensor")
	}
	if got := res.Blocks[0].Ones; got < 300 {
		t.Fatalf("largest block covers only %d ones", got)
	}
}

func TestErrorMatchesReconstruction(t *testing.T) {
	x := blockTensor([][6]int{{0, 6, 0, 6, 0, 6}, {8, 11, 8, 11, 8, 11}}, [3]int{12, 12, 12})
	res, err := Decompose(ctxb(), x, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if want := tensor.ReconstructError(x, res.A, res.B, res.C); res.Error != want {
		t.Fatalf("reported error %d != recomputed %d", res.Error, want)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := blockTensor([][6]int{{0, 8, 0, 8, 0, 8}}, [3]int{10, 10, 10})
	if _, err := Decompose(ctx, x, Options{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEmptyTensorNoBlocks(t *testing.T) {
	x := tensor.New(8, 8, 8)
	res, err := Decompose(ctxb(), x, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 0 || res.Error != 0 {
		t.Fatalf("blocks %d error %d on empty tensor", len(res.Blocks), res.Error)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	x := blockTensor([][6]int{{0, 5, 0, 5, 0, 5}, {6, 10, 6, 10, 6, 10}}, [3]int{10, 10, 10})
	r1, err := Decompose(ctxb(), x, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Decompose(ctxb(), x, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Error != r2.Error || len(r1.Blocks) != len(r2.Blocks) {
		t.Fatal("results differ for the same seed")
	}
}

func TestBlockDensityAndVolume(t *testing.T) {
	b := &Block{
		I:    bitvec.FromIndices(4, []int{0, 1}),
		J:    bitvec.FromIndices(4, []int{0, 1, 2}),
		K:    bitvec.FromIndices(4, []int{3}),
		Ones: 3,
	}
	if b.Volume() != 6 {
		t.Fatalf("Volume = %d, want 6", b.Volume())
	}
	if b.Density() != 0.5 {
		t.Fatalf("Density = %v, want 0.5", b.Density())
	}
}
