// Package walknmerge implements the Walk'n'Merge algorithm for Boolean
// tensor factorization (Erdős & Miettinen, "Walk 'n' Merge: A Scalable
// Algorithm for Boolean Tensor Factorization", ICDM 2013), the second
// baseline of the DBTF paper.
//
// Walk'n'Merge views the tensor's nonzeros as a graph — two nonzeros are
// adjacent when they differ in exactly one coordinate — and proceeds in
// two phases:
//
//  1. Walk: short random walks over the graph; the distinct per-mode
//     indices visited by a walk span a candidate sub-tensor, which is kept
//     when dense enough. Dense blocks are (approximately) rank-1 tensors.
//  2. Merge: pairs of overlapping blocks are merged whenever the spanned
//     union block still meets the density threshold t (the paper's
//     experiments set t = 1 − n_d for destructive noise level n_d).
//
// The blocks are finally converted to rank-1 factors ordered by the number
// of ones they cover. The DBTF paper notes that Walk'n'Merge is parallel
// but not distributed and that its running time grows rapidly with tensor
// size; both properties hold for this implementation (the merge phase is
// quadratic in the number of discovered blocks).
package walknmerge

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"dbtf/internal/bitvec"
	"dbtf/internal/boolmat"
	"dbtf/internal/tensor"
)

// Options configures a Walk'n'Merge run.
type Options struct {
	// Rank bounds the number of blocks converted to rank-1 factors.
	// Default: as many as found, capped at 64. Walk'n'Merge itself is not
	// rank-bounded — the paper notes its running time is identical across
	// ranks — so this only selects the reported factors.
	Rank int
	// WalkLength is the length of each random walk. Default 5 (the
	// paper's setting).
	WalkLength int
	// NumWalks is the number of random walks. Default max(|X|, 256).
	NumWalks int
	// MergeThreshold is the density threshold t for accepting and merging
	// blocks. Default 0.8; the paper's experiments use 1 − n_d.
	MergeThreshold float64
	// MinBlockDim drops final blocks smaller than this in any mode.
	// Default 2; the paper uses minimum block size 4×4×4 on its (much
	// larger) tensors.
	MinBlockDim int
	// MaxBlocks caps the number of candidate blocks entering the merge
	// phase (largest first). Default 512.
	MaxBlocks int
	// MDLSelect enables the original algorithm's minimum-description-
	// length model-order selection: blocks are greedily added while they
	// reduce the tensor's description length, and the selection order
	// replaces the covered-ones ordering. Off by default (the DBTF
	// paper's comparisons fix the rank externally).
	MDLSelect bool
	// Seed seeds the random walks.
	Seed int64
}

func (o *Options) withDefaults(nnz int) (Options, error) {
	opt := *o
	if opt.Rank < 0 || opt.Rank > boolmat.MaxRank {
		return opt, fmt.Errorf("walknmerge: rank %d outside [0,%d]", opt.Rank, boolmat.MaxRank)
	}
	if opt.WalkLength == 0 {
		opt.WalkLength = 5
	}
	if opt.WalkLength < 1 {
		return opt, fmt.Errorf("walknmerge: WalkLength %d < 1", opt.WalkLength)
	}
	if opt.NumWalks == 0 {
		opt.NumWalks = nnz
		if opt.NumWalks < 256 {
			opt.NumWalks = 256
		}
	}
	if opt.NumWalks < 1 {
		return opt, fmt.Errorf("walknmerge: NumWalks %d < 1", opt.NumWalks)
	}
	if opt.MergeThreshold == 0 {
		opt.MergeThreshold = 0.8
	}
	if opt.MergeThreshold <= 0 || opt.MergeThreshold > 1 {
		return opt, fmt.Errorf("walknmerge: MergeThreshold %v outside (0,1]", opt.MergeThreshold)
	}
	if opt.MinBlockDim == 0 {
		opt.MinBlockDim = 2
	}
	if opt.MinBlockDim < 1 {
		return opt, fmt.Errorf("walknmerge: MinBlockDim %d < 1", opt.MinBlockDim)
	}
	if opt.MaxBlocks == 0 {
		opt.MaxBlocks = 512
	}
	if opt.MaxBlocks < 1 {
		return opt, fmt.Errorf("walknmerge: MaxBlocks %d < 1", opt.MaxBlocks)
	}
	return opt, nil
}

// Block is a dense sub-tensor spanned by per-mode index sets.
type Block struct {
	// I, J, K are the per-mode index sets, as bit vectors over the tensor
	// dimensions.
	I, J, K *bitvec.BitVec
	// Ones is the number of tensor nonzeros inside the block.
	Ones int
}

// Volume returns the number of cells the block spans.
func (b *Block) Volume() int { return b.I.OnesCount() * b.J.OnesCount() * b.K.OnesCount() }

// Density returns Ones / Volume.
func (b *Block) Density() float64 {
	v := b.Volume()
	if v == 0 {
		return 0
	}
	return float64(b.Ones) / float64(v)
}

func (b *Block) minDim() int {
	m := b.I.OnesCount()
	if j := b.J.OnesCount(); j < m {
		m = j
	}
	if k := b.K.OnesCount(); k < m {
		m = k
	}
	return m
}

// Result reports a Walk'n'Merge factorization.
type Result struct {
	// Blocks are the merged dense blocks, largest cover first.
	Blocks []*Block
	// A, B, C are rank-1 factors built from the top blocks.
	A, B, C *boolmat.FactorMatrix
	// Error is |X ⊕ X̂| for the returned factors.
	Error int64
	// WallTime is the elapsed time of the run.
	WallTime time.Duration
}

// Decompose runs Walk'n'Merge on x.
func Decompose(ctx context.Context, x *tensor.Tensor, opts Options) (*Result, error) {
	if x == nil {
		return nil, fmt.Errorf("walknmerge: nil tensor")
	}
	dimI, dimJ, dimK := x.Dims()
	if dimI == 0 || dimJ == 0 || dimK == 0 {
		return nil, fmt.Errorf("walknmerge: empty tensor %dx%dx%d", dimI, dimJ, dimK)
	}
	opt, err := opts.withDefaults(x.NNZ())
	if err != nil {
		return nil, err
	}
	start := time.Now()

	g := buildGraph(x)
	rng := rand.New(rand.NewSource(opt.Seed))

	blocks, err := walkPhase(ctx, x, g, rng, opt)
	if err != nil {
		return nil, err
	}
	blocks, err = mergePhase(ctx, x, blocks, opt)
	if err != nil {
		return nil, err
	}

	// Drop undersized blocks; keep them only if nothing else survives.
	var sized []*Block
	for _, b := range blocks {
		if b.minDim() >= opt.MinBlockDim {
			sized = append(sized, b)
		}
	}
	if len(sized) > 0 {
		blocks = sized
	}
	sort.Slice(blocks, func(a, b int) bool { return blocks[a].Ones > blocks[b].Ones })
	if opt.MDLSelect {
		blocks, err = selectMDL(ctx, x, blocks)
		if err != nil {
			return nil, err
		}
	}

	r := opt.Rank
	if r == 0 || r > len(blocks) {
		r = len(blocks)
	}
	if r > boolmat.MaxRank {
		r = boolmat.MaxRank
	}
	res := &Result{Blocks: blocks}
	res.A, res.B, res.C = factorsFromBlocks(blocks[:r], dimI, dimJ, dimK)
	res.Error = tensor.ReconstructError(x, res.A, res.B, res.C)
	res.WallTime = time.Since(start)
	return res, nil
}

// graph holds, for every fiber, the nonzero coordinates it contains: the
// adjacency structure of the nonzero graph (two nonzeros are adjacent when
// they share a fiber).
type graph struct {
	coords []tensor.Coord
	byJK   map[[2]int][]int32 // (j,k) → indices into coords
	byIK   map[[2]int][]int32
	byIJ   map[[2]int][]int32
}

func buildGraph(x *tensor.Tensor) *graph {
	g := &graph{
		coords: x.Coords(),
		byJK:   make(map[[2]int][]int32),
		byIK:   make(map[[2]int][]int32),
		byIJ:   make(map[[2]int][]int32),
	}
	for idx, c := range g.coords {
		g.byJK[[2]int{c.J, c.K}] = append(g.byJK[[2]int{c.J, c.K}], int32(idx))
		g.byIK[[2]int{c.I, c.K}] = append(g.byIK[[2]int{c.I, c.K}], int32(idx))
		g.byIJ[[2]int{c.I, c.J}] = append(g.byIJ[[2]int{c.I, c.J}], int32(idx))
	}
	return g
}

// step moves from coordinate index cur to a random neighbour (a nonzero in
// one of cur's three fibers). Returns cur when the node is isolated.
func (g *graph) step(rng *rand.Rand, cur int32) int32 {
	c := g.coords[cur]
	for _, mode := range rng.Perm(3) {
		var fiber []int32
		switch mode {
		case 0:
			fiber = g.byJK[[2]int{c.J, c.K}]
		case 1:
			fiber = g.byIK[[2]int{c.I, c.K}]
		default:
			fiber = g.byIJ[[2]int{c.I, c.J}]
		}
		if len(fiber) > 1 {
			next := fiber[rng.Intn(len(fiber))]
			if next != cur {
				return next
			}
			return fiber[rng.Intn(len(fiber))]
		}
	}
	return cur
}

// walkPhase runs random walks and keeps the spanned candidate blocks that
// meet the density threshold.
func walkPhase(ctx context.Context, x *tensor.Tensor, g *graph, rng *rand.Rand, opt Options) ([]*Block, error) {
	dimI, dimJ, dimK := x.Dims()
	if len(g.coords) == 0 {
		return nil, nil
	}
	seen := map[string]bool{}
	var blocks []*Block
	for w := 0; w < opt.NumWalks; w++ {
		if w%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		cur := int32(rng.Intn(len(g.coords)))
		bi := bitvec.New(dimI)
		bj := bitvec.New(dimJ)
		bk := bitvec.New(dimK)
		visit := func(idx int32) {
			c := g.coords[idx]
			bi.Set(c.I)
			bj.Set(c.J)
			bk.Set(c.K)
		}
		visit(cur)
		for s := 0; s < opt.WalkLength; s++ {
			cur = g.step(rng, cur)
			visit(cur)
		}
		b := &Block{I: bi, J: bj, K: bk}
		b.Ones = countOnes(x, b)
		if b.Density() < opt.MergeThreshold {
			continue
		}
		key := bi.String() + "|" + bj.String() + "|" + bk.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(a, b int) bool { return blocks[a].Ones > blocks[b].Ones })
	if len(blocks) > opt.MaxBlocks {
		blocks = blocks[:opt.MaxBlocks]
	}
	return blocks, nil
}

// mergePhase repeatedly merges overlapping block pairs whose spanned union
// still meets the density threshold, until a fixpoint.
func mergePhase(ctx context.Context, x *tensor.Tensor, blocks []*Block, opt Options) ([]*Block, error) {
	for changed := true; changed; {
		changed = false
		for a := 0; a < len(blocks); a++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for b := a + 1; b < len(blocks); b++ {
				if !overlap(blocks[a], blocks[b]) {
					continue
				}
				m := union(blocks[a], blocks[b])
				m.Ones = countOnes(x, m)
				if m.Density() >= opt.MergeThreshold {
					blocks[a] = m
					blocks = append(blocks[:b], blocks[b+1:]...)
					changed = true
					b--
				}
			}
		}
	}
	return blocks, nil
}

// overlap reports whether two blocks share at least one index in at least
// two modes — the merge-candidate prefilter.
func overlap(a, b *Block) bool {
	shared := 0
	if a.I.AndCount(b.I) > 0 {
		shared++
	}
	if a.J.AndCount(b.J) > 0 {
		shared++
	}
	if a.K.AndCount(b.K) > 0 {
		shared++
	}
	return shared >= 2
}

func union(a, b *Block) *Block {
	i := a.I.Copy()
	i.Or(b.I)
	j := a.J.Copy()
	j.Or(b.J)
	k := a.K.Copy()
	k.Or(b.K)
	return &Block{I: i, J: j, K: k}
}

// countOnes counts the tensor nonzeros inside a block, iterating whichever
// of (block cells, tensor nonzeros) is smaller.
func countOnes(x *tensor.Tensor, b *Block) int {
	if b.Volume() <= 2*x.NNZ() {
		n := 0
		for _, i := range b.I.Indices() {
			for _, j := range b.J.Indices() {
				for _, k := range b.K.Indices() {
					if x.Get(i, j, k) {
						n++
					}
				}
			}
		}
		return n
	}
	n := 0
	for _, c := range x.Coords() {
		if b.I.Get(c.I) && b.J.Get(c.J) && b.K.Get(c.K) {
			n++
		}
	}
	return n
}

func factorsFromBlocks(blocks []*Block, dimI, dimJ, dimK int) (a, b, c *boolmat.FactorMatrix) {
	r := len(blocks)
	a = boolmat.NewFactor(dimI, r)
	b = boolmat.NewFactor(dimJ, r)
	c = boolmat.NewFactor(dimK, r)
	for q, blk := range blocks {
		blk.I.Range(func(i int) { a.Set(i, q, true) })
		blk.J.Range(func(j int) { b.Set(j, q, true) })
		blk.K.Range(func(k int) { c.Set(k, q, true) })
	}
	return a, b, c
}
