package experiments

import (
	"context"
	"fmt"

	"dbtf"
)

func init() {
	register("chaos", "fault tolerance: makespan under injected failures (Figure-7-style)", ChaosMakespan)
}

// ChaosMakespan reruns the machine-scalability workload under increasing
// injected failure rates and reports how the simulated makespan degrades.
// The Spark property DBTF inherits — lost tasks are re-executed, so
// failures cost time but never correctness — must hold exactly: every row
// checks that the factorization's output is bit-identical to the
// fault-free run.
func ChaosMakespan(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dim := scaleDim(256, cfg.Scale)
	rng := cfg.rng()
	truth, _ := dbtf.TensorFromRandomFactors(rng, dim, dim, dim, fig1Rank, 0.2)
	x := dbtf.AddNoise(rng, truth, 0.05, 0.05)
	t := &Table{
		ID:     "chaos",
		Title:  fmt.Sprintf("simulated makespan under injected task failures (I=J=K=%d, rank 10, M=%d)", dim, cfg.Machines),
		Header: []string{"failure rate", "sim time", "slowdown", "faults", "retries", "spec wins", "output"},
		Notes: []string{
			"failure rate f injects task losses at f, panics at f/4, and stragglers at f/2",
			"injected faults are recovered by per-task retry; 'output =' marks bit-identical factors and error vs the fault-free run",
			"the simulated clock pays wasted attempts, exponential backoff, and straggler delays (capped by speculative re-execution)",
		},
	}
	var baseline *dbtf.Result
	for _, rate := range []float64{0, 0.05, 0.1, 0.2} {
		cfg.progress("chaos: failure rate %.2f", rate)
		opt := dbtf.Options{
			Rank: fig1Rank, Machines: cfg.Machines,
			MaxIter: 3, MinIter: 3, Seed: cfg.Seed,
			Tracer: cfg.Tracer,
		}
		if rate > 0 {
			opt.Faults = &dbtf.FaultPlan{
				Seed:          cfg.Seed,
				FailureRate:   rate,
				PanicRate:     rate / 4,
				StragglerRate: rate / 2,
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Budget)
		res, err := dbtf.Factorize(ctx, x, opt)
		cancel()
		if err != nil {
			cell := "error"
			if ctx.Err() != nil {
				cell = "o.o.t."
			}
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f", rate), cell, "-", "-", "-", "-", "-"})
			continue
		}
		if baseline == nil {
			baseline = res
		}
		slowdown := "-"
		if baseline.SimTime > 0 {
			slowdown = fmt.Sprintf("%.2fx", float64(res.SimTime)/float64(baseline.SimTime))
		}
		output := "="
		if res.Error != baseline.Error || !res.A.Equal(baseline.A) ||
			!res.B.Equal(baseline.B) || !res.C.Equal(baseline.C) {
			output = "DIVERGED"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", rate),
			formatDuration(res.SimTime),
			slowdown,
			fmt.Sprintf("%d", res.Stats.InjectedFaults),
			fmt.Sprintf("%d", res.Stats.Retries),
			fmt.Sprintf("%d", res.Stats.SpeculativeWins),
			output,
		})
	}
	return t
}
