// Package experiments reproduces every table and figure of the paper's
// evaluation (Section IV) on scaled-down workloads: the data-scalability
// sweeps of Figure 1, the real-world comparison of Figure 6, the machine
// scalability of Figure 7, the reconstruction-error sweeps of Section
// IV-D, the traffic validation of Lemmas 6–7, and the ablations DESIGN.md
// calls out.
//
// Each experiment is registered by the identifier used in DESIGN.md's
// experiment index and returns a formatted Table; cmd/dbtf-bench prints
// them and the root bench_test.go drives them under `go test -bench`.
//
// Per-run time budgets replace the paper's 6- and 12-hour walls: a method
// exceeding the budget is reported as "o.o.t.", and BCP_ALS runs whose
// quadratic initialization exceeds the memory cap are reported as
// "o.o.m.", matching how the paper's figures mark failures.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"dbtf"
	"dbtf/internal/asso"
)

// Config carries the knobs every experiment shares.
type Config struct {
	// Budget is the per-run time budget standing in for the paper's
	// out-of-time walls. Default 30s.
	Budget time.Duration
	// Machines is the simulated cluster size for DBTF. Default 16 (the
	// paper's executor count).
	Machines int
	// Seed makes all generated data and methods deterministic.
	Seed int64
	// Scale shrinks or grows the default workload sizes. Default 1.0;
	// the bench harness uses smaller scales to keep `go test -bench`
	// turnaround reasonable.
	Scale float64
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// Tracer, when non-nil, receives the structured trace events of every
	// DBTF run the experiments execute (one run span per Factorize call,
	// all on one stream).
	Tracer *dbtf.Tracer
}

func (c Config) withDefaults() Config {
	if c.Budget == 0 {
		c.Budget = 30 * time.Second
	}
	if c.Machines == 0 {
		c.Machines = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	return c
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

func (c Config) progress(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// Method identifies a factorization method under comparison.
type Method string

// The three methods of the paper's evaluation.
const (
	DBTF       Method = "DBTF"
	BCPALS     Method = "BCP_ALS"
	WalkNMerge Method = "Walk'n'Merge"
)

// AllMethods is the comparison order used in every table.
var AllMethods = []Method{DBTF, BCPALS, WalkNMerge}

// Run is one method execution on one workload.
type Run struct {
	Method Method
	// Wall is the real elapsed time; for budget-exceeded runs it is the
	// budget.
	Wall time.Duration
	// Sim is the simulated cluster time (DBTF only).
	Sim time.Duration
	// OOT and OOM mark budget and memory failures.
	OOT, OOM bool
	// FailDetail attributes a failure: which baseline and which stage hit
	// the budget or the memory cap (e.g. the init mode that materialized
	// the quadratic candidate matrix). Empty for successful runs.
	FailDetail string
	// Err holds any other failure.
	Err error
	// Iters is the number of full iterations executed (DBTF and BCP_ALS).
	Iters int
	// Error is the Boolean reconstruction error (successful runs).
	Error int64
	// Rel is Error / |X|.
	Rel float64
	// Factors holds the fitted factors (successful runs).
	Factors dbtf.Factors
	// Stats holds DBTF's cluster traffic counters.
	Stats dbtf.ClusterStats
}

// TimeCell formats the run's outcome for a runtime table.
func (r Run) TimeCell() string {
	switch {
	case r.OOT:
		return "o.o.t."
	case r.OOM:
		return "o.o.m."
	case r.Err != nil:
		return "error"
	default:
		return formatDuration(r.Wall)
	}
}

// ErrCell formats the run's outcome for an accuracy table using the given
// relative error value.
func (r Run) ErrCell(v float64) string {
	switch {
	case r.OOT:
		return "o.o.t."
	case r.OOM:
		return "o.o.m."
	case r.Err != nil:
		return "error"
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func formatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// MethodOptions carries the per-method tuning a workload needs.
type MethodOptions struct {
	Rank int
	// MergeThreshold for Walk'n'Merge; 0 means its default. The paper sets
	// it to 1 − (destructive noise level).
	MergeThreshold float64
	// InitialSets (L) for DBTF; 0 means 1.
	InitialSets int
	// Init selects DBTF's initialization scheme; the zero value is the
	// fiber-sample default.
	Init dbtf.InitScheme
	// BCPALSInit selects BCP_ALS's per-mode initialization; the zero value
	// is the top-fiber default, BCPALSInitASSO restores the quadratic
	// historical path.
	BCPALSInit dbtf.BCPALSInit
	// Partitions (N) for DBTF; 0 means the cluster's machine count.
	Partitions int
	// FullIterations forces exactly 10 update sweeps for DBTF and BCP_ALS
	// instead of stopping at convergence, so runtime sweeps measure the
	// same amount of update work per method (random tensors otherwise
	// converge after one or two sweeps).
	FullIterations bool
}

// RunMethod executes one method on x under the config's budget and maps
// failures to the table markers.
func RunMethod(cfg Config, m Method, x *dbtf.Tensor, opt MethodOptions) Run {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Budget)
	defer cancel()
	run := Run{Method: m}
	start := time.Now()
	var err error
	switch m {
	case DBTF:
		o := dbtf.Options{
			Rank:        opt.Rank,
			Machines:    cfg.Machines,
			Partitions:  opt.Partitions,
			InitialSets: opt.InitialSets,
			Init:        opt.Init,
			Seed:        cfg.Seed,
			Tracer:      cfg.Tracer,
		}
		if opt.FullIterations {
			o.MaxIter, o.MinIter = 10, 10
		}
		var res *dbtf.Result
		res, err = dbtf.Factorize(ctx, x, o)
		if err == nil {
			run.Sim = res.SimTime
			run.Iters = res.Iterations
			run.Error = res.Error
			run.Rel = res.RelativeError
			run.Factors = res.Factors
			run.Stats = res.Stats
		}
	case BCPALS:
		o := dbtf.BCPALSOptions{Rank: opt.Rank, Init: opt.BCPALSInit}
		if opt.FullIterations {
			o.MaxIter, o.MinIter = 10, 10
		}
		var res *dbtf.BCPALSResult
		res, err = dbtf.FactorizeBCPALS(ctx, x, o)
		if err == nil {
			run.Iters = res.Iterations
			run.Error = res.Error
			run.Factors = dbtf.Factors{A: res.A, B: res.B, C: res.C}
			if x.NNZ() > 0 {
				run.Rel = float64(res.Error) / float64(x.NNZ())
			}
		}
	case WalkNMerge:
		var res *dbtf.WalkNMergeResult
		res, err = dbtf.FactorizeWalkNMerge(ctx, x, dbtf.WalkNMergeOptions{
			Rank:           opt.Rank,
			MergeThreshold: opt.MergeThreshold,
			Seed:           cfg.Seed,
		})
		if err == nil {
			run.Error = res.Error
			run.Factors = dbtf.Factors{A: res.A, B: res.B, C: res.C}
			if x.NNZ() > 0 {
				run.Rel = float64(res.Error) / float64(x.NNZ())
			}
		}
	default:
		err = fmt.Errorf("experiments: unknown method %q", m)
	}
	run.Wall = time.Since(start)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		run.OOT = true
		run.Wall = cfg.Budget
		run.FailDetail = failDetail(m, opt, "time budget exceeded")
	case errors.Is(err, asso.ErrCandidateMemory):
		run.OOM = true
		run.FailDetail = failDetail(m, opt, err.Error())
	case err != nil:
		run.Err = err
	}
	if run.FailDetail != "" {
		cfg.progress("  %-13s %-10s rel=%s  [%s]", m, run.TimeCell(), run.ErrCell(run.Rel), run.FailDetail)
	} else {
		cfg.progress("  %-13s %-10s rel=%s", m, run.TimeCell(), run.ErrCell(run.Rel))
	}
	return run
}

// failDetail attributes a failure to the baseline and the init stage it
// ran under, so an o.o.m./o.o.t. table cell can be traced to the exact
// configuration that gave out (historically: BCP_ALS's ASSO init
// materializing its quadratic candidate matrix).
func failDetail(m Method, opt MethodOptions, cause string) string {
	switch m {
	case DBTF:
		return fmt.Sprintf("%s init=%s: %s", m, opt.Init, cause)
	case BCPALS:
		return fmt.Sprintf("%s init=%s: %s", m, opt.BCPALSInit, cause)
	default:
		return fmt.Sprintf("%s: %s", m, cause)
	}
}

// Table is one reproduced table or figure, as formatted rows.
type Table struct {
	// ID is the DESIGN.md experiment identifier, e.g. "fig1a".
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the formatted cells.
	Rows [][]string
	// Notes records workload parameters and deviations.
	Notes []string
}

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintf(w, "  %s\n", sb.String())
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a registered, runnable paper artifact.
type Experiment struct {
	// ID is the identifier used by DESIGN.md and cmd/dbtf-bench.
	ID string
	// Title describes the artifact.
	Title string
	// Run executes the experiment.
	Run func(Config) *Table
}

var registry []Experiment

func register(id, title string, run func(Config) *Table) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every registered experiment in a stable order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
