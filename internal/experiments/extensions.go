package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"dbtf"
)

func init() {
	register("ext-tucker", "Extension: Boolean Tucker vs CP on shared-structure tensors", ExtTucker)
	register("ext-rankselect", "Extension: MDL rank selection on planted tensors", ExtRankSelect)
	register("ext-wnm-mdl", "Extension: Walk'n'Merge MDL model-order selection", ExtWalkNMergeMDL)
}

// sharedStructureTensor plants nBlocks blocks that all reuse the same
// mode-1 index set — the regime where a Tucker core is strictly more
// compact than CP components.
func sharedStructureTensor(rng *rand.Rand, dim, nBlocks, blockSize int) *dbtf.Tensor {
	var coords []dbtf.Coord
	rows := rng.Perm(dim)[:blockSize]
	for b := 0; b < nBlocks; b++ {
		js := rng.Perm(dim)[:blockSize]
		ks := rng.Perm(dim)[:blockSize]
		for _, i := range rows {
			for _, j := range js {
				for _, k := range ks {
					coords = append(coords, dbtf.Coord{I: i, J: j, K: k})
				}
			}
		}
	}
	x, err := dbtf.TensorFromCoords(dim, dim, dim, coords)
	if err != nil {
		panic(err)
	}
	return x
}

// ExtTucker compares Boolean CP against the Boolean Tucker extension on
// tensors whose components share mode-1 structure.
func ExtTucker(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dim := scaleDim(48, cfg.Scale)
	t := &Table{
		ID:     "ext-tucker",
		Title:  fmt.Sprintf("Boolean Tucker vs CP (dim %d, blocks sharing mode-1 rows)", dim),
		Header: []string{"blocks", "CP error", "Tucker error", "core dims", "core ones"},
		Notes: []string{
			"blocks reuse one mode-1 index set, so Tucker folds the CP components into a smaller core",
		},
	}
	for _, nBlocks := range []int{2, 3, 4} {
		rng := cfg.rng()
		x := sharedStructureTensor(rng, dim, nBlocks, dim/6)
		cfg.progress("ext-tucker: %d blocks", nBlocks)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Budget)
		res, err := dbtf.FactorizeTucker(ctx, x, dbtf.TuckerOptions{
			CPRank: nBlocks, MergeThreshold: 0.9, Machines: cfg.Machines,
			InitialSets: 4, Seed: cfg.Seed,
		})
		cancel()
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", nBlocks), "error", "error", "-", "-"})
			continue
		}
		p, q, s := res.Core.Dims()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nBlocks),
			fmt.Sprintf("%d", res.CPError),
			fmt.Sprintf("%d", res.Error),
			fmt.Sprintf("%dx%dx%d", p, q, s),
			fmt.Sprintf("%d", res.Core.NNZ()),
		})
	}
	return t
}

// ExtRankSelect runs MDL rank selection against tensors with known
// planted ranks.
func ExtRankSelect(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dim := scaleDim(40, cfg.Scale)
	t := &Table{
		ID:     "ext-rankselect",
		Title:  fmt.Sprintf("MDL rank selection (dim %d, disjoint planted blocks)", dim),
		Header: []string{"planted rank", "selected rank", "model bits", "baseline bits"},
	}
	for _, planted := range []int{1, 2, 4} {
		rng := cfg.rng()
		var coords []dbtf.Coord
		per := dim / planted
		size := per * 2 / 3
		for b := 0; b < planted; b++ {
			lo := b * per
			for i := lo; i < lo+size; i++ {
				for j := lo; j < lo+size; j++ {
					for k := lo; k < lo+size; k++ {
						coords = append(coords, dbtf.Coord{I: i, J: j, K: k})
					}
				}
			}
		}
		_ = rng
		x, err := dbtf.TensorFromCoords(dim, dim, dim, coords)
		if err != nil {
			panic(err)
		}
		cfg.progress("ext-rankselect: planted rank %d", planted)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Budget)
		sel, err := dbtf.SelectRank(ctx, x, dbtf.Options{
			Machines: cfg.Machines, InitialSets: 4, Seed: cfg.Seed,
		}, 8)
		cancel()
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", planted), "error", "-", "-"})
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", planted),
			fmt.Sprintf("%d", sel.Rank),
			fmt.Sprintf("%.0f", sel.Bits[sel.Rank-1]),
			fmt.Sprintf("%.0f", sel.BaselineBits),
		})
	}
	return t
}

// ExtWalkNMergeMDL compares Walk'n'Merge's fixed-rank output against its
// MDL model-order selection on block tensors with noise.
func ExtWalkNMergeMDL(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dim := scaleDim(40, cfg.Scale)
	t := &Table{
		ID:     "ext-wnm-mdl",
		Title:  fmt.Sprintf("Walk'n'Merge MDL model-order selection (dim %d)", dim),
		Header: []string{"planted blocks", "noise nnz", "selected blocks", "error"},
		Notes:  []string{"MDL keeps the planted blocks and rejects noise without a rank parameter"},
	}
	for _, planted := range []int{2, 3} {
		rng := cfg.rng()
		var coords []dbtf.Coord
		per := dim / planted
		size := per * 2 / 3
		for b := 0; b < planted; b++ {
			lo := b * per
			for i := lo; i < lo+size; i++ {
				for j := lo; j < lo+size; j++ {
					for k := lo; k < lo+size; k++ {
						coords = append(coords, dbtf.Coord{I: i, J: j, K: k})
					}
				}
			}
		}
		noise := dim * dim / 16
		for n := 0; n < noise; n++ {
			coords = append(coords, dbtf.Coord{I: rng.Intn(dim), J: rng.Intn(dim), K: rng.Intn(dim)})
		}
		x, err := dbtf.TensorFromCoords(dim, dim, dim, coords)
		if err != nil {
			panic(err)
		}
		cfg.progress("ext-wnm-mdl: %d planted blocks", planted)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Budget)
		res, err := dbtf.FactorizeWalkNMerge(ctx, x, dbtf.WalkNMergeOptions{
			MergeThreshold: 0.9, MDLSelect: true, Seed: cfg.Seed,
		})
		cancel()
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", planted), fmt.Sprintf("%d", noise), "error", "-"})
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", planted),
			fmt.Sprintf("%d", noise),
			fmt.Sprintf("%d", len(res.Blocks)),
			fmt.Sprintf("%d", res.Error),
		})
	}
	return t
}
