package experiments

import (
	"context"
	"fmt"
	"time"

	"dbtf"
)

func init() {
	register("abl-cache", "Ablation: row-summation caching on vs off (Section III-C)", AblationCache)
	register("abl-groupbits", "Ablation: cache group bits V sweep (Lemma 2 trade-off)", AblationGroupBits)
	register("abl-partitioning", "Ablation: vertical vs horizontal partitioning (Section III-D)", AblationPartitioning)
	register("abl-partitions", "Ablation: number of partitions N sweep", AblationPartitions)
	register("abl-initsets", "Ablation: number of initial factor sets L (Algorithm 2)", AblationInitialSets)
}

// runDBTFVariant runs DBTF with explicit option overrides under the
// budget.
func runDBTFVariant(cfg Config, x *dbtf.Tensor, opt dbtf.Options) (res *dbtf.Result, wall time.Duration, oot bool, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Budget)
	defer cancel()
	if opt.Machines == 0 {
		opt.Machines = cfg.Machines
	}
	if opt.Seed == 0 {
		opt.Seed = cfg.Seed
	}
	if opt.Tracer == nil {
		opt.Tracer = cfg.Tracer
	}
	start := time.Now()
	res, err = dbtf.Factorize(ctx, x, opt)
	wall = time.Since(start)
	if err != nil && ctx.Err() != nil {
		return nil, cfg.Budget, true, nil
	}
	return res, wall, false, err
}

func variantCells(res *dbtf.Result, wall time.Duration, oot bool, err error) (timeCell, simCell, errCell string) {
	switch {
	case oot:
		return "o.o.t.", "-", "-"
	case err != nil:
		return "error", "-", "-"
	default:
		return formatDuration(wall), formatDuration(res.SimTime), fmt.Sprintf("%d", res.Error)
	}
}

// AblationCache compares DBTF with and without the row-summation cache —
// the optimization Section III-C calls the most important challenge.
func AblationCache(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "abl-cache",
		Title:  "row-summation caching on vs off (rank 20, dense planted factors)",
		Header: []string{"I=J=K", "cached", "uncached", "slowdown"},
		Notes: []string{
			"identical factor outputs are asserted by internal/core tests; only speed differs",
			"caching pays off with dense factor masks and wide rows; on tiny inputs the table build can even lose",
		},
	}
	for _, base := range []int{64, 128, 192} {
		dim := scaleDim(base, cfg.Scale)
		rng := cfg.rng()
		truth, _ := dbtf.TensorFromRandomFactors(rng, dim, dim, dim, 20, 0.25)
		x := dbtf.AddNoise(rng, truth, 0.05, 0.05)
		cfg.progress("abl-cache: I=J=K=%d", dim)
		on, wallOn, oot1, err1 := runDBTFVariant(cfg, x, dbtf.Options{Rank: 20, MaxIter: 5, MinIter: 5, CacheGroupBits: 10})
		off, wallOff, oot2, err2 := runDBTFVariant(cfg, x, dbtf.Options{Rank: 20, MaxIter: 5, MinIter: 5, CacheGroupBits: 10, NoCache: true})
		onCell, _, _ := variantCells(on, wallOn, oot1, err1)
		offCell, _, _ := variantCells(off, wallOff, oot2, err2)
		slowdown := "-"
		if !oot1 && !oot2 && err1 == nil && err2 == nil && wallOn > 0 {
			slowdown = fmt.Sprintf("%.1fx", float64(wallOff)/float64(wallOn))
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", dim), onCell, offCell, slowdown})
	}
	return t
}

// AblationGroupBits sweeps the cache-splitting threshold V at a rank large
// enough that small V forces multiple tables.
func AblationGroupBits(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dim := scaleDim(96, cfg.Scale)
	x := dbtf.RandomTensor(cfg.rng(), dim, dim, dim, 0.05)
	t := &Table{
		ID:     "abl-groupbits",
		Title:  fmt.Sprintf("cache group bits V sweep (I=J=K=%d, rank 24)", dim),
		Header: []string{"V", "tables", "wall", "error"},
		Notes: []string{
			"rank 24: V>=24 is one 16M-entry table (infeasible); small V trades extra ORs for memory (Lemma 2)",
		},
	}
	for _, v := range []int{4, 6, 8, 12} {
		cfg.progress("abl-groupbits: V=%d", v)
		res, wall, oot, err := runDBTFVariant(cfg, x, dbtf.Options{Rank: 24, MaxIter: 10, MinIter: 10, CacheGroupBits: v})
		timeCell, _, errCell := variantCells(res, wall, oot, err)
		tables := (24 + v - 1) / v
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", v), fmt.Sprintf("%d", tables), timeCell, errCell})
	}
	return t
}

// AblationPartitioning compares vertical partitioning (DBTF) against the
// horizontal strawman of Section III-D.
func AblationPartitioning(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "abl-partitioning",
		Title:  "vertical vs horizontal partitioning (rank 10)",
		Header: []string{"I=J=K", "vertical wall", "vertical sim", "horizontal wall", "horizontal sim"},
		Notes: []string{
			"horizontal partitioning ships full-width partial row summations through the driver each column",
			"its simulated time includes the resulting network transfer cost",
		},
	}
	for _, base := range []int{32, 64} {
		dim := scaleDim(base, cfg.Scale)
		x := dbtf.RandomTensor(cfg.rng(), dim, dim, dim, 0.05)
		cfg.progress("abl-partitioning: I=J=K=%d", dim)
		v, wallV, ootV, errV := runDBTFVariant(cfg, x, dbtf.Options{Rank: 10, MaxIter: 10, MinIter: 10, Partitions: 8})
		h, wallH, ootH, errH := runDBTFVariant(cfg, x, dbtf.Options{Rank: 10, MaxIter: 10, MinIter: 10, Partitions: 8, Horizontal: true})
		vTime, vSim, _ := variantCells(v, wallV, ootV, errV)
		hTime, hSim, _ := variantCells(h, wallH, ootH, errH)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", dim), vTime, vSim, hTime, hSim})
	}
	return t
}

// AblationPartitions sweeps N, the number of vertical partitions.
func AblationPartitions(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dim := scaleDim(128, cfg.Scale)
	x := dbtf.RandomTensor(cfg.rng(), dim, dim, dim, 0.02)
	t := &Table{
		ID:     "abl-partitions",
		Title:  fmt.Sprintf("partition count N sweep (I=J=K=%d, rank 10, M=16)", dim),
		Header: []string{"N", "wall", "sim", "collected bytes"},
		Notes: []string{
			"small N under-utilizes the machines; large N multiplies per-partition cache builds and driver collect traffic",
		},
	}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		cfg.progress("abl-partitions: N=%d", n)
		res, wall, oot, err := runDBTFVariant(cfg, x, dbtf.Options{Rank: 10, MaxIter: 10, MinIter: 10, Partitions: n})
		timeCell, simCell, _ := variantCells(res, wall, oot, err)
		collected := "-"
		if res != nil {
			collected = fmt.Sprintf("%d", res.Stats.CollectedBytes)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), timeCell, simCell, collected})
	}
	return t
}

// AblationInitialSets sweeps L, the number of initial factor sets tried in
// the first iteration.
func AblationInitialSets(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dim := scaleDim(64, cfg.Scale)
	rng := cfg.rng()
	truth, _ := dbtf.TensorFromRandomFactors(rng, dim, dim, dim, 8, 0.1)
	x := dbtf.AddNoise(rng, truth, 0.1, 0.05)
	t := &Table{
		ID:     "abl-initsets",
		Title:  fmt.Sprintf("initial factor sets L sweep (I=J=K=%d, rank 8, planted + noise)", dim),
		Header: []string{"L", "wall", "fit error", "relative"},
		Notes:  []string{"more initial sets trade first-iteration time for a better starting point (Algorithm 2 lines 5-8)"},
	}
	for _, l := range []int{1, 2, 4, 8} {
		cfg.progress("abl-initsets: L=%d", l)
		res, wall, oot, err := runDBTFVariant(cfg, x, dbtf.Options{Rank: 8, InitialSets: l})
		timeCell, _, errCell := variantCells(res, wall, oot, err)
		rel := "-"
		if res != nil {
			rel = fmt.Sprintf("%.3f", res.RelativeError)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", l), timeCell, errCell, rel})
	}
	return t
}
